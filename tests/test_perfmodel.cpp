// Kernel performance model and the Algorithm-2 band auto-tuner.
#include <gtest/gtest.h>

#include "cholesky/factorize.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "perfmodel/band_tuner.hpp"
#include "perfmodel/kernel_model.hpp"

namespace gsx::perfmodel {
namespace {

TEST(FlopModels, DenseCubicTlrQuadraticInTs) {
  EXPECT_DOUBLE_EQ(dense_gemm_flops(100), 2e6);
  EXPECT_GT(tlr_gemm_flops(100, 10), 0.0);
  // Dense grows cubically with ts, TLR linearly (fixed rank, ts >> k so the
  // k^3 recompression term is negligible).
  EXPECT_NEAR(dense_gemm_flops(200) / dense_gemm_flops(100), 8.0, 1e-12);
  const double r = tlr_gemm_flops(2000, 10) / tlr_gemm_flops(1000, 10);
  EXPECT_GT(r, 1.8);
  EXPECT_LT(r, 2.2);
}

TEST(TheoreticalModel, PrecisionSpeedups) {
  const KernelModel m = KernelModel::theoretical(128);
  EXPECT_GT(m.dense_gemm_seconds(Precision::FP64), m.dense_gemm_seconds(Precision::FP32));
  EXPECT_GT(m.dense_gemm_seconds(Precision::FP32), m.dense_gemm_seconds(Precision::FP16));
  EXPECT_NEAR(m.dense_gemm_seconds(Precision::FP64) / m.dense_gemm_seconds(Precision::FP32),
              2.0, 1e-9);
}

TEST(TheoreticalModel, TlrCostIncreasesWithRank) {
  const KernelModel m = KernelModel::theoretical(128);
  double prev = 0.0;
  for (std::size_t k : {1u, 4u, 16u, 64u, 128u}) {
    const double t = m.tlr_gemm_seconds(k);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_DOUBLE_EQ(m.tlr_gemm_seconds(0), 0.0);
}

TEST(TheoreticalModel, CrossoverExistsAndIsInterior) {
  // Paper Fig. 5: TLR wins at low rank, loses past a crossover (~200 at
  // ts=800 on A64FX). The flop model must reproduce an interior crossover.
  const KernelModel m = KernelModel::theoretical(256);
  const std::size_t cross = m.crossover_rank();
  EXPECT_GT(cross, 8u);
  EXPECT_LT(cross, 256u);
  EXPECT_LT(m.tlr_gemm_seconds(cross / 2), m.dense_gemm_seconds(Precision::FP64));
  EXPECT_GE(m.tlr_gemm_seconds(cross), m.dense_gemm_seconds(Precision::FP64));
}

TEST(CalibratedModel, MeasuresRealKernels) {
  const std::vector<std::size_t> ranks = {2, 8, 16};
  const KernelModel m = KernelModel::calibrate(64, ranks);
  EXPECT_GT(m.dense_gemm_seconds(Precision::FP64), 0.0);
  EXPECT_GT(m.dense_gemm_seconds(Precision::FP32), 0.0);
  EXPECT_GT(m.dense_gemm_seconds(Precision::FP16), 0.0);
  ASSERT_EQ(m.samples().size(), 3u);
  for (const auto& s : m.samples()) EXPECT_GT(s.seconds, 0.0);
  // Interpolation stays within the sampled bracket.
  const double t4 = m.tlr_gemm_seconds(4);
  EXPECT_GE(t4, m.samples()[0].seconds * 0.3);
  EXPECT_LE(t4, m.samples()[2].seconds * 3.0);
}

TEST(CalibratedModel, RejectsBadInputs) {
  const std::vector<std::size_t> empty;
  EXPECT_THROW(KernelModel::calibrate(64, empty), InvalidArgument);
  const std::vector<std::size_t> toobig = {100};
  EXPECT_THROW(KernelModel::calibrate(64, toobig), InvalidArgument);
}

/// Matérn matrix compressed with band 1 for the tuner.
tile::SymTileMatrix compressed_matern(std::size_t n, std::size_t ts, double range) {
  Rng rng(3);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, range, 0.5, 1e-6);
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  cholesky::TlrCompressOptions copt;
  copt.band_size = 1;
  copt.max_rank = ts;  // keep everything LR so the tuner sees true ranks
  copt.lr_fp32 = false;
  cholesky::compress_offband(a, copt, 1);
  return a;
}

TEST(BandTuner, ProducesValidBand) {
  const auto a = compressed_matern(192, 32, 0.1);
  const KernelModel m = KernelModel::theoretical(32);
  const BandDecision d = tune_band_size(a, m, 1.0);
  EXPECT_GE(d.band_size_dense, 1u);
  EXPECT_LE(d.band_size_dense, a.nt());
  EXPECT_EQ(d.dense_seconds.size(), d.tlr_seconds.size());
  EXPECT_GE(d.dense_seconds.size(), 1u);
}

TEST(BandTuner, StrongerCorrelationWidensTheBand) {
  const auto weak = compressed_matern(256, 32, 0.02);
  const auto strong = compressed_matern(256, 32, 0.4);
  const KernelModel m = KernelModel::theoretical(32);
  const BandDecision dw = tune_band_size(weak, m, 1.0);
  const BandDecision ds = tune_band_size(strong, m, 1.0);
  EXPECT_LE(dw.band_size_dense, ds.band_size_dense)
      << "higher ranks near the diagonal must keep more sub-diagonals dense";
}

TEST(BandTuner, FluctuationFactorWidensBand) {
  const auto a = compressed_matern(256, 32, 0.1);
  const KernelModel m = KernelModel::theoretical(32);
  const BandDecision tight = tune_band_size(a, m, 1.0);
  const BandDecision loose = tune_band_size(a, m, 4.0);
  EXPECT_LE(tight.band_size_dense, loose.band_size_dense);
}

TEST(SubdiagonalCost, DenseCostIndependentOfRank) {
  const auto a = compressed_matern(192, 32, 0.05);
  const KernelModel m = KernelModel::theoretical(32);
  double dense1 = 0, tlr1 = 0, dense2 = 0, tlr2 = 0;
  predict_subdiagonal_cost(a, m, 1, dense1, tlr1);
  predict_subdiagonal_cost(a, m, a.nt() - 1, dense2, tlr2);
  EXPECT_GT(dense1, 0.0);
  EXPECT_GT(tlr1, 0.0);
  // The far sub-diagonal has one tile with few updates: much cheaper totals.
  EXPECT_LT(dense2, dense1);
  EXPECT_THROW(predict_subdiagonal_cost(a, m, 0, dense1, tlr1), InvalidArgument);
  EXPECT_THROW(predict_subdiagonal_cost(a, m, a.nt(), dense1, tlr1), InvalidArgument);
}

}  // namespace
}  // namespace gsx::perfmodel
