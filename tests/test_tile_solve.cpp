// Tile triangular solves, log-likelihood assembly, reconstruction.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/likelihood.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

tile::SymTileMatrix spd_tiles(std::size_t n, std::size_t ts) {
  tile::SymTileMatrix a(n, ts);
  a.generate(
      [&](std::size_t i, std::size_t j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        return std::exp(-0.4 * d) + (i == j ? 0.3 : 0.0);
      },
      1);
  return a;
}

TEST(TileSolve, ForwardSolveMatchesDense) {
  const std::size_t n = 48;
  auto a = spd_tiles(n, 16);
  la::Matrix<double> full = a.to_full();
  ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, full.view()), 0);

  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);

  Rng rng(3);
  std::vector<double> z(n), zt;
  for (auto& v : z) v = rng.normal();
  zt = z;
  tile_forward_solve(a, zt);

  // Dense forward solve oracle.
  std::vector<double> zo = z;
  for (std::size_t j = 0; j < n; ++j) {
    zo[j] /= full(j, j);
    for (std::size_t i = j + 1; i < n; ++i) zo[i] -= full(i, j) * zo[j];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(zt[i], zo[i], 1e-10);
}

TEST(TileSolve, BackwardInvertsForward) {
  const std::size_t n = 64;
  auto a = spd_tiles(n, 16);
  const la::Matrix<double> sigma = a.to_full();
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);

  Rng rng(5);
  std::vector<double> z(n);
  for (auto& v : z) v = rng.normal();

  // x = Sigma^{-1} z via forward+backward; then Sigma x == z.
  std::vector<double> x = z;
  tile_forward_solve(a, x);
  tile_backward_solve(a, x);
  std::vector<double> rec(n, 0.0);
  la::gemv<double>(la::Trans::NoTrans, 1.0, sigma.cview(), x.data(), 0.0, rec.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec[i], z[i], 1e-8);
}

TEST(TileSolve, SolvesThroughLowRankTiles) {
  // Build a Matérn matrix, compress, factor with TLR, and verify the solve
  // against the dense oracle.
  Rng rng(7);
  auto locs = geostat::perturbed_grid_locations(128, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.06, 0.5, 1e-6);
  tile::SymTileMatrix a(128, 32);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  const la::Matrix<double> sigma = a.to_full();

  TlrCompressOptions copt;
  copt.tol = 1e-10;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  compress_offband(a, copt, 1);
  FactorOptions fopt;
  ASSERT_EQ(tile_cholesky_tlr(a, 1e-10, fopt).info, 0);

  std::vector<double> z(128);
  for (auto& v : z) v = rng.normal();
  std::vector<double> x = z;
  tile_forward_solve(a, x);
  tile_backward_solve(a, x);
  std::vector<double> rec(128, 0.0);
  la::gemv<double>(la::Trans::NoTrans, 1.0, sigma.cview(), x.data(), 0.0, rec.data());
  for (std::size_t i = 0; i < 128; ++i) EXPECT_NEAR(rec[i], z[i], 1e-5);
}

TEST(TileSolve, LoglikMatchesDenseReference) {
  Rng rng(9);
  auto locs = geostat::perturbed_grid_locations(96, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.2, 0.1, 0.8, 1e-4);
  std::vector<double> z(96);
  for (auto& v : z) v = rng.normal();

  const geostat::LoglikValue expect = geostat::dense_loglik(model, locs, z);
  ASSERT_TRUE(expect.ok);

  tile::SymTileMatrix a(96, 32);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  const geostat::LoglikValue got = tile_loglik(a, z);
  ASSERT_TRUE(got.ok);
  EXPECT_NEAR(got.logdet, expect.logdet, 1e-8 * std::fabs(expect.logdet) + 1e-10);
  EXPECT_NEAR(got.quadratic, expect.quadratic, 1e-7 * expect.quadratic);
  EXPECT_NEAR(got.loglik, expect.loglik, 1e-7 * std::fabs(expect.loglik));
}

TEST(TileSolve, ReconstructLowerIsTriangular) {
  auto a = spd_tiles(40, 16);
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  const la::Matrix<double> l = reconstruct_lower(a);
  for (std::size_t j = 0; j < 40; ++j)
    for (std::size_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_GT(l(i, i), 0.0);
}

TEST(TileSolve, LogdetRejectsUnfactoredGarbage) {
  tile::SymTileMatrix a(16, 8);
  a.generate([](std::size_t i, std::size_t j) { return (i == j) ? -1.0 : 0.0; }, 1);
  EXPECT_THROW(tile_logdet(a), InvalidArgument);
}

TEST(TileSolve, SizeMismatchThrows) {
  auto a = spd_tiles(32, 16);
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  std::vector<double> wrong(31, 1.0);
  EXPECT_THROW(tile_forward_solve(a, wrong), InvalidArgument);
  EXPECT_THROW(tile_backward_solve(a, wrong), InvalidArgument);
  EXPECT_THROW(tile_loglik(a, wrong), InvalidArgument);
}

}  // namespace
}  // namespace gsx::cholesky
