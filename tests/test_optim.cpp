// Optimizers: convergence on standard problems, bound handling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/pso.hpp"

namespace gsx::optim {
namespace {

double sphere(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += (v - 0.5) * (v - 0.5);
  return s;
}

double rosenbrock(std::span<const double> x) {
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    s += 100.0 * std::pow(x[i + 1] - x[i] * x[i], 2) + std::pow(1.0 - x[i], 2);
  }
  return s;
}

TEST(NelderMead, MinimizesSphere) {
  const std::vector<double> x0 = {0.1, 0.9, 0.3};
  const std::vector<double> lo = {0.0, 0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0, 1.0};
  const OptimResult r = nelder_mead(sphere, x0, lo, hi);
  EXPECT_LT(r.fval, 1e-8);
  for (double v : r.x) EXPECT_NEAR(v, 0.5, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrock2D) {
  const std::vector<double> x0 = {-0.5, 0.5};
  const std::vector<double> lo = {-2.0, -2.0};
  const std::vector<double> hi = {2.0, 2.0};
  NelderMeadOptions opts;
  opts.max_evals = 2000;
  const OptimResult r = nelder_mead(rosenbrock, x0, lo, hi, opts);
  EXPECT_LT(r.fval, 1e-5);
  EXPECT_NEAR(r.x[0], 1.0, 0.01);
  EXPECT_NEAR(r.x[1], 1.0, 0.01);
}

TEST(NelderMead, RespectsBounds) {
  // Unconstrained minimum at 2.0, outside the box [0, 1].
  auto f = [](std::span<const double> x) { return (x[0] - 2.0) * (x[0] - 2.0); };
  const std::vector<double> x0 = {0.5};
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  const OptimResult r = nelder_mead(f, x0, lo, hi);
  EXPECT_GE(r.x[0], 0.0);
  EXPECT_LE(r.x[0], 1.0);
  EXPECT_GT(r.x[0], 0.98) << "solution must push against the active bound";
}

TEST(NelderMead, SurvivesInfeasibleRegions) {
  // Objective returns +inf on half the box.
  auto f = [](std::span<const double> x) {
    if (x[0] > 0.6) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.4) * (x[0] - 0.4);
  };
  const std::vector<double> x0 = {0.3};
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  const OptimResult r = nelder_mead(f, x0, lo, hi);
  EXPECT_NEAR(r.x[0], 0.4, 1e-2);
}

TEST(NelderMead, TreatsNanAsInfeasible) {
  auto f = [](std::span<const double> x) {
    if (x[0] < 0.2) return std::nan("");
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  const std::vector<double> x0 = {0.6};
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  const OptimResult r = nelder_mead(f, x0, lo, hi);
  EXPECT_NEAR(r.x[0], 0.5, 1e-2);
}

TEST(NelderMead, EvalBudgetRespected) {
  std::size_t calls = 0;
  auto f = [&](std::span<const double> x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions opts;
  opts.max_evals = 50;
  const std::vector<double> x0 = {0.9};
  const std::vector<double> lo = {-1.0};
  const std::vector<double> hi = {1.0};
  const OptimResult r = nelder_mead(f, x0, lo, hi, opts);
  EXPECT_LE(calls, 55u);  // small overshoot from the final shrink loop
  EXPECT_EQ(r.evals, calls);
}

TEST(NelderMead, ReportsConvergence) {
  const std::vector<double> x0 = {0.2, 0.8};
  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  NelderMeadOptions opts;
  opts.max_evals = 5000;
  const OptimResult r = nelder_mead(sphere, x0, lo, hi, opts);
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, BadBoundsThrow) {
  const std::vector<double> x0 = {0.5};
  const std::vector<double> lo = {1.0};
  const std::vector<double> hi = {0.0};
  EXPECT_THROW(nelder_mead(sphere, x0, lo, hi), InvalidArgument);
}

TEST(Pso, MinimizesSphere) {
  const std::vector<double> lo = {0.0, 0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0, 1.0};
  PsoOptions opts;
  opts.seed = 3;
  opts.max_iters = 100;
  const OptimResult r = particle_swarm(sphere, lo, hi, opts);
  EXPECT_LT(r.fval, 1e-4);
}

TEST(Pso, DeterministicGivenSeed) {
  const std::vector<double> lo = {-2.0, -2.0};
  const std::vector<double> hi = {2.0, 2.0};
  PsoOptions opts;
  opts.seed = 11;
  opts.max_iters = 30;
  const OptimResult a = particle_swarm(rosenbrock, lo, hi, opts);
  const OptimResult b = particle_swarm(rosenbrock, lo, hi, opts);
  EXPECT_EQ(a.fval, b.fval);
  EXPECT_EQ(a.x, b.x);
}

TEST(Pso, ParallelEvaluationMatchesSequential) {
  const std::vector<double> lo = {-2.0, -2.0};
  const std::vector<double> hi = {2.0, 2.0};
  PsoOptions seq, par;
  seq.seed = par.seed = 5;
  seq.max_iters = par.max_iters = 40;
  seq.workers = 1;
  par.workers = 4;
  const OptimResult a = particle_swarm(rosenbrock, lo, hi, seq);
  const OptimResult b = particle_swarm(rosenbrock, lo, hi, par);
  EXPECT_EQ(a.fval, b.fval) << "parallel evaluation must not change the search";
}

TEST(Pso, ParticlesStayInBounds) {
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  auto f = [&](std::span<const double> x) {
    EXPECT_GE(x[0], 0.0);
    EXPECT_LE(x[0], 1.0);
    return (x[0] - 2.0) * (x[0] - 2.0);  // pushes against the bound
  };
  PsoOptions opts;
  opts.max_iters = 40;
  const OptimResult r = particle_swarm(f, lo, hi, opts);
  EXPECT_GT(r.x[0], 0.95);
}

TEST(Pso, HandlesAllInfeasibleStart) {
  std::size_t calls = 0;
  auto f = [&](std::span<const double> x) {
    ++calls;
    // Feasible only in a narrow slice; most random starts are infeasible.
    if (x[0] < 0.9) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.95) * (x[0] - 0.95);
  };
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  PsoOptions opts;
  opts.seed = 7;
  opts.max_iters = 80;
  opts.swarm_size = 24;
  const OptimResult r = particle_swarm(f, lo, hi, opts);
  EXPECT_LT(r.fval, 1e-2);
}

TEST(Pso, StallDetectionStopsEarly) {
  PsoOptions opts;
  opts.max_iters = 10000;
  opts.stall_iters = 5;
  const std::vector<double> lo = {0.0};
  const std::vector<double> hi = {1.0};
  auto f = [](std::span<const double>) { return 1.0; };  // flat: stalls at once
  const OptimResult r = particle_swarm(f, lo, hi, opts);
  EXPECT_LT(r.iterations, 20u);
}

}  // namespace
}  // namespace gsx::optim
