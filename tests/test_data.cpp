// Dataset builders, splitting, detrending pipeline, CSV round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "common/error.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mathx/stats.hpp"

namespace gsx::data {
namespace {

TEST(SplitTrainTest, SizesAndDisjointness) {
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.locations.push_back({static_cast<double>(i), 0.0, 0.0});
    d.values.push_back(static_cast<double>(i));
  }
  Rng rng(1);
  const TrainTestSplit s = split_train_test(d, 0.8, rng);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  // Values are the indices: train and test must partition them.
  std::set<double> seen;
  for (double v : s.train.values) seen.insert(v);
  for (double v : s.test.values) {
    EXPECT_EQ(seen.count(v), 0u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SplitTrainTest, LocationValuePairingPreserved) {
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.locations.push_back({static_cast<double>(i), static_cast<double>(2 * i), 0.0});
    d.values.push_back(static_cast<double>(i) * 10.0);
  }
  Rng rng(2);
  const TrainTestSplit s = split_train_test(d, 0.5, rng);
  for (std::size_t i = 0; i < s.train.size(); ++i)
    EXPECT_DOUBLE_EQ(s.train.values[i], s.train.locations[i].x * 10.0);
  for (std::size_t i = 0; i < s.test.size(); ++i)
    EXPECT_DOUBLE_EQ(s.test.values[i], s.test.locations[i].x * 10.0);
}

TEST(SplitTrainTest, InvalidFractionThrows) {
  Dataset d;
  d.locations.push_back({0, 0, 0});
  d.locations.push_back({1, 0, 0});
  d.values = {1.0, 2.0};
  Rng rng(3);
  EXPECT_THROW(split_train_test(d, 0.0, rng), InvalidArgument);
  EXPECT_THROW(split_train_test(d, 1.0, rng), InvalidArgument);
}

TEST(Csv, RoundTripPreservesData) {
  Dataset d;
  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    d.locations.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    d.values.push_back(rng.normal());
  }
  const std::string path = "/tmp/gsx_test_dataset.csv";
  write_csv(path, d);
  const Dataset back = read_csv(path);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.locations[i].x, d.locations[i].x);
    EXPECT_DOUBLE_EQ(back.locations[i].y, d.locations[i].y);
    EXPECT_DOUBLE_EQ(back.locations[i].t, d.locations[i].t);
    EXPECT_DOUBLE_EQ(back.values[i], d.values[i]);
  }
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/tmp/gsx_definitely_missing_42.csv"), InvalidArgument);
}

TEST(SoilMoisture, GeneratesPlausibleField) {
  SoilMoistureConfig cfg;
  cfg.n = 300;
  const Dataset d = make_soil_moisture_like(cfg);
  ASSERT_EQ(d.size(), 300u);
  // Sample variance near the configured variance.
  EXPECT_NEAR(mathx::variance(d.values), cfg.variance, cfg.variance);
  // Locations are Morton sorted: consecutive points are near.
  double mean_step = 0.0;
  for (std::size_t i = 1; i < d.size(); ++i)
    mean_step += std::hypot(d.locations[i].x - d.locations[i - 1].x,
                            d.locations[i].y - d.locations[i - 1].y);
  mean_step /= static_cast<double>(d.size() - 1);
  EXPECT_LT(mean_step, 0.15);
}

TEST(SoilMoisture, DeterministicForSeed) {
  SoilMoistureConfig cfg;
  cfg.n = 100;
  const Dataset a = make_soil_moisture_like(cfg);
  const Dataset b = make_soil_moisture_like(cfg);
  EXPECT_EQ(a.values, b.values);
  cfg.seed = 999;
  const Dataset c = make_soil_moisture_like(cfg);
  EXPECT_NE(a.values, c.values);
}

TEST(EtDataset, ShapesAndDeterminism) {
  EtConfig cfg;
  cfg.spatial_n = 25;
  cfg.months = 4;
  cfg.history_years = 3;
  const SpaceTimeDataset d = make_et_like(cfg);
  EXPECT_EQ(d.locations.size(), 100u);
  EXPECT_EQ(d.raw.size(), 100u);
  EXPECT_EQ(d.climatology.size(), 100u);
  EXPECT_EQ(d.truth_residual.size(), 100u);
  const SpaceTimeDataset e = make_et_like(cfg);
  EXPECT_EQ(d.raw, e.raw);
}

TEST(EtDataset, RawContainsLargeTrend) {
  EtConfig cfg;
  cfg.spatial_n = 36;
  cfg.months = 6;
  cfg.history_years = 4;
  const SpaceTimeDataset d = make_et_like(cfg);
  // The raw data variance dwarfs the residual variance (trend dominates).
  EXPECT_GT(mathx::variance(d.raw), 1.5 * mathx::variance(d.truth_residual));
}

TEST(Detrend, RecoversStationaryResidual) {
  EtConfig cfg;
  cfg.spatial_n = 49;
  cfg.months = 6;
  cfg.history_years = 12;
  const SpaceTimeDataset d = make_et_like(cfg);
  const std::vector<double> residual = detrend_et(d);
  ASSERT_EQ(residual.size(), d.raw.size());

  // Detrended residuals approximate the underlying GRF: correlation with
  // the truth must be strong, and much stronger than the raw data's.
  auto corr_with_truth = [&](const std::vector<double>& v) {
    double sv = 0, st = 0, svt = 0;
    const double mv = mathx::mean(v);
    const double mt = mathx::mean(d.truth_residual);
    for (std::size_t i = 0; i < v.size(); ++i) {
      svt += (v[i] - mv) * (d.truth_residual[i] - mt);
      sv += (v[i] - mv) * (v[i] - mv);
      st += (d.truth_residual[i] - mt) * (d.truth_residual[i] - mt);
    }
    return svt / std::sqrt(sv * st);
  };
  EXPECT_GT(corr_with_truth(residual), 0.75);
  EXPECT_GT(corr_with_truth(residual), corr_with_truth(d.raw) + 0.1);

  // Per-month means near zero (trend removed).
  for (std::size_t m = 0; m < cfg.months; ++m) {
    double mmean = 0.0;
    for (std::size_t s = 0; s < cfg.spatial_n; ++s)
      mmean += residual[m * cfg.spatial_n + s];
    mmean /= static_cast<double>(cfg.spatial_n);
    EXPECT_NEAR(mmean, 0.0, 0.2) << "month " << m;
  }
}

TEST(DetrendMonthlyLinear, RemovesExactLinearField) {
  // Pure linear field per month: residual must vanish identically.
  Rng rng(5);
  const std::size_t sn = 30, months = 3;
  std::vector<geostat::Location> locs;
  std::vector<double> values;
  for (std::size_t m = 0; m < months; ++m)
    for (std::size_t s = 0; s < sn; ++s) {
      geostat::Location l{rng.uniform(), rng.uniform(), static_cast<double>(m)};
      locs.push_back(l);
      values.push_back(1.0 + 2.0 * static_cast<double>(m) * l.x - 3.0 * l.y);
    }
  const auto residual = detail::detrend_monthly_linear(locs, values, sn, months);
  for (double r : residual) EXPECT_NEAR(r, 0.0, 1e-10);
}

}  // namespace
}  // namespace gsx::data
