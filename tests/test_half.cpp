// Tests for the software IEEE 754 binary16 type.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/half.hpp"
#include "common/rng.hpp"

namespace gsx {
namespace {

TEST(Half, ZeroRoundTrips) {
  EXPECT_EQ(static_cast<float>(half(0.0f)), 0.0f);
  EXPECT_EQ(half(0.0f).bits(), 0u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(static_cast<float>(half(-0.0f)), -0.0f);
}

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(static_cast<float>(half(f)), f) << "integer " << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half(-1.0f).bits(), 0xbc00u);
  EXPECT_EQ(half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bffu);  // max finite
  EXPECT_EQ(half(6.103515625e-05f).bits(), 0x0400u);  // min normal
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(half(65520.0f).is_inf());  // rounds up past max finite
  EXPECT_TRUE(half(1.0e10f).is_inf());
  EXPECT_TRUE(half(-1.0e10f).is_inf());
  EXPECT_LT(static_cast<float>(half(-1.0e10f)), 0.0f);
}

TEST(Half, JustBelowOverflowRoundsToMax) {
  // 65519.999 rounds to 65504 (max), not infinity.
  EXPECT_EQ(static_cast<float>(half(65519.0f)), 65504.0f);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half(tiny).bits(), 0x0001u);
  EXPECT_EQ(static_cast<float>(half(tiny)), tiny);
  // Half of that underflows to zero (round to even).
  EXPECT_EQ(half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
}

TEST(Half, NanPropagates) {
  const half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.is_nan());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
  EXPECT_FALSE(h == h);  // IEEE: NaN != NaN
}

TEST(Half, InfinityRoundTrips) {
  const half h(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(h.is_inf());
  EXPECT_TRUE(std::isinf(static_cast<float>(h)));
  EXPECT_GT(static_cast<float>(h), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1 and 1 + 2^-10: rounds to even (1).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(half(halfway).bits(), half(1.0f).bits());
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to 1+2^-9.
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(static_cast<float>(half(halfway2)), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, RelativeErrorWithinUnitRoundoff) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.normal() * std::exp(rng.uniform(-3.0, 3.0)));
    if (std::fabs(x) < kHalfMinNormal || std::fabs(x) > kHalfMax) continue;
    const float rt = static_cast<float>(half(x));
    EXPECT_LE(std::fabs(rt - x), kHalfEps * std::fabs(x)) << "x = " << x;
  }
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Conversion to float and back must be the identity on every finite half.
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan()) continue;  // NaN payloads may be quietened
    const half rt(static_cast<float>(h));
    EXPECT_EQ(rt.bits(), h.bits()) << "bits " << b;
  }
}

TEST(Half, ArithmeticPromotesToFloat) {
  const half a(1.5f), b(2.25f);
  EXPECT_FLOAT_EQ(a + b, 3.75f);
  EXPECT_FLOAT_EQ(a - b, -0.75f);
  EXPECT_FLOAT_EQ(a * b, 3.375f);
  EXPECT_FLOAT_EQ(a / b, 1.5f / 2.25f);
}

TEST(Half, DoubleConstructorMatchesFloat) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 100.0;
    EXPECT_EQ(half(x).bits(), half(static_cast<float>(x)).bits());
  }
}

}  // namespace
}  // namespace gsx
