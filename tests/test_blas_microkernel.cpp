// Oracle tests for the packed micro-kernel BLAS path: la::gemm / la::syrk /
// la::trsm (blocked, register-tiled) against the la::ref reference loops,
// across shapes that exercise every edge case of the packing (micro-tile
// remainders, KC/MC/NC block remainders, strided sub-views) and the full
// trans / uplo / side / diag option space.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/half_blas.hpp"
#include "la/matrix.hpp"
#include "test_utils.hpp"

namespace gsx {
namespace {

using la::Diag;
using la::Matrix;
using la::Side;
using la::Trans;
using la::Uplo;

// Shapes that hit: single micro-tile, sub-micro-tile tails, exact multiples
// of the register tile, and sizes straddling the KC=256 k-blocking.
constexpr std::size_t kShapes[] = {1, 3, 7, 17, 64, 100, 255};

template <typename T>
Matrix<T> uniform_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix<T> m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i)
      m(i, j) = static_cast<T>(rng.uniform(-1.0, 1.0));
  return m;
}

template <typename T>
void expect_close(const Matrix<T>& got, const Matrix<T>& want, double tol,
                  const char* what) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  double max_diff = 0.0;
  for (std::size_t j = 0; j < got.cols(); ++j)
    for (std::size_t i = 0; i < got.rows(); ++i)
      max_diff = std::max(max_diff,
                          std::abs(static_cast<double>(got(i, j)) -
                                   static_cast<double>(want(i, j))));
  EXPECT_LE(max_diff, tol) << what << ": rows=" << got.rows() << " cols=" << got.cols();
}

// With inputs in [-1, 1] and |alpha| <= 1 each output element is a length-k
// inner product of O(1) terms, so elementwise error is bounded by
// 4 * eps * k (the ISSUE acceptance bound) plus one rounding of the beta*C
// term.
template <typename T>
double gemm_tol(std::size_t k) {
  return 4.0 * std::numeric_limits<T>::epsilon() * static_cast<double>(k + 1);
}

template <typename T>
void run_gemm_oracle_sweep() {
  Rng rng(1234);
  int combo = 0;
  const T alphas[] = {T{0}, T{1}, T{-0.5}};
  const T betas[] = {T{1}, T{-0.5}, T{0}};
  for (std::size_t m : kShapes) {
    for (std::size_t n : kShapes) {
      for (std::size_t k : kShapes) {
        // Rotate through trans and alpha/beta combinations so the full
        // option space is covered across the shape sweep without a 4x9
        // blowup per shape.
        const Trans ta = (combo & 1) ? Trans::Trans : Trans::NoTrans;
        const Trans tb = (combo & 2) ? Trans::Trans : Trans::NoTrans;
        const T alpha = alphas[combo % 3];
        const T beta = betas[(combo / 3) % 3];
        ++combo;

        const Matrix<T> a = uniform_matrix<T>(ta == Trans::NoTrans ? m : k,
                                              ta == Trans::NoTrans ? k : m, rng);
        const Matrix<T> b = uniform_matrix<T>(tb == Trans::NoTrans ? k : n,
                                              tb == Trans::NoTrans ? n : k, rng);
        Matrix<T> c_fast = uniform_matrix<T>(m, n, rng);
        Matrix<T> c_ref = c_fast;

        la::gemm<T>(ta, tb, alpha, a.cview(), b.cview(), beta, c_fast.view());
        la::ref::gemm<T>(ta, tb, alpha, a.cview(), b.cview(), beta, c_ref.view());
        expect_close(c_fast, c_ref, gemm_tol<T>(k), "gemm");
      }
    }
  }
}

TEST(BlasMicrokernel, GemmMatchesOracleF64) { run_gemm_oracle_sweep<double>(); }
TEST(BlasMicrokernel, GemmMatchesOracleF32) { run_gemm_oracle_sweep<float>(); }

// Packing must honor the leading dimension: operands and output are interior
// sub-views of larger arrays (ld > rows), including the transposed reads.
template <typename T>
void run_gemm_strided() {
  Rng rng(77);
  const std::size_t m = 100, n = 117, k = 129;
  const Matrix<T> abuf = uniform_matrix<T>(m + 13, k + 5, rng);
  const Matrix<T> bbuf = uniform_matrix<T>(n + 7, k + 9, rng);
  Matrix<T> cbuf = uniform_matrix<T>(m + 21, n + 3, rng);
  Matrix<T> cbuf_ref = cbuf;

  const Span2D<const T> a = abuf.cview().sub(5, 2, m, k);
  const Span2D<const T> b = bbuf.cview().sub(3, 4, n, k);  // used transposed
  la::gemm<T>(Trans::NoTrans, Trans::Trans, T{-0.5}, a, b, T{1},
              cbuf.view().sub(11, 1, m, n));
  la::ref::gemm<T>(Trans::NoTrans, Trans::Trans, T{-0.5}, a, b, T{1},
                   cbuf_ref.view().sub(11, 1, m, n));
  // The surrounding buffer must be untouched, so compare whole backing
  // matrices, not just the window.
  expect_close(cbuf, cbuf_ref, gemm_tol<T>(k), "strided gemm");
}

TEST(BlasMicrokernel, GemmStridedViewsF64) { run_gemm_strided<double>(); }
TEST(BlasMicrokernel, GemmStridedViewsF32) { run_gemm_strided<float>(); }

// k == 0 (rank-0 TLR factor) must still apply the beta scaling and nothing
// else; beta == 0 must overwrite even a poisoned C.
TEST(BlasMicrokernel, GemmDegenerateK) {
  Rng rng(5);
  const std::size_t m = 33, n = 21;
  const Matrix<double> a(m, 0), b(n, 0);
  Matrix<double> c = test::random_matrix(m, n, rng);
  const Matrix<double> c0 = c;
  la::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, a.cview(), b.cview(), -0.5, c.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(c(i, j), -0.5 * c0(i, j));

  Matrix<double> poisoned(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i)
      poisoned(i, j) = std::numeric_limits<double>::quiet_NaN();
  const Matrix<double> ak = test::random_matrix(m, 40, rng);
  const Matrix<double> bk = test::random_matrix(n, 40, rng);
  Matrix<double> want(m, n);
  la::ref::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, ak.cview(), bk.cview(), 0.0,
                        want.view());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, ak.cview(), bk.cview(), 0.0,
                   poisoned.view());
  expect_close(poisoned, want, gemm_tol<double>(40), "beta=0 gemm");
}

template <typename T>
void run_syrk_oracle_sweep() {
  Rng rng(4321);
  int combo = 0;
  for (std::size_t n : {std::size_t{7}, std::size_t{17}, std::size_t{64},
                        std::size_t{100}, std::size_t{255}}) {
    for (std::size_t k : {std::size_t{3}, std::size_t{64}, std::size_t{255}}) {
      for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
        for (Trans trans : {Trans::NoTrans, Trans::Trans}) {
          const T alpha = (combo % 3 == 0) ? T{1} : ((combo % 3 == 1) ? T{-0.5} : T{0});
          const T beta = (combo % 2 == 0) ? T{1} : T{-0.5};
          ++combo;
          const Matrix<T> a = uniform_matrix<T>(trans == Trans::NoTrans ? n : k,
                                                trans == Trans::NoTrans ? k : n, rng);
          Matrix<T> c_fast = uniform_matrix<T>(n, n, rng);
          Matrix<T> c_ref = c_fast;
          la::syrk<T>(uplo, trans, alpha, a.cview(), beta, c_fast.view());
          la::ref::syrk<T>(uplo, trans, alpha, a.cview(), beta, c_ref.view());
          // ref::syrk writes only the addressed triangle, so this whole-matrix
          // compare doubles as the untouched-opposite-triangle check.
          expect_close(c_fast, c_ref, gemm_tol<T>(k), "syrk");
        }
      }
    }
  }
}

TEST(BlasMicrokernel, SyrkMatchesOracleF64) { run_syrk_oracle_sweep<double>(); }
TEST(BlasMicrokernel, SyrkMatchesOracleF32) { run_syrk_oracle_sweep<float>(); }

// Well-conditioned triangle for both Diag modes: off-diagonals shrunk to
// O(1/n) so even the Unit solves (which ignore the stored diagonal) stay
// bounded-condition and the blocked/reference forward errors are comparable
// within a few ulps.
template <typename T>
Matrix<T> dominant_triangle(std::size_t n, Rng& rng) {
  Matrix<T> a(n, n);
  const double scale = 0.5 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      a(i, j) = static_cast<T>(scale * rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < n; ++i) a(i, i) = static_cast<T>(rng.uniform(1.0, 2.0));
  return a;
}

template <typename T>
void run_trsm_oracle_sweep() {
  Rng rng(99);
  const std::size_t m = 213, n = 100;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (Trans ta : {Trans::NoTrans, Trans::Trans}) {
        for (Diag diag : {Diag::NonUnit, Diag::Unit}) {
          const std::size_t na = (side == Side::Left) ? m : n;
          const Matrix<T> a = dominant_triangle<T>(na, rng);
          Matrix<T> b_fast = uniform_matrix<T>(m, n, rng);
          Matrix<T> b_ref = b_fast;
          la::trsm<T>(side, uplo, ta, diag, T{-0.5}, a.cview(), b_fast.view());
          la::ref::trsm<T>(side, uplo, ta, diag, T{-0.5}, a.cview(), b_ref.view());
          // The diagonally dominant triangle keeps the recursive and
          // reference substitution orders within a few ulps of each other.
          expect_close(b_fast, b_ref, 64.0 * std::numeric_limits<T>::epsilon() * na,
                       "trsm");
        }
      }
    }
  }
}

TEST(BlasMicrokernel, TrsmMatchesOracleF64) { run_trsm_oracle_sweep<double>(); }
TEST(BlasMicrokernel, TrsmMatchesOracleF32) { run_trsm_oracle_sweep<float>(); }

// The widening SHGEMM/SBGEMM path packs 16-bit operands straight into FP32
// micro-panels; the oracle converts up front and runs the FP32 reference.
template <typename T16>
void run_widening_oracle(float tol_scale) {
  Rng rng(2025);
  for (auto [m, n, k] : {std::array<std::size_t, 3>{100, 255, 64},
                         {17, 33, 255},
                         {255, 100, 100}}) {
    const Matrix<T16> a = uniform_matrix<T16>(m, k, rng);
    const Matrix<T16> b = uniform_matrix<T16>(n, k, rng);
    Matrix<float> c_fast = uniform_matrix<float>(m, n, rng);
    Matrix<float> c_ref = c_fast;

    Matrix<float> a32(m, k), b32(n, k);
    la::convert(a.cview(), a32.view());
    la::convert(b.cview(), b32.view());

    if constexpr (std::is_same_v<T16, half>) {
      la::shgemm(Trans::NoTrans, Trans::Trans, -0.5f, a.cview(), b.cview(), 1.0f,
                 c_fast.view());
    } else {
      la::sbgemm(Trans::NoTrans, Trans::Trans, -0.5f, a.cview(), b.cview(), 1.0f,
                 c_fast.view());
    }
    la::ref::gemm<float>(Trans::NoTrans, Trans::Trans, -0.5f, a32.cview(), b32.cview(),
                         1.0f, c_ref.view());
    expect_close(c_fast, c_ref, tol_scale * gemm_tol<float>(k), "widening gemm");
  }
}

TEST(BlasMicrokernel, ShgemmMatchesWidenedOracle) { run_widening_oracle<half>(1.0f); }
TEST(BlasMicrokernel, SbgemmMatchesWidenedOracle) { run_widening_oracle<bfloat16>(1.0f); }

}  // namespace
}  // namespace gsx
