// gsx-ckpt-v1 checkpoints: CRC, tile serialization, model/fit round trips,
// corruption rejection. Round trips must be bit-identical — a reloaded
// factor answers predictions to 0 ULP.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cholesky/tile_solve.hpp"
#include "common/rng.hpp"
#include "core/model.hpp"
#include "geostat/field.hpp"
#include "geostat/kernel_registry.hpp"
#include "geostat/locations.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"
#include "test_utils.hpp"

namespace gsx::serve {
namespace {

using gsx::test::random_matrix;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Byte image of a factor's tiles — two factors are bit-identical iff their
/// images match.
std::vector<std::uint8_t> factor_bytes(const tile::SymTileMatrix& a) {
  std::vector<std::uint8_t> out;
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) a.at(i, j).serialize(out);
  return out;
}

struct Problem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
  std::vector<double> theta{1.0, 0.1, 0.5};
};

Problem make_problem(std::size_t n, std::uint64_t seed = 11) {
  Rng rng(seed);
  Problem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  const auto kernel = geostat::make_kernel("matern", p.theta);
  p.z = geostat::simulate_grf(*kernel, p.locs, rng);
  return p;
}

ModelCheckpoint make_checkpoint(const Problem& p, core::ModelConfig cfg) {
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  return ckpt;
}

core::ModelConfig dense_config() {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  return cfg;
}

core::ModelConfig mp_config() {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDense;
  cfg.tile_size = 24;
  cfg.eps_target = 1e-4;  // coarse target so off-band tiles demote
  cfg.allow_fp16 = true;
  cfg.allow_bf16 = true;
  cfg.calibrate_perf_model = false;
  return cfg;
}

core::ModelConfig tlr_config() {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.tile_size = 24;
  cfg.tlr_tol = 1e-7;
  cfg.auto_band = false;
  cfg.band_size = 1;
  cfg.calibrate_perf_model = false;
  return cfg;
}

TEST(Crc32, KnownAnswer) {
  // The standard CRC-32 check value for "123456789".
  const std::uint8_t msg[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(TileSerialize, RoundTripsEveryFormat) {
  Rng rng(7);
  std::vector<tile::Tile> tiles;
  tiles.push_back(tile::Tile::dense64(random_matrix(8, 8, rng)));
  {
    la::Matrix<float> m(8, 5);
    for (std::size_t j = 0; j < 5; ++j)
      for (std::size_t i = 0; i < 8; ++i) m(i, j) = static_cast<float>(rng.normal());
    tiles.push_back(tile::Tile::dense32(std::move(m)));
  }
  {
    la::Matrix<half> m(6, 6);
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t i = 0; i < 6; ++i) m(i, j) = half(rng.normal());
    tiles.push_back(tile::Tile::dense16(std::move(m)));
  }
  {
    la::Matrix<bfloat16> m(7, 3);  // ragged
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t i = 0; i < 7; ++i) m(i, j) = bfloat16(rng.normal());
    tiles.push_back(tile::Tile::dense_bf16(std::move(m)));
  }
  tiles.push_back(
      tile::Tile::lowrank64(random_matrix(9, 2, rng), random_matrix(6, 2, rng)));
  {
    la::Matrix<float> u(5, 3), v(8, 3);
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t i = 0; i < 5; ++i) u(i, j) = static_cast<float>(rng.normal());
      for (std::size_t i = 0; i < 8; ++i) v(i, j) = static_cast<float>(rng.normal());
    }
    tiles.push_back(tile::Tile::lowrank32(std::move(u), std::move(v)));
  }

  // All records concatenated into one buffer, then read back in order.
  std::vector<std::uint8_t> buf;
  for (const tile::Tile& t : tiles) t.serialize(buf);
  std::size_t off = 0;
  for (const tile::Tile& t : tiles) {
    const tile::Tile back = tile::Tile::deserialize(buf, off);
    EXPECT_EQ(back.format(), t.format());
    EXPECT_EQ(back.precision(), t.precision());
    EXPECT_EQ(back.rows(), t.rows());
    EXPECT_EQ(back.cols(), t.cols());
    EXPECT_EQ(back.rank(), t.rank());
    // Bit-identity: re-serializing reproduces the record byte for byte.
    std::vector<std::uint8_t> once, twice;
    t.serialize(once);
    back.serialize(twice);
    EXPECT_EQ(once, twice);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(TileSerialize, RejectsTruncatedRecord) {
  Rng rng(8);
  std::vector<std::uint8_t> buf;
  tile::Tile::dense64(random_matrix(4, 4, rng)).serialize(buf);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, buf.size() - 1}) {
    std::vector<std::uint8_t> cut(buf.begin(),
                                  buf.begin() + static_cast<std::ptrdiff_t>(keep));
    std::size_t off = 0;
    EXPECT_THROW(tile::Tile::deserialize(cut, off), InvalidArgument) << keep;
  }
}

class ModelCheckpointRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ModelCheckpointRoundTrip, BitIdenticalFactorAndPredictions) {
  const Problem p = make_problem(120);
  core::ModelConfig cfg;
  switch (GetParam()) {
    case 0: cfg = dense_config(); break;
    case 1: cfg = mp_config(); break;
    default: cfg = tlr_config(); break;
  }
  const ModelCheckpoint ckpt = make_checkpoint(p, cfg);
  const std::string path =
      temp_path("gsx_ckpt_rt_" + std::to_string(GetParam()) + ".ckpt");
  save_model_checkpoint(path, ckpt);
  const ModelCheckpoint back = load_model_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.kernel, "matern");
  EXPECT_EQ(back.theta, p.theta);
  EXPECT_EQ(static_cast<int>(back.config.variant), static_cast<int>(cfg.variant));
  EXPECT_EQ(back.config.tile_size, cfg.tile_size);
  EXPECT_EQ(back.config.tlr_tol, cfg.tlr_tol);
  ASSERT_EQ(back.train_locs.size(), p.locs.size());
  for (std::size_t i = 0; i < p.locs.size(); ++i) {
    EXPECT_EQ(back.train_locs[i].x, p.locs[i].x);
    EXPECT_EQ(back.train_locs[i].y, p.locs[i].y);
    EXPECT_EQ(back.train_locs[i].t, p.locs[i].t);
  }
  EXPECT_EQ(back.z_train, p.z);

  // The reloaded factor is bit-identical (per-tile format, precision, rank
  // and payload bytes), so predictions through it match to 0 ULP.
  EXPECT_EQ(factor_bytes(back.factor), factor_bytes(ckpt.factor));

  const auto kernel = geostat::make_kernel("matern", p.theta);
  Rng rng(21);
  const std::vector<geostat::Location> test_locs =
      geostat::perturbed_grid_locations(25, rng);
  const auto fresh =
      cholesky::tile_krige(*kernel, ckpt.factor, p.locs, p.z, test_locs, true);
  const auto reloaded =
      cholesky::tile_krige(*kernel, back.factor, p.locs, p.z, test_locs, true);
  ASSERT_EQ(fresh.mean.size(), reloaded.mean.size());
  for (std::size_t i = 0; i < fresh.mean.size(); ++i) {
    EXPECT_EQ(fresh.mean[i], reloaded.mean[i]) << i;          // 0 ULP
    EXPECT_EQ(fresh.variance[i], reloaded.variance[i]) << i;  // 0 ULP
  }
}

std::string variant_test_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "Dense";
    case 1: return "MP";
    default: return "TLR";
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ModelCheckpointRoundTrip,
                         ::testing::Values(0, 1, 2), variant_test_name);

TEST(CheckpointRejects, CorruptedCrc) {
  const Problem p = make_problem(72);
  const std::string path = temp_path("gsx_ckpt_corrupt.ckpt");
  save_model_checkpoint(path, make_checkpoint(p, dense_config()));

  std::vector<char> data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  data.back() ^= 0x5A;  // flip bits in the last payload byte (FACT section)
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  EXPECT_THROW(load_model_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointRejects, TruncatedFile) {
  const Problem p = make_problem(72);
  const std::string path = temp_path("gsx_ckpt_trunc.ckpt");
  save_model_checkpoint(path, make_checkpoint(p, dense_config()));
  std::vector<char> data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_THROW(load_model_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointRejects, BadMagicAndMissingFile) {
  const std::string path = temp_path("gsx_ckpt_magic.ckpt");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTACKPTxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW(load_model_checkpoint(path), InvalidArgument);
  EXPECT_THROW(probe_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
  EXPECT_THROW(load_model_checkpoint(temp_path("gsx_ckpt_does_not_exist.ckpt")),
               InvalidArgument);
}

TEST(FitCheckpoint, RoundTripAndProbe) {
  FitCheckpoint fc;
  fc.kernel = "matern-nugget";
  fc.theta_best = {0.9, 0.12, 0.7, 0.02};
  fc.loglik_best = -1234.5678;
  fc.evaluations = 77;
  const std::string path = temp_path("gsx_ckpt_fit.ckpt");
  save_fit_checkpoint(path, fc);

  EXPECT_EQ(probe_checkpoint(path), CheckpointKind::FitProgress);
  const FitCheckpoint back = load_fit_checkpoint(path);
  EXPECT_EQ(back.kernel, fc.kernel);
  EXPECT_EQ(back.theta_best, fc.theta_best);
  EXPECT_EQ(back.loglik_best, fc.loglik_best);
  EXPECT_EQ(back.evaluations, fc.evaluations);
  std::remove(path.c_str());

  const Problem p = make_problem(48);
  const std::string mpath = temp_path("gsx_ckpt_probe_model.ckpt");
  save_model_checkpoint(mpath, make_checkpoint(p, dense_config()));
  EXPECT_EQ(probe_checkpoint(mpath), CheckpointKind::Model);
  std::remove(mpath.c_str());
}

TEST(LoadedModel, ReconstructsKernelAndSolvedObservations) {
  const Problem p = make_problem(96);
  const ModelCheckpoint ckpt = make_checkpoint(p, dense_config());
  const std::string path = temp_path("gsx_ckpt_loaded.ckpt");
  save_model_checkpoint(path, ckpt);
  const auto model = LoadedModel::from_checkpoint("m", path);
  std::remove(path.c_str());

  EXPECT_EQ(model->name, "m");
  EXPECT_EQ(model->path, path);
  EXPECT_EQ(geostat::kernel_name(*model->kernel), "matern");
  EXPECT_EQ(model->theta, p.theta);
  EXPECT_GT(model->resident_bytes, model->factor.footprint_bytes());

  // y_solved is the forward solve of the observations through the factor.
  std::vector<double> y(p.z.begin(), p.z.end());
  cholesky::tile_forward_solve(ckpt.factor, y);
  EXPECT_EQ(model->y_solved, y);
}

}  // namespace
}  // namespace gsx::serve
