// Multi-RHS tile solves and kriging through the tile factor.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "geostat/field.hpp"
#include "geostat/prediction.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

using gsx::test::max_abs_diff;
using gsx::test::random_matrix;

struct Problem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
  geostat::MaternCovariance model{1.0, 0.08, 0.8, 1e-6};
};

Problem make_problem(std::size_t n, std::uint64_t seed = 3) {
  Rng rng(seed);
  Problem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  p.z = geostat::simulate_grf(p.model, p.locs, rng);
  return p;
}

tile::SymTileMatrix factor_dense(const Problem& p, std::size_t ts) {
  tile::SymTileMatrix a(p.locs.size(), ts);
  geostat::fill_covariance_tiles(a, p.model, p.locs, 1);
  FactorOptions opts;
  EXPECT_EQ(tile_cholesky_dense(a, opts).info, 0);
  return a;
}

tile::SymTileMatrix factor_tlr(const Problem& p, std::size_t ts, double tol) {
  tile::SymTileMatrix a(p.locs.size(), ts);
  geostat::fill_covariance_tiles(a, p.model, p.locs, 1);
  TlrCompressOptions copt;
  copt.tol = tol;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  compress_offband(a, copt, 1);
  FactorOptions opts;
  EXPECT_EQ(tile_cholesky_tlr(a, tol, opts).info, 0);
  return a;
}

TEST(MultiRhsSolve, MatchesColumnwiseSingleSolves) {
  const Problem p = make_problem(96);
  const auto a = factor_dense(p, 32);

  Rng rng(5);
  const std::size_t m = 7;
  auto b = random_matrix(96, m, rng);
  la::Matrix<double> b_multi = b;
  tile_forward_solve_multi(a, b_multi.view());

  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> col(96);
    for (std::size_t i = 0; i < 96; ++i) col[i] = b(i, j);
    tile_forward_solve(a, col);
    for (std::size_t i = 0; i < 96; ++i)
      EXPECT_NEAR(b_multi(i, j), col[i], 1e-11) << i << "," << j;
  }
}

TEST(MultiRhsSolve, BackwardInvertsForward) {
  const Problem p = make_problem(128);
  const auto a = factor_tlr(p, 32, 1e-10);
  const la::Matrix<double> sigma = [&] {
    tile::SymTileMatrix s(128, 32);
    geostat::fill_covariance_tiles(s, p.model, p.locs, 1);
    return s.to_full();
  }();

  Rng rng(6);
  const std::size_t m = 5;
  const auto b = random_matrix(128, m, rng);
  la::Matrix<double> x = b;
  tile_forward_solve_multi(a, x.view());
  tile_backward_solve_multi(a, x.view());
  // Sigma * X == B within the compression tolerance.
  la::Matrix<double> rec(128, m);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, sigma.cview(), x.cview(),
                   0.0, rec.view());
  EXPECT_LT(max_abs_diff(rec, b), 1e-5);
}

TEST(TileKrige, MatchesDenseKrigingExactly) {
  const Problem p = make_problem(160);
  const auto a = factor_dense(p, 32);

  const std::size_t ntrain = 140;
  const std::span<const geostat::Location> train(p.locs.data(), ntrain);
  const std::span<const geostat::Location> test(p.locs.data() + ntrain,
                                                p.locs.size() - ntrain);
  const std::span<const double> ztrain(p.z.data(), ntrain);

  // Reference: dense kriging on the training subset.
  tile::SymTileMatrix at(ntrain, 32);
  geostat::fill_covariance_tiles(at, p.model, train, 1);
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(at, opts).info, 0);
  const auto tile_result = tile_krige(p.model, at, train, ztrain, test, true);
  const auto dense_result = geostat::krige(p.model, train, ztrain, test, true);

  ASSERT_EQ(tile_result.mean.size(), dense_result.mean.size());
  for (std::size_t i = 0; i < tile_result.mean.size(); ++i) {
    EXPECT_NEAR(tile_result.mean[i], dense_result.mean[i], 1e-8);
    EXPECT_NEAR(tile_result.variance[i], dense_result.variance[i], 1e-8);
  }
}

TEST(TileKrige, TlrFactorPredictsAccurately) {
  const Problem p = make_problem(192);
  const std::size_t ntrain = 160;
  const std::span<const geostat::Location> train(p.locs.data(), ntrain);
  const std::span<const geostat::Location> test(p.locs.data() + ntrain,
                                                p.locs.size() - ntrain);
  const std::span<const double> ztrain(p.z.data(), ntrain);

  Problem sub = p;
  sub.locs.assign(train.begin(), train.end());
  const auto a = factor_tlr(sub, 32, 1e-9);
  const auto tlr_result = tile_krige(p.model, a, train, ztrain, test, true);
  const auto dense_result = geostat::krige(p.model, train, ztrain, test, true);
  for (std::size_t i = 0; i < tlr_result.mean.size(); ++i) {
    EXPECT_NEAR(tlr_result.mean[i], dense_result.mean[i], 1e-4);
    EXPECT_NEAR(tlr_result.variance[i], dense_result.variance[i], 1e-4);
  }
}

TEST(TileKrige, RejectsMismatchedSizes) {
  const Problem p = make_problem(64);
  const auto a = factor_dense(p, 32);
  const std::vector<geostat::Location> test = {{0.5, 0.5, 0}};
  const std::vector<double> wrong(63, 0.0);
  EXPECT_THROW(
      tile_krige(p.model, a, std::span<const geostat::Location>(p.locs.data(), 63), wrong,
                 test, false),
      InvalidArgument);
}

}  // namespace
}  // namespace gsx::cholesky
