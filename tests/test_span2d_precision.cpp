// Span2D views and precision trait invariants.
#include <gtest/gtest.h>

#include "common/precision.hpp"
#include "common/span2d.hpp"
#include "la/matrix.hpp"

namespace gsx {
namespace {

TEST(Span2D, ColumnMajorIndexing) {
  la::Matrix<double> m(3, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 3; ++i) m(i, j) = static_cast<double>(10 * i + j);
  const Span2D<const double> v = m.cview();
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_EQ(v.ld(), 3u);
  EXPECT_DOUBLE_EQ(v(2, 3), 23.0);
  // Column-major contiguity: &v(1, 0) == data + 1.
  EXPECT_EQ(&v(1, 0), v.data() + 1);
  EXPECT_EQ(&v(0, 1), v.data() + 3);
}

TEST(Span2D, SubViewSharesStorage) {
  la::Matrix<double> m(6, 6);
  auto v = m.view();
  auto sub = v.sub(2, 3, 3, 2);
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_EQ(sub.ld(), 6u) << "sub-view keeps the parent leading dimension";
  sub(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(m(2, 3), 42.0);
}

TEST(Span2D, EmptyAndDefault) {
  const Span2D<double> d;
  EXPECT_TRUE(d.empty());
  la::Matrix<double> m(3, 0);
  EXPECT_TRUE(m.view().empty());
}

TEST(Span2D, ConstConversion) {
  la::Matrix<float> m(2, 2);
  Span2D<float> mut = m.view();
  Span2D<const float> c = mut;  // implicit
  EXPECT_EQ(c.data(), mut.data());
}

TEST(MatrixContainer, IdentityAndTranspose) {
  const auto id = la::Matrix<double>::identity(4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);

  la::Matrix<double> m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 7;
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 7.0);
}

TEST(MatrixContainer, ResizeZeroes) {
  la::Matrix<double> m(2, 2, 5.0);
  m.resize(3, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(PrecisionTraits, RoundoffOrdering) {
  EXPECT_LT(unit_roundoff(Precision::FP64), unit_roundoff(Precision::FP32));
  EXPECT_LT(unit_roundoff(Precision::FP32), unit_roundoff(Precision::FP16));
  EXPECT_LT(unit_roundoff(Precision::FP16), unit_roundoff(Precision::BF16));
}

TEST(PrecisionTraits, BytesAndNames) {
  EXPECT_EQ(bytes_of(Precision::FP64), 8u);
  EXPECT_EQ(bytes_of(Precision::FP32), 4u);
  EXPECT_EQ(bytes_of(Precision::FP16), 2u);
  EXPECT_EQ(bytes_of(Precision::BF16), 2u);
  EXPECT_EQ(precision_name(Precision::FP64), "FP64");
  EXPECT_EQ(precision_name(Precision::BF16), "BF16");
}

TEST(PrecisionTraits, HigherLowerByAccuracy) {
  EXPECT_EQ(higher(Precision::FP32, Precision::FP16), Precision::FP32);
  EXPECT_EQ(higher(Precision::FP16, Precision::BF16), Precision::FP16)
      << "FP16 has the smaller roundoff despite equal storage";
  EXPECT_EQ(lower(Precision::FP64, Precision::BF16), Precision::BF16);
  EXPECT_TRUE(at_least(Precision::FP64, Precision::BF16));
  EXPECT_FALSE(at_least(Precision::BF16, Precision::FP16));
}

TEST(PrecisionTraits, OverflowThresholds) {
  EXPECT_GT(overflow_threshold(Precision::BF16), 1e38);
  EXPECT_LT(overflow_threshold(Precision::FP16), 1e5);
  EXPECT_GT(overflow_threshold(Precision::FP64), overflow_threshold(Precision::FP32));
}

TEST(PrecisionTraits, SubnormalFloors) {
  // The term that motivates BF16 (see precision_policy): FP16's floor is
  // ~33 orders of magnitude above BF16's.
  EXPECT_GT(subnormal_floor(Precision::FP16), 1e-8);
  EXPECT_LT(subnormal_floor(Precision::BF16), 1e-40);
  EXPECT_EQ(subnormal_floor(Precision::FP64), 0.0);
}

}  // namespace
}  // namespace gsx
