// Serving subsystem: registry LRU semantics, batched kriging engine
// (correctness vs the dense oracle, admission control, deadlines), the wire
// protocol, and a full socket end-to-end pass against the daemon's Server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "geostat/field.hpp"
#include "geostat/kernel_registry.hpp"
#include "geostat/locations.hpp"
#include "geostat/prediction.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {
namespace {

struct Problem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
  std::vector<double> theta{1.0, 0.1, 0.5};
};

Problem make_problem(std::size_t n, std::uint64_t seed = 13) {
  Rng rng(seed);
  Problem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  const auto kernel = geostat::make_kernel("matern", p.theta);
  p.z = geostat::simulate_grf(*kernel, p.locs, rng);
  return p;
}

std::shared_ptr<const LoadedModel> make_model(const Problem& p, const std::string& name) {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  return LoadedModel::from_checkpoint(name, std::move(ckpt));
}

std::vector<geostat::Location> random_points(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geostat::Location> pts(m);
  for (geostat::Location& l : pts) {
    l.x = rng.uniform();
    l.y = rng.uniform();
  }
  return pts;
}

/// |a - b| <= tol * max(1, |b|), elementwise.
void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LE(std::abs(a[i] - b[i]), tol * std::max(1.0, std::abs(b[i]))) << i;
}

// --- registry ---------------------------------------------------------------

TEST(Registry, InsertGetUnloadStats) {
  const Problem p = make_problem(72);
  ModelRegistry reg;
  EXPECT_EQ(reg.get("a"), nullptr);
  reg.insert(make_model(p, "a"));
  const auto a = reg.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");

  const RegistryStats s = reg.stats();
  EXPECT_EQ(s.models, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident_bytes, a->resident_bytes);

  EXPECT_TRUE(reg.unload("a"));
  EXPECT_FALSE(reg.unload("a"));
  EXPECT_EQ(reg.stats().models, 0u);
  EXPECT_EQ(reg.stats().resident_bytes, 0u);
}

TEST(Registry, EvictsLeastRecentlyUsedUnderPressure) {
  const Problem p = make_problem(72);
  const auto a = make_model(p, "a");
  // Capacity fits two models but not three.
  ModelRegistry reg(a->resident_bytes * 5 / 2);
  reg.insert(a);
  reg.insert(make_model(p, "b"));
  ASSERT_NE(reg.get("a"), nullptr);  // bump a's recency above b's
  reg.insert(make_model(p, "c"));    // must evict b, the LRU entry

  EXPECT_NE(reg.get("a"), nullptr);
  EXPECT_EQ(reg.get("b"), nullptr);
  EXPECT_NE(reg.get("c"), nullptr);
  EXPECT_EQ(reg.stats().evictions, 1u);
  EXPECT_EQ(reg.stats().models, 2u);
}

TEST(Registry, ReplacingANameDoesNotLeakBytes) {
  const Problem p = make_problem(72);
  ModelRegistry reg;
  reg.insert(make_model(p, "a"));
  const std::size_t once = reg.stats().resident_bytes;
  reg.insert(make_model(p, "a"));
  EXPECT_EQ(reg.stats().resident_bytes, once);
  EXPECT_EQ(reg.stats().models, 1u);
}

TEST(Registry, RejectsModelLargerThanCache) {
  const Problem p = make_problem(72);
  ModelRegistry reg(128);  // bytes — far below any real model
  EXPECT_THROW(reg.insert(make_model(p, "big")), InvalidArgument);
}

// --- engine -----------------------------------------------------------------

TEST(Engine, MatchesDenseKrigingOracle) {
  const Problem p = make_problem(120);
  const auto model = make_model(p, "m");
  const auto pts = random_points(17, 29);

  KrigingEngine engine(EngineConfig{2, 16, 4096});
  PredictOutcome out = engine.submit(model, pts, true).get();
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(out.mean.size(), pts.size());

  const auto kernel = geostat::make_kernel("matern", p.theta);
  const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts, true);
  expect_close(out.mean, oracle.mean, 1e-10);
  expect_close(out.variance, oracle.variance, 1e-10);
}

TEST(Engine, MicroBatchesQueuedRequestsIntoOnePass) {
  const Problem p = make_problem(96);
  const auto model = make_model(p, "m");
  const std::size_t k = 5;

  KrigingEngine engine(EngineConfig{1, 16, 4096}, /*auto_start=*/false);
  std::vector<std::future<PredictOutcome>> futures;
  std::vector<std::vector<geostat::Location>> pts;
  for (std::size_t r = 0; r < k; ++r) {
    pts.push_back(random_points(3 + r, 100 + r));
    futures.push_back(engine.submit(model, pts.back(), r % 2 == 0));
  }
  engine.start();

  const auto kernel = geostat::make_kernel("matern", p.theta);
  for (std::size_t r = 0; r < k; ++r) {
    PredictOutcome out = futures[r].get();
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.batched_with, k);  // all pre-queued requests in one batch
    const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts[r], true);
    expect_close(out.mean, oracle.mean, 1e-10);
    if (r % 2 == 0) expect_close(out.variance, oracle.variance, 1e-10);
    else EXPECT_TRUE(out.variance.empty());
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.accepted, k);
  EXPECT_EQ(s.completed, k);
  EXPECT_EQ(s.batches, 1u);
}

TEST(Engine, ConcurrentSubmittersAllGetCorrectAnswers) {
  const Problem p = make_problem(120);
  const auto model = make_model(p, "m");
  const auto kernel = geostat::make_kernel("matern", p.theta);
  KrigingEngine engine(EngineConfig{2, 64, 8192});

  constexpr std::size_t kThreads = 4, kPerThread = 6;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kPerThread; ++r) {
        const auto pts = random_points(5, 1000 + t * 100 + r);
        PredictOutcome out = engine.submit(model, pts, true).get();
        if (!out.ok) {
          ++failures;
          continue;
        }
        const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts, true);
        for (std::size_t i = 0; i < pts.size(); ++i)
          if (std::abs(out.mean[i] - oracle.mean[i]) >
              1e-10 * std::max(1.0, std::abs(oracle.mean[i])))
            ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine.stats().completed, kThreads * kPerThread);
}

TEST(Engine, QueueFullFastFails) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 2, 4096}, /*auto_start=*/false);

  auto f1 = engine.submit(model, random_points(2, 1), true);
  auto f2 = engine.submit(model, random_points(2, 2), true);
  auto f3 = engine.submit(model, random_points(2, 3), true);  // over capacity

  // The rejection is immediate — no dispatcher is running yet.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const PredictOutcome rejected = f3.get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "queue full");
  EXPECT_EQ(engine.stats().rejected_queue_full, 1u);

  engine.start();
  EXPECT_TRUE(f1.get().ok);
  EXPECT_TRUE(f2.get().ok);
}

TEST(Engine, ExpiredDeadlineFailsWithoutSolving) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);

  const auto expired = KrigingEngine::Clock::now() - std::chrono::milliseconds(1);
  auto f = engine.submit(model, random_points(3, 4), true, expired);
  engine.start();
  const PredictOutcome out = f.get();
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("deadline"), std::string::npos) << out.error;
  EXPECT_EQ(engine.stats().rejected_deadline, 1u);
  EXPECT_EQ(engine.stats().completed, 0u);
}

TEST(Engine, DrainFailsQueuedAndRejectsNewWork) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);
  auto f = engine.submit(model, random_points(2, 5), true);
  engine.drain();
  EXPECT_FALSE(f.get().ok);
  const PredictOutcome after = engine.submit(model, random_points(2, 6), true).get();
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.error, "engine draining");
}

TEST(Engine, NullModelAndEmptyPointsFailFast) {
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);
  EXPECT_FALSE(engine.submit(nullptr, random_points(2, 7), true).get().ok);
  const Problem p = make_problem(48);
  EXPECT_FALSE(engine.submit(make_model(p, "m"), {}, true).get().ok);
}

// --- wire protocol ----------------------------------------------------------

TEST(Wire, ParsesAndDumps) {
  const JsonValue v = JsonValue::parse(
      R"({"op":"predict","points":[[0.25,0.5],[1,2,3]],"variance":false,"s":"a\"b\n\u00e9"})");
  EXPECT_EQ(v.find("op")->as_string(), "predict");
  EXPECT_EQ(v.find("points")->as_array().size(), 2u);
  EXPECT_EQ(v.find("points")->as_array()[1].as_array()[2].as_number(), 3.0);
  EXPECT_FALSE(v.find("variance")->as_bool());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\n\xc3\xa9");
  EXPECT_EQ(v.find("missing"), nullptr);

  // dump -> parse round trip.
  const JsonValue back = JsonValue::parse(v.dump());
  EXPECT_EQ(back.dump(), v.dump());
}

TEST(Wire, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1,2,"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("\"\\u12\""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("1e999x"), InvalidArgument);
}

// --- server: handler + socket e2e -------------------------------------------

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string save_checkpoint_for(const Problem& p) {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  const std::string path = temp_path("gsx_serve_e2e.ckpt");
  save_model_checkpoint(path, ckpt);
  return path;
}

TEST(Server, HandleLineProtocolErrors) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);

  auto expect_err = [&](const std::string& line, const std::string& needle) {
    const JsonValue r = JsonValue::parse(server.handle_line(line));
    EXPECT_FALSE(r.find("ok")->as_bool()) << line;
    EXPECT_NE(r.find("error")->as_string().find(needle), std::string::npos)
        << line << " -> " << r.dump();
  };
  expect_err("this is not json", "JSON parse error");
  expect_err("[1,2,3]", "must be a JSON object");
  expect_err(R"({"noop":1})", "op");
  expect_err(R"({"op":"transmogrify"})", "unknown op");
  expect_err(R"({"op":"predict","model":"ghost","points":[[0,0]]})", "no such model");
  expect_err(R"({"op":"load","name":"x","path":"/nonexistent.ckpt"})", "cannot open");
  expect_err(R"({"op":"predict","model":"ghost"})", "no such model");

  const JsonValue health = JsonValue::parse(server.handle_line(R"({"op":"health"})"));
  EXPECT_TRUE(health.find("ok")->as_bool());
  EXPECT_EQ(health.find("status")->as_string(), "serving");
  const JsonValue stats = JsonValue::parse(server.handle_line(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("registry")->find("models")->as_number(), 0.0);
}

/// Minimal blocking NDJSON client for the e2e test.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  JsonValue request(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    EXPECT_EQ(::write(fd_, out.data(), out.size()), static_cast<ssize_t>(out.size()));
    std::string response;
    char c;
    while (::read(fd_, &c, 1) == 1 && c != '\n') response.push_back(c);
    return JsonValue::parse(response);
  }

 private:
  int fd_ = -1;
};

TEST(Server, SocketEndToEndLoadPredictStatsDrain) {
  const Problem p = make_problem(120);
  const std::string ckpt_path = save_checkpoint_for(p);
  const auto kernel = geostat::make_kernel("matern", p.theta);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  Server server(cfg);
  const std::uint16_t port = server.listen();
  ASSERT_GT(port, 0);
  std::thread accept_thread([&] { server.serve_forever(); });

  {
    Client admin(port);
    const JsonValue loaded = admin.request(
        R"({"op":"load","name":"m","path":")" + ckpt_path + R"("})");
    ASSERT_TRUE(loaded.find("ok")->as_bool()) << loaded.dump();
    EXPECT_EQ(loaded.find("kernel")->as_string(), "matern");
    EXPECT_EQ(loaded.find("n_train")->as_number(), 120.0);
  }

  // Concurrent predict clients, each on its own connection.
  constexpr std::size_t kClients = 4;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Client c(port);
      const auto pts = random_points(4, 500 + t);
      std::string req = R"({"op":"predict","model":"m","points":[)";
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (i) req += ",";
        req += "[" + std::to_string(pts[i].x) + "," + std::to_string(pts[i].y) + "]";
      }
      req += "]}";
      const JsonValue r = c.request(req);
      if (!r.find("ok")->as_bool()) {
        ++failures;
        return;
      }
      // The wire carries full double precision (shortest round-trip form),
      // but the request coordinates went through to_string (6 digits), so
      // re-derive the oracle at the *parsed* coordinates.
      std::vector<geostat::Location> sent(pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        sent[i].x = std::stod(std::to_string(pts[i].x));
        sent[i].y = std::stod(std::to_string(pts[i].y));
      }
      const auto oracle = geostat::krige(*kernel, p.locs, p.z, sent, true);
      const auto& mean = r.find("mean")->as_array();
      const auto& var = r.find("variance")->as_array();
      for (std::size_t i = 0; i < sent.size(); ++i) {
        if (std::abs(mean[i].as_number() - oracle.mean[i]) >
            1e-10 * std::max(1.0, std::abs(oracle.mean[i])))
          ++failures;
        if (std::abs(var[i].as_number() - oracle.variance[i]) >
            1e-10 * std::max(1.0, std::abs(oracle.variance[i])))
          ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);

  {
    Client admin(port);
    const JsonValue stats = admin.request(R"({"op":"stats"})");
    ASSERT_TRUE(stats.find("ok")->as_bool());
    EXPECT_GE(stats.find("engine")->find("completed")->as_number(),
              static_cast<double>(kClients));
    EXPECT_EQ(stats.find("registry")->find("models")->as_number(), 1.0);

    const JsonValue unloaded = admin.request(R"({"op":"unload","name":"m"})");
    EXPECT_TRUE(unloaded.find("ok")->as_bool());
    EXPECT_TRUE(unloaded.find("unloaded")->as_bool());
  }

  server.shutdown();
  accept_thread.join();
  EXPECT_FALSE(server.running());
  std::remove(ckpt_path.c_str());
}

// --- response schemas -------------------------------------------------------

void expect_number_field(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  ASSERT_NE(v, nullptr) << "missing \"" << key << "\"";
  EXPECT_TRUE(v->is_number()) << key;
}

TEST(Server, StatsSchemaReflectsCompletedPredict) {
  const Problem p = make_problem(72);
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  server.registry().insert(make_model(p, "m"));

  const JsonValue before = JsonValue::parse(server.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(before.find("ok")->as_bool());
  const JsonValue* reg = before.find("registry");
  const JsonValue* eng = before.find("engine");
  ASSERT_NE(reg, nullptr);
  ASSERT_NE(eng, nullptr);
  for (const char* key : {"models", "resident_bytes", "capacity_bytes", "hits",
                          "misses", "loads", "evictions"})
    expect_number_field(*reg, key);
  for (const char* key : {"accepted", "completed", "rejected_queue_full",
                          "rejected_deadline", "batches", "batched_points",
                          "queue_depth"})
    expect_number_field(*eng, key);
  EXPECT_EQ(eng->find("completed")->as_number(), 0.0);

  const JsonValue r = JsonValue::parse(server.handle_line(
      R"({"op":"predict","model":"m","points":[[0.2,0.3],[0.4,0.5]]})"));
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();

  const JsonValue after = JsonValue::parse(server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(after.find("engine")->find("completed")->as_number(), 1.0);
  EXPECT_EQ(after.find("engine")->find("accepted")->as_number(), 1.0);
  EXPECT_GE(after.find("engine")->find("batches")->as_number(), 1.0);
  EXPECT_GE(after.find("engine")->find("batched_points")->as_number(), 2.0);
  EXPECT_GE(after.find("registry")->find("hits")->as_number(), 1.0);
}

TEST(Server, HealthSchema) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  const JsonValue h = JsonValue::parse(server.handle_line(R"({"op":"health"})"));
  ASSERT_TRUE(h.find("ok")->as_bool());
  const JsonValue* status = h.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_TRUE(status->is_string());
  EXPECT_EQ(status->as_string(), "serving");
  expect_number_field(h, "models");
  expect_number_field(h, "queue_depth");
}

// --- per-request tracing ----------------------------------------------------

TEST(Server, PredictCarriesRequestIdAndConsistentTiming) {
  const Problem p = make_problem(96);
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(cfg);
  server.registry().insert(make_model(p, "m"));

  obs::set_enabled(true);
  obs::reset_trace();
  const JsonValue r = JsonValue::parse(server.handle_line(
      R"({"op":"predict","model":"m","points":[[0.1,0.9],[0.5,0.5],[0.9,0.1]]})"));
  obs::set_enabled(false);
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();

  const JsonValue* id = r.find("request_id");
  ASSERT_NE(id, nullptr);
  ASSERT_TRUE(id->is_string());
  EXPECT_EQ(id->as_string().rfind("r-", 0), 0u) << id->as_string();

  const JsonValue* timing = r.find("timing");
  ASSERT_NE(timing, nullptr);
  for (const char* key :
       {"queue_seconds", "assemble_seconds", "solve_seconds", "total_seconds"})
    expect_number_field(*timing, key);
  const double queue = timing->find("queue_seconds")->as_number();
  const double assemble = timing->find("assemble_seconds")->as_number();
  const double solve = timing->find("solve_seconds")->as_number();
  const double total = timing->find("total_seconds")->as_number();
  EXPECT_GE(queue, 0.0);
  EXPECT_GT(assemble, 0.0);
  EXPECT_GT(solve, 0.0);
  EXPECT_GT(total, 0.0);
  // The spans tile the request's life: their sum cannot exceed the total
  // (scatter/future overhead makes it strictly less).
  EXPECT_LE(queue + assemble + solve, total + 1e-9);
  EXPECT_DOUBLE_EQ(total, r.find("total_seconds")->as_number());

  // The same spans landed in the Chrome-trace store under the request id.
  const std::string prefix = id->as_string() + "/";
  int request_spans = 0;
  for (const obs::Span& s : obs::trace_spans()) {
    if (s.category != "request" || s.name.rfind(prefix, 0) != 0) continue;
    ++request_spans;
    EXPECT_LE(s.start_seconds, s.end_seconds) << s.name;
  }
  EXPECT_EQ(request_spans, 3) << "queue/assemble/solve spans for " << prefix;
}

// --- metrics exposition ------------------------------------------------------

TEST(Server, MetricsVerbRendersPrometheusText) {
  const Problem p = make_problem(72);
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  server.registry().insert(make_model(p, "m"));

  obs::set_enabled(true);
  const JsonValue r = JsonValue::parse(server.handle_line(
      R"({"op":"predict","model":"m","points":[[0.3,0.7]]})"));
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  const JsonValue m = JsonValue::parse(server.handle_line(R"({"op":"metrics"})"));
  obs::set_enabled(false);

  ASSERT_TRUE(m.find("ok")->as_bool());
  EXPECT_NE(m.find("content_type")->as_string().find("version=0.0.4"),
            std::string::npos);
  const std::string& text = m.find("prometheus")->as_string();

  // The pre-registered serving schema is present even where still zero.
  EXPECT_NE(text.find("# TYPE gsx_serve_predict_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gsx_taskgraph_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("gsx_serve_cache_bytes"), std::string::npos);
  EXPECT_NE(text.find("gsx_serve_cache_hits"), std::string::npos);

  // Round-trip the predict-latency histogram: cumulative buckets are
  // non-decreasing, the +Inf bucket equals _count, and one observe landed.
  std::istringstream in(text);
  std::string line;
  double prev = 0.0, inf_bucket = -1.0, count = -1.0;
  while (std::getline(in, line)) {
    if (line.rfind("gsx_serve_predict_seconds_bucket", 0) == 0) {
      const double value = std::stod(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(value, prev) << line;
      prev = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = value;
    } else if (line.rfind("gsx_serve_predict_seconds_count", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(inf_bucket, count);
  EXPECT_GE(count, 1.0);
}

TEST(Server, MetricsHttpScrapeEndpoint) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.metrics_port = 0;  // ephemeral
  Server server(cfg);
  const std::uint16_t port = server.listen();
  (void)port;
  ASSERT_GT(server.metrics_port(), 0);

  auto scrape = [&](const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.metrics_port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string req = "GET " + target + " HTTP/1.0\r\nHost: x\r\n\r\n";
    EXPECT_EQ(::write(fd, req.data(), req.size()), static_cast<ssize_t>(req.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
      response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
  };

  const std::string ok = scrape("/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("gsx_serve_cache_bytes"), std::string::npos);
  EXPECT_NE(ok.find("gsx_serve_predict_seconds_bucket"), std::string::npos);

  EXPECT_NE(scrape("/").find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(scrape("/nope").find("HTTP/1.0 404"), std::string::npos);

  server.shutdown();
}

// --- failure forensics -------------------------------------------------------

TEST(Server, NumericalFailureDumpsFlightRecorderWithRequestId) {
  // A checkpoint whose factor has a zero on the diagonal: loading silently
  // produces a non-finite y_solved (forward solve divides by L_00), and the
  // first predict hits the non-finite sentinel in tile_krige_solved. The
  // wire cannot inject Inf/NaN directly — this is how bad state really
  // arrives: through data, not through the protocol.
  Problem p = make_problem(72);
  core::ModelConfig mcfg;
  mcfg.variant = core::ComputeVariant::DenseFP64;
  mcfg.tile_size = 24;
  mcfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), mcfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = mcfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  ckpt.factor.at(0, 0).d64()(0, 0) = 0.0;  // the corruption
  const std::string ckpt_path = temp_path("gsx_serve_corrupt.ckpt");
  save_model_checkpoint(ckpt_path, ckpt);

  const std::string dump_path = temp_path("gsx_serve_flight.jsonl");
  std::remove(dump_path.c_str());
  obs::FlightRecorder::instance().set_dump_path(dump_path);

  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  const std::uint16_t port = server.listen();
  std::thread accept_thread([&] { server.serve_forever(); });

  {
    Client c(port);
    const JsonValue loaded =
        c.request(R"({"op":"load","name":"bad","path":")" + ckpt_path + R"("})");
    ASSERT_TRUE(loaded.find("ok")->as_bool()) << loaded.dump();

    const JsonValue r =
        c.request(R"({"op":"predict","model":"bad","points":[[0.4,0.6]]})");
    ASSERT_FALSE(r.find("ok")->as_bool()) << r.dump();
    EXPECT_NE(r.find("error")->as_string().find("non-finite"), std::string::npos)
        << r.dump();

    const JsonValue* id = r.find("request_id");
    ASSERT_NE(id, nullptr) << r.dump();
    ASSERT_EQ(id->as_string().rfind("r-", 0), 0u);
    const std::string id_num = id->as_string().substr(2);

    const JsonValue* dumped = r.find("flight_dump");
    ASSERT_NE(dumped, nullptr) << "failure response must name the dump file";
    EXPECT_EQ(dumped->as_string(), dump_path);

    // The dump must tie this request to the solve that blew up.
    std::ifstream in(dump_path);
    ASSERT_TRUE(in.good()) << dump_path;
    std::string line;
    bool solve_begin = false, sentinel = false;
    while (std::getline(in, line)) {
      if (line.find("\"request\":" + id_num) == std::string::npos) continue;
      if (line.find("\"kind\":\"solve_begin\"") != std::string::npos)
        solve_begin = true;
      if (line.find("\"kind\":\"numerical_sentinel\"") != std::string::npos)
        sentinel = true;
    }
    EXPECT_TRUE(solve_begin) << "dump lacks the request's solve_begin event";
    EXPECT_TRUE(sentinel) << "dump lacks the request's numerical_sentinel event";
  }

  server.shutdown();
  accept_thread.join();
  obs::FlightRecorder::instance().set_dump_path("");
  std::remove(ckpt_path.c_str());
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace gsx::serve
