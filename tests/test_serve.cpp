// Serving subsystem: registry LRU semantics, batched kriging engine
// (correctness vs the dense oracle, admission control, deadlines), the wire
// protocol, and a full socket end-to-end pass against the daemon's Server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "geostat/field.hpp"
#include "geostat/kernel_registry.hpp"
#include "geostat/locations.hpp"
#include "geostat/prediction.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {
namespace {

struct Problem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
  std::vector<double> theta{1.0, 0.1, 0.5};
};

Problem make_problem(std::size_t n, std::uint64_t seed = 13) {
  Rng rng(seed);
  Problem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  const auto kernel = geostat::make_kernel("matern", p.theta);
  p.z = geostat::simulate_grf(*kernel, p.locs, rng);
  return p;
}

std::shared_ptr<const LoadedModel> make_model(const Problem& p, const std::string& name) {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  return LoadedModel::from_checkpoint(name, std::move(ckpt));
}

std::vector<geostat::Location> random_points(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geostat::Location> pts(m);
  for (geostat::Location& l : pts) {
    l.x = rng.uniform();
    l.y = rng.uniform();
  }
  return pts;
}

/// |a - b| <= tol * max(1, |b|), elementwise.
void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_LE(std::abs(a[i] - b[i]), tol * std::max(1.0, std::abs(b[i]))) << i;
}

// --- registry ---------------------------------------------------------------

TEST(Registry, InsertGetUnloadStats) {
  const Problem p = make_problem(72);
  ModelRegistry reg;
  EXPECT_EQ(reg.get("a"), nullptr);
  reg.insert(make_model(p, "a"));
  const auto a = reg.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");

  const RegistryStats s = reg.stats();
  EXPECT_EQ(s.models, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident_bytes, a->resident_bytes);

  EXPECT_TRUE(reg.unload("a"));
  EXPECT_FALSE(reg.unload("a"));
  EXPECT_EQ(reg.stats().models, 0u);
  EXPECT_EQ(reg.stats().resident_bytes, 0u);
}

TEST(Registry, EvictsLeastRecentlyUsedUnderPressure) {
  const Problem p = make_problem(72);
  const auto a = make_model(p, "a");
  // Capacity fits two models but not three.
  ModelRegistry reg(a->resident_bytes * 5 / 2);
  reg.insert(a);
  reg.insert(make_model(p, "b"));
  ASSERT_NE(reg.get("a"), nullptr);  // bump a's recency above b's
  reg.insert(make_model(p, "c"));    // must evict b, the LRU entry

  EXPECT_NE(reg.get("a"), nullptr);
  EXPECT_EQ(reg.get("b"), nullptr);
  EXPECT_NE(reg.get("c"), nullptr);
  EXPECT_EQ(reg.stats().evictions, 1u);
  EXPECT_EQ(reg.stats().models, 2u);
}

TEST(Registry, ReplacingANameDoesNotLeakBytes) {
  const Problem p = make_problem(72);
  ModelRegistry reg;
  reg.insert(make_model(p, "a"));
  const std::size_t once = reg.stats().resident_bytes;
  reg.insert(make_model(p, "a"));
  EXPECT_EQ(reg.stats().resident_bytes, once);
  EXPECT_EQ(reg.stats().models, 1u);
}

TEST(Registry, RejectsModelLargerThanCache) {
  const Problem p = make_problem(72);
  ModelRegistry reg(128);  // bytes — far below any real model
  EXPECT_THROW(reg.insert(make_model(p, "big")), InvalidArgument);
}

// --- engine -----------------------------------------------------------------

TEST(Engine, MatchesDenseKrigingOracle) {
  const Problem p = make_problem(120);
  const auto model = make_model(p, "m");
  const auto pts = random_points(17, 29);

  KrigingEngine engine(EngineConfig{2, 16, 4096});
  PredictOutcome out = engine.submit(model, pts, true).get();
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(out.mean.size(), pts.size());

  const auto kernel = geostat::make_kernel("matern", p.theta);
  const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts, true);
  expect_close(out.mean, oracle.mean, 1e-10);
  expect_close(out.variance, oracle.variance, 1e-10);
}

TEST(Engine, MicroBatchesQueuedRequestsIntoOnePass) {
  const Problem p = make_problem(96);
  const auto model = make_model(p, "m");
  const std::size_t k = 5;

  KrigingEngine engine(EngineConfig{1, 16, 4096}, /*auto_start=*/false);
  std::vector<std::future<PredictOutcome>> futures;
  std::vector<std::vector<geostat::Location>> pts;
  for (std::size_t r = 0; r < k; ++r) {
    pts.push_back(random_points(3 + r, 100 + r));
    futures.push_back(engine.submit(model, pts.back(), r % 2 == 0));
  }
  engine.start();

  const auto kernel = geostat::make_kernel("matern", p.theta);
  for (std::size_t r = 0; r < k; ++r) {
    PredictOutcome out = futures[r].get();
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.batched_with, k);  // all pre-queued requests in one batch
    const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts[r], true);
    expect_close(out.mean, oracle.mean, 1e-10);
    if (r % 2 == 0) expect_close(out.variance, oracle.variance, 1e-10);
    else EXPECT_TRUE(out.variance.empty());
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.accepted, k);
  EXPECT_EQ(s.completed, k);
  EXPECT_EQ(s.batches, 1u);
}

TEST(Engine, ConcurrentSubmittersAllGetCorrectAnswers) {
  const Problem p = make_problem(120);
  const auto model = make_model(p, "m");
  const auto kernel = geostat::make_kernel("matern", p.theta);
  KrigingEngine engine(EngineConfig{2, 64, 8192});

  constexpr std::size_t kThreads = 4, kPerThread = 6;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kPerThread; ++r) {
        const auto pts = random_points(5, 1000 + t * 100 + r);
        PredictOutcome out = engine.submit(model, pts, true).get();
        if (!out.ok) {
          ++failures;
          continue;
        }
        const auto oracle = geostat::krige(*kernel, p.locs, p.z, pts, true);
        for (std::size_t i = 0; i < pts.size(); ++i)
          if (std::abs(out.mean[i] - oracle.mean[i]) >
              1e-10 * std::max(1.0, std::abs(oracle.mean[i])))
            ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine.stats().completed, kThreads * kPerThread);
}

TEST(Engine, QueueFullFastFails) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 2, 4096}, /*auto_start=*/false);

  auto f1 = engine.submit(model, random_points(2, 1), true);
  auto f2 = engine.submit(model, random_points(2, 2), true);
  auto f3 = engine.submit(model, random_points(2, 3), true);  // over capacity

  // The rejection is immediate — no dispatcher is running yet.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const PredictOutcome rejected = f3.get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "queue full");
  EXPECT_EQ(engine.stats().rejected_queue_full, 1u);

  engine.start();
  EXPECT_TRUE(f1.get().ok);
  EXPECT_TRUE(f2.get().ok);
}

TEST(Engine, ExpiredDeadlineFailsWithoutSolving) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);

  const auto expired = KrigingEngine::Clock::now() - std::chrono::milliseconds(1);
  auto f = engine.submit(model, random_points(3, 4), true, expired);
  engine.start();
  const PredictOutcome out = f.get();
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("deadline"), std::string::npos) << out.error;
  EXPECT_EQ(engine.stats().rejected_deadline, 1u);
  EXPECT_EQ(engine.stats().completed, 0u);
}

TEST(Engine, DrainFailsQueuedAndRejectsNewWork) {
  const Problem p = make_problem(48);
  const auto model = make_model(p, "m");
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);
  auto f = engine.submit(model, random_points(2, 5), true);
  engine.drain();
  EXPECT_FALSE(f.get().ok);
  const PredictOutcome after = engine.submit(model, random_points(2, 6), true).get();
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.error, "engine draining");
}

TEST(Engine, NullModelAndEmptyPointsFailFast) {
  KrigingEngine engine(EngineConfig{1, 8, 4096}, /*auto_start=*/false);
  EXPECT_FALSE(engine.submit(nullptr, random_points(2, 7), true).get().ok);
  const Problem p = make_problem(48);
  EXPECT_FALSE(engine.submit(make_model(p, "m"), {}, true).get().ok);
}

// --- wire protocol ----------------------------------------------------------

TEST(Wire, ParsesAndDumps) {
  const JsonValue v = JsonValue::parse(
      R"({"op":"predict","points":[[0.25,0.5],[1,2,3]],"variance":false,"s":"a\"b\n\u00e9"})");
  EXPECT_EQ(v.find("op")->as_string(), "predict");
  EXPECT_EQ(v.find("points")->as_array().size(), 2u);
  EXPECT_EQ(v.find("points")->as_array()[1].as_array()[2].as_number(), 3.0);
  EXPECT_FALSE(v.find("variance")->as_bool());
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\n\xc3\xa9");
  EXPECT_EQ(v.find("missing"), nullptr);

  // dump -> parse round trip.
  const JsonValue back = JsonValue::parse(v.dump());
  EXPECT_EQ(back.dump(), v.dump());
}

TEST(Wire, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1,2,"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("\"\\u12\""), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("1e999x"), InvalidArgument);
}

// --- server: handler + socket e2e -------------------------------------------

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string save_checkpoint_for(const Problem& p) {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  const std::string path = temp_path("gsx_serve_e2e.ckpt");
  save_model_checkpoint(path, ckpt);
  return path;
}

TEST(Server, HandleLineProtocolErrors) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);

  auto expect_err = [&](const std::string& line, const std::string& needle) {
    const JsonValue r = JsonValue::parse(server.handle_line(line));
    EXPECT_FALSE(r.find("ok")->as_bool()) << line;
    EXPECT_NE(r.find("error")->as_string().find(needle), std::string::npos)
        << line << " -> " << r.dump();
  };
  expect_err("this is not json", "JSON parse error");
  expect_err("[1,2,3]", "must be a JSON object");
  expect_err(R"({"noop":1})", "op");
  expect_err(R"({"op":"transmogrify"})", "unknown op");
  expect_err(R"({"op":"predict","model":"ghost","points":[[0,0]]})", "no such model");
  expect_err(R"({"op":"load","name":"x","path":"/nonexistent.ckpt"})", "cannot open");
  expect_err(R"({"op":"predict","model":"ghost"})", "no such model");

  const JsonValue health = JsonValue::parse(server.handle_line(R"({"op":"health"})"));
  EXPECT_TRUE(health.find("ok")->as_bool());
  EXPECT_EQ(health.find("status")->as_string(), "serving");
  const JsonValue stats = JsonValue::parse(server.handle_line(R"({"op":"stats"})"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("registry")->find("models")->as_number(), 0.0);
}

/// Minimal blocking NDJSON client for the e2e test.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  JsonValue request(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    EXPECT_EQ(::write(fd_, out.data(), out.size()), static_cast<ssize_t>(out.size()));
    std::string response;
    char c;
    while (::read(fd_, &c, 1) == 1 && c != '\n') response.push_back(c);
    return JsonValue::parse(response);
  }

 private:
  int fd_ = -1;
};

TEST(Server, SocketEndToEndLoadPredictStatsDrain) {
  const Problem p = make_problem(120);
  const std::string ckpt_path = save_checkpoint_for(p);
  const auto kernel = geostat::make_kernel("matern", p.theta);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  Server server(cfg);
  const std::uint16_t port = server.listen();
  ASSERT_GT(port, 0);
  std::thread accept_thread([&] { server.serve_forever(); });

  {
    Client admin(port);
    const JsonValue loaded = admin.request(
        R"({"op":"load","name":"m","path":")" + ckpt_path + R"("})");
    ASSERT_TRUE(loaded.find("ok")->as_bool()) << loaded.dump();
    EXPECT_EQ(loaded.find("kernel")->as_string(), "matern");
    EXPECT_EQ(loaded.find("n_train")->as_number(), 120.0);
  }

  // Concurrent predict clients, each on its own connection.
  constexpr std::size_t kClients = 4;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Client c(port);
      const auto pts = random_points(4, 500 + t);
      std::string req = R"({"op":"predict","model":"m","points":[)";
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (i) req += ",";
        req += "[" + std::to_string(pts[i].x) + "," + std::to_string(pts[i].y) + "]";
      }
      req += "]}";
      const JsonValue r = c.request(req);
      if (!r.find("ok")->as_bool()) {
        ++failures;
        return;
      }
      // The wire carries full double precision (shortest round-trip form),
      // but the request coordinates went through to_string (6 digits), so
      // re-derive the oracle at the *parsed* coordinates.
      std::vector<geostat::Location> sent(pts.size());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        sent[i].x = std::stod(std::to_string(pts[i].x));
        sent[i].y = std::stod(std::to_string(pts[i].y));
      }
      const auto oracle = geostat::krige(*kernel, p.locs, p.z, sent, true);
      const auto& mean = r.find("mean")->as_array();
      const auto& var = r.find("variance")->as_array();
      for (std::size_t i = 0; i < sent.size(); ++i) {
        if (std::abs(mean[i].as_number() - oracle.mean[i]) >
            1e-10 * std::max(1.0, std::abs(oracle.mean[i])))
          ++failures;
        if (std::abs(var[i].as_number() - oracle.variance[i]) >
            1e-10 * std::max(1.0, std::abs(oracle.variance[i])))
          ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);

  {
    Client admin(port);
    const JsonValue stats = admin.request(R"({"op":"stats"})");
    ASSERT_TRUE(stats.find("ok")->as_bool());
    EXPECT_GE(stats.find("engine")->find("completed")->as_number(),
              static_cast<double>(kClients));
    EXPECT_EQ(stats.find("registry")->find("models")->as_number(), 1.0);

    const JsonValue unloaded = admin.request(R"({"op":"unload","name":"m"})");
    EXPECT_TRUE(unloaded.find("ok")->as_bool());
    EXPECT_TRUE(unloaded.find("unloaded")->as_bool());
  }

  server.shutdown();
  accept_thread.join();
  EXPECT_FALSE(server.running());
  std::remove(ckpt_path.c_str());
}

}  // namespace
}  // namespace gsx::serve
