// TLR tile Cholesky: compression decisions and factorization accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

using gsx::test::rel_frobenius_diff;

/// Matérn covariance tiles over Morton-sorted 2-D locations: the real
/// application structure with low off-diagonal ranks.
tile::SymTileMatrix matern_tiles(std::size_t n, std::size_t ts, double range,
                                 std::uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<geostat::Location> locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, range, 0.5, 1e-6);
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  return a;
}

la::Matrix<double> reference_chol(const tile::SymTileMatrix& a) {
  la::Matrix<double> full = a.to_full();
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, full.view()), 0);
  for (std::size_t j = 0; j < full.cols(); ++j)
    for (std::size_t i = 0; i < j; ++i) full(i, j) = 0.0;
  return full;
}

TEST(CompressOffband, BandTilesStayDense) {
  auto a = matern_tiles(128, 32, 0.05);
  TlrCompressOptions copt;
  copt.band_size = 2;
  copt.lr_fp32 = false;
  const CompressStats cs = compress_offband(a, copt, 1);
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) {
      if (i - j < 2) {
        EXPECT_EQ(a.at(i, j).format(), tile::TileFormat::Dense);
      }
    }
  EXPECT_GT(cs.lr_tiles, 0u);
  EXPECT_LT(cs.bytes_after, cs.bytes_before);
}

TEST(CompressOffband, CompressionErrorWithinTolerance) {
  auto a = matern_tiles(128, 32, 0.05);
  const auto before = a.to_full();
  TlrCompressOptions copt;
  copt.tol = 1e-6;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  compress_offband(a, copt, 1);
  const auto after = a.to_full();
  // Each compressed tile is within tol; total error <= nt * tol (loose).
  double diff = 0.0;
  for (std::size_t j = 0; j < 128; ++j)
    for (std::size_t i = 0; i < 128; ++i) {
      const double d = after(i, j) - before(i, j);
      diff += d * d;
    }
  EXPECT_LT(std::sqrt(diff), 1e-6 * a.nt() * a.nt());
}

TEST(CompressOffband, WeakCorrelationGivesLowerRanks) {
  auto weak = matern_tiles(192, 32, 0.03);
  auto strong = matern_tiles(192, 32, 0.3);
  TlrCompressOptions copt;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  copt.max_rank = 32;  // disable the structure reversion for the comparison
  const CompressStats ws = compress_offband(weak, copt, 1);
  const CompressStats ss = compress_offband(strong, copt, 1);
  EXPECT_LT(ws.avg_rank, ss.avg_rank)
      << "weak correlation must compress to lower ranks (paper Fig. 9)";
}

TEST(CompressOffband, HighRankTilesRevertToDense) {
  auto a = matern_tiles(96, 32, 0.5);  // strong correlation: high ranks
  TlrCompressOptions copt;
  copt.band_size = 1;
  copt.max_rank = 2;  // absurdly low cap: everything reverts
  copt.lr_fp32 = false;
  const CompressStats cs = compress_offband(a, copt, 1);
  EXPECT_GT(cs.reverted_tiles, 0u);
  EXPECT_EQ(cs.lr_tiles + cs.reverted_tiles, a.nt() * (a.nt() - 1) / 2);
}

TEST(CompressOffband, ParallelMatchesSequential) {
  auto a1 = matern_tiles(128, 32, 0.05);
  auto a2 = matern_tiles(128, 32, 0.05);
  TlrCompressOptions copt;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  compress_offband(a1, copt, 1);
  compress_offband(a2, copt, 4);
  EXPECT_LT(rel_frobenius_diff(a2.to_full(), a1.to_full()), 1e-14);
}

struct TlrCase {
  std::size_t n, ts, band, workers;
  double tol;
};

class TlrCholesky : public ::testing::TestWithParam<TlrCase> {};

TEST_P(TlrCholesky, FactorAccuracyTracksTolerance) {
  const auto c = GetParam();
  auto a = matern_tiles(c.n, c.ts, 0.06);
  const la::Matrix<double> expect = reference_chol(a);

  TlrCompressOptions copt;
  copt.tol = c.tol;
  copt.band_size = c.band;
  copt.lr_fp32 = false;
  compress_offband(a, copt, 1);

  FactorOptions fopt;
  fopt.workers = c.workers;
  const FactorReport rep = tile_cholesky_tlr(a, c.tol, fopt);
  ASSERT_EQ(rep.info, 0);

  // The factor L~ satisfies L~ L~^T ~= A within the compression accuracy.
  const la::Matrix<double> l = reconstruct_lower(a);
  la::Matrix<double> rec(c.n, c.n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, l.cview(), l.cview(), 0.0,
                   rec.view());
  la::Matrix<double> lref(c.n, c.n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, expect.cview(),
                   expect.cview(), 0.0, lref.view());
  const double err = rel_frobenius_diff(rec, lref);
  EXPECT_LT(err, c.tol * 1e3) << "reconstruction error should track tolerance";
}

INSTANTIATE_TEST_SUITE_P(Cases, TlrCholesky,
                         ::testing::Values(TlrCase{128, 32, 1, 1, 1e-8},
                                           TlrCase{128, 32, 2, 1, 1e-8},
                                           TlrCase{128, 32, 1, 4, 1e-8},
                                           TlrCase{144, 32, 2, 2, 1e-6},  // ragged
                                           TlrCase{128, 32, 1, 1, 1e-10}));

TEST(TlrCholeskyAccuracy, TighterToleranceIsMoreAccurate) {
  double prev = -1.0;
  for (double tol : {1e-3, 1e-6, 1e-10}) {
    auto a = matern_tiles(128, 32, 0.06);
    const la::Matrix<double> expect = reference_chol(a);
    TlrCompressOptions copt;
    copt.tol = tol;
    copt.band_size = 1;
    copt.lr_fp32 = false;
    compress_offband(a, copt, 1);
    FactorOptions fopt;
    ASSERT_EQ(tile_cholesky_tlr(a, tol, fopt).info, 0);
    const double err = rel_frobenius_diff(reconstruct_lower(a), expect);
    if (prev >= 0.0) EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(TlrCholeskyAccuracy, LogdetCloseToReference) {
  auto a = matern_tiles(160, 32, 0.06);
  const la::Matrix<double> ref = reference_chol(a);
  double expect = 0.0;
  for (std::size_t i = 0; i < 160; ++i) expect += 2.0 * std::log(ref(i, i));

  TlrCompressOptions copt;
  copt.tol = 1e-9;
  copt.band_size = 1;
  compress_offband(a, copt, 1);
  FactorOptions fopt;
  ASSERT_EQ(tile_cholesky_tlr(a, 1e-9, fopt).info, 0);
  EXPECT_NEAR(tile_logdet(a), expect, 1e-4 * std::fabs(expect));
}

TEST(TlrCholeskyAccuracy, MixedPrecisionLrStorageStillAccurate) {
  auto a = matern_tiles(128, 32, 0.06);
  const la::Matrix<double> expect = reference_chol(a);
  TlrCompressOptions copt;
  copt.tol = 1e-6;
  copt.band_size = 1;
  copt.lr_fp32 = true;  // allow FP32 LR factors where the norm rule permits
  copt.eps_target = 1e-6;
  compress_offband(a, copt, 1);
  FactorOptions fopt;
  ASSERT_EQ(tile_cholesky_tlr(a, 1e-6, fopt).info, 0);
  EXPECT_LT(rel_frobenius_diff(reconstruct_lower(a), expect), 1e-2);
}

TEST(TlrCholeskyAccuracy, ParallelMatchesSequentialClosely) {
  auto a1 = matern_tiles(128, 32, 0.06);
  auto a2 = matern_tiles(128, 32, 0.06);
  TlrCompressOptions copt;
  copt.tol = 1e-8;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  compress_offband(a1, copt, 1);
  compress_offband(a2, copt, 1);
  FactorOptions seq, par;
  seq.workers = 1;
  par.workers = 6;
  ASSERT_EQ(tile_cholesky_tlr(a1, 1e-8, seq).info, 0);
  ASSERT_EQ(tile_cholesky_tlr(a2, 1e-8, par).info, 0);
  // Identical DAG and deterministic kernels: identical results.
  EXPECT_LT(rel_frobenius_diff(reconstruct_lower(a2), reconstruct_lower(a1)), 1e-14);
}

TEST(TlrCholeskyFootprint, CompressedFootprintSmaller) {
  auto a = matern_tiles(384, 32, 0.03);
  const std::size_t dense_bytes = a.footprint_bytes();
  TlrCompressOptions copt;
  copt.tol = 1e-8;
  copt.band_size = 1;
  const CompressStats cs = compress_offband(a, copt, 1);
  // At laptop scale the reduction is smaller than the paper's 79% at n=1M,
  // but must already be substantial and must grow with n (see the bench).
  EXPECT_LT(a.footprint_bytes(), (dense_bytes * 7) / 10);
  EXPECT_EQ(cs.bytes_after, a.footprint_bytes());

  auto small = matern_tiles(128, 32, 0.03);
  const std::size_t small_dense = small.footprint_bytes();
  compress_offband(small, copt, 1);
  const double small_ratio = static_cast<double>(small.footprint_bytes()) /
                             static_cast<double>(small_dense);
  const double big_ratio =
      static_cast<double>(a.footprint_bytes()) / static_cast<double>(dense_bytes);
  EXPECT_LT(big_ratio, small_ratio) << "memory reduction must improve with n";
}

}  // namespace
}  // namespace gsx::cholesky
