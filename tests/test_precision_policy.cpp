// Precision-aware tile decisions: band rule and adaptive Frobenius rule.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/precision_policy.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

TEST(BandRule, DistanceThresholds) {
  const BandConfig cfg{2, 5};
  EXPECT_EQ(band_precision(3, 3, cfg, true), Precision::FP64);   // diagonal
  EXPECT_EQ(band_precision(4, 3, cfg, true), Precision::FP64);   // dist 1
  EXPECT_EQ(band_precision(5, 3, cfg, true), Precision::FP32);   // dist 2
  EXPECT_EQ(band_precision(7, 3, cfg, true), Precision::FP32);   // dist 4
  EXPECT_EQ(band_precision(8, 3, cfg, true), Precision::FP16);   // dist 5
  EXPECT_EQ(band_precision(20, 3, cfg, true), Precision::FP16);
}

TEST(BandRule, SymmetricInIndices) {
  const BandConfig cfg{1, 3};
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(band_precision(i, j, cfg, true), band_precision(j, i, cfg, true));
}

TEST(BandRule, Fp16DisabledFallsBackToFp32) {
  const BandConfig cfg{1, 2};
  EXPECT_EQ(band_precision(9, 0, cfg, false), Precision::FP32);
}

TEST(BandRule, Bf16IsThe16BitTierWhenFp16Disallowed) {
  const BandConfig cfg{1, 2};
  // FP16 preferred (smaller roundoff) when both 16-bit formats are allowed.
  EXPECT_EQ(band_precision(9, 0, cfg, true, true), Precision::FP16);
  EXPECT_EQ(band_precision(9, 0, cfg, false, true), Precision::BF16);
  // Inside the FP32 band the 16-bit flags are irrelevant.
  EXPECT_EQ(band_precision(1, 0, cfg, false, true), Precision::FP32);
  // Neither 16-bit format allowed: stay FP32.
  EXPECT_EQ(band_precision(9, 0, cfg, false, false), Precision::FP32);
}

TEST(BandRule, PolicyAppliesBf16Band) {
  tile::SymTileMatrix a(64, 16);
  a.generate([](std::size_t i, std::size_t j) { return i == j ? 4.0 : 0.25; }, 1);
  PrecisionPolicy policy;
  policy.rule = PrecisionRule::Band;
  policy.band = {1, 2};
  policy.allow_fp16 = false;
  policy.allow_bf16 = true;
  const PolicyStats stats = apply_precision_policy(a, policy);
  EXPECT_EQ(stats.fp16_tiles, 0u);
  EXPECT_GT(stats.bf16_tiles, 0u);
  EXPECT_EQ(a.at(3, 0).precision(), Precision::BF16);
  EXPECT_EQ(a.at(1, 0).precision(), Precision::FP32);
}

TEST(FrobeniusRule, ThresholdsOrdered) {
  // A tile must need a *smaller* norm to qualify for FP16 than for FP32.
  const double global = 100.0;
  const std::size_t nt = 10;
  const double eps = 1e-8;
  const double t32 = eps * global / (nt * unit_roundoff(Precision::FP32));
  const double t16 = eps * global / (nt * unit_roundoff(Precision::FP16));
  EXPECT_LT(t16, t32);
  // Just below each threshold -> that precision.
  EXPECT_EQ(frobenius_precision(t16 * 0.99, global, nt, eps, true), Precision::FP16);
  EXPECT_EQ(frobenius_precision(t16 * 1.01, global, nt, eps, true), Precision::FP32);
  EXPECT_EQ(frobenius_precision(t32 * 0.99, global, nt, eps, true), Precision::FP32);
  EXPECT_EQ(frobenius_precision(t32 * 1.01, global, nt, eps, true), Precision::FP64);
}

TEST(FrobeniusRule, Fp16DisabledNeverReturnsFp16) {
  EXPECT_EQ(frobenius_precision(1e-30, 1.0, 4, 1e-8, false), Precision::FP32);
  EXPECT_EQ(frobenius_precision(1e-30, 1.0, 4, 1e-8, true), Precision::FP16);
}

TEST(FrobeniusRule, TighterEpsKeepsMorePrecision) {
  const double norm = 1e-6, global = 1.0;
  const Precision loose = frobenius_precision(norm, global, 8, 1e-2, true);
  const Precision tight = frobenius_precision(norm, global, 8, 1e-12, true);
  EXPECT_TRUE(at_least(tight, loose));
}

/// Exponentially decaying symmetric matrix: realistic norm profile.
tile::SymTileMatrix decaying_matrix(std::size_t n, std::size_t ts, double rate) {
  tile::SymTileMatrix a(n, ts);
  a.generate(
      [&](std::size_t i, std::size_t j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        return std::exp(-rate * d) + (i == j ? 1.0 : 0.0);
      },
      1);
  return a;
}

TEST(ApplyPolicy, AllFp64LeavesEverythingAlone) {
  auto a = decaying_matrix(48, 8, 0.5);
  PrecisionPolicy p;
  p.rule = PrecisionRule::AllFP64;
  const PolicyStats stats = apply_precision_policy(a, p);
  EXPECT_EQ(stats.fp64_tiles, 21u);  // 6*7/2 stored tiles
  EXPECT_EQ(stats.fp32_tiles, 0u);
  EXPECT_EQ(stats.bytes_before, stats.bytes_after);
}

TEST(ApplyPolicy, BandRuleSetsExpectedPattern) {
  auto a = decaying_matrix(48, 8, 0.5);
  PrecisionPolicy p;
  p.rule = PrecisionRule::Band;
  p.band = BandConfig{1, 3};
  const PolicyStats stats = apply_precision_policy(a, p);
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) {
      const std::size_t d = i - j;
      const Precision expect =
          (d == 0) ? Precision::FP64 : (d < 3 ? Precision::FP32 : Precision::FP16);
      EXPECT_EQ(a.at(i, j).precision(), expect) << i << "," << j;
    }
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
}

TEST(ApplyPolicy, FrobeniusGlobalErrorBoundHolds) {
  // The paper's guarantee: ||A^ - A||_F <= eps ||A||_F after demotion.
  auto a = decaying_matrix(64, 8, 1.2);
  const auto before = a.to_full();
  const double norm = la::norm_frobenius<double>(before.cview());

  for (double eps : {1e-4, 1e-8}) {
    auto b = decaying_matrix(64, 8, 1.2);
    PrecisionPolicy p;
    p.rule = PrecisionRule::AdaptiveFrobenius;
    p.eps_target = eps;
    apply_precision_policy(b, p);
    const auto after = b.to_full();
    double diff = 0.0;
    for (std::size_t j = 0; j < 64; ++j)
      for (std::size_t i = 0; i < 64; ++i) {
        const double d = after(i, j) - before(i, j);
        diff += d * d;
      }
    EXPECT_LE(std::sqrt(diff), eps * norm * 1.0001) << "eps = " << eps;
  }
}

TEST(ApplyPolicy, FasterDecayDemotesMoreTiles) {
  auto slow = decaying_matrix(96, 8, 0.2);
  auto fast = decaying_matrix(96, 8, 2.0);
  PrecisionPolicy p;
  p.rule = PrecisionRule::AdaptiveFrobenius;
  p.eps_target = 1e-6;
  const PolicyStats s1 = apply_precision_policy(slow, p);
  const PolicyStats s2 = apply_precision_policy(fast, p);
  EXPECT_GE(s2.fp16_tiles + s2.fp32_tiles, s1.fp16_tiles + s1.fp32_tiles)
      << "weakly correlated matrices must yield more low-precision tiles";
  EXPECT_LE(s2.bytes_after, s1.bytes_after);
}

TEST(ApplyPolicy, DiagonalAlwaysFp64) {
  auto a = decaying_matrix(40, 8, 5.0);
  PrecisionPolicy p;
  p.rule = PrecisionRule::AdaptiveFrobenius;
  p.eps_target = 1e-1;  // aggressive: everything off-diagonal demotes
  apply_precision_policy(a, p);
  for (std::size_t k = 0; k < a.nt(); ++k)
    EXPECT_EQ(a.at(k, k).precision(), Precision::FP64);
}

TEST(ApplyPolicy, StatsCountsAddUp) {
  auto a = decaying_matrix(80, 16, 0.8);
  PrecisionPolicy p;
  p.rule = PrecisionRule::AdaptiveFrobenius;
  p.eps_target = 1e-8;
  const PolicyStats stats = apply_precision_policy(a, p);
  EXPECT_EQ(stats.fp64_tiles + stats.fp32_tiles + stats.fp16_tiles,
            a.nt() * (a.nt() + 1) / 2);
  EXPECT_EQ(stats.bytes_after, a.footprint_bytes());
}

}  // namespace
}  // namespace gsx::cholesky
