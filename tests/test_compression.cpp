// Low-rank compression: error bounds, rank recovery, recompression.
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/covariance.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"
#include "tlr/compression.hpp"

namespace gsx::tlr {
namespace {

using gsx::test::random_lowrank;
using gsx::test::random_matrix;

/// A covariance-like block: smooth decay with distance, numerically low-rank.
la::Matrix<double> covariance_block(std::size_t m, std::size_t n, double sep) {
  la::Matrix<double> a(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      const double xi = static_cast<double>(i) / static_cast<double>(m);
      const double xj = sep + static_cast<double>(j) / static_cast<double>(n);
      a(i, j) = std::exp(-std::fabs(xi - xj) * 3.0);
    }
  return a;
}

struct MethodCase {
  CompressionMethod method;
  const char* name;
};

class CompressionMethods : public ::testing::TestWithParam<MethodCase> {};

TEST_P(CompressionMethods, MeetsAbsoluteTolerance) {
  Rng rng(11);
  const auto a = covariance_block(40, 36, 1.5);
  for (double tol : {1e-2, 1e-4, 1e-8}) {
    Rng local(5);
    const Compressed c = compress(GetParam().method, a.cview(), tol, local,
                                  TolMode::Absolute);
    EXPECT_LE(lowrank_error(a.cview(), c.u, c.v), tol * 1.0001)
        << GetParam().name << " tol=" << tol;
  }
}

TEST_P(CompressionMethods, MeetsRelativeTolerance) {
  const auto a = covariance_block(32, 32, 2.0);
  const double norm = la::norm_frobenius<double>(a.cview());
  for (double tol : {1e-3, 1e-6}) {
    Rng local(6);
    const Compressed c = compress(GetParam().method, a.cview(), tol, local,
                                  TolMode::RelativeFrobenius);
    EXPECT_LE(lowrank_error(a.cview(), c.u, c.v), tol * norm * 1.0001)
        << GetParam().name << " tol=" << tol;
  }
}

TEST_P(CompressionMethods, RecoversExactRank) {
  Rng rng(21);
  const auto a = random_lowrank(30, 25, 4, rng);
  Rng local(7);
  const Compressed c = compress(GetParam().method, a.cview(), 1e-10, local,
                                TolMode::RelativeFrobenius);
  EXPECT_GE(c.rank(), 4u) << GetParam().name;
  EXPECT_LE(c.rank(), 8u) << GetParam().name << ": rank should stay near the true rank";
  EXPECT_LE(lowrank_error(a.cview(), c.u, c.v),
            1e-9 * la::norm_frobenius<double>(a.cview()));
}

TEST_P(CompressionMethods, TighterToleranceNeverLowersRank) {
  const auto a = covariance_block(36, 36, 1.2);
  Rng r1(8), r2(8);
  const Compressed loose = compress(GetParam().method, a.cview(), 1e-2, r1,
                                    TolMode::Absolute);
  const Compressed tight = compress(GetParam().method, a.cview(), 1e-9, r2,
                                    TolMode::Absolute);
  EXPECT_LE(loose.rank(), tight.rank()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(All, CompressionMethods,
                         ::testing::Values(MethodCase{CompressionMethod::SVD, "svd"},
                                           MethodCase{CompressionMethod::ACA, "aca"},
                                           MethodCase{CompressionMethod::RSVD, "rsvd"}),
                         [](const auto& info) { return info.param.name; });

TEST(CompressSvd, ZeroMatrixGivesRankZero) {
  const la::Matrix<double> a(10, 10);
  const Compressed c = compress_svd(a.cview(), 1e-8, TolMode::Absolute);
  EXPECT_EQ(c.rank(), 0u);
}

TEST(CompressSvd, RectangularBlocks) {
  Rng rng(31);
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{20, 8},
                      std::pair<std::size_t, std::size_t>{8, 20}}) {
    const auto a = random_lowrank(m, n, 3, rng);
    const Compressed c = compress_svd(a.cview(), 1e-12, TolMode::RelativeFrobenius);
    EXPECT_EQ(c.u.rows(), m);
    EXPECT_EQ(c.v.rows(), n);
    EXPECT_LE(lowrank_error(a.cview(), c.u, c.v),
              1e-10 * la::norm_frobenius<double>(a.cview()));
  }
}

TEST(Recompress, ReducesInflatedRank) {
  Rng rng(41);
  // Build an exactly rank-3 block represented with rank 12 factors.
  const auto a = random_lowrank(24, 20, 3, rng);
  Compressed c = compress_svd(a.cview(), 1e-14, TolMode::Absolute);
  const std::size_t true_rank = c.rank();
  // Inflate: duplicate columns scaled by 0.5 (same span, higher rank).
  la::Matrix<double> u2(24, 2 * true_rank), v2(20, 2 * true_rank);
  for (std::size_t j = 0; j < true_rank; ++j) {
    for (std::size_t i = 0; i < 24; ++i) {
      u2(i, j) = 0.5 * c.u(i, j);
      u2(i, true_rank + j) = 0.5 * c.u(i, j);
    }
    for (std::size_t i = 0; i < 20; ++i) {
      v2(i, j) = c.v(i, j);
      v2(i, true_rank + j) = c.v(i, j);
    }
  }
  recompress(u2, v2, 1e-10, TolMode::Absolute);
  EXPECT_EQ(u2.cols(), true_rank);
  EXPECT_LE(lowrank_error(a.cview(), u2, v2), 1e-8);
}

TEST(Recompress, PreservesValueWithinTolerance) {
  Rng rng(42);
  const std::size_t m = 30, n = 26, k = 9;
  auto u = random_matrix(m, k, rng);
  auto v = random_matrix(n, k, rng);
  la::Matrix<double> before(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                   before.view());
  recompress(u, v, 1e-6, TolMode::Absolute);
  EXPECT_LE(lowrank_error(before.cview(), u, v), 1e-6 * 1.0001);
}

TEST(Recompress, RankZeroIsNoop) {
  la::Matrix<double> u(10, 0), v(8, 0);
  recompress(u, v, 1e-8, TolMode::Absolute);
  EXPECT_EQ(u.cols(), 0u);
}

TEST(Recompress, WideFactorsFallBackToDenseSvd) {
  Rng rng(43);
  // k > min(m, n): the QR path is invalid; must fall back gracefully.
  const std::size_t m = 6, n = 5, k = 9;
  auto u = random_matrix(m, k, rng);
  auto v = random_matrix(n, k, rng);
  la::Matrix<double> before(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                   before.view());
  recompress(u, v, 1e-10, TolMode::Absolute);
  EXPECT_LE(u.cols(), std::min(m, n));
  EXPECT_LE(lowrank_error(before.cview(), u, v), 1e-8);
}

TEST(Compression, MatérnOffDiagonalBlockIsLowRank) {
  // The actual application structure: a far off-diagonal block of a Matérn
  // covariance matrix over 1-D sorted locations compresses to low rank.
  const geostat::MaternCovariance model(1.0, 0.1, 0.5);
  const std::size_t b = 48;
  la::Matrix<double> block(b, b);
  for (std::size_t j = 0; j < b; ++j)
    for (std::size_t i = 0; i < b; ++i) {
      const geostat::Location p{static_cast<double>(i) / b, 0.0, 0.0};
      const geostat::Location q{2.0 + static_cast<double>(j) / b, 0.0, 0.0};
      block(i, j) = model(p, q);
    }
  const Compressed c = compress_svd(block.cview(), 1e-8, TolMode::Absolute);
  EXPECT_LT(c.rank(), b / 4) << "separated covariance blocks must be low-rank";
}

}  // namespace
}  // namespace gsx::tlr
