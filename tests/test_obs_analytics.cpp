// Execution-analytics units: critical-path extraction, utilization /
// fairness, queue-wait and comm-overlap math on synthetic DAG histories with
// hand-computed answers, plus the hardware-counter wrapper's graceful
// degradation when perf_event_open is denied (the normal state in CI
// containers). The offline gsx_obs subcommands and the in-process
// profile.json block both sit on exactly this code.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analytics.hpp"
#include "obs/hwcounters.hpp"

namespace {

using gsx::obs::AnalyticsReport;
using gsx::obs::analytics_json;
using gsx::obs::analyze;
using gsx::obs::build_history;
using gsx::obs::comm_overlap;
using gsx::obs::CriticalPathReport;
using gsx::obs::critical_path;
using gsx::obs::dep_ident;
using gsx::obs::ExecutionHistory;
using gsx::obs::kExternalWorker;
using gsx::obs::MergedEvent;
using gsx::obs::OverlapReport;
using gsx::obs::pack_op_name;
using gsx::obs::task_ident;
using gsx::obs::unpack_op_name;
using gsx::obs::utilization;
using gsx::obs::UtilizationReport;

// --- synthetic-history builder ----------------------------------------------

struct HistoryBuilder {
  std::vector<MergedEvent> events;
  std::string process = "w0";
  std::uint64_t gen = 1;

  MergedEvent base(const std::string& kind, double t) const {
    MergedEvent e;
    e.kind = kind;
    e.t_wall = t;
    e.t = t;
    e.process = process;
    return e;
  }

  void task(std::uint64_t id, const std::string& op, std::uint64_t worker,
            double start, double end, std::size_t deps) {
    MergedEvent s = base("task_start", start);
    s.a = task_ident(gen, worker, id);
    s.b = pack_op_name(op);
    s.v = static_cast<double>(deps);
    events.push_back(s);
    MergedEvent e = base("task_end", end);
    e.a = task_ident(gen, worker, id);
    e.b = pack_op_name(op);
    e.v = end - start;
    events.push_back(e);
  }

  void dep(std::uint64_t pred, std::uint64_t succ) {
    MergedEvent e = base("task_dep", 0.0);
    e.a = dep_ident(gen, succ, pred);
    events.push_back(e);
  }

  void wire(double t, std::uint64_t bytes, bool recv) {
    MergedEvent e = base(recv ? "tile_recv" : "tile_send", t);
    e.b = bytes;
    events.push_back(e);
  }

  [[nodiscard]] ExecutionHistory history() const { return build_history(events); }
};

// --- op-name packing ---------------------------------------------------------

TEST(OpName, RoundTripStopsAtParen) {
  EXPECT_EQ(unpack_op_name(pack_op_name("gemm(1,2,3)")), "gemm");
  EXPECT_EQ(unpack_op_name(pack_op_name("potrf(0)")), "potrf");
  EXPECT_EQ(unpack_op_name(pack_op_name("recv")), "recv");
}

TEST(OpName, TruncatesAtEightBytes) {
  EXPECT_EQ(unpack_op_name(pack_op_name("a_very_long_task_name")), "a_very_l");
}

TEST(OpName, EmptyDecodesAsTask) { EXPECT_EQ(unpack_op_name(0), "task"); }

TEST(OpName, IdentFieldsPackAndMask) {
  const std::uint64_t a = task_ident(0x1FFFF, 0x1AB, 7);
  EXPECT_EQ(a >> 48, 0xFFFFu);          // generation truncates to 16 bits
  EXPECT_EQ((a >> 40) & 0xFF, 0xABu);   // worker truncates to 8 bits
  EXPECT_EQ(a & 0xFFFFFFFFFFull, 7u);
  const std::uint64_t d = dep_ident(3, 0x123456, 0x654321);
  EXPECT_EQ(d >> 48, 3u);
  EXPECT_EQ((d >> 24) & 0xFFFFFF, 0x123456u);
  EXPECT_EQ(d & 0xFFFFFF, 0x654321u);
}

// --- critical path -----------------------------------------------------------

TEST(CriticalPath, DiamondPicksTheHeavyArm) {
  // 0 -> {1 heavy, 2 light} -> 3. Longest chain 0,1,3 = 1 + 2 + 1 = 4 s.
  HistoryBuilder b;
  b.task(0, "potrf(0)", 0, 0.0, 1.0, 0);
  b.task(1, "trsm(1)", 0, 1.0, 3.0, 1);
  b.task(2, "trsm(2)", 1, 1.0, 2.0, 1);
  b.task(3, "gemm(3)", 1, 3.0, 4.0, 2);
  b.dep(0, 1);
  b.dep(0, 2);
  b.dep(1, 3);
  b.dep(2, 3);
  const CriticalPathReport r = critical_path(b.history());
  EXPECT_NEAR(r.length_seconds, 4.0, 1e-12);
  ASSERT_EQ(r.length_tasks, 3u);
  EXPECT_EQ(r.path, (std::vector<std::uint64_t>{0, 1, 3}));
  EXPECT_NEAR(r.span_seconds, 4.0, 1e-12);
  // 4 of 5 total task seconds sit on the path.
  EXPECT_NEAR(r.dominance, 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(r.op_seconds.at("trsm"), 2.0, 1e-12);
  EXPECT_NEAR(r.op_seconds.at("potrf"), 1.0, 1e-12);
  EXPECT_NEAR(r.op_seconds.at("gemm"), 1.0, 1e-12);
}

TEST(CriticalPath, PureChainIsFullyDominant) {
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "b", 0, 1.0, 2.0, 1);
  b.task(2, "c", 0, 2.0, 3.0, 1);
  b.dep(0, 1);
  b.dep(1, 2);
  const CriticalPathReport r = critical_path(b.history());
  EXPECT_NEAR(r.length_seconds, 3.0, 1e-12);
  EXPECT_EQ(r.length_tasks, 3u);
  EXPECT_NEAR(r.dominance, 1.0, 1e-12);
}

TEST(CriticalPath, NoEdgesFallsBackToHeaviestTask) {
  // Ring wrap can lose the TaskDepEdge batch; the report degrades to the
  // single heaviest task instead of fabricating a chain.
  HistoryBuilder b;
  b.task(0, "small", 0, 0.0, 1.0, 0);
  b.task(1, "big", 1, 0.0, 5.0, 0);
  const CriticalPathReport r = critical_path(b.history());
  EXPECT_NEAR(r.length_seconds, 5.0, 1e-12);
  EXPECT_EQ(r.path, (std::vector<std::uint64_t>{1}));
}

TEST(CriticalPath, GenerationsSeparateConcurrentGraphs) {
  // Same task ids in two generations must not cross-link.
  HistoryBuilder b;
  b.gen = 1;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "b", 0, 1.0, 2.0, 1);
  b.dep(0, 1);
  b.gen = 2;
  b.task(0, "c", 0, 0.0, 3.5, 0);
  const ExecutionHistory h = b.history();
  ASSERT_EQ(h.graphs.size(), 2u);
  const CriticalPathReport r = critical_path(h);
  EXPECT_NEAR(r.length_seconds, 3.5, 1e-12);  // gen 2's lone heavy task wins
  EXPECT_EQ(r.generation, 2u);
}

TEST(CriticalPath, EmptyHistoryIsZero) {
  const CriticalPathReport r = critical_path(ExecutionHistory{});
  EXPECT_EQ(r.length_tasks, 0u);
  EXPECT_EQ(r.length_seconds, 0.0);
}

// --- utilization -------------------------------------------------------------

TEST(Utilization, ForkJoinNumbersMatchHand) {
  // Window [0, 2]. Worker 0 busy [0,1] + [1,2] = 2 s; worker 1 busy [0,1].
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "b", 1, 0.0, 1.0, 0);
  b.task(2, "c", 0, 1.0, 2.0, 2);
  b.dep(0, 2);
  b.dep(1, 2);
  const UtilizationReport u = utilization(b.history());
  EXPECT_NEAR(u.window_seconds, 2.0, 1e-12);
  ASSERT_EQ(u.workers.size(), 2u);
  EXPECT_NEAR(u.workers[0].busy_seconds, 2.0, 1e-12);
  EXPECT_NEAR(u.workers[0].utilization, 1.0, 1e-12);
  EXPECT_NEAR(u.workers[1].busy_seconds, 1.0, 1e-12);
  EXPECT_NEAR(u.workers[1].utilization, 0.5, 1e-12);
  // PE = (2+1)/(2 lanes * 2 s window); Jain = (2+1)^2 / (2 * (4+1)).
  EXPECT_NEAR(u.parallel_efficiency, 0.75, 1e-12);
  EXPECT_NEAR(u.jain_fairness, 9.0 / 10.0, 1e-12);
  EXPECT_NEAR(u.process_busy_seconds.at("w0"), 3.0, 1e-12);
}

TEST(Utilization, IdleGapBecomesQueueWait) {
  // Task 1's only predecessor finishes at 1.0 but it starts at 1.5: the
  // 0.5 s gap is scheduler-side queue wait on task 1's lane.
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "b", 1, 1.5, 2.5, 1);
  b.dep(0, 1);
  const UtilizationReport u = utilization(b.history());
  ASSERT_EQ(u.workers.size(), 2u);
  EXPECT_NEAR(u.workers[1].queue_wait_seconds, 0.5, 1e-12);
  EXPECT_NEAR(u.workers[0].queue_wait_seconds, 0.0, 1e-12);
}

TEST(Utilization, PerfectBalanceHasJainOne) {
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "b", 1, 0.0, 1.0, 0);
  const UtilizationReport u = utilization(b.history());
  EXPECT_NEAR(u.jain_fairness, 1.0, 1e-12);
  EXPECT_NEAR(u.parallel_efficiency, 1.0, 1e-12);
}

TEST(Utilization, ExternalLaneExcluded) {
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.task(1, "recv", kExternalWorker, 1.0, 1.0, 0);  // zero-duration external
  const UtilizationReport u = utilization(b.history());
  ASSERT_EQ(u.workers.size(), 1u);
  EXPECT_EQ(u.workers[0].worker, 0u);
}

TEST(Utilization, OverlappingTasksOnOneLaneUnionNotSum) {
  // Nested/overlapping spans (external completion racing a worker) must not
  // produce >100% utilization: busy time is an interval union.
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 2.0, 0);
  b.task(1, "b", 0, 1.0, 3.0, 0);
  const UtilizationReport u = utilization(b.history());
  ASSERT_EQ(u.workers.size(), 1u);
  EXPECT_NEAR(u.workers[0].busy_seconds, 3.0, 1e-12);
  EXPECT_NEAR(u.workers[0].utilization, 1.0, 1e-12);
}

// --- comm overlap ------------------------------------------------------------

TEST(Overlap, WireEventsInsideBusyIntervalsCount) {
  HistoryBuilder b;
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.wire(0.5, 100, false);  // during compute: overlapped
  b.wire(2.0, 300, true);   // after all compute: exposed
  const OverlapReport r = comm_overlap(b.history());
  EXPECT_EQ(r.comm_events, 2u);
  EXPECT_EQ(r.overlapped_events, 1u);
  EXPECT_EQ(r.bytes_total, 400u);
  EXPECT_EQ(r.bytes_overlapped, 100u);
  EXPECT_NEAR(r.overlap_fraction, 0.5, 1e-12);
}

TEST(Overlap, OtherProcessBusyDoesNotMask) {
  // w1's wire event at a time when only w0 computes is exposed comm.
  HistoryBuilder b;
  b.process = "w0";
  b.task(0, "a", 0, 0.0, 1.0, 0);
  b.process = "w1";
  b.wire(0.5, 64, true);
  const OverlapReport r = comm_overlap(b.history());
  EXPECT_EQ(r.comm_events, 1u);
  EXPECT_EQ(r.overlapped_events, 0u);
}

// --- report plumbing ---------------------------------------------------------

TEST(AnalyticsJson, CarriesAllThreeSections) {
  HistoryBuilder b;
  b.task(0, "potrf(0)", 0, 0.0, 1.0, 0);
  b.wire(0.5, 10, false);
  const AnalyticsReport r = analyze(b.history());
  const std::string json = analytics_json(r);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"overlap\""), std::string::npos);
  EXPECT_NE(json.find("\"op_seconds\""), std::string::npos);
  EXPECT_EQ(json.find("\n\n"), std::string::npos);  // no blank lines
}

// --- hardware counters -------------------------------------------------------

TEST(HwCounters, DisabledSamplingReadsInvalid) {
  gsx::obs::set_hw_enabled(false);
  const gsx::obs::HwReading r = gsx::obs::hw_read();
  EXPECT_FALSE(r.valid);
}

TEST(HwCounters, UnavailableDegradesToCleanNoOp) {
  // In containers perf_event_open is typically denied; either way the
  // wrapper must never crash and must keep its live/available story
  // consistent with what it returns.
  gsx::obs::reset_hw();
  gsx::obs::set_hw_enabled(true);
  const gsx::obs::HwReading begin = gsx::obs::hw_read();
  const gsx::obs::HwReading end = gsx::obs::hw_read();
  if (!gsx::obs::hw_available()) {
    EXPECT_FALSE(begin.valid);
    gsx::obs::hw_accumulate(begin, end, 0.1);  // no-op on invalid readings
    const gsx::obs::HwTotals t = gsx::obs::hw_totals();
    EXPECT_FALSE(t.live);
    EXPECT_EQ(t.scopes, 0u);
    EXPECT_EQ(t.cycles, 0u);
  } else {
    EXPECT_TRUE(begin.valid);
    EXPECT_TRUE(end.valid);
    EXPECT_GE(end.cycles, begin.cycles);
    gsx::obs::hw_accumulate(begin, end, 0.1);
    const gsx::obs::HwTotals t = gsx::obs::hw_totals();
    EXPECT_TRUE(t.live);
    EXPECT_EQ(t.scopes, 1u);
  }
  gsx::obs::set_hw_enabled(false);
  gsx::obs::reset_hw();
}

TEST(HwCounters, InvalidAccumulateLeavesTotalsUntouched) {
  gsx::obs::reset_hw();
  gsx::obs::hw_accumulate({}, {}, 1.0);
  const gsx::obs::HwTotals t = gsx::obs::hw_totals();
  EXPECT_EQ(t.scopes, 0u);
  EXPECT_EQ(t.seconds, 0.0);
  EXPECT_FALSE(t.live);
}

TEST(HwCounters, RooflinePeaksRoundTrip) {
  gsx::obs::RooflinePeaks p;
  p.peak_gflops_per_ghz[0] = 16.0;
  p.fallback_ghz = 2.5;
  p.isa = "avx2";
  gsx::obs::set_roofline_peaks(p);
  const gsx::obs::RooflinePeaks q = gsx::obs::roofline_peaks();
  EXPECT_EQ(q.peak_gflops_per_ghz[0], 16.0);
  EXPECT_EQ(q.fallback_ghz, 2.5);
  EXPECT_EQ(q.isa, "avx2");
  gsx::obs::set_roofline_peaks(gsx::obs::RooflinePeaks{});
}

}  // namespace
