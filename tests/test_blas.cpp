// Level-3 BLAS kernel tests against naive oracles, across shapes and flags.
#include <gtest/gtest.h>

#include <tuple>

#include "la/blas.hpp"
#include "la/half_blas.hpp"
#include "la/convert.hpp"
#include "test_utils.hpp"

namespace gsx::la {
namespace {

using gsx::test::max_abs_diff;
using gsx::test::naive_gemm;
using gsx::test::random_matrix;

// ------------------------------------------------------------------ GEMM

struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveOracle) {
  const GemmCase c = GetParam();
  Rng rng(c.m * 1000003 + c.n * 101 + c.k);
  const auto a = (c.ta == Trans::NoTrans) ? random_matrix(c.m, c.k, rng)
                                          : random_matrix(c.k, c.m, rng);
  const auto b = (c.tb == Trans::NoTrans) ? random_matrix(c.k, c.n, rng)
                                          : random_matrix(c.n, c.k, rng);
  const auto c0 = random_matrix(c.m, c.n, rng);

  la::Matrix<double> result = c0;
  gemm<double>(c.ta, c.tb, c.alpha, a.cview(), b.cview(), c.beta, result.view());
  const auto oracle = naive_gemm<double>(c.ta, c.tb, c.alpha, a, b, c.beta, c0);
  EXPECT_LT(max_abs_diff(result, oracle), 1e-11 * static_cast<double>(c.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmTest,
    ::testing::Values(
        GemmCase{7, 5, 9, Trans::NoTrans, Trans::NoTrans, 1.0, 0.0},
        GemmCase{7, 5, 9, Trans::NoTrans, Trans::Trans, 1.0, 1.0},
        GemmCase{7, 5, 9, Trans::Trans, Trans::NoTrans, -1.0, 1.0},
        GemmCase{7, 5, 9, Trans::Trans, Trans::Trans, 2.0, 0.5},
        GemmCase{1, 1, 1, Trans::NoTrans, Trans::NoTrans, 1.0, 1.0},
        GemmCase{33, 17, 300, Trans::NoTrans, Trans::Trans, -1.0, 1.0},   // crosses k-block
        GemmCase{64, 64, 64, Trans::NoTrans, Trans::NoTrans, 1.0, -1.0},
        GemmCase{13, 1, 7, Trans::Trans, Trans::Trans, 1.0, 0.0},
        GemmCase{1, 13, 7, Trans::NoTrans, Trans::NoTrans, 0.5, 2.0},
        GemmCase{40, 40, 513, Trans::Trans, Trans::NoTrans, 1.0, 1.0}));  // two k-blocks

TEST(Gemm, AlphaZeroOnlyScalesC) {
  Rng rng(5);
  const auto a = random_matrix(4, 6, rng);
  const auto b = random_matrix(6, 3, rng);
  auto c = random_matrix(4, 3, rng);
  const auto c0 = c;
  gemm<double>(Trans::NoTrans, Trans::NoTrans, 0.0, a.cview(), b.cview(), 2.0, c.view());
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c(i, j), 2.0 * c0(i, j));
}

TEST(Gemm, BetaZeroIgnoresGarbageInC) {
  Rng rng(6);
  const auto a = random_matrix(4, 5, rng);
  const auto b = random_matrix(5, 3, rng);
  la::Matrix<double> c(4, 3, std::nan(""));
  gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a.cview(), b.cview(), 0.0, c.view());
  const auto oracle = naive_gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0,
                                         la::Matrix<double>(4, 3));
  EXPECT_LT(max_abs_diff(c, oracle), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  Rng rng(7);
  const auto a = random_matrix(4, 5, rng);
  const auto b = random_matrix(6, 3, rng);  // inner mismatch: 5 vs 6
  la::Matrix<double> c(4, 3);
  EXPECT_THROW(gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a.cview(), b.cview(), 0.0,
                            c.view()),
               InvalidArgument);
}

TEST(Gemm, FloatKernelMatchesDoubleOracle) {
  Rng rng(8);
  const auto ad = random_matrix(12, 9, rng);
  const auto bd = random_matrix(9, 10, rng);
  la::Matrix<float> a(12, 9), b(9, 10), c(12, 10);
  convert(ad.cview(), a.view());
  convert(bd.cview(), b.view());
  gemm<float>(Trans::NoTrans, Trans::NoTrans, 1.0f, a.cview(), b.cview(), 0.0f, c.view());
  const auto oracle = naive_gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, ad, bd, 0.0,
                                         la::Matrix<double>(12, 10));
  for (std::size_t j = 0; j < 10; ++j)
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_NEAR(static_cast<double>(c(i, j)), oracle(i, j), 1e-4);
}

// ------------------------------------------------------------------ SYRK

struct SyrkCase {
  std::size_t n, k;
  Uplo uplo;
  Trans trans;
  double alpha, beta;
};

class SyrkTest : public ::testing::TestWithParam<SyrkCase> {};

TEST_P(SyrkTest, MatchesGemmOnTriangle) {
  const SyrkCase c = GetParam();
  Rng rng(c.n * 31 + c.k);
  const auto a = (c.trans == Trans::NoTrans) ? random_matrix(c.n, c.k, rng)
                                             : random_matrix(c.k, c.n, rng);
  const auto c0 = random_matrix(c.n, c.n, rng);

  la::Matrix<double> result = c0;
  syrk<double>(c.uplo, c.trans, c.alpha, a.cview(), c.beta, result.view());

  const Trans tb = (c.trans == Trans::NoTrans) ? Trans::Trans : Trans::NoTrans;
  const auto oracle = naive_gemm<double>(c.trans, tb, c.alpha, a, a, c.beta, c0);

  for (std::size_t j = 0; j < c.n; ++j) {
    for (std::size_t i = 0; i < c.n; ++i) {
      const bool in_triangle = (c.uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      if (in_triangle) {
        EXPECT_NEAR(result(i, j), oracle(i, j), 1e-11 * static_cast<double>(c.k + 1));
      } else {
        EXPECT_DOUBLE_EQ(result(i, j), c0(i, j)) << "opposite triangle must be untouched";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SyrkTest,
    ::testing::Values(SyrkCase{6, 4, Uplo::Lower, Trans::NoTrans, 1.0, 0.0},
                      SyrkCase{6, 4, Uplo::Lower, Trans::Trans, -1.0, 1.0},
                      SyrkCase{6, 4, Uplo::Upper, Trans::NoTrans, 2.0, 0.5},
                      SyrkCase{6, 4, Uplo::Upper, Trans::Trans, 1.0, 1.0},
                      SyrkCase{1, 1, Uplo::Lower, Trans::NoTrans, 1.0, 0.0},
                      SyrkCase{31, 17, Uplo::Lower, Trans::NoTrans, -1.0, 1.0},
                      SyrkCase{16, 33, Uplo::Upper, Trans::Trans, 1.0, 0.0}));

// ------------------------------------------------------------------ TRSM

struct TrsmCase {
  std::size_t m, n;
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
};

class TrsmTest : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmTest, SolveThenMultiplyRecoversRhs) {
  const TrsmCase c = GetParam();
  Rng rng(c.m * 131 + c.n * 7 + static_cast<std::size_t>(c.side) * 2 +
          static_cast<std::size_t>(c.uplo));
  const std::size_t na = (c.side == Side::Left) ? c.m : c.n;

  // Well-conditioned triangular matrix.
  auto a = random_matrix(na, na, rng, 0.1);
  for (std::size_t i = 0; i < na; ++i) a(i, i) = 2.0 + 0.1 * static_cast<double>(i);
  // Zero the unused triangle so the oracle multiply can use the full matrix.
  for (std::size_t j = 0; j < na; ++j)
    for (std::size_t i = 0; i < na; ++i)
      if ((c.uplo == Uplo::Lower) ? (i < j) : (i > j)) a(i, j) = 0.0;
  auto a_mult = a;
  if (c.diag == Diag::Unit)
    for (std::size_t i = 0; i < na; ++i) a_mult(i, i) = 1.0;

  const double alpha = 1.5;
  const auto b0 = random_matrix(c.m, c.n, rng);
  la::Matrix<double> x = b0;
  trsm<double>(c.side, c.uplo, c.trans, c.diag, alpha, a.cview(), x.view());

  // Check op(A) X == alpha * B (left) or X op(A) == alpha * B (right).
  la::Matrix<double> recovered(c.m, c.n);
  if (c.side == Side::Left) {
    recovered = naive_gemm<double>(c.trans, Trans::NoTrans, 1.0, a_mult, x, 0.0,
                                   la::Matrix<double>(c.m, c.n));
  } else {
    recovered = naive_gemm<double>(Trans::NoTrans, c.trans, 1.0, x, a_mult, 0.0,
                                   la::Matrix<double>(c.m, c.n));
  }
  for (std::size_t j = 0; j < c.n; ++j)
    for (std::size_t i = 0; i < c.m; ++i)
      EXPECT_NEAR(recovered(i, j), alpha * b0(i, j), 1e-9) << "(" << i << "," << j << ")";
}

std::vector<TrsmCase> all_trsm_cases() {
  std::vector<TrsmCase> cases;
  for (Side s : {Side::Left, Side::Right})
    for (Uplo u : {Uplo::Lower, Uplo::Upper})
      for (Trans t : {Trans::NoTrans, Trans::Trans})
        for (Diag d : {Diag::NonUnit, Diag::Unit}) cases.push_back({9, 6, s, u, t, d});
  // A few degenerate / rectangular extremes.
  cases.push_back({1, 8, Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit});
  cases.push_back({8, 1, Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit});
  cases.push_back({24, 24, Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSixteenCombos, TrsmTest, ::testing::ValuesIn(all_trsm_cases()));

// ------------------------------------------------------------------ GEMV

TEST(Gemv, MatchesGemmColumn) {
  Rng rng(17);
  const auto a = random_matrix(9, 7, rng);
  std::vector<double> x(7), y(9, 0.5);
  for (auto& v : x) v = rng.normal();
  auto y0 = y;
  gemv<double>(Trans::NoTrans, 2.0, a.cview(), x.data(), 3.0, y.data());
  for (std::size_t i = 0; i < 9; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) s += a(i, j) * x[j];
    EXPECT_NEAR(y[i], 2.0 * s + 3.0 * y0[i], 1e-12);
  }
}

TEST(Gemv, TransposedMatchesDotProducts) {
  Rng rng(18);
  const auto a = random_matrix(9, 7, rng);
  std::vector<double> x(9), y(7, -1.0);
  for (auto& v : x) v = rng.normal();
  gemv<double>(Trans::Trans, 1.0, a.cview(), x.data(), 0.0, y.data());
  for (std::size_t j = 0; j < 7; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 9; ++i) s += a(i, j) * x[i];
    EXPECT_NEAR(y[j], s, 1e-12);
  }
}

// ------------------------------------------------------------- SHGEMM

TEST(Shgemm, AccumulatesInFp32) {
  Rng rng(21);
  const auto ad = random_matrix(16, 12, rng);
  const auto bd = random_matrix(14, 12, rng);
  la::Matrix<half> a(16, 12), b(14, 12);
  convert(ad.cview(), a.view());
  convert(bd.cview(), b.view());
  la::Matrix<float> c(16, 14);
  shgemm(Trans::NoTrans, Trans::Trans, 1.0f, a.cview(), b.cview(), 0.0f, c.view());

  // Oracle: exact product of the *rounded* half inputs (accumulation in
  // FP32 of half-precision values loses little at k = 12).
  la::Matrix<double> ar(16, 12), br(14, 12);
  convert(a.cview(), ar.view());
  convert(b.cview(), br.view());
  const auto oracle = naive_gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, ar, br, 0.0,
                                         la::Matrix<double>(16, 14));
  for (std::size_t j = 0; j < 14; ++j)
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_NEAR(static_cast<double>(c(i, j)), oracle(i, j), 5e-5 * 12);
}

TEST(Hgemm, RoundsResultToHalf) {
  Rng rng(22);
  const auto ad = random_matrix(8, 8, rng);
  const auto bd = random_matrix(8, 8, rng);
  la::Matrix<half> a(8, 8), b(8, 8), c(8, 8);
  convert(ad.cview(), a.view());
  convert(bd.cview(), b.view());
  hgemm(Trans::NoTrans, Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f, c.view());
  // Every entry must be exactly representable in half.
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 8; ++i) {
      const float v = static_cast<float>(c(i, j));
      EXPECT_EQ(half(v).bits(), c(i, j).bits());
    }
}

}  // namespace
}  // namespace gsx::la
