// Covariance models: values, SPD property, parameter plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::geostat {
namespace {

TEST(MaternCorrelation, ClosedFormHalf) {
  for (double d : {0.1, 0.5, 1.0, 3.0})
    EXPECT_NEAR(matern_correlation(0.5, d), std::exp(-d), 1e-14);
}

TEST(MaternCorrelation, ClosedFormThreeHalves) {
  for (double d : {0.1, 0.5, 2.0})
    EXPECT_NEAR(matern_correlation(1.5, d), (1.0 + d) * std::exp(-d), 1e-14);
}

TEST(MaternCorrelation, ClosedFormFiveHalves) {
  for (double d : {0.2, 1.0, 4.0})
    EXPECT_NEAR(matern_correlation(2.5, d), (1.0 + d + d * d / 3.0) * std::exp(-d), 1e-14);
}

TEST(MaternCorrelation, GeneralOrderContinuityWithClosedForms) {
  // The Bessel path evaluated *at* nu = 0.5 +/- tiny must agree with the
  // closed form (continuity across the special-case dispatch).
  for (double d : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(matern_correlation(0.5 + 1e-9, d), std::exp(-d), 1e-6);
    EXPECT_NEAR(matern_correlation(1.5 + 1e-9, d), (1.0 + d) * std::exp(-d), 1e-6);
  }
}

TEST(MaternCorrelation, BasicProperties) {
  for (double nu : {0.2, 0.44, 1.0, 2.7}) {
    EXPECT_DOUBLE_EQ(matern_correlation(nu, 0.0), 1.0);
    double prev = 1.0;
    for (double d = 0.05; d < 10.0; d *= 1.7) {
      const double c = matern_correlation(nu, d);
      EXPECT_GT(c, 0.0);
      EXPECT_LE(c, 1.0);
      EXPECT_LT(c, prev) << "monotone decreasing, nu=" << nu << " d=" << d;
      prev = c;
    }
  }
}

TEST(MaternCorrelation, UnderflowsToZeroGracefully) {
  EXPECT_EQ(matern_correlation(0.44, 800.0), 0.0);
  EXPECT_GT(matern_correlation(0.44, 600.0), 0.0);
}

TEST(MaternCovariance, ValueAndNugget) {
  const MaternCovariance m(2.0, 0.5, 1.5, 0.1);
  const Location a{0.0, 0.0, 0.0};
  const Location b{0.3, 0.4, 0.0};  // distance 0.5
  EXPECT_NEAR(m(a, b), 2.0 * (1.0 + 1.0) * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m(a, a), 2.0 + 0.1, 1e-12);  // nugget only on the diagonal
}

TEST(MaternCovariance, ParameterRoundTrip) {
  MaternCovariance m(1.0, 0.1, 0.5);
  const std::vector<double> theta = {0.7, 0.22, 1.3};
  m.set_params(theta);
  EXPECT_EQ(m.params(), theta);
  EXPECT_EQ(m.num_params(), 3u);
  EXPECT_EQ(m.param_names().size(), 3u);
  EXPECT_EQ(m.lower_bounds().size(), 3u);
  EXPECT_EQ(m.upper_bounds().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(m.lower_bounds()[i], m.upper_bounds()[i]);
  }
}

TEST(MaternCovariance, RejectsInvalidParameters) {
  EXPECT_THROW(MaternCovariance(-1.0, 0.1, 0.5), InvalidArgument);
  EXPECT_THROW(MaternCovariance(1.0, 0.0, 0.5), InvalidArgument);
  MaternCovariance m(1.0, 0.1, 0.5);
  const std::vector<double> bad = {1.0, -0.1, 0.5};
  EXPECT_THROW(m.set_params(bad), InvalidArgument);
  const std::vector<double> wrong_size = {1.0, 0.1};
  EXPECT_THROW(m.set_params(wrong_size), InvalidArgument);
}

TEST(MaternCovariance, CloneIsIndependent) {
  MaternCovariance m(1.0, 0.1, 0.5);
  auto c = m.clone();
  const std::vector<double> theta = {2.0, 0.3, 1.0};
  c->set_params(theta);
  EXPECT_NE(m.params(), c->params());
}

TEST(PoweredExponential, GaussianAndExponentialLimits) {
  const PoweredExponentialCovariance e1(1.0, 1.0, 1.0);
  const PoweredExponentialCovariance e2(1.0, 1.0, 2.0);
  const Location a{0, 0, 0}, b{1, 0, 0};
  EXPECT_NEAR(e1(a, b), std::exp(-1.0), 1e-14);
  EXPECT_NEAR(e2(a, b), std::exp(-1.0), 1e-14);
  const Location c{2, 0, 0};
  EXPECT_NEAR(e2(a, c), std::exp(-4.0), 1e-14);
  EXPECT_THROW(PoweredExponentialCovariance(1.0, 1.0, 2.5), InvalidArgument);
}

TEST(Gneiting, SeparableWhenBetaZero) {
  const GneitingCovariance g(1.0, 0.5, 0.8, 0.7, 0.6, 0.0);
  const Location a{0, 0, 0}, b{0.3, 0, 2.0};
  // beta = 0: C(h, u) = sigma^2/psi(u) * M(h/a_s) factors exactly.
  const double psi = 0.7 * std::pow(2.0, 2 * 0.6) + 1.0;
  const double expect = 1.0 / psi * matern_correlation(0.8, 0.3 / 0.5);
  EXPECT_NEAR(g(a, b), expect, 1e-13);
}

TEST(Gneiting, NonseparableCouplesSpaceAndTime) {
  const GneitingCovariance g(1.0, 0.5, 0.8, 0.7, 0.6, 0.8);
  const Location a{0, 0, 0};
  const Location b{0.3, 0, 0.0};
  const Location c{0.3, 0, 2.0};
  // With beta > 0, the effective spatial range grows with |u|: the spatial
  // *correlation ratio* differs from the separable product.
  const double psi = 0.7 * std::pow(2.0, 2 * 0.6) + 1.0;
  const double separable_value = g(a, b) / psi;
  EXPECT_GT(g(a, c), separable_value);
}

TEST(Gneiting, TemporalDecay) {
  const GneitingCovariance g(1.0, 0.5, 0.8, 0.7, 0.6, 0.5);
  const Location a{0, 0, 0};
  double prev = g(a, a);
  for (double t = 1.0; t < 6.0; t += 1.0) {
    const Location b{0, 0, t};
    const double c = g(a, b);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(Gneiting, ParameterValidation) {
  EXPECT_THROW(GneitingCovariance(1, 1, 1, 1, 1.5, 0.5), InvalidArgument);  // alpha > 1
  EXPECT_THROW(GneitingCovariance(1, 1, 1, 1, 0.5, 1.5), InvalidArgument);  // beta > 1
  EXPECT_NO_THROW(GneitingCovariance(1, 1, 1, 1, 1.0, 1.0));
  GneitingCovariance g(1, 1, 1, 1, 0.5, 0.5);
  EXPECT_EQ(g.num_params(), 6u);
  const std::vector<double> theta = {1.0, 2.0, 0.3, 0.01, 0.9, 0.19};
  g.set_params(theta);
  EXPECT_EQ(g.params(), theta);
}

class SpdCheck : public ::testing::TestWithParam<double> {};

TEST_P(SpdCheck, MaternCovarianceMatrixIsSpd) {
  const double range = GetParam();
  Rng rng(11);
  auto locs = perturbed_grid_locations(80, rng);
  const MaternCovariance model(1.0, range, 0.44, 1e-8);
  la::Matrix<double> sigma = covariance_matrix(model, locs);
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0)
      << "Matérn covariance must be SPD at range " << range;
}

INSTANTIATE_TEST_SUITE_P(Ranges, SpdCheck, ::testing::Values(0.03, 0.1, 0.3));

TEST(SpdCheckSpaceTime, GneitingCovarianceMatrixIsSpd) {
  Rng rng(13);
  auto spatial = perturbed_grid_locations(25, rng);
  auto locs = replicate_in_time(spatial, 6, 1.0);
  const GneitingCovariance model(1.0, 0.2, 0.5, 0.5, 0.9, 0.3, 1e-8);
  la::Matrix<double> sigma = covariance_matrix(model, locs);
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0);
}

TEST(CrossCovariance, MatchesElementwiseModel) {
  Rng rng(17);
  auto a = perturbed_grid_locations(9, rng);
  auto b = perturbed_grid_locations(16, rng);
  const MaternCovariance model(1.5, 0.2, 0.5);
  const auto sigma = cross_covariance(model, a, b);
  ASSERT_EQ(sigma.rows(), 9u);
  ASSERT_EQ(sigma.cols(), 16u);
  for (std::size_t j = 0; j < 16; ++j)
    for (std::size_t i = 0; i < 9; ++i)
      EXPECT_DOUBLE_EQ(sigma(i, j), model(a[i], b[j]));
}

}  // namespace
}  // namespace gsx::geostat
