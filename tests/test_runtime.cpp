// Task-graph runtime: dependency semantics, scheduling, stress, errors.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/ring.hpp"
#include "runtime/task_graph.hpp"

namespace gsx::rt {
namespace {

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph g;
  g.run(2);
  EXPECT_EQ(g.stats().num_tasks, 0u);
}

TEST(TaskGraph, SingleTaskExecutes) {
  TaskGraph g;
  bool ran = false;
  g.submit("t", {}, [&] { ran = true; });
  g.run(1);
  EXPECT_TRUE(ran);
  EXPECT_EQ(g.stats().num_tasks, 1u);
}

TEST(TaskGraph, ReadAfterWriteOrdering) {
  TaskGraph g;
  int value = 0;
  int seen = -1;
  const auto d = DatumId::from_index(0);
  g.submit("writer", {{d, Access::Write}}, [&] { value = 42; });
  g.submit("reader", {{d, Access::Read}}, [&] { seen = value; });
  g.run(4);
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(g.stats().num_edges, 1u);
}

TEST(TaskGraph, WriteAfterReadOrdering) {
  TaskGraph g;
  int value = 1;
  std::vector<int> reads;
  std::mutex m;
  const auto d = DatumId::from_index(0);
  for (int i = 0; i < 4; ++i)
    g.submit("reader", {{d, Access::Read}}, [&] {
      std::lock_guard lk(m);
      reads.push_back(value);
    });
  g.submit("writer", {{d, Access::Write}}, [&] { value = 2; });
  g.run(4);
  ASSERT_EQ(reads.size(), 4u);
  for (int r : reads) EXPECT_EQ(r, 1) << "write must wait for all readers";
}

TEST(TaskGraph, WriteAfterWriteOrdering) {
  TaskGraph g;
  std::vector<int> order;
  const auto d = DatumId::from_index(5);
  for (int i = 0; i < 8; ++i)
    g.submit("w" + std::to_string(i), {{d, Access::ReadWrite}},
             [&order, i] { order.push_back(i); });
  g.run(4);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i) << "RW chain must serialize in order";
}

TEST(TaskGraph, IndependentTasksAllRun) {
  TaskGraph g;
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) g.submit("t", {}, [&] { ++count; });
  g.run(8);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(g.stats().num_edges, 0u);
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g;
  const auto a = DatumId::from_index(1);
  const auto b = DatumId::from_index(2);
  const auto c = DatumId::from_index(3);
  std::vector<char> order;
  std::mutex m;
  auto rec = [&](char ch) {
    std::lock_guard lk(m);
    order.push_back(ch);
  };
  g.submit("top", {{a, Access::Write}}, [&] { rec('T'); });
  g.submit("left", {{a, Access::Read}, {b, Access::Write}}, [&] { rec('L'); });
  g.submit("right", {{a, Access::Read}, {c, Access::Write}}, [&] { rec('R'); });
  g.submit("bottom", {{b, Access::Read}, {c, Access::Read}}, [&] { rec('B'); });
  g.run(4);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 'T');
  EXPECT_EQ(order.back(), 'B');
  EXPECT_EQ(g.stats().critical_path_tasks, 3u);
}

TEST(TaskGraph, PriorityOrderWithSingleWorker) {
  TaskGraph g;
  g.set_policy(SchedPolicy::Priority);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    g.submit("p" + std::to_string(i), {}, [&order, i] { order.push_back(i); }, i);
  g.run(1);
  // Highest priority first.
  const std::vector<int> expect = {4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
}

TEST(TaskGraph, FifoOrderWithSingleWorker) {
  TaskGraph g;
  g.set_policy(SchedPolicy::Fifo);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    g.submit("f", {}, [&order, i] { order.push_back(i); }, 100 - i);
  g.run(1);
  const std::vector<int> expect = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expect) << "FIFO ignores priorities";
}

TEST(TaskGraph, LifoOrderWithSingleWorker) {
  TaskGraph g;
  g.set_policy(SchedPolicy::Lifo);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) g.submit("l", {}, [&order, i] { order.push_back(i); });
  g.run(1);
  const std::vector<int> expect = {4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
}

TEST(TaskGraph, TaskExceptionPropagates) {
  TaskGraph g;
  const auto d = DatumId::from_index(0);
  g.submit("boom", {{d, Access::Write}}, [] { throw NumericalError("boom"); });
  std::atomic<bool> dependent_ran{false};
  g.submit("after", {{d, Access::Read}}, [&] { dependent_ran = true; });
  EXPECT_THROW(g.run(2), NumericalError);
  EXPECT_FALSE(dependent_ran.load()) << "tasks after the failure must not run bodies";
}

TEST(TaskGraph, StressChainedReductionIsDeterministic) {
  // 200 tasks incrementally transform a value through RAW chains over 16
  // data; any race or mis-ordering changes the result.
  constexpr int kData = 16;
  constexpr int kTasks = 200;
  std::vector<long> values(kData, 1);
  TaskGraph g;
  for (int t = 0; t < kTasks; ++t) {
    const int src = t % kData;
    const int dst = (t * 7 + 3) % kData;
    g.submit("mix", {{DatumId::from_index(src), Access::Read},
                     {DatumId::from_index(dst), Access::ReadWrite}},
             [&values, src, dst] { values[dst] = values[dst] * 3 + values[src]; });
  }
  g.run(8);
  // Oracle: sequential execution in submission order.
  std::vector<long> oracle(kData, 1);
  for (int t = 0; t < kTasks; ++t) {
    const int src = t % kData;
    const int dst = (t * 7 + 3) % kData;
    oracle[dst] = oracle[dst] * 3 + oracle[src];
  }
  EXPECT_EQ(values, oracle);
}

TEST(TaskGraph, StatsAccounting) {
  TaskGraph g;
  const auto d = DatumId::from_index(0);
  for (int i = 0; i < 10; ++i)
    g.submit("t", {{d, Access::ReadWrite}}, [] {});
  g.run(2);
  EXPECT_EQ(g.stats().num_tasks, 10u);
  EXPECT_EQ(g.stats().num_edges, 9u);
  EXPECT_EQ(g.stats().critical_path_tasks, 10u);
  EXPECT_GT(g.stats().makespan_seconds, 0.0);
}

TEST(TaskGraph, TracingRecordsEveryTask) {
  TaskGraph g;
  g.set_tracing(true);
  for (int i = 0; i < 7; ++i) g.submit("traced" + std::to_string(i), {}, [] {});
  g.run(3);
  EXPECT_EQ(g.trace().size(), 7u);
  for (const auto& ev : g.trace()) {
    EXPECT_LE(ev.start_seconds, ev.end_seconds);
    EXPECT_LT(ev.worker, 3u);
  }
}

TEST(TaskGraph, ExecutionOrderIsTopological) {
  TaskGraph g;
  const auto d = DatumId::from_index(0);
  for (int i = 0; i < 20; ++i) g.submit("c", {{d, Access::ReadWrite}}, [] {});
  g.run(4);
  const auto& order = g.execution_order();
  ASSERT_EQ(order.size(), 20u);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
      << "a single RW chain must execute in submission order";
}

TEST(TaskGraph, RejectsNullBody) {
  TaskGraph g;
  EXPECT_THROW(g.submit("null", {}, nullptr), InvalidArgument);
}

TEST(TaskGraph, WorkStealingMatchesSequentialOracle) {
  constexpr int kData = 8;
  constexpr int kTasks = 150;
  std::vector<long> values(kData, 1);
  TaskGraph g;
  g.set_policy(SchedPolicy::WorkStealing);
  for (int t = 0; t < kTasks; ++t) {
    const int src = (t * 3) % kData;
    const int dst = (t * 5 + 1) % kData;
    g.submit("ws", {{DatumId::from_index(src), Access::Read},
                    {DatumId::from_index(dst), Access::ReadWrite}},
             [&values, src, dst] { values[dst] = values[dst] * 7 + values[src]; });
  }
  g.run(4);
  std::vector<long> oracle(kData, 1);
  for (int t = 0; t < kTasks; ++t) {
    const int src = (t * 3) % kData;
    const int dst = (t * 5 + 1) % kData;
    oracle[dst] = oracle[dst] * 7 + oracle[src];
  }
  EXPECT_EQ(values, oracle);
}

TEST(TaskGraph, WorkStealingStealsWhenImbalanced) {
  // All initial work lands on one deque hint; other workers must steal.
  TaskGraph g;
  g.set_policy(SchedPolicy::WorkStealing);
  std::atomic<int> count{0};
  // A single chain head whose completion releases many independent tasks:
  // the finishing worker inherits them all, others steal.
  const auto d = DatumId::from_index(0);
  g.submit("head", {{d, Access::Write}}, [&] { ++count; });
  for (int i = 0; i < 64; ++i)
    g.submit("leaf", {{d, Access::Read}}, [&] {
      volatile double x = 0;
      for (int k = 0; k < 20000; ++k) x = x + 1.0;
      ++count;
    });
  g.run(4);
  EXPECT_EQ(count.load(), 65);
  EXPECT_EQ(g.stats().num_tasks, 65u);
  // On a multi-worker run with one hot deque, steals should occur; at the
  // very least the counter must be consistent (<= tasks).
  EXPECT_LE(g.stats().steals, g.stats().num_tasks);
}

TEST(TaskGraph, WorkStealingSingleWorkerIsLifoOnOwnDeque) {
  TaskGraph g;
  g.set_policy(SchedPolicy::WorkStealing);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) g.submit("t", {}, [&order, i] { order.push_back(i); });
  g.run(1);
  // All tasks seed the single deque (round-robin over 1 worker); the owner
  // pops from the back.
  const std::vector<int> expect = {4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(g.stats().steals, 0u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, 4, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, 4, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, 2, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 10, 3,
                   [](std::size_t i) {
                     if (i == 5) throw NumericalError("inner failure");
                   }),
      NumericalError);
}

TEST(ParallelFor, SingleWorkerSequential) {
  std::vector<std::size_t> order;
  parallel_for(3, 9, 1, [&](std::size_t i) { order.push_back(i); });
  const std::vector<std::size_t> expect = {3, 4, 5, 6, 7, 8};
  EXPECT_EQ(order, expect);
}

#ifndef GSX_TELEMETRY_DISABLED
// The packed TaskStart/TaskEnd/TaskDepEdge identities carry 8-bit worker
// lanes (0xFF reserved for externals): a run with more workers than the
// field can hold must skip the DAG-history events entirely — worker 255
// would otherwise masquerade as an external task — while the interval
// vocabulary (TaskRun/TaskDone) and the run itself stay intact.
TEST(TaskGraph, OversizedWorkerCountSkipsPackedDagEvents) {
  const auto count = [](gsx::obs::EventKind k) {
    std::size_t n = 0;
    for (const gsx::obs::Event& e : gsx::obs::FlightRecorder::instance().snapshot())
      if (e.kind == k) ++n;
    return n;
  };

  // Control: an in-range worker count records the packed DAG history.
  {
    const std::size_t start_before = count(gsx::obs::EventKind::TaskStart);
    TaskGraph g;
    std::atomic<int> ran{0};
    const auto d = DatumId::from_index(0);
    g.submit("a()", {{d, Access::Write}}, [&] { ++ran; });
    g.submit("b()", {{d, Access::Read}}, [&] { ++ran; });
    g.run(2);
    EXPECT_EQ(ran.load(), 2);
    EXPECT_GT(count(gsx::obs::EventKind::TaskStart), start_before);
  }

  // 300 workers overflow the 8-bit lane field: no new TaskStart/TaskEnd/
  // TaskDepEdge events (older ones may age out of the ring, hence LE), but
  // the graph still executes and TaskRun still records.
  {
    const std::size_t start_before = count(gsx::obs::EventKind::TaskStart);
    const std::size_t end_before = count(gsx::obs::EventKind::TaskEnd);
    const std::size_t edge_before = count(gsx::obs::EventKind::TaskDepEdge);
    TaskGraph g;
    std::atomic<int> ran{0};
    const auto d = DatumId::from_index(0);
    g.submit("a()", {{d, Access::Write}}, [&] { ++ran; });
    g.submit("b()", {{d, Access::Read}}, [&] { ++ran; });
    g.run(300);
    EXPECT_EQ(ran.load(), 2);
    EXPECT_LE(count(gsx::obs::EventKind::TaskStart), start_before);
    EXPECT_LE(count(gsx::obs::EventKind::TaskEnd), end_before);
    EXPECT_LE(count(gsx::obs::EventKind::TaskDepEdge), edge_before);
  }
}
#endif

}  // namespace
}  // namespace gsx::rt
