// GRF simulation statistics and the dense log-likelihood reference.
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/field.hpp"
#include "geostat/likelihood.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::geostat {
namespace {

TEST(SimulateGrf, EmpiricalMomentsMatchModel) {
  Rng rng(1);
  const auto locs = perturbed_grid_locations(64, rng);
  const MaternCovariance model(2.0, 0.1, 0.5, 0.0);
  // Average variance over replicates: Z(s) ~ N(0, sigma^2).
  const std::size_t reps = 300;
  const auto fields = simulate_grf_many(model, locs, rng, reps);
  double var = 0.0;
  for (const auto& f : fields)
    for (double v : f) var += v * v;
  var /= static_cast<double>(reps * locs.size());
  EXPECT_NEAR(var, 2.0, 0.15);
}

TEST(SimulateGrf, SpatialCorrelationDecays) {
  Rng rng(2);
  const auto locs = perturbed_grid_locations(100, rng);
  const MaternCovariance model(1.0, 0.1, 0.5, 0.0);
  const std::size_t reps = 400;
  const auto fields = simulate_grf_many(model, locs, rng, reps);

  // Empirical correlation of a near pair vs a far pair.
  auto corr = [&](std::size_t i, std::size_t j) {
    double sij = 0, sii = 0, sjj = 0;
    for (const auto& f : fields) {
      sij += f[i] * f[j];
      sii += f[i] * f[i];
      sjj += f[j] * f[j];
    }
    return sij / std::sqrt(sii * sjj);
  };
  // Find a close pair and a distant pair.
  std::size_t inear = 0, jnear = 1, ifar = 0, jfar = 1;
  double dmin = 1e9, dmax = -1.0;
  for (std::size_t i = 0; i < locs.size(); ++i)
    for (std::size_t j = i + 1; j < locs.size(); ++j) {
      const double d = std::hypot(locs[i].x - locs[j].x, locs[i].y - locs[j].y);
      if (d < dmin) { dmin = d; inear = i; jnear = j; }
      if (d > dmax) { dmax = d; ifar = i; jfar = j; }
    }
  EXPECT_GT(corr(inear, jnear), 0.3);
  EXPECT_LT(std::fabs(corr(ifar, jfar)), 0.25);
}

TEST(SimulateGrf, DeterministicGivenSeed) {
  Rng r1(42), r2(42);
  const auto locs = perturbed_grid_locations(32, r1);
  Rng r3(42);
  auto locs2 = perturbed_grid_locations(32, r3);
  const MaternCovariance model(1.0, 0.1, 0.5);
  Rng ra(7), rb(7);
  const auto za = simulate_grf(model, locs, ra);
  const auto zb = simulate_grf(model, locs, rb);
  EXPECT_EQ(za, zb);
}

TEST(DenseLoglik, MatchesHandComputedBivariate) {
  // Two locations, known covariance: check against the closed form.
  const std::vector<Location> locs = {{0, 0, 0}, {1, 0, 0}};
  const MaternCovariance model(1.0, 1.0, 0.5, 0.0);
  const double rho = std::exp(-1.0);  // correlation at distance 1
  const std::vector<double> z = {0.7, -0.4};

  const LoglikValue v = dense_loglik(model, locs, z);
  ASSERT_TRUE(v.ok);
  const double det = 1.0 - rho * rho;
  const double quad = (z[0] * z[0] - 2 * rho * z[0] * z[1] + z[1] * z[1]) / det;
  const double expect =
      -0.5 * (2.0 * std::log(2.0 * 3.141592653589793) + std::log(det) + quad);
  EXPECT_NEAR(v.loglik, expect, 1e-12);
  EXPECT_NEAR(v.logdet, std::log(det), 1e-12);
  EXPECT_NEAR(v.quadratic, quad, 1e-12);
}

TEST(DenseLoglik, TrueParametersBeatWrongOnes) {
  Rng rng(5);
  const auto locs = perturbed_grid_locations(150, rng);
  const MaternCovariance truth(1.0, 0.1, 0.5, 1e-6);
  // Average over replicates: truth must win in expectation.
  double margin_range = 0.0, margin_var = 0.0;
  const std::size_t reps = 10;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto z = simulate_grf(truth, locs, rng);
    const double l_true = dense_loglik(truth, locs, z).loglik;
    const MaternCovariance wrong_range(1.0, 0.4, 0.5, 1e-6);
    const MaternCovariance wrong_var(3.0, 0.1, 0.5, 1e-6);
    margin_range += l_true - dense_loglik(wrong_range, locs, z).loglik;
    margin_var += l_true - dense_loglik(wrong_var, locs, z).loglik;
  }
  EXPECT_GT(margin_range / reps, 0.0);
  EXPECT_GT(margin_var / reps, 0.0);
}

TEST(DenseLoglik, NonSpdReportsNotOk) {
  // Duplicate locations with zero nugget: exactly singular.
  const std::vector<Location> locs = {{0.5, 0.5, 0}, {0.5, 0.5, 0}};
  const MaternCovariance model(1.0, 0.1, 0.5, 0.0);
  const std::vector<double> z = {1.0, 1.0};
  const LoglikValue v = dense_loglik(model, locs, z);
  EXPECT_FALSE(v.ok);
}

TEST(LoglikFromCholesky, ConsistentWithDensePath) {
  Rng rng(6);
  const auto locs = perturbed_grid_locations(60, rng);
  const MaternCovariance model(1.3, 0.15, 0.7, 1e-6);
  std::vector<double> z(60);
  for (auto& v : z) v = rng.normal();

  la::Matrix<double> sigma = covariance_matrix(model, locs);
  ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0);
  const LoglikValue a = loglik_from_cholesky(sigma, z);
  const LoglikValue b = dense_loglik(model, locs, z);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NEAR(a.loglik, b.loglik, 1e-10 * std::fabs(b.loglik));
}

}  // namespace
}  // namespace gsx::geostat
