// Property-based sweeps across the factorization stack: for every variant,
// tile size, and correlation regime, the end-to-end invariants must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "core/model.hpp"
#include "geostat/assemble.hpp"
#include "geostat/field.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx {
namespace {

using gsx::test::rel_frobenius_diff;

struct Sweep {
  std::size_t n;
  std::size_t ts;
  double range;
  core::ComputeVariant variant;
};

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  const auto& s = info.param;
  std::string v = s.variant == core::ComputeVariant::DenseFP64   ? "dense"
                  : s.variant == core::ComputeVariant::MPDense   ? "mp"
                                                                 : "tlr";
  return "n" + std::to_string(s.n) + "_ts" + std::to_string(s.ts) + "_r" +
         std::to_string(static_cast<int>(s.range * 100)) + "_" + v;
}

class FactorSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(FactorSweep, LoglikConsistentWithDenseReference) {
  const Sweep s = GetParam();
  Rng rng(s.n * 31 + s.ts);
  auto locs = geostat::perturbed_grid_locations(s.n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, s.range, 0.5, 1e-6);
  const auto z = geostat::simulate_grf(model, locs, rng);

  const geostat::LoglikValue ref = geostat::dense_loglik(model, locs, z);
  ASSERT_TRUE(ref.ok);

  core::ModelConfig cfg;
  cfg.variant = s.variant;
  cfg.tile_size = s.ts;
  cfg.workers = 2;
  cfg.auto_band = false;
  cfg.band_size = 2;
  core::GsxModel m(model.clone(), cfg);
  const auto got = m.evaluate(model.params(), locs, z);
  ASSERT_TRUE(got.ok) << sweep_name({GetParam(), 0});
  EXPECT_NEAR(got.loglik, ref.loglik, 2e-3 * std::fabs(ref.loglik));
}

std::vector<Sweep> make_sweeps() {
  std::vector<Sweep> out;
  for (std::size_t n : {96u, 160u}) {
    for (std::size_t ts : {24u, 48u}) {
      for (double r : {0.03, 0.3}) {
        for (core::ComputeVariant v :
             {core::ComputeVariant::DenseFP64, core::ComputeVariant::MPDense,
              core::ComputeVariant::MPDenseTLR}) {
          out.push_back({n, ts, r, v});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, FactorSweep, ::testing::ValuesIn(make_sweeps()),
                         sweep_name);

// --------------------------------------------------------------------

class BandWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BandWidthSweep, WiderBandNeverLessAccurate) {
  const std::size_t band = GetParam();
  Rng rng(7);
  auto locs = geostat::perturbed_grid_locations(128, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.06, 0.5, 1e-6);

  tile::SymTileMatrix a(128, 32);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  const la::Matrix<double> full = a.to_full();
  la::Matrix<double> ref = full;
  ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, ref.view()), 0);
  for (std::size_t j = 0; j < 128; ++j)
    for (std::size_t i = 0; i < j; ++i) ref(i, j) = 0.0;

  cholesky::TlrCompressOptions copt;
  copt.tol = 1e-8;
  copt.band_size = band;
  copt.lr_fp32 = false;
  cholesky::compress_offband(a, copt, 1);
  cholesky::FactorOptions fopt;
  ASSERT_EQ(cholesky::tile_cholesky_tlr(a, 1e-8, fopt).info, 0);
  const double err = rel_frobenius_diff(cholesky::reconstruct_lower(a), ref);
  EXPECT_LT(err, 1e-5) << "band " << band;
}

INSTANTIATE_TEST_SUITE_P(Bands, BandWidthSweep, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------------

class WorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerSweep, TlrFactorizationDeterministicAcrossWorkerCounts) {
  const std::size_t workers = GetParam();
  Rng rng(9);
  auto locs = geostat::perturbed_grid_locations(128, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.08, 0.5, 1e-6);

  auto run = [&](std::size_t w) {
    tile::SymTileMatrix a(128, 32);
    geostat::fill_covariance_tiles(a, model, locs, 1);
    cholesky::TlrCompressOptions copt;
    copt.tol = 1e-8;
    copt.band_size = 2;
    copt.lr_fp32 = false;
    cholesky::compress_offband(a, copt, 1);
    cholesky::FactorOptions fopt;
    fopt.workers = w;
    EXPECT_EQ(cholesky::tile_cholesky_tlr(a, 1e-8, fopt).info, 0);
    return cholesky::reconstruct_lower(a);
  };
  const auto base = run(1);
  const auto par = run(workers);
  EXPECT_LT(rel_frobenius_diff(par, base), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep, ::testing::Values(2, 3, 5, 8));

// --------------------------------------------------------------------

TEST(FactorProperties, LogdetDecreasesWithNuggetRemoval) {
  // Sanity on the statistics: a larger nugget inflates the determinant.
  Rng rng(11);
  auto locs = geostat::perturbed_grid_locations(96, rng);
  double prev = -1e300;
  for (double nugget : {1e-6, 1e-2, 1e-1}) {
    const geostat::MaternCovariance model(1.0, 0.1, 0.5, nugget);
    la::Matrix<double> sigma = geostat::covariance_matrix(model, locs);
    ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0);
    double logdet = 0.0;
    for (std::size_t i = 0; i < 96; ++i) logdet += 2.0 * std::log(sigma(i, i));
    EXPECT_GT(logdet, prev);
    prev = logdet;
  }
}

TEST(FactorProperties, EvaluateIsDeterministicAcrossCalls) {
  Rng rng(13);
  auto locs = geostat::perturbed_grid_locations(128, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.07, 0.5, 1e-6);
  const auto z = geostat::simulate_grf(model, locs, rng);
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.tile_size = 32;
  cfg.workers = 3;
  cfg.auto_band = false;
  core::GsxModel m(model.clone(), cfg);
  const auto a = m.evaluate(model.params(), locs, z);
  const auto b = m.evaluate(model.params(), locs, z);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.loglik, b.loglik) << "same inputs, same DAG, same result";
}

}  // namespace
}  // namespace gsx
