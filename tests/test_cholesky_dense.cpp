// Mixed-precision dense tile Cholesky against the LAPACK-style reference.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_batch.hpp"
#include "cholesky/tile_solve.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

using gsx::test::rel_frobenius_diff;

/// SPD covariance-like test matrix with exponential decay.
tile::SymTileMatrix make_spd_tiles(std::size_t n, std::size_t ts, double rate) {
  tile::SymTileMatrix a(n, ts);
  a.generate(
      [&](std::size_t i, std::size_t j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        return std::exp(-rate * d) + (i == j ? 0.5 : 0.0);
      },
      1);
  return a;
}

la::Matrix<double> reference_chol(const tile::SymTileMatrix& a) {
  la::Matrix<double> full = a.to_full();
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, full.view()), 0);
  for (std::size_t j = 0; j < full.cols(); ++j)
    for (std::size_t i = 0; i < j; ++i) full(i, j) = 0.0;
  return full;
}

struct DenseCase {
  std::size_t n, ts, workers;
};

class DenseCholesky : public ::testing::TestWithParam<DenseCase> {};

TEST_P(DenseCholesky, Fp64MatchesLapackReference) {
  const auto [n, ts, workers] = GetParam();
  auto a = make_spd_tiles(n, ts, 0.3);
  const la::Matrix<double> expect = reference_chol(a);

  FactorOptions opts;
  opts.workers = workers;
  const FactorReport rep = tile_cholesky_dense(a, opts);
  ASSERT_EQ(rep.info, 0);
  EXPECT_LT(rel_frobenius_diff(reconstruct_lower(a), expect), 1e-12);

  // Task count: nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + one gemm
  // task per <= kGemmBatchMax chunk of each (k, n) panel column.
  const std::size_t nt = a.nt();
  std::size_t expected_tasks = nt + nt * (nt - 1) / 2 + nt * (nt - 1) / 2;
  for (std::size_t k = 0; k < nt; ++k)
    for (std::size_t n = k + 1; n < nt; ++n)
      expected_tasks += (nt - n - 1 + kGemmBatchMax - 1) / kGemmBatchMax;
  EXPECT_EQ(rep.graph.num_tasks, expected_tasks);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseCholesky,
                         ::testing::Values(DenseCase{16, 16, 1},   // single tile
                                           DenseCase{32, 8, 1},
                                           DenseCase{45, 8, 1},    // ragged edge
                                           DenseCase{64, 16, 4},   // parallel
                                           DenseCase{96, 16, 8},
                                           DenseCase{33, 32, 2})); // 2 tiles ragged

TEST(DenseCholesky, ParallelMatchesSequentialExactly) {
  auto a1 = make_spd_tiles(80, 16, 0.4);
  auto a2 = make_spd_tiles(80, 16, 0.4);
  FactorOptions seq, par;
  seq.workers = 1;
  par.workers = 8;
  ASSERT_EQ(tile_cholesky_dense(a1, seq).info, 0);
  ASSERT_EQ(tile_cholesky_dense(a2, par).info, 0);
  // FP64 tile kernels are deterministic: results must agree bit-for-bit.
  EXPECT_EQ(rel_frobenius_diff(reconstruct_lower(a1), reconstruct_lower(a2)), 0.0);
}

TEST(DenseCholesky, AllSchedulingPoliciesAgree) {
  const la::Matrix<double> expect = [] {
    auto a = make_spd_tiles(64, 16, 0.4);
    return reference_chol(a);
  }();
  for (rt::SchedPolicy pol :
       {rt::SchedPolicy::Fifo, rt::SchedPolicy::Lifo, rt::SchedPolicy::Priority}) {
    auto a = make_spd_tiles(64, 16, 0.4);
    FactorOptions opts;
    opts.workers = 4;
    opts.sched = pol;
    ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
    EXPECT_LT(rel_frobenius_diff(reconstruct_lower(a), expect), 1e-12);
  }
}

TEST(DenseCholesky, MixedPrecisionBandStaysAccurate) {
  auto a = make_spd_tiles(96, 16, 0.8);
  const la::Matrix<double> expect = reference_chol(a);

  PrecisionPolicy p;
  p.rule = PrecisionRule::Band;
  p.band = BandConfig{2, 4};
  apply_precision_policy(a, p);

  FactorOptions opts;
  opts.workers = 4;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  // FP32/FP16 off-band tiles: accuracy driven by the demoted storage.
  EXPECT_LT(rel_frobenius_diff(reconstruct_lower(a), expect), 5e-3);
}

TEST(DenseCholesky, AdaptivePrecisionTracksEpsTarget) {
  double prev_err = -1.0;
  for (double eps : {1e-2, 1e-6, 1e-12}) {
    auto a = make_spd_tiles(96, 16, 1.0);
    const la::Matrix<double> expect = reference_chol(a);
    PrecisionPolicy p;
    p.rule = PrecisionRule::AdaptiveFrobenius;
    p.eps_target = eps;
    apply_precision_policy(a, p);
    FactorOptions opts;
    ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
    const double err = rel_frobenius_diff(reconstruct_lower(a), expect);
    if (prev_err >= 0.0)
      EXPECT_LE(err, prev_err * 1.5 + 1e-15) << "tighter eps must not lose accuracy";
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-11) << "eps=1e-12 keeps everything FP64";
}

TEST(DenseCholesky, TilePrecisionPreservedThroughFactorization) {
  auto a = make_spd_tiles(64, 16, 1.5);
  PrecisionPolicy p;
  p.rule = PrecisionRule::Band;
  p.band = BandConfig{1, 2};
  apply_precision_policy(a, p);
  std::vector<Precision> before;
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) before.push_back(a.at(i, j).precision());
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  std::size_t idx = 0;
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i)
      EXPECT_EQ(a.at(i, j).precision(), before[idx++]) << "storage precision is sticky";
}

TEST(DenseCholesky, NonSpdReportsPivot) {
  tile::SymTileMatrix a(32, 8);
  a.generate(
      [](std::size_t i, std::size_t j) {
        if (i != j) return 0.01;
        return (i == 20) ? -5.0 : 1.0;  // negative pivot in tile 2
      },
      1);
  FactorOptions opts;
  const FactorReport rep = tile_cholesky_dense(a, opts);
  EXPECT_NE(rep.info, 0);
  EXPECT_GT(rep.info, 16);  // failure after the first two tiles
  EXPECT_LE(rep.info, 24);
}

TEST(DenseCholesky, LogdetMatchesReference) {
  auto a = make_spd_tiles(48, 16, 0.6);
  const la::Matrix<double> ref = reference_chol(a);
  double expect = 0.0;
  for (std::size_t i = 0; i < 48; ++i) expect += 2.0 * std::log(ref(i, i));
  FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  EXPECT_NEAR(tile_logdet(a), expect, 1e-9);
}

}  // namespace
}  // namespace gsx::cholesky
