// Low-rank kernel algebra against dense oracles.
#include <gtest/gtest.h>

#include "la/lapack.hpp"
#include "test_utils.hpp"
#include "tlr/compression.hpp"
#include "tlr/lr_kernels.hpp"

namespace gsx::tlr {
namespace {

using gsx::test::max_abs_diff;
using gsx::test::random_matrix;
using gsx::test::rel_frobenius_diff;

struct LrFixture {
  la::Matrix<double> u, v;       // the LR tile
  la::Matrix<double> dense;      // its dense value

  LrFixture(std::size_t m, std::size_t n, std::size_t k, Rng& rng)
      : u(random_matrix(m, k, rng)), v(random_matrix(n, k, rng)), dense(m, n) {
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                     dense.view());
  }
  [[nodiscard]] LrView view() const { return LrView{u.cview(), v.cview()}; }
};

TEST(LrTrsm, MatchesDenseTrsm) {
  Rng rng(1);
  const std::size_t n = 12, k = 4;
  // SPD -> L.
  auto spd = gsx::test::random_spd(n, rng);
  ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, spd.view()), 0);

  LrFixture b(n, n, k, rng);
  // Dense oracle: B L^{-T}.
  la::Matrix<double> oracle = b.dense;
  auto ov = oracle.view();
  la::trsm<double>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans, la::Diag::NonUnit,
                   1.0, spd.cview(), ov);

  la::Matrix<double> v2 = b.v;
  lr_trsm_right_lower_trans(spd.cview(), v2);
  la::Matrix<double> rec(n, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, b.u.cview(), v2.cview(), 0.0,
                   rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, oracle), 1e-12);
}

TEST(LrGemm, LrLrIntoDense) {
  Rng rng(2);
  const std::size_t m = 14, n = 11, p = 9;
  LrFixture a(m, p, 3, rng), b(n, p, 5, rng);
  auto c = random_matrix(m, n, rng);
  la::Matrix<double> oracle = c;
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.dense.cview(),
                   b.dense.cview(), 1.0, oracle.view());
  gemm_lr_lr_dense(-1.0, a.view(), b.view(), c.view());
  EXPECT_LT(max_abs_diff(c, oracle), 1e-11);
}

TEST(LrGemm, LrDenseIntoDense) {
  Rng rng(3);
  const std::size_t m = 10, n = 13, p = 8;
  LrFixture a(m, p, 4, rng);
  const auto b = random_matrix(n, p, rng);
  auto c = random_matrix(m, n, rng);
  la::Matrix<double> oracle = c;
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.dense.cview(), b.cview(),
                   1.0, oracle.view());
  gemm_lr_dense_dense(-1.0, a.view(), b.cview(), c.view());
  EXPECT_LT(max_abs_diff(c, oracle), 1e-11);
}

TEST(LrGemm, DenseLrIntoDense) {
  Rng rng(4);
  const std::size_t m = 9, n = 15, p = 7;
  const auto a = random_matrix(m, p, rng);
  LrFixture b(n, p, 2, rng);
  auto c = random_matrix(m, n, rng);
  la::Matrix<double> oracle = c;
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.dense.cview(),
                   1.0, oracle.view());
  gemm_dense_lr_dense(-1.0, a.cview(), b.view(), c.view());
  EXPECT_LT(max_abs_diff(c, oracle), 1e-11);
}

TEST(LrSyrk, MatchesDenseSyrkOnFullTile) {
  Rng rng(5);
  const std::size_t n = 12, p = 10, k = 4;
  LrFixture a(n, p, k, rng);
  auto c = gsx::test::random_spd(n, rng);
  la::Matrix<double> oracle = c;
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.dense.cview(),
                   a.dense.cview(), 1.0, oracle.view());
  syrk_lr_dense(-1.0, a.view(), c.view());
  EXPECT_LT(max_abs_diff(c, oracle), 1e-10);
}

struct RankPair {
  std::size_t ka, kb;
};

class LrProductTest : public ::testing::TestWithParam<RankPair> {};

TEST_P(LrProductTest, LrLrProductHasMinRank) {
  const auto [ka, kb] = GetParam();
  Rng rng(ka * 10 + kb);
  const std::size_t m = 16, n = 12, p = 14;
  LrFixture a(m, p, ka, rng), b(n, p, kb, rng);
  const LrProduct prod = product_lr_lr(a.view(), b.view());
  EXPECT_EQ(prod.u.cols(), std::min(ka, kb));

  la::Matrix<double> rec(m, n);
  if (prod.u.cols() > 0)
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, prod.u.cview(),
                     prod.v.cview(), 0.0, rec.view());
  la::Matrix<double> oracle(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, a.dense.cview(),
                   b.dense.cview(), 0.0, oracle.view());
  EXPECT_LT(rel_frobenius_diff(rec, oracle), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ranks, LrProductTest,
                         ::testing::Values(RankPair{3, 5}, RankPair{5, 3}, RankPair{4, 4},
                                           RankPair{1, 7}));

TEST(LrProduct, LrDenseKeepsLeftRank) {
  Rng rng(7);
  LrFixture a(10, 8, 3, rng);
  const auto b = random_matrix(12, 8, rng);
  const LrProduct p = product_lr_dense(a.view(), b.cview());
  EXPECT_EQ(p.u.cols(), 3u);
  la::Matrix<double> rec(10, 12), oracle(10, 12);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, p.u.cview(), p.v.cview(), 0.0,
                   rec.view());
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, a.dense.cview(), b.cview(),
                   0.0, oracle.view());
  EXPECT_LT(rel_frobenius_diff(rec, oracle), 1e-12);
}

TEST(LrProduct, DenseLrKeepsRightRank) {
  Rng rng(8);
  const auto a = random_matrix(9, 6, rng);
  LrFixture b(11, 6, 2, rng);
  const LrProduct p = product_dense_lr(a.cview(), b.view());
  EXPECT_EQ(p.u.cols(), 2u);
  la::Matrix<double> rec(9, 11), oracle(9, 11);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, p.u.cview(), p.v.cview(), 0.0,
                   rec.view());
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, a.cview(), b.dense.cview(),
                   0.0, oracle.view());
  EXPECT_LT(rel_frobenius_diff(rec, oracle), 1e-12);
}

TEST(LrProduct, DenseDenseCompressesToTolerance) {
  Rng rng(9);
  // Product of two blocks sharing a small inner dimension: truly low-rank.
  const auto a = random_matrix(15, 3, rng);
  const auto b = random_matrix(13, 3, rng);
  const LrProduct p = product_dense_dense(a.cview(), b.cview(), 1e-10);
  EXPECT_LE(p.u.cols(), 3u);
  la::Matrix<double> rec(15, 13), oracle(15, 13);
  if (p.u.cols() > 0)
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, p.u.cview(), p.v.cview(),
                     0.0, rec.view());
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, a.cview(), b.cview(), 0.0,
                   oracle.view());
  EXPECT_LT(rel_frobenius_diff(rec, oracle), 1e-9);
}

TEST(LrAxpy, AccumulatesWithRounding) {
  Rng rng(10);
  const std::size_t m = 18, n = 14;
  LrFixture c(m, n, 4, rng);
  LrFixture p(m, n, 3, rng);

  la::Matrix<double> oracle(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i)
      oracle(i, j) = c.dense(i, j) - 2.0 * p.dense(i, j);

  la::Matrix<double> uc = c.u, vc = c.v;
  lr_axpy_rounded(-2.0, LrProduct{p.u, p.v}, uc, vc, 1e-9);

  la::Matrix<double> rec(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, uc.cview(), vc.cview(), 0.0,
                   rec.view());
  EXPECT_LT(max_abs_diff(rec, oracle), 1e-8);
  EXPECT_LE(uc.cols(), 7u);  // at most k_c + k_p
}

TEST(LrAxpy, CancellationReducesRank) {
  Rng rng(11);
  LrFixture c(16, 16, 5, rng);
  // Subtracting the tile from itself must collapse to (near) rank zero.
  la::Matrix<double> uc = c.u, vc = c.v;
  lr_axpy_rounded(-1.0, LrProduct{c.u, c.v}, uc, vc, 1e-10);
  EXPECT_LE(uc.cols(), 1u);
  la::Matrix<double> rec(16, 16);
  if (uc.cols() > 0)
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, uc.cview(), vc.cview(), 0.0,
                     rec.view());
  EXPECT_LT(la::norm_frobenius<double>(rec.cview()), 1e-9);
}

TEST(LrGemv, BothDirectionsMatchDense) {
  Rng rng(12);
  LrFixture a(10, 8, 3, rng);
  std::vector<double> x(8), y(10, 0.25), x2(10), y2(8, -0.5);
  for (auto& v : x) v = rng.normal();
  for (auto& v : x2) v = rng.normal();

  auto y_oracle = y;
  la::gemv<double>(la::Trans::NoTrans, -1.0, a.dense.cview(), x.data(), 1.0,
                   y_oracle.data());
  lr_gemv(-1.0, a.view(), x.data(), y.data());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(y[i], y_oracle[i], 1e-12);

  auto y2_oracle = y2;
  la::gemv<double>(la::Trans::Trans, 2.0, a.dense.cview(), x2.data(), 1.0,
                   y2_oracle.data());
  lr_gemv_trans(2.0, a.view(), x2.data(), y2.data());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y2[i], y2_oracle[i], 1e-12);
}

}  // namespace
}  // namespace gsx::tlr
