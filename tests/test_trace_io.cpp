// Chrome-trace export and utilization summaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace_io.hpp"

namespace gsx::rt {
namespace {

TEST(TraceIo, WritesWellFormedJson) {
  TaskGraph g;
  g.set_tracing(true);
  for (int i = 0; i < 9; ++i) g.submit("job" + std::to_string(i), {}, [] {});
  g.run(2);

  const std::string path = "/tmp/gsx_trace_test.json";
  write_trace_json(g, path);

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string content = buf.str();
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content[content.size() - 2], ']');
  // One event per task.
  std::size_t events = 0;
  for (std::size_t pos = 0; (pos = content.find("\"ph\": \"X\"", pos)) != std::string::npos;
       ++pos)
    ++events;
  EXPECT_EQ(events, 9u);
  EXPECT_NE(content.find("\"name\": \"job0\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsUnwritablePath) {
  TaskGraph g;
  g.set_tracing(true);
  g.submit("t", {}, [] {});
  g.run(1);
  EXPECT_THROW(write_trace_json(g, "/nonexistent-dir/trace.json"), InvalidArgument);
}

TEST(TraceIo, UtilizationSummaryCoversWorkers) {
  TaskGraph g;
  g.set_tracing(true);
  for (int i = 0; i < 20; ++i)
    g.submit("w", {}, [] {
      volatile double x = 0;
      for (int k = 0; k < 10000; ++k) x = x + 1.0;
    });
  g.run(3);
  const std::string s = utilization_summary(g, 3);
  EXPECT_NE(s.find("worker 0"), std::string::npos);
  EXPECT_NE(s.find("worker 2"), std::string::npos);
  EXPECT_NE(s.find("% busy"), std::string::npos);
  // Total task count across rows equals 20.
  std::size_t total = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    const auto colon = line.find(": ");
    const auto tasks_pos = line.find(" tasks");
    ASSERT_NE(colon, std::string::npos);
    ASSERT_NE(tasks_pos, std::string::npos);
    total += static_cast<std::size_t>(
        std::stoul(line.substr(colon + 2, tasks_pos - colon - 2)));
  }
  EXPECT_EQ(total, 20u);
}

TEST(TraceIo, ProfileTraceCoversPhasesAndAnnotatedTasks) {
  obs::reset_all();
  obs::set_enabled(true);
  // A pipeline phase span plus an annotated kernel-task span, as the
  // factorization records them: phases on the pipeline row, tasks on
  // worker rows with precision/rank/flops args.
  { const obs::ScopedPhase phase("assemble"); }
  obs::TaskAnnotation ann;
  ann.precision = Precision::FP32;
  ann.rank = 7;
  ann.flops = 512;
  obs::record_span({"gemm(2,1,0)", "task", 3, obs::now_seconds(),
                    obs::now_seconds(), obs::annotation_args(ann)});
  obs::set_enabled(false);

  const std::string path = "/tmp/gsx_profile_trace_test.json";
  write_profile_trace_json(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string content = buf.str();

  // Pipeline row is named via a thread_name metadata event.
  EXPECT_NE(content.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(content.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(content.find("pipeline"), std::string::npos);
  // The phase span, on the pipeline row with its category.
  EXPECT_NE(content.find("\"name\": \"assemble\""), std::string::npos);
  EXPECT_NE(content.find("\"cat\": \"phase\""), std::string::npos);
  // The task span keeps its worker tid and kernel metadata.
  EXPECT_NE(content.find("\"name\": \"gemm(2,1,0)\""), std::string::npos);
  EXPECT_NE(content.find("\"cat\": \"task\""), std::string::npos);
  EXPECT_NE(content.find("\"precision\": \"FP32\""), std::string::npos);
  EXPECT_NE(content.find("\"rank\": 7"), std::string::npos);

  std::remove(path.c_str());
  obs::reset_all();
}

TEST(TraceIo, GraphRunFeedsAnnotatedEventsIntoTrace) {
  obs::reset_all();
  obs::set_enabled(true);
  TaskGraph g;
  g.set_tracing(true);
  g.submit("annotated", {}, [] { obs::annotate_task(Precision::FP16, 5, 99); });
  g.submit("plain", {}, [] {});
  g.run(1);
  obs::set_enabled(false);

  bool saw_annotated = false, saw_plain = false;
  for (const TraceEvent& e : g.trace()) {
    if (e.name == "annotated") {
      saw_annotated = true;
      EXPECT_NE(e.args.find("\"precision\": \"FP16\""), std::string::npos);
      EXPECT_NE(e.args.find("\"rank\": 5"), std::string::npos);
      EXPECT_NE(e.args.find("\"flops\": 99"), std::string::npos);
    } else if (e.name == "plain") {
      saw_plain = true;
      // The slot is drained per task: no annotation may leak across tasks.
      EXPECT_TRUE(e.args.empty());
    }
  }
  EXPECT_TRUE(saw_annotated);
  EXPECT_TRUE(saw_plain);
  obs::reset_all();
}

TEST(TraceIo, EmptyTraceProducesEmptyArray) {
  TaskGraph g;
  g.run(1);
  const std::string path = "/tmp/gsx_trace_empty.json";
  write_trace_json(g, path);
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), "[\n\n]\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsx::rt
