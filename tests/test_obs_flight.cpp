// Flight recorder: per-thread event rings, process-wide merge/dump paths and
// the Prometheus exposition that the serving layer scrapes.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export_prom.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace {

using gsx::obs::Event;
using gsx::obs::EventKind;
using gsx::obs::EventRing;
using gsx::obs::FlightRecorder;

Event make_event(std::uint64_t i) {
  Event e;
  e.t = static_cast<double>(i) * 0.5;
  e.kind = EventKind::TaskRun;
  e.request = i;
  e.a = i;
  e.b = i;
  e.v = static_cast<double>(i);
  return e;
}

TEST(EventRing, RecordsAndSnapshots) {
  EventRing ring;
  for (std::uint64_t i = 1; i <= 100; ++i) ring.record(make_event(i));
  EXPECT_EQ(ring.recorded(), 100u);

  std::vector<Event> out;
  ring.snapshot_into(out);
  ASSERT_EQ(out.size(), 100u);
  std::set<std::uint64_t> seen;
  for (const Event& e : out) {
    EXPECT_EQ(e.kind, EventKind::TaskRun);
    EXPECT_EQ(e.a, e.request);
    EXPECT_DOUBLE_EQ(e.v, static_cast<double>(e.a));
    seen.insert(e.a);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), 100u);
}

TEST(EventRing, WrapsKeepingTheNewestEvents) {
  EventRing ring;
  const std::uint64_t total = gsx::obs::kRingCapacity + 250;
  for (std::uint64_t i = 0; i < total; ++i) ring.record(make_event(i));
  EXPECT_EQ(ring.recorded(), total);

  std::vector<Event> out;
  ring.snapshot_into(out);
  ASSERT_EQ(out.size(), gsx::obs::kRingCapacity);
  std::uint64_t min_a = total;
  for (const Event& e : out) min_a = std::min(min_a, e.a);
  // The 250 oldest events were overwritten in place.
  EXPECT_EQ(min_a, 250u);
}

// The seqlock contract: a snapshot racing the writer never yields a torn
// event (fields from two different records). Events are written with
// a == b == request and v == a, so any mix would be visible.
TEST(EventRing, SnapshotNeverTearsUnderConcurrentWrites) {
  EventRing ring;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) ring.record(make_event(i++));
  });
  // Snapshots of an empty ring are vacuously tear-free; wait until the
  // writer thread is actually producing before racing against it.
  while (ring.recorded() < 64) std::this_thread::yield();

  std::size_t checked = 0;
  for (int pass = 0; pass < 200; ++pass) {
    std::vector<Event> out;
    ring.snapshot_into(out);
    for (const Event& e : out) {
      ASSERT_EQ(e.a, e.b);
      ASSERT_EQ(e.a, e.request);
      ASSERT_DOUBLE_EQ(e.v, static_cast<double>(e.a));
      ++checked;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(checked, 0u);
}

TEST(FlightRecorder, MergesEveryThreadTimeOrdered) {
  const std::uint64_t marker = 77'000'000;  // distinguish this test's events
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([w, marker] {
      for (int i = 0; i < kPerThread; ++i)
        gsx::obs::flight_record(EventKind::TaskDone, marker + static_cast<std::uint64_t>(w),
                                static_cast<std::uint64_t>(i), 0, 0.0);
    });
  }
  for (std::thread& t : pool) t.join();

  const std::vector<Event> all = FlightRecorder::instance().snapshot();
  std::size_t mine = 0;
  double last_t = -1.0;
  for (const Event& e : all) {
    EXPECT_GE(e.t, last_t);  // merged stream is time-ordered
    last_t = e.t;
    if (e.request >= marker && e.request < marker + kThreads) ++mine;
  }
  EXPECT_EQ(mine, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(FlightRecorder, EventJsonlHasTheDocumentedShape) {
  Event e;
  e.t = 1.25;
  e.kind = EventKind::RequestAdmit;
  e.thread = 3;
  e.request = 42;
  e.a = 7;
  e.b = 9;
  e.v = 0.5;
  const std::string line = gsx::obs::event_jsonl(e);
  EXPECT_NE(line.find("\"kind\":\"request_admit\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"request\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"a\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"b\":9"), std::string::npos) << line;
  EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(FlightRecorder, DumpWritesJsonl) {
  gsx::obs::flight_record(EventKind::SolveBegin, 4242, 10, 20, 0.0);
  const std::string path = ::testing::TempDir() + "gsx_flight_dump_test.jsonl";
  ASSERT_TRUE(FlightRecorder::instance().dump(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool found = false;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
    if (line.find("\"request\":4242") != std::string::npos &&
        line.find("solve_begin") != std::string::npos)
      found = true;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SignalSafeDumpWritesParseableLines) {
  gsx::obs::flight_record(EventKind::NumericalSentinel, 5151, 3, 0, 0.0);
  const std::string path = ::testing::TempDir() + "gsx_flight_fd_test.jsonl";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  FlightRecorder::instance().dump_fd_signal_safe(fileno(f));
  std::fclose(f);

  std::ifstream in(path);
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"request\":5151") != std::string::npos &&
        line.find("numerical_sentinel") != std::string::npos)
      found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

class PromExport : public ::testing::Test {
 protected:
  void SetUp() override {
    gsx::obs::Registry::instance().reset();
    gsx::obs::set_enabled(true);
  }
  void TearDown() override {
    gsx::obs::set_enabled(false);
    gsx::obs::Registry::instance().reset();
  }
};

/// Parse exposition text into {series line -> value}; series includes labels.
std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    out[series] = std::stod(value);
  }
  return out;
}

TEST_F(PromExport, NameSanitization) {
  EXPECT_EQ(gsx::obs::prometheus_name("serve.predict.seconds"),
            "gsx_serve_predict_seconds");
  EXPECT_EQ(gsx::obs::prometheus_name("taskgraph.queue_depth"),
            "gsx_taskgraph_queue_depth");
  EXPECT_EQ(gsx::obs::prometheus_name("weird-name/x"), "gsx_weird_name_x");
}

TEST_F(PromExport, CounterAndGaugeRoundTrip) {
  gsx::obs::Registry::instance().counter("promtest.requests").add(5);
  gsx::obs::Registry::instance().gauge("promtest.depth").set(3.5);

  const std::string text = gsx::obs::render_prometheus();
  EXPECT_NE(text.find("# TYPE gsx_promtest_requests counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsx_promtest_depth gauge"), std::string::npos);

  const auto series = parse_prometheus(text);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_requests"), 5.0);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_depth"), 3.5);
}

TEST_F(PromExport, HistogramCumulativeBucketsRoundTrip) {
  auto& h = gsx::obs::Registry::instance().histogram("promtest.latency",
                                                     {0.1, 1.0, 10.0});
  h.observe(0.05);   // le 0.1
  h.observe(0.5);    // le 1.0
  h.observe(0.7);    // le 1.0
  h.observe(5.0);    // le 10.0
  h.observe(100.0);  // overflow

  const std::string text = gsx::obs::render_prometheus();
  EXPECT_NE(text.find("# TYPE gsx_promtest_latency histogram"), std::string::npos);
  const auto series = parse_prometheus(text);

  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_latency_bucket{le=\"0.1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_latency_bucket{le=\"1\"}"), 3.0);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_latency_bucket{le=\"10\"}"), 4.0);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_latency_bucket{le=\"+Inf\"}"), 5.0);
  EXPECT_DOUBLE_EQ(series.at("gsx_promtest_latency_count"), 5.0);
  EXPECT_NEAR(series.at("gsx_promtest_latency_sum"), 106.25, 1e-9);

  // Cumulative buckets must be non-decreasing in exposition order (the map
  // sorts "+Inf" before "0.1", so walk the rendered text) and end at _count.
  std::istringstream in(text);
  std::string line;
  double prev = 0.0;
  double last = 0.0;
  while (std::getline(in, line)) {
    if (line.rfind("gsx_promtest_latency_bucket", 0) != 0) continue;
    const double value = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
    last = value;
  }
  EXPECT_DOUBLE_EQ(last, series.at("gsx_promtest_latency_count"));
}

TEST_F(PromExport, RendersEveryRegistryInstrument) {
  gsx::obs::Registry::instance().counter("promtest.a").add();
  gsx::obs::Registry::instance().gauge("promtest.b").set(1.0);
  gsx::obs::Registry::instance().histogram("promtest.c").observe(1.0);
  const std::string text = gsx::obs::render_prometheus();
  std::size_t families = 0;
  for (const gsx::obs::MetricSample& s : gsx::obs::Registry::instance().samples()) {
    EXPECT_NE(text.find(gsx::obs::prometheus_name(s.name)), std::string::npos)
        << s.name;
    ++families;
  }
  EXPECT_GE(families, 3u);
}

}  // namespace
