// Fleet subsystem: consistent-hash membership (placement stability, bounded
// movement, drain/dead exclusion, stale expiry), the shared checkpoint store
// (newest-valid resolution, partial-file rejection, concurrent loads,
// hot-swap), and router end-to-end passes against live replica Servers —
// routing vs the placement oracle, failover after a killed replica, and a
// drain that drops zero in-flight predicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/export_prom.hpp"
#include "obs/metrics.hpp"
#include "obs/flight_merge.hpp"
#include "core/model.hpp"
#include "geostat/field.hpp"
#include "geostat/kernel_registry.hpp"
#include "geostat/locations.hpp"
#include "geostat/prediction.hpp"
#include "serve/checkpoint.hpp"
#include "serve/listener.hpp"
#include "serve/membership.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {
namespace {

struct Problem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
  std::vector<double> theta{1.0, 0.1, 0.5};
};

Problem make_problem(std::size_t n, std::uint64_t seed = 13) {
  Rng rng(seed);
  Problem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  const auto kernel = geostat::make_kernel("matern", p.theta);
  p.z = geostat::simulate_grf(*kernel, p.locs, rng);
  return p;
}

ModelCheckpoint make_checkpoint(const Problem& p) {
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 24;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", p.theta), cfg);
  ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = p.theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  ckpt.factor = model.factor_at(p.theta, p.locs);
  return ckpt;
}

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<geostat::Location> random_points(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geostat::Location> pts(m);
  for (geostat::Location& l : pts) {
    l.x = rng.uniform();
    l.y = rng.uniform();
  }
  return pts;
}

// --- membership: placement --------------------------------------------------

TEST(Membership, PlacementIsIndependentOfJoinOrder) {
  Membership a(10.0), b(10.0);
  for (const char* r : {"r0", "r1", "r2", "r3"}) a.join(r, "127.0.0.1", 1);
  for (const char* r : {"r3", "r1", "r0", "r2"}) b.join(r, "127.0.0.1", 1);
  for (int m = 0; m < 100; ++m) {
    const std::string model = "model-" + std::to_string(m);
    const auto oa = a.owner(model);
    const auto ob = b.owner(model);
    ASSERT_TRUE(oa && ob);
    EXPECT_EQ(oa->name, ob->name) << model;
  }
}

TEST(Membership, JoinMovesOnlyABoundedShareOfModels) {
  Membership ring(10.0);
  for (const char* r : {"r0", "r1", "r2"}) ring.join(r, "127.0.0.1", 1);
  constexpr int kModels = 400;
  std::vector<std::string> before(kModels);
  for (int m = 0; m < kModels; ++m)
    before[m] = ring.owner("model-" + std::to_string(m))->name;

  ring.join("r3", "127.0.0.1", 1);
  int moved = 0;
  for (int m = 0; m < kModels; ++m) {
    const auto o = ring.owner("model-" + std::to_string(m));
    if (o->name != before[m]) {
      // Every move must land on the newcomer — consistent hashing never
      // reshuffles models between surviving replicas.
      EXPECT_EQ(o->name, "r3");
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kModels / 2);  // ~1/4 expected; half is already failure
}

TEST(Membership, DrainAndDeadLeaveTheRoutableSet) {
  Membership ring(10.0);
  for (const char* r : {"r0", "r1", "r2"}) ring.join(r, "127.0.0.1", 1);
  ASSERT_EQ(ring.alive_count(), 3u);
  const std::uint64_t rehashes = ring.rehash_events();

  EXPECT_TRUE(ring.drain("r1"));
  EXPECT_TRUE(ring.mark_dead("r2"));
  EXPECT_EQ(ring.alive_count(), 1u);
  EXPECT_EQ(ring.rehash_events(), rehashes + 2);
  for (int m = 0; m < 50; ++m) {
    const auto o = ring.owner("model-" + std::to_string(m));
    ASSERT_TRUE(o);
    EXPECT_EQ(o->name, "r0");
  }

  // Draining and dead replicas stay visible to operators.
  EXPECT_EQ(ring.snapshot().size(), 3u);
  // A heartbeat does not resurrect; a re-join does.
  EXPECT_FALSE(ring.heartbeat("r2", 0.0));
  EXPECT_TRUE(ring.join("r2", "127.0.0.1", 1));
  EXPECT_EQ(ring.alive_count(), 2u);
}

TEST(Membership, StaleHeartbeatExpiresToDead) {
  using Clock = Membership::Clock;
  const Clock::time_point t0 = Clock::now();
  Membership ring(5.0);
  ring.join("r0", "127.0.0.1", 1, t0);
  ring.join("r1", "127.0.0.1", 1, t0);
  ring.heartbeat("r1", 0.0, t0 + std::chrono::seconds(4));

  EXPECT_EQ(ring.alive_count(t0 + std::chrono::seconds(4)), 2u);
  // r0's heartbeat is 6s old, r1's is 2s old.
  EXPECT_EQ(ring.expire_stale(t0 + std::chrono::seconds(6)), 1u);
  const auto o = ring.owner("anything", t0 + std::chrono::seconds(6));
  ASSERT_TRUE(o);
  EXPECT_EQ(o->name, "r1");
  // Owner skips a fresh-looking entry whose state is already Dead.
  EXPECT_FALSE(ring.heartbeat("r0", 0.0, t0 + std::chrono::seconds(6)));
  EXPECT_EQ(ring.alive_count(t0 + std::chrono::seconds(6)), 1u);
}

TEST(Membership, NothingRoutableReturnsNullopt) {
  Membership ring(10.0);
  EXPECT_FALSE(ring.owner("m"));
  ring.join("r0", "127.0.0.1", 1);
  ring.drain("r0");
  EXPECT_FALSE(ring.owner("m"));
}

// --- checkpoint store -------------------------------------------------------

TEST(Store, ResolvesFlatThenVersionedNewestValid) {
  const Problem p = make_problem(72);
  const ModelCheckpoint ckpt = make_checkpoint(p);
  const std::string store = temp_dir("gsx_fleet_store_resolve");

  // Flat layout wins when present.
  save_model_checkpoint(store + "/flat.ckpt", ckpt);
  EXPECT_EQ(resolve_store_checkpoint(store, "flat"), store + "/flat.ckpt");

  // Versioned layout: lexicographically last valid version wins.
  std::filesystem::create_directories(store + "/era5");
  save_model_checkpoint(store + "/era5/v0001.ckpt", ckpt);
  save_model_checkpoint(store + "/era5/v0002.ckpt", ckpt);
  EXPECT_EQ(resolve_store_checkpoint(store, "era5"), store + "/era5/v0002.ckpt");

  // A truncated (partially copied) newer version is skipped, not fatal.
  {
    std::ifstream in(store + "/era5/v0002.ckpt", std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(store + "/era5/v0003.ckpt", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(checkpoint_valid(store + "/era5/v0003.ckpt"));
  EXPECT_EQ(resolve_store_checkpoint(store, "era5"), store + "/era5/v0002.ckpt");

  EXPECT_THROW(resolve_store_checkpoint(store, "ghost"), InvalidArgument);
  std::filesystem::remove_all(store);
}

TEST(Store, CorruptPayloadFailsCrcValidation) {
  const Problem p = make_problem(72);
  const std::string store = temp_dir("gsx_fleet_store_crc");
  const std::string path = store + "/m.ckpt";
  save_model_checkpoint(path, make_checkpoint(p));
  ASSERT_TRUE(checkpoint_valid(path));

  // Flip one payload byte near the end of the file (inside FACT data).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 9);
    char b;
    f.seekg(size - 9);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(size - 9);
    f.write(&b, 1);
  }
  EXPECT_FALSE(checkpoint_valid(path));
  EXPECT_THROW(load_model_checkpoint(path), InvalidArgument);
  EXPECT_THROW(resolve_store_checkpoint(store, "m"), InvalidArgument);
  std::filesystem::remove_all(store);
}

TEST(Store, TwoReplicasLoadTheSameCheckpointConcurrently) {
  const Problem p = make_problem(96);
  const std::string store = temp_dir("gsx_fleet_store_concurrent");
  save_model_checkpoint(store + "/m.ckpt", make_checkpoint(p));

  ModelRegistry reg_a, reg_b;
  std::atomic<int> failures{0};
  std::thread a([&] {
    try {
      reg_a.load("m", resolve_store_checkpoint(store, "m"));
    } catch (...) {
      ++failures;
    }
  });
  std::thread b([&] {
    try {
      reg_b.load("m", resolve_store_checkpoint(store, "m"));
    } catch (...) {
      ++failures;
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
  const auto ma = reg_a.get("m");
  const auto mb = reg_b.get("m");
  ASSERT_TRUE(ma && mb);
  // Checkpoint loads are bit-identical, so both replicas hold the same data.
  EXPECT_EQ(ma->z_train, mb->z_train);
  EXPECT_EQ(ma->resident_bytes, mb->resident_bytes);
  std::filesystem::remove_all(store);
}

TEST(Store, HotSwapPicksNewestAndKeepsInFlightModelAlive) {
  const Problem p1 = make_problem(72, 13);
  const Problem p2 = make_problem(72, 14);  // different field, same extent
  const std::string store = temp_dir("gsx_fleet_store_hotswap");
  std::filesystem::create_directories(store + "/m");
  save_model_checkpoint(store + "/m/v0001.ckpt", make_checkpoint(p1));

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.store_dir = store;
  Server server(cfg);
  ASSERT_TRUE(JsonValue::parse(server.handle_line(R"({"op":"load","name":"m"})"))
                  .find("ok")->as_bool());
  const auto v1 = server.registry().get("m");
  ASSERT_NE(v1, nullptr);

  // Publish v0002 and hot-swap by re-issuing the same store-resolved load.
  save_model_checkpoint(store + "/m/v0002.ckpt", make_checkpoint(p2));
  const JsonValue r =
      JsonValue::parse(server.handle_line(R"({"op":"load","name":"m"})"));
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  EXPECT_EQ(r.find("path")->as_string(), store + "/m/v0002.ckpt");

  // The registry now serves v2; the in-flight v1 handle is still whole.
  const auto v2 = server.registry().get("m");
  ASSERT_NE(v2, nullptr);
  EXPECT_NE(v1.get(), v2.get());
  EXPECT_EQ(v1->z_train, p1.z);
  EXPECT_EQ(v2->z_train, p2.z);
  std::filesystem::remove_all(store);
}

// --- router + replicas end to end -------------------------------------------

/// A live in-process fleet: k replica Servers on ephemeral TCP ports plus a
/// Router, replicas joined into the membership table.
struct Fleet {
  explicit Fleet(std::size_t k, const std::string& store = "") {
    RouterConfig rcfg;
    rcfg.stale_after_seconds = 60.0;  // tests drive state transitions directly
    router = std::make_unique<Router>(rcfg);
    for (std::size_t i = 0; i < k; ++i) {
      ServerConfig cfg;
      cfg.workers = 1;
      cfg.store_dir = store;
      replicas.push_back(std::make_unique<Server>(cfg));
      ports.push_back(replicas.back()->listen());
      loops.emplace_back([s = replicas.back().get()] { s->serve_forever(); });
      router->membership().join("r" + std::to_string(i), "127.0.0.1",
                                ports.back());
    }
  }
  ~Fleet() {
    router->shutdown();
    for (auto& r : replicas) r->shutdown();
    for (auto& t : loops) t.join();
  }

  JsonValue ask(const std::string& line) {
    return JsonValue::parse(router->handle_line(line));
  }

  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<Server>> replicas;
  std::vector<std::uint16_t> ports;
  std::vector<std::thread> loops;
};

std::string predict_line(const std::string& model,
                         const std::vector<geostat::Location>& pts) {
  std::string req = R"({"op":"predict","model":")" + model + R"(","points":[)";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) req += ",";
    req += "[" + std::to_string(pts[i].x) + "," + std::to_string(pts[i].y) + "]";
  }
  req += "]}";
  return req;
}

TEST(FleetE2E, RoutesLoadsAndPredictsAcrossThreeReplicas) {
  const Problem p = make_problem(96);
  const std::string store = temp_dir("gsx_fleet_e2e_store");
  save_model_checkpoint(store + "/shared.ckpt", make_checkpoint(p));

  Fleet fleet(3, store);
  // Load eight models through the router; each lands on its hash owner.
  std::set<std::string> used;
  for (int m = 0; m < 8; ++m) {
    const std::string name = "model-" + std::to_string(m);
    const JsonValue r = fleet.ask(
        R"({"op":"load","name":")" + name + R"(","path":"shared.ckpt"})");
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
    const std::string placed = r.find("replica")->as_string();
    EXPECT_EQ(placed, fleet.router->membership().owner(name)->name);
    used.insert(placed);
  }
  EXPECT_GE(used.size(), 2u);  // 8 models over 3 replicas must spread

  // Predictions agree with the dense kriging oracle, and each is answered by
  // the model's placement owner.
  const auto kernel = geostat::make_kernel("matern", p.theta);
  for (int m = 0; m < 8; m += 3) {
    const std::string name = "model-" + std::to_string(m);
    const auto pts = random_points(5, 700 + static_cast<std::uint64_t>(m));
    const JsonValue r = fleet.ask(predict_line(name, pts));
    ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
    EXPECT_EQ(r.find("replica")->as_string(),
              fleet.router->membership().owner(name)->name);

    std::vector<geostat::Location> sent(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      sent[i].x = std::stod(std::to_string(pts[i].x));
      sent[i].y = std::stod(std::to_string(pts[i].y));
    }
    const auto oracle = geostat::krige(*kernel, p.locs, p.z, sent, true);
    const auto& mean = r.find("mean")->as_array();
    ASSERT_EQ(mean.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
      EXPECT_NEAR(mean[i].as_number(), oracle.mean[i],
                  1e-8 * std::max(1.0, std::abs(oracle.mean[i])));
  }
}

TEST(FleetE2E, KilledReplicaFailsOverAndKeepsServing) {
  const Problem p = make_problem(96);
  const std::string store = temp_dir("gsx_fleet_e2e_failover");
  save_model_checkpoint(store + "/shared.ckpt", make_checkpoint(p));

  Fleet fleet(3, store);
  for (int m = 0; m < 6; ++m)
    ASSERT_TRUE(fleet.ask(R"({"op":"load","name":"model-)" + std::to_string(m) +
                          R"(","path":"shared.ckpt"})")
                    .find("ok")->as_bool());

  // Kill replica r1 ungracefully: no drain, no goodbye — the router finds out
  // from the failed forward.
  const std::size_t victim = 1;
  fleet.replicas[victim]->shutdown();
  const std::uint64_t rehashes_before = fleet.router->membership().rehash_events();

  const auto pts = random_points(4, 41);
  for (int m = 0; m < 6; ++m) {
    const std::string name = "model-" + std::to_string(m);
    const JsonValue r = fleet.ask(predict_line(name, pts));
    ASSERT_TRUE(r.find("ok")->as_bool()) << name << " -> " << r.dump();
    EXPECT_NE(r.find("replica")->as_string(), "r1") << name;
  }
  // At least one model was owned by the victim, so the router must have
  // marked it dead (>= 1 rehash) and auto-loaded on the inheritor.
  EXPECT_GT(fleet.router->membership().rehash_events(), rehashes_before);
  const auto snapshot = fleet.router->membership().snapshot();
  for (const ReplicaInfo& r : snapshot)
    if (r.name == "r1") EXPECT_EQ(r.state, ReplicaState::Dead);
}

TEST(FleetE2E, DrainCompletesEveryInFlightPredict) {
  const Problem p = make_problem(96);
  const std::string store = temp_dir("gsx_fleet_e2e_drain");
  save_model_checkpoint(store + "/shared.ckpt", make_checkpoint(p));

  Fleet fleet(3, store);
  for (int m = 0; m < 6; ++m)
    ASSERT_TRUE(fleet.ask(R"({"op":"load","name":"model-)" + std::to_string(m) +
                          R"(","path":"shared.ckpt"})")
                    .find("ok")->as_bool());

  // Saturate the fleet with concurrent predicts, then drain one replica in
  // the middle of the storm. Every request must complete: requests in flight
  // on the drained replica flush before it exits, later ones re-route.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 4;
  std::atomic<std::size_t> dropped{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::string name =
            "model-" + std::to_string((t * kPerThread + i) % 6);
        const auto pts = random_points(3, 100 * t + i);
        const JsonValue r = fleet.ask(predict_line(name, pts));
        const JsonValue* ok = r.find("ok");
        if (ok == nullptr || !ok->as_bool()) ++dropped;
      }
    });
  }
  const JsonValue drained = fleet.ask(R"({"op":"drain","replica":"r0"})");
  EXPECT_TRUE(drained.find("ok")->as_bool()) << drained.dump();
  for (auto& t : clients) t.join();

  EXPECT_EQ(dropped.load(), 0u);
  // The drained replica left the routable set. Usually it still reports
  // draining here, but a client racing the drain may dial it after its
  // listener closed, in which case the router's failover already marked it
  // dead — either way it must no longer count as alive.
  for (const ReplicaInfo& r : fleet.router->membership().snapshot())
    if (r.name == "r0") EXPECT_NE(r.state, ReplicaState::Alive);
  for (int m = 0; m < 6; ++m) {
    const auto o = fleet.router->membership().owner("model-" + std::to_string(m));
    ASSERT_TRUE(o);
    EXPECT_NE(o->name, "r0");
  }
  // And new predicts still complete on the survivors.
  const JsonValue after = fleet.ask(predict_line("model-0", random_points(2, 999)));
  EXPECT_TRUE(after.find("ok")->as_bool()) << after.dump();
}

TEST(FleetE2E, RouterForwardsClientRequestIdAcrossBothHops) {
  const Problem p = make_problem(72);
  const std::string store = temp_dir("gsx_fleet_e2e_reqid");
  save_model_checkpoint(store + "/shared.ckpt", make_checkpoint(p));

  Fleet fleet(1, store);
  ASSERT_TRUE(fleet.ask(R"({"op":"load","name":"m","path":"shared.ckpt"})")
                  .find("ok")->as_bool());
  std::string line = predict_line("m", random_points(2, 7));
  line.insert(line.size() - 1, R"(,"request_id":"r-424242")");
  const JsonValue r = fleet.ask(line);
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  // The replica echoed the id the router forwarded — one id, both hops.
  EXPECT_EQ(r.find("request_id")->as_string(), "r-424242");
}

TEST(FleetE2E, AnnouncerRegistersHeartbeatsAndSaysGoodbye) {
  RouterConfig rcfg;
  rcfg.stale_after_seconds = 60.0;
  Router router(rcfg);
  const std::uint16_t router_port = router.listen();
  std::thread loop([&router] { router.serve_forever(); });

  Announcer::Config acfg;
  acfg.router_port = router_port;
  acfg.replica_name = "hb-replica";
  acfg.replica_port = 19999;  // never dialed in this test
  acfg.heartbeat_seconds = 0.02;
  Announcer announcer(acfg, [] { return ReplicaLoad{1.5, 2.0}; });
  announcer.start();

  // register + a few heartbeats land.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (announcer.delivered() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(announcer.delivered(), 3u);

  bool seen = false;
  for (const ReplicaInfo& r : router.membership().snapshot()) {
    if (r.name != "hb-replica") continue;
    seen = true;
    EXPECT_EQ(r.state, ReplicaState::Alive);
    EXPECT_EQ(r.port, 19999);
    EXPECT_GE(r.heartbeats, 3u);
    EXPECT_EQ(r.queue_depth, 1.5);
    EXPECT_EQ(r.inflight, 2.0);
  }
  EXPECT_TRUE(seen);

  // stop() sends the goodbye drain: the replica leaves the routable set
  // immediately instead of waiting out the stale window.
  announcer.stop();
  EXPECT_EQ(router.membership().alive_count(), 0u);
  for (const ReplicaInfo& r : router.membership().snapshot())
    if (r.name == "hb-replica") EXPECT_EQ(r.state, ReplicaState::Draining);

  router.shutdown();
  loop.join();
}

TEST(Router, StatsHealthAndUnknownVerbs) {
  RouterConfig cfg;
  Router router(cfg);
  const JsonValue health = JsonValue::parse(router.handle_line(R"({"op":"health"})"));
  EXPECT_TRUE(health.find("ok")->as_bool());
  EXPECT_EQ(health.find("status")->as_string(), "no-replicas");

  EXPECT_FALSE(JsonValue::parse(router.handle_line(R"({"op":"transmogrify"})"))
                   .find("ok")->as_bool());
  EXPECT_FALSE(JsonValue::parse(router.handle_line("not json"))
                   .find("ok")->as_bool());
  EXPECT_FALSE(JsonValue::parse(
                   router.handle_line(R"({"op":"heartbeat","replica":"ghost"})"))
                   .find("ok")->as_bool());
  EXPECT_FALSE(JsonValue::parse(
                   router.handle_line(R"({"op":"predict","model":"m","points":[[0,0]]})"))
                   .find("ok")->as_bool());

  ASSERT_TRUE(JsonValue::parse(router.handle_line(
                  R"({"op":"register","replica":"r0","port":12345})"))
                  .find("ok")->as_bool());
  const JsonValue stats = JsonValue::parse(router.handle_line(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  ASSERT_EQ(stats.find("replicas")->as_array().size(), 1u);
  EXPECT_EQ(stats.find("replicas")->as_array()[0].find("state")->as_string(),
            "alive");
  EXPECT_EQ(stats.find("alive")->as_number(), 1.0);
}

TEST(Wire, RequestIdRoundTripAndVerbTables) {
  EXPECT_EQ(parse_request_id("r-17"), 17u);
  EXPECT_EQ(parse_request_id("17"), 17u);
  EXPECT_EQ(parse_request_id("r-"), 0u);
  EXPECT_EQ(parse_request_id("bogus"), 0u);
  EXPECT_EQ(parse_request_id(request_id_string(12345)), 12345u);

  // The dispatchers and the docs checker both hang off these tables.
  const auto& sv = server_verbs();
  EXPECT_NE(std::find(sv.begin(), sv.end(), "drain"), sv.end());
  EXPECT_NE(std::find(sv.begin(), sv.end(), "predict"), sv.end());
  const auto& rv = router_verbs();
  EXPECT_NE(std::find(rv.begin(), rv.end(), "register"), rv.end());
  EXPECT_NE(std::find(rv.begin(), rv.end(), "heartbeat"), rv.end());
}

// Regression: a wire-initiated drain and the daemon's post-accept shutdown
// path used to race into Engine::drain / Router::shutdown concurrently —
// two threads passing the joinable() check would both join the same
// std::thread (UB; in practice the loser parked on a futex forever). All
// teardown entry points must tolerate concurrent callers.
TEST(FleetE2E, ConcurrentShutdownCallersDoNotDeadlock) {
  ServerConfig scfg;
  scfg.tcp_port = 0;
  auto server = std::make_unique<Server>(scfg);
  server->listen();
  std::thread server_loop([&] { server->serve_forever(); });

  RouterConfig rcfg;
  rcfg.tcp_port = 0;
  auto router = std::make_unique<Router>(rcfg);
  router->listen();
  std::thread router_loop([&] { router->serve_forever(); });

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { server->shutdown(); });
    stoppers.emplace_back([&] { router->shutdown(); });
  }
  for (std::thread& t : stoppers) t.join();
  server_loop.join();
  router_loop.join();
  server.reset();
  router.reset();
}

// --- fleet observability plane ----------------------------------------------

// The whole plane in one pass: a predict through the router carries a
// distributed trace id end to end; fleet_metrics federates every replica's
// exposition under replica="<name>" labels with fleet rollups; a corrupted
// factor fails a traced predict; flight_collect gathers every process's
// dump; and the merge reconstructs one timeline where the failing trace id
// spans the router's forward and the replica's solve.
TEST(FleetE2E, ObservabilityPlaneTracesMetricsAndFlightCorrelation) {
  // Recording is opt-in (the daemons flip it at startup); without it every
  // counter stays 0 and the flight ring stays empty.
  obs::set_enabled(true);
  const Problem p = make_problem(96);
  const std::string store = temp_dir("gsx_fleet_obs_store");
  save_model_checkpoint(store + "/shared.ckpt", make_checkpoint(p));
  // A zero on the factor diagonal: the first predict against it trips the
  // non-finite sentinel (NumericalError arriving through data, not wire).
  ModelCheckpoint bad = make_checkpoint(p);
  bad.factor.at(0, 0).d64()(0, 0) = 0.0;
  save_model_checkpoint(store + "/bad.ckpt", bad);

  Fleet fleet(3, store);
  ASSERT_TRUE(fleet.ask(R"({"op":"load","name":"m","path":"shared.ckpt"})")
                  .find("ok")->as_bool());
  ASSERT_TRUE(fleet.ask(R"({"op":"load","name":"doomed","path":"bad.ckpt"})")
                  .find("ok")->as_bool());

  // 1. The router mints a trace id and the predict response carries it.
  const JsonValue ok = fleet.ask(predict_line("m", random_points(4, 41)));
  ASSERT_TRUE(ok.find("ok")->as_bool()) << ok.dump();
  const JsonValue* tid = ok.find("trace_id");
  ASSERT_NE(tid, nullptr) << ok.dump();
  EXPECT_EQ(tid->as_string().rfind("t-", 0), 0u);

  // A client-supplied trace context is adopted, not replaced.
  std::string traced = predict_line("m", random_points(3, 42));
  traced.insert(traced.size() - 1, R"(,"trace_id":"t-00000000deadbeef")");
  const JsonValue adopted = fleet.ask(traced);
  ASSERT_TRUE(adopted.find("ok")->as_bool()) << adopted.dump();
  EXPECT_EQ(adopted.find("trace_id")->as_string(), "t-00000000deadbeef");

  // Heartbeat-reported load surfaces per replica in router stats.
  const JsonValue stats = fleet.ask(R"({"op":"stats"})");
  ASSERT_TRUE(stats.find("ok")->as_bool());
  for (const JsonValue& r : stats.find("replicas")->as_array())
    ASSERT_NE(r.find("inflight"), nullptr) << r.dump();

  // 2. Federated metrics: every replica's series re-labeled, plus rollups.
  const JsonValue fm = fleet.ask(R"({"op":"fleet_metrics"})");
  ASSERT_TRUE(fm.find("ok")->as_bool()) << fm.dump();
  const std::string prom = fm.find("prometheus")->as_string();
  for (const char* r : {"r0", "r1", "r2"})
    EXPECT_NE(prom.find("replica=\"" + std::string(r) + "\""),
              std::string::npos) << r;
  EXPECT_NE(prom.find("gsx_serve_predict_seconds_bucket{replica="),
            std::string::npos);
  EXPECT_NE(prom.find("gsx_router_fleet_replicas_scraped 3"), std::string::npos);
  EXPECT_NE(prom.find("gsx_router_fleet_queue_depth_max"), std::string::npos);
  EXPECT_NE(prom.find("gsx_router_slo_violations"), std::string::npos);

  // 3. The corrupted factor fails a traced predict.
  const JsonValue doomed = fleet.ask(predict_line("doomed", random_points(2, 43)));
  ASSERT_FALSE(doomed.find("ok")->as_bool()) << doomed.dump();
  const JsonValue* bad_tid = doomed.find("trace_id");
  ASSERT_NE(bad_tid, nullptr) << doomed.dump();
  const std::uint64_t bad_trace = parse_trace_id(bad_tid->as_string());
  ASSERT_NE(bad_trace, 0u);

  // 4. flight_collect gathers one dump per process (3 replicas + router).
  const std::string pm_dir = temp_dir("gsx_fleet_obs_pm");
  const JsonValue collected =
      fleet.ask(R"({"op":"flight_collect","dir":")" + pm_dir + R"("})");
  ASSERT_TRUE(collected.find("ok")->as_bool()) << collected.dump();
  const auto& files = collected.find("files")->as_array();
  ASSERT_EQ(files.size(), 4u) << collected.dump();

  // 5. The merged timeline tells the failure's story under one trace id.
  std::vector<obs::FlightDump> dumps;
  for (const JsonValue& f : files) {
    std::ifstream in(f.as_string());
    ASSERT_TRUE(in.good()) << f.as_string();
    std::ostringstream buf;
    buf << in.rdbuf();
    dumps.push_back(obs::parse_flight_dump(buf.str()));
    EXPECT_TRUE(dumps.back().has_header) << f.as_string();
  }
  const obs::MergeResult merged = obs::merge_flight_dumps(dumps);
  ASSERT_EQ(merged.traces.count(bad_trace), 1u)
      << "failing trace absent from the merged timeline";
  bool router_forward = false, replica_solve = false;
  std::uint64_t forward_span = 0, solve_parent = 0;
  for (const std::size_t i : merged.traces.at(bad_trace)) {
    const obs::MergedEvent& e = merged.timeline[i];
    if (e.kind == "span_router_forward") {
      router_forward = true;
      forward_span = e.a;
    }
    if (e.kind == "span_replica_solve") {
      replica_solve = true;
      solve_parent = e.b;
    }
  }
  EXPECT_TRUE(router_forward) << "trace lacks the router's forward span";
  EXPECT_TRUE(replica_solve) << "trace lacks the replica's solve span";
  // Parenthood across the hop: the replica's solve names the router's
  // forward span as its parent.
  EXPECT_EQ(solve_parent, forward_span);

  obs::set_enabled(false);
  std::filesystem::remove_all(store);
  std::filesystem::remove_all(pm_dir);
}

}  // namespace
}  // namespace gsx::serve
