// End-to-end GsxModel: evaluate / fit / predict across all three compute
// variants, on space and space-time data.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "data/synthetic.hpp"
#include "geostat/field.hpp"
#include "mathx/stats.hpp"

namespace gsx::core {
namespace {

using geostat::Location;

struct SpaceData {
  std::vector<Location> locs;
  std::vector<double> z;
};

SpaceData make_space_data(std::size_t n, double range, std::uint64_t seed = 11) {
  Rng rng(seed);
  SpaceData d;
  d.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(d.locs);
  const geostat::MaternCovariance model(1.0, range, 0.5, 1e-6);
  d.z = geostat::simulate_grf(model, d.locs, rng);
  return d;
}

ModelConfig base_config(ComputeVariant v) {
  ModelConfig cfg;
  cfg.variant = v;
  cfg.tile_size = 32;
  cfg.workers = 2;
  cfg.eps_target = 1e-8;
  cfg.tlr_tol = 1e-8;
  cfg.auto_band = false;
  cfg.band_size = 2;
  return cfg;
}

class AllVariants : public ::testing::TestWithParam<ComputeVariant> {};

TEST_P(AllVariants, EvaluateAgreesWithDenseReference) {
  const SpaceData d = make_space_data(160, 0.1);
  const geostat::MaternCovariance proto(1.0, 0.1, 0.5, 1e-6);
  const std::vector<double> theta = {1.0, 0.1, 0.5};

  const geostat::LoglikValue ref = geostat::dense_loglik(proto, d.locs, d.z);
  ASSERT_TRUE(ref.ok);

  GsxModel model(proto.clone(), base_config(GetParam()));
  EvalBreakdown bd;
  const geostat::LoglikValue got = model.evaluate(theta, d.locs, d.z, &bd);
  ASSERT_TRUE(got.ok) << variant_name(GetParam());
  // The paper's Tables I/II: variants agree on llh to ~4-5 significant digits.
  EXPECT_NEAR(got.loglik, ref.loglik, 1e-3 * std::fabs(ref.loglik))
      << variant_name(GetParam());
  EXPECT_GT(bd.factor.graph.num_tasks, 0u);
  EXPECT_GT(bd.total_seconds, 0.0);
}

TEST_P(AllVariants, PredictBeatsZeroPredictor) {
  const SpaceData d = make_space_data(220, 0.12);
  const geostat::MaternCovariance proto(1.0, 0.12, 0.5, 1e-6);
  const std::vector<double> theta = {1.0, 0.12, 0.5};

  const std::size_t ntrain = 180;
  GsxModel model(proto.clone(), base_config(GetParam()));
  const std::span<const Location> train(d.locs.data(), ntrain);
  const std::span<const Location> test(d.locs.data() + ntrain, d.locs.size() - ntrain);
  const std::span<const double> ztrain(d.z.data(), ntrain);
  const std::vector<double> ztest(d.z.begin() + ntrain, d.z.end());

  const geostat::KrigingResult r = model.predict(theta, train, ztrain, test);
  const double err = mathx::mspe(r.mean, ztest);
  double zero = 0.0;
  for (double v : ztest) zero += v * v;
  zero /= static_cast<double>(ztest.size());
  // nu = 0.5 (rough field): kriging gains are modest but must be real.
  EXPECT_LT(err, 0.85 * zero) << variant_name(GetParam());
  ASSERT_EQ(r.variance.size(), ztest.size());
  for (double v : r.variance) EXPECT_GE(v, -1e-6);
}

INSTANTIATE_TEST_SUITE_P(Variants, AllVariants,
                         ::testing::Values(ComputeVariant::DenseFP64,
                                           ComputeVariant::MPDense,
                                           ComputeVariant::MPDenseTLR),
                         [](const auto& info) {
                           switch (info.param) {
                             case ComputeVariant::DenseFP64: return "DenseFP64";
                             case ComputeVariant::MPDense: return "MPDense";
                             default: return "MPDenseTLR";
                           }
                         });

TEST(GsxModel, VariantsAgreePairwiseOnLoglik) {
  const SpaceData d = make_space_data(192, 0.08);
  const geostat::MaternCovariance proto(1.0, 0.08, 0.5, 1e-6);
  const std::vector<double> theta = {0.9, 0.09, 0.6};
  double vals[3];
  int i = 0;
  for (ComputeVariant v : {ComputeVariant::DenseFP64, ComputeVariant::MPDense,
                           ComputeVariant::MPDenseTLR}) {
    GsxModel m(proto.clone(), base_config(v));
    const auto r = m.evaluate(theta, d.locs, d.z);
    ASSERT_TRUE(r.ok);
    vals[i++] = r.loglik;
  }
  EXPECT_NEAR(vals[1], vals[0], 1e-3 * std::fabs(vals[0]));
  EXPECT_NEAR(vals[2], vals[0], 1e-3 * std::fabs(vals[0]));
}

TEST(GsxModel, FitRecoversParametersSmallProblem) {
  // Parameter recovery on a modest problem: estimates should land near the
  // truth (cf. Fig. 6 boxplots; a single replicate has sampling noise).
  const SpaceData d = make_space_data(256, 0.1, 21);
  geostat::MaternCovariance proto(0.5, 0.05, 1.0, 1e-6);  // start away from truth

  ModelConfig cfg = base_config(ComputeVariant::DenseFP64);
  cfg.nm.max_evals = 250;
  GsxModel model(proto.clone(), cfg);
  const FitResult fit = model.fit(d.locs, d.z);
  ASSERT_EQ(fit.theta.size(), 3u);
  EXPECT_GT(fit.evaluations, 10u);
  // Loose recovery bounds: one replicate of n=256.
  EXPECT_GT(fit.theta[0], 0.3);
  EXPECT_LT(fit.theta[0], 3.0);
  EXPECT_GT(fit.theta[1], 0.02);
  EXPECT_LT(fit.theta[1], 0.5);
  // The fit's loglik must beat the starting point's.
  const auto start = model.evaluate(proto.params(), d.locs, d.z);
  EXPECT_GE(fit.loglik, start.loglik);
}

TEST(GsxModel, MpDenseReducesFootprint) {
  const SpaceData d = make_space_data(256, 0.03);
  const geostat::MaternCovariance proto(1.0, 0.03, 0.5, 1e-6);
  const std::vector<double> theta = {1.0, 0.03, 0.5};

  EvalBreakdown dense_bd, mp_bd, tlr_bd;
  GsxModel dense(proto.clone(), base_config(ComputeVariant::DenseFP64));
  GsxModel mp(proto.clone(), base_config(ComputeVariant::MPDense));
  GsxModel tlr(proto.clone(), base_config(ComputeVariant::MPDenseTLR));
  ASSERT_TRUE(dense.evaluate(theta, d.locs, d.z, &dense_bd).ok);
  ASSERT_TRUE(mp.evaluate(theta, d.locs, d.z, &mp_bd).ok);
  ASSERT_TRUE(tlr.evaluate(theta, d.locs, d.z, &tlr_bd).ok);

  EXPECT_LT(mp_bd.footprint_bytes, dense_bd.footprint_bytes)
      << "MP must reduce the memory footprint";
  EXPECT_LT(tlr_bd.footprint_bytes, mp_bd.footprint_bytes)
      << "MP+TLR must reduce it further (paper Fig. 9)";
  EXPECT_EQ(dense_bd.footprint_bytes, dense_bd.dense_fp64_bytes);
}

TEST(GsxModel, AutoBandTuningRuns) {
  const SpaceData d = make_space_data(192, 0.06);
  const geostat::MaternCovariance proto(1.0, 0.06, 0.5, 1e-6);
  ModelConfig cfg = base_config(ComputeVariant::MPDenseTLR);
  cfg.auto_band = true;
  GsxModel model(proto.clone(), cfg);
  EvalBreakdown bd;
  const std::vector<double> theta = {1.0, 0.06, 0.5};
  ASSERT_TRUE(model.evaluate(theta, d.locs, d.z, &bd).ok);
  EXPECT_GE(bd.band_size_dense, 1u);
  EXPECT_LE(bd.band_size_dense, 6u);  // nt = 6 at n=192, ts=32
}

TEST(GsxModel, DecisionMatrixMatchesVariantSemantics) {
  const SpaceData d = make_space_data(192, 0.05);
  const geostat::MaternCovariance proto(1.0, 0.05, 0.5, 1e-6);
  const std::vector<double> theta = {1.0, 0.05, 0.5};

  GsxModel tlr(proto.clone(), base_config(ComputeVariant::MPDenseTLR));
  const tile::SymTileMatrix a = tlr.build_decision_matrix(theta, d.locs);
  const auto counts = a.decision_counts();
  std::size_t lr = 0, dense = 0;
  for (const auto& [code, cnt] : counts) {
    if (code == 'L' || code == 'l') lr += cnt;
    else dense += cnt;
  }
  EXPECT_GT(lr, 0u) << "off-band tiles must be low-rank";
  EXPECT_GE(dense, a.nt()) << "diagonal (at least) stays dense";

  GsxModel d64(proto.clone(), base_config(ComputeVariant::DenseFP64));
  const tile::SymTileMatrix b = d64.build_decision_matrix(theta, d.locs);
  const auto bc = b.decision_counts();
  ASSERT_EQ(bc.size(), 1u);
  EXPECT_EQ(bc.begin()->first, 'D');
}

TEST(GsxModel, NonSpdParameterPointReturnsNotOk) {
  // A zero-nugget model at duplicate locations cannot factor.
  std::vector<Location> locs = {{0.1, 0.1, 0}, {0.1, 0.1, 0}, {0.5, 0.5, 0},
                                {0.9, 0.2, 0}, {0.3, 0.7, 0}, {0.6, 0.6, 0},
                                {0.2, 0.4, 0}, {0.8, 0.8, 0}};
  std::vector<double> z(locs.size(), 1.0);
  const geostat::MaternCovariance proto(1.0, 0.1, 0.5, 0.0);
  ModelConfig cfg = base_config(ComputeVariant::DenseFP64);
  cfg.tile_size = 8;
  GsxModel model(proto.clone(), cfg);
  const std::vector<double> theta = {1.0, 0.1, 0.5};
  const auto r = model.evaluate(theta, locs, z);
  EXPECT_FALSE(r.ok);
}

TEST(GsxModel, SpaceTimeEndToEnd) {
  data::EtConfig cfg;
  cfg.spatial_n = 36;
  cfg.months = 5;
  cfg.history_years = 8;
  const data::SpaceTimeDataset ds = data::make_et_like(cfg);
  const std::vector<double> residual = data::detrend_et(ds);

  const geostat::GneitingCovariance proto(cfg.variance, cfg.range_s, cfg.smooth_s,
                                          cfg.range_t, cfg.smooth_t, cfg.beta, 1e-4);
  ModelConfig mc = base_config(ComputeVariant::MPDenseTLR);
  mc.tile_size = 36;
  GsxModel model(proto.clone(), mc);
  const auto r = model.evaluate(proto.params(), ds.locations, residual);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(std::isfinite(r.loglik));

  // The dense reference agrees.
  const auto ref = geostat::dense_loglik(proto, ds.locations, residual);
  ASSERT_TRUE(ref.ok);
  EXPECT_NEAR(r.loglik, ref.loglik, 1e-3 * std::fabs(ref.loglik));
}

TEST(GsxModel, PsoOptimizerPathWorks) {
  const SpaceData d = make_space_data(128, 0.1, 31);
  const geostat::MaternCovariance proto(1.0, 0.1, 0.5, 1e-6);
  ModelConfig cfg = base_config(ComputeVariant::DenseFP64);
  cfg.optimizer = OptimizerKind::ParticleSwarm;
  cfg.pso.swarm_size = 8;
  cfg.pso.max_iters = 6;
  cfg.pso.workers = 4;
  GsxModel model(proto.clone(), cfg);
  const FitResult fit = model.fit(d.locs, d.z);
  EXPECT_TRUE(fit.converged);
  EXPECT_GE(fit.evaluations, 8u);  // at least one swarm round
  EXPECT_TRUE(std::isfinite(fit.loglik));
}

}  // namespace
}  // namespace gsx::core
