// Observability layer: registry instruments, flop/conversion ledger,
// iteration profiling and report writers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/flops.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace gsx::obs {
namespace {

/// Every test runs with a clean, enabled observability layer and leaves it
/// disabled (the process-wide default other test binaries rely on).
class ObsMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

TEST_F(ObsMetrics, CounterAccumulates) {
  Counter& c = Registry::instance().counter("t.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsMetrics, GaugeKeepsLastValue) {
  Gauge& g = Registry::instance().gauge("t.gauge");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsMetrics, DisabledPathRecordsNothing) {
  Counter& c = Registry::instance().counter("t.disabled.counter");
  Gauge& g = Registry::instance().gauge("t.disabled.gauge");
  Histogram& h = Registry::instance().histogram("t.disabled.hist", {1.0, 2.0});
  set_enabled(false);
  c.add(7);
  g.set(9.0);
  h.observe(1.5);
  add_flops(KernelOp::Gemm, Precision::FP32, 1000);
  add_conversion(Precision::FP64, Precision::FP16, 64);
  annotate_task(Precision::FP32, 4, 100);
  record_span({"s", "phase", kPipelineTid, 0.0, 1.0, ""});
  begin_iteration("nope");
  end_iteration();
  set_enabled(true);

  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(flop_snapshot().total_flops(), 0u);
  EXPECT_EQ(flop_snapshot().total_conversions(), 0u);
  EXPECT_FALSE(take_task_annotation().has_value());
  EXPECT_TRUE(trace_spans().empty());
  EXPECT_TRUE(profile_iterations().empty());
}

TEST_F(ObsMetrics, HistogramStatsAndBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int v = 1; v <= 25; ++v) h.observe(static_cast<double>(v));
  h.observe(1000.0);  // overflow bucket

  EXPECT_EQ(h.count(), 26u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.sum(), 325.0 + 1000.0, 1e-12);

  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 10u);     // 1..10
  EXPECT_EQ(buckets[1], 10u);     // 11..20
  EXPECT_EQ(buckets[2], 5u);      // 21..25
  EXPECT_EQ(buckets[3], 1u);      // 1000
}

TEST_F(ObsMetrics, HistogramPercentilesInterpolate) {
  Histogram h({10.0, 20.0, 30.0, 40.0, 50.0});
  for (int v = 1; v <= 50; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.percentile(0.0), 1.0);   // clamped to observed min
  EXPECT_EQ(h.percentile(1.0), 50.0);  // clamped to observed max
  EXPECT_NEAR(h.percentile(0.5), 25.0, 6.0);
  EXPECT_NEAR(h.percentile(0.9), 45.0, 6.0);
  EXPECT_LT(h.percentile(0.25), h.percentile(0.75));

  Histogram empty({1.0});
  EXPECT_EQ(empty.percentile(0.5), 0.0);
}

TEST_F(ObsMetrics, OverflowBucketPercentileReturnsObservedMax) {
  // When the requested quantile falls in the +inf overflow bucket there is
  // no finite upper bound to interpolate toward: the only honest answer is
  // the tracked maximum, not a bucket-width extrapolation.
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(100.0);  // overflow
  h.observe(250.0);  // overflow; observed max

  EXPECT_DOUBLE_EQ(h.percentile(0.75), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 250.0);
  // Quantiles below the overflow bucket still interpolate finitely.
  EXPECT_LE(h.percentile(0.25), 1.0);
}

TEST_F(ObsMetrics, SamplesCarryP999AndBucketLayout) {
  auto& h = Registry::instance().histogram("t.p999", {1.0, 10.0});
  for (int i = 0; i < 500; ++i) h.observe(0.5);
  h.observe(5000.0);  // the tail event: p999 of 501 samples lands on it

  for (const MetricSample& s : Registry::instance().samples()) {
    if (s.name != "t.p999") continue;
    EXPECT_DOUBLE_EQ(s.p999, 5000.0);  // overflow bucket -> observed max
    EXPECT_LE(s.p50, 1.0);
    ASSERT_EQ(s.bucket_bounds.size(), 2u);
    ASSERT_EQ(s.bucket_counts.size(), 3u);  // bounds + overflow
    EXPECT_EQ(s.bucket_counts[0], 500u);
    EXPECT_EQ(s.bucket_counts[2], 1u);
    return;
  }
  FAIL() << "t.p999 not found in samples()";
}

TEST_F(ObsMetrics, RegistryReferencesSurviveReset) {
  Counter& c = Registry::instance().counter("t.stable");
  c.add(5);
  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference must still be live and registered
  EXPECT_EQ(Registry::instance().counter("t.stable").value(), 2u);
  EXPECT_EQ(&Registry::instance().counter("t.stable"), &c);
}

TEST_F(ObsMetrics, SamplesReportEveryInstrumentKind) {
  Registry::instance().counter("t.s.counter").add(3);
  Registry::instance().gauge("t.s.gauge").set(7.0);
  Registry::instance().histogram("t.s.hist", {1.0, 2.0}).observe(1.5);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const MetricSample& s : Registry::instance().samples()) {
    if (s.name == "t.s.counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::Counter);
      EXPECT_DOUBLE_EQ(s.value, 3.0);
    } else if (s.name == "t.s.gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    } else if (s.name == "t.s.hist") {
      saw_hist = true;
      EXPECT_EQ(s.count, 1u);
      EXPECT_DOUBLE_EQ(s.sum, 1.5);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST_F(ObsMetrics, ConcurrentIncrementsLoseNothing) {
  Counter& c = Registry::instance().counter("t.mt.counter");
  Histogram& h = Registry::instance().histogram("t.mt.hist", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(1.0);
        add_flops(KernelOp::Gemm, Precision::FP32, 2);
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), static_cast<double>(kThreads) * kPerThread, 1e-6);
  EXPECT_EQ(flop_snapshot().flops_at(Precision::FP32),
            2ull * kThreads * kPerThread);
}

TEST_F(ObsMetrics, FlopLedgerAttributesByPrecisionAndOp) {
  add_flops(KernelOp::Potrf, Precision::FP64, 100);
  add_flops(KernelOp::Gemm, Precision::FP16, 40);
  add_flops(KernelOp::Gemm, Precision::FP16, 2);

  const FlopSnapshot s = flop_snapshot();
  const auto p64 = static_cast<std::size_t>(Precision::FP64);
  const auto p16 = static_cast<std::size_t>(Precision::FP16);
  const auto potrf = static_cast<std::size_t>(KernelOp::Potrf);
  const auto gemm = static_cast<std::size_t>(KernelOp::Gemm);
  EXPECT_EQ(s.flops[p64][potrf], 100u);
  EXPECT_EQ(s.calls[p64][potrf], 1u);
  EXPECT_EQ(s.flops[p16][gemm], 42u);
  EXPECT_EQ(s.calls[p16][gemm], 2u);
  EXPECT_EQ(s.total_flops(), 142u);
  EXPECT_EQ(s.flops_at(Precision::FP32), 0u);
}

TEST_F(ObsMetrics, ConversionMatrixTracksPairs) {
  add_conversion(Precision::FP64, Precision::FP32, 4096);
  add_conversion(Precision::FP64, Precision::FP32, 4096);
  add_conversion(Precision::FP32, Precision::FP64, 64);

  const FlopSnapshot s = flop_snapshot();
  const auto p64 = static_cast<std::size_t>(Precision::FP64);
  const auto p32 = static_cast<std::size_t>(Precision::FP32);
  EXPECT_EQ(s.conv_count[p64][p32], 2u);
  EXPECT_EQ(s.conv_elems[p64][p32], 8192u);
  EXPECT_EQ(s.conv_count[p32][p64], 1u);
  EXPECT_EQ(s.total_conversions(), 3u);
  EXPECT_EQ(s.total_converted_elems(), 8256u);
}

TEST_F(ObsMetrics, SnapshotDeltaIsElementwise) {
  add_flops(KernelOp::Syrk, Precision::FP64, 10);
  const FlopSnapshot before = flop_snapshot();
  add_flops(KernelOp::Syrk, Precision::FP64, 7);
  add_conversion(Precision::FP64, Precision::BF16, 9);

  const FlopSnapshot d = flop_snapshot().delta_since(before);
  EXPECT_EQ(d.total_flops(), 7u);
  EXPECT_EQ(d.total_conversions(), 1u);
  EXPECT_EQ(d.total_converted_elems(), 9u);
}

TEST_F(ObsMetrics, ScopedTimerRecordsIntoHistogram) {
  {
    ScopedTimer t("t.timer.seconds");
    volatile double x = 0.0;
    for (int i = 0; i < 1000; ++i) x = x + 1.0;
  }
  Histogram& h = Registry::instance().histogram("t.timer.seconds");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 10.0);  // finished promptly
}

TEST_F(ObsMetrics, PhaseSpansLandOnPipelineRow) {
  { const ScopedPhase p("assemble"); }
  { const ScopedPhase p("factorize"); }
  const auto spans = trace_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "assemble");
  EXPECT_EQ(spans[0].category, "phase");
  EXPECT_EQ(spans[0].tid, kPipelineTid);
  EXPECT_LE(spans[0].start_seconds, spans[0].end_seconds);
  EXPECT_LE(spans[0].end_seconds, spans[1].start_seconds);
}

TEST_F(ObsMetrics, AnnotationIsDrainedOnce) {
  annotate_task(Precision::FP16, 12, 777);
  const auto a = take_task_annotation();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->precision, Precision::FP16);
  EXPECT_EQ(a->rank, 12);
  EXPECT_EQ(a->flops, 777u);
  EXPECT_FALSE(take_task_annotation().has_value());

  const std::string args = annotation_args(*a);
  EXPECT_NE(args.find("\"precision\": \"FP16\""), std::string::npos);
  EXPECT_NE(args.find("\"rank\": 12"), std::string::npos);
  EXPECT_NE(args.find("\"flops\": 777"), std::string::npos);
}

TEST_F(ObsMetrics, IterationRecordsCaptureDeltaAndTiles) {
  begin_iteration("evaluate");
  add_flops(KernelOp::Potrf, Precision::FP64, 50);
  TileMix mix;
  mix.dense[static_cast<std::size_t>(Precision::FP64)] = 3;
  mix.lr32 = 2;
  const std::size_t ranks[] = {4, 4, 8};
  record_iteration_tiles(mix, ranks);
  end_iteration();

  // Work outside any iteration must not leak into the record.
  add_flops(KernelOp::Potrf, Precision::FP64, 1000);

  begin_iteration("predict");
  add_flops(KernelOp::Krige, Precision::FP64, 9);
  end_iteration();

  const auto its = profile_iterations();
  ASSERT_EQ(its.size(), 2u);
  EXPECT_EQ(its[0].index, 0u);
  EXPECT_EQ(its[0].label, "evaluate");
  EXPECT_EQ(its[0].work.total_flops(), 50u);
  EXPECT_EQ(its[0].tiles.total(), 5u);
  EXPECT_EQ(its[0].rank_counts.at(4), 2u);
  EXPECT_EQ(its[0].rank_counts.at(8), 1u);
  EXPECT_GE(its[0].seconds, 0.0);
  EXPECT_EQ(its[1].label, "predict");
  EXPECT_EQ(its[1].work.total_flops(), 9u);
}

TEST_F(ObsMetrics, ReportWritersEmitExpectedStructure) {
  Registry::instance().counter("t.report.counter").add(11);
  begin_iteration("evaluate");
  add_flops(KernelOp::Gemm, Precision::FP32, 128);
  add_conversion(Precision::FP64, Precision::FP32, 256);
  TileMix mix;
  mix.dense[static_cast<std::size_t>(Precision::FP32)] = 1;
  mix.lr64 = 1;
  const std::size_t ranks[] = {6};
  record_iteration_tiles(mix, ranks);
  end_iteration();
  { const ScopedPhase p("factorize"); }

  const std::string jpath = "/tmp/gsx_obs_report_test.json";
  const std::string cpath = "/tmp/gsx_obs_report_test.csv";
  write_profile_json(jpath);
  write_flops_csv(cpath);

  const std::string json = slurp(jpath);
  EXPECT_NE(json.find("\"flops_by_precision\""), std::string::npos);
  EXPECT_NE(json.find("\"FP32\""), std::string::npos);
  EXPECT_NE(json.find("\"FP64->FP32\""), std::string::npos);
  EXPECT_NE(json.find("\"rank_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"6\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"factorize\""), std::string::npos);
  EXPECT_NE(json.find("t.report.counter"), std::string::npos);

  const std::string csv = slurp(cpath);
  EXPECT_EQ(csv.rfind("iteration,label,kernel,precision,calls,flops", 0), 0u);
  EXPECT_NE(csv.find("0,evaluate,gemm,FP32,1,128"), std::string::npos);
  EXPECT_NE(csv.find("FP64->FP32"), std::string::npos);

  std::remove(jpath.c_str());
  std::remove(cpath.c_str());
}

TEST_F(ObsMetrics, ReportWriterRejectsUnwritablePath) {
  EXPECT_THROW(write_profile_json("/nonexistent-dir/x.json"), InvalidArgument);
  EXPECT_THROW(write_flops_csv("/nonexistent-dir/x.csv"), InvalidArgument);
}

TEST_F(ObsMetrics, FlopFormulasMatchClosedForms) {
  EXPECT_EQ(potrf_flops(10), 10u * 10 * 10 / 3 + 10u * 10 / 2 + 10u / 6);
  EXPECT_EQ(trsm_flops(3, 5), 75u);
  EXPECT_EQ(syrk_flops(4, 7), 4u * 5 * 7);
  EXPECT_EQ(gemm_flops(2, 3, 4), 48u);
}

}  // namespace
}  // namespace gsx::obs
