// Column-pivoted QR and the RRQR low-rank rounding path.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"
#include "tlr/compression.hpp"
#include "tlr/lr_kernels.hpp"

namespace gsx {
namespace {

using gsx::test::max_abs_diff;
using gsx::test::random_lowrank;
using gsx::test::random_matrix;
using gsx::test::rel_frobenius_diff;

struct QrpShape {
  std::size_t m, n;
};

class QrPivotedTest : public ::testing::TestWithParam<QrpShape> {};

TEST_P(QrPivotedTest, ReconstructsWithPermutation) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const auto a0 = random_matrix(m, n, rng);
  auto r = a0;
  la::Matrix<double> q;
  std::vector<std::size_t> perm;
  la::qr_pivoted(r.view(), q, perm);

  // Q orthonormal.
  la::Matrix<double> qtq(n, n);
  la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, 1.0, q.cview(), q.cview(), 0.0,
                   qtq.view());
  EXPECT_LT(max_abs_diff(qtq, la::Matrix<double>::identity(n)), 1e-12);

  // Q R == A P (column perm[j] of A is column j of A*P).
  la::Matrix<double> qr(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, q.cview(),
                   Span2D<const double>(r.data(), n, n, m), 0.0, qr.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(qr(i, j), a0(i, perm[j]), 1e-11) << i << "," << j;

  // perm is a permutation of 0..n-1.
  std::vector<bool> seen(n, false);
  for (std::size_t p : perm) {
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }

  // Rank-revealing property: |R_jj| non-increasing.
  for (std::size_t j = 1; j < n; ++j)
    EXPECT_LE(std::fabs(r(j, j)), std::fabs(r(j - 1, j - 1)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrPivotedTest,
                         ::testing::Values(QrpShape{6, 6}, QrpShape{20, 7},
                                           QrpShape{50, 12}, QrpShape{9, 1},
                                           QrpShape{64, 32}));

TEST(QrPivoted, RevealsNumericalRank) {
  Rng rng(5);
  const auto a = random_lowrank(40, 20, 6, rng);
  auto r = a;
  la::Matrix<double> q;
  std::vector<std::size_t> perm;
  la::qr_pivoted(r.view(), q, perm);
  // Diagonal collapses after the true rank.
  EXPECT_GT(std::fabs(r(5, 5)), 1e-8);
  for (std::size_t j = 6; j < 20; ++j) EXPECT_LT(std::fabs(r(j, j)), 1e-10);
}

TEST(QrPivoted, HandlesZeroColumns) {
  la::Matrix<double> a(8, 4);
  Rng rng(6);
  for (std::size_t i = 0; i < 8; ++i) a(i, 2) = rng.normal();  // one nonzero column
  auto r = a;
  la::Matrix<double> q;
  std::vector<std::size_t> perm;
  la::qr_pivoted(r.view(), q, perm);
  EXPECT_EQ(perm[0], 2u);  // the only informative column pivots first
  EXPECT_GT(std::fabs(r(0, 0)), 0.0);
  for (std::size_t j = 1; j < 4; ++j) EXPECT_NEAR(r(j, j), 0.0, 1e-14);
}

TEST(RecompressRrqr, MatchesQrSvdValueWithinTolerance) {
  Rng rng(7);
  const std::size_t m = 40, n = 34, k = 10;
  auto u1 = random_matrix(m, k, rng);
  auto v1 = random_matrix(n, k, rng);
  auto u2 = u1, v2 = v1;
  la::Matrix<double> before(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u1.cview(), v1.cview(), 0.0,
                   before.view());

  tlr::recompress(u1, v1, 1e-7, tlr::TolMode::Absolute, tlr::RoundingMethod::QrSvd);
  tlr::recompress(u2, v2, 1e-7, tlr::TolMode::Absolute, tlr::RoundingMethod::Rrqr);
  EXPECT_LE(tlr::lowrank_error(before.cview(), u1, v1), 1e-7 * 1.001);
  EXPECT_LE(tlr::lowrank_error(before.cview(), u2, v2), 1e-7 * 1.001);
}

TEST(RecompressRrqr, ReducesInflatedRankCloseToSvd) {
  Rng rng(8);
  // Exact rank-4 block carried at rank 16.
  const auto a = random_lowrank(36, 30, 4, rng);
  tlr::Compressed c = tlr::compress_svd(a.cview(), 1e-14, tlr::TolMode::Absolute);
  const std::size_t k0 = c.rank();
  la::Matrix<double> u(36, 4 * k0), v(30, 4 * k0);
  for (std::size_t rep = 0; rep < 4; ++rep)
    for (std::size_t j = 0; j < k0; ++j) {
      for (std::size_t i = 0; i < 36; ++i) u(i, rep * k0 + j) = 0.25 * c.u(i, j);
      for (std::size_t i = 0; i < 30; ++i) v(i, rep * k0 + j) = c.v(i, j);
    }
  tlr::recompress(u, v, 1e-10, tlr::TolMode::Absolute, tlr::RoundingMethod::Rrqr);
  EXPECT_LE(u.cols(), k0 + 1);  // RRQR may keep one extra direction
  EXPECT_LE(tlr::lowrank_error(a.cview(), u, v), 1e-8);
}

TEST(RecompressRrqr, RelativeToleranceMode) {
  Rng rng(9);
  const std::size_t m = 30, n = 26, k = 8;
  auto u = random_matrix(m, k, rng);
  auto v = random_matrix(n, k, rng);
  la::Matrix<double> before(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                   before.view());
  const double norm = la::norm_frobenius<double>(before.cview());
  tlr::recompress(u, v, 1e-5, tlr::TolMode::RelativeFrobenius, tlr::RoundingMethod::Rrqr);
  EXPECT_LE(tlr::lowrank_error(before.cview(), u, v), 1e-5 * norm * 1.001);
}

TEST(LrAxpyRrqr, AccumulationMatchesOracle) {
  Rng rng(10);
  const std::size_t m = 24, n = 20;
  const auto uc0 = random_matrix(m, 5, rng);
  const auto vc0 = random_matrix(n, 5, rng);
  const auto up = random_matrix(m, 3, rng);
  const auto vp = random_matrix(n, 3, rng);

  la::Matrix<double> oracle(m, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, uc0.cview(), vc0.cview(),
                   0.0, oracle.view());
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.5, up.cview(), vp.cview(), 1.0,
                   oracle.view());

  auto uc = uc0;
  auto vc = vc0;
  tlr::lr_axpy_rounded(-1.5, tlr::LrProduct{up, vp}, uc, vc, 1e-9,
                       tlr::RoundingMethod::Rrqr);
  EXPECT_LE(tlr::lowrank_error(oracle.cview(), uc, vc), 1e-8);
}

TEST(TlrCholeskyRrqr, EndToEndAccuracyMatchesQrSvd) {
  // Full TLR factorization with both rounding methods on a Matérn matrix.
  Rng rng(11);
  auto locs = geostat::perturbed_grid_locations(128, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.06, 0.5, 1e-6);

  auto make = [&] {
    tile::SymTileMatrix a(128, 32);
    geostat::fill_covariance_tiles(a, model, locs, 1);
    cholesky::TlrCompressOptions copt;
    copt.tol = 1e-9;
    copt.band_size = 1;
    copt.lr_fp32 = false;
    cholesky::compress_offband(a, copt, 1);
    return a;
  };
  auto a_svd = make();
  auto a_rrqr = make();
  cholesky::FactorOptions o1, o2;
  o1.rounding = tlr::RoundingMethod::QrSvd;
  o2.rounding = tlr::RoundingMethod::Rrqr;
  ASSERT_EQ(cholesky::tile_cholesky_tlr(a_svd, 1e-9, o1).info, 0);
  ASSERT_EQ(cholesky::tile_cholesky_tlr(a_rrqr, 1e-9, o2).info, 0);
  const auto l1 = cholesky::reconstruct_lower(a_svd);
  const auto l2 = cholesky::reconstruct_lower(a_rrqr);
  EXPECT_LT(rel_frobenius_diff(l2, l1), 1e-5);
}

}  // namespace
}  // namespace gsx
