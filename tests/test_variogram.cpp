// Empirical variogram estimation against the generating model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "geostat/field.hpp"
#include "geostat/variogram.hpp"

namespace gsx::geostat {
namespace {

TEST(Variogram, BinsCoverLagsAndCountPairs) {
  Rng rng(1);
  const auto locs = perturbed_grid_locations(100, rng);
  std::vector<double> z(100);
  for (auto& v : z) v = rng.normal();
  const auto vg = empirical_variogram(locs, z);
  ASSERT_FALSE(vg.empty());
  std::size_t total_pairs = 0;
  double prev_d = -1.0;
  for (const auto& b : vg) {
    EXPECT_GT(b.distance, prev_d);
    EXPECT_GT(b.pairs, 0u);
    EXPECT_GE(b.gamma, 0.0);
    prev_d = b.distance;
    total_pairs += b.pairs;
  }
  EXPECT_LE(total_pairs, 100u * 99u / 2u);
  EXPECT_GT(total_pairs, 1000u);
}

TEST(Variogram, WhiteNoiseIsFlatAtVariance) {
  Rng rng(2);
  const auto locs = perturbed_grid_locations(400, rng);
  std::vector<double> z(locs.size());
  for (auto& v : z) v = rng.normal(0.0, 2.0);  // variance 4, no correlation
  const auto vg = empirical_variogram(locs, z);
  for (const auto& b : vg) {
    if (b.pairs < 200) continue;
    EXPECT_NEAR(b.gamma, 4.0, 1.0) << "lag " << b.distance;
  }
}

TEST(Variogram, CorrelatedFieldRisesTowardSill) {
  Rng rng(3);
  const auto locs = perturbed_grid_locations(300, rng);
  const MaternCovariance model(1.0, 0.15, 1.0, 0.0);
  const auto z = simulate_grf(model, locs, rng);
  const auto vg = empirical_variogram(locs, z);
  ASSERT_GE(vg.size(), 4u);
  // Short lags well below the sill; long lags near it.
  EXPECT_LT(vg.front().gamma, 0.5);
  EXPECT_GT(vg.back().gamma, vg.front().gamma);
}

TEST(Variogram, MatchesModelSemivariogramOnAverage) {
  // Average empirical variograms over replicates: must track the model's
  // gamma(h) = sigma^2 - C(h).
  Rng rng(4);
  const auto locs = perturbed_grid_locations(200, rng);
  const MaternCovariance model(1.0, 0.2, 0.5, 0.0);
  const std::size_t reps = 60;
  const auto fields = simulate_grf_many(model, locs, rng, reps);

  VariogramOptions opts;
  opts.num_bins = 8;
  std::vector<double> avg;
  std::vector<double> lags;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto vg = empirical_variogram(locs, fields[r], opts);
    if (avg.empty()) {
      avg.assign(vg.size(), 0.0);
      for (const auto& b : vg) lags.push_back(b.distance);
    }
    for (std::size_t b = 0; b < vg.size(); ++b) avg[b] += vg[b].gamma / reps;
  }
  for (std::size_t b = 0; b < avg.size(); ++b) {
    const double expect = model_semivariogram(model, lags[b]);
    EXPECT_NEAR(avg[b], expect, 0.12 + 0.1 * expect) << "lag " << lags[b];
  }
}

TEST(Variogram, ModelSemivariogramProperties) {
  const MaternCovariance m(2.0, 0.1, 0.5, 0.25);
  EXPECT_NEAR(model_semivariogram(m, 0.0), 0.0, 1e-14);
  // Approaches sill + nugget at long range.
  EXPECT_NEAR(model_semivariogram(m, 10.0), 2.25, 1e-6);
  // Monotone for Matérn.
  double prev = 0.0;
  for (double h = 0.02; h < 1.0; h += 0.07) {
    const double g = model_semivariogram(m, h);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Variogram, WlsPrefersTheGeneratingModel) {
  Rng rng(6);
  const auto locs = perturbed_grid_locations(300, rng);
  const MaternCovariance truth(1.0, 0.15, 1.0, 0.0);
  // Average WLS over replicates to beat sampling noise.
  const auto fields = simulate_grf_many(truth, locs, rng, 20);
  const MaternCovariance wrong(1.0, 0.5, 1.0, 0.0);
  double s_true = 0.0, s_wrong = 0.0;
  for (const auto& z : fields) {
    const auto vg = empirical_variogram(locs, z);
    s_true += variogram_wls(vg, truth);
    s_wrong += variogram_wls(vg, wrong);
  }
  EXPECT_LT(s_true, s_wrong);
}

TEST(Variogram, InputValidation) {
  const std::vector<Location> one = {{0, 0, 0}};
  const std::vector<double> z1 = {1.0};
  EXPECT_THROW(empirical_variogram(one, z1), InvalidArgument);
  const std::vector<Location> two = {{0, 0, 0}, {1, 0, 0}};
  const std::vector<double> zbad = {1.0};
  EXPECT_THROW(empirical_variogram(two, zbad), InvalidArgument);
  EXPECT_THROW(model_semivariogram(MaternCovariance(1, 1, 1), -1.0), InvalidArgument);
}

}  // namespace
}  // namespace gsx::geostat
