// Kriging prediction and uncertainty (Eqs. 4-5).
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/covariance.hpp"
#include "geostat/field.hpp"
#include "geostat/prediction.hpp"
#include "mathx/stats.hpp"
#include "test_utils.hpp"

namespace gsx::geostat {
namespace {

TEST(Krige, ExactInterpolationAtTrainingPoints) {
  // With zero nugget, kriging reproduces observed values exactly, with zero
  // predictive variance.
  Rng rng(1);
  const auto locs = perturbed_grid_locations(50, rng);
  const MaternCovariance model(1.0, 0.2, 1.5, 0.0);
  const auto z = simulate_grf(model, locs, rng);

  const std::vector<Location> test(locs.begin(), locs.begin() + 10);
  const KrigingResult r = krige(model, locs, z, test, true);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(r.mean[i], z[i], 1e-6);
    EXPECT_NEAR(r.variance[i], 0.0, 1e-6);
  }
}

TEST(Krige, VarianceBoundsAndDistanceGrowth) {
  Rng rng(2);
  const auto locs = perturbed_grid_locations(80, rng);
  const MaternCovariance model(2.0, 0.1, 0.5, 0.0);
  const auto z = simulate_grf(model, locs, rng);

  // Test points at growing distance from the data cloud.
  std::vector<Location> test;
  for (double off : {0.0, 0.5, 1.5, 4.0}) test.push_back({1.0 + off, 0.5, 0.0});
  const KrigingResult r = krige(model, locs, z, test, true);
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_GE(r.variance[i], -1e-9);
    EXPECT_LE(r.variance[i], 2.0 + 1e-9) << "variance cannot exceed the prior";
    if (i > 0) EXPECT_GE(r.variance[i], r.variance[i - 1] - 1e-9);
  }
  // Far from all data, the prediction reverts to the prior mean (0) and the
  // variance to sigma^2.
  EXPECT_NEAR(r.mean.back(), 0.0, 0.05);
  EXPECT_NEAR(r.variance.back(), 2.0, 0.01);
}

TEST(Krige, BetterThanZeroPredictorOnHeldOut) {
  Rng rng(3);
  auto locs = perturbed_grid_locations(220, rng);
  const MaternCovariance model(1.0, 0.15, 1.0, 1e-6);
  const auto z = simulate_grf(model, locs, rng);

  const std::size_t ntrain = 180;
  const std::span<const Location> train(locs.data(), ntrain);
  const std::span<const Location> test(locs.data() + ntrain, locs.size() - ntrain);
  const std::span<const double> ztrain(z.data(), ntrain);
  const std::vector<double> ztest(z.begin() + ntrain, z.end());

  const KrigingResult r = krige(model, train, ztrain, test, true);
  const double err = mathx::mspe(r.mean, ztest);
  double zero_mspe = 0.0;
  for (double v : ztest) zero_mspe += v * v;
  zero_mspe /= static_cast<double>(ztest.size());
  EXPECT_LT(err, 0.5 * zero_mspe) << "kriging must beat the trivial zero predictor";
}

TEST(Krige, PredictiveIntervalsCalibrated) {
  // ~95% of held-out truths inside mean +/- 1.96 sd.
  Rng rng(4);
  auto locs = perturbed_grid_locations(300, rng);
  const MaternCovariance model(1.0, 0.12, 0.8, 1e-6);
  const auto z = simulate_grf(model, locs, rng);

  const std::size_t ntrain = 250;
  const std::span<const Location> train(locs.data(), ntrain);
  const std::span<const Location> test(locs.data() + ntrain, locs.size() - ntrain);
  const std::span<const double> ztrain(z.data(), ntrain);

  const KrigingResult r = krige(model, train, ztrain, test, true);
  std::size_t inside = 0;
  for (std::size_t i = 0; i < r.mean.size(); ++i) {
    const double sd = std::sqrt(std::max(r.variance[i], 0.0));
    if (std::fabs(z[ntrain + i] - r.mean[i]) <= 1.96 * sd + 1e-9) ++inside;
  }
  const double coverage = static_cast<double>(inside) / static_cast<double>(r.mean.size());
  EXPECT_GT(coverage, 0.82);
}

TEST(Krige, WithoutVarianceSkipsIt) {
  Rng rng(5);
  const auto locs = perturbed_grid_locations(40, rng);
  const MaternCovariance model(1.0, 0.2, 0.5, 1e-6);
  const auto z = simulate_grf(model, locs, rng);
  const std::vector<Location> test = {{0.5, 0.5, 0}};
  const KrigingResult r = krige(model, locs, z, test, false);
  EXPECT_EQ(r.mean.size(), 1u);
  EXPECT_TRUE(r.variance.empty());
}

TEST(Krige, SingularTrainingCovarianceThrows) {
  const std::vector<Location> locs = {{0.5, 0.5, 0}, {0.5, 0.5, 0}};
  const MaternCovariance model(1.0, 0.1, 0.5, 0.0);
  const std::vector<double> z = {1.0, 1.0};
  const std::vector<Location> test = {{0.2, 0.2, 0}};
  EXPECT_THROW(krige(model, locs, z, test, true), NumericalError);
}

TEST(Krige, SpaceTimePredictionUsesTemporalNeighbours) {
  // Predict month m at a location from the same location's other months:
  // with strong temporal correlation the prediction must beat the prior.
  Rng rng(6);
  const auto spatial = perturbed_grid_locations(36, rng);
  auto locs = replicate_in_time(spatial, 5, 1.0);
  const GneitingCovariance model(1.0, 0.2, 0.8, 0.05, 0.9, 0.3, 1e-6);
  const auto z = simulate_grf(model, locs, rng);

  // Hold out the middle month entirely.
  std::vector<Location> train_locs, test_locs;
  std::vector<double> ztrain, ztest;
  for (std::size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].t == 2.0) {
      test_locs.push_back(locs[i]);
      ztest.push_back(z[i]);
    } else {
      train_locs.push_back(locs[i]);
      ztrain.push_back(z[i]);
    }
  }
  const KrigingResult r = krige(model, train_locs, ztrain, test_locs, false);
  const double err = mathx::mspe(r.mean, ztest);
  double zero_mspe = 0.0;
  for (double v : ztest) zero_mspe += v * v;
  zero_mspe /= static_cast<double>(ztest.size());
  EXPECT_LT(err, zero_mspe);
}

}  // namespace
}  // namespace gsx::geostat
