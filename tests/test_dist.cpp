// Distributed backend: placement properties, wire framing, socket transport,
// out-of-core pool, external tasks, and in-process multi-rank factorization
// matched against the single-process oracle.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "dist/coordinator.hpp"
#include "dist/dist_cholesky.hpp"
#include "dist/placement.hpp"
#include "dist/tile_pool.hpp"
#include "dist/transport.hpp"
#include "distsim/distsim.hpp"
#include "la/matrix.hpp"
#include "runtime/task_graph.hpp"
#include "tile/sym_tile_matrix.hpp"
#include "tile/tile.hpp"
#include "tile/tile_codec.hpp"

namespace gsx::dist {
namespace {

// ---------------------------------------------------------------- placement

TEST(Placement, OwnerFormulaAndDeterminism) {
  const ProcessGrid g{2, 3};
  EXPECT_EQ(g.nodes(), 6u);
  EXPECT_EQ(g.owner(0, 0), 0u);
  EXPECT_EQ(g.owner(1, 0), 3u);
  EXPECT_EQ(g.owner(0, 1), 1u);
  EXPECT_EQ(g.owner(5, 7), (5 % 2) * 3 + (7 % 3));
  // Same inputs, same partition — no communication needed to agree.
  EXPECT_EQ(owned_tiles(g, 3, 16), owned_tiles(g, 3, 16));
}

TEST(Placement, NearSquareGrids) {
  EXPECT_EQ(ProcessGrid::near_square(1).p * ProcessGrid::near_square(1).q, 1u);
  const ProcessGrid g4 = ProcessGrid::near_square(4);
  EXPECT_EQ(g4.p, 2u);
  EXPECT_EQ(g4.q, 2u);
  const ProcessGrid g6 = ProcessGrid::near_square(6);
  EXPECT_EQ(g6.p * g6.q, 6u);
  const ProcessGrid g7 = ProcessGrid::near_square(7);  // prime: 1 x 7
  EXPECT_EQ(g7.p * g7.q, 7u);
}

TEST(Placement, PartitionCoversTriangleOnce) {
  const ProcessGrid g = ProcessGrid::near_square(4);
  const std::size_t nt = 9;
  std::vector<int> seen(nt * nt, 0);
  std::size_t total = 0;
  for (std::size_t r = 0; r < g.nodes(); ++r)
    for (const auto& [i, j] : owned_tiles(g, r, nt)) {
      EXPECT_GE(i, j);
      EXPECT_EQ(g.owner(i, j), r);
      ++seen[i * nt + j];
      ++total;
    }
  EXPECT_EQ(total, nt * (nt + 1) / 2);
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i) EXPECT_EQ(seen[i * nt + j], 1);
}

TEST(Placement, BlockCyclicBalance) {
  // 2D block-cyclic keeps stored-tile counts within a small spread.
  const ProcessGrid g = ProcessGrid::near_square(4);
  const std::vector<std::size_t> counts = tile_counts(g, 32);
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GE(*lo * 5, *hi * 4) << "worst rank holds >25% more tiles than best";
}

TEST(Placement, DistsimSharesTheSameGrid) {
  // The simulator consumes the identical placement type: a simulated layout
  // and a real run put every tile on the same rank by construction.
  static_assert(std::is_same_v<distsim::ProcessGrid, ProcessGrid>);
}

// ------------------------------------------------------------ wire framing

tile::Tile test_tile(double scale = 1.0, std::size_t n = 8) {
  la::Matrix<double> m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      m(i, j) = scale * (static_cast<double>(i) + 10.0 * static_cast<double>(j));
  return tile::Tile::dense64(std::move(m));
}

TEST(WireFraming, RoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_wire_message(kMsgPanel, 3, (7ull << 32) | 2, test_tile(), buf);
  std::size_t off = 0;
  const WireMessage msg = decode_wire_message(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(msg.kind, kMsgPanel);
  EXPECT_EQ(msg.src, 3);
  EXPECT_EQ(msg.tag >> 32, 7u);
  EXPECT_EQ(msg.tile.rows(), 8u);
}

TEST(WireFraming, RejectsCorruptionEverywhere) {
  std::vector<std::uint8_t> buf;
  encode_wire_message(kMsgGather, 1, 5, test_tile(1.0, 4), buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::vector<std::uint8_t> bad = buf;
    bad[i] ^= 0x01;
    std::size_t off = 0;
    bool rejected = false;
    try {
      const WireMessage msg = decode_wire_message(bad, off);
      // Header kind/src/tag bytes are outside the tile CRC; a flip there
      // must still parse to a *different* message, never a corrupted tile.
      rejected = msg.kind != kMsgGather || msg.src != 1 || msg.tag != 5;
    } catch (const InvalidArgument&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected) << "flipped byte " << i << " passed through";
  }
}

// -------------------------------------------------------------- transport

TEST(Transport, SendRecvMailboxAndDelivery) {
  TileTransport a(0), b(1);
  const std::uint16_t pa = a.listen();
  const std::uint16_t pb = b.listen();
  const std::map<int, std::uint16_t> peers{{0, pa}, {1, pb}};
  a.set_peers(peers);
  b.set_peers(peers);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> delivered;
  b.set_delivery(kMsgPanel, [&](int src, std::uint64_t tag, tile::Tile t) {
    EXPECT_EQ(src, 0);
    EXPECT_EQ(t.rows(), 8u);
    std::lock_guard lk(mu);
    delivered.push_back(tag);
    cv.notify_all();
  });

  a.send_tile(1, kMsgPanel, 11, test_tile(2.0));
  a.send_tile(1, kMsgGather, 22, test_tile(3.0));
  b.send_tile(0, kMsgGather, 33, test_tile(4.0));

  const tile::Tile via_mailbox = b.recv_tile(kMsgGather, 22);
  EXPECT_DOUBLE_EQ(via_mailbox.to_dense64()(1, 1), 3.0 * 11.0);
  const tile::Tile back = a.recv_tile(kMsgGather, 33);
  EXPECT_DOUBLE_EQ(back.to_dense64()(1, 1), 4.0 * 11.0);
  {
    std::unique_lock lk(mu);
    cv.wait_for(lk, std::chrono::seconds(10), [&] { return !delivered.empty(); });
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], 11u);
  }
  EXPECT_EQ(a.stats().tiles_sent.load(), 2u);
  EXPECT_EQ(b.stats().tiles_recv.load(), 2u);
  EXPECT_GT(a.stats().bytes_sent.load(), 0u);
  a.shutdown();
  b.shutdown();
}

TEST(Transport, CorruptFrameCountedAndConnectionDropped) {
  TileTransport b(1);
  const std::uint16_t pb = b.listen();

  // Hand-roll a sender so we can flip a payload byte after encoding.
  std::vector<std::uint8_t> buf;
  encode_wire_message(kMsgPanel, 0, 9, test_tile(), buf);
  buf[buf.size() - 3] ^= 0x10;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(pb);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::send(fd, buf.data(), buf.size(), 0),
            static_cast<ssize_t>(buf.size()));

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (b.stats().recv_corrupt.load() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(b.stats().recv_corrupt.load(), 1u);
  EXPECT_EQ(b.stats().tiles_recv.load(), 0u);
  ::close(fd);
  b.shutdown();
}

// -------------------------------------------------------------- tile pool

/// Per-test scratch directory under the system temp root (NOT the CWD: these
/// tests used to litter `pool_*.<pid>/` into the source tree when run from a
/// source checkout), removed recursively when the test process exits.
std::string fresh_dir(const std::string& name) {
  static std::vector<std::filesystem::path>& made = *new std::vector<std::filesystem::path>;
  static const int cleanup = std::atexit([] {
    for (const auto& p : made) {
      std::error_code ec;
      std::filesystem::remove_all(p, ec);
    }
  });
  (void)cleanup;
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      ("gsx_" + name + ".XXXXXX"))
                         .string();
  const char* dir = ::mkdtemp(tmpl.data());
  GSX_REQUIRE(dir != nullptr, "fresh_dir: mkdtemp failed");
  made.emplace_back(dir);
  return dir;
}

TEST(TilePool, ByteBoundEnforcedWithSpillAndReadback) {
  const std::string dir = fresh_dir("pool_spill");
  // 16x16 FP64 dense tiles: 2048 payload bytes each; bound of 5000 keeps at
  // most two resident.
  PooledTileStore pool(5000, dir);
  for (std::size_t i = 0; i < 4; ++i) pool.put(i, 0, test_tile(1.0 + i, 16));
  EXPECT_LE(pool.resident_bytes(), 5000u);
  EXPECT_GE(pool.stats().spill_out.load(), 2u);

  // Fault the coldest tiles back in and check every value survived the disk
  // round trip (CRC-verified by the codec).
  for (std::size_t i = 0; i < 4; ++i) {
    TileLease lease(pool, i, 0);
    EXPECT_DOUBLE_EQ(lease.get().to_dense64()(3, 2), (1.0 + i) * 23.0);
  }
  EXPECT_GE(pool.stats().spill_in.load(), 2u);
  EXPECT_LE(pool.resident_bytes(), 5000u);

  // take() drains the pool (gather path), faulting in what is on disk.
  for (std::size_t i = 0; i < 4; ++i) {
    const tile::Tile t = pool.take(i, 0);
    EXPECT_EQ(t.rows(), 16u);
  }
  EXPECT_EQ(pool.resident_bytes(), 0u);
  // Every spill eventually faulted back in: nothing left on disk.
  EXPECT_EQ(pool.stats().spill_in.load(), pool.stats().spill_out.load());
}

TEST(TilePool, OvercommitsInsteadOfDeadlocking) {
  const std::string dir = fresh_dir("pool_tiny");
  PooledTileStore pool(100, dir);  // below a single tile's 2048 bytes
  pool.put(0, 0, test_tile(1.0, 16));
  EXPECT_GE(pool.stats().overcommit.load(), 1u);
  TileLease lease(pool, 0, 0);  // still usable
  EXPECT_EQ(lease.get().rows(), 16u);
}

TEST(TilePool, CorruptSpillFileRejectedOnFaultIn) {
  const std::string dir = fresh_dir("pool_corrupt");
  PooledTileStore pool(2500, dir);
  pool.put(0, 0, test_tile(1.0, 16));
  pool.put(1, 0, test_tile(2.0, 16));  // evicts (0,0) to disk
  ASSERT_GE(pool.stats().spill_out.load(), 1u);
  const std::string path = dir + "/t0_0.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    const char x = 0x7F;
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }
  EXPECT_THROW((void)pool.pin(0, 0), InvalidArgument);
}

// ------------------------------------------------- external tasks (runtime)

TEST(ExternalTasks, NotifyDuringRunReleasesConsumers) {
  rt::TaskGraph g;
  const auto d = rt::DatumId::from_index(1);
  int seen = -1;
  std::atomic<int> staged{0};
  const std::size_t recv = g.submit_external("recv", {{d, rt::Access::Write}});
  g.submit("consume", {{d, rt::Access::Read}}, [&] { seen = staged.load(); });
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    staged.store(42);
    g.notify(recv);
  });
  g.run(2);
  notifier.join();
  EXPECT_EQ(seen, 42);
}

TEST(ExternalTasks, NotifyBeforeRunIsRemembered) {
  rt::TaskGraph g;
  const auto d = rt::DatumId::from_index(1);
  bool ran = false;
  const std::size_t recv = g.submit_external("recv", {{d, rt::Access::Write}});
  g.submit("consume", {{d, rt::Access::Read}}, [&] { ran = true; });
  g.notify(recv);  // transport can outrun run()
  g.run(2);
  EXPECT_TRUE(ran);
}

TEST(ExternalTasks, NotifyOfRegularTaskThrows) {
  rt::TaskGraph g;
  const std::size_t t = g.submit("t", {}, [] {});
  EXPECT_THROW(g.notify(t), InvalidArgument);
}

// ------------------------------------- multi-rank factorization vs oracle

struct MultiRankResult {
  DistResult rank0;
  std::vector<RankStats> stats;
};

MultiRankResult run_ranks(const DistProblemConfig& prob, int nprocs,
                          const DistPolicyOptions& policy, std::size_t ooc_bytes = 0,
                          const std::string& spill_base = "") {
  Coordinator coord(nprocs);
  const std::uint16_t port = coord.start();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  MultiRankResult out;
  out.stats.resize(static_cast<std::size_t>(nprocs));
  std::mutex mu;
  for (int r = 0; r < nprocs; ++r)
    threads.emplace_back([&, r] {
      try {
        DistRunConfig cfg;
        cfg.rank = r;
        cfg.nprocs = nprocs;
        cfg.coord_port = port;
        cfg.workers = 2;
        cfg.policy = policy;
        if (ooc_bytes > 0) {
          cfg.ooc_bytes = ooc_bytes;
          cfg.spill_dir = spill_base + "/r" + std::to_string(r);
          ::mkdir(cfg.spill_dir.c_str(), 0755);
        }
        DistResult res = run_dist_rank(prob, cfg);
        std::lock_guard lk(mu);
        out.stats[static_cast<std::size_t>(r)] = res.stats;
        if (r == 0) out.rank0 = std::move(res);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  EXPECT_TRUE(coord.all_ok());
  coord.stop();
  return out;
}

void expect_matches_oracle(const DistProblemConfig& prob, DistPolicy policy,
                           int nprocs) {
  DistPolicyOptions opts;
  opts.policy = policy;
  const MultiRankResult run = run_ranks(prob, nprocs, opts);
  ASSERT_NE(run.rank0.factor, nullptr);
  const auto oracle = oracle_factor(prob, opts, run.rank0.global_norm, 2);
  const FactorComparison cmp = compare_factors(*run.rank0.factor, *oracle);
  EXPECT_TRUE(cmp.identical)
      << dist_policy_name(policy) << ": " << cmp.mismatched_tiles << "/"
      << cmp.tiles_compared << " tiles differ, max |diff| " << cmp.max_abs_diff;
  if (nprocs > 1) {
    std::uint64_t sent = 0;
    for (const RankStats& s : run.stats) sent += s.tiles_sent;
    EXPECT_GT(sent, 0u) << "multi-rank run exchanged no tiles";
  }
}

DistProblemConfig small_problem() {
  DistProblemConfig prob;
  prob.n = 96;
  prob.tile_size = 16;
  return prob;
}

TEST(DistCholesky, DenseMatchesOracleAcross4Ranks) {
  expect_matches_oracle(small_problem(), DistPolicy::Dense, 4);
}

TEST(DistCholesky, MixedPrecisionMatchesOracleAcross4Ranks) {
  expect_matches_oracle(small_problem(), DistPolicy::MixedPrecision, 4);
}

TEST(DistCholesky, TlrMatchesOracleAcross4Ranks) {
  expect_matches_oracle(small_problem(), DistPolicy::Tlr, 4);
}

TEST(DistCholesky, SingleRankDegenerateCase) {
  expect_matches_oracle(small_problem(), DistPolicy::Dense, 1);
}

TEST(DistCholesky, WeightedSumsqMatchesFullNorm) {
  // weighted_sumsq over the whole stored triangle (off-diagonal tiles count
  // twice) is exactly ||A||_F^2 of the symmetric operator.
  tile::SymTileMatrix a(64, 16);
  a.generate([](std::size_t gi, std::size_t gj) {
    return 1.0 / (1.0 + static_cast<double>(gi > gj ? gi - gj : gj - gi));
  });
  std::vector<std::pair<std::size_t, std::size_t>> all;
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) all.emplace_back(i, j);
  const double sumsq = weighted_sumsq(a, all);
  EXPECT_NEAR(std::sqrt(sumsq), a.frobenius_norm(), 1e-9 * std::sqrt(sumsq));
}

TEST(DistCholesky, OutOfCoreSpillsAndStillMatchesOracle) {
  const DistProblemConfig prob = small_problem();
  DistPolicyOptions opts;
  opts.policy = DistPolicy::Dense;
  const std::string base = fresh_dir("dist_ooc");
  // 16x16 FP64 tiles are 2048 B; a 6 KiB bound forces heavy spilling on the
  // rank that owns ~11 of the 21 stored tiles.
  const MultiRankResult run = run_ranks(prob, 2, opts, 6144, base);
  ASSERT_NE(run.rank0.factor, nullptr);
  std::uint64_t spills = 0;
  for (const RankStats& s : run.stats) spills += s.spill_out;
  EXPECT_GT(spills, 0u) << "pool bound never triggered a spill";
  const auto oracle = oracle_factor(prob, opts, run.rank0.global_norm, 2);
  const FactorComparison cmp = compare_factors(*run.rank0.factor, *oracle);
  EXPECT_TRUE(cmp.identical) << cmp.mismatched_tiles << " tiles differ";
}

}  // namespace
}  // namespace gsx::dist
