// Extended covariance families: nugget estimation and anisotropy.
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/assemble.hpp"
#include "geostat/covariance_ext.hpp"
#include "geostat/field.hpp"
#include "geostat/likelihood.hpp"
#include "la/lapack.hpp"
#include "optim/nelder_mead.hpp"
#include "test_utils.hpp"

namespace gsx::geostat {
namespace {

TEST(MaternNugget, NuggetOnlyOnDiagonal) {
  const MaternNuggetCovariance m(1.0, 0.2, 0.5, 0.3);
  const Location a{0, 0, 0}, b{0.1, 0, 0};
  EXPECT_NEAR(m(a, a), 1.3, 1e-14);
  EXPECT_NEAR(m(a, b), std::exp(-0.5), 1e-12);
}

TEST(MaternNugget, ParameterPlumbing) {
  MaternNuggetCovariance m(1.0, 0.2, 0.5, 0.1);
  EXPECT_EQ(m.num_params(), 4u);
  const std::vector<double> theta = {2.0, 0.3, 1.5, 0.05};
  m.set_params(theta);
  EXPECT_EQ(m.params(), theta);
  const std::vector<double> bad = {1.0, 0.2, 0.5, -0.1};
  EXPECT_THROW(m.set_params(bad), InvalidArgument);
}

TEST(MaternNugget, SpdWithDuplicateLocations) {
  // The whole point of the nugget: duplicated locations stay factorable.
  std::vector<Location> locs = {{0.5, 0.5, 0}, {0.5, 0.5, 0}, {0.1, 0.9, 0},
                                {0.9, 0.1, 0}};
  const MaternNuggetCovariance m(1.0, 0.2, 0.5, 0.2);
  la::Matrix<double> sigma = covariance_matrix(m, locs);
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0);
}

TEST(MaternNugget, MleRecoversNuggetShare) {
  // Field + iid noise: the 4-parameter fit should attribute variance to the
  // nugget rather than inflating the sill.
  Rng rng(7);
  auto locs = perturbed_grid_locations(220, rng);
  const MaternNuggetCovariance truth(1.0, 0.15, 1.0, 0.3);
  const auto z = simulate_grf(truth, locs, rng);

  const optim::Objective obj = [&](std::span<const double> theta) {
    MaternNuggetCovariance m(1.0, 0.1, 0.5, 0.1);
    try {
      m.set_params(theta);
    } catch (const InvalidArgument&) {
      return std::numeric_limits<double>::infinity();
    }
    const LoglikValue v = dense_loglik(m, locs, z);
    return v.ok ? -v.loglik : std::numeric_limits<double>::infinity();
  };
  optim::NelderMeadOptions opts;
  opts.max_evals = 400;
  const std::vector<double> start = {0.5, 0.1, 0.8, 0.05};
  const auto r = optim::nelder_mead(obj, start, truth.lower_bounds(), truth.upper_bounds(),
                                    opts);
  // Loose single-replicate bounds.
  EXPECT_GT(r.x[3], 0.05) << "nugget must be detected";
  EXPECT_LT(r.x[3], 0.9);
  EXPECT_GT(r.x[0], 0.3);
  EXPECT_LT(r.x[0], 3.0);
}

TEST(AnisotropicMatern, ReducesToIsotropicWhenRangesEqual) {
  const AnisotropicMaternCovariance aniso(1.3, 0.2, 0.2, 0.7, 0.8);
  const MaternCovariance iso(1.3, 0.2, 0.8);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Location a{rng.uniform(), rng.uniform(), 0};
    const Location b{rng.uniform(), rng.uniform(), 0};
    EXPECT_NEAR(aniso(a, b), iso(a, b), 1e-12);
  }
}

TEST(AnisotropicMatern, MajorAxisDecorrelatesSlower) {
  // angle = 0: x is the major axis (range 0.4), y minor (range 0.1).
  const AnisotropicMaternCovariance m(1.0, 0.4, 0.1, 0.0, 0.5);
  const Location o{0, 0, 0};
  const Location along_x{0.2, 0, 0};
  const Location along_y{0, 0.2, 0};
  EXPECT_GT(m(o, along_x), m(o, along_y));
}

TEST(AnisotropicMatern, RotationMovesTheMajorAxis) {
  const double quarter = 3.141592653589793 / 2.0;
  const AnisotropicMaternCovariance m(1.0, 0.4, 0.1, quarter, 0.5);
  const Location o{0, 0, 0};
  const Location along_x{0.2, 0, 0};
  const Location along_y{0, 0.2, 0};
  EXPECT_GT(m(o, along_y), m(o, along_x)) << "rotated 90°: y is now the major axis";
}

TEST(AnisotropicMatern, ScaledDistanceGeometry) {
  const AnisotropicMaternCovariance m(1.0, 2.0, 1.0, 0.0, 0.5);
  const Location o{0, 0, 0};
  EXPECT_NEAR(m.scaled_distance(o, {2.0, 0, 0}), 1.0, 1e-14);
  EXPECT_NEAR(m.scaled_distance(o, {0, 1.0, 0}), 1.0, 1e-14);
  EXPECT_NEAR(m.scaled_distance(o, {2.0, 1.0, 0}), std::sqrt(2.0), 1e-14);
}

TEST(AnisotropicMatern, CovarianceMatrixIsSpd) {
  Rng rng(5);
  auto locs = perturbed_grid_locations(80, rng);
  const AnisotropicMaternCovariance m(1.0, 0.3, 0.08, 0.6, 0.7, 1e-8);
  la::Matrix<double> sigma = covariance_matrix(m, locs);
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0);
}

TEST(AnisotropicMatern, SimulatedFieldShowsAnisotropy) {
  // Empirical check: along-major correlations exceed along-minor at equal
  // distance, averaged over replicates on a regular grid.
  Rng rng(11);
  std::vector<Location> locs;
  const std::size_t side = 10;
  for (std::size_t i = 0; i < side; ++i)
    for (std::size_t j = 0; j < side; ++j)
      locs.push_back({0.1 * static_cast<double>(i), 0.1 * static_cast<double>(j), 0});
  const AnisotropicMaternCovariance m(1.0, 0.5, 0.05, 0.0, 0.5, 1e-8);
  const auto fields = simulate_grf_many(m, locs, rng, 200);

  auto corr = [&](std::size_t i, std::size_t j) {
    double sij = 0, sii = 0, sjj = 0;
    for (const auto& f : fields) {
      sij += f[i] * f[j];
      sii += f[i] * f[i];
      sjj += f[j] * f[j];
    }
    return sij / std::sqrt(sii * sjj);
  };
  // Index layout: idx = i*side + j, x = 0.1*i (major axis), y = 0.1*j.
  double along_x = 0.0, along_y = 0.0;
  int count = 0;
  for (std::size_t i = 0; i + 3 < side; ++i)
    for (std::size_t j = 0; j + 3 < side; ++j) {
      along_x += corr(i * side + j, (i + 3) * side + j);
      along_y += corr(i * side + j, i * side + (j + 3));
      ++count;
    }
  EXPECT_GT(along_x / count, along_y / count + 0.2);
}

}  // namespace
}  // namespace gsx::geostat
