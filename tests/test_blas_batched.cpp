// Batched BLAS entry points: bit-identity against looped per-op calls,
// tune-profile round trips, and the Cholesky DAG's batch wiring.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/autotune.hpp"
#include "la/blas.hpp"
#include "la/half_blas.hpp"
#include "la/matrix.hpp"
#include "obs/flops.hpp"
#include "obs/metrics.hpp"
#include "test_utils.hpp"

namespace gsx::la {
namespace {

/// Deterministic pseudo-random fill in [-1, 1] (exactly representable in
/// every storage type after one rounding).
template <typename T>
Matrix<T> filled(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix<T> m(r, c);
  std::uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (std::size_t j = 0; j < c; ++j)
    for (std::size_t i = 0; i < r; ++i) {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      const float v = static_cast<float>(static_cast<std::int64_t>(s % 2001) - 1000) / 997.0f;
      m(i, j) = static_cast<T>(v);
    }
  return m;
}

/// Bitwise comparison: the batched entry points promise results identical to
/// looping the per-op kernels, not merely close.
template <typename T>
void expect_bits_equal(const Matrix<T>& a, const Matrix<T>& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  std::size_t bad = 0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      if (std::memcmp(&a(i, j), &b(i, j), sizeof(T)) != 0) ++bad;
  EXPECT_EQ(bad, 0u) << what << ": " << bad << " elements differ bitwise";
}

// ------------------------------------------------------------------- GEMM

template <typename T>
void gemm_batch_vs_looped(Trans ta, Trans tb, std::size_t m, std::size_t n,
                          std::size_t k, T alpha, T beta, bool shared_b) {
  const std::size_t count = 7;
  const std::size_t ar = (ta == Trans::NoTrans) ? m : k;
  const std::size_t ac = (ta == Trans::NoTrans) ? k : m;
  const std::size_t br = (tb == Trans::NoTrans) ? k : n;
  const std::size_t bc = (tb == Trans::NoTrans) ? n : k;
  std::vector<Matrix<T>> as, bs, c_batch, c_loop;
  const Matrix<T> b0 = filled<T>(br, bc, 99);
  for (std::size_t i = 0; i < count; ++i) {
    as.push_back(filled<T>(ar, ac, 2 * i + 1));
    bs.push_back(filled<T>(br, bc, 1000 + i));
    c_batch.push_back(filled<T>(m, n, 500 + i));
    c_loop.push_back(c_batch.back());
  }
  std::vector<GemmBatchItem<T>> items(count);
  for (std::size_t i = 0; i < count; ++i)
    items[i] = {as[i].cview(), shared_b ? b0.cview() : bs[i].cview(),
                c_batch[i].view()};
  gemm_batch<T>(ta, tb, alpha, items.data(), count, beta);
  for (std::size_t i = 0; i < count; ++i)
    gemm<T>(ta, tb, alpha, as[i].cview(), shared_b ? b0.cview() : bs[i].cview(), beta,
            c_loop[i].view());
  for (std::size_t i = 0; i < count; ++i)
    expect_bits_equal(c_batch[i], c_loop[i], "gemm_batch");
}

TEST(GemmBatch, MatchesLoopedF64AcrossShapesAndScalars) {
  // 8^3 sits below the packed-kernel threshold (reference path); 96^3 above.
  for (const std::size_t s : {std::size_t{8}, std::size_t{96}}) {
    gemm_batch_vs_looped<double>(Trans::NoTrans, Trans::Trans, s, s, s, -1.0, 1.0, true);
    gemm_batch_vs_looped<double>(Trans::NoTrans, Trans::NoTrans, s, s, s, 0.5, 0.0,
                                 false);
    gemm_batch_vs_looped<double>(Trans::Trans, Trans::NoTrans, s, s, s, 1.0, 2.0, false);
  }
  gemm_batch_vs_looped<double>(Trans::NoTrans, Trans::Trans, 64, 48, 32, -1.0, 1.0, true);
  gemm_batch_vs_looped<double>(Trans::NoTrans, Trans::Trans, 96, 96, 96, 0.0, 0.5, true);
}

TEST(GemmBatch, MatchesLoopedF32) {
  gemm_batch_vs_looped<float>(Trans::NoTrans, Trans::Trans, 96, 96, 96, -1.0f, 1.0f,
                              true);
  gemm_batch_vs_looped<float>(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.5f, 0.5f,
                              false);
}

// ------------------------------------------------------------------- SYRK

template <typename T>
void syrk_batch_vs_looped(Uplo uplo, Trans trans, std::size_t n, std::size_t k, T alpha,
                          T beta) {
  const std::size_t count = 5;
  std::vector<Matrix<T>> as, c_batch, c_loop;
  for (std::size_t i = 0; i < count; ++i) {
    as.push_back(trans == Trans::NoTrans ? filled<T>(n, k, 3 * i + 1)
                                         : filled<T>(k, n, 3 * i + 1));
    c_batch.push_back(filled<T>(n, n, 700 + i));
    c_loop.push_back(c_batch.back());
  }
  std::vector<SyrkBatchItem<T>> items(count);
  for (std::size_t i = 0; i < count; ++i) items[i] = {as[i].cview(), c_batch[i].view()};
  syrk_batch<T>(uplo, trans, alpha, items.data(), count, beta);
  for (std::size_t i = 0; i < count; ++i)
    syrk<T>(uplo, trans, alpha, as[i].cview(), beta, c_loop[i].view());
  for (std::size_t i = 0; i < count; ++i)
    expect_bits_equal(c_batch[i], c_loop[i], "syrk_batch");
}

TEST(SyrkBatch, MatchesLoopedAllCombos) {
  // n = 96 recurses past the micro-block base case; n = 32 stays inside it.
  for (const std::size_t n : {std::size_t{32}, std::size_t{96}}) {
    syrk_batch_vs_looped<double>(Uplo::Lower, Trans::NoTrans, n, 48, -1.0, 1.0);
    syrk_batch_vs_looped<double>(Uplo::Upper, Trans::NoTrans, n, 48, 0.5, 0.0);
    syrk_batch_vs_looped<double>(Uplo::Lower, Trans::Trans, n, 48, 1.0, 2.0);
    syrk_batch_vs_looped<float>(Uplo::Upper, Trans::Trans, n, 48, -1.0f, 1.0f);
  }
}

// ------------------------------------------------------------------- TRSM

template <typename T>
void trsm_batch_vs_looped(Side side, Uplo uplo, Trans ta, std::size_t m, std::size_t n,
                          T alpha) {
  const std::size_t count = 6;
  const std::size_t na = (side == Side::Left) ? m : n;
  Matrix<T> a = filled<T>(na, na, 11);
  // Diagonal dominance keeps every triangular solve well-conditioned.
  for (std::size_t i = 0; i < na; ++i)
    a(i, i) = static_cast<T>(static_cast<float>(na) + 2.0f);
  std::vector<Matrix<T>> b_batch, b_loop;
  for (std::size_t i = 0; i < count; ++i) {
    b_batch.push_back(filled<T>(m, n, 40 + i));
    b_loop.push_back(b_batch.back());
  }
  std::vector<Span2D<T>> bs(count);
  for (std::size_t i = 0; i < count; ++i) bs[i] = b_batch[i].view();
  trsm_batch<T>(side, uplo, ta, Diag::NonUnit, alpha, a.cview(), bs.data(), count);
  for (std::size_t i = 0; i < count; ++i)
    trsm<T>(side, uplo, ta, Diag::NonUnit, alpha, a.cview(), b_loop[i].view());
  for (std::size_t i = 0; i < count; ++i)
    expect_bits_equal(b_batch[i], b_loop[i], "trsm_batch");
}

TEST(TrsmBatch, MatchesLoopedAllEightCombos) {
  for (const Side side : {Side::Left, Side::Right})
    for (const Uplo uplo : {Uplo::Lower, Uplo::Upper})
      for (const Trans ta : {Trans::NoTrans, Trans::Trans})
        trsm_batch_vs_looped<double>(side, uplo, ta, 96, 40, 1.0);
  // The tile Cholesky's combo, FP32, non-unit alpha, recursion-straddling
  // shape.
  trsm_batch_vs_looped<float>(Side::Right, Uplo::Lower, Trans::Trans, 40, 96, 0.5f);
}

// ----------------------------------------------------------------- 16-bit

TEST(GemmBatch16, ShgemmAndSbgemmMatchLooped) {
  const std::size_t count = 6, m = 48, n = 32, k = 40;
  std::vector<Matrix<half>> ah;
  std::vector<Matrix<bfloat16>> ab;
  const Matrix<half> bh = filled<half>(n, k, 7);
  const Matrix<bfloat16> bb = filled<bfloat16>(n, k, 7);
  std::vector<Matrix<float>> ch_batch, ch_loop, cb_batch, cb_loop;
  for (std::size_t i = 0; i < count; ++i) {
    ah.push_back(filled<half>(m, k, 20 + i));
    ab.push_back(filled<bfloat16>(m, k, 20 + i));
    ch_batch.push_back(filled<float>(m, n, 60 + i));
    ch_loop.push_back(ch_batch.back());
    cb_batch.push_back(filled<float>(m, n, 80 + i));
    cb_loop.push_back(cb_batch.back());
  }
  std::vector<GemmBatchItem<half, float>> hi(count);
  std::vector<GemmBatchItem<bfloat16, float>> bi(count);
  for (std::size_t i = 0; i < count; ++i) {
    hi[i] = {ah[i].cview(), bh.cview(), ch_batch[i].view()};
    bi[i] = {ab[i].cview(), bb.cview(), cb_batch[i].view()};
  }
  shgemm_batch(Trans::NoTrans, Trans::Trans, -1.0f, hi.data(), count, 1.0f);
  sbgemm_batch(Trans::NoTrans, Trans::Trans, -1.0f, bi.data(), count, 1.0f);
  for (std::size_t i = 0; i < count; ++i) {
    shgemm(Trans::NoTrans, Trans::Trans, -1.0f, ah[i].cview(), bh.cview(), 1.0f,
           ch_loop[i].view());
    sbgemm(Trans::NoTrans, Trans::Trans, -1.0f, ab[i].cview(), bb.cview(), 1.0f,
           cb_loop[i].view());
  }
  for (std::size_t i = 0; i < count; ++i) {
    expect_bits_equal(ch_batch[i], ch_loop[i], "shgemm_batch");
    expect_bits_equal(cb_batch[i], cb_loop[i], "sbgemm_batch");
  }
}

TEST(GemmBatch16, HgemmAndBgemmMatchLooped) {
  // 16-bit C store: the batch path converts C through vectorized
  // widen/narrow helpers; results must still round-trip bit-identically
  // against the per-op scalar conversions.
  const std::size_t count = 6, m = 64, n = 64, k = 64;
  std::vector<Matrix<half>> ah, ch_batch, ch_loop;
  std::vector<Matrix<bfloat16>> ab, cb_batch, cb_loop;
  const Matrix<half> bh = filled<half>(n, k, 5);
  const Matrix<bfloat16> bb = filled<bfloat16>(n, k, 5);
  for (std::size_t i = 0; i < count; ++i) {
    ah.push_back(filled<half>(m, k, 30 + i));
    ab.push_back(filled<bfloat16>(m, k, 30 + i));
    ch_batch.push_back(filled<half>(m, n, 90 + i));
    ch_loop.push_back(ch_batch.back());
    cb_batch.push_back(filled<bfloat16>(m, n, 110 + i));
    cb_loop.push_back(cb_batch.back());
  }
  std::vector<Gemm16BatchItem<half>> hi(count);
  std::vector<Gemm16BatchItem<bfloat16>> bi(count);
  for (std::size_t i = 0; i < count; ++i) {
    hi[i] = {ah[i].cview(), bh.cview(), ch_batch[i].view()};
    bi[i] = {ab[i].cview(), bb.cview(), cb_batch[i].view()};
  }
  hgemm_batch(Trans::NoTrans, Trans::Trans, -1.0f, hi.data(), count, 1.0f);
  bgemm_batch(Trans::NoTrans, Trans::Trans, -1.0f, bi.data(), count, 1.0f);
  for (std::size_t i = 0; i < count; ++i) {
    hgemm(Trans::NoTrans, Trans::Trans, -1.0f, ah[i].cview(), bh.cview(), 1.0f,
          ch_loop[i].view());
    bgemm(Trans::NoTrans, Trans::Trans, -1.0f, ab[i].cview(), bb.cview(), 1.0f,
          cb_loop[i].view());
  }
  for (std::size_t i = 0; i < count; ++i) {
    expect_bits_equal(ch_batch[i], ch_loop[i], "hgemm_batch");
    expect_bits_equal(cb_batch[i], cb_loop[i], "bgemm_batch");
  }
}

// ----------------------------------------------------------- tune profile

TuneProfile sample_profile() {
  TuneProfile p;
  p.isa = gemm_kernel_isa();
  p.ghz = 2.5;
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    const Precision prec = static_cast<Precision>(i);
    p.has[i] = true;
    p.config[i] = gemm_default_config(prec);
    p.config[i].blk.mc = 64 + 32 * i;
    p.gflops[i] = 10.0 + static_cast<double>(i);
  }
  return p;
}

TEST(TuneProfile, JsonRoundTripPreservesEveryField) {
  const TuneProfile p = sample_profile();
  const std::string json = profile_to_json(p);
  EXPECT_NE(json.find(kTuneProfileSchema), std::string::npos);
  TuneProfile q;
  std::string err;
  ASSERT_TRUE(profile_from_json(json, &q, &err)) << err;
  EXPECT_EQ(q.isa, p.isa);
  EXPECT_DOUBLE_EQ(q.ghz, p.ghz);
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    ASSERT_TRUE(q.has[i]);
    EXPECT_EQ(q.config[i].blk.mc, p.config[i].blk.mc);
    EXPECT_EQ(q.config[i].blk.kc, p.config[i].blk.kc);
    EXPECT_EQ(q.config[i].blk.nc, p.config[i].blk.nc);
    EXPECT_EQ(q.config[i].mr, p.config[i].mr);
    EXPECT_EQ(q.config[i].nr, p.config[i].nr);
    EXPECT_DOUBLE_EQ(q.gflops[i], p.gflops[i]);
  }
}

TEST(TuneProfile, CorruptJsonIsRejectedNotCrashed) {
  TuneProfile q;
  std::string err;
  EXPECT_FALSE(profile_from_json("{ definitely not json", &q, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(profile_from_json("{}", &q, &err));
  EXPECT_FALSE(profile_from_json(R"({"schema":"gsx-tune-v99","isa":"avx512"})", &q,
                                 &err));
  // Negative / non-integer blocking values must be rejected.
  EXPECT_FALSE(profile_from_json(
      R"({"schema":"gsx-tune-v1","isa":"avx512","ghz":2.0,)"
      R"("configs":{"FP64":{"mc":-4,"kc":256,"nc":4096,"mr":0,"nr":0,"gflops":1.0}}})",
      &q, &err));
}

TEST(TuneProfile, MismatchedIsaFallsBackGracefully) {
  TuneProfile p = sample_profile();
  p.isa = "not-a-real-isa";
  std::string err;
  EXPECT_FALSE(apply_profile(p, &err));
  EXPECT_NE(err.find("not-a-real-isa"), std::string::npos);
  // Nothing was applied: the active configs still validate as installable.
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    const KernelConfig active = gemm_kernel_config(static_cast<Precision>(i));
    EXPECT_GT(active.blk.mc, 0u);
  }
}

TEST(TuneProfile, FileRoundTripAndMissingFile) {
  const TuneProfile p = sample_profile();
  const std::string path = ::testing::TempDir() + "gsx-tune-test.json";
  std::string err;
  ASSERT_TRUE(save_profile(p, path, &err)) << err;
  TuneProfile q;
  ASSERT_TRUE(load_profile(path, &q, &err)) << err;
  EXPECT_EQ(q.isa, p.isa);
  EXPECT_FALSE(load_profile(path + ".does-not-exist", &q, &err));
  std::remove(path.c_str());
}

// ------------------------------------------------- Cholesky batch wiring

TEST(CholeskyBatchWiring, DenseTrailingUpdatesRouteThroughGemmBatch) {
  obs::set_enabled(true);
  obs::Registry::instance().reset();
  tile::SymTileMatrix a(256, 32);
  a.generate(
      [](std::size_t i, std::size_t j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        return std::exp(-0.3 * d) + (i == j ? 0.5 : 0.0);
      },
      1);
  cholesky::FactorOptions opts;
  const cholesky::FactorReport rep = cholesky::tile_cholesky_dense(a, opts);
  obs::set_enabled(false);
  ASSERT_EQ(rep.info, 0);
  obs::Histogram& h = obs::Registry::instance().histogram("la.batch.gemm.FP64");
  // nt = 8: the k = 0, n = 1 panel column alone is a 6-item batch.
  EXPECT_GT(h.count(), 0u);
  EXPECT_GE(h.max(), 6.0);
}

TEST(CholeskyBatchWiring, TlrTrailingUpdatesRouteThroughGemmBatch) {
  obs::set_enabled(true);
  obs::Registry::instance().reset();
  Rng rng(17);
  std::vector<geostat::Location> locs = geostat::perturbed_grid_locations(256, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.1, 0.5, 1e-6);
  tile::SymTileMatrix a(256, 32);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  cholesky::TlrCompressOptions copt;
  copt.tol = 1e-9;
  copt.band_size = 4;  // dense band wide enough for multi-item dense batches
  copt.lr_fp32 = false;
  const cholesky::CompressStats cs = cholesky::compress_offband(a, copt, 1);
  ASSERT_GT(cs.lr_tiles, 0u) << "setup must produce a genuine TLR matrix";
  cholesky::FactorOptions opts;
  const cholesky::FactorReport rep = cholesky::tile_cholesky_tlr(a, 1e-9, opts);
  obs::set_enabled(false);
  ASSERT_EQ(rep.info, 0);
  obs::Histogram& h = obs::Registry::instance().histogram("la.batch.gemm.FP64");
  EXPECT_GT(h.count(), 0u) << "TLR trailing updates never reached gemm_batch";
  EXPECT_GE(h.max(), 2.0) << "no multi-item batch was formed";
}

}  // namespace
}  // namespace gsx::la
