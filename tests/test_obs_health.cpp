// Numerical-health observability: structured logger, bound auditing,
// NaN/Inf sentinels, condition estimates, convergence monitoring and
// failure forensics.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cholesky/factorize.hpp"
#include "cholesky/health_audit.hpp"
#include "cholesky/precision_policy.hpp"
#include "common/error.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "optim/nelder_mead.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx {
namespace {

/// Each test runs with a clean, armed health ledger and a silenced text log
/// sink, and restores the process-wide defaults on exit.
class ObsHealth : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_health();
    obs::reset_log();
    obs::set_log_text_stream(nullptr);
    obs::set_health_enabled(true);
  }
  void TearDown() override {
    obs::set_health_enabled(false);
    obs::reset_health();
    obs::reset_log();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Bound-audit arithmetic.

TEST_F(ObsHealth, BoundAuditAggregatesFrobeniusSum) {
  obs::record_bound_context("adaptive-frobenius", 1.0e-8, 100.0, 4);

  obs::DemotionRecord diag;
  diag.i = diag.j = 1;
  diag.chosen = Precision::FP32;
  diag.budget = 2.5e-7;  // eps * ||A||_F / nt
  diag.observed_err = 3.0e-7;
  obs::record_demotion(diag);

  obs::DemotionRecord off;
  off.i = 2;
  off.j = 0;
  off.chosen = Precision::FP16;
  off.budget = 2.5e-7;
  off.observed_err = 4.0e-7;
  obs::record_demotion(off);

  const obs::HealthSnapshot h = obs::health_snapshot();
  EXPECT_EQ(h.bound.rule, "adaptive-frobenius");
  EXPECT_EQ(h.bound.demoted_tiles, 2u);
  ASSERT_EQ(h.demotions.size(), 2u);
  // Off-diagonal errors count twice (the stored triangle mirrors them).
  const double expect_total = std::sqrt(3.0e-7 * 3.0e-7 + 2.0 * 4.0e-7 * 4.0e-7);
  EXPECT_NEAR(h.bound.observed_total_err, expect_total, 1e-18);
  EXPECT_NEAR(h.bound.observed_rel_err, expect_total / 100.0, 1e-20);
  EXPECT_NEAR(h.bound.max_budget_ratio, 4.0e-7 / 2.5e-7, 1e-12);
  EXPECT_TRUE(h.bound.bound_satisfied);  // 6.4e-9 <= 1e-8
}

TEST_F(ObsHealth, BoundAuditDetectsViolation) {
  obs::record_bound_context("adaptive-frobenius", 1.0e-8, 1.0, 2);
  obs::DemotionRecord r;
  r.i = 1;
  r.j = 0;
  r.observed_err = 1.0e-7;  // rel err 1.41e-7 >> eps
  obs::record_demotion(r);
  EXPECT_FALSE(obs::health_snapshot().bound.bound_satisfied);
}

TEST_F(ObsHealth, BoundContextRestartsPerEvaluationSum) {
  obs::record_bound_context("adaptive-frobenius", 1.0e-8, 1.0, 2);
  obs::DemotionRecord r;
  r.i = 1;
  r.j = 0;
  r.observed_err = 1.0e-12;
  obs::record_demotion(r);
  // New evaluation: the Frobenius sum restarts, the demotion counter keeps
  // accumulating across evaluations.
  obs::record_bound_context("adaptive-frobenius", 1.0e-8, 1.0, 2);
  obs::record_demotion(r);
  const obs::HealthSnapshot h = obs::health_snapshot();
  EXPECT_EQ(h.bound.demoted_tiles, 2u);
  EXPECT_EQ(h.demotions.size(), 1u);
  EXPECT_NEAR(h.bound.observed_total_err, std::sqrt(2.0) * 1.0e-12, 1e-24);
}

TEST_F(ObsHealth, DisabledLedgerRecordsNothing) {
  obs::set_health_enabled(false);
  obs::record_bound_context("band", 1e-8, 1.0, 2);
  obs::DemotionRecord r;
  obs::record_demotion(r);
  obs::record_nonfinite("assemble", 0, 0, 3);
  const obs::HealthSnapshot h = obs::health_snapshot();
  EXPECT_EQ(h.bound.demoted_tiles, 0u);
  EXPECT_EQ(obs::nonfinite_total(), 0u);
}

// ---------------------------------------------------------------------------
// Policy application audits the real perturbation.

tile::SymTileMatrix decaying_spd(std::size_t n, std::size_t ts) {
  tile::SymTileMatrix a(n, ts);
  a.generate([](std::size_t i, std::size_t j) {
    const double d = (i >= j) ? static_cast<double>(i - j) : static_cast<double>(j - i);
    return (i == j ? 2.0 : 1.0) * std::exp(-d / 3.0);
  });
  return a;
}

TEST_F(ObsHealth, AdaptivePolicyKeepsObservedErrorWithinTarget) {
  tile::SymTileMatrix a = decaying_spd(128, 16);
  cholesky::PrecisionPolicy policy;
  policy.rule = cholesky::PrecisionRule::AdaptiveFrobenius;
  policy.eps_target = 1.0e-8;
  cholesky::apply_precision_policy(a, policy);

  const obs::HealthSnapshot h = obs::health_snapshot();
  EXPECT_GT(h.bound.demoted_tiles, 0u) << "expected demotions in a decaying matrix";
  EXPECT_EQ(h.bound.rule, "adaptive-frobenius");
  // The paper's promise, now *measured*: ||A^ - A||_F <= eps ||A||_F.
  EXPECT_LE(h.bound.observed_rel_err, policy.eps_target);
  EXPECT_TRUE(h.bound.bound_satisfied);
  // Every record carries a measured error below its a-priori guarantee.
  for (const obs::DemotionRecord& d : h.demotions)
    EXPECT_LE(d.observed_err, d.guaranteed_err * (1.0 + 1e-12));
}

TEST_F(ObsHealth, ConvertSentinelCatchesFp16Overflow) {
  // Band rule demotes by distance regardless of magnitude: values beyond the
  // FP16 range overflow to Inf on conversion, which the rule cannot see but
  // the sentinel must.
  tile::SymTileMatrix a(64, 16);
  a.generate([](std::size_t i, std::size_t j) {
    const auto d = static_cast<double>(i >= j ? i - j : j - i);
    if (d >= 32) return 1.0e5;  // far off-band, FP16 target, > 65504
    return i == j ? 2.0e5 : 0.0;
  });
  cholesky::PrecisionPolicy policy;
  policy.rule = cholesky::PrecisionRule::Band;
  policy.band = {1, 2};  // everything past |i-j| >= 2 tiles goes FP16
  policy.allow_fp16 = true;
  cholesky::apply_precision_policy(a, policy);

  EXPECT_GT(obs::nonfinite_total(), 0u);
  const obs::HealthSnapshot h = obs::health_snapshot();
  ASSERT_FALSE(h.nonfinite.empty());
  EXPECT_EQ(h.nonfinite.front().where, "convert");
}

TEST_F(ObsHealth, TileNonfiniteCountScansAllFormats) {
  la::Matrix<double> m(4, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i) m(i, j) = 1.0;
  m(1, 2) = std::numeric_limits<double>::quiet_NaN();
  m(3, 0) = std::numeric_limits<double>::infinity();
  tile::Tile t = tile::Tile::dense64(std::move(m));
  EXPECT_EQ(t.nonfinite_count(), 2u);
  t.convert_dense(Precision::FP32);
  EXPECT_EQ(t.nonfinite_count(), 2u);
}

// ---------------------------------------------------------------------------
// Failure forensics.

TEST_F(ObsHealth, ForensicBundleOnInjectedNonSpd) {
  tile::SymTileMatrix a(64, 16);
  a.generate([](std::size_t i, std::size_t j) {
    if (i != j) return 0.01;
    return (i == 5) ? -4.0 : 2.0;  // indefinite: one negative diagonal entry
  });
  cholesky::FactorOptions opts;
  opts.rule = cholesky::PrecisionRule::AdaptiveFrobenius;
  const cholesky::FactorReport rep = cholesky::tile_cholesky_dense(a, opts);
  ASSERT_NE(rep.info, 0);
  EXPECT_EQ(rep.failed_tile, 0);  // entry 5 lives in diagonal tile 0
  EXPECT_EQ(rep.info, 6);         // 1-based global pivot

  const obs::HealthSnapshot h = obs::health_snapshot();
  ASSERT_EQ(h.failures.size(), 1u);
  const obs::FailureRecord& f = h.failures.front();
  EXPECT_EQ(f.tile_i, 0);
  EXPECT_EQ(f.tile_j, 0);
  EXPECT_EQ(f.pivot, 6);
  EXPECT_EQ(f.precision, Precision::FP64);
  EXPECT_EQ(f.rule, "adaptive-frobenius");
  EXPECT_GT(f.tile_norm, 0.0);
  EXPECT_FALSE(f.neighbors.empty());
  EXPECT_NE(f.what.find("tile 0"), std::string::npos);
}

TEST_F(ObsHealth, FailureCapturesOpenConvergenceTrajectory) {
  obs::begin_convergence("nelder-mead", 1e-9, 4);
  obs::record_opt_iteration(10.0, 10.5, 1.0);
  obs::record_opt_iteration(9.0, 9.2, 0.5);
  obs::FailureRecord f;
  f.what = "injected";
  obs::record_failure(std::move(f));
  const obs::HealthSnapshot h = obs::health_snapshot();
  ASSERT_EQ(h.failures.size(), 1u);
  ASSERT_EQ(h.failures.front().trajectory.size(), 2u);
  EXPECT_DOUBLE_EQ(h.failures.front().trajectory[1], 9.0);
}

TEST_F(ObsHealth, EnrichedNumericalErrorCarriesContext) {
  NumericalContext ctx;
  ctx.tile_i = ctx.tile_j = 3;
  ctx.pivot = 49;
  ctx.precision = Precision::FP32;
  ctx.rule = "band";
  const NumericalError e("boom", ctx);
  ASSERT_TRUE(e.has_context());
  EXPECT_EQ(e.context().tile_i, 3);
  EXPECT_EQ(e.context().pivot, 49);
  EXPECT_EQ(e.context().precision, Precision::FP32);
  const NumericalError plain("boom");
  EXPECT_FALSE(plain.has_context());
}

// ---------------------------------------------------------------------------
// Condition estimates.

TEST_F(ObsHealth, PowerIterationRecoversKnownSpectrum) {
  // Diagonal matrix with one dominant eigenvalue: lambda_max = 100,
  // lambda_min = 1; both iterations converge fast at this separation.
  tile::SymTileMatrix a(32, 8);
  a.generate([](std::size_t i, std::size_t j) {
    if (i != j) return 0.0;
    return i == 0 ? 100.0 : 1.0;
  });
  const double lmax = cholesky::estimate_lambda_max(a, 20);
  EXPECT_NEAR(lmax, 100.0, 1.0);

  cholesky::FactorOptions opts;
  ASSERT_EQ(cholesky::tile_cholesky_dense(a, opts).info, 0);
  const obs::ConditionEstimate c = cholesky::audit_condition(lmax, a, 20);
  EXPECT_NEAR(c.lambda_min, 1.0, 0.05);
  EXPECT_NEAR(c.cond2(), 100.0, 6.0);
  ASSERT_EQ(obs::health_snapshot().conditions.size(), 1u);
  EXPECT_EQ(obs::health_snapshot().conditions.front().method, "power-iteration");
}

// ---------------------------------------------------------------------------
// Convergence monitor.

TEST_F(ObsHealth, MonitorFlagsStallAndClearsOnConvergedFinish) {
  obs::ConvergenceMonitor m(1.0e-8, 5);
  for (int i = 0; i < 10; ++i) m.add(1.0, 1.0, 0.1);
  EXPECT_TRUE(m.stalled());
  EXPECT_FALSE(m.diverged());
  m.finish(true);  // a legitimately converged run looks stalled by construction
  EXPECT_FALSE(m.stalled());
}

TEST_F(ObsHealth, MonitorSeesImprovementAsHealthy) {
  obs::ConvergenceMonitor m(1.0e-8, 5);
  double best = 100.0;
  for (int i = 0; i < 10; ++i) {
    best *= 0.9;
    m.add(best, best, 0.1);
  }
  EXPECT_FALSE(m.stalled());
  EXPECT_FALSE(m.diverged());
}

TEST_F(ObsHealth, MonitorFlagsDivergence) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  obs::ConvergenceMonitor m(1.0e-8, 3);
  for (int i = 0; i < 3; ++i) m.add(1.0, nan, 0.1);
  EXPECT_TRUE(m.diverged()) << "window of non-finite candidates";

  obs::ConvergenceMonitor m2(1.0e-8, 3);
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 3; ++i) m2.add(inf, inf, 0.1);
  EXPECT_TRUE(m2.diverged()) << "best still non-finite after the window";
}

TEST_F(ObsHealth, NelderMeadStallIsRecorded) {
  // A perfectly flat objective can never satisfy xtol = 0: the optimizer
  // burns its budget without improving, which the monitor must flag.
  const optim::Objective flat = [](std::span<const double>) { return 1.0; };
  optim::NelderMeadOptions opts;
  opts.max_evals = 90;
  opts.ftol = 1.0e-10;
  opts.xtol = 0.0;
  const std::vector<double> x0 = {0.5, 0.5}, lo = {0.0, 0.0}, hi = {1.0, 1.0};
  const optim::OptimResult r = optim::nelder_mead(flat, x0, lo, hi, opts);
  EXPECT_FALSE(r.converged);

  const obs::HealthSnapshot h = obs::health_snapshot();
  ASSERT_EQ(h.convergence.size(), 1u);
  EXPECT_EQ(h.convergence.front().optimizer, "nelder-mead");
  EXPECT_GE(h.convergence.front().trajectory.size(), 12u);
  EXPECT_TRUE(h.convergence.front().stalled);
  EXPECT_FALSE(h.convergence.front().converged);
}

// ---------------------------------------------------------------------------
// Report writer.

TEST_F(ObsHealth, WriteHealthJsonEmitsSchemaAndSections) {
  obs::record_bound_context("band", 1e-8, 10.0, 2);
  obs::DemotionRecord d;
  d.i = 1;
  d.chosen = Precision::FP16;
  d.observed_err = 1e-9;
  obs::record_demotion(d);
  obs::record_nonfinite("assemble", 2, 1, 7);
  obs::TlrRecord t;
  t.rank = 5;
  t.tol = 1e-8;
  t.observed_err = 5e-9;
  obs::record_tlr(t);

  const std::string path = ::testing::TempDir() + "gsx_health_test.json";
  obs::write_health_json(path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"schema\": \"gsx-health-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"bound_audit\""), std::string::npos);
  EXPECT_NE(text.find("\"FP16\""), std::string::npos);
  EXPECT_NE(text.find("\"nonfinite_total\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"tlr_audit\""), std::string::npos);
  EXPECT_NE(text.find("\"convergence\""), std::string::npos);
  EXPECT_NE(text.find("\"failures\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Structured logger.

TEST_F(ObsHealth, LogLevelGateIsOffByDefault) {
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Error));
  obs::set_log_level(obs::LogLevel::Warn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Warn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::Error));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::Info));
}

TEST_F(ObsHealth, ParseLogLevelRoundTrips) {
  using obs::LogLevel;
  for (LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off})
    EXPECT_EQ(obs::parse_log_level(obs::log_level_name(l)), l);
  EXPECT_FALSE(obs::parse_log_level("loud").has_value());
}

TEST_F(ObsHealth, JsonlSinkEmitsStructuredFields) {
  const std::string path = ::testing::TempDir() + "gsx_log_test.jsonl";
  obs::open_log_json(path);
  obs::set_log_level(obs::LogLevel::Info);
  obs::log_info("test", "hello world",
                {obs::lf("x", std::uint64_t{42}), obs::lf("ratio", 1.5),
                 obs::lf("tag", "abc"), obs::lf("ok", true)});
  obs::log_debug("test", "below threshold");  // must not appear
  obs::close_log_json();

  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"msg\": \"hello world\""), std::string::npos);
  EXPECT_NE(text.find("\"x\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"ratio\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"tag\": \"abc\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(text.find("below threshold"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsHealth, ModuleOverrideAdmitsSelectively) {
  const std::string path = ::testing::TempDir() + "gsx_log_module.jsonl";
  obs::open_log_json(path);
  obs::set_log_level(obs::LogLevel::Off);
  obs::set_module_log_level("cholesky", obs::LogLevel::Debug);
  obs::log(obs::LogLevel::Debug, "cholesky", "admitted");
  obs::log(obs::LogLevel::Debug, "assemble", "rejected");
  obs::close_log_json();

  const std::string text = slurp(path);
  EXPECT_NE(text.find("admitted"), std::string::npos);
  EXPECT_EQ(text.find("rejected"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsHealth, RateLimitCountsSuppressedMessages) {
  obs::set_log_level(obs::LogLevel::Info);
  obs::set_log_rate_limit(2);
  for (int i = 0; i < 10; ++i) obs::log_info("ratelimited", "burst");
  // The burst may straddle a one-second window boundary; at least one side
  // of the split must exceed the cap.
  EXPECT_GE(obs::log_suppressed_count(), 1u);
}

}  // namespace
}  // namespace gsx
