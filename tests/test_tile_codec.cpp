// Shared tile serialization (tile_codec): per-precision round trips, the
// CRC-framed variant used by the dist wire and spill files, and parity with
// the checkpoint layer that the codec was extracted from.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/precision.hpp"
#include "la/matrix.hpp"
#include "serve/checkpoint.hpp"
#include "tile/tile.hpp"
#include "tile/tile_codec.hpp"

namespace gsx::tile {
namespace {

la::Matrix<double> sample_block(std::size_t rows, std::size_t cols) {
  la::Matrix<double> m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i)
      m(i, j) = 0.25 * static_cast<double>(i + 1) -
                0.5 * static_cast<double>(j) / static_cast<double>(cols);
  return m;
}

Tile dense_tile(Precision p, std::size_t rows = 7, std::size_t cols = 5) {
  Tile t = Tile::dense64(sample_block(rows, cols));
  t.convert_dense(p);
  return t;
}

Tile lowrank_tile(bool fp32) {
  const std::size_t rows = 6, cols = 8, rank = 2;
  la::Matrix<double> u(rows, rank), v(cols, rank);
  for (std::size_t k = 0; k < rank; ++k) {
    for (std::size_t i = 0; i < rows; ++i)
      u(i, k) = 0.1 * static_cast<double>(i + k + 1);
    for (std::size_t j = 0; j < cols; ++j)
      v(j, k) = 1.0 / static_cast<double>(j + k + 2);
  }
  if (!fp32) return Tile::lowrank64(std::move(u), std::move(v));
  la::Matrix<float> u32(rows, rank), v32(cols, rank);
  for (std::size_t k = 0; k < rank; ++k) {
    for (std::size_t i = 0; i < rows; ++i) u32(i, k) = static_cast<float>(u(i, k));
    for (std::size_t j = 0; j < cols; ++j) v32(j, k) = static_cast<float>(v(j, k));
  }
  return Tile::lowrank32(std::move(u32), std::move(v32));
}

void expect_round_trip(const Tile& t) {
  std::vector<std::uint8_t> buf;
  encode_tile(t, buf);
  std::size_t off = 0;
  const Tile back = decode_tile(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back.format(), t.format());
  EXPECT_EQ(back.precision(), t.precision());
  EXPECT_EQ(back.rows(), t.rows());
  EXPECT_EQ(back.cols(), t.cols());
  // Stored-width fidelity: re-encoding the decoded tile is byte-identical.
  std::vector<std::uint8_t> buf2;
  encode_tile(back, buf2);
  EXPECT_EQ(buf, buf2);
}

TEST(TileCodec, RoundTripEveryPrecision) {
  expect_round_trip(dense_tile(Precision::FP64));
  expect_round_trip(dense_tile(Precision::FP32));
  expect_round_trip(dense_tile(Precision::FP16));
  expect_round_trip(dense_tile(Precision::BF16));
  expect_round_trip(lowrank_tile(/*fp32=*/false));
  expect_round_trip(lowrank_tile(/*fp32=*/true));
}

TEST(TileCodec, RaggedTileRoundTrip) {
  expect_round_trip(dense_tile(Precision::FP64, 3, 11));
  expect_round_trip(dense_tile(Precision::FP16, 1, 1));
}

TEST(TileCodec, FramedRoundTrip) {
  const Tile t = dense_tile(Precision::FP32);
  std::vector<std::uint8_t> buf;
  encode_tile_framed(t, buf);
  EXPECT_EQ(buf.size(), kTileFrameHeader + encoded_tile_bytes(t));
  std::size_t off = 0;
  const Tile back = decode_tile_framed(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back.precision(), Precision::FP32);
}

TEST(TileCodec, FramedRejectsEveryFlippedByte) {
  const Tile t = dense_tile(Precision::FP16, 3, 3);
  std::vector<std::uint8_t> buf;
  encode_tile_framed(t, buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::vector<std::uint8_t> bad = buf;
    bad[i] ^= 0x40;
    std::size_t off = 0;
    EXPECT_THROW((void)decode_tile_framed(bad, off), InvalidArgument)
        << "flipped byte " << i << " was accepted";
  }
}

TEST(TileCodec, FramedRejectsTruncation) {
  const Tile t = dense_tile(Precision::FP64);
  std::vector<std::uint8_t> buf;
  encode_tile_framed(t, buf);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 kTileFrameHeader - 1, buf.size() - 1}) {
    std::vector<std::uint8_t> cut(buf.begin(),
                                  buf.begin() + static_cast<std::ptrdiff_t>(keep));
    std::size_t off = 0;
    EXPECT_THROW((void)decode_tile_framed(cut, off), InvalidArgument);
  }
}

TEST(TileCodec, BareDecodeRejectsGarbage) {
  std::vector<std::uint8_t> junk(64, 0xAB);
  std::size_t off = 0;
  EXPECT_THROW((void)decode_tile(junk, off), InvalidArgument);
}

TEST(TileCodec, CheckpointCrcDelegatesToCodec) {
  const std::string data = "gsx tile codec crc parity";
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  EXPECT_EQ(serve::crc32(p, data.size()), crc32(p, data.size()));
  // Known-answer: CRC32("123456789") under the IEEE reflected polynomial.
  const auto* nine = reinterpret_cast<const std::uint8_t*>("123456789");
  EXPECT_EQ(crc32(nine, 9), 0xCBF43926u);
}

}  // namespace
}  // namespace gsx::tile
