// bfloat16 storage type, SBGEMM kernels, and the BF16-extended adaptive
// precision rule (the paper's Section VII-A outlook).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cholesky/factorize.hpp"
#include "cholesky/precision_policy.hpp"
#include "cholesky/tile_solve.hpp"
#include "common/bfloat16.hpp"
#include "la/convert.hpp"
#include "la/half_blas.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"
#include "tile/tile.hpp"

namespace gsx {
namespace {

using gsx::test::random_matrix;
using gsx::test::rel_frobenius_diff;

TEST(Bfloat16, KnownBitPatterns) {
  EXPECT_EQ(bfloat16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(bfloat16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(bfloat16(1.0f).bits(), 0x3f80u);
  EXPECT_EQ(bfloat16(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(bfloat16(std::numeric_limits<float>::infinity()).bits(), 0x7f80u);
}

TEST(Bfloat16, RoundTripExactForTruncatableValues) {
  // Values whose low 16 mantissa bits are zero survive exactly.
  for (float f : {1.0f, 1.5f, -0.15625f, std::ldexp(1.75f, 60), std::ldexp(-1.25f, -80)}) {
    EXPECT_EQ(static_cast<float>(bfloat16(f)), f) << f;
  }
}

TEST(Bfloat16, RelativeErrorWithinUnitRoundoff) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float x =
        static_cast<float>(rng.normal() * std::exp(rng.uniform(-20.0, 20.0)));
    if (x == 0.0f) continue;
    const float rt = static_cast<float>(bfloat16(x));
    EXPECT_LE(std::fabs(rt - x), kBf16Eps * std::fabs(x)) << "x = " << x;
  }
}

TEST(Bfloat16, WideExponentRangeBeyondFp16) {
  // The whole point: magnitudes far below FP16's subnormal range survive.
  const float tiny = 1.0e-20f;
  EXPECT_EQ(half(tiny).bits() & 0x7fffu, 0u) << "FP16 flushes to zero";
  EXPECT_NEAR(static_cast<float>(bfloat16(tiny)), tiny, kBf16Eps * tiny);
  const float big = 1.0e20f;
  EXPECT_TRUE(half(big).is_inf());
  EXPECT_NEAR(static_cast<float>(bfloat16(big)), big, kBf16Eps * big);
}

TEST(Bfloat16, NanAndRoundToEven) {
  const bfloat16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_FALSE(nan == nan);
  // 1 + 2^-8 is halfway between 1 and the next bf16: rounds to even (1).
  const float halfway = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(bfloat16(halfway).bits(), bfloat16(1.0f).bits());
}

TEST(Bfloat16, AllBitPatternsRoundTrip) {
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const bfloat16 v = bfloat16::from_bits(static_cast<std::uint16_t>(b));
    if (v.is_nan()) continue;
    EXPECT_EQ(bfloat16(static_cast<float>(v)).bits(), v.bits()) << b;
  }
}

TEST(Sbgemm, MatchesRoundedOracle) {
  Rng rng(5);
  const auto ad = random_matrix(12, 9, rng);
  const auto bd = random_matrix(11, 9, rng);
  la::Matrix<bfloat16> a(12, 9), b(11, 9);
  la::convert(ad.cview(), a.view());
  la::convert(bd.cview(), b.view());
  la::Matrix<float> c(12, 11);
  la::sbgemm(la::Trans::NoTrans, la::Trans::Trans, 1.0f, a.cview(), b.cview(), 0.0f,
             c.view());
  // Oracle: product of the bf16-rounded inputs in double.
  la::Matrix<double> ar(12, 9), br(11, 9);
  la::convert(a.cview(), ar.view());
  la::convert(b.cview(), br.view());
  for (std::size_t j = 0; j < 11; ++j)
    for (std::size_t i = 0; i < 12; ++i) {
      double s = 0;
      for (std::size_t k = 0; k < 9; ++k) s += ar(i, k) * br(j, k);
      EXPECT_NEAR(static_cast<double>(c(i, j)), s, 1e-4);
    }
}

TEST(Bgemm, StoresRoundedBf16) {
  Rng rng(6);
  const auto ad = random_matrix(8, 8, rng);
  la::Matrix<bfloat16> a(8, 8), c(8, 8);
  la::convert(ad.cview(), a.view());
  la::bgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), a.cview(), 1.0f,
            c.view());
  for (std::size_t j = 0; j < 8; ++j)
    for (std::size_t i = 0; i < 8; ++i) {
      const float v = static_cast<float>(c(i, j));
      EXPECT_EQ(bfloat16(v).bits(), c(i, j).bits());
    }
}

TEST(TileBf16, ConversionAndFootprint) {
  Rng rng(7);
  tile::Tile t = tile::Tile::dense64(random_matrix(10, 10, rng));
  const auto before = t.to_dense64();
  t.convert_dense(Precision::BF16);
  EXPECT_EQ(t.precision(), Precision::BF16);
  EXPECT_EQ(t.decision_code(), 'B');
  EXPECT_EQ(t.bytes(), 10u * 10u * 2u);
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), before), 2.5 * kBf16Eps * 10.0);
  EXPECT_NO_THROW(t.dbf16());
  EXPECT_THROW(t.d16(), InvalidArgument);
}

TEST(FrobeniusRuleBf16, RescuesFp16UnderflowTiles) {
  // A tile whose entries sit below FP16's subnormal range: the FP16 bound
  // fails on the subnormal floor, BF16 passes on pure roundoff.
  const double global = 1.0;
  const std::size_t nt = 8;
  const double eps = 1e-8;
  const std::size_t elems = 64 * 64;
  // Pick a tile norm below the FP16 floor term sqrt(elems)*2^-25 / ...
  const double tile_norm = 1e-9;
  const Precision without =
      cholesky::frobenius_precision(tile_norm, global, nt, eps, true, elems, false);
  const Precision with_bf16 =
      cholesky::frobenius_precision(tile_norm, global, nt, eps, true, elems, true);
  EXPECT_NE(without, Precision::FP16) << "FP16 must be ruled out by underflow";
  EXPECT_EQ(with_bf16, Precision::BF16);
}

TEST(FrobeniusRuleBf16, Fp16StillPreferredWhenSafe) {
  // Tile whose budget comfortably exceeds the FP16 subnormal floor term:
  // FP16 wins over BF16 (smaller unit roundoff at equal storage).
  const Precision p =
      cholesky::frobenius_precision(1e-4, 1000.0, 8, 1e-8, true, 64, true);
  EXPECT_EQ(p, Precision::FP16);
}

TEST(CholeskyBf16, FactorizationThroughBf16Tiles) {
  // Force BF16 on far tiles and check the factorization stays accurate at
  // the demoted-storage level.
  tile::SymTileMatrix a(96, 16);
  a.generate(
      [](std::size_t i, std::size_t j) {
        const double d = static_cast<double>(i > j ? i - j : j - i);
        return std::exp(-0.8 * d) + (i == j ? 0.5 : 0.0);
      },
      1);
  la::Matrix<double> ref = a.to_full();
  ASSERT_EQ(la::potrf<double>(la::Uplo::Lower, ref.view()), 0);
  for (std::size_t j2 = 0; j2 < 96; ++j2)
    for (std::size_t i2 = 0; i2 < j2; ++i2) ref(i2, j2) = 0.0;

  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j + 2; i < a.nt(); ++i)
      a.at(i, j).convert_dense(Precision::BF16);

  cholesky::FactorOptions opts;
  ASSERT_EQ(tile_cholesky_dense(a, opts).info, 0);
  // BF16 roundoff is ~4e-3: the factor differs at that level, not more.
  EXPECT_LT(rel_frobenius_diff(cholesky::reconstruct_lower(a), ref), 5e-2);
  // Storage stays BF16 through the factorization.
  EXPECT_EQ(a.at(a.nt() - 1, 0).precision(), Precision::BF16);
}

}  // namespace
}  // namespace gsx
