// Parsimonious bivariate Matérn: validity, SPD, cross-correlation, co-kriging.
#include <gtest/gtest.h>

#include <cmath>

#include "geostat/assemble.hpp"
#include "geostat/bivariate.hpp"
#include "geostat/field.hpp"
#include "geostat/prediction.hpp"
#include "la/lapack.hpp"
#include "mathx/stats.hpp"

namespace gsx::geostat {
namespace {

TEST(BivariateLocations, TagsComponents) {
  Rng rng(1);
  const auto spatial = perturbed_grid_locations(9, rng);
  const auto biv = make_bivariate_locations(spatial);
  ASSERT_EQ(biv.size(), 18u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(biv[i].t, 0.0);
    EXPECT_EQ(biv[9 + i].t, 1.0);
    EXPECT_EQ(biv[i].x, biv[9 + i].x);
  }
}

TEST(BivariateMatern, MaxRhoMatchesKnownCases) {
  // Equal smoothness: bound is 1 (full correlation allowed).
  EXPECT_NEAR(BivariateMaternCovariance::max_rho(0.5, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(BivariateMaternCovariance::max_rho(1.5, 1.5), 1.0, 1e-12);
  // Unequal smoothness tightens it below 1.
  const double b = BivariateMaternCovariance::max_rho(0.5, 2.5);
  EXPECT_LT(b, 1.0);
  EXPECT_GT(b, 0.0);
  // Symmetric in the arguments.
  EXPECT_NEAR(b, BivariateMaternCovariance::max_rho(2.5, 0.5), 1e-12);
}

TEST(BivariateMatern, RejectsInvalidRho) {
  EXPECT_THROW(BivariateMaternCovariance(1, 1, 0.1, 0.5, 2.5, 0.95), InvalidArgument);
  EXPECT_NO_THROW(BivariateMaternCovariance(1, 1, 0.1, 0.5, 2.5, 0.3));
  BivariateMaternCovariance m(1, 1, 0.1, 0.5, 0.5, 0.5);
  const std::vector<double> bad = {1, 1, 0.1, 0.5, 2.5, 0.95};
  EXPECT_THROW(m.set_params(bad), InvalidArgument);
}

TEST(BivariateMatern, MarginalAndCrossValues) {
  const BivariateMaternCovariance m(2.0, 0.5, 0.2, 0.5, 1.5, 0.6, 0.1);
  const Location a0{0, 0, 0}, b0{0.2, 0, 0};
  Location a1 = a0, b1 = b0;
  a1.t = 1.0;
  b1.t = 1.0;
  // Component marginals at distance 0.2 (scaled lag 1).
  EXPECT_NEAR(m(a0, b0), 2.0 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m(a1, b1), 0.5 * (1.0 + 1.0) * std::exp(-1.0), 1e-12);
  // Cross-covariance: nu12 = 1, rho sqrt(var1 var2).
  EXPECT_NEAR(m(a0, b1), 0.6 * std::sqrt(1.0) * matern_correlation(1.0, 1.0), 1e-12);
  // Nugget only on exact coincidence of the same component.
  EXPECT_NEAR(m(a0, a0), 2.1, 1e-12);
  EXPECT_NEAR(m(a0, a1), 0.6 * std::sqrt(1.0), 1e-12) << "no nugget across components";
  // Symmetry.
  EXPECT_DOUBLE_EQ(m(a0, b1), m(b1, a0));
}

class BivariateSpd : public ::testing::TestWithParam<double> {};

TEST_P(BivariateSpd, CovarianceMatrixFactorizes) {
  const double rho = GetParam();
  Rng rng(7);
  const auto spatial = perturbed_grid_locations(40, rng);
  const auto locs = make_bivariate_locations(spatial);
  const BivariateMaternCovariance m(1.0, 2.0, 0.15, 0.5, 1.5, rho, 1e-8);
  la::Matrix<double> sigma = covariance_matrix(m, locs);
  EXPECT_EQ(la::potrf<double>(la::Uplo::Lower, sigma.view()), 0) << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(RhoGrid, BivariateSpd, ::testing::Values(-0.8, -0.3, 0.0, 0.3, 0.8));

TEST(BivariateMatern, SimulatedFieldsShowCrossCorrelation) {
  Rng rng(9);
  const auto spatial = perturbed_grid_locations(64, rng);
  const auto locs = make_bivariate_locations(spatial);
  const BivariateMaternCovariance m(1.0, 1.0, 0.15, 1.0, 1.0, 0.8, 1e-8);
  const auto fields = simulate_grf_many(m, locs, rng, 150);

  // Empirical co-located cross-correlation ~ rho.
  double s12 = 0, s11 = 0, s22 = 0;
  for (const auto& f : fields) {
    for (std::size_t i = 0; i < 64; ++i) {
      s12 += f[i] * f[64 + i];
      s11 += f[i] * f[i];
      s22 += f[64 + i] * f[64 + i];
    }
  }
  EXPECT_NEAR(s12 / std::sqrt(s11 * s22), 0.8, 0.07);
}

TEST(BivariateMatern, CoKrigingBeatsIndependentKriging) {
  // Predict component 2 at held-out sites; borrowing strength from the
  // correlated component 1 must beat using component 2's own data alone.
  Rng rng(11);
  const auto spatial = perturbed_grid_locations(90, rng);
  const auto locs = make_bivariate_locations(spatial);
  const BivariateMaternCovariance m(1.0, 1.0, 0.2, 0.8, 0.8, 0.85, 1e-6);
  const auto z = simulate_grf(m, locs, rng);

  // Hold out component-2 values at the last 20 sites.
  const std::size_t n = 90, held = 20;
  std::vector<Location> train_locs, test_locs;
  std::vector<double> ztrain, ztest;
  std::vector<Location> c2_train;
  std::vector<double> c2_values;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const bool is_c2 = i >= n;
    const bool heldout = is_c2 && (i - n >= n - held);
    if (heldout) {
      test_locs.push_back(locs[i]);
      ztest.push_back(z[i]);
    } else {
      train_locs.push_back(locs[i]);
      ztrain.push_back(z[i]);
      if (is_c2) {
        c2_train.push_back(locs[i]);
        c2_values.push_back(z[i]);
      }
    }
  }
  const KrigingResult cokrige = krige(m, train_locs, ztrain, test_locs, false);
  // Independent kriging: component 2 only, with its marginal model.
  const MaternCovariance marginal(1.0, 0.2, 0.8, 1e-6);
  std::vector<Location> c2_train_flat = c2_train, test_flat = test_locs;
  for (auto& l : c2_train_flat) l.t = 0.0;  // strip tags for the scalar model
  for (auto& l : test_flat) l.t = 0.0;
  const KrigingResult solo = krige(marginal, c2_train_flat, c2_values, test_flat, false);

  const double err_co = mathx::mspe(cokrige.mean, ztest);
  const double err_solo = mathx::mspe(solo.mean, ztest);
  EXPECT_LT(err_co, err_solo) << "co-kriging must borrow strength (rho = 0.85)";
}

}  // namespace
}  // namespace gsx::geostat
