// Location generators and Morton ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geostat/locations.hpp"

namespace gsx::geostat {
namespace {

TEST(UniformRandom, BoundsAndCount) {
  Rng rng(1);
  const auto locs = uniform_random_locations(500, 2.0, 3.0, rng);
  ASSERT_EQ(locs.size(), 500u);
  for (const auto& l : locs) {
    EXPECT_GE(l.x, 0.0);
    EXPECT_LT(l.x, 2.0);
    EXPECT_GE(l.y, 0.0);
    EXPECT_LT(l.y, 3.0);
    EXPECT_EQ(l.t, 0.0);
  }
}

TEST(PerturbedGrid, ExactCountAndCoverage) {
  Rng rng(2);
  for (std::size_t n : {16u, 100u, 123u, 1000u}) {
    const auto locs = perturbed_grid_locations(n, rng);
    EXPECT_EQ(locs.size(), n);
    // Coverage: locations spread across the unit square (quadrant counts).
    std::size_t q[4] = {0, 0, 0, 0};
    for (const auto& l : locs) q[(l.x > 0.5 ? 1 : 0) + (l.y > 0.5 ? 2 : 0)]++;
    for (int k = 0; k < 4; ++k)
      EXPECT_GT(q[k], n / 10) << "quadrant " << k << " underpopulated at n=" << n;
  }
}

TEST(PerturbedGrid, LocationsAreDistinct) {
  Rng rng(3);
  auto locs = perturbed_grid_locations(400, rng);
  std::sort(locs.begin(), locs.end(), [](const Location& a, const Location& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  for (std::size_t i = 1; i < locs.size(); ++i) {
    const bool same = locs[i].x == locs[i - 1].x && locs[i].y == locs[i - 1].y;
    EXPECT_FALSE(same) << "duplicate location breaks SPD";
  }
}

TEST(ReplicateInTime, LayoutIsTimeMajor) {
  Rng rng(4);
  const auto spatial = perturbed_grid_locations(9, rng);
  const auto st = replicate_in_time(spatial, 3, 0.5);
  ASSERT_EQ(st.size(), 27u);
  for (std::size_t s = 0; s < 3; ++s)
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(st[s * 9 + i].x, spatial[i].x);
      EXPECT_EQ(st[s * 9 + i].t, 0.5 * static_cast<double>(s));
    }
}

TEST(MortonKey, OrdersQuadrantsCorrectly) {
  const Location lo{0, 0, 0}, hi{1, 1, 1};
  // Z-order: (low,low) < (high,low) < (low,high) < (high,high) for the top
  // split when x occupies the low interleave bit.
  const auto k00 = morton_key({0.1, 0.1, 0}, lo, hi, false);
  const auto k10 = morton_key({0.9, 0.1, 0}, lo, hi, false);
  const auto k01 = morton_key({0.1, 0.9, 0}, lo, hi, false);
  const auto k11 = morton_key({0.9, 0.9, 0}, lo, hi, false);
  EXPECT_LT(k00, k10);
  EXPECT_LT(k10, k01);
  EXPECT_LT(k01, k11);
}

TEST(MortonSort, NeighborsInOrderAreNearInSpace) {
  Rng rng(5);
  auto locs = perturbed_grid_locations(1024, rng);
  sort_morton(locs);
  // Mean consecutive distance after Morton sort must be far below the mean
  // random-pair distance (~0.52 in the unit square).
  double mean_step = 0.0;
  for (std::size_t i = 1; i < locs.size(); ++i)
    mean_step += std::hypot(locs[i].x - locs[i - 1].x, locs[i].y - locs[i - 1].y);
  mean_step /= static_cast<double>(locs.size() - 1);
  EXPECT_LT(mean_step, 0.1) << "Morton order must cluster spatial neighbours";
}

TEST(MortonSort, IsPermutation) {
  Rng rng(6);
  auto locs = perturbed_grid_locations(200, rng);
  auto orig = locs;
  sort_morton(locs);
  auto key = [](const Location& l) { return std::pair(l.x, l.y); };
  std::sort(orig.begin(), orig.end(),
            [&](const Location& a, const Location& b) { return key(a) < key(b); });
  auto sorted = locs;
  std::sort(sorted.begin(), sorted.end(),
            [&](const Location& a, const Location& b) { return key(a) < key(b); });
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(sorted[i].x, orig[i].x);
    EXPECT_EQ(sorted[i].y, orig[i].y);
  }
}

TEST(MortonSort, DeterministicAndIdempotent) {
  Rng rng(7);
  auto a = perturbed_grid_locations(128, rng);
  auto b = a;
  sort_morton(a);
  sort_morton(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].x, b[i].x);
  auto c = a;
  sort_morton(c);  // idempotent
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].x, c[i].x);
}

TEST(MortonSort, SpaceTimeUsesTimeDimension) {
  Rng rng(8);
  const auto spatial = perturbed_grid_locations(64, rng);
  auto st = replicate_in_time(spatial, 8, 1.0);
  sort_morton(st, /*use_time=*/true);
  // 3-D Z-order interleaves time: consecutive entries stay close in time.
  double mean_dt = 0.0;
  for (std::size_t i = 1; i < st.size(); ++i) mean_dt += std::fabs(st[i].t - st[i - 1].t);
  mean_dt /= static_cast<double>(st.size() - 1);
  EXPECT_LT(mean_dt, 2.0);
}

TEST(MortonSort, HandlesDegenerateInputs) {
  std::vector<Location> empty;
  sort_morton(empty);
  std::vector<Location> one = {{0.5, 0.5, 0.0}};
  sort_morton(one);
  EXPECT_EQ(one.size(), 1u);
  // All-identical coordinates: quantization span is zero; must not crash.
  std::vector<Location> same(10, {0.3, 0.3, 0.0});
  sort_morton(same);
  EXPECT_EQ(same.size(), 10u);
}

}  // namespace
}  // namespace gsx::geostat
