// Direct tests of the precision-dispatched tile kernels (Algorithm 1 task
// bodies): lead-operand semantics, on-demand conversion, all precisions.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/tile_kernels.hpp"
#include "la/convert.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::cholesky {
namespace {

using gsx::test::random_matrix;
using gsx::test::random_spd;
using gsx::test::rel_frobenius_diff;
using tile::Tile;

Tile spd_tile64(std::size_t n, Rng& rng) {
  auto m = random_spd(n, rng);
  return Tile::dense64(std::move(m));
}

TEST(Operands, F64ZeroCopyForMatchingTile) {
  Rng rng(1);
  Tile t = Tile::dense64(random_matrix(6, 6, rng));
  const F64Operand op(t);
  EXPECT_EQ(op.view().data(), t.d64().data()) << "FP64 tile must not be copied";
}

TEST(Operands, ConvertOnDemandForMismatch) {
  Rng rng(2);
  Tile t = Tile::dense64(random_matrix(6, 6, rng));
  const auto original = t.to_dense64();
  t.convert_dense(Precision::FP32);
  const F64Operand op(t);
  EXPECT_NE(op.view().data(), static_cast<const double*>(nullptr));
  // Values match the rounded storage, not the original.
  la::Matrix<double> got(6, 6);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i) got(i, j) = op.view()(i, j);
  EXPECT_LT(rel_frobenius_diff(got, t.to_dense64()), 1e-300);
  EXPECT_GT(rel_frobenius_diff(got, original), 0.0);
}

TEST(Operands, F16AndBf16Trimming) {
  Rng rng(3);
  Tile t = Tile::dense64(random_matrix(5, 4, rng));
  const F16Operand h(t);
  const Bf16Operand b(t);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(h.view()(i, j).bits(), half(t.d64()(i, j)).bits());
      EXPECT_EQ(b.view()(i, j).bits(), bfloat16(t.d64()(i, j)).bits());
    }
}

TEST(PotrfTile, RequiresDenseFp64) {
  Rng rng(4);
  Tile ok = spd_tile64(8, rng);
  EXPECT_EQ(potrf_tile(ok), 0);
  Tile bad = spd_tile64(8, rng);
  bad.convert_dense(Precision::FP32);
  EXPECT_THROW(potrf_tile(bad), InvalidArgument);
}

TEST(PotrfTile, ReportsNonSpd) {
  la::Matrix<double> m(4, 4);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  m(2, 2) = m(3, 3) = 1.0;
  Tile t = Tile::dense64(std::move(m));
  EXPECT_EQ(potrf_tile(t), 2);
}

class GemmTilePrecision : public ::testing::TestWithParam<Precision> {};

TEST_P(GemmTilePrecision, LeadOperandSetsKernelAndAccuracy) {
  const Precision p = GetParam();
  Rng rng(17);
  const std::size_t ts = 12;
  Tile a = Tile::dense64(random_matrix(ts, ts, rng));
  Tile b = Tile::dense64(random_matrix(ts, ts, rng));
  Tile c = Tile::dense64(random_matrix(ts, ts, rng));
  la::Matrix<double> oracle = c.to_dense64();
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.to_dense64().cview(),
                   b.to_dense64().cview(), 1.0, oracle.view());

  c.convert_dense(p);
  // Account for the initial storage rounding of C.
  la::Matrix<double> oracle_rounded = c.to_dense64();
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.to_dense64().cview(),
                   b.to_dense64().cview(), 1.0, oracle_rounded.view());

  gemm_tile(a, b, c);
  EXPECT_EQ(c.precision(), p) << "storage precision is sticky";
  const double tol = (p == Precision::FP64)   ? 1e-13
                     : (p == Precision::FP32) ? 1e-5
                                              : 6e-2;  // 16-bit formats
  EXPECT_LT(rel_frobenius_diff(c.to_dense64(), oracle_rounded), tol)
      << precision_name(p);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GemmTilePrecision,
                         ::testing::Values(Precision::FP64, Precision::FP32,
                                           Precision::FP16, Precision::BF16),
                         [](const auto& info) {
                           return std::string(precision_name(info.param));
                         });

class TrsmTilePrecision : public ::testing::TestWithParam<Precision> {};

TEST_P(TrsmTilePrecision, SolveAccuracyTracksStorage) {
  const Precision p = GetParam();
  Rng rng(23);
  const std::size_t ts = 10;
  Tile lkk = spd_tile64(ts, rng);
  ASSERT_EQ(potrf_tile(lkk), 0);
  Tile amk = Tile::dense64(random_matrix(ts, ts, rng));

  la::Matrix<double> oracle = amk.to_dense64();
  auto ov = oracle.view();
  la::trsm<double>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans, la::Diag::NonUnit,
                   1.0, lkk.d64().cview(), ov);

  amk.convert_dense(p);
  trsm_tile(lkk, amk);
  EXPECT_EQ(amk.precision(), p);
  const double tol = (p == Precision::FP64)   ? 1e-13
                     : (p == Precision::FP32) ? 1e-4
                                              : 8e-2;
  EXPECT_LT(rel_frobenius_diff(amk.to_dense64(), oracle), tol) << precision_name(p);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, TrsmTilePrecision,
                         ::testing::Values(Precision::FP64, Precision::FP32,
                                           Precision::FP16, Precision::BF16),
                         [](const auto& info) {
                           return std::string(precision_name(info.param));
                         });

TEST(SyrkTile, AccumulatesInFp64OnDiagonal) {
  Rng rng(29);
  const std::size_t ts = 9;
  Tile panel = Tile::dense64(random_matrix(ts, ts, rng));
  Tile diag = spd_tile64(ts, rng);
  la::Matrix<double> oracle = diag.to_dense64();
  la::syrk<double>(la::Uplo::Lower, la::Trans::NoTrans, -1.0,
                   panel.to_dense64().cview(), 1.0, oracle.view());

  syrk_tile(panel, diag);
  // Compare lower triangles (SYRK only touches the lower).
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = j; i < ts; ++i)
      EXPECT_NEAR(diag.d64()(i, j), oracle(i, j), 1e-12);
}

TEST(SyrkTile, PromotesLowPrecisionPanel) {
  Rng rng(31);
  const std::size_t ts = 8;
  Tile panel = Tile::dense64(random_matrix(ts, ts, rng));
  panel.convert_dense(Precision::FP16);
  Tile diag = spd_tile64(ts, rng);
  la::Matrix<double> oracle = diag.to_dense64();
  la::syrk<double>(la::Uplo::Lower, la::Trans::NoTrans, -1.0,
                   panel.to_dense64().cview(), 1.0, oracle.view());
  syrk_tile(panel, diag);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = j; i < ts; ++i)
      EXPECT_NEAR(diag.d64()(i, j), oracle(i, j), 1e-12)
          << "FP64 accumulate of the rounded panel";
}

TEST(GemmMixed, DenseOutputWithLrOperandsRoundsToStorage) {
  Rng rng(37);
  const std::size_t ts = 16;
  const auto u = random_matrix(ts, 3, rng);
  const auto v = random_matrix(ts, 3, rng);
  Tile a = Tile::lowrank64(u, v);
  Tile b = Tile::dense64(random_matrix(ts, ts, rng));
  Tile c = Tile::dense64(random_matrix(ts, ts, rng));
  c.convert_dense(Precision::FP32);

  la::Matrix<double> oracle = c.to_dense64();
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.to_dense64().cview(),
                   b.to_dense64().cview(), 1.0, oracle.view());

  gemm_mixed_tile(a, b, c, 1e-9);
  EXPECT_EQ(c.format(), tile::TileFormat::Dense);
  EXPECT_EQ(c.precision(), Precision::FP32);
  EXPECT_LT(rel_frobenius_diff(c.to_dense64(), oracle), 1e-5);
}

TEST(GemmMixed, LrOutputAccumulatesAndRecompresses) {
  Rng rng(41);
  const std::size_t ts = 16;
  Tile a = Tile::lowrank64(random_matrix(ts, 2, rng), random_matrix(ts, 2, rng));
  Tile b = Tile::lowrank64(random_matrix(ts, 4, rng), random_matrix(ts, 4, rng));
  Tile c = Tile::lowrank64(random_matrix(ts, 3, rng), random_matrix(ts, 3, rng));

  la::Matrix<double> oracle = c.to_dense64();
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.to_dense64().cview(),
                   b.to_dense64().cview(), 1.0, oracle.view());

  gemm_mixed_tile(a, b, c, 1e-10);
  EXPECT_EQ(c.format(), tile::TileFormat::LowRank);
  EXPECT_LE(c.rank(), 5u);  // 3 + min(2,4)
  EXPECT_LT(rel_frobenius_diff(c.to_dense64(), oracle), 1e-8);
}

TEST(GemmMixed, Fp32LrOutputStaysFp32) {
  Rng rng(43);
  const std::size_t ts = 12;
  Tile a = Tile::lowrank64(random_matrix(ts, 2, rng), random_matrix(ts, 2, rng));
  Tile b = Tile::dense64(random_matrix(ts, ts, rng));
  la::Matrix<float> u32(ts, 3), v32(ts, 3);
  la::convert(random_matrix(ts, 3, rng).cview(), u32.view());
  la::convert(random_matrix(ts, 3, rng).cview(), v32.view());
  Tile c = Tile::lowrank32(u32, v32);

  la::Matrix<double> oracle = c.to_dense64();
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.to_dense64().cview(),
                   b.to_dense64().cview(), 1.0, oracle.view());

  gemm_mixed_tile(a, b, c, 1e-8);
  EXPECT_EQ(c.precision(), Precision::FP32);
  EXPECT_EQ(c.format(), tile::TileFormat::LowRank);
  EXPECT_LT(rel_frobenius_diff(c.to_dense64(), oracle), 1e-4);
}

}  // namespace
}  // namespace gsx::cholesky
