// Summary statistics, OLS and distance helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mathx/distance.hpp"
#include "mathx/stats.hpp"

namespace gsx::mathx {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, QuantileType7MatchesR) {
  // R: quantile(c(1,2,3,4), c(.25,.5,.75)) -> 1.75, 2.50, 3.25.
  const std::vector<double> x = {4.0, 1.0, 3.0, 2.0};  // unsorted input
  EXPECT_DOUBLE_EQ(quantile(x, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(x, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
}

TEST(Stats, MedianSingleElement) {
  const std::vector<double> x = {42.0};
  EXPECT_DOUBLE_EQ(median(x), 42.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.99), 42.0);
}

TEST(Stats, BoxplotSummaryOrdering) {
  Rng rng(1);
  std::vector<double> x(501);
  for (auto& v : x) v = rng.normal();
  const BoxplotSummary b = boxplot_summary(x);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_EQ(b.n, 501u);
  EXPECT_NEAR(b.median, 0.0, 0.15);
  EXPECT_NEAR(b.q3 - b.q1, 1.349, 0.2);  // IQR of the standard normal
}

TEST(Stats, MspeAndMae) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> truth = {1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(mspe(pred, truth), (0.0 + 4.0 + 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(mae(pred, truth), (0.0 + 2.0 + 1.0) / 3.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), InvalidArgument);
  EXPECT_THROW(quantile(empty, 0.5), InvalidArgument);
  EXPECT_THROW(boxplot_summary(empty), InvalidArgument);
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(mspe(one, two), InvalidArgument);
}

TEST(Ols, RecoversExactLinearModel) {
  Rng rng(9);
  const std::size_t n = 200;
  std::vector<double> x(2 * n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    x[n + i] = rng.uniform();
    y[i] = 3.0 - 2.0 * x[i] + 0.5 * x[n + i];
  }
  const auto beta = ols_fit(y, x, n, 2);
  ASSERT_EQ(beta.size(), 3u);
  EXPECT_NEAR(beta[0], 3.0, 1e-10);
  EXPECT_NEAR(beta[1], -2.0, 1e-10);
  EXPECT_NEAR(beta[2], 0.5, 1e-10);

  const auto yhat = ols_predict(beta, x, n, 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(yhat[i], y[i], 1e-10);
}

TEST(Ols, NoisyFitIsUnbiased) {
  Rng rng(10);
  const std::size_t n = 5000;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.0, 1.0);
    y[i] = 1.0 + 2.0 * x[i] + 0.1 * rng.normal();
  }
  const auto beta = ols_fit(y, x, n, 1);
  EXPECT_NEAR(beta[0], 1.0, 0.01);
  EXPECT_NEAR(beta[1], 2.0, 0.02);
}

TEST(Ols, RejectsDegenerateInputs) {
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<double> x = {1.0, 1.0, 2.0, 2.0};  // n=2, p=2: n <= p
  EXPECT_THROW(ols_fit(y, x, 2, 2), InvalidArgument);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(euclidean2d(0, 0, 3, 4), 5.0);
  EXPECT_DOUBLE_EQ(euclidean2d(1, 1, 1, 1), 0.0);
}

TEST(Distance, HaversineKnownPoints) {
  // Same point -> 0; antipodal points -> pi.
  EXPECT_DOUBLE_EQ(haversine_deg(10, 20, 10, 20), 0.0);
  EXPECT_NEAR(haversine_deg(0, 0, 180, 0), 3.14159265358979, 1e-10);
  // Quarter circle along the equator.
  EXPECT_NEAR(haversine_deg(0, 0, 90, 0), 3.14159265358979 / 2, 1e-10);
  // Symmetric.
  EXPECT_DOUBLE_EQ(haversine_deg(5, 40, 7, 42), haversine_deg(7, 42, 5, 40));
}

}  // namespace
}  // namespace gsx::mathx
