// Shared helpers for the GeoStatX test suite.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace gsx::test {

inline la::Matrix<double> random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                                        double scale = 1.0) {
  la::Matrix<double> m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) m(i, j) = scale * rng.normal();
  return m;
}

/// Random SPD matrix: A = B B^T + n*I.
inline la::Matrix<double> random_spd(std::size_t n, Rng& rng) {
  const la::Matrix<double> b = random_matrix(n, n, rng);
  la::Matrix<double> a(n, n);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, b.cview(), b.cview(), 0.0,
                   a.view());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

/// Rank-deficient matrix: A = U V^T with U, V random n x k.
inline la::Matrix<double> random_lowrank(std::size_t rows, std::size_t cols, std::size_t k,
                                         Rng& rng) {
  const la::Matrix<double> u = random_matrix(rows, k, rng);
  const la::Matrix<double> v = random_matrix(cols, k, rng);
  la::Matrix<double> a(rows, cols);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                   a.view());
  return a;
}

/// Reference O(n^3) GEMM with explicit index arithmetic (oracle).
template <typename T>
la::Matrix<T> naive_gemm(la::Trans ta, la::Trans tb, T alpha, const la::Matrix<T>& a,
                         const la::Matrix<T>& b, T beta, const la::Matrix<T>& c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == la::Trans::NoTrans) ? a.cols() : a.rows();
  la::Matrix<T> out = c;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      T s{};
      for (std::size_t l = 0; l < k; ++l) {
        const T av = (ta == la::Trans::NoTrans) ? a(i, l) : a(l, i);
        const T bv = (tb == la::Trans::NoTrans) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      out(i, j) = alpha * s + beta * c(i, j);
    }
  }
  return out;
}

template <typename T>
double max_abs_diff(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  double d = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      d = std::max(d, std::fabs(static_cast<double>(a(i, j)) - static_cast<double>(b(i, j))));
  return d;
}

inline double rel_frobenius_diff(const la::Matrix<double>& a, const la::Matrix<double>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
      den += b(i, j) * b(i, j);
    }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

}  // namespace gsx::test
