// Tile payloads, precision conversion, and the symmetric tile matrix.
#include <gtest/gtest.h>

#include "la/convert.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"
#include "tile/sym_tile_matrix.hpp"
#include "tile/tile.hpp"

namespace gsx::tile {
namespace {

using gsx::test::random_matrix;
using gsx::test::rel_frobenius_diff;

TEST(Tile, Dense64RoundTrip) {
  Rng rng(1);
  auto m = random_matrix(6, 4, rng);
  const auto m0 = m;
  Tile t = Tile::dense64(std::move(m));
  EXPECT_EQ(t.format(), TileFormat::Dense);
  EXPECT_EQ(t.precision(), Precision::FP64);
  EXPECT_EQ(t.rows(), 6u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.bytes(), 6u * 4u * 8u);
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), m0), 1e-15);
  EXPECT_EQ(t.decision_code(), 'D');
}

TEST(Tile, ConvertDenseDownAndBack) {
  Rng rng(2);
  const auto m0 = random_matrix(8, 8, rng);
  Tile t = Tile::dense64(m0);

  t.convert_dense(Precision::FP32);
  EXPECT_EQ(t.precision(), Precision::FP32);
  EXPECT_EQ(t.bytes(), 8u * 8u * 4u);
  EXPECT_EQ(t.decision_code(), 'S');
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), m0), 1e-6);

  t.convert_dense(Precision::FP16);
  EXPECT_EQ(t.decision_code(), 'H');
  EXPECT_EQ(t.bytes(), 8u * 8u * 2u);
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), m0), 2e-3);

  // Promotion does not recover lost bits but must not change values.
  const auto after16 = t.to_dense64();
  t.convert_dense(Precision::FP64);
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), after16), 1e-300);
}

TEST(Tile, ConvertIsIdempotent) {
  Rng rng(3);
  Tile t = Tile::dense64(random_matrix(4, 4, rng));
  t.convert_dense(Precision::FP32);
  const auto snapshot = t.to_dense64();
  t.convert_dense(Precision::FP32);
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), snapshot), 1e-300);
}

TEST(Tile, LowRankRepresentsProduct) {
  Rng rng(4);
  const auto u = random_matrix(10, 3, rng);
  const auto v = random_matrix(7, 3, rng);
  la::Matrix<double> expect(10, 7);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                   expect.view());
  const Tile t = Tile::lowrank64(u, v);
  EXPECT_EQ(t.format(), TileFormat::LowRank);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.rows(), 10u);
  EXPECT_EQ(t.cols(), 7u);
  EXPECT_EQ(t.bytes(), (10u + 7u) * 3u * 8u);
  EXPECT_EQ(t.decision_code(), 'L');
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), expect), 1e-14);
}

TEST(Tile, LowRank32HalvesFootprint) {
  Rng rng(5);
  const auto ud = random_matrix(10, 2, rng);
  const auto vd = random_matrix(10, 2, rng);
  la::Matrix<float> u(10, 2), v(10, 2);
  la::convert(ud.cview(), u.view());
  la::convert(vd.cview(), v.view());
  const Tile t = Tile::lowrank32(u, v);
  EXPECT_EQ(t.bytes(), (10u + 10u) * 2u * 4u);
  EXPECT_EQ(t.decision_code(), 'l');
  la::Matrix<double> expect(10, 10);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, ud.cview(), vd.cview(), 0.0,
                   expect.view());
  EXPECT_LT(rel_frobenius_diff(t.to_dense64(), expect), 1e-6);
}

TEST(Tile, FrobeniusMatchesMaterialized) {
  Rng rng(6);
  Tile t = Tile::dense64(random_matrix(9, 9, rng));
  const double direct = la::norm_frobenius<double>(t.to_dense64().cview());
  EXPECT_NEAR(t.frobenius(), direct, 1e-12);
  t.convert_dense(Precision::FP16);
  const double f16 = la::norm_frobenius<double>(t.to_dense64().cview());
  EXPECT_NEAR(t.frobenius(), f16, 1e-10);
}

TEST(Tile, WrongAccessorThrows) {
  Rng rng(7);
  Tile t = Tile::dense64(random_matrix(3, 3, rng));
  EXPECT_THROW(t.d32(), InvalidArgument);
  EXPECT_THROW(t.lr64(), InvalidArgument);
  t.convert_dense(Precision::FP16);
  EXPECT_THROW(t.d64(), InvalidArgument);
  EXPECT_NO_THROW(t.d16());
}

TEST(Tile, RankMismatchThrows) {
  Rng rng(8);
  const auto u = random_matrix(5, 3, rng);
  const auto v = random_matrix(5, 2, rng);
  EXPECT_THROW(Tile::lowrank64(u, v), InvalidArgument);
}

// ------------------------------------------------------- SymTileMatrix

TEST(SymTileMatrix, TileGeometryWithRaggedEdge) {
  const SymTileMatrix a(10, 4);  // 3 tiles: 4, 4, 2
  EXPECT_EQ(a.nt(), 3u);
  EXPECT_EQ(a.tile_dim(0), 4u);
  EXPECT_EQ(a.tile_dim(1), 4u);
  EXPECT_EQ(a.tile_dim(2), 2u);
  EXPECT_EQ(a.tile_offset(2), 8u);
  EXPECT_THROW(a.tile_dim(3), InvalidArgument);
}

TEST(SymTileMatrix, UpperTriangleAccessThrows) {
  SymTileMatrix a(8, 4);
  EXPECT_THROW(a.at(0, 1), InvalidArgument);
  EXPECT_NO_THROW(a.at(1, 0));
  EXPECT_NO_THROW(a.at(1, 1));
}

TEST(SymTileMatrix, GenerateMatchesElementFunction) {
  SymTileMatrix a(11, 4);
  // Symmetric but index-revealing generator (covariance functions are
  // symmetric by construction; the tile layout must preserve that).
  auto f = [](std::size_t i, std::size_t j) {
    return static_cast<double>(std::max(i, j) * 100 + std::min(i, j));
  };
  a.generate(f, 1);
  const auto full = a.to_full();
  for (std::size_t j = 0; j < 11; ++j)
    for (std::size_t i = j; i < 11; ++i) {
      EXPECT_DOUBLE_EQ(full(i, j), f(i, j));
      EXPECT_DOUBLE_EQ(full(j, i), f(i, j)) << "symmetric completion";
    }
}

TEST(SymTileMatrix, ParallelGenerationMatchesSequential) {
  auto f = [](std::size_t i, std::size_t j) {
    return 1.0 / (1.0 + static_cast<double>(i > j ? i - j : j - i));
  };
  SymTileMatrix seq(37, 8), par(37, 8);
  seq.generate(f, 1);
  par.generate(f, 4);
  EXPECT_LT(gsx::test::rel_frobenius_diff(par.to_full(), seq.to_full()), 1e-300);
}

TEST(SymTileMatrix, FrobeniusCountsOffDiagonalTwice) {
  SymTileMatrix a(8, 4);
  a.generate([](std::size_t i, std::size_t j) { return (i == j) ? 2.0 : 1.0; }, 1);
  const auto full = a.to_full();
  EXPECT_NEAR(a.frobenius_norm(), la::norm_frobenius<double>(full.cview()), 1e-12);
}

TEST(SymTileMatrix, FootprintTracksConversions) {
  SymTileMatrix a(16, 4);
  a.generate([](std::size_t, std::size_t) { return 1.0; }, 1);
  const std::size_t dense64 = a.footprint_bytes();
  EXPECT_EQ(dense64, a.dense_fp64_bytes());
  a.at(3, 0).convert_dense(Precision::FP16);
  EXPECT_EQ(a.footprint_bytes(), dense64 - 4 * 4 * 6);
}

TEST(SymTileMatrix, DecisionMapShape) {
  SymTileMatrix a(12, 4);
  a.generate([](std::size_t, std::size_t) { return 1.0; }, 1);
  a.at(1, 0).convert_dense(Precision::FP32);
  a.at(2, 0).convert_dense(Precision::FP16);
  const auto map = a.decision_map();
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map[0], "D..");
  EXPECT_EQ(map[1], "SD.");
  EXPECT_EQ(map[2], "HDD");
  const auto counts = a.decision_counts();
  EXPECT_EQ(counts.at('D'), 4u);
  EXPECT_EQ(counts.at('S'), 1u);
  EXPECT_EQ(counts.at('H'), 1u);
}

}  // namespace
}  // namespace gsx::tile
