// POTRF / QR / SVD / norm tests.
#include <gtest/gtest.h>

#include <cmath>

#include "la/convert.hpp"
#include "la/lapack.hpp"
#include "test_utils.hpp"

namespace gsx::la {
namespace {

using gsx::test::max_abs_diff;
using gsx::test::random_lowrank;
using gsx::test::random_matrix;
using gsx::test::random_spd;
using gsx::test::rel_frobenius_diff;

class PotrfSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PotrfSizes, LowerFactorReconstructs) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const auto a0 = random_spd(n, rng);
  auto a = a0;
  ASSERT_EQ(potrf<double>(Uplo::Lower, a.view()), 0);

  // L L^T == A0 (build L from the lower triangle).
  la::Matrix<double> l(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) l(i, j) = a(i, j);
  la::Matrix<double> rec(n, n);
  gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, l.cview(), l.cview(), 0.0, rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, a0), 1e-12);

  // Strict upper triangle untouched.
  for (std::size_t j = 1; j < n; ++j)
    for (std::size_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(a(i, j), a0(i, j));
}

// Sizes straddle the internal blocking (96).
INSTANTIATE_TEST_SUITE_P(Range, PotrfSizes, ::testing::Values(1, 2, 5, 17, 64, 96, 97, 150, 257));

TEST(Potrf, UpperFactorReconstructs) {
  Rng rng(42);
  const std::size_t n = 20;
  const auto a0 = random_spd(n, rng);
  auto a = a0;
  ASSERT_EQ(potrf<double>(Uplo::Upper, a.view()), 0);
  la::Matrix<double> u(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) u(i, j) = a(i, j);
  la::Matrix<double> rec(n, n);
  gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, u.cview(), u.cview(), 0.0, rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, a0), 1e-12);
}

TEST(Potrf, DetectsIndefiniteMatrix) {
  la::Matrix<double> a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // indefinite
  a(2, 2) = 1.0;
  const int info = potrf<double>(Uplo::Lower, a.view());
  EXPECT_EQ(info, 2);  // 1-based failing pivot
}

TEST(Potrf, DetectsFailureInLaterBlock) {
  Rng rng(9);
  const std::size_t n = 120;  // failure inside second block (blocking = 96)
  auto a = random_spd(n, rng);
  a(110, 110) = -1e6;
  const int info = potrf<double>(Uplo::Lower, a.view());
  EXPECT_GT(info, 96);
  EXPECT_LE(info, 120);
}

TEST(Potrf, FloatVariantWorks) {
  Rng rng(11);
  const std::size_t n = 24;
  const auto ad = random_spd(n, rng);
  la::Matrix<float> a(n, n);
  convert(ad.cview(), a.view());
  const la::Matrix<float> a0 = a;
  ASSERT_EQ(potrf<float>(Uplo::Lower, a.view()), 0);
  la::Matrix<float> l(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) l(i, j) = a(i, j);
  la::Matrix<float> rec(n, n);
  gemm<float>(Trans::NoTrans, Trans::Trans, 1.0f, l.cview(), l.cview(), 0.0f, rec.view());
  EXPECT_LT(max_abs_diff(rec, a0), 1e-3);
}

// ------------------------------------------------------------------ QR

struct QrShape {
  std::size_t m, n;
};

class QrTest : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrTest, ThinQrReconstructsAndIsOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const auto a0 = random_matrix(m, n, rng);
  auto r = a0;
  la::Matrix<double> q;
  qr_factor(r.view(), q);

  ASSERT_EQ(q.rows(), m);
  ASSERT_EQ(q.cols(), n);

  // Q^T Q == I.
  la::Matrix<double> qtq(n, n);
  gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, q.cview(), q.cview(), 0.0, qtq.view());
  EXPECT_LT(max_abs_diff(qtq, la::Matrix<double>::identity(n)), 1e-12);

  // Q R == A.
  la::Matrix<double> rec(m, n);
  gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, q.cview(),
               Span2D<const double>(r.data(), n, n, m), 0.0, rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, a0), 1e-12);

  // R strictly upper-triangular below the diagonal (zeroed).
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < m; ++i) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrTest,
                         ::testing::Values(QrShape{5, 5}, QrShape{9, 4}, QrShape{40, 7},
                                           QrShape{64, 64}, QrShape{100, 3},
                                           QrShape{1, 1}));

TEST(Qr, HandlesRankDeficiency) {
  Rng rng(31);
  auto a = random_lowrank(20, 8, 3, rng);
  const auto a0 = a;
  la::Matrix<double> q;
  qr_factor(a.view(), q);
  la::Matrix<double> rec(20, 8);
  gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, q.cview(),
               Span2D<const double>(a.data(), 8, 8, 20), 0.0, rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, a0), 1e-12);
}

// ------------------------------------------------------------------ SVD

struct SvdShape {
  std::size_t m, n;
};

class SvdTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdTest, FactorsReconstructAndAreOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(m * 37 + n);
  const auto a = random_matrix(m, n, rng);
  la::Matrix<double> u, v;
  std::vector<double> s;
  svd_jacobi(a, u, s, v);

  const std::size_t r = std::min(m, n);
  ASSERT_EQ(s.size(), r);
  ASSERT_EQ(u.rows(), m);
  ASSERT_EQ(u.cols(), r);
  ASSERT_EQ(v.rows(), n);
  ASSERT_EQ(v.cols(), r);

  // Descending non-negative singular values.
  for (std::size_t i = 0; i < r; ++i) {
    EXPECT_GE(s[i], 0.0);
    if (i > 0) EXPECT_LE(s[i], s[i - 1]);
  }

  // U^T U == I, V^T V == I.
  la::Matrix<double> utu(r, r), vtv(r, r);
  gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, u.cview(), u.cview(), 0.0, utu.view());
  gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, v.cview(), v.cview(), 0.0, vtv.view());
  EXPECT_LT(max_abs_diff(utu, la::Matrix<double>::identity(r)), 1e-11);
  EXPECT_LT(max_abs_diff(vtv, la::Matrix<double>::identity(r)), 1e-11);

  // U S V^T == A.
  la::Matrix<double> us = u;
  for (std::size_t j = 0; j < r; ++j)
    for (std::size_t i = 0; i < m; ++i) us(i, j) *= s[j];
  la::Matrix<double> rec(m, n);
  gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, us.cview(), v.cview(), 0.0, rec.view());
  EXPECT_LT(rel_frobenius_diff(rec, a), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdTest,
                         ::testing::Values(SvdShape{6, 6}, SvdShape{12, 5}, SvdShape{5, 12},
                                           SvdShape{40, 40}, SvdShape{1, 4},
                                           SvdShape{30, 2}));

TEST(Svd, ExactRankRevealed) {
  Rng rng(55);
  const auto a = random_lowrank(24, 18, 5, rng);
  la::Matrix<double> u, v;
  std::vector<double> s;
  svd_jacobi(a, u, s, v);
  for (std::size_t i = 5; i < s.size(); ++i) EXPECT_LT(s[i], 1e-10 * s[0]);
  EXPECT_GT(s[4], 1e-8 * s[0]);
}

TEST(Svd, SingularValuesOfDiagonalMatrix) {
  la::Matrix<double> a(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = -7.0;  // sign goes into the vectors
  a(2, 2) = 0.5;
  a(3, 3) = 0.0;
  la::Matrix<double> u, v;
  std::vector<double> s;
  svd_jacobi(a, u, s, v);
  EXPECT_NEAR(s[0], 7.0, 1e-12);
  EXPECT_NEAR(s[1], 3.0, 1e-12);
  EXPECT_NEAR(s[2], 0.5, 1e-12);
  EXPECT_NEAR(s[3], 0.0, 1e-12);
}

// ----------------------------------------------------------------- Norms

TEST(Norms, FrobeniusMatchesDefinition) {
  la::Matrix<double> a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(norm_frobenius<double>(a.cview()), 5.0);
}

TEST(Norms, MaxAbs) {
  Rng rng(3);
  auto a = random_matrix(5, 5, rng);
  a(3, 2) = -99.0;
  EXPECT_DOUBLE_EQ(norm_max<double>(a.cview()), 99.0);
}

TEST(Symmetrize, CopiesLowerToUpper) {
  Rng rng(4);
  auto a = random_matrix(5, 5, rng);
  symmetrize_from<double>(Uplo::Lower, a.view());
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
}

}  // namespace
}  // namespace gsx::la
