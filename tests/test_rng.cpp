// RNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace gsx {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(100);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIndexBounded) {
  Rng r(101);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[r.uniform_index(7)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);  // ~10000 expected per bucket
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(2024);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // kurtosis of the standard normal
}

TEST(Rng, NormalWithParams) {
  Rng r(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(sum2 / n, 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(77);
  Rng b = a.split();
  // Streams must not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 (from the SplitMix64 reference
  // implementation).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm.next(), 0x06c45d188009454full);
}

}  // namespace
}  // namespace gsx
