// Tests for K_nu: closed forms, reference values, identities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "mathx/bessel.hpp"

namespace gsx::mathx {
namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

double k_half(double x) { return std::sqrt(kPi / (2.0 * x)) * std::exp(-x); }

TEST(Bessel, HalfIntegerClosedFormNuHalf) {
  // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}.
  for (double x : {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0}) {
    EXPECT_NEAR(bessel_k(0.5, x), k_half(x), 1e-12 * k_half(x)) << "x = " << x;
  }
}

TEST(Bessel, HalfIntegerClosedFormNuThreeHalves) {
  // K_{3/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 1/x).
  for (double x : {0.05, 0.3, 1.0, 3.0, 10.0, 50.0}) {
    const double expect = k_half(x) * (1.0 + 1.0 / x);
    EXPECT_NEAR(bessel_k(1.5, x), expect, 1e-12 * expect) << "x = " << x;
  }
}

TEST(Bessel, HalfIntegerClosedFormNuFiveHalves) {
  // K_{5/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 3/x + 3/x^2).
  for (double x : {0.1, 1.0, 4.0, 12.0}) {
    const double expect = k_half(x) * (1.0 + 3.0 / x + 3.0 / (x * x));
    EXPECT_NEAR(bessel_k(2.5, x), expect, 1e-12 * expect) << "x = " << x;
  }
}

TEST(Bessel, ReferenceValuesIntegerOrder) {
  // Abramowitz & Stegun / verified high-precision references.
  EXPECT_NEAR(bessel_k(0.0, 1.0), 0.42102443824070834, 1e-14);
  EXPECT_NEAR(bessel_k(1.0, 1.0), 0.60190723019723458, 1e-14);
  EXPECT_NEAR(bessel_k(0.0, 2.0), 0.11389387274953344, 1e-14);
  EXPECT_NEAR(bessel_k(1.0, 2.0), 0.13986588181652243, 1e-14);
  EXPECT_NEAR(bessel_k(2.0, 2.0), 0.25375975456605586, 1e-14);
  EXPECT_NEAR(bessel_k(5.0, 10.0), 5.7541849985e-05, 1e-14);
}

/// Oracle via the integral representation
///   K_nu(x) = \int_0^inf exp(-x cosh t) cosh(nu t) dt
/// evaluated with composite Simpson on a truncated domain.
double bessel_k_quadrature(double nu, double x) {
  double tmax = 2.0;
  while (x * std::cosh(tmax) < 750.0) tmax += 0.5;
  const int n = 40000;  // even
  const double h = tmax / n;
  auto f = [&](double t) { return std::exp(-x * std::cosh(t)) * std::cosh(nu * t); };
  double s = f(0.0) + f(tmax);
  for (int i = 1; i < n; ++i) s += f(i * h) * ((i % 2) ? 4.0 : 2.0);
  return s * h / 3.0;
}

struct NuX {
  double nu, x;
};

class BesselQuadrature : public ::testing::TestWithParam<NuX> {};

TEST_P(BesselQuadrature, MatchesIntegralRepresentation) {
  const auto [nu, x] = GetParam();
  const double oracle = bessel_k_quadrature(nu, x);
  EXPECT_NEAR(bessel_k(nu, x), oracle, 1e-10 * oracle) << "nu=" << nu << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(FractionalOrders, BesselQuadrature,
                         ::testing::Values(NuX{0.25, 1.0}, NuX{0.44, 0.3}, NuX{0.44, 1.7},
                                           NuX{0.75, 0.5}, NuX{1.25, 0.5}, NuX{1.9, 2.2},
                                           NuX{3.3, 4.0}, NuX{0.32, 5.0}, NuX{2.5, 0.7},
                                           NuX{4.75, 3.1}));

TEST(Bessel, RecurrenceIdentity) {
  // K_{nu+1}(x) = K_{nu-1}(x) + (2 nu / x) K_nu(x).
  for (double nu : {0.3, 0.44, 1.0, 1.7, 2.9}) {
    for (double x : {0.2, 1.0, 3.0, 8.0}) {
      const double lhs = bessel_k(nu + 1.0, x);
      const double rhs = bessel_k(nu - 1.0 < 0 ? -(nu - 1.0) : nu - 1.0, x) +
                         (2.0 * nu / x) * bessel_k(nu, x);
      EXPECT_NEAR(lhs, rhs, 1e-11 * std::fabs(rhs)) << "nu=" << nu << " x=" << x;
    }
  }
}

TEST(Bessel, WronskianIdentity) {
  // I_nu(x) K_{nu+1}(x) + I_{nu+1}(x) K_nu(x) = 1/x.
  for (double nu : {0.0, 0.4, 1.3, 2.5}) {
    for (double x : {0.3, 1.0, 2.5, 6.0}) {
      const double w = bessel_i(nu, x) * bessel_k(nu + 1.0, x) +
                       bessel_i(nu + 1.0, x) * bessel_k(nu, x);
      EXPECT_NEAR(w, 1.0 / x, 1e-11 / x) << "nu=" << nu << " x=" << x;
    }
  }
}

TEST(Bessel, SymmetricInOrder) {
  for (double x : {0.5, 2.0, 7.0}) {
    EXPECT_DOUBLE_EQ(bessel_k(-0.7, x), bessel_k(0.7, x));
    EXPECT_DOUBLE_EQ(bessel_k(-2.0, x), bessel_k(2.0, x));
  }
}

TEST(Bessel, ScaledMatchesUnscaled) {
  for (double nu : {0.44, 1.0, 3.2}) {
    for (double x : {0.5, 2.0, 10.0, 30.0}) {
      const double scaled = bessel_k_scaled(nu, x);
      const double unscaled = bessel_k(nu, x);
      EXPECT_NEAR(scaled, unscaled * std::exp(x), 1e-11 * scaled);
    }
  }
}

TEST(Bessel, ScaledStableForLargeArgument) {
  // Unscaled underflows near x ~ 705; the scaled variant stays O(sqrt(pi/2x)).
  const double v = bessel_k_scaled(0.5, 900.0);
  EXPECT_NEAR(v, std::sqrt(kPi / 1800.0), 1e-12);
}

TEST(Bessel, MonotoneDecreasingInArgument) {
  double prev = bessel_k(0.44, 0.05);
  for (double x = 0.1; x < 20.0; x += 0.37) {
    const double cur = bessel_k(0.44, x);
    EXPECT_LT(cur, prev) << "x = " << x;
    prev = cur;
  }
}

TEST(Bessel, IncreasingInOrder) {
  // For fixed x, K_nu increases with nu >= 0.
  for (double x : {0.5, 1.0, 4.0}) {
    double prev = bessel_k(0.1, x);
    for (double nu = 0.3; nu < 5.0; nu += 0.4) {
      const double cur = bessel_k(nu, x);
      EXPECT_GT(cur, prev) << "nu=" << nu << " x=" << x;
      prev = cur;
    }
  }
}

TEST(Bessel, RejectsBadArguments) {
  EXPECT_THROW(bessel_k(0.5, 0.0), InvalidArgument);
  EXPECT_THROW(bessel_k(0.5, -1.0), InvalidArgument);
  EXPECT_THROW(bessel_k(std::nan(""), 1.0), InvalidArgument);
  EXPECT_THROW(bessel_i(-1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace gsx::mathx
