// Discrete-event simulator of the distributed tile Cholesky.
#include <gtest/gtest.h>

#include <cmath>

#include "cholesky/factorize.hpp"
#include "distsim/distsim.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"

namespace gsx::distsim {
namespace {

const perfmodel::KernelModel& model64() {
  static const perfmodel::KernelModel m = perfmodel::KernelModel::theoretical(64);
  return m;
}

NodeModel simple_node(std::size_t cores = 4) {
  NodeModel n;
  n.cores = cores;
  n.kernels = &model64();
  return n;
}

TEST(ProcessGridTest, NearSquareFactorizations) {
  EXPECT_EQ(ProcessGrid::near_square(1).nodes(), 1u);
  const auto g16 = ProcessGrid::near_square(16);
  EXPECT_EQ(g16.p, 4u);
  EXPECT_EQ(g16.q, 4u);
  const auto g12 = ProcessGrid::near_square(12);
  EXPECT_EQ(g12.p * g12.q, 12u);
  EXPECT_LE(g12.p, g12.q);
  const auto g7 = ProcessGrid::near_square(7);  // prime: 1 x 7
  EXPECT_EQ(g7.p, 1u);
  EXPECT_EQ(g7.q, 7u);
}

TEST(ProcessGridTest, BlockCyclicOwnership) {
  const ProcessGrid g{2, 3};
  EXPECT_EQ(g.owner(0, 0), 0u);
  EXPECT_EQ(g.owner(0, 1), 1u);
  EXPECT_EQ(g.owner(1, 0), 3u);
  EXPECT_EQ(g.owner(2, 3), 0u);  // wraps both ways
  // Every node owns some tile of an 6x6 grid.
  std::vector<bool> seen(6, false);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j <= i; ++j) seen[g.owner(i, j)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(TileStructureTest, SyntheticRankProfile) {
  const auto s = TileStructure::synthetic(16, 64, 2, 0.4, 2, true);
  // Band tiles dense; far tiles low-rank with decaying rank.
  EXPECT_FALSE(s.at(0, 0).lowrank);
  EXPECT_FALSE(s.at(1, 0).lowrank);
  EXPECT_TRUE(s.at(4, 0).lowrank);
  EXPECT_GE(s.at(4, 0).rank, s.at(10, 0).rank);
  EXPECT_GE(s.at(10, 0).rank, 2u);
  // Diagonal FP64; off-band mixed precision kicks in.
  EXPECT_EQ(s.at(0, 0).precision, Precision::FP64);
  EXPECT_EQ(s.at(1, 0).precision, Precision::FP32);
  EXPECT_EQ(s.at(8, 0).precision, Precision::FP32);
}

TEST(TileStructureTest, FromMatrixCapturesDecisions) {
  Rng rng(3);
  auto locs = geostat::perturbed_grid_locations(192, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.05, 0.5, 1e-6);
  tile::SymTileMatrix a(192, 64);
  geostat::fill_covariance_tiles(a, model, locs, 1);
  cholesky::TlrCompressOptions copt;
  copt.band_size = 1;
  copt.lr_fp32 = false;
  cholesky::compress_offband(a, copt, 1);

  const auto s = TileStructure::from_matrix(a);
  EXPECT_EQ(s.nt(), a.nt());
  for (std::size_t j = 0; j < a.nt(); ++j)
    for (std::size_t i = j; i < a.nt(); ++i) {
      EXPECT_EQ(s.at(i, j).lowrank, a.at(i, j).format() == tile::TileFormat::LowRank);
      if (s.at(i, j).lowrank) EXPECT_EQ(s.at(i, j).rank, a.at(i, j).rank());
    }
}

TEST(TileStructureTest, TileBytes) {
  auto s = TileStructure::synthetic(8, 64, 1, 0.5, 2, false);
  EXPECT_EQ(s.tile_bytes(0, 0), 64u * 64u * 8u);  // dense FP64
  const auto& lr = s.at(5, 0);
  EXPECT_EQ(s.tile_bytes(5, 0), 2u * 64u * lr.rank * 8u);
}

TEST(Simulate, SingleNodeMatchesSerialCostSum) {
  // One node, one core: makespan == total compute (no comm, no overlap).
  const auto s = TileStructure::synthetic(8, 64, 8, 0.5, 2, false);  // all dense
  const SimResult r =
      simulate_cholesky(s, ProcessGrid{1, 1}, simple_node(1), LinkModel{});
  EXPECT_NEAR(r.makespan_seconds, r.total_compute_seconds, 1e-12);
  EXPECT_EQ(r.remote_transfers, 0u);
  const std::size_t nt = 8;
  EXPECT_EQ(r.num_tasks, nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) / 6);
}

TEST(Simulate, MoreNodesNeverSlower) {
  const auto s = TileStructure::synthetic(24, 64, 2, 0.3, 4, true);
  const NodeModel node = simple_node(2);
  const LinkModel fast_link{0.0, 1e15};  // effectively free communication
  double prev = 1e300;
  for (std::size_t nodes : {1u, 4u, 16u}) {
    const SimResult r =
        simulate_cholesky(s, ProcessGrid::near_square(nodes), node, fast_link);
    EXPECT_LE(r.makespan_seconds, prev * 1.0001) << nodes;
    prev = r.makespan_seconds;
  }
}

TEST(Simulate, StrongScalingSaturates) {
  // Past some node count the critical path dominates: speedup flattens
  // (the paper's Fig. 11 observation at 48K nodes).
  const auto s = TileStructure::synthetic(16, 64, 2, 0.3, 4, false);
  const NodeModel node = simple_node(2);
  const SimResult r1 = simulate_cholesky(s, ProcessGrid::near_square(1), node, LinkModel{});
  const SimResult r64 =
      simulate_cholesky(s, ProcessGrid::near_square(64), node, LinkModel{});
  const SimResult r256 =
      simulate_cholesky(s, ProcessGrid::near_square(256), node, LinkModel{});
  const double s64 = r1.makespan_seconds / r64.makespan_seconds;
  const double s256 = r1.makespan_seconds / r256.makespan_seconds;
  EXPECT_GT(s64, 1.0);
  EXPECT_LT(s256 / s64, 2.0) << "scaling must flatten well below 4x";
}

TEST(Simulate, CommunicationChargesRemoteReadsOnce) {
  const auto s = TileStructure::synthetic(8, 64, 8, 0.5, 2, false);
  const ProcessGrid g{2, 2};
  const SimResult r = simulate_cholesky(s, g, simple_node(2), LinkModel{});
  EXPECT_GT(r.remote_transfers, 0u);
  EXPECT_GT(r.comm_bytes, 0u);
  // Caching bounds transfers: at most one per (tile version, destination).
  // Tile (m,k) is written by 1 trsm and read by syrk/gemms on <= 4 nodes.
  EXPECT_LT(r.remote_transfers, r.num_tasks * 2);
}

TEST(Simulate, SlowLinksHurtMakespan) {
  const auto s = TileStructure::synthetic(16, 64, 2, 0.3, 4, false);
  const NodeModel node = simple_node(2);
  const ProcessGrid g = ProcessGrid::near_square(16);
  const SimResult fast = simulate_cholesky(s, g, node, LinkModel{1e-9, 1e14});
  const SimResult slow = simulate_cholesky(s, g, node, LinkModel{1e-3, 1e6});
  EXPECT_GT(slow.makespan_seconds, fast.makespan_seconds * 1.5);
}

TEST(Simulate, TlrStructureBeatsDenseAtScale) {
  // The paper's core claim, at the simulator level: the TLR structure's
  // makespan beats dense FP64 for weakly-correlated (fast rank decay)
  // matrices on many nodes.
  // Fast rank decay keeps LR tiles below the TLR/dense crossover (the
  // structure-aware decision would revert higher-rank tiles to dense).
  const std::size_t nt = 32;
  const auto dense = TileStructure::synthetic(nt, 64, nt, 0.0, 64, false);
  const auto tlr = TileStructure::synthetic(nt, 64, 2, 1.2, 2, true);
  const NodeModel node = simple_node(4);
  const ProcessGrid g = ProcessGrid::near_square(16);
  const SimResult rd = simulate_cholesky(dense, g, node, LinkModel{});
  const SimResult rt = simulate_cholesky(tlr, g, node, LinkModel{});
  EXPECT_LT(rt.makespan_seconds, rd.makespan_seconds);
  EXPECT_LT(rt.comm_bytes, rd.comm_bytes) << "LR tiles move fewer bytes";
}

TEST(Simulate, EfficiencyBounded) {
  const auto s = TileStructure::synthetic(16, 64, 2, 0.3, 4, false);
  const NodeModel node = simple_node(2);
  const ProcessGrid g = ProcessGrid::near_square(4);
  const SimResult r = simulate_cholesky(s, g, node, LinkModel{});
  const double eff = r.efficiency(g, node);
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 1.0);
}

TEST(Simulate, MismatchedKernelTileSizeThrows) {
  const auto s = TileStructure::synthetic(8, 128, 2, 0.3, 4, false);
  NodeModel node = simple_node(2);  // kernels built for ts = 64
  EXPECT_THROW(simulate_cholesky(s, ProcessGrid{1, 1}, node, LinkModel{}),
               InvalidArgument);
}

}  // namespace
}  // namespace gsx::distsim
