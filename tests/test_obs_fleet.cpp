// Fleet-observability units: Prometheus federation helpers (re-labeling,
// merging, text-level quantiles, name sanitization hazards) and the
// cross-process flight-dump merge (clock offsets, ordering, dedupe, trace
// grouping) behind the gsx_obs tool.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export_prom.hpp"
#include "obs/flight_merge.hpp"

namespace {

using gsx::obs::FlightDump;
using gsx::obs::merge_flight_dumps;
using gsx::obs::MergeResult;
using gsx::obs::parse_flight_dump;
using gsx::obs::prometheus_histogram_quantile;
using gsx::obs::prometheus_merge;
using gsx::obs::prometheus_name;
using gsx::obs::prometheus_with_label;

// --- prometheus_name ---------------------------------------------------------

TEST(PrometheusName, SanitizesDotsAndPrefixes) {
  EXPECT_EQ(prometheus_name("serve.predict.seconds"), "gsx_serve_predict_seconds");
  EXPECT_EQ(prometheus_name("router.replicas.alive"), "gsx_router_replicas_alive");
}

TEST(PrometheusName, DistinctMetricNamesCanCollideAfterSanitization) {
  // '.' and '-' both map to '_': registry names must be chosen so sanitized
  // forms stay distinct, because the exposition cannot tell these apart.
  EXPECT_EQ(prometheus_name("serve.queue.depth"), prometheus_name("serve.queue-depth"));
  EXPECT_EQ(prometheus_name("a.b"), prometheus_name("a-b"));
  EXPECT_EQ(prometheus_name("a.b"), prometheus_name("a_b"));
  // The per-replica series idiom ("router.requests.<name>") keeps its
  // uniqueness only while replica names differ beyond punctuation.
  EXPECT_EQ(prometheus_name("router.requests.r-0"),
            prometheus_name("router.requests.r.0"));
  // Sanity: genuinely different names do not collide.
  EXPECT_NE(prometheus_name("serve.queue.depth"), prometheus_name("serve.queue"));
}

// --- prometheus_with_label ---------------------------------------------------

TEST(PrometheusFederation, LabelsBareSeries) {
  const std::string in = "# TYPE gsx_up gauge\ngsx_up 1\n";
  EXPECT_EQ(prometheus_with_label(in, "replica", "r0"),
            "# TYPE gsx_up gauge\ngsx_up{replica=\"r0\"} 1\n");
}

TEST(PrometheusFederation, LabelsSeriesWithExistingLabels) {
  const std::string in = "gsx_h_bucket{le=\"0.5\"} 3\n";
  EXPECT_EQ(prometheus_with_label(in, "replica", "r1"),
            "gsx_h_bucket{replica=\"r1\",le=\"0.5\"} 3\n");
}

TEST(PrometheusFederation, MergeDeduplicatesTypeHeaders) {
  const std::string a = "# TYPE gsx_up gauge\ngsx_up{replica=\"r0\"} 1\n";
  const std::string b = "# TYPE gsx_up gauge\ngsx_up{replica=\"r1\"} 1\n";
  const std::string merged = prometheus_merge({a, b});
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = merged.find("# TYPE gsx_up", pos)) !=
                            std::string::npos;
       ++pos)
    ++count;
  EXPECT_EQ(count, 1u);
  EXPECT_NE(merged.find("replica=\"r0\""), std::string::npos);
  EXPECT_NE(merged.find("replica=\"r1\""), std::string::npos);
}

// --- prometheus_histogram_quantile -------------------------------------------

TEST(PrometheusFederation, QuantileFromBuckets) {
  const std::string text =
      "# TYPE gsx_h histogram\n"
      "gsx_h_bucket{le=\"0.1\"} 10\n"
      "gsx_h_bucket{le=\"0.5\"} 90\n"
      "gsx_h_bucket{le=\"1\"} 100\n"
      "gsx_h_bucket{le=\"+Inf\"} 100\n"
      "gsx_h_sum 30\ngsx_h_count 100\n";
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.5), 0.5);
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.05), 0.1);
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.999), 1.0);
}

TEST(PrometheusFederation, P999FallsBackToLargestFiniteBoundOnOverflow) {
  // All mass beyond the finite bounds: q=0.999 lands in the +Inf bucket,
  // and the exposition carries no observed max — the largest finite bound
  // is the best available estimate.
  const std::string text =
      "gsx_h_bucket{le=\"0.1\"} 0\n"
      "gsx_h_bucket{le=\"1\"} 1\n"
      "gsx_h_bucket{le=\"+Inf\"} 1000\n";
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.999), 1.0);
}

TEST(PrometheusFederation, QuantileAggregatesAcrossReplicaLabelSets) {
  // A federated exposition has one bucket set per replica; the quantile
  // must pool them, not pick one.
  const std::string text =
      "gsx_h_bucket{replica=\"r0\",le=\"0.1\"} 100\n"
      "gsx_h_bucket{replica=\"r0\",le=\"+Inf\"} 100\n"
      "gsx_h_bucket{replica=\"r1\",le=\"0.1\"} 0\n"
      "gsx_h_bucket{replica=\"r1\",le=\"+Inf\"} 100\n";
  // Pooled: 100 of 200 at <=0.1; the median sits in the first bucket but
  // p0.9 overflows into +Inf and falls back to 0.1 (largest finite bound).
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.5), 0.1);
  EXPECT_DOUBLE_EQ(prometheus_histogram_quantile(text, "gsx_h", 0.9), 0.1);
}

TEST(PrometheusFederation, QuantileNaNWhenFamilyAbsentOrEmpty) {
  EXPECT_TRUE(std::isnan(prometheus_histogram_quantile("", "gsx_h", 0.5)));
  const std::string zeros = "gsx_h_bucket{le=\"+Inf\"} 0\n";
  EXPECT_TRUE(std::isnan(prometheus_histogram_quantile(zeros, "gsx_h", 0.5)));
}

// --- flight-dump parsing -----------------------------------------------------

const char* kRouterDump =
    "{\"t\":10.0,\"kind\":\"dump_header\",\"process\":\"router\",\"pid\":100,"
    "\"wall_anchor\":1000.0,\"mono_anchor\":10.0}\n"
    "{\"t\":10.5,\"kind\":\"heartbeat_recv\",\"thread\":0,\"request\":0,"
    "\"trace\":0,\"a\":4242,\"b\":0,\"v\":0}\n"
    "{\"t\":11.0,\"kind\":\"span_router_forward\",\"thread\":1,\"request\":7,"
    "\"trace\":52,\"a\":17,\"b\":0,\"v\":0.05}\n";

const char* kReplicaDump =
    "{\"t\":100.0,\"kind\":\"dump_header\",\"process\":\"r0\",\"pid\":200,"
    "\"wall_anchor\":990.0,\"mono_anchor\":100.0}\n"
    "{\"t\":105.4,\"kind\":\"heartbeat_send\",\"thread\":0,\"request\":0,"
    "\"trace\":0,\"a\":4242,\"b\":0,\"v\":0}\n"
    "{\"t\":105.6,\"kind\":\"heartbeat_ack\",\"thread\":0,\"request\":0,"
    "\"trace\":0,\"a\":4242,\"b\":0,\"v\":0.2}\n"
    "{\"t\":106.1,\"kind\":\"span_replica_solve\",\"thread\":2,\"request\":7,"
    "\"trace\":52,\"a\":33,\"b\":17,\"v\":0.02}\n";

TEST(FlightMerge, ParsesHeaderAndConvertsToWallClock) {
  const FlightDump d = parse_flight_dump(kRouterDump);
  ASSERT_TRUE(d.has_header);
  EXPECT_EQ(d.process, "router");
  EXPECT_EQ(d.pid, 100u);
  ASSERT_EQ(d.events.size(), 2u);  // header is not an event
  EXPECT_DOUBLE_EQ(d.events[0].t_wall, 1000.5);
  EXPECT_EQ(d.events[1].kind, "span_router_forward");
  EXPECT_EQ(d.events[1].trace, 52u);
  EXPECT_EQ(d.events[1].a, 17u);
}

TEST(FlightMerge, MissingHeaderKeepsMonotonicTime) {
  const FlightDump d = parse_flight_dump(
      "{\"t\":3.5,\"kind\":\"solve_begin\",\"thread\":0,\"request\":1,"
      "\"trace\":0,\"a\":0,\"b\":0,\"v\":0}\n");
  EXPECT_FALSE(d.has_header);
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_DOUBLE_EQ(d.events[0].t_wall, 3.5);
}

TEST(FlightMerge, EstimatesClockOffsetFromHeartbeatPair) {
  const MergeResult m = merge_flight_dumps(
      {parse_flight_dump(kRouterDump), parse_flight_dump(kReplicaDump)});
  // Replica wall midpoint of send/ack = 990 + 5.5 = 995.5; router saw the
  // recv at 1000.5, so r0's clock needs +5 s to land on the router's.
  ASSERT_EQ(m.clock_offsets.count("r0"), 1u);
  EXPECT_NEAR(m.clock_offsets.at("r0"), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.clock_offsets.at("router"), 0.0);
}

TEST(FlightMerge, OrdersAcrossProcessesAndGroupsByTrace) {
  const MergeResult m = merge_flight_dumps(
      {parse_flight_dump(kRouterDump), parse_flight_dump(kReplicaDump)});
  // After the +5 s correction the replica's solve (996.1 -> 1001.1) lands
  // after the router's forward (1001.0): causal order restored.
  ASSERT_EQ(m.traces.count(52u), 1u);
  const std::vector<std::size_t>& idx = m.traces.at(52u);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(m.timeline[idx[0]].kind, "span_router_forward");
  EXPECT_EQ(m.timeline[idx[1]].kind, "span_replica_solve");
  EXPECT_LT(m.timeline[idx[0]].t_wall, m.timeline[idx[1]].t_wall);
  // The replica solve span names the router's forward span as parent.
  EXPECT_EQ(m.timeline[idx[1]].b, m.timeline[idx[0]].a);
}

TEST(FlightMerge, DeduplicatesIdenticalEventsFromSharedRecorders) {
  // An in-process test fleet shares one recorder, so flight_collect returns
  // near-identical snapshots per replica: the merge must not triple-count.
  const FlightDump d = parse_flight_dump(kRouterDump);
  const MergeResult m = merge_flight_dumps({d, d, d});
  EXPECT_EQ(m.timeline.size(), 2u);
}

}  // namespace
