#include "mathx/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gsx::mathx {

double quantile(std::span<const double> data, double p) {
  GSX_REQUIRE(!data.empty(), "quantile: empty data");
  GSX_REQUIRE(p >= 0.0 && p <= 1.0, "quantile: p must be in [0,1]");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> data) { return quantile(data, 0.5); }

double mean(std::span<const double> data) {
  GSX_REQUIRE(!data.empty(), "mean: empty data");
  double s = 0.0;
  for (double v : data) s += v;
  return s / static_cast<double>(data.size());
}

double variance(std::span<const double> data) {
  if (data.size() < 2) return 0.0;
  const double m = mean(data);
  double s = 0.0;
  for (double v : data) s += (v - m) * (v - m);
  return s / static_cast<double>(data.size() - 1);
}

double stddev(std::span<const double> data) { return std::sqrt(variance(data)); }

BoxplotSummary boxplot_summary(std::span<const double> data) {
  GSX_REQUIRE(!data.empty(), "boxplot_summary: empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const std::span<const double> s(sorted);
  BoxplotSummary b;
  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = quantile(s, 0.25);
  b.median = quantile(s, 0.5);
  b.q3 = quantile(s, 0.75);
  b.mean = mean(s);
  b.n = sorted.size();
  return b;
}

double mspe(std::span<const double> predicted, std::span<const double> truth) {
  GSX_REQUIRE(predicted.size() == truth.size() && !truth.empty(),
              "mspe: size mismatch or empty");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = predicted[i] - truth[i];
    s += d * d;
  }
  return s / static_cast<double>(truth.size());
}

double mae(std::span<const double> predicted, std::span<const double> truth) {
  GSX_REQUIRE(predicted.size() == truth.size() && !truth.empty(),
              "mae: size mismatch or empty");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::fabs(predicted[i] - truth[i]);
  return s / static_cast<double>(truth.size());
}

std::vector<double> ols_fit(std::span<const double> y, std::span<const double> x_colmajor,
                            std::size_t n, std::size_t p) {
  GSX_REQUIRE(y.size() == n, "ols_fit: y size mismatch");
  GSX_REQUIRE(x_colmajor.size() == n * p, "ols_fit: X size mismatch");
  GSX_REQUIRE(n > p, "ols_fit: underdetermined system");

  // Build the (p+1) x (p+1) normal equations with an intercept column.
  const std::size_t q = p + 1;
  std::vector<double> ata(q * q, 0.0);  // column-major
  std::vector<double> aty(q, 0.0);
  auto col = [&](std::size_t j, std::size_t i) -> double {
    return j == 0 ? 1.0 : x_colmajor[i + (j - 1) * n];
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < q; ++a) {
      const double va = col(a, i);
      aty[a] += va * y[i];
      for (std::size_t b = a; b < q; ++b) ata[a + b * q] += va * col(b, i);
    }
  }
  for (std::size_t a = 0; a < q; ++a)
    for (std::size_t b = 0; b < a; ++b) ata[a + b * q] = ata[b + a * q];

  // Cholesky solve of the small SPD system.
  for (std::size_t k = 0; k < q; ++k) {
    double diag = ata[k + k * q];
    for (std::size_t m = 0; m < k; ++m) diag -= ata[k + m * q] * ata[k + m * q];
    GSX_REQUIRE(diag > 0.0, "ols_fit: rank-deficient design matrix");
    const double lkk = std::sqrt(diag);
    ata[k + k * q] = lkk;
    for (std::size_t i2 = k + 1; i2 < q; ++i2) {
      double v = ata[i2 + k * q];
      for (std::size_t m = 0; m < k; ++m) v -= ata[i2 + m * q] * ata[k + m * q];
      ata[i2 + k * q] = v / lkk;
    }
  }
  std::vector<double> beta = aty;
  for (std::size_t i = 0; i < q; ++i) {  // forward
    for (std::size_t m = 0; m < i; ++m) beta[i] -= ata[i + m * q] * beta[m];
    beta[i] /= ata[i + i * q];
  }
  for (std::size_t ii = q; ii-- > 0;) {  // backward with L^T
    for (std::size_t m = ii + 1; m < q; ++m) beta[ii] -= ata[m + ii * q] * beta[m];
    beta[ii] /= ata[ii + ii * q];
  }
  return beta;
}

std::vector<double> ols_predict(std::span<const double> coeffs,
                                std::span<const double> x_colmajor, std::size_t n,
                                std::size_t p) {
  GSX_REQUIRE(coeffs.size() == p + 1, "ols_predict: coefficient count mismatch");
  GSX_REQUIRE(x_colmajor.size() == n * p, "ols_predict: X size mismatch");
  std::vector<double> yhat(n, coeffs[0]);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i) yhat[i] += coeffs[j + 1] * x_colmajor[i + j * n];
  return yhat;
}

}  // namespace gsx::mathx
