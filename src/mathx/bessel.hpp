// Modified Bessel function of the second kind, K_nu, for real order nu >= 0.
//
// The Matérn covariance C(r) = sigma^2 * 2^{1-nu}/Gamma(nu) * (r)^nu * K_nu(r)
// requires K_nu for arbitrary real smoothness nu, evaluated O(n^2) times
// during covariance-matrix generation. The implementation follows the
// classical approach (Temme's series for x <= 2, Steed's second continued
// fraction for x > 2, upward recurrence in the order).
#pragma once

namespace gsx::mathx {

/// K_nu(x) for x > 0, any real nu (K_{-nu} = K_nu). Throws InvalidArgument
/// for x <= 0 or non-finite inputs. Relative accuracy ~1e-14 over the range
/// exercised by geostatistics (x in [1e-8, 700], nu in [0.01, 30]).
double bessel_k(double nu, double x);

/// exp(x) * K_nu(x): numerically stable for large x where K_nu underflows.
double bessel_k_scaled(double nu, double x);

/// Modified Bessel function of the first kind, I_nu(x), x > 0, nu >= 0.
/// (Computed by the same routine; exposed for testing the Wronskian
/// identity I_nu(x) K_{nu+1}(x) + I_{nu+1}(x) K_nu(x) = 1/x.)
double bessel_i(double nu, double x);

}  // namespace gsx::mathx
