// Summary statistics used by the accuracy experiments (boxplots, MSPE).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gsx::mathx {

/// Five-number summary plus mean: the data behind one boxplot in Fig. 6.
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;      ///< first quartile
  double median = 0.0;
  double q3 = 0.0;      ///< third quartile
  double max = 0.0;
  double mean = 0.0;
  std::size_t n = 0;
};

/// Linear-interpolation quantile (type 7, the R default) of unsorted data.
double quantile(std::span<const double> data, double p);

/// Median of unsorted data.
double median(std::span<const double> data);

double mean(std::span<const double> data);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> data);

double stddev(std::span<const double> data);

/// Five-number summary + mean of unsorted data.
BoxplotSummary boxplot_summary(std::span<const double> data);

/// Mean squared prediction error between predictions and truth.
double mspe(std::span<const double> predicted, std::span<const double> truth);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> truth);

/// Ordinary least squares fit y ~ 1 + X (X column-major n x p).
/// Returns p+1 coefficients (intercept first). Used by the detrending
/// pipeline the paper applies to the evapotranspiration dataset.
std::vector<double> ols_fit(std::span<const double> y, std::span<const double> x_colmajor,
                            std::size_t n, std::size_t p);

/// Evaluate an OLS fit at rows of X (column-major n x p).
std::vector<double> ols_predict(std::span<const double> coeffs,
                                std::span<const double> x_colmajor, std::size_t n,
                                std::size_t p);

}  // namespace gsx::mathx
