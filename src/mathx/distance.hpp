// Distance metrics between observation locations.
#pragma once

namespace gsx::mathx {

/// Euclidean distance in the plane.
double euclidean2d(double x1, double y1, double x2, double y2);

/// Great-circle distance on the unit sphere between (lon, lat) pairs given
/// in degrees, via the haversine formula. Multiply by the Earth radius for
/// kilometres; geostatistical range parameters absorb the scale.
double haversine_deg(double lon1, double lat1, double lon2, double lat2);

}  // namespace gsx::mathx
