#include "mathx/distance.hpp"

#include <cmath>

namespace gsx::mathx {

namespace {
constexpr double kDegToRad = 3.141592653589793238462643383279502884 / 180.0;
}

double euclidean2d(double x1, double y1, double x2, double y2) {
  return std::hypot(x1 - x2, y1 - y2);
}

double haversine_deg(double lon1, double lat1, double lon2, double lat2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlam = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) * std::sin(dlam / 2);
  return 2.0 * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace gsx::mathx
