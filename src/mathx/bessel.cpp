#include "mathx/bessel.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gsx::mathx {

namespace {

constexpr double kEps = 1.0e-16;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
constexpr int kMaxIter = 10000;
constexpr double kXMin = 2.0;  // series/continued-fraction switch point
constexpr double kPi = 3.141592653589793238462643383279502884;

/// Chebyshev series evaluation on [a, b].
double chebev(double a, double b, const double* c, int m, double x) {
  double d = 0.0, dd = 0.0;
  const double y = (2.0 * x - a - b) / (b - a);
  const double y2 = 2.0 * y;
  for (int j = m - 1; j >= 1; --j) {
    const double sv = d;
    d = y2 * d - dd + c[j];
    dd = sv;
  }
  return y * d - dd + 0.5 * c[0];
}

struct GammaPair {
  double gam1;   // [1/Gamma(1-x) - 1/Gamma(1+x)] / (2x)
  double gam2;   // [1/Gamma(1-x) + 1/Gamma(1+x)] / 2
  double gampl;  // 1/Gamma(1+x)
  double gammi;  // 1/Gamma(1-x)
};

/// Chebyshev fits for the Gamma combinations needed by Temme's series,
/// valid for |x| <= 1/2 (Numerical Recipes "beschb").
GammaPair beschb(double x) {
  static constexpr std::array<double, 7> c1 = {
      -1.142022680371168e0, 6.5165112670737e-3,  3.087090173086e-4,
      -3.4706269649e-6,     6.9437664e-9,        3.67795e-11,
      -1.356e-13};
  static constexpr std::array<double, 8> c2 = {
      1.843740587300905e0, -7.68528408447867e-2, 1.2719271366546e-3,
      -4.9717367042e-6,    -3.31261198e-8,       2.423096e-10,
      -1.702e-13,          -1.49e-15};
  const double xx = 8.0 * x * x - 1.0;
  GammaPair g{};
  g.gam1 = chebev(-1.0, 1.0, c1.data(), static_cast<int>(c1.size()), xx);
  g.gam2 = chebev(-1.0, 1.0, c2.data(), static_cast<int>(c2.size()), xx);
  g.gampl = g.gam2 - x * g.gam1;
  g.gammi = g.gam2 + x * g.gam1;
  return g;
}

struct BessIK {
  double i;  // I_nu(x)
  double k;  // K_nu(x), scaled by exp(x) if `scaled`
};

/// Joint evaluation of I_nu and K_nu following the Steed/Temme scheme.
/// With scaled=true returns K multiplied by exp(x) (I is then invalid).
BessIK bessik(double nu, double x, bool scaled) {
  GSX_REQUIRE(std::isfinite(x) && x > 0.0, "bessel: x must be positive and finite");
  GSX_REQUIRE(std::isfinite(nu), "bessel: nu must be finite");
  nu = std::fabs(nu);  // K_{-nu} = K_nu; I only requested for nu >= 0

  const int nl = static_cast<int>(nu + 0.5);
  const double xmu = nu - nl;  // in [-1/2, 1/2]
  const double xmu2 = xmu * xmu;
  const double xi = 1.0 / x;
  const double xi2 = 2.0 * xi;

  // CF1 for I'_nu/I_nu.
  double h = nu * xi;
  if (h < kFpMin) h = kFpMin;
  double b = xi2 * nu;
  double d = 0.0;
  double c = h;
  int iter = 0;
  for (; iter < kMaxIter; ++iter) {
    b += xi2;
    d = 1.0 / (b + d);
    c = b + 1.0 / c;
    const double del = c * d;
    h = del * h;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  GSX_REQUIRE(iter < kMaxIter, "bessel: CF1 failed to converge (x too large for order?)");

  // Downward recurrence of an unnormalised I from order nu to xmu.
  double ril = kFpMin;
  double ripl = h * ril;
  const double ril1 = ril;
  double fact = nu * xi;
  for (int l = nl; l >= 1; --l) {
    const double ritemp = fact * ril + ripl;
    fact -= xi;
    ripl = fact * ritemp + ril;
    ril = ritemp;
  }
  const double f = ripl / ril;  // I'_xmu/I_xmu

  double rkmu, rk1;
  if (x < kXMin) {
    // Temme's series for K_xmu and K_{xmu+1}.
    const double x2 = 0.5 * x;
    const double pimu = kPi * xmu;
    const double fct = (std::fabs(pimu) < kEps) ? 1.0 : pimu / std::sin(pimu);
    double dlog = -std::log(x2);
    double e = xmu * dlog;
    const double fact2 = (std::fabs(e) < kEps) ? 1.0 : std::sinh(e) / e;
    const GammaPair g = beschb(xmu);
    double ff = fct * (g.gam1 * std::cosh(e) + g.gam2 * fact2 * dlog);
    double sum = ff;
    e = std::exp(e);
    double p = 0.5 * e / g.gampl;
    double q = 0.5 / (e * g.gammi);
    double cc = 1.0;
    const double d2 = x2 * x2;
    double sum1 = p;
    int i = 1;
    for (; i <= kMaxIter; ++i) {
      ff = (i * ff + p + q) / (i * i - xmu2);
      cc *= d2 / i;
      p /= (i - xmu);
      q /= (i + xmu);
      const double del = cc * ff;
      sum += del;
      const double del1 = cc * (p - i * ff);
      sum1 += del1;
      if (std::fabs(del) < std::fabs(sum) * kEps) break;
    }
    GSX_REQUIRE(i <= kMaxIter, "bessel: Temme series failed to converge");
    rkmu = sum;
    rk1 = sum1 * xi2;
    if (scaled) {
      const double ex = std::exp(x);
      rkmu *= ex;
      rk1 *= ex;
    }
  } else {
    // Steed's CF2 for K_xmu; yields exp(-x)-scaled values naturally.
    double bb = 2.0 * (1.0 + x);
    double dd = 1.0 / bb;
    double delh = dd;
    double hh = delh;
    double q1 = 0.0, q2 = 1.0;
    const double a1 = 0.25 - xmu2;
    double qq = a1;
    double cc = a1;
    double aa = -a1;
    double s = 1.0 + qq * delh;
    int i = 2;
    for (; i <= kMaxIter; ++i) {
      aa -= 2 * (i - 1);
      cc = -aa * cc / i;
      const double qnew = (q1 - bb * q2) / aa;
      q1 = q2;
      q2 = qnew;
      qq += cc * qnew;
      bb += 2.0;
      dd = 1.0 / (bb + aa * dd);
      delh = (bb * dd - 1.0) * delh;
      hh += delh;
      const double dels = qq * delh;
      s += dels;
      if (std::fabs(dels / s) < kEps) break;
    }
    GSX_REQUIRE(i <= kMaxIter, "bessel: CF2 failed to converge");
    hh = a1 * hh;
    const double scale = scaled ? 1.0 : std::exp(-x);
    rkmu = std::sqrt(kPi / (2.0 * x)) * scale / s;
    rk1 = rkmu * (xmu + x + 0.5 - hh) * xi;
  }

  // I_xmu from the Wronskian, then recurrences back up to order nu.
  const double rkmup = xmu * xi * rkmu - rk1;
  const double rimu = xi / (f * rkmu - rkmup);
  const double ri = (rimu * ril1) / ril;
  double kmu = rkmu;
  double k1 = rk1;
  for (int i = 1; i <= nl; ++i) {
    const double rktemp = (xmu + i) * xi2 * k1 + kmu;
    kmu = k1;
    k1 = rktemp;
  }
  return BessIK{ri, kmu};
}

}  // namespace

double bessel_k(double nu, double x) { return bessik(nu, x, /*scaled=*/false).k; }

double bessel_k_scaled(double nu, double x) { return bessik(nu, x, /*scaled=*/true).k; }

double bessel_i(double nu, double x) {
  GSX_REQUIRE(nu >= 0.0, "bessel_i: order must be non-negative");
  return bessik(nu, x, /*scaled=*/false).i;
}

}  // namespace gsx::mathx
