// Low-rank compression of dense tiles: A ~= U V^T to a target accuracy.
//
// The paper compresses off-diagonal tiles "up to a target accuracy
// threshold" (1e-8 for the geostatistics application). Three compressors are
// provided — deterministic truncated SVD (the reference), adaptive cross
// approximation (ACA, the cheap streaming alternative), and randomized SVD —
// plus the QR-based recompression ("rounding") used after low-rank additions
// inside the TLR Cholesky.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/span2d.hpp"
#include "la/matrix.hpp"

namespace gsx::tlr {

enum class TolMode : unsigned char {
  RelativeFrobenius,  ///< ||A - UV^T||_F <= tol * ||A||_F
  Absolute,           ///< ||A - UV^T||_F <= tol
};

enum class CompressionMethod : unsigned char { SVD, ACA, RSVD };

struct Compressed {
  la::Matrix<double> u;  ///< m x k
  la::Matrix<double> v;  ///< n x k
  [[nodiscard]] std::size_t rank() const noexcept { return u.cols(); }
};

/// Truncated SVD compression (deterministic reference).
Compressed compress_svd(Span2D<const double> a, double tol,
                        TolMode mode = TolMode::RelativeFrobenius);

/// Adaptive cross approximation with partial pivoting; may overshoot the
/// rank slightly, so the result is recompressed to the same tolerance.
Compressed compress_aca(Span2D<const double> a, double tol,
                        TolMode mode = TolMode::RelativeFrobenius);

/// Randomized SVD: adaptive rank doubling with one power iteration.
Compressed compress_rsvd(Span2D<const double> a, double tol, Rng& rng,
                         TolMode mode = TolMode::RelativeFrobenius);

/// Dispatch on method (RSVD draws from `rng`; others ignore it).
Compressed compress(CompressionMethod method, Span2D<const double> a, double tol, Rng& rng,
                    TolMode mode = TolMode::RelativeFrobenius);

/// How low-rank sums are rounded back to the tolerance.
enum class RoundingMethod : unsigned char {
  QrSvd,  ///< two thin QRs + SVD of the small core (reference accuracy)
  Rrqr,   ///< one thin QR + one column-pivoted QR (no SVD, ~2-4x cheaper)
};

/// QR-based rounding of a low-rank representation: replaces (u, v) by an
/// equivalent factorization truncated to `tol`. Used after LR additions
/// (GEMM accumulation into a low-rank tile).
void recompress(la::Matrix<double>& u, la::Matrix<double>& v, double tol,
                TolMode mode = TolMode::RelativeFrobenius,
                RoundingMethod method = RoundingMethod::QrSvd);

/// ||A - U V^T||_F (testing helper).
double lowrank_error(Span2D<const double> a, const la::Matrix<double>& u,
                     const la::Matrix<double>& v);

}  // namespace gsx::tlr
