#include "tlr/lr_kernels.hpp"

#include "common/error.hpp"
#include "obs/flops.hpp"

namespace gsx::tlr {

using la::Trans;

namespace {

// All low-rank kernels compute in FP64 (operands are promoted by the
// callers); attribute their work to the FP64 row of the flop ledger.
inline void lr_flops(obs::KernelOp op, std::uint64_t flops) {
  obs::add_flops(op, Precision::FP64, flops);
}

}  // namespace

void lr_trsm_right_lower_trans(Span2D<const double> l, la::Matrix<double>& v) {
  GSX_REQUIRE(l.rows() == v.rows(), "lr_trsm: L order must match V rows");
  if (v.cols() == 0) return;
  lr_flops(obs::KernelOp::LrTrsm, obs::trsm_flops(v.cols(), v.rows()));
  auto vv = v.view();
  la::trsm<double>(la::Side::Left, la::Uplo::Lower, Trans::NoTrans, la::Diag::NonUnit, 1.0,
                   l, vv);
}

void gemm_lr_lr_dense(double alpha, const LrView& a, const LrView& b, Span2D<double> c) {
  const std::size_t ka = a.rank();
  const std::size_t kb = b.rank();
  if (ka == 0 || kb == 0) return;
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(ka, kb, a.v.rows()) +
                                      obs::gemm_flops(a.u.rows(), kb, ka) +
                                      obs::gemm_flops(a.u.rows(), b.u.rows(), kb));
  // M = Va^T Vb (ka x kb), W = Ua M (m x kb), C += alpha W Ub^T.
  la::Matrix<double> m(ka, kb);
  la::gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, a.v, b.v, 0.0, m.view());
  la::Matrix<double> w(a.u.rows(), kb);
  la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a.u, m.cview(), 0.0, w.view());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, alpha, w.cview(), b.u, 1.0, c);
}

void gemm_lr_dense_dense(double alpha, const LrView& a, Span2D<const double> b,
                         Span2D<double> c) {
  const std::size_t ka = a.rank();
  if (ka == 0) return;
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(b.rows(), ka, a.v.rows()) +
                                      obs::gemm_flops(a.u.rows(), b.rows(), ka));
  // A B^T = Ua (B Va)^T; W = B Va (n x ka), C += alpha Ua W^T.
  la::Matrix<double> w(b.rows(), ka);
  la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, b, a.v, 0.0, w.view());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, alpha, a.u, w.cview(), 1.0, c);
}

void gemm_dense_lr_dense(double alpha, Span2D<const double> a, const LrView& b,
                         Span2D<double> c) {
  const std::size_t kb = b.rank();
  if (kb == 0) return;
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(a.rows(), kb, b.v.rows()) +
                                      obs::gemm_flops(a.rows(), b.u.rows(), kb));
  // A B^T = (A Vb) Ub^T.
  la::Matrix<double> w(a.rows(), kb);
  la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b.v, 0.0, w.view());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, alpha, w.cview(), b.u, 1.0, c);
}

void syrk_lr_dense(double alpha, const LrView& a, Span2D<double> c) {
  const std::size_t k = a.rank();
  if (k == 0) return;
  lr_flops(obs::KernelOp::LrSyrk, obs::gemm_flops(k, k, a.v.rows()) +
                                      obs::gemm_flops(a.u.rows(), k, k) +
                                      obs::gemm_flops(a.u.rows(), a.u.rows(), k));
  // C += alpha U (V^T V) U^T; full dense symmetric write.
  la::Matrix<double> gram(k, k);
  la::gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, a.v, a.v, 0.0, gram.view());
  la::Matrix<double> w(a.u.rows(), k);
  la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a.u, gram.cview(), 0.0, w.view());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, alpha, w.cview(), a.u, 1.0, c);
}

LrProduct product_lr_lr(const LrView& a, const LrView& b) {
  const std::size_t ka = a.rank();
  const std::size_t kb = b.rank();
  lr_flops(obs::KernelOp::LrGemm,
           obs::gemm_flops(ka, kb, a.v.rows()) +
               obs::gemm_flops(ka <= kb ? b.u.rows() : a.u.rows(), ka <= kb ? ka : kb,
                               ka <= kb ? kb : ka));
  LrProduct p;
  // (Ua Va^T)(Vb Ub^T... ) = Ua (Va^T Vb) Ub^T; keep the smaller rank side
  // as the untouched factor.
  la::Matrix<double> m(ka, kb);
  if (ka > 0 && kb > 0)
    la::gemm<double>(Trans::Trans, Trans::NoTrans, 1.0, a.v, b.v, 0.0, m.view());
  if (ka <= kb) {
    // U_p = Ua (m x ka), V_p = Ub M^T (n x ka).
    p.u.resize(a.u.rows(), ka);
    for (std::size_t j = 0; j < ka; ++j)
      for (std::size_t i = 0; i < a.u.rows(); ++i) p.u(i, j) = a.u(i, j);
    p.v.resize(b.u.rows(), ka);
    if (ka > 0 && kb > 0)
      la::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, b.u, m.cview(), 0.0, p.v.view());
  } else {
    // U_p = Ua M (m x kb), V_p = Ub.
    p.u.resize(a.u.rows(), kb);
    la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a.u, m.cview(), 0.0, p.u.view());
    p.v.resize(b.u.rows(), kb);
    for (std::size_t j = 0; j < kb; ++j)
      for (std::size_t i = 0; i < b.u.rows(); ++i) p.v(i, j) = b.u(i, j);
  }
  return p;
}

LrProduct product_lr_dense(const LrView& a, Span2D<const double> b) {
  // A B^T = Ua (B Va)^T: rank ka.
  const std::size_t ka = a.rank();
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(b.rows(), ka, a.v.rows()));
  LrProduct p;
  p.u.resize(a.u.rows(), ka);
  for (std::size_t j = 0; j < ka; ++j)
    for (std::size_t i = 0; i < a.u.rows(); ++i) p.u(i, j) = a.u(i, j);
  p.v.resize(b.rows(), ka);
  if (ka > 0)
    la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, b, a.v, 0.0, p.v.view());
  return p;
}

LrProduct product_dense_lr(Span2D<const double> a, const LrView& b) {
  // A B^T = (A Vb) Ub^T: rank kb.
  const std::size_t kb = b.rank();
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(a.rows(), kb, b.v.rows()));
  LrProduct p;
  p.u.resize(a.rows(), kb);
  if (kb > 0)
    la::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b.v, 0.0, p.u.view());
  p.v.resize(b.u.rows(), kb);
  for (std::size_t j = 0; j < kb; ++j)
    for (std::size_t i = 0; i < b.u.rows(); ++i) p.v(i, j) = b.u(i, j);
  return p;
}

LrProduct product_dense_dense(Span2D<const double> a, Span2D<const double> b, double tol) {
  lr_flops(obs::KernelOp::LrGemm, obs::gemm_flops(a.rows(), b.rows(), a.cols()));
  la::Matrix<double> full(a.rows(), b.rows());
  la::gemm<double>(Trans::NoTrans, Trans::Trans, 1.0, a, b, 0.0, full.view());
  Compressed c = compress_svd(full.cview(), tol, TolMode::Absolute);
  return LrProduct{std::move(c.u), std::move(c.v)};
}

void lr_axpy_rounded(double alpha, const LrProduct& p, la::Matrix<double>& uc,
                     la::Matrix<double>& vc, double abs_tol, RoundingMethod method) {
  const std::size_t kc = uc.cols();
  const std::size_t kp = p.u.cols();
  GSX_REQUIRE(uc.rows() == p.u.rows() && vc.rows() == p.v.rows(),
              "lr_axpy_rounded: shape mismatch");
  if (kp == 0) return;
  // QR-based rounding cost estimate: two skinny QRs at the concatenated
  // rank plus the small-core SVD (dominated by the QRs).
  const std::uint64_t kr = kc + kp;
  lr_flops(obs::KernelOp::Compress, 4 * (uc.rows() + vc.rows()) * kr * kr);
  la::Matrix<double> u2(uc.rows(), kc + kp);
  la::Matrix<double> v2(vc.rows(), kc + kp);
  for (std::size_t j = 0; j < kc; ++j) {
    for (std::size_t i = 0; i < uc.rows(); ++i) u2(i, j) = uc(i, j);
    for (std::size_t i = 0; i < vc.rows(); ++i) v2(i, j) = vc(i, j);
  }
  for (std::size_t j = 0; j < kp; ++j) {
    for (std::size_t i = 0; i < uc.rows(); ++i) u2(i, kc + j) = alpha * p.u(i, j);
    for (std::size_t i = 0; i < vc.rows(); ++i) v2(i, kc + j) = p.v(i, j);
  }
  recompress(u2, v2, abs_tol, TolMode::Absolute, method);
  uc = std::move(u2);
  vc = std::move(v2);
}

void lr_gemv(double alpha, const LrView& a, const double* x, double* y) {
  const std::size_t k = a.rank();
  if (k == 0) return;
  lr_flops(obs::KernelOp::Krige, 2 * k * (a.u.rows() + a.v.rows()));
  std::vector<double> t(k, 0.0);
  la::gemv<double>(Trans::Trans, 1.0, a.v, x, 0.0, t.data());
  la::gemv<double>(Trans::NoTrans, alpha, a.u, t.data(), 1.0, y);
}

void lr_gemv_trans(double alpha, const LrView& a, const double* x, double* y) {
  const std::size_t k = a.rank();
  if (k == 0) return;
  lr_flops(obs::KernelOp::Krige, 2 * k * (a.u.rows() + a.v.rows()));
  std::vector<double> t(k, 0.0);
  la::gemv<double>(Trans::Trans, 1.0, a.u, x, 0.0, t.data());
  la::gemv<double>(Trans::NoTrans, alpha, a.v, t.data(), 1.0, y);
}

}  // namespace gsx::tlr
