#include "tlr/compression.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"

namespace gsx::tlr {

namespace {

/// Truncation rank for a descending singular spectrum: smallest k with
/// sqrt(sum_{i>=k} s_i^2) <= threshold.
std::size_t truncation_rank(const std::vector<double>& s, double threshold) {
  // Tail energies computed back-to-front.
  std::size_t k = s.size();
  double tail = 0.0;
  while (k > 0) {
    const double cand = tail + s[k - 1] * s[k - 1];
    if (std::sqrt(cand) > threshold) break;
    tail = cand;
    --k;
  }
  return k;
}

double resolve_threshold(double tol, TolMode mode, double norm_f) {
  return (mode == TolMode::RelativeFrobenius) ? tol * norm_f : tol;
}

Compressed take_svd_factors(const la::Matrix<double>& u_full, const std::vector<double>& s,
                            const la::Matrix<double>& v_full, std::size_t k) {
  Compressed out;
  out.u.resize(u_full.rows(), k);
  out.v.resize(v_full.rows(), k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < u_full.rows(); ++i) out.u(i, j) = u_full(i, j) * s[j];
    for (std::size_t i = 0; i < v_full.rows(); ++i) out.v(i, j) = v_full(i, j);
  }
  return out;
}

}  // namespace

Compressed compress_svd(Span2D<const double> a, double tol, TolMode mode) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  la::Matrix<double> work(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) work(i, j) = a(i, j);

  la::Matrix<double> u, v;
  std::vector<double> s;
  la::svd_jacobi(work, u, s, v);

  const double norm_f = la::norm_frobenius<double>(a);
  const std::size_t k = truncation_rank(s, resolve_threshold(tol, mode, norm_f));
  return take_svd_factors(u, s, v, k);
}

Compressed compress_aca(Span2D<const double> a, double tol, TolMode mode) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double norm_f = la::norm_frobenius<double>(a);
  const double threshold = resolve_threshold(tol, mode, norm_f);
  const std::size_t max_rank = std::min(m, n);

  std::vector<std::vector<double>> us, vs;  // rank-1 terms
  std::vector<bool> row_used(m, false), col_used(n, false);

  // Residual access: R(i,j) = A(i,j) - sum_t us[t][i] * vs[t][j].
  auto residual = [&](std::size_t i, std::size_t j) {
    double r = a(i, j);
    for (std::size_t t = 0; t < us.size(); ++t) r -= us[t][i] * vs[t][j];
    return r;
  };

  double approx_norm_sq = 0.0;
  std::size_t next_row = 0;
  for (std::size_t it = 0; it < max_rank; ++it) {
    // Pivot row: first unused (classic partial pivoting starts from the
    // residual row of the previous pivot; a fresh unused row is more robust
    // for covariance blocks with decaying structure).
    while (next_row < m && row_used[next_row]) ++next_row;
    if (next_row >= m) break;
    std::size_t pi = next_row;

    // Pivot column: max |residual| in the pivot row.
    std::vector<double> row(n);
    double best = 0.0;
    std::size_t pj = n;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = residual(pi, j);
      if (!col_used[j] && std::fabs(row[j]) > best) {
        best = std::fabs(row[j]);
        pj = j;
      }
    }
    if (pj == n || best == 0.0) {
      row_used[pi] = true;
      continue;
    }
    // Improve the pivot row choice: max |residual| within the pivot column.
    std::vector<double> col(m);
    double cbest = 0.0;
    std::size_t ci = pi;
    for (std::size_t i = 0; i < m; ++i) {
      col[i] = residual(i, pj);
      if (!row_used[i] && std::fabs(col[i]) > cbest) {
        cbest = std::fabs(col[i]);
        ci = i;
      }
    }
    if (ci != pi) {
      pi = ci;
      for (std::size_t j = 0; j < n; ++j) row[j] = residual(pi, j);
    }
    const double pivot = row[pj];
    if (pivot == 0.0) {
      row_used[pi] = true;
      continue;
    }

    std::vector<double> uvec(m), vvec(n);
    for (std::size_t i = 0; i < m; ++i) uvec[i] = residual(i, pj) / pivot;
    for (std::size_t j = 0; j < n; ++j) vvec[j] = row[j];
    row_used[pi] = true;
    col_used[pj] = true;

    // Stopping criterion: ||u_k|| * ||v_k|| against the running approx norm
    // (standard ACA heuristic for the residual Frobenius norm).
    double nu = 0.0, nv = 0.0;
    for (double x : uvec) nu += x * x;
    for (double x : vvec) nv += x * x;
    const double term = std::sqrt(nu * nv);
    double cross = 0.0;
    for (std::size_t t = 0; t < us.size(); ++t) {
      double du = 0.0, dv = 0.0;
      for (std::size_t i = 0; i < m; ++i) du += us[t][i] * uvec[i];
      for (std::size_t j = 0; j < n; ++j) dv += vs[t][j] * vvec[j];
      cross += du * dv;
    }
    approx_norm_sq += 2.0 * cross + term * term;
    us.push_back(std::move(uvec));
    vs.push_back(std::move(vvec));

    if (term <= threshold) break;
  }

  Compressed out;
  const std::size_t k = us.size();
  out.u.resize(m, k);
  out.v.resize(n, k);
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t i = 0; i < m; ++i) out.u(i, t) = us[t][i];
    for (std::size_t j = 0; j < n; ++j) out.v(j, t) = vs[t][j];
  }
  // ACA over-estimates rank; round down to the tolerance.
  if (k > 0) {
    TolMode round_mode = mode;
    double round_tol = tol;
    if (mode == TolMode::Absolute) {
      round_tol = threshold;
    } else {
      // Recompress against the original matrix norm, not the LR norm.
      round_mode = TolMode::Absolute;
      round_tol = threshold;
    }
    recompress(out.u, out.v, round_tol, round_mode);
  }
  return out;
}

Compressed compress_rsvd(Span2D<const double> a, double tol, Rng& rng, TolMode mode) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double norm_f = la::norm_frobenius<double>(a);
  const double threshold = resolve_threshold(tol, mode, norm_f);
  const std::size_t max_rank = std::min(m, n);

  std::size_t sample = std::min<std::size_t>(max_rank, 8);
  for (;;) {
    const std::size_t p = std::min(max_rank, sample + 8);  // oversampling
    // Range finding with one power iteration: Y = A (A^T (A Omega)).
    la::Matrix<double> omega(n, p);
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t i = 0; i < n; ++i) omega(i, j) = rng.normal();
    la::Matrix<double> y(m, p);
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, a, omega.cview(), 0.0,
                     y.view());
    la::Matrix<double> z(n, p);
    la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, 1.0, a, y.cview(), 0.0, z.view());
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, a, z.cview(), 0.0,
                     y.view());

    la::Matrix<double> q;
    la::qr_factor(y.view(), q);

    // B = Q^T A (p x n), then a small SVD.
    la::Matrix<double> b(p, n);
    la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, 1.0, q.cview(), a, 0.0, b.view());
    la::Matrix<double> ub, vb;
    std::vector<double> s;
    la::svd_jacobi(b, ub, s, vb);

    const std::size_t k = truncation_rank(s, threshold);
    // Accept if the spectrum visibly decayed inside the sample window or the
    // window already covers the full rank.
    if (k < sample || p >= max_rank) {
      Compressed out;
      out.u.resize(m, k);
      out.v.resize(n, k);
      // U = Q * Ub_k scaled by singular values; V = Vb_k.
      la::Matrix<double> ubk(p, k);
      for (std::size_t j = 0; j < k; ++j)
        for (std::size_t i = 0; i < p; ++i) ubk(i, j) = ub(i, j) * s[j];
      if (k > 0)
        la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, q.cview(),
                         ubk.cview(), 0.0, out.u.view());
      for (std::size_t j = 0; j < k; ++j)
        for (std::size_t i = 0; i < n; ++i) out.v(i, j) = vb(i, j);
      return out;
    }
    sample = std::min(max_rank, sample * 2);
  }
}

Compressed compress(CompressionMethod method, Span2D<const double> a, double tol, Rng& rng,
                    TolMode mode) {
  switch (method) {
    case CompressionMethod::SVD: return compress_svd(a, tol, mode);
    case CompressionMethod::ACA: return compress_aca(a, tol, mode);
    case CompressionMethod::RSVD: return compress_rsvd(a, tol, rng, mode);
  }
  GSX_REQUIRE(false, "compress: unknown method");
  return {};
}

namespace {

/// RRQR rounding: A = U V^T = Q_u (R_u V^T); a column-pivoted QR of
/// W^T = (R_u V^T)^T reveals the numerical rank without an SVD. Truncation
/// error equals the Frobenius norm of the dropped trailing rows of R_w.
void recompress_rrqr(la::Matrix<double>& u, la::Matrix<double>& v, double threshold) {
  const std::size_t k = u.cols();
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();

  la::Matrix<double> ru = u;  // QR of U in place
  la::Matrix<double> qu;
  la::qr_factor(ru.view(), qu);

  // W^T = V * R_u^T  (n x k).
  la::Matrix<double> wt(n, k);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, v.cview(),
                   Span2D<const double>(ru.data(), k, k, ru.rows()), 0.0, wt.view());

  la::Matrix<double> qw;
  std::vector<std::size_t> perm;
  la::qr_pivoted(wt.view(), qw, perm);  // wt now holds R_w (k x k upper)

  // Truncation rank: drop trailing rows of R_w whose accumulated Frobenius
  // mass stays below the threshold.
  std::vector<double> row_tail(k + 1, 0.0);
  for (std::size_t l = k; l-- > 0;) {
    double s = 0.0;
    for (std::size_t j = l; j < k; ++j) s += wt(l, j) * wt(l, j);
    row_tail[l] = row_tail[l + 1] + s;
  }
  std::size_t r = k;
  while (r > 0 && std::sqrt(row_tail[r - 1]) <= threshold) --r;

  // U' = Q_u * Y with Y[perm[j], :] = R_w(1:r, j)^T;  V' = Q_w(:, 1:r).
  la::Matrix<double> y(k, r);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t c = 0; c < r; ++c) y(perm[j], c) = wt(c, j);
  la::Matrix<double> new_u(m, r), new_v(n, r);
  if (r > 0) {
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, qu.cview(), y.cview(),
                     0.0, new_u.view());
    for (std::size_t c = 0; c < r; ++c)
      for (std::size_t i = 0; i < n; ++i) new_v(i, c) = qw(i, c);
  }
  u = std::move(new_u);
  v = std::move(new_v);
}

}  // namespace

void recompress(la::Matrix<double>& u, la::Matrix<double>& v, double tol, TolMode mode,
                RoundingMethod method) {
  const std::size_t k = u.cols();
  GSX_REQUIRE(v.cols() == k, "recompress: U/V rank mismatch");
  if (k == 0) return;
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();

  // If the rank is not actually smaller than the block, fall back to SVD of
  // the materialized product (QR needs tall factors).
  if (k > m || k > n) {
    la::Matrix<double> full(m, n);
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                     full.view());
    Compressed c = compress_svd(full.cview(), tol, mode);
    u = std::move(c.u);
    v = std::move(c.v);
    return;
  }

  if (method == RoundingMethod::Rrqr) {
    double threshold = tol;
    if (mode == TolMode::RelativeFrobenius) {
      // ||U V^T||_F without materializing: Frobenius of R_u R_v^T is what
      // the QrSvd path uses; a cheap upper proxy here is ||U||_F * ||V||_2
      // — instead reuse the exact product-of-QR-cores norm computed below.
      la::Matrix<double> ru = u, rv = v, qtmp;
      la::qr_factor(ru.view(), qtmp);
      la::qr_factor(rv.view(), qtmp);
      la::Matrix<double> core(k, k);
      la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0,
                       Span2D<const double>(ru.data(), k, k, ru.rows()),
                       Span2D<const double>(rv.data(), k, k, rv.rows()), 0.0, core.view());
      threshold = tol * la::norm_frobenius<double>(core.cview());
    }
    recompress_rrqr(u, v, threshold);
    return;
  }

  // U = Qu Ru, V = Qv Rv;  U V^T = Qu (Ru Rv^T) Qv^T; SVD the small core.
  la::Matrix<double> qu, qv;
  la::Matrix<double> ru = u;  // will hold R in its upper triangle
  la::Matrix<double> rv = v;
  la::qr_factor(ru.view(), qu);
  la::qr_factor(rv.view(), qv);

  la::Matrix<double> core(k, k);
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0,
                   Span2D<const double>(ru.data(), k, k, ru.rows()),
                   Span2D<const double>(rv.data(), k, k, rv.rows()), 0.0, core.view());

  la::Matrix<double> uc, vc;
  std::vector<double> s;
  la::svd_jacobi(core, uc, s, vc);

  double norm_f = 0.0;
  for (double sv : s) norm_f += sv * sv;
  norm_f = std::sqrt(norm_f);  // == ||U V^T||_F
  const double threshold = resolve_threshold(tol, mode, norm_f);
  const std::size_t r = truncation_rank(s, threshold);

  la::Matrix<double> ucr(k, r), vcr(k, r);
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t i = 0; i < k; ++i) ucr(i, j) = uc(i, j) * s[j];
    for (std::size_t i = 0; i < k; ++i) vcr(i, j) = vc(i, j);
  }
  la::Matrix<double> new_u(m, r), new_v(n, r);
  if (r > 0) {
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, qu.cview(), ucr.cview(),
                     0.0, new_u.view());
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, 1.0, qv.cview(), vcr.cview(),
                     0.0, new_v.view());
  }
  u = std::move(new_u);
  v = std::move(new_v);
}

double lowrank_error(Span2D<const double> a, const la::Matrix<double>& u,
                     const la::Matrix<double>& v) {
  la::Matrix<double> rec(a.rows(), a.cols());
  if (u.cols() > 0)
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, u.cview(), v.cview(), 0.0,
                     rec.view());
  double s = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double d = rec(i, j) - a(i, j);
      s += d * d;
    }
  return std::sqrt(s);
}

}  // namespace gsx::tlr
