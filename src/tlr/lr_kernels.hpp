// Low-rank tile kernels for the TLR Cholesky (HiCMA-style algebra).
//
// Off-diagonal tiles are A = U V^T. The factorization needs:
//   TRSM  : (U V^T) L^{-T}        = U (L^{-1} V)^T          — touches V only
//   SYRK  : C -= (U V^T)(U V^T)^T = C - U (V^T V) U^T       — small core
//   GEMM  : C -= A_ik A_jk^T for every dense/LR combination of the three
//           tiles, with LR x LR products of rank min(k_ik, k_jk) followed by
//           QR-based rounding when accumulating into an LR tile.
#pragma once

#include "common/span2d.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "tlr/compression.hpp"

namespace gsx::tlr {

/// Non-owning view of a low-rank factorization A = U V^T.
struct LrView {
  Span2D<const double> u;  ///< m x k
  Span2D<const double> v;  ///< n x k
  [[nodiscard]] std::size_t rank() const noexcept { return u.cols(); }
};

/// B := B * L^{-T} for B = U V^T and L lower triangular: V := L^{-1} V.
void lr_trsm_right_lower_trans(Span2D<const double> l, la::Matrix<double>& v);

/// C += alpha * (Ua Va^T) (Ub Vb^T)^T, C dense.
void gemm_lr_lr_dense(double alpha, const LrView& a, const LrView& b, Span2D<double> c);

/// C += alpha * (Ua Va^T) * B^T, C dense, B dense.
void gemm_lr_dense_dense(double alpha, const LrView& a, Span2D<const double> b,
                         Span2D<double> c);

/// C += alpha * A * (Ub Vb^T)^T, C dense, A dense.
void gemm_dense_lr_dense(double alpha, Span2D<const double> a, const LrView& b,
                         Span2D<double> c);

/// C += alpha * (U V^T)(U V^T)^T for a symmetric dense C (full storage);
/// the SYRK of the TLR panel onto a diagonal tile.
void syrk_lr_dense(double alpha, const LrView& a, Span2D<double> c);

/// Product P = (op A)(op B)^T in low-rank form; rank(P) = min(rank inputs)
/// for LR operands. For dense x dense the product is materialized and
/// compressed to `tol` (rare: both operands inside the dense band).
struct LrProduct {
  la::Matrix<double> u;
  la::Matrix<double> v;
};

LrProduct product_lr_lr(const LrView& a, const LrView& b);
LrProduct product_lr_dense(const LrView& a, Span2D<const double> b);
LrProduct product_dense_lr(Span2D<const double> a, const LrView& b);
LrProduct product_dense_dense(Span2D<const double> a, Span2D<const double> b, double tol);

/// Accumulate C := C + alpha * P into a low-rank tile (uc, vc), followed by
/// rounding to `abs_tol` (absolute Frobenius threshold) with the chosen
/// method (QR+SVD reference or the cheaper RRQR).
void lr_axpy_rounded(double alpha, const LrProduct& p, la::Matrix<double>& uc,
                     la::Matrix<double>& vc, double abs_tol,
                     RoundingMethod method = RoundingMethod::QrSvd);

/// y += alpha * (U V^T) x  (tile GEMV for the triangular solve phase).
void lr_gemv(double alpha, const LrView& a, const double* x, double* y);

/// y += alpha * (U V^T)^T x.
void lr_gemv_trans(double alpha, const LrView& a, const double* x, double* y);

}  // namespace gsx::tlr
