// IEEE 754 binary16 ("half") storage type with float conversion.
//
// Fugaku's A64FX provides hardware FP16; on commodity hardware we emulate the
// *storage* format in software and perform arithmetic in FP32, which matches
// the accuracy-relevant behaviour of an FP16 GEMM with FP32 accumulation
// (the kernel the paper requires for MLE and obtained from BLIS on Fugaku).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace gsx {

namespace detail {

// Round-to-nearest-even conversion of a binary32 bit pattern to binary16.
constexpr std::uint16_t f32_bits_to_f16_bits(std::uint32_t f) noexcept {
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t exp32 = (f >> 23) & 0xffu;
  std::uint32_t mant = f & 0x007fffffu;

  if (exp32 == 0xffu) {  // Inf / NaN
    // Preserve NaN-ness; collapse payload to a quiet NaN.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x0200u : 0u));
  }

  const std::int32_t exp = static_cast<std::int32_t>(exp32) - 127 + 15;
  if (exp >= 0x1f) {  // overflow -> signed infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exp <= 0) {  // subnormal half (or underflow to zero)
    if (exp < -10) return static_cast<std::uint16_t>(sign);  // too small
    mant |= 0x00800000u;  // add implicit leading 1
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);
    const std::uint32_t half_ulp = 1u << (shift - 1);
    std::uint32_t result = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    if (rem > half_ulp || (rem == half_ulp && (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normalised half.
  std::uint32_t result = (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) ++result;  // may carry into exponent: fine
  return static_cast<std::uint16_t>(sign | result);
}

constexpr std::uint32_t f16_bits_to_f32_bits(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;

  if (exp == 0x1fu) {  // Inf / NaN
    return sign | 0x7f800000u | (mant << 13);
  }
  if (exp == 0) {
    if (mant == 0) return sign;  // signed zero
    // subnormal: normalise
    std::int32_t e = -1;
    do {
      mant <<= 1;
      ++e;
    } while ((mant & 0x400u) == 0);
    mant &= 0x3ffu;
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return sign | (exp32 << 23) | (mant << 13);
  }
  return sign | ((exp - 15 + 127) << 23) | (mant << 13);
}

}  // namespace detail

/// IEEE 754 binary16 value. Storage-only: arithmetic promotes to float.
class half {
 public:
  constexpr half() noexcept = default;

  explicit half(float f) noexcept {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    bits_ = detail::f32_bits_to_f16_bits(bits);
  }
  explicit half(double d) noexcept : half(static_cast<float>(d)) {}

  /// Reinterpret raw binary16 bits.
  static constexpr half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  explicit operator float() const noexcept {
    const std::uint32_t bits32 = detail::f16_bits_to_f32_bits(bits_);
    float f;
    std::memcpy(&f, &bits32, sizeof(f));
    return f;
  }
  explicit operator double() const noexcept { return static_cast<double>(static_cast<float>(*this)); }

  friend constexpr bool operator==(half a, half b) noexcept {
    // IEEE semantics: NaN != NaN; +0 == -0.
    if (a.is_nan() || b.is_nan()) return false;
    if (((a.bits_ | b.bits_) & 0x7fffu) == 0) return true;
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(half a, half b) noexcept { return !(a == b); }

  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return ((bits_ & 0x7c00u) == 0x7c00u) && ((bits_ & 0x3ffu) != 0);
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return ((bits_ & 0x7c00u) == 0x7c00u) && ((bits_ & 0x3ffu) == 0);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

inline float operator+(half a, half b) noexcept { return static_cast<float>(a) + static_cast<float>(b); }
inline float operator-(half a, half b) noexcept { return static_cast<float>(a) - static_cast<float>(b); }
inline float operator*(half a, half b) noexcept { return static_cast<float>(a) * static_cast<float>(b); }
inline float operator/(half a, half b) noexcept { return static_cast<float>(a) / static_cast<float>(b); }

/// Largest finite half: 65504.
inline constexpr float kHalfMax = 65504.0f;
/// Smallest positive normal half: 2^-14.
inline constexpr float kHalfMinNormal = 6.103515625e-05f;
/// Unit roundoff of binary16 with round-to-nearest: 2^-11.
inline constexpr double kHalfEps = 4.8828125e-04;

}  // namespace gsx
