// Non-owning 2-D view over column-major storage (BLAS convention).
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace gsx {

/// Lightweight column-major matrix view: element (i, j) at data[i + j*ld].
/// Mutability follows the constness of T.
template <typename T>
class Span2D {
 public:
  constexpr Span2D() noexcept = default;

  constexpr Span2D(T* data, std::size_t rows, std::size_t cols, std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  constexpr Span2D(T* data, std::size_t rows, std::size_t cols) noexcept
      : Span2D(data, rows, cols, rows) {}

  [[nodiscard]] constexpr std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] constexpr T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  constexpr T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i + j * ld_];
  }

  /// Sub-view of shape (r, c) starting at (i0, j0).
  [[nodiscard]] constexpr Span2D sub(std::size_t i0, std::size_t j0, std::size_t r,
                                     std::size_t c) const noexcept {
    return Span2D(data_ + i0 + j0 * ld_, r, c, ld_);
  }

  /// Implicit view-of-const conversion.
  constexpr operator Span2D<const T>() const noexcept {
    return Span2D<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

}  // namespace gsx
