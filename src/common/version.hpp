// Library version string.
#pragma once

namespace gsx {

/// Semantic version of the GeoStatX library.
const char* version() noexcept;

}  // namespace gsx
