// Deterministic, splittable pseudo-random number generation.
//
// xoshiro256++ core with SplitMix64 seeding; normal deviates via the polar
// Box-Muller method. A single seed reproduces every synthetic dataset and
// every simulated Gaussian random field in the benchmark suite, independent
// of the standard library implementation.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace gsx {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographic; excellent
/// statistical quality and trivially reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    have_cached_normal_ = false;
  }

  /// A statistically independent stream derived from this one; used to hand
  /// each worker/replicate its own generator (CP.3: no shared mutable state).
  [[nodiscard]] Rng split() noexcept { return Rng(next() ^ 0x9e3779b97f4a7c15ull); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        m = static_cast<__uint128_t>(next()) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (polar Box-Muller, cached pair).
  double normal() noexcept {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * f;
    have_cached_normal_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace gsx
