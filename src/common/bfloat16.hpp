// bfloat16 ("brain float"): 8 exponent bits, 7 stored significand bits.
//
// The paper's outlook (Section VII-A) names BF16/TF32 as the fix for
// Fugaku's FP16 limitations. BF16 shares FP32's exponent range, so the
// gradual-underflow problem that restricts FP16 storage of tiny-norm tiles
// (see precision_policy.hpp) disappears: the adaptive rule can demote far
// more tiles to 16 bits. Arithmetic promotes to FP32 (BF16 is storage-only,
// as on real BF16 hardware with FP32 accumulation).
#pragma once

#include <cstdint>
#include <cstring>

namespace gsx {

/// bfloat16 value. Storage-only: arithmetic promotes to float.
class bfloat16 {
 public:
  constexpr bfloat16() noexcept = default;

  explicit bfloat16(float f) noexcept {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0) {
      bits_ = static_cast<std::uint16_t>((bits >> 16) | 0x0040u);  // quiet NaN
      return;
    }
    // Round to nearest even on the dropped 16 bits.
    const std::uint32_t lsb = (bits >> 16) & 1u;
    bits_ = static_cast<std::uint16_t>((bits + 0x7fffu + lsb) >> 16);
  }
  explicit bfloat16(double d) noexcept : bfloat16(static_cast<float>(d)) {}

  static constexpr bfloat16 from_bits(std::uint16_t b) noexcept {
    bfloat16 v;
    v.bits_ = b;
    return v;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  explicit operator float() const noexcept {
    const std::uint32_t bits32 = static_cast<std::uint32_t>(bits_) << 16;
    float f;
    std::memcpy(&f, &bits32, sizeof(f));
    return f;
  }
  explicit operator double() const noexcept {
    return static_cast<double>(static_cast<float>(*this));
  }

  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return ((bits_ & 0x7f80u) == 0x7f80u) && ((bits_ & 0x007fu) != 0);
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return ((bits_ & 0x7f80u) == 0x7f80u) && ((bits_ & 0x007fu) == 0);
  }

  friend constexpr bool operator==(bfloat16 a, bfloat16 b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (((a.bits_ | b.bits_) & 0x7fffu) == 0) return true;  // +/-0
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(bfloat16 a, bfloat16 b) noexcept { return !(a == b); }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16) == 2, "bfloat16 must be 2 bytes");

inline float operator+(bfloat16 a, bfloat16 b) noexcept {
  return static_cast<float>(a) + static_cast<float>(b);
}
inline float operator-(bfloat16 a, bfloat16 b) noexcept {
  return static_cast<float>(a) - static_cast<float>(b);
}
inline float operator*(bfloat16 a, bfloat16 b) noexcept {
  return static_cast<float>(a) * static_cast<float>(b);
}
inline float operator/(bfloat16 a, bfloat16 b) noexcept {
  return static_cast<float>(a) / static_cast<float>(b);
}

/// Unit roundoff of bfloat16 with round-to-nearest: 2^-8.
inline constexpr double kBf16Eps = 3.90625e-03;

}  // namespace gsx
