// Wall-clock timing utilities for benchmarks and the runtime performance model.
#pragma once

#include <chrono>

namespace gsx {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gsx
