#include "common/version.hpp"

namespace gsx {

const char* version() noexcept { return "1.0.0"; }

}  // namespace gsx
