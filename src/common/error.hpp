// Error handling: exceptions for contract violations, never abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/precision.hpp"

namespace gsx {

/// Thrown on precondition violations (bad dimensions, invalid parameters).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Forensic context attached to a NumericalError at the failure site, so a
/// catch several layers up (or the health report) can name the offending
/// tile rather than just the symptom.
struct NumericalContext {
  long tile_i = -1, tile_j = -1;  ///< failing tile, -1 when not tile-addressed
  int pivot = 0;                  ///< 1-based global pivot index, 0 if unknown
  Precision precision = Precision::FP64;  ///< failing tile's storage precision
  double tile_norm = 0.0;                 ///< ||A_ij||_F of the failing tile
  std::string rule;                       ///< active PrecisionRule name
};

/// Thrown when a numerical routine fails (non-SPD matrix in POTRF, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
  NumericalError(const std::string& what, NumericalContext ctx)
      : std::runtime_error(what), ctx_(std::move(ctx)), has_context_(true) {}

  [[nodiscard]] bool has_context() const noexcept { return has_context_; }
  [[nodiscard]] const NumericalContext& context() const noexcept { return ctx_; }

 private:
  NumericalContext ctx_{};
  bool has_context_ = false;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace gsx

/// Precondition check, always on (cheap comparisons only on hot paths).
#define GSX_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::gsx::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
