// Error handling: exceptions for contract violations, never abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gsx {

/// Thrown on precondition violations (bad dimensions, invalid parameters).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numerical routine fails (non-SPD matrix in POTRF, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace gsx

/// Precondition check, always on (cheap comparisons only on hot paths).
#define GSX_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::gsx::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
