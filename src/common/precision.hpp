// Floating-point precision tags and traits used throughout the tile framework.
#pragma once

#include <cstddef>
#include <string_view>

namespace gsx {

/// Storage/compute precision of a tile, ordered from highest to lowest
/// accuracy. BF16 implements the paper's outlook (Section VII-A): FP32's
/// exponent range at 16-bit storage, removing FP16's underflow limits.
enum class Precision : unsigned char {
  FP64 = 0,
  FP32 = 1,
  FP16 = 2,
  BF16 = 3,
};

/// Number of distinct precisions (for array-indexed lookup tables).
inline constexpr std::size_t kNumPrecisions = 4;

/// Unit roundoff u (round-to-nearest) for each format.
[[nodiscard]] constexpr double unit_roundoff(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 1.1102230246251565e-16;  // 2^-53
    case Precision::FP32: return 5.9604644775390625e-08;  // 2^-24
    case Precision::FP16: return 4.8828125e-04;           // 2^-11
    case Precision::BF16: return 3.90625e-03;             // 2^-8
  }
  return 0.0;
}

/// Bytes per scalar element.
[[nodiscard]] constexpr std::size_t bytes_of(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 8;
    case Precision::FP32: return 4;
    case Precision::FP16: return 2;
    case Precision::BF16: return 2;
  }
  return 0;
}

/// Largest finite representable magnitude (overflow guard for demotion).
[[nodiscard]] constexpr double overflow_threshold(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 1.7976931348623157e+308;
    case Precision::FP32: return 3.4028234663852886e+38;
    case Precision::FP16: return 65504.0;
    case Precision::BF16: return 3.3895313892515355e+38;
  }
  return 0.0;
}

/// Half the smallest positive subnormal: the absolute rounding floor in the
/// gradual-underflow range (the term that disqualifies FP16 for tiny-norm
/// tiles and motivates BF16).
[[nodiscard]] constexpr double subnormal_floor(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return 0.0;  // never the binding term here
    case Precision::FP32: return 7.006492321624085e-46;   // 2^-150
    case Precision::FP16: return 2.9802322387695312e-08;  // 2^-25
    case Precision::BF16: return 4.591774807899561e-41;   // 2^-134
  }
  return 0.0;
}

[[nodiscard]] constexpr std::string_view precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::FP64: return "FP64";
    case Precision::FP32: return "FP32";
    case Precision::FP16: return "FP16";
    case Precision::BF16: return "BF16";
  }
  return "?";
}

/// True if `a` is at least as accurate as `b` (smaller unit roundoff).
[[nodiscard]] constexpr bool at_least(Precision a, Precision b) noexcept {
  return unit_roundoff(a) <= unit_roundoff(b);
}

/// The more accurate of two precisions (the "lead operand" rule in
/// Algorithm 1 casts the less accurate operand up to the lead precision).
[[nodiscard]] constexpr Precision higher(Precision a, Precision b) noexcept {
  return at_least(a, b) ? a : b;
}

[[nodiscard]] constexpr Precision lower(Precision a, Precision b) noexcept {
  return at_least(a, b) ? b : a;
}

}  // namespace gsx
