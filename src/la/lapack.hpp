// LAPACK-style dense factorizations over column-major views.
#pragma once

#include <cstddef>
#include <vector>

#include "common/span2d.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace gsx::la {

/// Cholesky factorization in place: A = L L^T (Lower) or U^T U (Upper).
/// Returns 0 on success, or 1-based index of the first non-positive pivot
/// (matching LAPACK xPOTRF info semantics). Only the `uplo` triangle of A is
/// referenced or written; the other triangle is left untouched.
template <typename T>
int potrf(Uplo uplo, Span2D<T> a);

extern template int potrf<double>(Uplo, Span2D<double>);
extern template int potrf<float>(Uplo, Span2D<float>);

/// Householder QR: A (m x n, m >= n) is replaced by R in its upper triangle;
/// `q` is returned with orthonormal columns spanning range(A) (thin Q, m x n).
template <typename T>
void qr_factor(Span2D<T> a, Matrix<T>& q);

extern template void qr_factor<double>(Span2D<double>, Matrix<double>&);
extern template void qr_factor<float>(Span2D<float>, Matrix<float>&);

/// Column-pivoted thin QR (xGEQP3-style, with norm downdating):
/// A * P = Q * R, A m x n with m >= n. On return `a` holds R in its upper
/// triangle (sub-diagonal zeroed), `q` the thin orthonormal factor (m x n),
/// and perm[j] the original index of the column now in position j. The
/// diagonal of R is non-increasing in magnitude — the rank-revealing
/// property the cheap TLR recompression relies on.
template <typename T>
void qr_pivoted(Span2D<T> a, Matrix<T>& q, std::vector<std::size_t>& perm);

extern template void qr_pivoted<double>(Span2D<double>, Matrix<double>&,
                                        std::vector<std::size_t>&);
extern template void qr_pivoted<float>(Span2D<float>, Matrix<float>&,
                                       std::vector<std::size_t>&);

/// Thin SVD by one-sided Jacobi: A (m x n, any shape) = U diag(s) V^T with
/// U m x r, V n x r, r = min(m, n). Singular values descending. Accurate to
/// machine precision for the small/rectangular blocks used in tile
/// compression and recompression.
template <typename T>
void svd_jacobi(const Matrix<T>& a, Matrix<T>& u, std::vector<T>& s, Matrix<T>& v);

extern template void svd_jacobi<double>(const Matrix<double>&, Matrix<double>&,
                                        std::vector<double>&, Matrix<double>&);
extern template void svd_jacobi<float>(const Matrix<float>&, Matrix<float>&,
                                       std::vector<float>&, Matrix<float>&);

/// Frobenius norm of a general view.
template <typename T>
double norm_frobenius(Span2D<const T> a);

extern template double norm_frobenius<double>(Span2D<const double>);
extern template double norm_frobenius<float>(Span2D<const float>);

/// Max-abs entry.
template <typename T>
double norm_max(Span2D<const T> a);

extern template double norm_max<double>(Span2D<const double>);
extern template double norm_max<float>(Span2D<const float>);

/// Symmetrize from the stored triangle (testing helper for SYRK/POTRF).
template <typename T>
void symmetrize_from(Uplo stored, Span2D<T> a);

extern template void symmetrize_from<double>(Uplo, Span2D<double>);
extern template void symmetrize_from<float>(Uplo, Span2D<float>);

}  // namespace gsx::la
