// Shared BLAS flag enums, split out so the packed-kernel layer
// (gemm_kernel.hpp) and the dispatching front end (blas.hpp) can both use
// them without a circular include.
#pragma once

namespace gsx::la {

enum class Uplo : unsigned char { Lower, Upper };
enum class Trans : unsigned char { NoTrans, Trans };
enum class Side : unsigned char { Left, Right };
enum class Diag : unsigned char { NonUnit, Unit };

}  // namespace gsx::la
