// Kernel autotuner: searches cache blocking (MC/KC/NC) and micro-kernel
// shape per precision on the local machine, persists the result as a
// versioned JSON tuning profile, and reports achieved-vs-peak per
// ISA/precision.
//
// The search space is exactly what the runtime can execute: the compiled
// shape table in gemm_kernel.cpp plus a small grid of blockings. The
// hand-picked defaults are always in the candidate set, so a tuned profile
// can only tie or beat them. Profiles are bound to the ISA the search ran
// under; loading a profile tuned for another ISA (or a corrupt file) warns
// and falls back to the compiled defaults.
//
// Startup resolution (see gemm_kernel.cpp): compiled defaults, then the
// profile named by GSX_TUNE_PROFILE (or ./gsx-tune.json if present), then
// GSX_GEMM_MC/KC/NC env overrides. tools/gsx_tune drives the search.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/precision.hpp"
#include "la/gemm_kernel.hpp"

namespace gsx::la {

/// Schema tag of the persisted profile format.
inline constexpr const char* kTuneProfileSchema = "gsx-tune-v1";
/// Env var naming the profile to load at startup.
inline constexpr const char* kTuneProfileEnv = "GSX_TUNE_PROFILE";
/// Default profile path probed when the env var is unset (relative to CWD).
inline constexpr const char* kTuneProfileDefaultPath = "gsx-tune.json";

/// A persisted tuning result: per-precision kernel configuration plus the
/// measured throughput that chose it, bound to the dispatched ISA.
struct TuneProfile {
  std::string isa;                      // "avx512" / "avx2" / "portable"
  double ghz = 0.0;                     // clock estimate the peaks used
  bool has[kNumPrecisions] = {};        // which precisions the profile covers
  KernelConfig config[kNumPrecisions];  // indexed by Precision
  double gflops[kNumPrecisions] = {};   // measured rate of the chosen config
};

struct TuneOptions {
  /// Bounded search: compiled-default blocking only (shapes still searched),
  /// one benchmark size, fewer timing reps. Seconds instead of minutes.
  bool quick = false;
  /// Benchmark operand order (m = n = k = size), trailing-update op shape.
  std::size_t size = 256;
  /// Best-of timing repetitions per candidate.
  int reps = 5;
  /// Which precisions to tune (all by default; BF16 is first-class).
  bool precisions[kNumPrecisions] = {true, true, true, true};
};

/// Per-precision outcome of a search, for achieved-vs-peak reporting.
struct TunePrecisionReport {
  Precision precision = Precision::FP64;
  KernelConfig def;            // compiled default on this ISA
  KernelConfig best;           // chosen config
  double def_gflops = 0.0;     // default measured on this machine
  double best_gflops = 0.0;    // chosen config measured
  double peak_gflops = 0.0;    // theoretical ISA peak at the measured clock
  int candidates = 0;          // configurations timed
};

struct TuneReport {
  std::string isa;
  double ghz = 0.0;
  std::vector<TunePrecisionReport> rows;
};

/// Run the search. Installs the winning config per precision (the process
/// keeps running with the tuned kernels) and returns the profile. The
/// default config is always a candidate, so best >= default up to timing
/// noise. `report`, when non-null, receives the per-precision detail.
TuneProfile autotune(const TuneOptions& opts, TuneReport* report = nullptr);

/// Install a profile's configs process-wide. Fails (returns false, nothing
/// applied, reason in *err) if the profile's ISA differs from the dispatched
/// ISA or no entry can be applied.
bool apply_profile(const TuneProfile& p, std::string* err = nullptr);

/// Serialize to / parse from the gsx-tune-v1 JSON document.
[[nodiscard]] std::string profile_to_json(const TuneProfile& p);
bool profile_from_json(const std::string& text, TuneProfile* out, std::string* err);

/// File round-trip helpers (atomic-enough write: temp file + rename).
bool save_profile(const TuneProfile& p, const std::string& path, std::string* err);
bool load_profile(const std::string& path, TuneProfile* out, std::string* err);

/// Sustained-clock estimate in GHz: /proc/cpuinfo when available, otherwise
/// a timed dependent-op chain. An estimate (~±10%) — peaks derived from it
/// are labeled as such in reports.
[[nodiscard]] double measure_clock_ghz();

namespace detail {

/// Startup hook used by gemm_kernel.cpp's lazy config init: parse the
/// profile named by GSX_TUNE_PROFILE (or ./gsx-tune.json if present). A
/// parse failure or ISA mismatch warns once on stderr and returns nullopt,
/// which keeps the compiled defaults.
std::optional<TuneProfile> startup_tune_profile();

}  // namespace detail

}  // namespace gsx::la
