// Precision conversion of column-major blocks.
//
// The runtime inserts these conversions "on demand" when a kernel's lead
// operand precision differs from an input's storage precision (Algorithm 1:
// the '*' operands are converted in flight to match the '+' lead operand).
#pragma once

#include <cstddef>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/span2d.hpp"

namespace gsx::la {

void convert(Span2D<const double> src, Span2D<float> dst);
void convert(Span2D<const double> src, Span2D<half> dst);
void convert(Span2D<const float> src, Span2D<double> dst);
void convert(Span2D<const float> src, Span2D<half> dst);
void convert(Span2D<const half> src, Span2D<double> dst);
void convert(Span2D<const half> src, Span2D<float> dst);
void convert(Span2D<const double> src, Span2D<double> dst);
void convert(Span2D<const float> src, Span2D<float> dst);
void convert(Span2D<const half> src, Span2D<half> dst);
void convert(Span2D<const double> src, Span2D<bfloat16> dst);
void convert(Span2D<const float> src, Span2D<bfloat16> dst);
void convert(Span2D<const bfloat16> src, Span2D<double> dst);
void convert(Span2D<const bfloat16> src, Span2D<float> dst);
void convert(Span2D<const bfloat16> src, Span2D<bfloat16> dst);

/// Round-trip a block through a lower precision in place (double storage):
/// the storage-rounding operator applied when a tile is demoted.
void round_through_float(Span2D<double> a);
void round_through_half(Span2D<double> a);
void round_through_bfloat16(Span2D<double> a);

namespace detail {

/// Vectorized C-scratch conversions for the batched 16-bit GEMM path
/// (half_blas.hpp). FP16 uses hardware F16C when the CPU has it; both
/// directions are the same round-to-nearest-even narrowing as the software
/// path, so results are bit-identical to convert() for every non-NaN value
/// (NaNs stay quiet NaNs but hardware keeps payload bits the software path
/// collapses). BF16 is branchless integer code the compiler vectorizes.
/// No obs conversion accounting — the batch entry points record their
/// conversion traffic once per batch.
void widen_fast(Span2D<const half> src, Span2D<float> dst);
void narrow_fast(Span2D<const float> src, Span2D<half> dst);
void widen_fast(Span2D<const bfloat16> src, Span2D<float> dst);
void narrow_fast(Span2D<const float> src, Span2D<bfloat16> dst);

}  // namespace detail

}  // namespace gsx::la
