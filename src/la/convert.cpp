#include "la/convert.hpp"

#include "common/error.hpp"
#include "obs/flops.hpp"

namespace gsx::la {

namespace {

template <typename S, typename D>
void convert_impl(Span2D<const S> src, Span2D<D> dst) {
  GSX_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "convert: shape mismatch");
  obs::add_conversion(obs::PrecisionOf<S>::value, obs::PrecisionOf<D>::value,
                      src.rows() * src.cols());
  for (std::size_t j = 0; j < src.cols(); ++j) {
    const S* s = &src(0, j);
    D* d = &dst(0, j);
    for (std::size_t i = 0; i < src.rows(); ++i) {
      if constexpr (std::is_same_v<D, half>) {
        d[i] = half(static_cast<float>(s[i]));
      } else if constexpr (std::is_same_v<D, bfloat16>) {
        d[i] = bfloat16(static_cast<float>(s[i]));
      } else if constexpr (std::is_same_v<S, half> || std::is_same_v<S, bfloat16>) {
        d[i] = static_cast<D>(static_cast<float>(s[i]));
      } else {
        d[i] = static_cast<D>(s[i]);
      }
    }
  }
}

}  // namespace

void convert(Span2D<const double> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }

void round_through_float(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::FP32, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(static_cast<float>(a(i, j)));
}

void round_through_half(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::FP16, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(half(a(i, j)));
}

void round_through_bfloat16(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::BF16, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(bfloat16(a(i, j)));
}

}  // namespace gsx::la
