#include "la/convert.hpp"

#include <cstdint>
#include <cstring>

#include "common/error.hpp"
#include "obs/flops.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define GSX_F16C_DISPATCH 1
#include <immintrin.h>
#else
#define GSX_F16C_DISPATCH 0
#endif

namespace gsx::la {

namespace {

template <typename S, typename D>
void convert_impl(Span2D<const S> src, Span2D<D> dst) {
  GSX_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "convert: shape mismatch");
  obs::add_conversion(obs::PrecisionOf<S>::value, obs::PrecisionOf<D>::value,
                      src.rows() * src.cols());
  for (std::size_t j = 0; j < src.cols(); ++j) {
    const S* s = &src(0, j);
    D* d = &dst(0, j);
    for (std::size_t i = 0; i < src.rows(); ++i) {
      if constexpr (std::is_same_v<D, half>) {
        d[i] = half(static_cast<float>(s[i]));
      } else if constexpr (std::is_same_v<D, bfloat16>) {
        d[i] = bfloat16(static_cast<float>(s[i]));
      } else if constexpr (std::is_same_v<S, half> || std::is_same_v<S, bfloat16>) {
        d[i] = static_cast<D>(static_cast<float>(s[i]));
      } else {
        d[i] = static_cast<D>(s[i]);
      }
    }
  }
}

}  // namespace

void convert(Span2D<const double> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const half> src, Span2D<half> dst) { convert_impl(src, dst); }
void convert(Span2D<const double> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }
void convert(Span2D<const float> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<double> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<float> dst) { convert_impl(src, dst); }
void convert(Span2D<const bfloat16> src, Span2D<bfloat16> dst) { convert_impl(src, dst); }

namespace detail {

namespace {

#if GSX_F16C_DISPATCH

__attribute__((target("f16c,avx"))) void widen_col_f16c(const half* s, float* d,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i h;
    std::memcpy(&h, s + i, sizeof(h));
    _mm256_storeu_ps(d + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) d[i] = static_cast<float>(s[i]);
}

__attribute__((target("f16c,avx"))) void narrow_col_f16c(const float* s, half* d,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(s + i),
                                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    std::memcpy(d + i, &h, sizeof(h));
  }
  for (; i < n; ++i) d[i] = half(s[i]);
}

bool f16c_available() {
  static const bool ok =
      __builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx");
  return ok;
}

#endif  // GSX_F16C_DISPATCH

void widen_col(const half* s, float* d, std::size_t n) {
#if GSX_F16C_DISPATCH
  if (f16c_available()) {
    widen_col_f16c(s, d, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<float>(s[i]);
}

void narrow_col(const float* s, half* d, std::size_t n) {
#if GSX_F16C_DISPATCH
  if (f16c_available()) {
    narrow_col_f16c(s, d, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) d[i] = half(s[i]);
}

void widen_col(const bfloat16* s, float* d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = static_cast<std::uint32_t>(s[i].bits()) << 16;
    std::memcpy(d + i, &bits, sizeof(float));
  }
}

// Branchless replica of bfloat16(float) — RNE on the dropped 16 bits, NaNs
// quieted — phrased as selects so the vectorizer takes it.
void narrow_col(const float* s, bfloat16* d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, s + i, sizeof(bits));
    const std::uint32_t lsb = (bits >> 16) & 1u;
    const std::uint16_t rne = static_cast<std::uint16_t>((bits + 0x7fffu + lsb) >> 16);
    const std::uint16_t qnan = static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    const bool is_nan =
        (bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0;
    d[i] = bfloat16::from_bits(is_nan ? qnan : rne);
  }
}

template <typename S, typename D>
void fast_impl(Span2D<const S> src, Span2D<D> dst) {
  GSX_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "convert: shape mismatch");
  for (std::size_t j = 0; j < src.cols(); ++j)
    widen_col(&src(0, j), &dst(0, j), src.rows());
}

template <typename S, typename D>
void fast_narrow_impl(Span2D<const S> src, Span2D<D> dst) {
  GSX_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "convert: shape mismatch");
  for (std::size_t j = 0; j < src.cols(); ++j)
    narrow_col(&src(0, j), &dst(0, j), src.rows());
}

}  // namespace

void widen_fast(Span2D<const half> src, Span2D<float> dst) { fast_impl(src, dst); }
void narrow_fast(Span2D<const float> src, Span2D<half> dst) {
  fast_narrow_impl(src, dst);
}
void widen_fast(Span2D<const bfloat16> src, Span2D<float> dst) { fast_impl(src, dst); }
void narrow_fast(Span2D<const float> src, Span2D<bfloat16> dst) {
  fast_narrow_impl(src, dst);
}

}  // namespace detail

void round_through_float(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::FP32, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(static_cast<float>(a(i, j)));
}

void round_through_half(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::FP16, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(half(a(i, j)));
}

void round_through_bfloat16(Span2D<double> a) {
  obs::add_conversion(Precision::FP64, Precision::BF16, a.rows() * a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(bfloat16(a(i, j)));
}

}  // namespace gsx::la
