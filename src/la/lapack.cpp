#include "la/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gsx::la {

namespace {

/// Unblocked lower Cholesky of the leading block; 0 or 1-based failure index.
template <typename T>
int potf2_lower(Span2D<T> a) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    T akk = a(k, k);
    if (!(akk > T{0})) return static_cast<int>(k) + 1;
    akk = std::sqrt(akk);
    a(k, k) = akk;
    const T inv = T{1} / akk;
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) *= inv;
    for (std::size_t j = k + 1; j < n; ++j) {
      const T ajk = a(j, k);
      if (ajk == T{0}) continue;
      T* aj = &a(0, j);
      const T* ak = &a(0, k);
      for (std::size_t i = j; i < n; ++i) aj[i] -= ak[i] * ajk;
    }
  }
  return 0;
}

constexpr std::size_t kPotrfBlock = 96;

}  // namespace

template <typename T>
int potrf(Uplo uplo, Span2D<T> a) {
  const std::size_t n = a.rows();
  GSX_REQUIRE(a.cols() == n, "potrf: matrix must be square");

  if (uplo == Uplo::Upper) {
    // Factor the transpose problem through the lower-triangular code path by
    // operating on A^T in place: U^T U = A  <=>  L L^T = A with L = U^T.
    // For simplicity and because the library only stores lower triangles on
    // hot paths, transpose into a scratch, factor, transpose back.
    Matrix<T> tmp(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i <= j; ++i) tmp(j, i) = a(i, j);
    const int info = potrf<T>(Uplo::Lower, tmp.view());
    if (info != 0) return info;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i <= j; ++i) a(i, j) = tmp(j, i);
    return 0;
  }

  // Blocked right-looking lower Cholesky.
  for (std::size_t k = 0; k < n; k += kPotrfBlock) {
    const std::size_t kb = std::min(kPotrfBlock, n - k);
    auto akk = a.sub(k, k, kb, kb);
    const int info = potf2_lower(akk);
    if (info != 0) return static_cast<int>(k) + info;
    if (k + kb < n) {
      const std::size_t rest = n - k - kb;
      auto panel = a.sub(k + kb, k, rest, kb);
      trsm<T>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, T{1},
              Span2D<const T>(akk), panel);
      auto trail = a.sub(k + kb, k + kb, rest, rest);
      syrk<T>(Uplo::Lower, Trans::NoTrans, T{-1}, Span2D<const T>(panel), T{1}, trail);
    }
  }
  return 0;
}

template int potrf<double>(Uplo, Span2D<double>);
template int potrf<float>(Uplo, Span2D<float>);

template <typename T>
void qr_factor(Span2D<T> a, Matrix<T>& q) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  GSX_REQUIRE(m >= n, "qr_factor: requires m >= n (tall or square)");

  std::vector<T> tau(n);
  std::vector<T> v(m);

  // Unblocked Householder: fine for the tall-skinny blocks of recompression.
  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector annihilating A(k+1:m, k).
    T normx{};
    for (std::size_t i = k; i < m; ++i) normx += a(i, k) * a(i, k);
    normx = std::sqrt(normx);
    if (normx == T{0}) {
      tau[k] = T{0};
      continue;
    }
    const T alpha = a(k, k);
    const T beta = (alpha >= T{0}) ? -normx : normx;
    tau[k] = (beta - alpha) / beta;
    const T scal = T{1} / (alpha - beta);
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) *= scal;
    a(k, k) = beta;
    // Apply (I - tau v v^T) to trailing columns; v = [1; A(k+1:m, k)].
    for (std::size_t j = k + 1; j < n; ++j) {
      T s = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s *= tau[k];
      a(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * s;
    }
  }

  // Accumulate thin Q = H_0 ... H_{n-1} * [I; 0].
  q.resize(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = T{1};
  for (std::size_t k = n; k-- > 0;) {
    if (tau[k] == T{0}) continue;
    for (std::size_t j = k; j < n; ++j) {
      T s = q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * q(i, j);
      s *= tau[k];
      q(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) q(i, j) -= a(i, k) * s;
    }
  }

  // Zero the sub-diagonal of A so the caller reads a clean R.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < m; ++i) a(i, j) = T{0};
}

template void qr_factor<double>(Span2D<double>, Matrix<double>&);
template void qr_factor<float>(Span2D<float>, Matrix<float>&);

template <typename T>
void qr_pivoted(Span2D<T> a, Matrix<T>& q, std::vector<std::size_t>& perm) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  GSX_REQUIRE(m >= n, "qr_pivoted: requires m >= n");

  perm.resize(n);
  for (std::size_t j = 0; j < n; ++j) perm[j] = j;
  std::vector<T> tau(n, T{0});
  // Partial column norms with downdating (and their reference values for
  // the cancellation-triggered recomputation).
  std::vector<T> norms(n), norms0(n);
  for (std::size_t j = 0; j < n; ++j) {
    T s{};
    for (std::size_t i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    norms[j] = std::sqrt(s);
    norms0[j] = norms[j];
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot: residual column of largest norm.
    std::size_t p = k;
    for (std::size_t j = k + 1; j < n; ++j)
      if (norms[j] > norms[p]) p = j;
    if (p != k) {
      for (std::size_t i = 0; i < m; ++i) std::swap(a(i, k), a(i, p));
      std::swap(norms[k], norms[p]);
      std::swap(norms0[k], norms0[p]);
      std::swap(perm[k], perm[p]);
    }

    // Householder reflector annihilating A(k+1:m, k).
    T normx{};
    for (std::size_t i = k; i < m; ++i) normx += a(i, k) * a(i, k);
    normx = std::sqrt(normx);
    if (normx == T{0}) {
      tau[k] = T{0};
      continue;
    }
    const T alpha = a(k, k);
    const T beta = (alpha >= T{0}) ? -normx : normx;
    tau[k] = (beta - alpha) / beta;
    const T scal = T{1} / (alpha - beta);
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) *= scal;
    a(k, k) = beta;

    // Apply to trailing columns and downdate their partial norms.
    for (std::size_t j = k + 1; j < n; ++j) {
      T s = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s *= tau[k];
      a(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * s;

      if (norms[j] != T{0}) {
        const T t = std::abs(a(k, j)) / norms[j];
        const T f = std::max(T{0}, (T{1} - t) * (T{1} + t));
        // Recompute when cancellation erodes the downdated estimate.
        const T est = norms[j] * std::sqrt(f);
        if (est <= T(0.1) * norms0[j] * std::sqrt(std::sqrt(f))) {
          T s2{};
          for (std::size_t i = k + 1; i < m; ++i) s2 += a(i, j) * a(i, j);
          norms[j] = std::sqrt(s2);
          norms0[j] = norms[j];
        } else {
          norms[j] = est;
        }
      }
    }
  }

  // Accumulate thin Q (same back-substitution as qr_factor).
  q.resize(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = T{1};
  for (std::size_t k = n; k-- > 0;) {
    if (tau[k] == T{0}) continue;
    for (std::size_t j = k; j < n; ++j) {
      T s = q(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * q(i, j);
      s *= tau[k];
      q(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) q(i, j) -= a(i, k) * s;
    }
  }
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j + 1; i < m; ++i) a(i, j) = T{0};
}

template void qr_pivoted<double>(Span2D<double>, Matrix<double>&,
                                 std::vector<std::size_t>&);
template void qr_pivoted<float>(Span2D<float>, Matrix<float>&,
                                std::vector<std::size_t>&);

template <typename T>
void svd_jacobi(const Matrix<T>& a, Matrix<T>& u, std::vector<T>& s, Matrix<T>& v) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Work on W (m x n if tall, else transpose so rows >= cols), with V
  // accumulating the right rotations; transpose back at the end.
  const bool transposed = m < n;
  Matrix<T> w = transposed ? a.transposed() : a;
  const std::size_t wm = w.rows();
  const std::size_t wn = w.cols();
  Matrix<T> vv = Matrix<T>::identity(wn);

  const T eps = std::numeric_limits<T>::epsilon();
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < wn; ++p) {
      for (std::size_t q = p + 1; q < wn; ++q) {
        // 2x2 Gram block of columns p, q.
        T app{}, aqq{}, apq{};
        const T* cp = &w(0, p);
        const T* cq = &w(0, q);
        for (std::size_t i = 0; i < wm; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == T{0}) continue;
        converged = false;
        // Jacobi rotation zeroing the off-diagonal Gram entry.
        const T zeta = (aqq - app) / (T{2} * apq);
        const T t = ((zeta >= T{0}) ? T{1} : T{-1}) /
                    (std::abs(zeta) + std::sqrt(T{1} + zeta * zeta));
        const T c = T{1} / std::sqrt(T{1} + t * t);
        const T sn = c * t;
        T* wp = &w(0, p);
        T* wq = &w(0, q);
        for (std::size_t i = 0; i < wm; ++i) {
          const T t1 = wp[i];
          wp[i] = c * t1 - sn * wq[i];
          wq[i] = sn * t1 + c * wq[i];
        }
        T* vp = &vv(0, p);
        T* vq = &vv(0, q);
        for (std::size_t i = 0; i < wn; ++i) {
          const T t1 = vp[i];
          vp[i] = c * t1 - sn * vq[i];
          vq[i] = sn * t1 + c * vq[i];
        }
      }
    }
    if (converged) break;
  }

  // Singular values = column norms; left vectors = normalized columns.
  s.assign(wn, T{0});
  Matrix<T> uu(wm, wn);
  for (std::size_t j = 0; j < wn; ++j) {
    T nrm{};
    for (std::size_t i = 0; i < wm; ++i) nrm += w(i, j) * w(i, j);
    nrm = std::sqrt(nrm);
    s[j] = nrm;
    if (nrm > T{0}) {
      const T inv = T{1} / nrm;
      for (std::size_t i = 0; i < wm; ++i) uu(i, j) = w(i, j) * inv;
    }
  }

  // Sort descending.
  std::vector<std::size_t> idx(wn);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });
  Matrix<T> us(wm, wn), vs(wn, wn);
  std::vector<T> ss(wn);
  for (std::size_t j = 0; j < wn; ++j) {
    ss[j] = s[idx[j]];
    for (std::size_t i = 0; i < wm; ++i) us(i, j) = uu(i, idx[j]);
    for (std::size_t i = 0; i < wn; ++i) vs(i, j) = vv(i, idx[j]);
  }
  s = std::move(ss);

  if (!transposed) {
    u = std::move(us);
    v = std::move(vs);
  } else {  // A = (W)^T = (U_w S V_w^T)^T = V_w S U_w^T
    u = std::move(vs);
    v = std::move(us);
  }
}

template void svd_jacobi<double>(const Matrix<double>&, Matrix<double>&,
                                 std::vector<double>&, Matrix<double>&);
template void svd_jacobi<float>(const Matrix<float>&, Matrix<float>&, std::vector<float>&,
                                Matrix<float>&);

template <typename T>
double norm_frobenius(Span2D<const T> a) {
  double s = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const T* col = &a(0, j);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(col[i]);
      s += v * v;
    }
  }
  return std::sqrt(s);
}

template double norm_frobenius<double>(Span2D<const double>);
template double norm_frobenius<float>(Span2D<const float>);

template <typename T>
double norm_max(Span2D<const T> a) {
  double s = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      s = std::max(s, std::abs(static_cast<double>(a(i, j))));
  return s;
}

template double norm_max<double>(Span2D<const double>);
template double norm_max<float>(Span2D<const float>);

template <typename T>
void symmetrize_from(Uplo stored, Span2D<T> a) {
  const std::size_t n = a.rows();
  GSX_REQUIRE(a.cols() == n, "symmetrize_from: square required");
  if (stored == Uplo::Lower) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = j + 1; i < n; ++i) a(j, i) = a(i, j);
  } else {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = j + 1; i < n; ++i) a(i, j) = a(j, i);
  }
}

template void symmetrize_from<double>(Uplo, Span2D<double>);
template void symmetrize_from<float>(Uplo, Span2D<float>);

}  // namespace gsx::la
