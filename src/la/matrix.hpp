// Owning column-major matrix container (BLAS convention).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/span2d.hpp"

namespace gsx::la {

/// Dense column-major matrix owning its storage. Leading dimension == rows.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) noexcept { return data_[i + j * rows_]; }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i + j * rows_];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] Span2D<T> view() noexcept { return {data_.data(), rows_, cols_, rows_}; }
  [[nodiscard]] Span2D<const T> view() const noexcept {
    return {data_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] Span2D<const T> cview() const noexcept { return view(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
    return t;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace gsx::la
