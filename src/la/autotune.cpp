#include "la/autotune.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "la/matrix.hpp"

namespace gsx::la {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Minimal strict JSON reader for the gsx-tune-v1 document: objects, strings
// and numbers only (that is the whole schema). The serving plane has its own
// JSON machinery, but la sits below serve in the layering, so the profile
// format gets a self-contained ~100-line reader instead of a dependency
// inversion.

struct JsonValue {
  enum class Kind { Number, String, Object } kind = Kind::Number;
  double num = 0.0;
  std::string str;
  std::map<std::string, JsonValue> obj;
};

struct JsonReader {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& m) {
    if (err.empty()) err = m;
    return false;
  }
  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool string(std::string* out) {
    ws();
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return fail("bad escape");
        char e = *p++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (p >= end) return fail("unterminated string");
    ++p;
    return true;
  }
  bool value(JsonValue* out) {
    ws();
    if (p >= end) return fail("unexpected end of document");
    if (*p == '"') {
      out->kind = JsonValue::Kind::String;
      return string(&out->str);
    }
    if (*p == '{') {
      ++p;
      out->kind = JsonValue::Kind::Object;
      out->obj.clear();
      ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        std::string key;
        if (!string(&key)) return false;
        ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue v;
        if (!value(&v)) return false;
        out->obj.emplace(std::move(key), std::move(v));
        ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number (strict: must start a valid strtod parse).
    char* stop = nullptr;
    const double v = std::strtod(p, &stop);
    if (stop == p || stop > end) return fail("expected value");
    out->kind = JsonValue::Kind::Number;
    out->num = v;
    p = stop;
    return true;
  }
  bool document(JsonValue* out) {
    if (!value(out)) return false;
    ws();
    if (p != end) return fail("trailing characters after document");
    if (out->kind != JsonValue::Kind::Object) return fail("document is not an object");
    return true;
  }
};

bool precision_from_name(const std::string& s, Precision* out) {
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    const Precision p = static_cast<Precision>(i);
    if (s == precision_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool get_number(const JsonValue& obj, const char* key, double* out) {
  const auto it = obj.obj.find(key);
  if (it == obj.obj.end() || it->second.kind != JsonValue::Kind::Number) return false;
  *out = it->second.num;
  return true;
}

bool get_positive_size(const JsonValue& obj, const char* key, std::size_t* out) {
  double v = 0.0;
  if (!get_number(obj, key, &v)) return false;
  if (!(v > 0.0) || v != std::floor(v) || v > 1e9) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

// ---------------------------------------------------------------------------
// Candidate timing: the trailing-update op shape (C -= A * B^T) through the
// packed path, best-of-reps, inner iteration count sized for a measurable
// sample. Operand buffers are shared across candidates per precision.

template <typename TS, typename TAcc>
struct BenchSet {
  Matrix<TS> a, b;
  Matrix<TAcc> c;
  BenchSet(std::size_t n) : a(n, n), b(n, n), c(n, n) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        a(i, j) = TS(0.001 * static_cast<double>(i + j + 1));
        b(i, j) = TS(0.0005 * static_cast<double>(i + 2 * j + 1));
        c(i, j) = TAcc(0);
      }
  }
  double time_once() {
    const auto t0 = Clock::now();
    detail::gemm_packed(Trans::NoTrans, Trans::Trans, TAcc(-1), a.cview(), b.cview(),
                        c.view());
    return std::chrono::duration<double>(Clock::now() - t0).count();
  }
  void reset_c() {
    for (std::size_t j = 0; j < c.cols(); ++j)
      for (std::size_t i = 0; i < c.rows(); ++i) c(i, j) = TAcc(0);
  }
};

template <typename TS, typename TAcc>
double measure_gflops(BenchSet<TS, TAcc>& set, std::size_t n, int reps) {
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  set.reset_c();
  const double pilot = std::max(set.time_once(), 1e-7);  // warmup + pilot
  const int iters = std::max(1, static_cast<int>(0.002 / pilot));
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i)
      detail::gemm_packed(Trans::NoTrans, Trans::Trans, TAcc(-1), set.a.cview(),
                          set.b.cview(), set.c.view());
    const double t = std::chrono::duration<double>(Clock::now() - t0).count() / iters;
    best = std::min(best, t);
    set.reset_c();  // keep C magnitudes bounded across candidates
  }
  return flops / best * 1e-9;
}

/// Time `cfg` for precision `p` at each size; returns per-size GFlop/s.
template <typename TS, typename TAcc>
std::vector<double> time_config(Precision p, const KernelConfig& cfg,
                                std::vector<BenchSet<TS, TAcc>>& sets,
                                const std::vector<std::size_t>& sizes, int reps) {
  std::vector<double> out;
  if (!set_gemm_kernel_config(p, cfg)) return out;
  for (std::size_t s = 0; s < sizes.size(); ++s)
    out.push_back(measure_gflops(sets[s], sizes[s], reps));
  return out;
}

template <typename TS, typename TAcc>
void tune_precision(Precision p, const TuneOptions& opts,
                    const std::vector<std::size_t>& sizes, double ghz,
                    TuneProfile* prof, TuneReport* report) {
  const KernelConfig def = gemm_default_config(p);

  // Candidate grid: every compiled shape x a small blocking grid (quick mode
  // keeps the default blocking). Deduplicate blockings by their effective
  // value at the largest benchmarked size so kc >= n twins aren't re-timed.
  std::vector<GemmShape> shapes = gemm_kernel_shapes(p);
  std::vector<GemmBlocking> blockings{def.blk};
  if (!opts.quick) {
    const std::size_t nmax = sizes.back();
    auto effective = [&](const GemmBlocking& b) {
      return std::make_tuple(std::min(b.mc, nmax), std::min(b.kc, nmax),
                             std::min(b.nc, nmax));
    };
    for (std::size_t mc : {std::size_t{64}, std::size_t{128}, std::size_t{256}})
      for (std::size_t kc : {std::size_t{128}, std::size_t{256}, std::size_t{512}})
        for (std::size_t nc : {std::size_t{2048}, std::size_t{4096}}) {
          const GemmBlocking b{mc, kc, nc};
          bool dup = false;
          for (const auto& have : blockings)
            if (effective(have) == effective(b)) dup = true;
          if (!dup) blockings.push_back(b);
        }
  }

  std::vector<BenchSet<TS, TAcc>> sets;
  sets.reserve(sizes.size());
  for (std::size_t n : sizes) sets.emplace_back(n);

  const std::vector<double> def_rates = time_config(p, def, sets, sizes, opts.reps);

  KernelConfig best = def;
  double best_score = 1.0;
  double best_large = def_rates.empty() ? 0.0 : def_rates.back();
  int tried = 1;
  for (const GemmShape& sh : shapes) {
    for (const GemmBlocking& blk : blockings) {
      KernelConfig cand;
      cand.blk = blk;
      cand.mr = sh.mr;
      cand.nr = sh.nr;
      if (cand.blk.mc == def.blk.mc && cand.blk.kc == def.blk.kc &&
          cand.blk.nc == def.blk.nc && cand.mr == def.mr && cand.nr == def.nr)
        continue;  // the default was already timed
      const std::vector<double> rates = time_config(p, cand, sets, sizes, opts.reps);
      if (rates.size() != sizes.size()) continue;
      ++tried;
      double score = 1.0;
      for (std::size_t s = 0; s < rates.size(); ++s)
        score *= rates[s] / std::max(def_rates[s], 1e-9);
      score = std::pow(score, 1.0 / static_cast<double>(rates.size()));
      if (score > best_score) {
        best_score = score;
        best = cand;
        best_large = rates.back();
      }
    }
  }

  set_gemm_kernel_config(p, best);
  const std::size_t i = static_cast<std::size_t>(p);
  prof->has[i] = true;
  prof->config[i] = best;
  prof->gflops[i] = best_large;

  if (report) {
    TunePrecisionReport row;
    row.precision = p;
    row.def = def;
    row.best = best;
    row.def_gflops = def_rates.empty() ? 0.0 : def_rates.back();
    row.best_gflops = best_large;
    row.peak_gflops = gemm_peak_gflops(p, ghz);
    row.candidates = tried;
    report->rows.push_back(row);
  }
}

}  // namespace

double measure_clock_ghz() {
  // Prefer the kernel's view of the clock; "cpu MHz" tracks the current
  // frequency on physical hosts and the nominal one on VMs.
  if (std::ifstream f{"/proc/cpuinfo"}; f) {
    std::string line;
    while (std::getline(f, line)) {
      if (line.rfind("cpu MHz", 0) == 0) {
        const auto colon = line.find(':');
        if (colon != std::string::npos) {
          const double mhz = std::atof(line.c_str() + colon + 1);
          if (mhz > 100.0) return mhz / 1000.0;
        }
      }
    }
  }
  // Fallback: a dependent xorshift chain is 6 one-cycle ops per iteration
  // that no compiler can reassociate. Coarse (~±10%), and labeled as an
  // estimate wherever it surfaces.
  volatile std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::uint64_t x = seed;
  const std::size_t iters = 50'000'000;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  const double t = std::chrono::duration<double>(Clock::now() - t0).count();
  seed = x;  // keep the chain observable
  return 6.0 * static_cast<double>(iters) / t / 1e9;
}

TuneProfile autotune(const TuneOptions& opts, TuneReport* report) {
  TuneProfile prof;
  prof.isa = gemm_kernel_isa();
  prof.ghz = measure_clock_ghz();
  if (report) {
    report->isa = prof.isa;
    report->ghz = prof.ghz;
    report->rows.clear();
  }

  std::vector<std::size_t> sizes;
  if (opts.quick)
    sizes = {opts.size};
  else
    sizes = {64, 128, std::max<std::size_t>(opts.size, 256)};

  if (opts.precisions[static_cast<std::size_t>(Precision::FP64)])
    tune_precision<double, double>(Precision::FP64, opts, sizes, prof.ghz, &prof, report);
  if (opts.precisions[static_cast<std::size_t>(Precision::FP32)])
    tune_precision<float, float>(Precision::FP32, opts, sizes, prof.ghz, &prof, report);
  if (opts.precisions[static_cast<std::size_t>(Precision::FP16)])
    tune_precision<half, float>(Precision::FP16, opts, sizes, prof.ghz, &prof, report);
  if (opts.precisions[static_cast<std::size_t>(Precision::BF16)])
    tune_precision<bfloat16, float>(Precision::BF16, opts, sizes, prof.ghz, &prof, report);
  return prof;
}

bool apply_profile(const TuneProfile& p, std::string* err) {
  if (p.isa != gemm_kernel_isa()) {
    if (err)
      *err = "profile tuned for isa '" + p.isa + "' but dispatch selected '" +
             gemm_kernel_isa() + "'";
    return false;
  }
  bool any = false;
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    if (!p.has[i]) continue;
    if (set_gemm_kernel_config(static_cast<Precision>(i), p.config[i])) {
      any = true;
    } else if (err) {
      *err = std::string("profile entry for ") +
             std::string(precision_name(static_cast<Precision>(i))) +
             " names an unknown shape or zero blocking";
    }
  }
  if (!any && err && err->empty()) *err = "profile has no applicable entries";
  return any;
}

std::string profile_to_json(const TuneProfile& p) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kTuneProfileSchema << "\",\n";
  os << "  \"isa\": \"" << p.isa << "\",\n";
  char num[64];
  std::snprintf(num, sizeof(num), "%.6g", p.ghz);
  os << "  \"ghz\": " << num << ",\n";
  os << "  \"configs\": {";
  bool first = true;
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    if (!p.has[i]) continue;
    const KernelConfig& c = p.config[i];
    if (!first) os << ",";
    first = false;
    std::snprintf(num, sizeof(num), "%.10g", p.gflops[i]);
    os << "\n    \"" << precision_name(static_cast<Precision>(i)) << "\": {\"mc\": "
       << c.blk.mc << ", \"kc\": " << c.blk.kc << ", \"nc\": " << c.blk.nc
       << ", \"mr\": " << c.mr << ", \"nr\": " << c.nr << ", \"gflops\": " << num << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool profile_from_json(const std::string& text, TuneProfile* out, std::string* err) {
  const auto set_err = [&](const std::string& m) {
    if (err) *err = m;
    return false;
  };
  JsonValue doc;
  JsonReader r{text.data(), text.data() + text.size(), {}};
  if (!r.document(&doc)) return set_err("profile parse error: " + r.err);

  const auto schema = doc.obj.find("schema");
  if (schema == doc.obj.end() || schema->second.kind != JsonValue::Kind::String)
    return set_err("profile missing \"schema\"");
  if (schema->second.str != kTuneProfileSchema)
    return set_err("unsupported profile schema \"" + schema->second.str + "\" (want " +
                   kTuneProfileSchema + ")");

  const auto isa = doc.obj.find("isa");
  if (isa == doc.obj.end() || isa->second.kind != JsonValue::Kind::String ||
      isa->second.str.empty())
    return set_err("profile missing \"isa\"");

  TuneProfile prof;
  prof.isa = isa->second.str;
  get_number(doc, "ghz", &prof.ghz);

  const auto configs = doc.obj.find("configs");
  if (configs == doc.obj.end() || configs->second.kind != JsonValue::Kind::Object)
    return set_err("profile missing \"configs\" object");
  for (const auto& [name, val] : configs->second.obj) {
    Precision p;
    if (!precision_from_name(name, &p))
      return set_err("profile configs: unknown precision \"" + name + "\"");
    if (val.kind != JsonValue::Kind::Object)
      return set_err("profile configs." + name + " is not an object");
    KernelConfig cfg;
    if (!get_positive_size(val, "mc", &cfg.blk.mc) ||
        !get_positive_size(val, "kc", &cfg.blk.kc) ||
        !get_positive_size(val, "nc", &cfg.blk.nc))
      return set_err("profile configs." + name + ": mc/kc/nc must be positive integers");
    double mr = 0.0, nr = 0.0;
    if (!get_number(val, "mr", &mr) || !get_number(val, "nr", &nr) || mr < 0 || nr < 0 ||
        mr != std::floor(mr) || nr != std::floor(nr))
      return set_err("profile configs." + name + ": mr/nr must be non-negative integers");
    cfg.mr = static_cast<int>(mr);
    cfg.nr = static_cast<int>(nr);
    const std::size_t i = static_cast<std::size_t>(p);
    prof.has[i] = true;
    prof.config[i] = cfg;
    get_number(val, "gflops", &prof.gflops[i]);
  }
  *out = std::move(prof);
  return true;
}

bool save_profile(const TuneProfile& p, const std::string& path, std::string* err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) {
      if (err) *err = "cannot open " + tmp + " for writing";
      return false;
    }
    f << profile_to_json(p);
    if (!f.flush()) {
      if (err) *err = "short write to " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_profile(const std::string& path, TuneProfile* out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return profile_from_json(ss.str(), out, err);
}

namespace detail {

std::optional<TuneProfile> startup_tune_profile() {
  const char* env = std::getenv(kTuneProfileEnv);
  if (env && *env == '\0') return std::nullopt;  // explicitly disabled
  const std::string path = env ? env : kTuneProfileDefaultPath;
  if (!env) {
    // Default path is opt-in by presence; don't warn when it's absent.
    std::ifstream probe(path);
    if (!probe) return std::nullopt;
  }
  TuneProfile prof;
  std::string err;
  if (!load_profile(path, &prof, &err)) {
    std::fprintf(stderr, "gsx: ignoring tuning profile %s: %s\n", path.c_str(),
                 err.c_str());
    return std::nullopt;
  }
  if (prof.isa != gemm_kernel_isa()) {
    std::fprintf(stderr,
                 "gsx: ignoring tuning profile %s: tuned for isa '%s', dispatch selected "
                 "'%s'\n",
                 path.c_str(), prof.isa.c_str(), gemm_kernel_isa());
    return std::nullopt;
  }
  return prof;
}

}  // namespace detail

}  // namespace gsx::la
