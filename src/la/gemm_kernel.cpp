#include "la/gemm_kernel.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <type_traits>
#include <vector>

#include "la/autotune.hpp"

namespace gsx::la {

namespace {

#if defined(__GNUC__)
#define GSX_ALWAYS_INLINE inline __attribute__((always_inline))
#define GSX_RESTRICT __restrict__
#else
#define GSX_ALWAYS_INLINE inline
#define GSX_RESTRICT
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define GSX_X86_DISPATCH 1
#else
#define GSX_X86_DISPATCH 0
#endif

std::size_t env_size(const char* name, std::size_t fallback) noexcept {
  if (const char* s = std::getenv(name)) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

constexpr std::size_t round_up(std::size_t v, std::size_t q) noexcept {
  return (v + q - 1) / q * q;
}

// ---------------------------------------------------------------------------
// Packing. op(A) is copied into micro-panels of MR rows laid out k-major
// (panel p holds rows [p*MR, p*MR+MR), element (i, l) at p*MR*kc + l*MR + i),
// op(B) into micro-panels of NR columns (element (l, j) at p*NR*kc + l*NR + j).
// Ragged edges are zero-padded so the micro-kernel never branches; the store
// path masks them out. Widening (half/bfloat16 -> float) happens here, so the
// 16-bit entry points never materialize full-size FP32 copies.

template <typename TS, typename T, int MR>
GSX_ALWAYS_INLINE void pack_a(Trans ta, Span2D<const TS> a, std::size_t i0, std::size_t p0,
                              std::size_t mcb, std::size_t kcb, T* GSX_RESTRICT ap) {
  for (std::size_t ir = 0; ir < mcb; ir += MR) {
    const std::size_t mr = std::min<std::size_t>(MR, mcb - ir);
    T* GSX_RESTRICT panel = ap + ir * kcb;
    if (ta == Trans::NoTrans) {
      for (std::size_t l = 0; l < kcb; ++l) {
        const TS* GSX_RESTRICT src = &a(i0 + ir, p0 + l);
        T* GSX_RESTRICT dst = panel + l * MR;
        for (std::size_t i = 0; i < mr; ++i) dst[i] = static_cast<T>(src[i]);
        for (std::size_t i = mr; i < MR; ++i) dst[i] = T{0};
      }
    } else {
      for (std::size_t l = 0; l < kcb; ++l) {
        T* GSX_RESTRICT dst = panel + l * MR;
        for (std::size_t i = 0; i < mr; ++i) dst[i] = static_cast<T>(a(p0 + l, i0 + ir + i));
        for (std::size_t i = mr; i < MR; ++i) dst[i] = T{0};
      }
    }
  }
}

template <typename TS, typename T, int NR>
GSX_ALWAYS_INLINE void pack_b(Trans tb, Span2D<const TS> b, std::size_t j0, std::size_t p0,
                              std::size_t ncb, std::size_t kcb, T* GSX_RESTRICT bp) {
  for (std::size_t jr = 0; jr < ncb; jr += NR) {
    const std::size_t nr = std::min<std::size_t>(NR, ncb - jr);
    T* GSX_RESTRICT panel = bp + jr * kcb;
    if (tb == Trans::NoTrans) {
      // op(B)(l, j) = b(p0 + l, j0 + j): read each column contiguously.
      for (std::size_t j = 0; j < nr; ++j) {
        const TS* GSX_RESTRICT src = &b(p0, j0 + jr + j);
        for (std::size_t l = 0; l < kcb; ++l) panel[l * NR + j] = static_cast<T>(src[l]);
      }
    } else {
      // op(B)(l, j) = b(j0 + j, p0 + l): read rows of B, contiguous in j.
      for (std::size_t l = 0; l < kcb; ++l) {
        const TS* GSX_RESTRICT src = &b(j0 + jr, p0 + l);
        T* GSX_RESTRICT dst = panel + l * NR;
        for (std::size_t j = 0; j < nr; ++j) dst[j] = static_cast<T>(src[j]);
      }
    }
    if (nr < NR) {
      for (std::size_t l = 0; l < kcb; ++l)
        for (std::size_t j = nr; j < NR; ++j) panel[l * NR + j] = T{0};
    }
  }
}

// ---------------------------------------------------------------------------
// Micro-kernel: MR x NR register accumulators, one fused pass over a packed
// A micro-panel and a packed B micro-panel. The i loop is contiguous and
// vectorizes to the caller's target ISA; NR independent accumulator columns
// hide FMA latency.

template <typename T, int MR, int NR>
GSX_ALWAYS_INLINE void micro_accum(std::size_t kc, const T* GSX_RESTRICT ap,
                                   const T* GSX_RESTRICT bp, T* GSX_RESTRICT acc) {
  for (std::size_t l = 0; l < kc; ++l) {
    const T* GSX_RESTRICT al = ap + l * MR;
    const T* GSX_RESTRICT bl = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T blj = bl[j];
      T* GSX_RESTRICT accj = acc + static_cast<std::size_t>(j) * MR;
      for (int i = 0; i < MR; ++i) accj[i] += al[i] * blj;
    }
  }
}

template <typename T, int MR, int NR>
GSX_ALWAYS_INLINE void micro_store(T alpha, const T* GSX_RESTRICT acc, T* GSX_RESTRICT c,
                                   std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == MR && nr == NR) {
    for (int j = 0; j < NR; ++j) {
      T* GSX_RESTRICT cj = c + static_cast<std::size_t>(j) * ldc;
      const T* GSX_RESTRICT aj = acc + static_cast<std::size_t>(j) * MR;
      for (int i = 0; i < MR; ++i) cj[i] += alpha * aj[i];
    }
  } else {
    for (std::size_t j = 0; j < nr; ++j) {
      T* GSX_RESTRICT cj = c + j * ldc;
      const T* GSX_RESTRICT aj = acc + j * MR;
      for (std::size_t i = 0; i < mr; ++i) cj[i] += alpha * aj[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Macro-kernel: the five-loop BLIS structure, generalized to a batch of
// same-shape items. Packed B panels are re-used across every MC block of A
// *and* across consecutive items that share the same B operand (the shared
// panel tile of a TLR trailing-update column, the shared RHS block of a
// kriging micro-batch); C is touched once per KC-deep block. A single op is
// the count == 1 case, so one compiled variant serves both entry points and
// batched results are bit-identical to per-op calls by construction: each
// item sees exactly the per-op loop structure and accumulation order.

template <typename TS, typename T, int MR, int NR>
GSX_ALWAYS_INLINE void gemm_macro(Trans ta, Trans tb, T alpha,
                                  const GemmBatchItem<TS, T>* items, std::size_t count,
                                  const GemmBlocking& blk, std::vector<T>& apack,
                                  std::vector<T>& bpack) {
  const std::size_t m = items[0].c.rows();
  const std::size_t n = items[0].c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();

  for (std::size_t jc = 0; jc < n; jc += blk.nc) {
    const std::size_t ncb = std::min(blk.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += blk.kc) {
      const std::size_t kcb = std::min(blk.kc, k - pc);
      bpack.resize(round_up(ncb, NR) * kcb);
      const TS* packed_b = nullptr;
      std::size_t packed_ld = 0;
      for (std::size_t it = 0; it < count; ++it) {
        const Span2D<const TS>& bi = items[it].b;
        if (bi.data() != packed_b || bi.ld() != packed_ld) {
          pack_b<TS, T, NR>(tb, bi, jc, pc, ncb, kcb, bpack.data());
          packed_b = bi.data();
          packed_ld = bi.ld();
        }
        const Span2D<const TS>& ai = items[it].a;
        const Span2D<T>& ci = items[it].c;
        for (std::size_t ic = 0; ic < m; ic += blk.mc) {
          const std::size_t mcb = std::min(blk.mc, m - ic);
          apack.resize(round_up(mcb, MR) * kcb);
          pack_a<TS, T, MR>(ta, ai, ic, pc, mcb, kcb, apack.data());
          for (std::size_t jr = 0; jr < ncb; jr += NR) {
            const std::size_t nr = std::min<std::size_t>(NR, ncb - jr);
            for (std::size_t ir = 0; ir < mcb; ir += MR) {
              const std::size_t mr = std::min<std::size_t>(MR, mcb - ir);
              T acc[static_cast<std::size_t>(MR) * NR] = {};
              micro_accum<T, MR, NR>(kcb, apack.data() + ir * kcb, bpack.data() + jr * kcb,
                                     acc);
              micro_store<T, MR, NR>(alpha, acc, &ci(ic + ir, jc + jr), ci.ld(), mr, nr);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ISA variants. Each candidate register-tile shape is a concrete function
// compiled per target (the portable tile must fit 16 xmm registers; AVX2 has
// 16 ymm, AVX-512 32 zmm), so the whole macro-kernel (packing included) is
// vectorized for that target. All shapes exist on all ISAs; which one runs
// is a per-precision KernelConfig decision (default per ISA, overridable by
// a tuning profile — gsx_tune searches exactly this table).

template <typename TS, typename T>
using BatchKernelFn = void (*)(Trans, Trans, T, const GemmBatchItem<TS, T>*, std::size_t,
                               const GemmBlocking&, std::vector<T>&, std::vector<T>&);

#define GSX_GEMM_VARIANT(name, attr, TS, T, MR, NR)                                       \
  attr void name(Trans ta, Trans tb, T alpha, const GemmBatchItem<TS, T>* items,          \
                 std::size_t count, const GemmBlocking& blk, std::vector<T>& apack,       \
                 std::vector<T>& bpack) {                                                 \
    gemm_macro<TS, T, MR, NR>(ta, tb, alpha, items, count, blk, apack, bpack);            \
  }

// Shape candidates are chosen empirically per ISA (GCC's SLP vectorizer is
// shape-sensitive; see docs/tuning.md for the retuning recipe). The default
// shapes keep every accumulator column a whole number of vectors and fully
// unroll into independent FMA chains; the alternates are the plausible
// runners-up the autotuner searches.
GSX_GEMM_VARIANT(gemm_f64_32x8_portable, , double, double, 32, 8)
GSX_GEMM_VARIANT(gemm_f64_8x4_portable, , double, double, 8, 4)
GSX_GEMM_VARIANT(gemm_f64_32x6_portable, , double, double, 32, 6)
GSX_GEMM_VARIANT(gemm_f64_24x8_portable, , double, double, 24, 8)
GSX_GEMM_VARIANT(gemm_f32_32x4_portable, , float, float, 32, 4)
GSX_GEMM_VARIANT(gemm_f32_32x8_portable, , float, float, 32, 8)
GSX_GEMM_VARIANT(gemm_f32_48x8_portable, , float, float, 48, 8)
GSX_GEMM_VARIANT(gemm_h32_32x4_portable, , half, float, 32, 4)
GSX_GEMM_VARIANT(gemm_h32_32x8_portable, , half, float, 32, 8)
GSX_GEMM_VARIANT(gemm_h32_48x8_portable, , half, float, 48, 8)
GSX_GEMM_VARIANT(gemm_b32_32x4_portable, , bfloat16, float, 32, 4)
GSX_GEMM_VARIANT(gemm_b32_32x8_portable, , bfloat16, float, 32, 8)
GSX_GEMM_VARIANT(gemm_b32_48x8_portable, , bfloat16, float, 48, 8)

#if GSX_X86_DISPATCH
#define GSX_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define GSX_TARGET_AVX512 __attribute__((target("avx512f,avx512dq,avx512vl,avx512bw,fma")))

GSX_GEMM_VARIANT(gemm_f64_32x8_avx2, GSX_TARGET_AVX2, double, double, 32, 8)
GSX_GEMM_VARIANT(gemm_f64_8x4_avx2, GSX_TARGET_AVX2, double, double, 8, 4)
GSX_GEMM_VARIANT(gemm_f64_32x6_avx2, GSX_TARGET_AVX2, double, double, 32, 6)
GSX_GEMM_VARIANT(gemm_f64_24x8_avx2, GSX_TARGET_AVX2, double, double, 24, 8)
GSX_GEMM_VARIANT(gemm_f32_32x4_avx2, GSX_TARGET_AVX2, float, float, 32, 4)
GSX_GEMM_VARIANT(gemm_f32_32x8_avx2, GSX_TARGET_AVX2, float, float, 32, 8)
GSX_GEMM_VARIANT(gemm_f32_48x8_avx2, GSX_TARGET_AVX2, float, float, 48, 8)
GSX_GEMM_VARIANT(gemm_h32_32x4_avx2, GSX_TARGET_AVX2, half, float, 32, 4)
GSX_GEMM_VARIANT(gemm_h32_32x8_avx2, GSX_TARGET_AVX2, half, float, 32, 8)
GSX_GEMM_VARIANT(gemm_h32_48x8_avx2, GSX_TARGET_AVX2, half, float, 48, 8)
GSX_GEMM_VARIANT(gemm_b32_32x4_avx2, GSX_TARGET_AVX2, bfloat16, float, 32, 4)
GSX_GEMM_VARIANT(gemm_b32_32x8_avx2, GSX_TARGET_AVX2, bfloat16, float, 32, 8)
GSX_GEMM_VARIANT(gemm_b32_48x8_avx2, GSX_TARGET_AVX2, bfloat16, float, 48, 8)

GSX_GEMM_VARIANT(gemm_f64_32x8_avx512, GSX_TARGET_AVX512, double, double, 32, 8)
GSX_GEMM_VARIANT(gemm_f64_8x4_avx512, GSX_TARGET_AVX512, double, double, 8, 4)
GSX_GEMM_VARIANT(gemm_f64_32x6_avx512, GSX_TARGET_AVX512, double, double, 32, 6)
GSX_GEMM_VARIANT(gemm_f64_24x8_avx512, GSX_TARGET_AVX512, double, double, 24, 8)
GSX_GEMM_VARIANT(gemm_f32_32x4_avx512, GSX_TARGET_AVX512, float, float, 32, 4)
GSX_GEMM_VARIANT(gemm_f32_32x8_avx512, GSX_TARGET_AVX512, float, float, 32, 8)
GSX_GEMM_VARIANT(gemm_f32_48x8_avx512, GSX_TARGET_AVX512, float, float, 48, 8)
GSX_GEMM_VARIANT(gemm_h32_32x4_avx512, GSX_TARGET_AVX512, half, float, 32, 4)
GSX_GEMM_VARIANT(gemm_h32_32x8_avx512, GSX_TARGET_AVX512, half, float, 32, 8)
GSX_GEMM_VARIANT(gemm_h32_48x8_avx512, GSX_TARGET_AVX512, half, float, 48, 8)
GSX_GEMM_VARIANT(gemm_b32_32x4_avx512, GSX_TARGET_AVX512, bfloat16, float, 32, 4)
GSX_GEMM_VARIANT(gemm_b32_32x8_avx512, GSX_TARGET_AVX512, bfloat16, float, 32, 8)
GSX_GEMM_VARIANT(gemm_b32_48x8_avx512, GSX_TARGET_AVX512, bfloat16, float, 48, 8)
#endif  // GSX_X86_DISPATCH

#undef GSX_GEMM_VARIANT

enum class Isa : int { Portable = 0, Avx2 = 1, Avx512 = 2 };

Isa pick_isa() noexcept {
  Isa best = Isa::Portable;
#if GSX_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) best = Isa::Avx2;
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512bw"))
    best = Isa::Avx512;
#endif
  // Opt-down override for tuning and A/B testing; never opt-up past what the
  // CPU supports.
  if (const char* s = std::getenv("GSX_GEMM_ISA")) {
    const std::string_view v(s);
    if (v == "portable") return Isa::Portable;
    if (v == "avx2") return (best == Isa::Portable) ? best : Isa::Avx2;
    if (v == "avx512") return best;
  }
  return best;
}

Isa active_isa() noexcept {
  static const Isa isa = pick_isa();
  return isa;
}

/// The compiled shape table for a scalar type: one function per (shape, ISA).
/// Index 0 is the portable/AVX2 default... defaults per ISA are recorded
/// separately in default_shape_index().
template <typename TS, typename T>
struct ShapeVariant {
  int mr, nr;
  BatchKernelFn<TS, T> fn[3];  // indexed by Isa
};

template <typename TS>
const auto& shape_table() {
#if GSX_X86_DISPATCH
#define GSX_ROW(stem, mr, nr) \
  { mr, nr, {stem##_portable, stem##_avx2, stem##_avx512} }
#else
#define GSX_ROW(stem, mr, nr) \
  { mr, nr, {stem##_portable, stem##_portable, stem##_portable} }
#endif
  if constexpr (std::is_same_v<TS, double>) {
    static const ShapeVariant<double, double> t[] = {
        GSX_ROW(gemm_f64_32x8, 32, 8),
        GSX_ROW(gemm_f64_8x4, 8, 4),
        GSX_ROW(gemm_f64_32x6, 32, 6),
        GSX_ROW(gemm_f64_24x8, 24, 8),
    };
    return t;
  } else if constexpr (std::is_same_v<TS, float>) {
    static const ShapeVariant<float, float> t[] = {
        GSX_ROW(gemm_f32_32x4, 32, 4),
        GSX_ROW(gemm_f32_32x8, 32, 8),
        GSX_ROW(gemm_f32_48x8, 48, 8),
    };
    return t;
  } else if constexpr (std::is_same_v<TS, half>) {
    static const ShapeVariant<half, float> t[] = {
        GSX_ROW(gemm_h32_32x4, 32, 4),
        GSX_ROW(gemm_h32_32x8, 32, 8),
        GSX_ROW(gemm_h32_48x8, 48, 8),
    };
    return t;
  } else {
    static const ShapeVariant<bfloat16, float> t[] = {
        GSX_ROW(gemm_b32_32x4, 32, 4),
        GSX_ROW(gemm_b32_32x8, 32, 8),
        GSX_ROW(gemm_b32_48x8, 48, 8),
    };
    return t;
  }
#undef GSX_ROW
}

/// Default shape (index into shape_table) per ISA: the hand-picked shapes
/// every release before the autotuner shipped with.
int default_shape_index(Precision p, Isa isa) noexcept {
  if (p == Precision::FP64) {
    // portable 32x8, avx2 8x4, avx512 32x6.
    switch (isa) {
      case Isa::Portable: return 0;
      case Isa::Avx2: return 1;
      case Isa::Avx512: return 2;
    }
  }
  // FP32 compute group: portable/avx2 32x4, avx512 32x8.
  return isa == Isa::Avx512 ? 1 : 0;
}

constexpr std::size_t pidx(Precision p) noexcept { return static_cast<std::size_t>(p); }

template <typename TS>
constexpr Precision precision_of_storage() noexcept {
  if constexpr (std::is_same_v<TS, double>) return Precision::FP64;
  else if constexpr (std::is_same_v<TS, float>) return Precision::FP32;
  else if constexpr (std::is_same_v<TS, half>) return Precision::FP16;
  else return Precision::BF16;
}

template <typename TS>
int shape_count() noexcept {
  return static_cast<int>(std::size(shape_table<TS>()));
}

template <typename TS>
int find_shape(int mr, int nr) noexcept {
  const auto& t = shape_table<TS>();
  for (int i = 0; i < shape_count<TS>(); ++i)
    if (t[i].mr == mr && t[i].nr == nr) return i;
  return -1;
}

int find_shape_for(Precision p, int mr, int nr) noexcept {
  switch (p) {
    case Precision::FP64: return find_shape<double>(mr, nr);
    case Precision::FP32: return find_shape<float>(mr, nr);
    case Precision::FP16: return find_shape<half>(mr, nr);
    case Precision::BF16: return find_shape<bfloat16>(mr, nr);
  }
  return -1;
}

struct ActiveConfig {
  GemmBlocking blk;
  int shape = 0;  // index into the scalar type's shape table
};

KernelConfig compiled_default(Precision p, Isa isa) noexcept {
  // Blocking defaults sized for ~48 KiB L1d and >= 1 MiB L2: the packed A
  // block (MC x KC) fills a fraction of L2 (256 KiB at 8 bytes), one packed
  // B micro-panel (KC x NR) stays L1-resident (~12 KiB), and NC bounds the
  // packed-B panel so tall-skinny serving batches don't blow the scratch.
  // 16-bit storage computes in FP32 and starts from the FP32 blocking.
  KernelConfig cfg;
  cfg.blk = (p == Precision::FP64) ? GemmBlocking{128, 256, 4096}
                                   : GemmBlocking{256, 256, 4096};
  const int idx = default_shape_index(p, isa);
  switch (p) {
    case Precision::FP64:
      cfg.mr = shape_table<double>()[idx].mr;
      cfg.nr = shape_table<double>()[idx].nr;
      break;
    case Precision::FP32:
      cfg.mr = shape_table<float>()[idx].mr;
      cfg.nr = shape_table<float>()[idx].nr;
      break;
    case Precision::FP16:
      cfg.mr = shape_table<half>()[idx].mr;
      cfg.nr = shape_table<half>()[idx].nr;
      break;
    case Precision::BF16:
      cfg.mr = shape_table<bfloat16>()[idx].mr;
      cfg.nr = shape_table<bfloat16>()[idx].nr;
      break;
  }
  return cfg;
}

struct ConfigState {
  ActiveConfig cfg[kNumPrecisions];
};

/// Startup resolution: compiled defaults, then the tuning profile (if one
/// parses and matches the dispatched ISA), then GSX_GEMM_MC/KC/NC env
/// overrides (highest priority, applied to every precision as before).
ConfigState init_configs() {
  ConfigState st;
  const Isa isa = active_isa();
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    const Precision p = static_cast<Precision>(i);
    const KernelConfig def = compiled_default(p, isa);
    st.cfg[i].blk = def.blk;
    st.cfg[i].shape = default_shape_index(p, isa);
  }
  if (auto prof = detail::startup_tune_profile()) {
    for (std::size_t i = 0; i < kNumPrecisions; ++i) {
      if (!prof->has[i]) continue;
      const Precision p = static_cast<Precision>(i);
      const KernelConfig& c = prof->config[i];
      const int idx = (c.mr == 0 && c.nr == 0) ? default_shape_index(p, isa)
                                               : find_shape_for(p, c.mr, c.nr);
      if (idx < 0 || c.blk.mc == 0 || c.blk.kc == 0 || c.blk.nc == 0) {
        std::fprintf(stderr,
                     "gsx: tuning profile entry for %.*s names an unknown shape "
                     "%dx%d or zero blocking; keeping defaults for it\n",
                     static_cast<int>(precision_name(p).size()), precision_name(p).data(),
                     c.mr, c.nr);
        continue;
      }
      st.cfg[i].blk = c.blk;
      st.cfg[i].shape = idx;
    }
  }
  for (std::size_t i = 0; i < kNumPrecisions; ++i) {
    st.cfg[i].blk.mc = env_size("GSX_GEMM_MC", st.cfg[i].blk.mc);
    st.cfg[i].blk.kc = env_size("GSX_GEMM_KC", st.cfg[i].blk.kc);
    st.cfg[i].blk.nc = env_size("GSX_GEMM_NC", st.cfg[i].blk.nc);
  }
  return st;
}

ConfigState& configs() {
  static ConfigState st = init_configs();
  return st;
}

/// Per-scalar-type variant selection plus thread-local packing scratch; the
/// buffers keep their capacity across tile-task invocations on a worker.
template <typename TS, typename T>
void run_batch(Trans ta, Trans tb, T alpha, const GemmBatchItem<TS, T>* items,
               std::size_t count) {
  static thread_local std::vector<T> apack;
  static thread_local std::vector<T> bpack;
  const ActiveConfig& cfg = configs().cfg[pidx(precision_of_storage<TS>())];
  shape_table<TS>()[cfg.shape].fn[static_cast<int>(active_isa())](ta, tb, alpha, items,
                                                                  count, cfg.blk, apack,
                                                                  bpack);
}

template <typename TS, typename T>
void run_packed(Trans ta, Trans tb, T alpha, Span2D<const TS> a, Span2D<const TS> b,
                Span2D<T> c) {
  const GemmBatchItem<TS, T> item{a, b, c};
  run_batch<TS, T>(ta, tb, alpha, &item, 1);
}

}  // namespace

GemmBlocking gemm_blocking(std::size_t scalar_bytes) noexcept {
  return gemm_kernel_config(scalar_bytes >= sizeof(double) ? Precision::FP64
                                                           : Precision::FP32)
      .blk;
}

KernelConfig gemm_kernel_config(Precision p) noexcept {
  const ActiveConfig& a = configs().cfg[pidx(p)];
  KernelConfig cfg;
  cfg.blk = a.blk;
  switch (p) {
    case Precision::FP64:
      cfg.mr = shape_table<double>()[a.shape].mr;
      cfg.nr = shape_table<double>()[a.shape].nr;
      break;
    case Precision::FP32:
      cfg.mr = shape_table<float>()[a.shape].mr;
      cfg.nr = shape_table<float>()[a.shape].nr;
      break;
    case Precision::FP16:
      cfg.mr = shape_table<half>()[a.shape].mr;
      cfg.nr = shape_table<half>()[a.shape].nr;
      break;
    case Precision::BF16:
      cfg.mr = shape_table<bfloat16>()[a.shape].mr;
      cfg.nr = shape_table<bfloat16>()[a.shape].nr;
      break;
  }
  return cfg;
}

KernelConfig gemm_default_config(Precision p) noexcept {
  return compiled_default(p, active_isa());
}

bool set_gemm_kernel_config(Precision p, const KernelConfig& cfg) noexcept {
  if (cfg.blk.mc == 0 || cfg.blk.kc == 0 || cfg.blk.nc == 0) return false;
  const int idx = (cfg.mr == 0 && cfg.nr == 0)
                      ? default_shape_index(p, active_isa())
                      : find_shape_for(p, cfg.mr, cfg.nr);
  if (idx < 0) return false;
  ActiveConfig& a = configs().cfg[pidx(p)];
  a.blk = cfg.blk;
  a.shape = idx;
  return true;
}

std::vector<GemmShape> gemm_kernel_shapes(Precision p) {
  std::vector<GemmShape> out;
  const int def = default_shape_index(p, active_isa());
  const auto push = [&](int mr, int nr, bool front) {
    if (front)
      out.insert(out.begin(), GemmShape{mr, nr});
    else
      out.push_back(GemmShape{mr, nr});
  };
  switch (p) {
    case Precision::FP64: {
      const auto& t = shape_table<double>();
      for (int i = 0; i < shape_count<double>(); ++i) push(t[i].mr, t[i].nr, i == def);
      break;
    }
    case Precision::FP32: {
      const auto& t = shape_table<float>();
      for (int i = 0; i < shape_count<float>(); ++i) push(t[i].mr, t[i].nr, i == def);
      break;
    }
    case Precision::FP16: {
      const auto& t = shape_table<half>();
      for (int i = 0; i < shape_count<half>(); ++i) push(t[i].mr, t[i].nr, i == def);
      break;
    }
    case Precision::BF16: {
      const auto& t = shape_table<bfloat16>();
      for (int i = 0; i < shape_count<bfloat16>(); ++i) push(t[i].mr, t[i].nr, i == def);
      break;
    }
  }
  return out;
}

const char* gemm_kernel_isa() noexcept {
  switch (active_isa()) {
    case Isa::Avx512: return "avx512";
    case Isa::Avx2: return "avx2";
    case Isa::Portable: break;
  }
  return "portable";
}

GemmDispatchInfo gemm_dispatch_info() noexcept {
  switch (active_isa()) {
    case Isa::Avx512: return {"avx512", 512, 2};
    case Isa::Avx2: return {"avx2", 256, 2};
    case Isa::Portable: break;
  }
  // Portable compiles to the baseline target (SSE2 on x86-64); calling its
  // peak "128-bit, dual-issue FMA" is optimistic on machines without FMA,
  // which is the right direction for an achieved-vs-peak denominator.
  return {"portable", 128, 2};
}

double gemm_peak_gflops(Precision p, double ghz) noexcept {
  const GemmDispatchInfo info = gemm_dispatch_info();
  // 16-bit storage widens to FP32 lanes; FP64 uses 8-byte lanes.
  const int lane_bits = (p == Precision::FP64) ? 64 : 32;
  const int lanes = info.vector_bits / lane_bits;
  return ghz * static_cast<double>(lanes) * 2.0 * static_cast<double>(info.fma_ports);
}

namespace detail {

void gemm_packed(Trans ta, Trans tb, double alpha, Span2D<const double> a,
                 Span2D<const double> b, Span2D<double> c) {
  run_packed<double, double>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const float> a,
                 Span2D<const float> b, Span2D<float> c) {
  run_packed<float, float>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const half> a,
                 Span2D<const half> b, Span2D<float> c) {
  run_packed<half, float>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
                 Span2D<const bfloat16> b, Span2D<float> c) {
  run_packed<bfloat16, float>(ta, tb, alpha, a, b, c);
}

void gemm_batch_packed(Trans ta, Trans tb, double alpha, const GemmBatchItem<double>* items,
                       std::size_t count) {
  if (count) run_batch<double, double>(ta, tb, alpha, items, count);
}

void gemm_batch_packed(Trans ta, Trans tb, float alpha, const GemmBatchItem<float>* items,
                       std::size_t count) {
  if (count) run_batch<float, float>(ta, tb, alpha, items, count);
}

void gemm_batch_packed(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<half, float>* items, std::size_t count) {
  if (count) run_batch<half, float>(ta, tb, alpha, items, count);
}

void gemm_batch_packed(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<bfloat16, float>* items, std::size_t count) {
  if (count) run_batch<bfloat16, float>(ta, tb, alpha, items, count);
}

}  // namespace detail

}  // namespace gsx::la
