#include "la/gemm_kernel.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gsx::la {

namespace {

#if defined(__GNUC__)
#define GSX_ALWAYS_INLINE inline __attribute__((always_inline))
#define GSX_RESTRICT __restrict__
#else
#define GSX_ALWAYS_INLINE inline
#define GSX_RESTRICT
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define GSX_X86_DISPATCH 1
#else
#define GSX_X86_DISPATCH 0
#endif

std::size_t env_size(const char* name, std::size_t fallback) noexcept {
  if (const char* s = std::getenv(name)) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

constexpr std::size_t round_up(std::size_t v, std::size_t q) noexcept {
  return (v + q - 1) / q * q;
}

// ---------------------------------------------------------------------------
// Packing. op(A) is copied into micro-panels of MR rows laid out k-major
// (panel p holds rows [p*MR, p*MR+MR), element (i, l) at p*MR*kc + l*MR + i),
// op(B) into micro-panels of NR columns (element (l, j) at p*NR*kc + l*NR + j).
// Ragged edges are zero-padded so the micro-kernel never branches; the store
// path masks them out. Widening (half/bfloat16 -> float) happens here, so the
// 16-bit entry points never materialize full-size FP32 copies.

template <typename TS, typename T, int MR>
GSX_ALWAYS_INLINE void pack_a(Trans ta, Span2D<const TS> a, std::size_t i0, std::size_t p0,
                              std::size_t mcb, std::size_t kcb, T* GSX_RESTRICT ap) {
  for (std::size_t ir = 0; ir < mcb; ir += MR) {
    const std::size_t mr = std::min<std::size_t>(MR, mcb - ir);
    T* GSX_RESTRICT panel = ap + ir * kcb;
    if (ta == Trans::NoTrans) {
      for (std::size_t l = 0; l < kcb; ++l) {
        const TS* GSX_RESTRICT src = &a(i0 + ir, p0 + l);
        T* GSX_RESTRICT dst = panel + l * MR;
        for (std::size_t i = 0; i < mr; ++i) dst[i] = static_cast<T>(src[i]);
        for (std::size_t i = mr; i < MR; ++i) dst[i] = T{0};
      }
    } else {
      for (std::size_t l = 0; l < kcb; ++l) {
        T* GSX_RESTRICT dst = panel + l * MR;
        for (std::size_t i = 0; i < mr; ++i) dst[i] = static_cast<T>(a(p0 + l, i0 + ir + i));
        for (std::size_t i = mr; i < MR; ++i) dst[i] = T{0};
      }
    }
  }
}

template <typename TS, typename T, int NR>
GSX_ALWAYS_INLINE void pack_b(Trans tb, Span2D<const TS> b, std::size_t j0, std::size_t p0,
                              std::size_t ncb, std::size_t kcb, T* GSX_RESTRICT bp) {
  for (std::size_t jr = 0; jr < ncb; jr += NR) {
    const std::size_t nr = std::min<std::size_t>(NR, ncb - jr);
    T* GSX_RESTRICT panel = bp + jr * kcb;
    if (tb == Trans::NoTrans) {
      // op(B)(l, j) = b(p0 + l, j0 + j): read each column contiguously.
      for (std::size_t j = 0; j < nr; ++j) {
        const TS* GSX_RESTRICT src = &b(p0, j0 + jr + j);
        for (std::size_t l = 0; l < kcb; ++l) panel[l * NR + j] = static_cast<T>(src[l]);
      }
    } else {
      // op(B)(l, j) = b(j0 + j, p0 + l): read rows of B, contiguous in j.
      for (std::size_t l = 0; l < kcb; ++l) {
        const TS* GSX_RESTRICT src = &b(j0 + jr, p0 + l);
        T* GSX_RESTRICT dst = panel + l * NR;
        for (std::size_t j = 0; j < nr; ++j) dst[j] = static_cast<T>(src[j]);
      }
    }
    if (nr < NR) {
      for (std::size_t l = 0; l < kcb; ++l)
        for (std::size_t j = nr; j < NR; ++j) panel[l * NR + j] = T{0};
    }
  }
}

// ---------------------------------------------------------------------------
// Micro-kernel: MR x NR register accumulators, one fused pass over a packed
// A micro-panel and a packed B micro-panel. The i loop is contiguous and
// vectorizes to the caller's target ISA; NR independent accumulator columns
// hide FMA latency.

template <typename T, int MR, int NR>
GSX_ALWAYS_INLINE void micro_accum(std::size_t kc, const T* GSX_RESTRICT ap,
                                   const T* GSX_RESTRICT bp, T* GSX_RESTRICT acc) {
  for (std::size_t l = 0; l < kc; ++l) {
    const T* GSX_RESTRICT al = ap + l * MR;
    const T* GSX_RESTRICT bl = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T blj = bl[j];
      T* GSX_RESTRICT accj = acc + static_cast<std::size_t>(j) * MR;
      for (int i = 0; i < MR; ++i) accj[i] += al[i] * blj;
    }
  }
}

template <typename T, int MR, int NR>
GSX_ALWAYS_INLINE void micro_store(T alpha, const T* GSX_RESTRICT acc, T* GSX_RESTRICT c,
                                   std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == MR && nr == NR) {
    for (int j = 0; j < NR; ++j) {
      T* GSX_RESTRICT cj = c + static_cast<std::size_t>(j) * ldc;
      const T* GSX_RESTRICT aj = acc + static_cast<std::size_t>(j) * MR;
      for (int i = 0; i < MR; ++i) cj[i] += alpha * aj[i];
    }
  } else {
    for (std::size_t j = 0; j < nr; ++j) {
      T* GSX_RESTRICT cj = c + j * ldc;
      const T* GSX_RESTRICT aj = acc + j * MR;
      for (std::size_t i = 0; i < mr; ++i) cj[i] += alpha * aj[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Macro-kernel: the five-loop BLIS structure. Packed B panels are reused
// across every MC block of A; C is touched once per KC-deep block.

template <typename TS, typename T, int MR, int NR>
GSX_ALWAYS_INLINE void gemm_macro(Trans ta, Trans tb, T alpha, Span2D<const TS> a,
                                  Span2D<const TS> b, Span2D<T> c, const GemmBlocking& blk,
                                  std::vector<T>& apack, std::vector<T>& bpack) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();

  for (std::size_t jc = 0; jc < n; jc += blk.nc) {
    const std::size_t ncb = std::min(blk.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += blk.kc) {
      const std::size_t kcb = std::min(blk.kc, k - pc);
      bpack.resize(round_up(ncb, NR) * kcb);
      pack_b<TS, T, NR>(tb, b, jc, pc, ncb, kcb, bpack.data());
      for (std::size_t ic = 0; ic < m; ic += blk.mc) {
        const std::size_t mcb = std::min(blk.mc, m - ic);
        apack.resize(round_up(mcb, MR) * kcb);
        pack_a<TS, T, MR>(ta, a, ic, pc, mcb, kcb, apack.data());
        for (std::size_t jr = 0; jr < ncb; jr += NR) {
          const std::size_t nr = std::min<std::size_t>(NR, ncb - jr);
          for (std::size_t ir = 0; ir < mcb; ir += MR) {
            const std::size_t mr = std::min<std::size_t>(MR, mcb - ir);
            T acc[static_cast<std::size_t>(MR) * NR] = {};
            micro_accum<T, MR, NR>(kcb, apack.data() + ir * kcb, bpack.data() + jr * kcb,
                                   acc);
            micro_store<T, MR, NR>(alpha, acc, &c(ic + ir, jc + jr), c.ld(), mr, nr);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ISA variants. Register-tile shapes are chosen per ISA (the portable tile
// must fit 16 xmm registers; AVX2 has 16 ymm, AVX-512 32 zmm). Each variant
// is a concrete function so the whole macro-kernel (packing included) is
// compiled — and its inner loops vectorized — for that target.

#define GSX_GEMM_VARIANT(name, attr, TS, T, MR, NR)                                       \
  attr void name(Trans ta, Trans tb, T alpha, Span2D<const TS> a, Span2D<const TS> b,     \
                 Span2D<T> c, const GemmBlocking& blk, std::vector<T>& apack,             \
                 std::vector<T>& bpack) {                                                 \
    gemm_macro<TS, T, MR, NR>(ta, tb, alpha, a, b, c, blk, apack, bpack);                 \
  }

// Tile shapes are chosen empirically per ISA (GCC's SLP vectorizer is
// shape-sensitive; see docs/tuning.md for the retuning recipe). The fast
// shapes keep every accumulator column a whole number of vectors and fully
// unroll into independent FMA chains.
GSX_GEMM_VARIANT(gemm_f64_portable, , double, double, 32, 8)
GSX_GEMM_VARIANT(gemm_f32_portable, , float, float, 32, 4)
GSX_GEMM_VARIANT(gemm_h32_portable, , half, float, 32, 4)
GSX_GEMM_VARIANT(gemm_b32_portable, , bfloat16, float, 32, 4)

#if GSX_X86_DISPATCH
#define GSX_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define GSX_TARGET_AVX512 __attribute__((target("avx512f,avx512dq,avx512vl,avx512bw,fma")))

GSX_GEMM_VARIANT(gemm_f64_avx2, GSX_TARGET_AVX2, double, double, 8, 4)
GSX_GEMM_VARIANT(gemm_f32_avx2, GSX_TARGET_AVX2, float, float, 32, 4)
GSX_GEMM_VARIANT(gemm_h32_avx2, GSX_TARGET_AVX2, half, float, 32, 4)
GSX_GEMM_VARIANT(gemm_b32_avx2, GSX_TARGET_AVX2, bfloat16, float, 32, 4)

GSX_GEMM_VARIANT(gemm_f64_avx512, GSX_TARGET_AVX512, double, double, 32, 6)
GSX_GEMM_VARIANT(gemm_f32_avx512, GSX_TARGET_AVX512, float, float, 32, 8)
GSX_GEMM_VARIANT(gemm_h32_avx512, GSX_TARGET_AVX512, half, float, 32, 8)
GSX_GEMM_VARIANT(gemm_b32_avx512, GSX_TARGET_AVX512, bfloat16, float, 32, 8)
#endif  // GSX_X86_DISPATCH

#undef GSX_GEMM_VARIANT

enum class Isa : int { Portable = 0, Avx2 = 1, Avx512 = 2 };

Isa pick_isa() noexcept {
  Isa best = Isa::Portable;
#if GSX_X86_DISPATCH
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) best = Isa::Avx2;
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512bw"))
    best = Isa::Avx512;
#endif
  // Opt-down override for tuning and A/B testing; never opt-up past what the
  // CPU supports.
  if (const char* s = std::getenv("GSX_GEMM_ISA")) {
    const std::string_view v(s);
    if (v == "portable") return Isa::Portable;
    if (v == "avx2") return (best == Isa::Portable) ? best : Isa::Avx2;
    if (v == "avx512") return best;
  }
  return best;
}

Isa active_isa() noexcept {
  static const Isa isa = pick_isa();
  return isa;
}

/// Per-scalar-type variant selection plus thread-local packing scratch; the
/// buffers keep their capacity across tile-task invocations on a worker.
template <typename TS, typename T>
void run_packed(Trans ta, Trans tb, T alpha, Span2D<const TS> a, Span2D<const TS> b,
                Span2D<T> c) {
  static thread_local std::vector<T> apack;
  static thread_local std::vector<T> bpack;
  const GemmBlocking blk = gemm_blocking(sizeof(T));
  const Isa isa = active_isa();
#if GSX_X86_DISPATCH
  if (isa == Isa::Avx512) {
    if constexpr (std::is_same_v<TS, double>)
      gemm_f64_avx512(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else if constexpr (std::is_same_v<TS, float>)
      gemm_f32_avx512(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else if constexpr (std::is_same_v<TS, half>)
      gemm_h32_avx512(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else
      gemm_b32_avx512(ta, tb, alpha, a, b, c, blk, apack, bpack);
    return;
  }
  if (isa == Isa::Avx2) {
    if constexpr (std::is_same_v<TS, double>)
      gemm_f64_avx2(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else if constexpr (std::is_same_v<TS, float>)
      gemm_f32_avx2(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else if constexpr (std::is_same_v<TS, half>)
      gemm_h32_avx2(ta, tb, alpha, a, b, c, blk, apack, bpack);
    else
      gemm_b32_avx2(ta, tb, alpha, a, b, c, blk, apack, bpack);
    return;
  }
#endif
  (void)isa;
  if constexpr (std::is_same_v<TS, double>)
    gemm_f64_portable(ta, tb, alpha, a, b, c, blk, apack, bpack);
  else if constexpr (std::is_same_v<TS, float>)
    gemm_f32_portable(ta, tb, alpha, a, b, c, blk, apack, bpack);
  else if constexpr (std::is_same_v<TS, half>)
    gemm_h32_portable(ta, tb, alpha, a, b, c, blk, apack, bpack);
  else
    gemm_b32_portable(ta, tb, alpha, a, b, c, blk, apack, bpack);
}

}  // namespace

GemmBlocking gemm_blocking(std::size_t scalar_bytes) noexcept {
  // Defaults sized for ~48 KiB L1d and >= 1 MiB L2: the packed A block
  // (MC x KC) fills a fraction of L2 (256 KiB at 8 bytes), one packed B
  // micro-panel (KC x NR) stays L1-resident (~12 KiB), and NC bounds the
  // packed-B panel so tall-skinny serving batches don't blow the scratch.
  static const GemmBlocking f64{env_size("GSX_GEMM_MC", 128), env_size("GSX_GEMM_KC", 256),
                                env_size("GSX_GEMM_NC", 4096)};
  static const GemmBlocking f32{env_size("GSX_GEMM_MC", 256), env_size("GSX_GEMM_KC", 256),
                                env_size("GSX_GEMM_NC", 4096)};
  return scalar_bytes >= sizeof(double) ? f64 : f32;
}

const char* gemm_kernel_isa() noexcept {
  switch (active_isa()) {
    case Isa::Avx512: return "avx512";
    case Isa::Avx2: return "avx2";
    case Isa::Portable: break;
  }
  return "portable";
}

namespace detail {

void gemm_packed(Trans ta, Trans tb, double alpha, Span2D<const double> a,
                 Span2D<const double> b, Span2D<double> c) {
  run_packed<double, double>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const float> a,
                 Span2D<const float> b, Span2D<float> c) {
  run_packed<float, float>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const half> a,
                 Span2D<const half> b, Span2D<float> c) {
  run_packed<half, float>(ta, tb, alpha, a, b, c);
}

void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
                 Span2D<const bfloat16> b, Span2D<float> c) {
  run_packed<bfloat16, float>(ta, tb, alpha, a, b, c);
}

}  // namespace detail

}  // namespace gsx::la
