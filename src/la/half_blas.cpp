#include "la/half_blas.hpp"

#include "common/error.hpp"
#include "la/convert.hpp"
#include "la/gemm_kernel.hpp"
#include "la/matrix.hpp"

namespace gsx::la {

namespace {

/// Shared SHGEMM/SBGEMM body: operands stay in 16-bit storage and are
/// widened to FP32 inside the packing pass of the micro-kernel path (no
/// full-matrix scratch copies); all arithmetic and accumulation is FP32.
template <typename T16>
void shgemm_impl(Trans ta, Trans tb, float alpha, Span2D<const T16> a,
                 Span2D<const T16> b, float beta, Span2D<float> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((ta == Trans::NoTrans) ? a.rows() : a.cols()) == m, "shgemm: A shape");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.rows() : b.cols()) == k, "shgemm: B inner");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.cols() : b.rows()) == n, "shgemm: B outer");

  detail::scale_matrix(beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;
  detail::gemm_packed(ta, tb, alpha, a, b, c);
}

}  // namespace

void shgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
            float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void hgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
           float beta, Span2D<half> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const half>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

void sbgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
            Span2D<const bfloat16> b, float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void bgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
           Span2D<const bfloat16> b, float beta, Span2D<bfloat16> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const bfloat16>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

}  // namespace gsx::la
