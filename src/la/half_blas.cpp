#include "la/half_blas.hpp"

#include <vector>

#include "common/error.hpp"
#include "la/convert.hpp"
#include "la/matrix.hpp"

namespace gsx::la {

namespace {

/// Widen the 16-bit-storage operands to a float scratch and run the FP32
/// kernel (FP32 accumulation semantics of FP16/BF16 matrix engines).
template <typename T16>
void shgemm_impl(Trans ta, Trans tb, float alpha, Span2D<const T16> a,
                 Span2D<const T16> b, float beta, Span2D<float> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((ta == Trans::NoTrans) ? a.rows() : a.cols()) == m, "shgemm: A shape");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.rows() : b.cols()) == k, "shgemm: B inner");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.cols() : b.rows()) == n, "shgemm: B outer");

  Matrix<float> af((ta == Trans::NoTrans) ? m : k, (ta == Trans::NoTrans) ? k : m);
  Matrix<float> bf((tb == Trans::NoTrans) ? k : n, (tb == Trans::NoTrans) ? n : k);
  convert(a, af.view());
  convert(b, bf.view());
  gemm<float>(ta, tb, alpha, af.cview(), bf.cview(), beta, c);
}

}  // namespace

void shgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
            float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void hgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
           float beta, Span2D<half> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const half>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

void sbgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
            Span2D<const bfloat16> b, float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void bgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
           Span2D<const bfloat16> b, float beta, Span2D<bfloat16> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const bfloat16>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

}  // namespace gsx::la
