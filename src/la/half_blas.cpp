#include "la/half_blas.hpp"

#include <vector>

#include "common/error.hpp"
#include "la/convert.hpp"
#include "la/gemm_kernel.hpp"
#include "la/matrix.hpp"
#include "obs/flops.hpp"

namespace gsx::la {

namespace {

/// Shared SHGEMM/SBGEMM body: operands stay in 16-bit storage and are
/// widened to FP32 inside the packing pass of the micro-kernel path (no
/// full-matrix scratch copies); all arithmetic and accumulation is FP32.
template <typename T16>
void shgemm_impl(Trans ta, Trans tb, float alpha, Span2D<const T16> a,
                 Span2D<const T16> b, float beta, Span2D<float> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((ta == Trans::NoTrans) ? a.rows() : a.cols()) == m, "shgemm: A shape");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.rows() : b.cols()) == k, "shgemm: B inner");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.cols() : b.rows()) == n, "shgemm: B outer");

  detail::scale_matrix(beta, c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;
  detail::gemm_packed(ta, tb, alpha, a, b, c);
}

/// Shared validation for a uniform-shape 16-bit batch; returns (m, n, k).
template <typename Item>
void check_batch_shapes(Trans ta, Trans tb, const Item* items, std::size_t count,
                        std::size_t m, std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto& it = items[i];
    GSX_REQUIRE(it.c.rows() == m && it.c.cols() == n, "gemm16_batch: C shape mismatch");
    GSX_REQUIRE(((ta == Trans::NoTrans) ? it.a.rows() : it.a.cols()) == m &&
                    ((ta == Trans::NoTrans) ? it.a.cols() : it.a.rows()) == k,
                "gemm16_batch: A shape mismatch");
    GSX_REQUIRE(((tb == Trans::NoTrans) ? it.b.rows() : it.b.cols()) == k &&
                    ((tb == Trans::NoTrans) ? it.b.cols() : it.b.rows()) == n,
                "gemm16_batch: B shape mismatch");
  }
}

/// Batched SHGEMM/SBGEMM body: like shgemm_impl, the packed path runs
/// unconditionally (there is no reference fallback for 16-bit storage).
template <typename T16>
void shgemm_batch_impl(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<T16, float>* items, std::size_t count,
                       float beta) {
  if (count == 0) return;
  const std::size_t m = items[0].c.rows();
  const std::size_t n = items[0].c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  check_batch_shapes(ta, tb, items, count, m, n, k);
  for (std::size_t i = 0; i < count; ++i) detail::scale_matrix(beta, items[i].c);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;
  obs::record_batch(obs::KernelOp::Gemm, obs::PrecisionOf<T16>::value, count);
  detail::gemm_batch_packed(ta, tb, alpha, items, count);
}

/// Batched HGEMM/BGEMM body: one FP32 scratch panel for the whole batch
/// (item i occupies columns [i*n, (i+1)*n)), vectorized widen/narrow of C,
/// one batched packed sweep between them.
template <typename T16>
void gemm16_batch_impl(Trans ta, Trans tb, float alpha,
                       const Gemm16BatchItem<T16>* items, std::size_t count,
                       float beta) {
  if (count == 0) return;
  const std::size_t m = items[0].c.rows();
  const std::size_t n = items[0].c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  check_batch_shapes(ta, tb, items, count, m, n, k);
  if (m == 0 || n == 0) return;

  constexpr Precision p16 = obs::PrecisionOf<T16>::value;
  obs::record_batch(obs::KernelOp::Gemm, p16, count);
  obs::add_conversion(p16, Precision::FP32, m * n * count);

  Matrix<float> cf(m, n * count);
  std::vector<GemmBatchItem<T16, float>> g(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Span2D<float> ci = cf.view().sub(0, i * n, m, n);
    detail::widen_fast(
        Span2D<const T16>(items[i].c.data(), m, n, items[i].c.ld()), ci);
    detail::scale_matrix(beta, ci);
    g[i] = {items[i].a, items[i].b, ci};
  }
  if (alpha != 0.0f && k != 0) detail::gemm_batch_packed(ta, tb, alpha, g.data(), count);
  obs::add_conversion(Precision::FP32, p16, m * n * count);
  for (std::size_t i = 0; i < count; ++i)
    detail::narrow_fast(cf.cview().sub(0, i * n, m, n), items[i].c);
}

}  // namespace

void shgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
            float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void hgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
           float beta, Span2D<half> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const half>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

void sbgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
            Span2D<const bfloat16> b, float beta, Span2D<float> c) {
  shgemm_impl(ta, tb, alpha, a, b, beta, c);
}

void bgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
           Span2D<const bfloat16> b, float beta, Span2D<bfloat16> c) {
  Matrix<float> cf(c.rows(), c.cols());
  convert(Span2D<const bfloat16>(c.data(), c.rows(), c.cols(), c.ld()), cf.view());
  shgemm_impl(ta, tb, alpha, a, b, beta, cf.view());
  convert(cf.cview(), c);
}

void shgemm_batch(Trans ta, Trans tb, float alpha,
                  const GemmBatchItem<half, float>* items, std::size_t count,
                  float beta) {
  shgemm_batch_impl(ta, tb, alpha, items, count, beta);
}

void sbgemm_batch(Trans ta, Trans tb, float alpha,
                  const GemmBatchItem<bfloat16, float>* items, std::size_t count,
                  float beta) {
  shgemm_batch_impl(ta, tb, alpha, items, count, beta);
}

void hgemm_batch(Trans ta, Trans tb, float alpha, const Gemm16BatchItem<half>* items,
                 std::size_t count, float beta) {
  gemm16_batch_impl(ta, tb, alpha, items, count, beta);
}

void bgemm_batch(Trans ta, Trans tb, float alpha,
                 const Gemm16BatchItem<bfloat16>* items, std::size_t count, float beta) {
  gemm16_batch_impl(ta, tb, alpha, items, count, beta);
}

}  // namespace gsx::la
