// Level-3 BLAS over column-major views, templated on the scalar.
//
// These are the sequential task bodies of the tile algorithms: one GEMM /
// SYRK / TRSM / POTRF call per tile task, scheduled by the runtime (the
// paper executes SSL kernels the same way, one sequential kernel per task).
//
// Two layers:
//   la::ref::  — the original unit-stride reference loops, kept alive as
//                test oracles and as the small-problem fallback.
//   la::       — the public entry points. GEMM dispatches FP32/FP64 work of
//                meaningful size to the packed, register-tiled micro-kernel
//                path (gemm_kernel.hpp); SYRK and TRSM are blocked
//                algorithms whose trailing updates funnel into that GEMM,
//                with reference code only at the innermost block.
#pragma once

#include <cstddef>
#include <type_traits>

#include "common/error.hpp"
#include "common/span2d.hpp"
#include "la/blas_types.hpp"
#include "la/gemm_kernel.hpp"
#include "obs/flops.hpp"

namespace gsx::la {

namespace detail {

/// Blocking depth in k for the reference GEMM; keeps one panel of A and B in
/// L1/L2.
inline constexpr std::size_t kGemmKBlock = 256;

/// Order at which blocked SYRK/TRSM stop recursing and run reference code
/// on the diagonal block.
inline constexpr std::size_t kMicroBlock = 64;

template <typename T>
void scale_matrix(T beta, Span2D<T> c) {
  if (beta == T{1}) return;
  for (std::size_t j = 0; j < c.cols(); ++j) {
    T* cj = &c(0, j);
    if (beta == T{0}) {
      for (std::size_t i = 0; i < c.rows(); ++i) cj[i] = T{0};
    } else {
      for (std::size_t i = 0; i < c.rows(); ++i) cj[i] *= beta;
    }
  }
}

}  // namespace detail

namespace ref {

/// C += alpha * op(A) * op(B); the reference accumulation loops. No
/// per-element zero tests: sparsity is handled structurally by the callers
/// (a rank-0 TLR factor arrives as k == 0 and never reaches these loops).
template <typename T>
void gemm_accum(Trans ta, Trans tb, T alpha, Span2D<const T> a, Span2D<const T> b,
                Span2D<T> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();

  for (std::size_t k0 = 0; k0 < k; k0 += detail::kGemmKBlock) {
    const std::size_t kb = std::min(detail::kGemmKBlock, k - k0);
    if (ta == Trans::NoTrans && tb == Trans::NoTrans) {
      // C(:,j) += alpha * A(:,l) * B(l,j): unit-stride axpy in i.
      for (std::size_t j = 0; j < n; ++j) {
        T* cj = &c(0, j);
        for (std::size_t l = 0; l < kb; ++l) {
          const T blj = alpha * b(k0 + l, j);
          const T* al = &a(0, k0 + l);
          for (std::size_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    } else if (ta == Trans::Trans && tb == Trans::NoTrans) {
      // C(i,j) += alpha * dot(A(:,i), B(:,j)): unit-stride dot in l.
      for (std::size_t j = 0; j < n; ++j) {
        const T* bj = &b(k0, j);
        for (std::size_t i = 0; i < m; ++i) {
          const T* ai = &a(k0, i);
          T s{};
          for (std::size_t l = 0; l < kb; ++l) s += ai[l] * bj[l];
          c(i, j) += alpha * s;
        }
      }
    } else if (ta == Trans::NoTrans && tb == Trans::Trans) {
      // C(:,j) += alpha * A(:,l) * B(j,l).
      for (std::size_t j = 0; j < n; ++j) {
        T* cj = &c(0, j);
        for (std::size_t l = 0; l < kb; ++l) {
          const T blj = alpha * b(j, k0 + l);
          const T* al = &a(0, k0 + l);
          for (std::size_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    } else {  // Trans, Trans
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < m; ++i) {
          const T* ai = &a(k0, i);
          T s{};
          for (std::size_t l = 0; l < kb; ++l) s += ai[l] * b(j, k0 + l);
          c(i, j) += alpha * s;
        }
      }
    }
  }
}

/// C = alpha * op(A) * op(B) + beta * C; reference oracle.
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, Span2D<const T> a, Span2D<const T> b, T beta,
          Span2D<T> c) {
  detail::scale_matrix(beta, c);
  if (alpha == T{0}) return;
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  if (c.rows() == 0 || c.cols() == 0 || k == 0) return;
  gemm_accum<T>(ta, tb, alpha, a, b, c);
}

/// C = alpha * op(A) * op(A)^T + beta * C on the `uplo` triangle; oracle.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, Span2D<const T> a, T beta, Span2D<T> c) {
  const std::size_t n = c.rows();
  const std::size_t k = (trans == Trans::NoTrans) ? a.cols() : a.rows();

  // Scale the addressed triangle.
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
    const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (std::size_t i = ibeg; i < iend; ++i)
      c(i, j) = (beta == T{0}) ? T{0} : c(i, j) * beta;
  }
  if (alpha == T{0} || k == 0) return;

  if (trans == Trans::NoTrans) {
    // C(i,j) += alpha * A(i,l) * A(j,l): axpy over i within the triangle.
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t l = 0; l < k; ++l) {
        const T ajl = alpha * a(j, l);
        if (ajl == T{0}) continue;
        const T* al = &a(0, l);
        if (uplo == Uplo::Lower) {
          T* cj = &c(0, j);
          for (std::size_t i = j; i < n; ++i) cj[i] += al[i] * ajl;
        } else {
          T* cj = &c(0, j);
          for (std::size_t i = 0; i <= j; ++i) cj[i] += al[i] * ajl;
        }
      }
    }
  } else {
    // C(i,j) += alpha * dot(A(:,i), A(:,j)).
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
      const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
      const T* aj = &a(0, j);
      for (std::size_t i = ibeg; i < iend; ++i) {
        const T* ai = &a(0, i);
        T s{};
        for (std::size_t l = 0; l < k; ++l) s += ai[l] * aj[l];
        c(i, j) += alpha * s;
      }
    }
  }
}

/// B = alpha * op(A)^{-1} * B (Side::Left) or B = alpha * B * op(A)^{-1}
/// (Side::Right), with A triangular. Reference algorithm (netlib TRSM).
template <typename T>
void trsm(Side side, Uplo uplo, Trans ta, Diag diag, T alpha, Span2D<const T> a,
          Span2D<T> b) {
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  const bool unit = (diag == Diag::Unit);

  detail::scale_matrix(alpha, b);
  if (m == 0 || n == 0) return;

  if (side == Side::Left) {
    if (ta == Trans::NoTrans) {
      if (uplo == Uplo::Lower) {
        // Forward substitution, column-oriented.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = 0; kk < m; ++kk) {
            if (!unit) bj[kk] /= a(kk, kk);
            const T bkj = bj[kk];
            if (bkj == T{0}) continue;
            const T* ak = &a(0, kk);
            for (std::size_t i = kk + 1; i < m; ++i) bj[i] -= ak[i] * bkj;
          }
        }
      } else {
        // Backward substitution.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = m; kk-- > 0;) {
            if (!unit) bj[kk] /= a(kk, kk);
            const T bkj = bj[kk];
            if (bkj == T{0}) continue;
            const T* ak = &a(0, kk);
            for (std::size_t i = 0; i < kk; ++i) bj[i] -= ak[i] * bkj;
          }
        }
      }
    } else {  // op(A) = A^T
      if (uplo == Uplo::Lower) {
        // Solve L^T X = B: backward, dot-product form.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t ii = m; ii-- > 0;) {
            const T* ai = &a(0, ii);
            T s = bj[ii];
            for (std::size_t kk = ii + 1; kk < m; ++kk) s -= ai[kk] * bj[kk];
            bj[ii] = unit ? s : s / a(ii, ii);
          }
        }
      } else {
        // Solve U^T X = B: forward, dot-product form.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t ii = 0; ii < m; ++ii) {
            T s = bj[ii];
            for (std::size_t kk = 0; kk < ii; ++kk) s -= a(kk, ii) * bj[kk];
            bj[ii] = unit ? s : s / a(ii, ii);
          }
        }
      }
    }
  } else {  // Side::Right: B := B * op(A)^{-1}
    if (ta == Trans::NoTrans) {
      if (uplo == Uplo::Lower) {
        // X L = B: process columns right-to-left.
        for (std::size_t j = n; j-- > 0;) {
          T* bj = &b(0, j);
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
          for (std::size_t kk = 0; kk < j; ++kk) {
            const T akj = a(j, kk);
            if (akj == T{0}) continue;
            T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bk[i] -= bj[i] * akj;
          }
        }
      } else {
        // X U = B: left-to-right.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
          for (std::size_t kk = j + 1; kk < n; ++kk) {
            const T ajk = a(j, kk);
            if (ajk == T{0}) continue;
            T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bk[i] -= bj[i] * ajk;
          }
        }
      }
    } else {  // B := B * op(A)^{-T}
      if (uplo == Uplo::Lower) {
        // X L^T = B: left-to-right; the tile-Cholesky panel solve.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = 0; kk < j; ++kk) {
            const T ajk = a(j, kk);
            if (ajk == T{0}) continue;
            const T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bj[i] -= bk[i] * ajk;
          }
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
        }
      } else {
        // X U^T = B: right-to-left.
        for (std::size_t j = n; j-- > 0;) {
          T* bj = &b(0, j);
          for (std::size_t kk = j + 1; kk < n; ++kk) {
            const T akj = a(j, kk);
            if (akj == T{0}) continue;
            const T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bj[i] -= bk[i] * akj;
          }
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
        }
      }
    }
  }
}

}  // namespace ref

namespace detail {

/// Scalars with a packed micro-kernel implementation.
template <typename T>
inline constexpr bool kHasPackedKernel =
    std::is_same_v<T, double> || std::is_same_v<T, float>;

/// C += alpha * op(A) * op(B): packed path when it pays off, reference
/// accumulation otherwise.
template <typename T>
void gemm_accum_fast(Trans ta, Trans tb, T alpha, Span2D<const T> a, Span2D<const T> b,
                     Span2D<T> c) {
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  if constexpr (kHasPackedKernel<T>) {
    if (use_packed(c.rows(), c.cols(), k)) {
      gemm_packed(ta, tb, alpha, a, b, c);
      return;
    }
  }
  ref::gemm_accum<T>(ta, tb, alpha, a, b, c);
}

}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, Span2D<const T> a, Span2D<const T> b, T beta,
          Span2D<T> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((ta == Trans::NoTrans) ? a.rows() : a.cols()) == m, "gemm: A shape mismatch");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.rows() : b.cols()) == k, "gemm: B inner mismatch");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.cols() : b.rows()) == n, "gemm: B outer mismatch");

  detail::scale_matrix(beta, c);
  // k == 0 is the one structural-sparsity check: rank-0 TLR factors
  // contribute nothing. No per-element zero tests anywhere downstream.
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;
  detail::gemm_accum_fast<T>(ta, tb, alpha, a, b, c);
}

namespace detail {

/// Accumulating blocked SYRK: C_triangle += alpha * op(A) op(A)^T. Splits
/// recursively; the off-diagonal quadrant is a plain GEMM (packed path), the
/// diagonal blocks bottom out in the reference kernel at kMicroBlock.
template <typename T>
void syrk_accum_blocked(Uplo uplo, Trans trans, T alpha, Span2D<const T> a, Span2D<T> c) {
  const std::size_t n = c.rows();
  const std::size_t k = (trans == Trans::NoTrans) ? a.cols() : a.rows();
  if (n <= kMicroBlock || !kHasPackedKernel<T>) {
    // Reference SYRK with beta = 1 accumulates in place.
    ref::syrk<T>(uplo, trans, alpha, a, T{1}, c);
    return;
  }
  const std::size_t h = n / 2;
  const Span2D<const T> a1 = (trans == Trans::NoTrans) ? a.sub(0, 0, h, k)
                                                       : a.sub(0, 0, k, h);
  const Span2D<const T> a2 = (trans == Trans::NoTrans) ? a.sub(h, 0, n - h, k)
                                                       : a.sub(0, h, k, n - h);
  syrk_accum_blocked<T>(uplo, trans, alpha, a1, c.sub(0, 0, h, h));
  syrk_accum_blocked<T>(uplo, trans, alpha, a2, c.sub(h, h, n - h, n - h));
  if (uplo == Uplo::Lower) {
    auto c21 = c.sub(h, 0, n - h, h);
    if (trans == Trans::NoTrans)
      gemm_accum_fast<T>(Trans::NoTrans, Trans::Trans, alpha, a2, a1, c21);
    else
      gemm_accum_fast<T>(Trans::Trans, Trans::NoTrans, alpha, a2, a1, c21);
  } else {
    auto c12 = c.sub(0, h, h, n - h);
    if (trans == Trans::NoTrans)
      gemm_accum_fast<T>(Trans::NoTrans, Trans::Trans, alpha, a1, a2, c12);
    else
      gemm_accum_fast<T>(Trans::Trans, Trans::NoTrans, alpha, a1, a2, c12);
  }
}

}  // namespace detail

/// C = alpha * op(A) * op(A)^T + beta * C, touching only the `uplo` triangle.
/// op(A) is n x k; C is n x n.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, Span2D<const T> a, T beta, Span2D<T> c) {
  const std::size_t n = c.rows();
  GSX_REQUIRE(c.cols() == n, "syrk: C must be square");
  const std::size_t k = (trans == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((trans == Trans::NoTrans) ? a.rows() : a.cols()) == n, "syrk: A shape mismatch");

  // Scale the addressed triangle.
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
    const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (std::size_t i = ibeg; i < iend; ++i)
      c(i, j) = (beta == T{0}) ? T{0} : c(i, j) * beta;
  }
  if (alpha == T{0} || k == 0 || n == 0) return;
  detail::syrk_accum_blocked<T>(uplo, trans, alpha, a, c);
}

namespace detail {

/// In-place blocked triangular solve (alpha already applied to B). Halves
/// the triangle recursively: the two diagonal sub-solves recurse, the
/// coupling update is a GEMM on the packed path. All eight
/// side / uplo / trans combinations reduce to the same four-step pattern.
template <typename T>
void trsm_blocked(Side side, Uplo uplo, Trans ta, Diag diag, Span2D<const T> a,
                  Span2D<T> b) {
  const std::size_t na = a.rows();
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  if (na <= kMicroBlock || !kHasPackedKernel<T>) {
    ref::trsm<T>(side, uplo, ta, diag, T{1}, a, b);
    return;
  }
  const std::size_t h = na / 2;
  const auto a11 = a.sub(0, 0, h, h);
  const auto a22 = a.sub(h, h, na - h, na - h);
  const T neg1 = T{-1};

  if (side == Side::Left) {
    auto b1 = b.sub(0, 0, h, n);
    auto b2 = b.sub(h, 0, m - h, n);
    if (uplo == Uplo::Lower) {
      const auto a21 = a.sub(h, 0, na - h, h);
      if (ta == Trans::NoTrans) {
        // [A11 0; A21 A22] [X1; X2] = [B1; B2]
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::NoTrans, neg1, a21, b1, b2);
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
      } else {
        // [A11^T A21^T; 0 A22^T] [X1; X2] = [B1; B2]
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
        gemm_accum_fast<T>(Trans::Trans, Trans::NoTrans, neg1, a21, b2, b1);
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
      }
    } else {
      const auto a12 = a.sub(0, h, h, na - h);
      if (ta == Trans::NoTrans) {
        // [A11 A12; 0 A22] [X1; X2] = [B1; B2]
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::NoTrans, neg1, a12, b2, b1);
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
      } else {
        // [A11^T 0; A12^T A22^T] [X1; X2] = [B1; B2]
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
        gemm_accum_fast<T>(Trans::Trans, Trans::NoTrans, neg1, a12, b1, b2);
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
      }
    }
  } else {  // Side::Right: X op(A) = B
    auto b1 = b.sub(0, 0, m, h);
    auto b2 = b.sub(0, h, m, n - h);
    if (uplo == Uplo::Lower) {
      const auto a21 = a.sub(h, 0, na - h, h);
      if (ta == Trans::NoTrans) {
        // [X1 X2] [A11 0; A21 A22] = [B1 B2]
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::NoTrans, neg1, b2, a21, b1);
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
      } else {
        // [X1 X2] [A11^T A21^T; 0 A22^T] = [B1 B2]; the tile panel solve.
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::Trans, neg1, b1, a21, b2);
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
      }
    } else {
      const auto a12 = a.sub(0, h, h, na - h);
      if (ta == Trans::NoTrans) {
        // [X1 X2] [A11 A12; 0 A22] = [B1 B2]
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::NoTrans, neg1, b1, a12, b2);
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
      } else {
        // [X1 X2] [A11^T 0; A12^T A22^T] = [B1 B2]
        trsm_blocked<T>(side, uplo, ta, diag, a22, b2);
        gemm_accum_fast<T>(Trans::NoTrans, Trans::Trans, neg1, b2, a12, b1);
        trsm_blocked<T>(side, uplo, ta, diag, a11, b1);
      }
    }
  }
}

}  // namespace detail

/// B = alpha * op(A)^{-1} * B (Side::Left) or B = alpha * B * op(A)^{-1}
/// (Side::Right), with A triangular.
template <typename T>
void trsm(Side side, Uplo uplo, Trans ta, Diag diag, T alpha, Span2D<const T> a,
          Span2D<T> b) {
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  const std::size_t na = (side == Side::Left) ? m : n;
  GSX_REQUIRE(a.rows() == na && a.cols() == na, "trsm: A shape mismatch");

  detail::scale_matrix(alpha, b);
  if (m == 0 || n == 0) return;
  detail::trsm_blocked<T>(side, uplo, ta, diag, a, b);
}

// ---------------------------------------------------------------------------
// Batched entry points.
//
// The tile algorithms issue thousands of same-shape small ops (one trailing
// update per tile pair, one panel-solve apply per block row); launching them
// one at a time re-packs the shared operand and re-pays the call overhead
// every time. The *_batch entry points take an array of same-shape ops and
// run them through one blocked sweep: the packed op(B) panel is re-used
// across consecutive ops that share B (the TLR trailing updates off one
// panel tile, the solve applies against one RHS block). Results are
// bit-identical to looping the per-op entry points over the items — the
// packed-vs-reference decision and every per-item accumulation order are
// unchanged — so callers can batch opportunistically without revalidating
// numerics. Batch submissions are recorded in the obs ledger's
// "la.batch.<op>.<precision>" histograms.

namespace detail {

/// Batched analog of gemm_accum_fast: same use_packed decision (uniform
/// shapes mean one decision for the whole batch), reference loop fallback.
template <typename T>
void gemm_accum_fast_batch(Trans ta, Trans tb, T alpha, const GemmBatchItem<T>* items,
                           std::size_t count) {
  const std::size_t k =
      (ta == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  if constexpr (kHasPackedKernel<T>) {
    if (use_packed(items[0].c.rows(), items[0].c.cols(), k)) {
      gemm_batch_packed(ta, tb, alpha, items, count);
      return;
    }
  }
  for (std::size_t i = 0; i < count; ++i)
    ref::gemm_accum<T>(ta, tb, alpha, items[i].a, items[i].b, items[i].c);
}

}  // namespace detail

/// Batched GEMM: items[i].c = alpha * op(items[i].a) * op(items[i].b)
/// + beta * items[i].c. Every item must have the same (m, n, k).
template <typename T>
void gemm_batch(Trans ta, Trans tb, T alpha, const GemmBatchItem<T>* items,
                std::size_t count, T beta) {
  if (count == 0) return;
  const std::size_t m = items[0].c.rows();
  const std::size_t n = items[0].c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  for (std::size_t i = 0; i < count; ++i) {
    const auto& it = items[i];
    GSX_REQUIRE(it.c.rows() == m && it.c.cols() == n, "gemm_batch: C shape mismatch");
    GSX_REQUIRE(((ta == Trans::NoTrans) ? it.a.rows() : it.a.cols()) == m &&
                    ((ta == Trans::NoTrans) ? it.a.cols() : it.a.rows()) == k,
                "gemm_batch: A shape mismatch");
    GSX_REQUIRE(((tb == Trans::NoTrans) ? it.b.rows() : it.b.cols()) == k &&
                    ((tb == Trans::NoTrans) ? it.b.cols() : it.b.rows()) == n,
                "gemm_batch: B shape mismatch");
  }
  for (std::size_t i = 0; i < count; ++i) detail::scale_matrix(beta, items[i].c);
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;
  obs::record_batch(obs::KernelOp::Gemm, obs::PrecisionOf<T>::value, count);
  detail::gemm_accum_fast_batch<T>(ta, tb, alpha, items, count);
}

/// One op of a same-shape SYRK batch: C = alpha * op(A) op(A)^T + beta * C.
template <typename T>
struct SyrkBatchItem {
  Span2D<const T> a;
  Span2D<T> c;
};

namespace detail {

/// Joint recursion over a SYRK batch, mirroring syrk_accum_blocked step for
/// step per item; the off-diagonal quadrants of all items coalesce into one
/// GEMM batch per recursion level.
template <typename T>
void syrk_accum_batch(Uplo uplo, Trans trans, T alpha, const SyrkBatchItem<T>* items,
                      std::size_t count) {
  const std::size_t n = items[0].c.rows();
  const std::size_t k = (trans == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  if (n <= kMicroBlock || !kHasPackedKernel<T>) {
    for (std::size_t i = 0; i < count; ++i)
      ref::syrk<T>(uplo, trans, alpha, items[i].a, T{1}, items[i].c);
    return;
  }
  const std::size_t h = n / 2;
  std::vector<SyrkBatchItem<T>> sub(count);
  for (std::size_t i = 0; i < count; ++i)
    sub[i] = {(trans == Trans::NoTrans) ? items[i].a.sub(0, 0, h, k)
                                        : items[i].a.sub(0, 0, k, h),
              items[i].c.sub(0, 0, h, h)};
  syrk_accum_batch<T>(uplo, trans, alpha, sub.data(), count);
  for (std::size_t i = 0; i < count; ++i)
    sub[i] = {(trans == Trans::NoTrans) ? items[i].a.sub(h, 0, n - h, k)
                                        : items[i].a.sub(0, h, k, n - h),
              items[i].c.sub(h, h, n - h, n - h)};
  syrk_accum_batch<T>(uplo, trans, alpha, sub.data(), count);

  std::vector<GemmBatchItem<T>> g(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Span2D<const T> a1 = (trans == Trans::NoTrans) ? items[i].a.sub(0, 0, h, k)
                                                         : items[i].a.sub(0, 0, k, h);
    const Span2D<const T> a2 = (trans == Trans::NoTrans)
                                   ? items[i].a.sub(h, 0, n - h, k)
                                   : items[i].a.sub(0, h, k, n - h);
    if (uplo == Uplo::Lower)
      g[i] = {a2, a1, items[i].c.sub(h, 0, n - h, h)};
    else
      g[i] = {a1, a2, items[i].c.sub(0, h, h, n - h)};
  }
  if (trans == Trans::NoTrans)
    gemm_accum_fast_batch<T>(Trans::NoTrans, Trans::Trans, alpha, g.data(), count);
  else
    gemm_accum_fast_batch<T>(Trans::Trans, Trans::NoTrans, alpha, g.data(), count);
}

}  // namespace detail

/// Batched SYRK on the `uplo` triangle; every item must have the same
/// (n, k) and `trans` orientation.
template <typename T>
void syrk_batch(Uplo uplo, Trans trans, T alpha, const SyrkBatchItem<T>* items,
                std::size_t count, T beta) {
  if (count == 0) return;
  const std::size_t n = items[0].c.rows();
  const std::size_t k = (trans == Trans::NoTrans) ? items[0].a.cols() : items[0].a.rows();
  for (std::size_t i = 0; i < count; ++i) {
    const auto& it = items[i];
    GSX_REQUIRE(it.c.rows() == n && it.c.cols() == n, "syrk_batch: C shape mismatch");
    GSX_REQUIRE(((trans == Trans::NoTrans) ? it.a.rows() : it.a.cols()) == n &&
                    ((trans == Trans::NoTrans) ? it.a.cols() : it.a.rows()) == k,
                "syrk_batch: A shape mismatch");
  }
  for (std::size_t b = 0; b < count; ++b) {
    auto c = items[b].c;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
      const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
      for (std::size_t i = ibeg; i < iend; ++i)
        c(i, j) = (beta == T{0}) ? T{0} : c(i, j) * beta;
    }
  }
  if (alpha == T{0} || k == 0 || n == 0) return;
  obs::record_batch(obs::KernelOp::Syrk, obs::PrecisionOf<T>::value, count);
  detail::syrk_accum_batch<T>(uplo, trans, alpha, items, count);
}

namespace detail {

/// Joint recursion over a shared-triangle TRSM batch, mirroring trsm_blocked
/// step for step per item; the coupling updates of all items coalesce into
/// one GEMM batch per recursion level. For the Side::Right cases the shared
/// A sub-block is the GEMM's B operand, so its packed panel is re-used
/// across the whole batch.
template <typename T>
void trsm_blocked_batch(Side side, Uplo uplo, Trans ta, Diag diag, Span2D<const T> a,
                        const Span2D<T>* bs, std::size_t count) {
  const std::size_t na = a.rows();
  const std::size_t m = bs[0].rows();
  const std::size_t n = bs[0].cols();
  if (na <= kMicroBlock || !kHasPackedKernel<T>) {
    for (std::size_t i = 0; i < count; ++i)
      ref::trsm<T>(side, uplo, ta, diag, T{1}, a, bs[i]);
    return;
  }
  const std::size_t h = na / 2;
  const auto a11 = a.sub(0, 0, h, h);
  const auto a22 = a.sub(h, h, na - h, na - h);
  const T neg1 = T{-1};

  std::vector<Span2D<T>> b1(count), b2(count);
  std::vector<GemmBatchItem<T>> g(count);
  if (side == Side::Left) {
    for (std::size_t i = 0; i < count; ++i) {
      b1[i] = bs[i].sub(0, 0, h, n);
      b2[i] = bs[i].sub(h, 0, m - h, n);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      b1[i] = bs[i].sub(0, 0, m, h);
      b2[i] = bs[i].sub(0, h, m, n - h);
    }
  }
  const auto couple = [&](Trans ga, Trans gb, const std::vector<Span2D<T>>& src,
                          const Span2D<const T> amid, const std::vector<Span2D<T>>& dst,
                          bool a_first) {
    for (std::size_t i = 0; i < count; ++i)
      g[i] = a_first ? GemmBatchItem<T>{amid, src[i], dst[i]}
                     : GemmBatchItem<T>{src[i], amid, dst[i]};
    gemm_accum_fast_batch<T>(ga, gb, neg1, g.data(), count);
  };

  if (side == Side::Left) {
    if (uplo == Uplo::Lower) {
      const auto a21 = a.sub(h, 0, na - h, h);
      if (ta == Trans::NoTrans) {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
        couple(Trans::NoTrans, Trans::NoTrans, b1, a21, b2, true);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
      } else {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
        couple(Trans::Trans, Trans::NoTrans, b2, a21, b1, true);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
      }
    } else {
      const auto a12 = a.sub(0, h, h, na - h);
      if (ta == Trans::NoTrans) {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
        couple(Trans::NoTrans, Trans::NoTrans, b2, a12, b1, true);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
      } else {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
        couple(Trans::Trans, Trans::NoTrans, b1, a12, b2, true);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
      }
    }
  } else {  // Side::Right
    if (uplo == Uplo::Lower) {
      const auto a21 = a.sub(h, 0, na - h, h);
      if (ta == Trans::NoTrans) {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
        couple(Trans::NoTrans, Trans::NoTrans, b2, a21, b1, false);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
      } else {
        // The tile panel solve: shared a21 is the GEMM B operand.
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
        couple(Trans::NoTrans, Trans::Trans, b1, a21, b2, false);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
      }
    } else {
      const auto a12 = a.sub(0, h, h, na - h);
      if (ta == Trans::NoTrans) {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
        couple(Trans::NoTrans, Trans::NoTrans, b1, a12, b2, false);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
      } else {
        trsm_blocked_batch<T>(side, uplo, ta, diag, a22, b2.data(), count);
        couple(Trans::NoTrans, Trans::Trans, b2, a12, b1, false);
        trsm_blocked_batch<T>(side, uplo, ta, diag, a11, b1.data(), count);
      }
    }
  }
}

}  // namespace detail

/// Batched TRSM against one shared triangle: bs[i] = alpha * op(A)^{-1} *
/// bs[i] (Side::Left) or bs[i] * op(A)^{-1} (Side::Right). Every RHS must
/// have the same shape. This is the multi-RHS shape of the tile solve phase
/// (many tiles solved against one factor panel tile).
template <typename T>
void trsm_batch(Side side, Uplo uplo, Trans ta, Diag diag, T alpha, Span2D<const T> a,
                const Span2D<T>* bs, std::size_t count) {
  if (count == 0) return;
  const std::size_t m = bs[0].rows();
  const std::size_t n = bs[0].cols();
  const std::size_t na = (side == Side::Left) ? m : n;
  GSX_REQUIRE(a.rows() == na && a.cols() == na, "trsm_batch: A shape mismatch");
  for (std::size_t i = 0; i < count; ++i)
    GSX_REQUIRE(bs[i].rows() == m && bs[i].cols() == n, "trsm_batch: B shape mismatch");

  for (std::size_t i = 0; i < count; ++i) detail::scale_matrix(alpha, bs[i]);
  if (m == 0 || n == 0) return;
  obs::record_batch(obs::KernelOp::Trsm, obs::PrecisionOf<T>::value, count);
  detail::trsm_blocked_batch<T>(side, uplo, ta, diag, a, bs, count);
}

/// y = alpha * op(A) x + beta * y.
template <typename T>
void gemv(Trans ta, T alpha, Span2D<const T> a, const T* x, T beta, T* y) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t leny = (ta == Trans::NoTrans) ? m : n;
  for (std::size_t i = 0; i < leny; ++i) y[i] = (beta == T{0}) ? T{0} : y[i] * beta;
  if (ta == Trans::NoTrans) {
    for (std::size_t j = 0; j < n; ++j) {
      const T xj = alpha * x[j];
      if (xj == T{0}) continue;
      const T* aj = &a(0, j);
      for (std::size_t i = 0; i < m; ++i) y[i] += aj[i] * xj;
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const T* aj = &a(0, j);
      T s{};
      for (std::size_t i = 0; i < m; ++i) s += aj[i] * x[i];
      y[j] += alpha * s;
    }
  }
}

}  // namespace gsx::la
