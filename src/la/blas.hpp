// Level-3 BLAS kernels over column-major views, templated on the scalar.
//
// These are the sequential task bodies of the tile algorithms: one GEMM /
// SYRK / TRSM / POTRF call per tile task, scheduled by the runtime (the
// paper executes SSL kernels the same way, one sequential kernel per task).
// Loop orders are chosen so the innermost loop strides unit distance through
// column-major storage and autovectorizes.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/span2d.hpp"

namespace gsx::la {

enum class Uplo : unsigned char { Lower, Upper };
enum class Trans : unsigned char { NoTrans, Trans };
enum class Side : unsigned char { Left, Right };
enum class Diag : unsigned char { NonUnit, Unit };

namespace detail {

/// Blocking depth in k for GEMM; keeps one panel of A and B in L1/L2.
inline constexpr std::size_t kGemmKBlock = 256;

template <typename T>
void scale_matrix(T beta, Span2D<T> c) {
  if (beta == T{1}) return;
  for (std::size_t j = 0; j < c.cols(); ++j) {
    T* cj = &c(0, j);
    if (beta == T{0}) {
      for (std::size_t i = 0; i < c.rows(); ++i) cj[i] = T{0};
    } else {
      for (std::size_t i = 0; i < c.rows(); ++i) cj[i] *= beta;
    }
  }
}

}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C.
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n.
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, Span2D<const T> a, Span2D<const T> b, T beta,
          Span2D<T> c) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = (ta == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((ta == Trans::NoTrans) ? a.rows() : a.cols()) == m, "gemm: A shape mismatch");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.rows() : b.cols()) == k, "gemm: B inner mismatch");
  GSX_REQUIRE(((tb == Trans::NoTrans) ? b.cols() : b.rows()) == n, "gemm: B outer mismatch");

  detail::scale_matrix(beta, c);
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  for (std::size_t k0 = 0; k0 < k; k0 += detail::kGemmKBlock) {
    const std::size_t kb = std::min(detail::kGemmKBlock, k - k0);
    if (ta == Trans::NoTrans && tb == Trans::NoTrans) {
      // C(:,j) += alpha * A(:,l) * B(l,j): unit-stride axpy in i.
      for (std::size_t j = 0; j < n; ++j) {
        T* cj = &c(0, j);
        for (std::size_t l = 0; l < kb; ++l) {
          const T blj = alpha * b(k0 + l, j);
          if (blj == T{0}) continue;
          const T* al = &a(0, k0 + l);
          for (std::size_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    } else if (ta == Trans::Trans && tb == Trans::NoTrans) {
      // C(i,j) += alpha * dot(A(:,i), B(:,j)): unit-stride dot in l.
      for (std::size_t j = 0; j < n; ++j) {
        const T* bj = &b(k0, j);
        for (std::size_t i = 0; i < m; ++i) {
          const T* ai = &a(k0, i);
          T s{};
          for (std::size_t l = 0; l < kb; ++l) s += ai[l] * bj[l];
          c(i, j) += alpha * s;
        }
      }
    } else if (ta == Trans::NoTrans && tb == Trans::Trans) {
      // C(:,j) += alpha * A(:,l) * B(j,l).
      for (std::size_t j = 0; j < n; ++j) {
        T* cj = &c(0, j);
        for (std::size_t l = 0; l < kb; ++l) {
          const T blj = alpha * b(j, k0 + l);
          if (blj == T{0}) continue;
          const T* al = &a(0, k0 + l);
          for (std::size_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    } else {  // Trans, Trans
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < m; ++i) {
          const T* ai = &a(k0, i);
          T s{};
          for (std::size_t l = 0; l < kb; ++l) s += ai[l] * b(j, k0 + l);
          c(i, j) += alpha * s;
        }
      }
    }
  }
}

/// C = alpha * op(A) * op(A)^T + beta * C, touching only the `uplo` triangle.
/// op(A) is n x k; C is n x n.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, Span2D<const T> a, T beta, Span2D<T> c) {
  const std::size_t n = c.rows();
  GSX_REQUIRE(c.cols() == n, "syrk: C must be square");
  const std::size_t k = (trans == Trans::NoTrans) ? a.cols() : a.rows();
  GSX_REQUIRE(((trans == Trans::NoTrans) ? a.rows() : a.cols()) == n, "syrk: A shape mismatch");

  // Scale the addressed triangle.
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
    const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
    for (std::size_t i = ibeg; i < iend; ++i)
      c(i, j) = (beta == T{0}) ? T{0} : c(i, j) * beta;
  }
  if (alpha == T{0} || k == 0) return;

  if (trans == Trans::NoTrans) {
    // C(i,j) += alpha * A(i,l) * A(j,l): axpy over i within the triangle.
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t l = 0; l < k; ++l) {
        const T ajl = alpha * a(j, l);
        if (ajl == T{0}) continue;
        const T* al = &a(0, l);
        if (uplo == Uplo::Lower) {
          T* cj = &c(0, j);
          for (std::size_t i = j; i < n; ++i) cj[i] += al[i] * ajl;
        } else {
          T* cj = &c(0, j);
          for (std::size_t i = 0; i <= j; ++i) cj[i] += al[i] * ajl;
        }
      }
    }
  } else {
    // C(i,j) += alpha * dot(A(:,i), A(:,j)).
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t ibeg = (uplo == Uplo::Lower) ? j : 0;
      const std::size_t iend = (uplo == Uplo::Lower) ? n : j + 1;
      const T* aj = &a(0, j);
      for (std::size_t i = ibeg; i < iend; ++i) {
        const T* ai = &a(0, i);
        T s{};
        for (std::size_t l = 0; l < k; ++l) s += ai[l] * aj[l];
        c(i, j) += alpha * s;
      }
    }
  }
}

/// B = alpha * op(A)^{-1} * B (Side::Left) or B = alpha * B * op(A)^{-1}
/// (Side::Right), with A triangular. Reference algorithm (netlib TRSM).
template <typename T>
void trsm(Side side, Uplo uplo, Trans ta, Diag diag, T alpha, Span2D<const T> a,
          Span2D<T> b) {
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  const std::size_t na = (side == Side::Left) ? m : n;
  GSX_REQUIRE(a.rows() == na && a.cols() == na, "trsm: A shape mismatch");
  const bool unit = (diag == Diag::Unit);

  detail::scale_matrix(alpha, b);
  if (m == 0 || n == 0) return;

  if (side == Side::Left) {
    if (ta == Trans::NoTrans) {
      if (uplo == Uplo::Lower) {
        // Forward substitution, column-oriented.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = 0; kk < m; ++kk) {
            if (!unit) bj[kk] /= a(kk, kk);
            const T bkj = bj[kk];
            if (bkj == T{0}) continue;
            const T* ak = &a(0, kk);
            for (std::size_t i = kk + 1; i < m; ++i) bj[i] -= ak[i] * bkj;
          }
        }
      } else {
        // Backward substitution.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = m; kk-- > 0;) {
            if (!unit) bj[kk] /= a(kk, kk);
            const T bkj = bj[kk];
            if (bkj == T{0}) continue;
            const T* ak = &a(0, kk);
            for (std::size_t i = 0; i < kk; ++i) bj[i] -= ak[i] * bkj;
          }
        }
      }
    } else {  // op(A) = A^T
      if (uplo == Uplo::Lower) {
        // Solve L^T X = B: backward, dot-product form.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t ii = m; ii-- > 0;) {
            const T* ai = &a(0, ii);
            T s = bj[ii];
            for (std::size_t kk = ii + 1; kk < m; ++kk) s -= ai[kk] * bj[kk];
            bj[ii] = unit ? s : s / a(ii, ii);
          }
        }
      } else {
        // Solve U^T X = B: forward, dot-product form.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t ii = 0; ii < m; ++ii) {
            T s = bj[ii];
            for (std::size_t kk = 0; kk < ii; ++kk) s -= a(kk, ii) * bj[kk];
            bj[ii] = unit ? s : s / a(ii, ii);
          }
        }
      }
    }
  } else {  // Side::Right: B := B * op(A)^{-1}
    if (ta == Trans::NoTrans) {
      if (uplo == Uplo::Lower) {
        // X L = B: process columns right-to-left.
        for (std::size_t j = n; j-- > 0;) {
          T* bj = &b(0, j);
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
          for (std::size_t kk = 0; kk < j; ++kk) {
            const T akj = a(j, kk);
            if (akj == T{0}) continue;
            T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bk[i] -= bj[i] * akj;
          }
        }
      } else {
        // X U = B: left-to-right.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
          for (std::size_t kk = j + 1; kk < n; ++kk) {
            const T ajk = a(j, kk);
            if (ajk == T{0}) continue;
            T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bk[i] -= bj[i] * ajk;
          }
        }
      }
    } else {  // B := B * op(A)^{-T}
      if (uplo == Uplo::Lower) {
        // X L^T = B: left-to-right; the tile-Cholesky panel solve.
        for (std::size_t j = 0; j < n; ++j) {
          T* bj = &b(0, j);
          for (std::size_t kk = 0; kk < j; ++kk) {
            const T ajk = a(j, kk);
            if (ajk == T{0}) continue;
            const T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bj[i] -= bk[i] * ajk;
          }
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
        }
      } else {
        // X U^T = B: right-to-left.
        for (std::size_t j = n; j-- > 0;) {
          T* bj = &b(0, j);
          for (std::size_t kk = j + 1; kk < n; ++kk) {
            const T akj = a(j, kk);
            if (akj == T{0}) continue;
            const T* bk = &b(0, kk);
            for (std::size_t i = 0; i < m; ++i) bj[i] -= bk[i] * akj;
          }
          if (!unit) {
            const T d = T{1} / a(j, j);
            for (std::size_t i = 0; i < m; ++i) bj[i] *= d;
          }
        }
      }
    }
  }
}

/// y = alpha * op(A) x + beta * y.
template <typename T>
void gemv(Trans ta, T alpha, Span2D<const T> a, const T* x, T beta, T* y) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t leny = (ta == Trans::NoTrans) ? m : n;
  for (std::size_t i = 0; i < leny; ++i) y[i] = (beta == T{0}) ? T{0} : y[i] * beta;
  if (ta == Trans::NoTrans) {
    for (std::size_t j = 0; j < n; ++j) {
      const T xj = alpha * x[j];
      if (xj == T{0}) continue;
      const T* aj = &a(0, j);
      for (std::size_t i = 0; i < m; ++i) y[i] += aj[i] * xj;
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const T* aj = &a(0, j);
      T s{};
      for (std::size_t i = 0; i < m; ++i) s += aj[i] * x[i];
      y[j] += alpha * s;
    }
  }
}

}  // namespace gsx::la
