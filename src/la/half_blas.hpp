// FP16-storage BLAS kernels with FP32 accumulation ("SHGEMM").
//
// Fugaku's SSL lacked exactly this kernel (the paper borrowed a BLIS
// implementation); here operands are stored in binary16 and panels are
// widened to FP32 on the fly, with all arithmetic and accumulation in FP32.
#pragma once

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/span2d.hpp"
#include "la/blas.hpp"

namespace gsx::la {

/// C(fp32) = alpha * op(A_h) * op(B_h) + beta * C. FP32 accumulation.
void shgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
            float beta, Span2D<float> c);

/// C(fp16) = alpha * op(A_h) * op(B_h) + beta * C_h; accumulates in FP32 and
/// rounds the result to binary16 on store.
void hgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
           float beta, Span2D<half> c);

/// C(fp32) = alpha * op(A_bf) * op(B_bf) + beta * C; BF16 storage with FP32
/// accumulation — the "SBGEMM" semantics of BF16 matrix engines.
void sbgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
            Span2D<const bfloat16> b, float beta, Span2D<float> c);

/// C(bf16) = alpha * op(A_bf) * op(B_bf) + beta * C_bf; FP32 accumulation,
/// BF16 store.
void bgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
           Span2D<const bfloat16> b, float beta, Span2D<bfloat16> c);

}  // namespace gsx::la
