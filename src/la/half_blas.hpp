// FP16-storage BLAS kernels with FP32 accumulation ("SHGEMM").
//
// Fugaku's SSL lacked exactly this kernel (the paper borrowed a BLIS
// implementation); here operands are stored in binary16 and panels are
// widened to FP32 on the fly, with all arithmetic and accumulation in FP32.
#pragma once

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/span2d.hpp"
#include "la/blas.hpp"

namespace gsx::la {

/// C(fp32) = alpha * op(A_h) * op(B_h) + beta * C. FP32 accumulation.
void shgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
            float beta, Span2D<float> c);

/// C(fp16) = alpha * op(A_h) * op(B_h) + beta * C_h; accumulates in FP32 and
/// rounds the result to binary16 on store.
void hgemm(Trans ta, Trans tb, float alpha, Span2D<const half> a, Span2D<const half> b,
           float beta, Span2D<half> c);

/// C(fp32) = alpha * op(A_bf) * op(B_bf) + beta * C; BF16 storage with FP32
/// accumulation — the "SBGEMM" semantics of BF16 matrix engines.
void sbgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
            Span2D<const bfloat16> b, float beta, Span2D<float> c);

/// C(bf16) = alpha * op(A_bf) * op(B_bf) + beta * C_bf; FP32 accumulation,
/// BF16 store.
void bgemm(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
           Span2D<const bfloat16> b, float beta, Span2D<bfloat16> c);

// ---------------------------------------------------------------------------
// Batched 16-bit entry points. Same batching contract as la::gemm_batch
// (uniform shapes, one blocked sweep, packed op(B) re-used across items that
// share B, obs batch histograms); results are bit-identical to looping the
// per-op calls for all non-NaN data. These are the hot shape of the adaptive
// Cholesky: most TLR trailing updates land on FP16/BF16 tiles.

/// Batched SHGEMM: items[i].c(fp32) = alpha * op(a) * op(b) + beta * c.
void shgemm_batch(Trans ta, Trans tb, float alpha,
                  const GemmBatchItem<half, float>* items, std::size_t count,
                  float beta);

/// Batched SBGEMM (BF16 storage, FP32 C).
void sbgemm_batch(Trans ta, Trans tb, float alpha,
                  const GemmBatchItem<bfloat16, float>* items, std::size_t count,
                  float beta);

/// One op of a 16-bit-store GEMM batch: C is stored in the 16-bit type and
/// round-trips through one shared FP32 scratch inside the batch call.
template <typename T16>
struct Gemm16BatchItem {
  Span2D<const T16> a;
  Span2D<const T16> b;
  Span2D<T16> c;
};

/// Batched HGEMM: FP32 accumulation, FP16 store. Unlike looped hgemm, the
/// C widen/narrow passes run vectorized (F16C where available) over one
/// scratch allocation for the whole batch — this conversion glue is most of
/// a small per-op hgemm's runtime.
void hgemm_batch(Trans ta, Trans tb, float alpha, const Gemm16BatchItem<half>* items,
                 std::size_t count, float beta);

/// Batched BGEMM: FP32 accumulation, BF16 store.
void bgemm_batch(Trans ta, Trans tb, float alpha,
                 const Gemm16BatchItem<bfloat16>* items, std::size_t count, float beta);

}  // namespace gsx::la
