// Packed, cache-blocked, register-tiled GEMM kernels (BLIS-style).
//
// The reference loops in la::ref are limited by C-matrix traffic: every
// rank-1 axpy re-reads and re-writes a full column of C. The packed path
// instead copies one MC x KC block of op(A) and one KC x NC panel of op(B)
// into contiguous, micro-tile-ordered buffers, then drives an MR x NR
// register-tiled micro-kernel over them: C traffic drops to one
// read-modify-write per KC-deep block, and the inner loop is a pure
// multiply-add over register accumulators that the compiler vectorizes for
// the dispatched ISA (portable / AVX2+FMA / AVX-512, chosen at runtime).
//
// The 16-bit entry points widen FP16/BF16 operands to FP32 *during packing*
// (one pass, no full-matrix scratch copies) and accumulate in FP32 — the
// SHGEMM semantics the paper borrowed from BLIS for Fugaku's missing kernel.
//
// Every kernel runs under a per-precision KernelConfig (cache blocking plus
// micro-kernel shape) resolved once at startup: compiled defaults, then a
// gsx-tune-v1 profile (GSX_TUNE_PROFILE or ./gsx-tune.json, written by
// tools/gsx_tune — see la/autotune.hpp), then GSX_GEMM_MC/KC/NC env
// overrides. The batch entry points run many same-shape ops through one
// blocked sweep, re-using the packed op(B) panel across ops that share B.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/precision.hpp"
#include "common/span2d.hpp"
#include "la/blas_types.hpp"

namespace gsx::la {

/// Cache-blocking parameters (in elements) for the packed GEMM path:
/// MC x KC blocks of packed op(A) target L2, one KC x NR micro-panel of
/// packed op(B) stays L1-resident, NC bounds the packed-B footprint.
struct GemmBlocking {
  std::size_t mc = 0;
  std::size_t kc = 0;
  std::size_t nc = 0;
};

/// A register-tile (micro-kernel) shape. Only shapes compiled for the
/// active ISA can be selected; see gemm_kernel_shapes().
struct GemmShape {
  int mr = 0;
  int nr = 0;
};

/// Per-precision kernel configuration: cache blocking plus micro-kernel
/// shape. mr == nr == 0 selects the compiled default shape for the ISA.
struct KernelConfig {
  GemmBlocking blk;
  int mr = 0;
  int nr = 0;
};

/// Active blocking for a scalar of `scalar_bytes` (8 = FP64 config, else
/// FP32). Kept for callers that predate per-precision configs; equivalent to
/// gemm_kernel_config(FP64/FP32).blk.
[[nodiscard]] GemmBlocking gemm_blocking(std::size_t scalar_bytes) noexcept;

/// Active configuration for `p` after startup resolution (compiled defaults,
/// then tuning profile, then GSX_GEMM_MC/KC/NC env overrides).
[[nodiscard]] KernelConfig gemm_kernel_config(Precision p) noexcept;

/// Compiled default configuration for `p` on the active ISA (no profile, no
/// env overrides). The baseline gsx_tune compares candidates against.
[[nodiscard]] KernelConfig gemm_default_config(Precision p) noexcept;

/// Install `cfg` as the active configuration for `p`. Returns false (config
/// unchanged) if cfg names a shape not compiled for this scalar type or a
/// zero blocking field. Not synchronized against concurrent GEMMs: call at
/// startup or from a tuning loop that owns all kernel threads.
bool set_gemm_kernel_config(Precision p, const KernelConfig& cfg) noexcept;

/// Micro-kernel shapes compiled for precision `p` (same list on every ISA;
/// the per-ISA default is first). These are the shapes gsx_tune searches.
[[nodiscard]] std::vector<GemmShape> gemm_kernel_shapes(Precision p);

/// Name of the micro-kernel variant runtime dispatch selected for this
/// process: "avx512", "avx2" or "portable" (overridable via GSX_GEMM_ISA).
[[nodiscard]] const char* gemm_kernel_isa() noexcept;

/// What runtime dispatch selected, for achieved-vs-peak reporting: the ISA
/// name, its vector width, and the assumed FMA issue width (ports x 2 flops
/// per lane per cycle gives the theoretical per-core peak).
struct GemmDispatchInfo {
  const char* isa = "portable";
  int vector_bits = 128;
  int fma_ports = 2;
};
[[nodiscard]] GemmDispatchInfo gemm_dispatch_info() noexcept;

/// Theoretical per-core peak for precision `p` on the dispatched ISA at
/// `ghz` (16-bit storage computes in FP32 and uses FP32 lanes):
/// lanes * 2 (fused multiply-add) * fma_ports * ghz, in GFlop/s.
[[nodiscard]] double gemm_peak_gflops(Precision p, double ghz) noexcept;

/// One op of a same-shape GEMM batch: C += alpha * op(A) * op(B) with the
/// operands stored as TS and accumulation carried in TAcc (equal for
/// FP64/FP32; TAcc = float for 16-bit storage types).
template <typename TS, typename TAcc = TS>
struct GemmBatchItem {
  Span2D<const TS> a;
  Span2D<const TS> b;
  Span2D<TAcc> c;
};

namespace detail {

/// C += alpha * op(A) * op(B) through the packed micro-kernel path.
/// beta must already have been applied to C by the caller. Shapes are not
/// re-validated here; la::gemm is the checked entry point.
void gemm_packed(Trans ta, Trans tb, double alpha, Span2D<const double> a,
                 Span2D<const double> b, Span2D<double> c);
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const float> a,
                 Span2D<const float> b, Span2D<float> c);

/// Widening variants: 16-bit storage operands are converted to FP32 as they
/// are packed; all arithmetic and accumulation is FP32.
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const half> a,
                 Span2D<const half> b, Span2D<float> c);
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
                 Span2D<const bfloat16> b, Span2D<float> c);

/// Batched form: every item has the same (m, n, k) and transposes, and beta
/// is already applied. One blocked sweep over all items; the packed op(B)
/// panel is re-used (not re-packed) across consecutive items that share the
/// same B operand, which is what amortizes packing for the TLR trailing
/// updates (shared panel tile) and kriging micro-batches (shared RHS block).
/// Results are bit-identical to looping gemm_packed over the items.
void gemm_batch_packed(Trans ta, Trans tb, double alpha,
                       const GemmBatchItem<double>* items, std::size_t count);
void gemm_batch_packed(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<float>* items, std::size_t count);
void gemm_batch_packed(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<half, float>* items, std::size_t count);
void gemm_batch_packed(Trans ta, Trans tb, float alpha,
                       const GemmBatchItem<bfloat16, float>* items, std::size_t count);

/// Below this many multiply-adds the packing overhead outweighs the
/// micro-kernel win and la::gemm stays on the reference loops.
inline constexpr std::size_t kPackedGemmMinMnk = 16384;

[[nodiscard]] inline bool use_packed(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return m * n * k >= kPackedGemmMinMnk;
}

}  // namespace detail

}  // namespace gsx::la
