// Packed, cache-blocked, register-tiled GEMM kernels (BLIS-style).
//
// The reference loops in la::ref are limited by C-matrix traffic: every
// rank-1 axpy re-reads and re-writes a full column of C. The packed path
// instead copies one MC x KC block of op(A) and one KC x NC panel of op(B)
// into contiguous, micro-tile-ordered buffers, then drives an MR x NR
// register-tiled micro-kernel over them: C traffic drops to one
// read-modify-write per KC-deep block, and the inner loop is a pure
// multiply-add over register accumulators that the compiler vectorizes for
// the dispatched ISA (portable / AVX2+FMA / AVX-512, chosen at runtime).
//
// The 16-bit entry points widen FP16/BF16 operands to FP32 *during packing*
// (one pass, no full-matrix scratch copies) and accumulate in FP32 — the
// SHGEMM semantics the paper borrowed from BLIS for Fugaku's missing kernel.
#pragma once

#include <cstddef>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/span2d.hpp"
#include "la/blas_types.hpp"

namespace gsx::la {

/// Cache-blocking parameters (in elements) for the packed GEMM path:
/// MC x KC blocks of packed op(A) target L2, one KC x NR micro-panel of
/// packed op(B) stays L1-resident, NC bounds the packed-B footprint.
struct GemmBlocking {
  std::size_t mc = 0;
  std::size_t kc = 0;
  std::size_t nc = 0;
};

/// Active blocking for a scalar of `scalar_bytes` (8 = FP64 table, else the
/// FP32 table, which 16-bit inputs also use since they compute in FP32).
/// Defaults are overridable once at startup via GSX_GEMM_MC / GSX_GEMM_KC /
/// GSX_GEMM_NC (see docs/tuning.md).
[[nodiscard]] GemmBlocking gemm_blocking(std::size_t scalar_bytes) noexcept;

/// Name of the micro-kernel variant runtime dispatch selected for this
/// process: "avx512", "avx2" or "portable" (overridable via GSX_GEMM_ISA).
[[nodiscard]] const char* gemm_kernel_isa() noexcept;

namespace detail {

/// C += alpha * op(A) * op(B) through the packed micro-kernel path.
/// beta must already have been applied to C by the caller. Shapes are not
/// re-validated here; la::gemm is the checked entry point.
void gemm_packed(Trans ta, Trans tb, double alpha, Span2D<const double> a,
                 Span2D<const double> b, Span2D<double> c);
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const float> a,
                 Span2D<const float> b, Span2D<float> c);

/// Widening variants: 16-bit storage operands are converted to FP32 as they
/// are packed; all arithmetic and accumulation is FP32.
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const half> a,
                 Span2D<const half> b, Span2D<float> c);
void gemm_packed(Trans ta, Trans tb, float alpha, Span2D<const bfloat16> a,
                 Span2D<const bfloat16> b, Span2D<float> c);

/// Below this many multiply-adds the packing overhead outweighs the
/// micro-kernel win and la::gemm stays on the reference loops.
inline constexpr std::size_t kPackedGemmMinMnk = 16384;

[[nodiscard]] inline bool use_packed(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return m * n * k >= kPackedGemmMinMnk;
}

}  // namespace detail

}  // namespace gsx::la
