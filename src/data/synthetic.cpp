#include "data/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "geostat/field.hpp"
#include "mathx/stats.hpp"

namespace gsx::data {

using geostat::Location;

Dataset make_soil_moisture_like(const SoilMoistureConfig& cfg) {
  GSX_REQUIRE(cfg.n >= 16, "make_soil_moisture_like: need at least 16 locations");
  Rng rng(cfg.seed);
  std::vector<Location> locs = geostat::perturbed_grid_locations(cfg.n, rng);
  geostat::sort_morton(locs);

  const geostat::MaternCovariance model(cfg.variance, cfg.range, cfg.smoothness,
                                        cfg.nugget);
  Dataset d;
  d.values = geostat::simulate_grf(model, locs, rng);
  d.locations = std::move(locs);
  return d;
}

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

SpaceTimeDataset make_et_like(const EtConfig& cfg) {
  GSX_REQUIRE(cfg.spatial_n >= 9 && cfg.months >= 2, "make_et_like: dataset too small");
  GSX_REQUIRE(cfg.history_years >= 1, "make_et_like: need history for the climatology");
  Rng rng(cfg.seed);

  std::vector<Location> spatial = geostat::perturbed_grid_locations(cfg.spatial_n, rng);
  geostat::sort_morton(spatial);
  std::vector<Location> locs = geostat::replicate_in_time(spatial, cfg.months, 1.0);

  const geostat::GneitingCovariance model(cfg.variance, cfg.range_s, cfg.smooth_s,
                                          cfg.range_t, cfg.smooth_t, cfg.beta, cfg.nugget);

  // history_years of "past" fields + the final observed year, all sharing
  // one factorization.
  const auto years = geostat::simulate_grf_many(model, locs, rng, cfg.history_years + 1);
  const std::vector<double>& final_year = years.back();

  SpaceTimeDataset out;
  out.spatial_n = cfg.spatial_n;
  out.months = cfg.months;
  const std::size_t n = locs.size();
  out.raw.resize(n);
  out.climatology.resize(n);
  out.truth_residual = final_year;

  for (std::size_t m = 0; m < cfg.months; ++m) {
    const double month_frac = static_cast<double>(m) / static_cast<double>(cfg.months);
    // Year-specific (final-year) linear spatial trend — what the per-month
    // OLS step of the pipeline must remove.
    const double bx = cfg.spatial_trend * std::sin(kTwoPi * month_frac + 1.0);
    const double by = cfg.spatial_trend * std::cos(kTwoPi * month_frac + 2.0);
    for (std::size_t s = 0; s < cfg.spatial_n; ++s) {
      const std::size_t idx = m * cfg.spatial_n + s;
      const Location& l = locs[idx];
      // Seasonal climatology, identical every year — what the monthly-mean
      // subtraction must remove.
      const double seasonal =
          cfg.seasonal_amplitude * std::cos(kTwoPi * month_frac + l.x * 3.141592653589793) *
          (1.0 + 0.3 * l.y);
      double hist_mean = 0.0;
      for (std::size_t yy = 0; yy < cfg.history_years; ++yy) hist_mean += years[yy][idx];
      hist_mean /= static_cast<double>(cfg.history_years);
      out.climatology[idx] = seasonal + hist_mean;
      out.raw[idx] = seasonal + bx * l.x + by * l.y + final_year[idx];
    }
  }
  out.locations = std::move(locs);
  return out;
}

namespace detail {

std::vector<double> detrend_monthly_linear(std::span<const Location> locs,
                                           std::span<const double> values,
                                           std::size_t spatial_n, std::size_t months) {
  GSX_REQUIRE(locs.size() == values.size() && locs.size() == spatial_n * months,
              "detrend_monthly_linear: size mismatch");
  std::vector<double> out(values.begin(), values.end());
  std::vector<double> xy(spatial_n * 2);
  std::vector<double> y(spatial_n);
  for (std::size_t m = 0; m < months; ++m) {
    const std::size_t base = m * spatial_n;
    for (std::size_t s = 0; s < spatial_n; ++s) {
      xy[s] = locs[base + s].x;
      xy[spatial_n + s] = locs[base + s].y;
      y[s] = values[base + s];
    }
    const std::vector<double> beta = mathx::ols_fit(y, xy, spatial_n, 2);
    const std::vector<double> yhat = mathx::ols_predict(beta, xy, spatial_n, 2);
    for (std::size_t s = 0; s < spatial_n; ++s) out[base + s] = y[s] - yhat[s];
  }
  return out;
}

}  // namespace detail

std::vector<double> detrend_et(const SpaceTimeDataset& d) {
  GSX_REQUIRE(d.raw.size() == d.climatology.size() && !d.raw.empty(),
              "detrend_et: incomplete dataset");
  std::vector<double> residual(d.raw.size());
  for (std::size_t i = 0; i < d.raw.size(); ++i)
    residual[i] = d.raw[i] - d.climatology[i];
  return detail::detrend_monthly_linear(d.locations, residual, d.spatial_n, d.months);
}

}  // namespace gsx::data
