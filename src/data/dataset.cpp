#include "data/dataset.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace gsx::data {

TrainTestSplit split_train_test(const Dataset& d, double train_fraction, Rng& rng) {
  GSX_REQUIRE(d.locations.size() == d.values.size(), "split_train_test: ragged dataset");
  GSX_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "split_train_test: fraction must be in (0, 1)");
  const std::size_t n = d.size();
  GSX_REQUIRE(n >= 2, "split_train_test: dataset too small");

  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_index(i + 1);
    std::swap(idx[i], idx[j]);
  }
  std::size_t ntrain = static_cast<std::size_t>(train_fraction * static_cast<double>(n));
  ntrain = std::clamp<std::size_t>(ntrain, 1, n - 1);

  TrainTestSplit out;
  out.train.locations.reserve(ntrain);
  out.train.values.reserve(ntrain);
  for (std::size_t i = 0; i < ntrain; ++i) {
    out.train.locations.push_back(d.locations[idx[i]]);
    out.train.values.push_back(d.values[idx[i]]);
  }
  for (std::size_t i = ntrain; i < n; ++i) {
    out.test.locations.push_back(d.locations[idx[i]]);
    out.test.values.push_back(d.values[idx[i]]);
  }
  return out;
}

void sort_morton(Dataset& d, bool use_time) {
  GSX_REQUIRE(d.locations.size() == d.values.size(), "sort_morton: ragged dataset");
  if (d.size() < 2) return;
  geostat::Location lo = d.locations.front();
  geostat::Location hi = d.locations.front();
  for (const auto& l : d.locations) {
    lo.x = std::min(lo.x, l.x);
    lo.y = std::min(lo.y, l.y);
    lo.t = std::min(lo.t, l.t);
    hi.x = std::max(hi.x, l.x);
    hi.y = std::max(hi.y, l.y);
    hi.t = std::max(hi.t, l.t);
  }
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return geostat::morton_key(d.locations[a], lo, hi, use_time) <
           geostat::morton_key(d.locations[b], lo, hi, use_time);
  });
  Dataset out;
  out.locations.reserve(d.size());
  out.values.reserve(d.size());
  for (std::size_t i : idx) {
    out.locations.push_back(d.locations[i]);
    out.values.push_back(d.values[i]);
  }
  d = std::move(out);
}

void write_csv(const std::string& path, const Dataset& d) {
  GSX_REQUIRE(d.locations.size() == d.values.size(), "write_csv: ragged dataset");
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_csv: cannot open " + path);
  os << "x,y,t,value\n";
  os.precision(17);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& l = d.locations[i];
    os << l.x << ',' << l.y << ',' << l.t << ',' << d.values[i] << '\n';
  }
  GSX_REQUIRE(os.good(), "write_csv: write failed for " + path);
}

Dataset read_csv(const std::string& path) {
  std::ifstream is(path);
  GSX_REQUIRE(is.good(), "read_csv: cannot open " + path);
  Dataset d;
  std::string line;
  GSX_REQUIRE(static_cast<bool>(std::getline(is, line)), "read_csv: empty file");
  GSX_REQUIRE(line.rfind("x,y,t,value", 0) == 0, "read_csv: unexpected header in " + path);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    geostat::Location l;
    double v = 0.0;
    char comma = 0;
    ss >> l.x >> comma >> l.y >> comma >> l.t >> comma >> v;
    GSX_REQUIRE(!ss.fail(), "read_csv: malformed row '" + line + "'");
    d.locations.push_back(l);
    d.values.push_back(v);
  }
  return d;
}

}  // namespace gsx::data
