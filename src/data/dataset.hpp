// Datasets: location/value pairs, train/test splitting, CSV I/O.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geostat/locations.hpp"

namespace gsx::data {

struct Dataset {
  std::vector<geostat::Location> locations;
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const noexcept { return locations.size(); }
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random split into train/test by fraction (the paper randomly picks 1M of
/// 2M soil-moisture locations for training and 100K for testing).
TrainTestSplit split_train_test(const Dataset& d, double train_fraction, Rng& rng);

/// Morton-sort the dataset's locations, carrying values along (restores the
/// near-diagonal covariance structure after a random split).
void sort_morton(Dataset& d, bool use_time = false);

/// CSV with header "x,y,t,value".
void write_csv(const std::string& path, const Dataset& d);
Dataset read_csv(const std::string& path);

}  // namespace gsx::data
