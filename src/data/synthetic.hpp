// Synthetic stand-ins for the paper's two real datasets.
//
// The paper trains on (a) soil moisture over the Mississippi River basin
// (Matérn space, medium correlation, rough field — Table I estimates
// sigma^2~0.67, a~0.17, nu~0.44) and (b) NASA evapotranspiration over
// Central Asia (Gneiting space-time, strong spatial correlation), the
// latter detrended by monthly-climatology subtraction plus per-month linear
// regression. Real data is unavailable offline, so we synthesize Gaussian
// random fields with the papers' *estimated* parameters and run the same
// preprocessing — the substitution documented in DESIGN.md.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "geostat/covariance.hpp"

namespace gsx::data {

struct SoilMoistureConfig {
  std::size_t n = 2000;            ///< total locations (paper: ~2M)
  double variance = 0.67;          ///< Table I estimates as ground truth
  double range = 0.17;
  double smoothness = 0.44;
  double nugget = 1.0e-4;          ///< tiny measurement noise for conditioning
  std::uint64_t seed = 20040101;   ///< the paper's acquisition date
};

/// Matérn 2D field at irregular (jittered-grid) locations in the unit
/// square, Morton-sorted so the covariance matrix has the near-diagonal
/// structure the adaptive Cholesky exploits.
Dataset make_soil_moisture_like(const SoilMoistureConfig& cfg);

struct EtConfig {
  std::size_t spatial_n = 144;     ///< locations per month (paper: ~83K)
  std::size_t months = 12;
  std::size_t history_years = 20;  ///< years used for the climatology
  // Gneiting ground truth: strong spatial correlation like the ET data.
  double variance = 1.0;
  double range_s = 0.25;
  double smooth_s = 0.32;
  double range_t = 0.5;
  double smooth_t = 0.9;           ///< alpha in (0, 1]
  double beta = 0.19;              ///< Table II finds medium interaction
  double nugget = 1.0e-4;
  // Deterministic structure removed by the preprocessing pipeline.
  double seasonal_amplitude = 2.0;
  double spatial_trend = 1.5;
  std::uint64_t seed = 2021;
};

struct SpaceTimeDataset {
  std::vector<geostat::Location> locations;  ///< spatial_n * months, time-major
  std::vector<double> raw;                   ///< observed (trend + field)
  std::vector<double> climatology;           ///< per-location monthly mean estimate
  std::vector<double> truth_residual;        ///< the underlying GRF (testing)
  std::size_t spatial_n = 0;
  std::size_t months = 0;
};

/// Synthesize `history_years + 1` years of a Gneiting space-time field plus
/// seasonal climatology and per-month linear spatial trends; returns the
/// final year's raw observations (paper: 2021 monthly aggregates).
SpaceTimeDataset make_et_like(const EtConfig& cfg);

/// The paper's preprocessing: subtract the per-location monthly climatology
/// (mean over the history years, baked into the dataset at generation), then
/// fit-and-subtract a per-month linear regression on the coordinates.
/// Returns the stationary residuals ready for the space-time MLE.
std::vector<double> detrend_et(const SpaceTimeDataset& d);

namespace detail {
/// Per-month OLS detrend of `values` over (x, y); exposed for testing.
std::vector<double> detrend_monthly_linear(std::span<const geostat::Location> locs,
                                           std::span<const double> values,
                                           std::size_t spatial_n, std::size_t months);
}  // namespace detail

}  // namespace gsx::data
