// Triangular solves, log-determinant and reconstruction over a factored
// tile matrix (dense and/or low-rank tiles, mixed precision).
//
// These implement the second half of the log-likelihood evaluation
// (log|Sigma| and Z^T Sigma^{-1} Z) and the multi-RHS solves of the
// prediction phase, applied to the tile Cholesky factor produced by
// tile_cholesky_dense / tile_cholesky_tlr.
#pragma once

#include <span>

#include "geostat/likelihood.hpp"
#include "geostat/prediction.hpp"
#include "la/matrix.hpp"
#include "obs/trace.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::cholesky {

/// Per-call telemetry for the serving-path solves: the request trace context
/// flows IN (stamped onto flight-recorder events and numerical-failure
/// forensics) and the phase breakdown flows OUT (the wire layer reports it
/// as the response "timing" object).
struct SolveTelemetry {
  obs::RequestContext ctx;        ///< in: request id for events/errors
  double assemble_seconds = 0.0;  ///< out: Sigma_nm assembly
  double solve_seconds = 0.0;     ///< out: triangular solve + mean/variance
};

/// log|Sigma| = 2 * sum log L_ii from the factored diagonal tiles.
double tile_logdet(const tile::SymTileMatrix& l);

/// z := L^{-1} z.
void tile_forward_solve(const tile::SymTileMatrix& l, std::span<double> z);

/// z := L^{-T} z.
void tile_backward_solve(const tile::SymTileMatrix& l, std::span<double> z);

/// Full log-likelihood from a factored tile matrix and observations.
geostat::LoglikValue tile_loglik(const tile::SymTileMatrix& l, std::span<const double> z);

/// Multi-right-hand-side solves (the prediction phase, Eq. 4-5, applies the
/// factor to Sigma_nm's columns): B := L^{-1} B and B := L^{-T} B for a
/// dense n x m block B. With `workers` > 1 the independent column blocks of
/// B are solved concurrently on the runtime worker pool (bitwise identical
/// to the sequential pass: columns never interact).
void tile_forward_solve_multi(const tile::SymTileMatrix& l, Span2D<double> b,
                              std::size_t workers = 1);
void tile_backward_solve_multi(const tile::SymTileMatrix& l, Span2D<double> b,
                               std::size_t workers = 1);

/// Kriging directly through the tile factor: never materializes a dense L,
/// so the prediction phase keeps the TLR memory footprint (the paper's
/// "forward and backward substitutions to several right-hand sides").
/// This is the tile-native entry point both GsxModel::predict and the
/// serving engine use; the dense krige_with_cholesky path survives only as
/// a test oracle.
geostat::KrigingResult tile_krige(const geostat::CovarianceModel& model,
                                  const tile::SymTileMatrix& factored,
                                  std::span<const geostat::Location> train_locs,
                                  std::span<const double> z_train,
                                  std::span<const geostat::Location> test_locs,
                                  bool with_variance = true, std::size_t workers = 1);

/// Kriging from an already forward-solved observation vector
/// y = L^{-1} Z_n (the serving layer caches y per fitted model and amortizes
/// it across every request batch): assembles Sigma_nm, applies the factor to
/// its columns in parallel, and forms means/variances. `y_solved` must have
/// length n.
/// `telemetry` (optional) carries the request trace context in and the
/// assembly/solve timing breakdown out. Throws NumericalError (with the
/// request id in its context) when the computed means go non-finite — the
/// serving layer turns that into a flight-recorder dump.
geostat::KrigingResult tile_krige_solved(const geostat::CovarianceModel& model,
                                         const tile::SymTileMatrix& factored,
                                         std::span<const double> y_solved,
                                         std::span<const geostat::Location> train_locs,
                                         std::span<const geostat::Location> test_locs,
                                         bool with_variance = true,
                                         std::size_t workers = 1,
                                         SolveTelemetry* telemetry = nullptr);

/// Materialize the lower-triangular Cholesky factor as a dense FP64 matrix
/// (upper triangle zero); feeds reference paths and tests.
la::Matrix<double> reconstruct_lower(const tile::SymTileMatrix& l);

}  // namespace gsx::cholesky
