// Condition-number auditing for the numerical-health layer.
//
// LAPACK-style condition estimators (xPOCON) need the assembled matrix and
// its 1-norm; the tile pipeline has neither. Instead: lambda_max by power
// iteration on the tile-wise symmetric matvec (before factorization), and
// lambda_min by inverse power iteration through the Cholesky factor's
// forward/backward substitutions (after). Both run a handful of O(n^2)
// sweeps — diagnostic cost, gated behind obs::health_enabled() by callers.
#pragma once

#include <cstdint>

#include "obs/health.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::cholesky {

/// Largest-eigenvalue estimate of the assembled SPD matrix (power
/// iteration, `iters` sweeps of SymTileMatrix::symv).
[[nodiscard]] double estimate_lambda_max(const tile::SymTileMatrix& a,
                                         std::size_t iters = 10,
                                         std::uint64_t seed = 7);

/// Smallest-eigenvalue estimate of the *original* matrix recovered from its
/// tile Cholesky factor (inverse power iteration: each sweep is one
/// forward + one backward substitution).
[[nodiscard]] double estimate_lambda_min(const tile::SymTileMatrix& factor,
                                         std::size_t iters = 10,
                                         std::uint64_t seed = 7);

/// Combine a pre-factorization lambda_max with a post-factorization
/// lambda_min into a ConditionEstimate and record it in the health ledger.
obs::ConditionEstimate audit_condition(double lambda_max,
                                       const tile::SymTileMatrix& factor,
                                       std::size_t iters = 10);

}  // namespace gsx::cholesky
