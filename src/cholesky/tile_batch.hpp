// Batched trailing-update executor for the tile Cholesky DAG.
//
// All GEMMs of one (k, n) panel column share the B operand A(n,k); grouping
// them into one la::*gemm_batch call re-uses the packed op(B) panel across
// the whole group and amortises the per-call conversion/packing overhead
// that dominates small-tile TLR sweeps. Results are bit-identical to issuing
// the per-tile kernels one by one.
#pragma once

#include <cstddef>
#include <vector>

#include "cholesky/tile_kernels.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::cholesky {

/// Max trailing-update GEMMs grouped into one DAG task (and thus one batched
/// kernel call). Bounds both task granularity and the converted-operand
/// scratch footprint of a single batch.
inline constexpr std::size_t kGemmBatchMax = 32;

/// Apply A(m,n) -= A(m,k) * A(n,k)^T for every m in `ms`.
///
/// Dense tiles are grouped by (output precision, rows) — cols and the inner
/// dimension are fixed by (n, k) — and dispatched to the batched GEMM entry
/// point of that precision. In TLR mode (`tlr_mode`), any update touching a
/// low-rank tile falls back to the per-op gemm_mixed_tile with the given
/// rounding tolerance; dense-only updates still batch.
void gemm_tile_batch(tile::SymTileMatrix& a, std::size_t k, std::size_t n,
                     const std::vector<std::size_t>& ms, bool tlr_mode, double abs_tol,
                     tlr::RoundingMethod rounding = tlr::RoundingMethod::QrSvd);

}  // namespace gsx::cholesky
