#include "cholesky/precision_policy.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"

namespace gsx::cholesky {

Precision band_precision(std::size_t i, std::size_t j, const BandConfig& cfg,
                         bool allow_fp16, bool allow_bf16) noexcept {
  const std::size_t dist = (i >= j) ? i - j : j - i;
  if (dist < cfg.fp64_band) return Precision::FP64;
  if (dist < cfg.fp32_band) return Precision::FP32;
  if (allow_fp16) return Precision::FP16;
  if (allow_bf16) return Precision::BF16;
  return Precision::FP32;
}

Precision frobenius_precision(double tile_norm, double global_norm, std::size_t nt,
                              double eps_target, bool allow_fp16,
                              std::size_t tile_elems, bool allow_bf16) noexcept {
  // A tile may be stored at unit roundoff u_p iff its worst-case storage
  // error  u_p * ||A_ij||_F + sqrt(elems) * subnormal_floor(p)  stays below
  // the per-tile budget  eps * ||A||_F / NT, so the NT x NT tile errors sum
  // (in Frobenius) to at most eps * ||A||_F.
  const double budget = eps_target * global_norm / static_cast<double>(nt);
  const double root_elems = std::sqrt(static_cast<double>(tile_elems));
  auto fits = [&](Precision p) {
    return unit_roundoff(p) * tile_norm + root_elems * subnormal_floor(p) < budget;
  };
  // FP16 first (smaller roundoff); tiles it loses to *underflow* (not to
  // roundoff) fall through to BF16, whose FP32-like range has essentially
  // no subnormal floor at geostatistical magnitudes.
  if (allow_fp16 && fits(Precision::FP16)) return Precision::FP16;
  if (allow_bf16 && fits(Precision::BF16)) return Precision::BF16;
  if (fits(Precision::FP32)) return Precision::FP32;
  return Precision::FP64;
}

namespace {

/// Measured storage perturbation ||A^_ij - A_ij||_F of a demoted tile.
double demotion_error(const tile::Tile& after, const la::Matrix<double>& before) {
  const la::Matrix<double> rounded = after.to_dense64();
  double s = 0.0;
  for (std::size_t jj = 0; jj < before.cols(); ++jj)
    for (std::size_t ii = 0; ii < before.rows(); ++ii) {
      const double d = rounded(ii, jj) - before(ii, jj);
      s += d * d;
    }
  return std::sqrt(s);
}

}  // namespace

PolicyStats apply_precision_policy(tile::SymTileMatrix& a, const PrecisionPolicy& policy) {
  PolicyStats stats;
  stats.bytes_before = a.footprint_bytes();
  const std::size_t nt = a.nt();
  // Auditing checks the rule's promise against the measured perturbation,
  // which needs the global norm even for rules that don't consult it.
  const bool audit = obs::health_enabled();

  // The Frobenius rule needs the global norm, accumulated tile-by-tile
  // (the paper stores no global copy of the matrix).
  const double global_norm =
      (policy.rule == PrecisionRule::AdaptiveFrobenius || audit) ? a.frobenius_norm()
                                                                 : 0.0;
  if (audit)
    obs::record_bound_context(precision_rule_name(policy.rule), policy.eps_target,
                              global_norm, nt);

  for (std::size_t j = 0; j < nt; ++j) {
    for (std::size_t i = j; i < nt; ++i) {
      tile::Tile& t = a.at(i, j);
      // Low-rank tiles carry their own precision decision (made during
      // compression); the dense-tile rule does not apply to them.
      if (t.format() != tile::TileFormat::Dense) continue;
      Precision p = Precision::FP64;
      if (i != j) {  // diagonal stays FP64
        switch (policy.rule) {
          case PrecisionRule::AllFP64:
            p = Precision::FP64;
            break;
          case PrecisionRule::Band:
            p = band_precision(i, j, policy.band, policy.allow_fp16, policy.allow_bf16);
            break;
          case PrecisionRule::AdaptiveFrobenius:
            p = frobenius_precision(t.frobenius(), global_norm, nt, policy.eps_target,
                                    policy.allow_fp16, t.rows() * t.cols(),
                                    policy.allow_bf16);
            break;
        }
      }
      if (audit && p != Precision::FP64) {
        const double tile_norm = t.frobenius();
        const la::Matrix<double> before = t.to_dense64();
        t.convert_dense(p);
        obs::DemotionRecord rec;
        rec.i = static_cast<std::uint32_t>(i);
        rec.j = static_cast<std::uint32_t>(j);
        rec.chosen = p;
        rec.tile_norm = tile_norm;
        rec.budget = (policy.rule == PrecisionRule::AdaptiveFrobenius)
                         ? policy.eps_target * global_norm / static_cast<double>(nt)
                         : 0.0;
        rec.guaranteed_err =
            unit_roundoff(p) * tile_norm +
            std::sqrt(static_cast<double>(t.rows() * t.cols())) * subnormal_floor(p);
        rec.observed_err = demotion_error(t, before);
        obs::record_demotion(rec);
        GSX_FLIGHT(obs::EventKind::TileDemotion, 0, i, j, rec.observed_err);
        // Demotion can overflow narrow formats (FP16 range) into Inf: the
        // rule only bounds roundoff, so catch range violations here.
        const std::size_t bad = t.nonfinite_count();
        if (bad > 0) {
          obs::record_nonfinite("convert", static_cast<long>(i), static_cast<long>(j),
                                bad);
          obs::log_warn("policy", "non-finite values after precision demotion",
                        {obs::lf("tile_i", static_cast<std::uint64_t>(i)),
                         obs::lf("tile_j", static_cast<std::uint64_t>(j)),
                         obs::lf("precision", std::string(precision_name(p))),
                         obs::lf("count", static_cast<std::uint64_t>(bad))});
        }
      } else {
        t.convert_dense(p);
      }
      switch (p) {
        case Precision::FP64: ++stats.fp64_tiles; break;
        case Precision::FP32: ++stats.fp32_tiles; break;
        case Precision::FP16: ++stats.fp16_tiles; break;
        case Precision::BF16: ++stats.bf16_tiles; break;
      }
    }
  }
  stats.bytes_after = a.footprint_bytes();
  return stats;
}

}  // namespace gsx::cholesky
