#include "cholesky/tile_kernels.hpp"

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/half_blas.hpp"
#include "la/lapack.hpp"
#include "obs/flops.hpp"
#include "obs/trace.hpp"

namespace gsx::cholesky {

using obs::KernelOp;
using tile::Tile;
using tile::TileFormat;

namespace {

/// Ledger + per-task trace metadata for one dense kernel invocation.
inline void account(KernelOp op, Precision p, std::uint64_t flops,
                    std::int64_t rank = -1) {
  if (!obs::enabled()) return;
  obs::add_flops(op, p, flops);
  obs::annotate_task(p, rank, flops);
}

}  // namespace

F64Operand::F64Operand(const Tile& t) {
  if (t.format() == TileFormat::Dense && t.precision() == Precision::FP64) {
    view_ = t.d64().cview();
  } else {
    scratch_ = t.to_dense64();
    view_ = scratch_.cview();
  }
}

F32Operand::F32Operand(const Tile& t) {
  if (t.format() == TileFormat::Dense && t.precision() == Precision::FP32) {
    view_ = t.d32().cview();
  } else {
    scratch_.resize(t.rows(), t.cols());
    const la::Matrix<double> full = t.to_dense64();
    la::convert(full.cview(), scratch_.view());
    view_ = scratch_.cview();
  }
}

F16Operand::F16Operand(const Tile& t) {
  if (t.format() == TileFormat::Dense && t.precision() == Precision::FP16) {
    view_ = t.d16().cview();
  } else {
    scratch_.resize(t.rows(), t.cols());
    const la::Matrix<double> full = t.to_dense64();
    la::convert(full.cview(), scratch_.view());
    view_ = scratch_.cview();
  }
}

Bf16Operand::Bf16Operand(const Tile& t) {
  if (t.format() == TileFormat::Dense && t.precision() == Precision::BF16) {
    view_ = t.dbf16().cview();
  } else {
    scratch_.resize(t.rows(), t.cols());
    const la::Matrix<double> full = t.to_dense64();
    la::convert(full.cview(), scratch_.view());
    view_ = scratch_.cview();
  }
}

LrOperand::LrOperand(const Tile& t) {
  GSX_REQUIRE(t.format() == TileFormat::LowRank, "LrOperand: tile is dense");
  if (t.precision() == Precision::FP64) {
    const auto& lr = t.lr64();
    view_ = tlr::LrView{lr.u.cview(), lr.v.cview()};
  } else {
    const auto& lr = t.lr32();
    u_scratch_.resize(lr.u.rows(), lr.u.cols());
    v_scratch_.resize(lr.v.rows(), lr.v.cols());
    la::convert(lr.u.cview(), u_scratch_.view());
    la::convert(lr.v.cview(), v_scratch_.view());
    view_ = tlr::LrView{u_scratch_.cview(), v_scratch_.cview()};
  }
}

int potrf_tile(Tile& akk) {
  GSX_REQUIRE(akk.format() == TileFormat::Dense && akk.precision() == Precision::FP64,
              "potrf_tile: diagonal tiles must be dense FP64");
  account(KernelOp::Potrf, Precision::FP64, obs::potrf_flops(akk.rows()));
  const obs::KernelTimer timer(KernelOp::Potrf, Precision::FP64);
  return la::potrf<double>(la::Uplo::Lower, akk.d64().view());
}

void trsm_tile(const Tile& lkk, Tile& amk) {
  GSX_REQUIRE(amk.format() == TileFormat::Dense, "trsm_tile: expects a dense tile");
  account(KernelOp::Trsm, amk.precision(), obs::trsm_flops(amk.rows(), amk.cols()));
  switch (amk.precision()) {
    case Precision::FP64: {
      const F64Operand l(lkk);
      const obs::KernelTimer timer(KernelOp::Trsm, Precision::FP64);
      la::trsm<double>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans,
                       la::Diag::NonUnit, 1.0, l.view(), amk.d64().view());
      break;
    }
    case Precision::FP32: {
      const F32Operand l(lkk);
      const obs::KernelTimer timer(KernelOp::Trsm, Precision::FP32);
      la::trsm<float>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans, la::Diag::NonUnit,
                      1.0f, l.view(), amk.d32().view());
      break;
    }
    case Precision::FP16: {
      // 16-bit formats have no reliable triangular solve: promote to FP32
      // compute, then round back to the tile's storage precision.
      const F32Operand l(lkk);
      la::Matrix<float> a32(amk.rows(), amk.cols());
      la::convert(amk.d16().cview(), a32.view());
      {
        const obs::KernelTimer timer(KernelOp::Trsm, Precision::FP16);
        la::trsm<float>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans,
                        la::Diag::NonUnit, 1.0f, l.view(), a32.view());
      }
      la::convert(a32.cview(), amk.d16().view());
      break;
    }
    case Precision::BF16: {
      const F32Operand l(lkk);
      la::Matrix<float> a32(amk.rows(), amk.cols());
      la::convert(amk.dbf16().cview(), a32.view());
      {
        const obs::KernelTimer timer(KernelOp::Trsm, Precision::BF16);
        la::trsm<float>(la::Side::Right, la::Uplo::Lower, la::Trans::Trans,
                        la::Diag::NonUnit, 1.0f, l.view(), a32.view());
      }
      la::convert(a32.cview(), amk.dbf16().view());
      break;
    }
  }
}

void syrk_tile(const Tile& amk, Tile& amm) {
  GSX_REQUIRE(amm.format() == TileFormat::Dense && amm.precision() == Precision::FP64,
              "syrk_tile: diagonal tiles must be dense FP64");
  account(KernelOp::Syrk, Precision::FP64, obs::syrk_flops(amm.rows(), amk.cols()));
  const F64Operand a(amk);
  const obs::KernelTimer timer(KernelOp::Syrk, Precision::FP64);
  la::syrk<double>(la::Uplo::Lower, la::Trans::NoTrans, -1.0, a.view(), 1.0,
                   amm.d64().view());
}

void gemm_tile(const Tile& amk, const Tile& ank, Tile& amn) {
  GSX_REQUIRE(amn.format() == TileFormat::Dense, "gemm_tile: expects a dense output tile");
  account(KernelOp::Gemm, amn.precision(),
          obs::gemm_flops(amn.rows(), amn.cols(), amk.cols()));
  switch (amn.precision()) {
    case Precision::FP64: {
      const F64Operand a(amk), b(ank);
      const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP64);
      la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.view(), b.view(), 1.0,
                       amn.d64().view());
      break;
    }
    case Precision::FP32: {
      const F32Operand a(amk), b(ank);
      const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP32);
      la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.view(), b.view(), 1.0f,
                      amn.d32().view());
      break;
    }
    case Precision::FP16: {
      // SHGEMM: operands trimmed to FP16, FP32 accumulation, FP16 store.
      const F16Operand a(amk), b(ank);
      const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP16);
      la::hgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.view(), b.view(), 1.0f,
                amn.d16().view());
      break;
    }
    case Precision::BF16: {
      // SBGEMM: operands trimmed to BF16, FP32 accumulation, BF16 store.
      const Bf16Operand a(amk), b(ank);
      const obs::KernelTimer timer(KernelOp::Gemm, Precision::BF16);
      la::bgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.view(), b.view(), 1.0f,
                amn.dbf16().view());
      break;
    }
  }
}

void trsm_lr_tile(const Tile& lkk, Tile& amk) {
  GSX_REQUIRE(amk.format() == TileFormat::LowRank, "trsm_lr_tile: expects a low-rank tile");
  if (obs::enabled())
    obs::annotate_task(amk.precision(), static_cast<std::int64_t>(amk.rank()), 0);
  const F64Operand l(lkk);
  if (amk.precision() == Precision::FP64) {
    tlr::lr_trsm_right_lower_trans(l.view(), amk.lr64().v);
  } else {
    auto& lr = amk.lr32();
    la::Matrix<double> v64(lr.v.rows(), lr.v.cols());
    la::convert(lr.v.cview(), v64.view());
    tlr::lr_trsm_right_lower_trans(l.view(), v64);
    la::convert(v64.cview(), lr.v.view());
  }
}

void syrk_lr_tile(const Tile& amk, Tile& amm) {
  GSX_REQUIRE(amm.format() == TileFormat::Dense && amm.precision() == Precision::FP64,
              "syrk_lr_tile: diagonal tiles must be dense FP64");
  if (obs::enabled())
    obs::annotate_task(amk.precision(), static_cast<std::int64_t>(amk.rank()), 0);
  const LrOperand a(amk);
  tlr::syrk_lr_dense(-1.0, a.view(), amm.d64().view());
}

namespace {

/// Assemble the low-rank product P = A_mk * A_nk^T for any dense/LR mix.
tlr::LrProduct make_product(const Tile& amk, const Tile& ank, double abs_tol) {
  const bool a_lr = amk.format() == TileFormat::LowRank;
  const bool b_lr = ank.format() == TileFormat::LowRank;
  if (a_lr && b_lr) {
    const LrOperand a(amk), b(ank);
    return tlr::product_lr_lr(a.view(), b.view());
  }
  if (a_lr) {
    const LrOperand a(amk);
    const F64Operand b(ank);
    return tlr::product_lr_dense(a.view(), b.view());
  }
  if (b_lr) {
    const F64Operand a(amk);
    const LrOperand b(ank);
    return tlr::product_dense_lr(a.view(), b.view());
  }
  const F64Operand a(amk), b(ank);
  return tlr::product_dense_dense(a.view(), b.view(), abs_tol);
}

}  // namespace

void gemm_mixed_tile(const Tile& amk, const Tile& ank, Tile& amn, double abs_tol,
                     tlr::RoundingMethod rounding) {
  const bool a_lr = amk.format() == TileFormat::LowRank;
  const bool b_lr = ank.format() == TileFormat::LowRank;
  if (obs::enabled() && (a_lr || b_lr || amn.format() == TileFormat::LowRank)) {
    const std::int64_t rank =
        amn.format() == TileFormat::LowRank ? static_cast<std::int64_t>(amn.rank()) : -1;
    obs::annotate_task(amn.precision(), rank, 0);
  }

  if (amn.format() == TileFormat::Dense) {
    if (!a_lr && !b_lr) {
      gemm_tile(amk, ank, amn);
      return;
    }
    // Dense output with at least one low-rank operand: FP64 compute, then
    // round back to the output tile's storage precision.
    const Precision out_p = amn.precision();
    la::Matrix<double> c64 = amn.to_dense64();
    if (a_lr && b_lr) {
      const LrOperand a(amk), b(ank);
      tlr::gemm_lr_lr_dense(-1.0, a.view(), b.view(), c64.view());
    } else if (a_lr) {
      const LrOperand a(amk);
      const F64Operand b(ank);
      tlr::gemm_lr_dense_dense(-1.0, a.view(), b.view(), c64.view());
    } else {
      const F64Operand a(amk);
      const LrOperand b(ank);
      tlr::gemm_dense_lr_dense(-1.0, a.view(), b.view(), c64.view());
    }
    amn.assign_dense64(std::move(c64));
    amn.convert_dense(out_p);
    return;
  }

  // Low-rank output: form the product in LR form and accumulate with
  // QR-based rounding.
  const tlr::LrProduct p = make_product(amk, ank, abs_tol);
  if (amn.precision() == Precision::FP64) {
    auto& lr = amn.lr64();
    tlr::lr_axpy_rounded(-1.0, p, lr.u, lr.v, abs_tol, rounding);
  } else {
    auto& lr = amn.lr32();
    la::Matrix<double> u64(lr.u.rows(), lr.u.cols());
    la::Matrix<double> v64(lr.v.rows(), lr.v.cols());
    la::convert(lr.u.cview(), u64.view());
    la::convert(lr.v.cview(), v64.view());
    tlr::lr_axpy_rounded(-1.0, p, u64, v64, abs_tol, rounding);
    lr.u.resize(u64.rows(), u64.cols());
    lr.v.resize(v64.rows(), v64.cols());
    la::convert(u64.cview(), lr.u.view());
    la::convert(v64.cview(), lr.v.view());
  }
  if (obs::enabled())  // re-annotate with the post-accumulation rank
    obs::annotate_task(amn.precision(), static_cast<std::int64_t>(amn.rank()), 0);
}

}  // namespace gsx::cholesky
