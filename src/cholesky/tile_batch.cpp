#include "cholesky/tile_batch.hpp"

#include <deque>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/half_blas.hpp"
#include "obs/flops.hpp"
#include "obs/trace.hpp"

namespace gsx::cholesky {

using obs::KernelOp;
using tile::SymTileMatrix;
using tile::Tile;
using tile::TileFormat;

namespace {

/// One precision-uniform slice of a panel column's trailing updates. All
/// outputs share (rows, cols); a ragged last tile row lands in its own group
/// (batched kernels require uniform shapes).
struct Group {
  Precision p = Precision::FP64;
  std::size_t rows = 0;
  std::vector<std::size_t> ms;
};

// The four per-precision group runners mirror the switch in gemm_tile: same
// operand converters, same kernel, same (NoTrans, Trans, -1, +1) update.
// Operands live in a deque so their views stay valid for the whole call.

void run_group_f64(SymTileMatrix& a, std::size_t k, std::size_t n, const Group& g) {
  const F64Operand b(a.at(n, k));
  std::deque<F64Operand> ops;
  std::vector<la::GemmBatchItem<double>> items;
  items.reserve(g.ms.size());
  for (const std::size_t m : g.ms) {
    ops.emplace_back(a.at(m, k));
    items.push_back({ops.back().view(), b.view(), a.at(m, n).d64().view()});
  }
  const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP64);
  la::gemm_batch<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, items.data(),
                         items.size(), 1.0);
}

void run_group_f32(SymTileMatrix& a, std::size_t k, std::size_t n, const Group& g) {
  const F32Operand b(a.at(n, k));
  std::deque<F32Operand> ops;
  std::vector<la::GemmBatchItem<float>> items;
  items.reserve(g.ms.size());
  for (const std::size_t m : g.ms) {
    ops.emplace_back(a.at(m, k));
    items.push_back({ops.back().view(), b.view(), a.at(m, n).d32().view()});
  }
  const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP32);
  la::gemm_batch<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(),
                        items.size(), 1.0f);
}

void run_group_f16(SymTileMatrix& a, std::size_t k, std::size_t n, const Group& g) {
  const F16Operand b(a.at(n, k));
  std::deque<F16Operand> ops;
  std::vector<la::Gemm16BatchItem<half>> items;
  items.reserve(g.ms.size());
  for (const std::size_t m : g.ms) {
    ops.emplace_back(a.at(m, k));
    items.push_back({ops.back().view(), b.view(), a.at(m, n).d16().view()});
  }
  const obs::KernelTimer timer(KernelOp::Gemm, Precision::FP16);
  la::hgemm_batch(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(),
                  items.size(), 1.0f);
}

void run_group_bf16(SymTileMatrix& a, std::size_t k, std::size_t n, const Group& g) {
  const Bf16Operand b(a.at(n, k));
  std::deque<Bf16Operand> ops;
  std::vector<la::Gemm16BatchItem<bfloat16>> items;
  items.reserve(g.ms.size());
  for (const std::size_t m : g.ms) {
    ops.emplace_back(a.at(m, k));
    items.push_back({ops.back().view(), b.view(), a.at(m, n).dbf16().view()});
  }
  const obs::KernelTimer timer(KernelOp::Gemm, Precision::BF16);
  la::bgemm_batch(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(),
                  items.size(), 1.0f);
}

}  // namespace

void gemm_tile_batch(SymTileMatrix& a, std::size_t k, std::size_t n,
                     const std::vector<std::size_t>& ms, bool tlr_mode, double abs_tol,
                     tlr::RoundingMethod rounding) {
  const Tile& ank = a.at(n, k);
  const bool ank_lr = ank.format() == TileFormat::LowRank;
  std::vector<Group> groups;
  for (const std::size_t m : ms) {
    const Tile& amk = a.at(m, k);
    Tile& amn = a.at(m, n);
    // Updates involving a low-rank tile keep the per-op LR algebra; each
    // output tile is touched exactly once per k, so interleaving per-op and
    // batched items cannot change any result.
    if (tlr_mode && (ank_lr || amk.format() == TileFormat::LowRank ||
                     amn.format() == TileFormat::LowRank)) {
      gemm_mixed_tile(amk, ank, amn, abs_tol, rounding);
      continue;
    }
    GSX_REQUIRE(amn.format() == TileFormat::Dense,
                "gemm_tile_batch: expects a dense output tile");
    Group* g = nullptr;
    for (Group& cand : groups)
      if (cand.p == amn.precision() && cand.rows == amn.rows()) {
        g = &cand;
        break;
      }
    if (g == nullptr) {
      groups.push_back({amn.precision(), amn.rows(), {}});
      g = &groups.back();
    }
    g->ms.push_back(m);
  }

  for (const Group& g : groups) {
    if (obs::enabled()) {
      // Ledger parity with the per-op path: one gemm_flops entry per tile
      // update (the batch histogram, recorded inside the kernel, is what
      // tracks actual launch granularity).
      std::uint64_t flops = 0;
      for (const std::size_t m : g.ms) {
        const std::uint64_t f =
            obs::gemm_flops(a.at(m, n).rows(), a.at(m, n).cols(), a.at(m, k).cols());
        obs::add_flops(KernelOp::Gemm, g.p, f);
        flops += f;
      }
      obs::annotate_task(g.p, -1, flops);
    }
    switch (g.p) {
      case Precision::FP64:
        run_group_f64(a, k, n, g);
        break;
      case Precision::FP32:
        run_group_f32(a, k, n, g);
        break;
      case Precision::FP16:
        run_group_f16(a, k, n, g);
        break;
      case Precision::BF16:
        run_group_bf16(a, k, n, g);
        break;
    }
  }
}

}  // namespace gsx::cholesky
