// Tile Cholesky factorization variants over the task runtime.
//
// Three variants reproduce the paper's comparison:
//  * dense FP64    — apply_precision_policy(AllFP64) + tile_cholesky_dense
//  * MP dense      — band or adaptive-Frobenius policy + tile_cholesky_dense
//  * MP dense/TLR  — policy on the dense band + compress_offband +
//                    tile_cholesky_tlr
#pragma once

#include <cstdint>

#include "cholesky/precision_policy.hpp"
#include "runtime/task_graph.hpp"
#include "tile/sym_tile_matrix.hpp"
#include "tlr/compression.hpp"

namespace gsx::cholesky {

struct FactorOptions {
  std::size_t workers = 1;
  rt::SchedPolicy sched = rt::SchedPolicy::Priority;
  bool tracing = false;
  /// Rounding used by the TLR path's low-rank accumulations.
  tlr::RoundingMethod rounding = tlr::RoundingMethod::QrSvd;
  /// Precision rule that shaped the matrix — forensic context only (the
  /// factorization itself reads per-tile precisions, not the rule).
  PrecisionRule rule = PrecisionRule::AllFP64;
};

struct FactorReport {
  /// 0 on success; otherwise 1-based global index of the failing pivot.
  int info = 0;
  double seconds = 0.0;
  rt::GraphStats graph;
  /// Failing tile index when info != 0 (diagonal tile of the bad pivot).
  long failed_tile = -1;
};

/// Mixed-precision dense tile Cholesky (Algorithm 1). All tiles must be
/// dense; per-tile precisions as set by apply_precision_policy. On return
/// the stored triangle holds the tile Cholesky factor (each tile at its own
/// storage precision).
FactorReport tile_cholesky_dense(tile::SymTileMatrix& a, const FactorOptions& opts);

struct TlrCompressOptions {
  double tol = 1.0e-8;          ///< absolute Frobenius tolerance per tile
  std::size_t band_size = 1;    ///< |i-j| < band_size stays dense (>= 1)
  tlr::CompressionMethod method = tlr::CompressionMethod::SVD;
  /// Structure-aware cap (Algorithm 2 outcome): a tile whose compressed
  /// rank exceeds this is converted back to dense. 0 = half the tile side.
  std::size_t max_rank = 0;
  /// Store low-rank factors in FP32 where the Frobenius rule permits.
  bool lr_fp32 = true;
  double eps_target = 1.0e-8;   ///< accuracy target for the FP32-LR decision
  std::uint64_t seed = 42;      ///< randomized compression seed
};

struct CompressStats {
  std::size_t dense_tiles = 0;     ///< stored tiles left dense (incl. band)
  std::size_t lr_tiles = 0;
  std::size_t lr_fp32_tiles = 0;   ///< subset of lr_tiles stored in FP32
  std::size_t reverted_tiles = 0;  ///< off-band tiles sent back to dense
  std::size_t max_rank = 0;
  double avg_rank = 0.0;           ///< over low-rank tiles
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
};

/// Compress off-band tiles to low-rank form (structure-aware decision):
/// run after generation + precision policy, before tile_cholesky_tlr.
CompressStats compress_offband(tile::SymTileMatrix& a, const TlrCompressOptions& opts,
                               std::size_t workers = 1);

/// TLR tile Cholesky over mixed dense/low-rank tiles. `abs_tol` bounds the
/// rounding of low-rank accumulations (use the compression tolerance).
FactorReport tile_cholesky_tlr(tile::SymTileMatrix& a, double abs_tol,
                               const FactorOptions& opts);

}  // namespace gsx::cholesky
