#include "cholesky/factorize.hpp"

#include <atomic>
#include <string>

#include "cholesky/tile_batch.hpp"
#include "cholesky/tile_kernels.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "la/convert.hpp"
#include "obs/flops.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace gsx::cholesky {

using rt::Access;
using rt::DatumId;
using tile::SymTileMatrix;
using tile::Tile;
using tile::TileFormat;

namespace {

DatumId tid(const SymTileMatrix& a, std::size_t i, std::size_t j) {
  return DatumId::from_pointer(&a.at(i, j));
}

/// Submit the Algorithm-1 DAG. `gemm_batch_fn(k, n, ms)` applies the
/// trailing updates A(m,n) -= A(m,k) A(n,k)^T for every m in `ms`; the DAG
/// submits one task per <= kGemmBatchMax chunk of a panel column so all
/// GEMMs sharing the packed A(n,k) operand execute as one batched kernel
/// call (per-tile dependencies and results are unchanged — each output tile
/// is still read-modify-written exactly once per k, in k order).
template <typename TrsmFn, typename SyrkFn, typename GemmBatchFn>
FactorReport run_cholesky_dag(SymTileMatrix& a, const FactorOptions& opts, TrsmFn&& trsm_fn,
                              SyrkFn&& syrk_fn, GemmBatchFn&& gemm_batch_fn) {
  const std::size_t nt = a.nt();
  rt::TaskGraph graph;
  graph.set_policy(opts.sched);
  // Profiling implies tracing: the per-task spans feed the pipeline trace.
  const bool profiling = obs::enabled();
  graph.set_tracing(opts.tracing || profiling);

  std::atomic<int> info{0};

  for (std::size_t k = 0; k < nt; ++k) {
    const int base = 3 * static_cast<int>(nt - k);
    graph.submit(
        "potrf(" + std::to_string(k) + ")", {{tid(a, k, k), Access::ReadWrite}},
        [&a, &info, k, rule = opts.rule] {
          const int local = potrf_tile(a.at(k, k));
          if (local != 0) {
            int expected = 0;
            const int pivot = static_cast<int>(k * a.tile_size()) + local;
            info.compare_exchange_strong(expected, pivot);
            NumericalContext ctx;
            ctx.tile_i = ctx.tile_j = static_cast<long>(k);
            ctx.pivot = pivot;
            ctx.precision = a.at(k, k).precision();
            ctx.tile_norm = a.at(k, k).frobenius();
            ctx.rule = precision_rule_name(rule);
            throw NumericalError("tile Cholesky: non-SPD pivot in diagonal tile " +
                                     std::to_string(k),
                                 std::move(ctx));
          }
        },
        base + 2);

    for (std::size_t m = k + 1; m < nt; ++m) {
      graph.submit("trsm(" + std::to_string(m) + "," + std::to_string(k) + ")",
                   {{tid(a, k, k), Access::Read}, {tid(a, m, k), Access::ReadWrite}},
                   [&a, &trsm_fn, m, k] { trsm_fn(a.at(k, k), a.at(m, k)); }, base + 1);
    }
    for (std::size_t m = k + 1; m < nt; ++m) {
      graph.submit("syrk(" + std::to_string(m) + "," + std::to_string(k) + ")",
                   {{tid(a, m, k), Access::Read}, {tid(a, m, m), Access::ReadWrite}},
                   [&a, &syrk_fn, m, k] { syrk_fn(a.at(m, k), a.at(m, m)); }, base);
    }
    for (std::size_t n = k + 1; n < nt; ++n) {
      for (std::size_t m0 = n + 1; m0 < nt; m0 += kGemmBatchMax) {
        const std::size_t m1 = std::min(nt, m0 + kGemmBatchMax);
        std::vector<rt::Dep> deps;
        deps.reserve(2 * (m1 - m0) + 1);
        deps.push_back({tid(a, n, k), Access::Read});
        std::vector<std::size_t> ms;
        ms.reserve(m1 - m0);
        for (std::size_t m = m0; m < m1; ++m) {
          ms.push_back(m);
          deps.push_back({tid(a, m, k), Access::Read});
          deps.push_back({tid(a, m, n), Access::ReadWrite});
        }
        graph.submit("gemm(" + std::to_string(m0) +
                         (m1 - m0 > 1 ? ".." + std::to_string(m1 - 1) : std::string{}) +
                         "," + std::to_string(n) + "," + std::to_string(k) + ")",
                     deps, [&a, &gemm_batch_fn, ms = std::move(ms), n, k] {
                       gemm_batch_fn(k, n, ms);
                     },
                     base);
      }
    }
  }

  FactorReport report;
  // Task timestamps come out of run() relative to its start; capture the
  // process-wide epoch here so they stitch into the pipeline trace.
  const double run_epoch = obs::now_seconds();
  Timer t;
  try {
    const obs::ScopedPhase phase("factorize");
    graph.run(opts.workers);
  } catch (const NumericalError& e) {
    // info carries the failing pivot; callers treat info != 0 as soft
    // failure (the MLE optimizer backs away from the parameter point).
    GSX_REQUIRE(info.load() != 0, "tile Cholesky: abort without pivot info");
    const auto k = static_cast<std::size_t>(info.load() - 1) / a.tile_size();
    report.failed_tile = static_cast<long>(k);
    obs::log_error("cholesky", "non-SPD pivot, factorization aborted",
                   {obs::lf("tile", static_cast<std::uint64_t>(k)),
                    obs::lf("pivot", static_cast<std::int64_t>(info.load())),
                    obs::lf("rule", precision_rule_name(opts.rule))});
    if (obs::health_enabled()) {
      obs::FailureRecord fr;
      fr.what = e.what();
      fr.tile_i = fr.tile_j = static_cast<long>(k);
      fr.pivot = info.load();
      fr.rule = precision_rule_name(opts.rule);
      if (e.has_context()) {
        fr.precision = e.context().precision;
        fr.tile_norm = e.context().tile_norm;
      } else {
        fr.precision = a.at(k, k).precision();
        fr.tile_norm = a.at(k, k).frobenius();
      }
      auto add_neighbor = [&](std::size_t i, std::size_t j) {
        if (i >= nt || j > i) return;
        const Tile& t = a.at(i, j);
        fr.neighbors.push_back({static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(j), t.decision_code(),
                                static_cast<std::uint32_t>(t.rank()), t.precision()});
      };
      if (k >= 1) {
        add_neighbor(k - 1, k - 1);
        add_neighbor(k, k - 1);
      }
      add_neighbor(k + 1, k);
      add_neighbor(k + 1, k + 1);
      obs::record_failure(std::move(fr));
    }
  }
  report.seconds = t.seconds();
  if (profiling) {
    for (const rt::TraceEvent& e : graph.trace())
      obs::record_span({e.name, "task", static_cast<std::uint32_t>(e.worker),
                        run_epoch + e.start_seconds, run_epoch + e.end_seconds, e.args});
  }
  report.info = info.load();
  report.graph = graph.stats();
  return report;
}

}  // namespace

FactorReport tile_cholesky_dense(SymTileMatrix& a, const FactorOptions& opts) {
  return run_cholesky_dag(
      a, opts, [](const Tile& l, Tile& b) { trsm_tile(l, b); },
      [](const Tile& p, Tile& d) { syrk_tile(p, d); },
      [&a](std::size_t k, std::size_t n, const std::vector<std::size_t>& ms) {
        gemm_tile_batch(a, k, n, ms, /*tlr_mode=*/false, 0.0);
      });
}

FactorReport tile_cholesky_tlr(SymTileMatrix& a, double abs_tol, const FactorOptions& opts) {
  return run_cholesky_dag(
      a, opts,
      [](const Tile& l, Tile& b) {
        if (b.format() == TileFormat::LowRank)
          trsm_lr_tile(l, b);
        else
          trsm_tile(l, b);
      },
      [](const Tile& p, Tile& d) {
        if (p.format() == TileFormat::LowRank)
          syrk_lr_tile(p, d);
        else
          syrk_tile(p, d);
      },
      [&a, abs_tol, rounding = opts.rounding](std::size_t k, std::size_t n,
                                              const std::vector<std::size_t>& ms) {
        gemm_tile_batch(a, k, n, ms, /*tlr_mode=*/true, abs_tol, rounding);
      });
}

CompressStats compress_offband(SymTileMatrix& a, const TlrCompressOptions& opts,
                               std::size_t workers) {
  GSX_REQUIRE(opts.band_size >= 1, "compress_offband: band must keep the diagonal dense");
  GSX_REQUIRE(opts.tol > 0, "compress_offband: tolerance must be positive");
  const std::size_t nt = a.nt();

  const obs::ScopedPhase obs_phase("compress");
  CompressStats stats;
  stats.bytes_before = a.footprint_bytes();
  const std::size_t rank_cap = (opts.max_rank > 0) ? opts.max_rank : a.tile_size() / 2;

  // Global norm for the FP32-storage decision on LR factors.
  const double global_norm = opts.lr_fp32 ? a.frobenius_norm() : 0.0;

  // Collect compressible coordinates.
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i)
      if (i - j >= opts.band_size) coords.emplace_back(i, j);

  std::atomic<std::size_t> lr_count{0}, lr32_count{0}, reverted{0}, max_rank{0};
  std::atomic<std::uint64_t> rank_sum{0};

  rt::parallel_for(0, coords.size(), workers, [&](std::size_t c) {
    const auto [i, j] = coords[c];
    Tile& t = a.at(i, j);
    GSX_REQUIRE(t.format() == TileFormat::Dense,
                "compress_offband: tile already compressed");
    const double tile_norm = t.frobenius();
    const la::Matrix<double> full = t.to_dense64();
    const bool audit = obs::health_enabled();
    if (audit) {
      // Compressing a tile with NaN/Inf silently poisons its factors; flag
      // the input here, where the tile coordinate is still known.
      const std::size_t bad = t.nonfinite_count();
      if (bad > 0) {
        obs::record_nonfinite("compress", static_cast<long>(i), static_cast<long>(j),
                              bad);
        obs::log_warn("compress", "non-finite values in compression input",
                      {obs::lf("tile_i", static_cast<std::uint64_t>(i)),
                       obs::lf("tile_j", static_cast<std::uint64_t>(j)),
                       obs::lf("count", static_cast<std::uint64_t>(bad))});
      }
    }
    Rng rng(opts.seed + 1315423911ull * (i * nt + j));
    tlr::Compressed comp =
        tlr::compress(opts.method, full.cview(), opts.tol, rng, tlr::TolMode::Absolute);

    if (comp.rank() > rank_cap) {
      // Structure-aware decision: rank too high for the TLR kernel to win;
      // keep the tile dense (it re-joins the band, cf. Fig. 3(a->b)).
      ++reverted;
      return;
    }

    // Precision-aware decision for the LR factors (FP64 vs FP32 storage).
    bool use_fp32 = false;
    if (opts.lr_fp32) {
      const Precision p = frobenius_precision(tile_norm, global_norm, nt, opts.eps_target,
                                              /*allow_fp16=*/false, t.rows() * t.cols());
      use_fp32 = (p != Precision::FP64);
    }
    const std::size_t k = comp.rank();
    // Rank-revealing cost ~ two (m x n) * (n x k) products.
    obs::add_flops(obs::KernelOp::Compress, Precision::FP64,
                   2 * obs::gemm_flops(t.rows(), t.cols(), k));
    if (audit) {
      obs::TlrRecord tr;
      tr.i = static_cast<std::uint32_t>(i);
      tr.j = static_cast<std::uint32_t>(j);
      tr.rank = static_cast<std::uint32_t>(k);
      tr.tol = opts.tol;
      tr.observed_err = tlr::lowrank_error(full.cview(), comp.u, comp.v);
      tr.fp32 = use_fp32;
      obs::record_tlr(tr);
    }
    if (use_fp32) {
      la::Matrix<float> u32(comp.u.rows(), k), v32(comp.v.rows(), k);
      la::convert(comp.u.cview(), u32.view());
      la::convert(comp.v.cview(), v32.view());
      t = Tile::lowrank32(std::move(u32), std::move(v32));
      ++lr32_count;
    } else {
      t = Tile::lowrank64(std::move(comp.u), std::move(comp.v));
    }
    ++lr_count;
    rank_sum += k;
    std::size_t prev = max_rank.load();
    while (k > prev && !max_rank.compare_exchange_weak(prev, k)) {
    }
  });

  stats.lr_tiles = lr_count.load();
  stats.lr_fp32_tiles = lr32_count.load();
  stats.reverted_tiles = reverted.load();
  stats.max_rank = max_rank.load();
  stats.avg_rank = stats.lr_tiles > 0
                       ? static_cast<double>(rank_sum.load()) /
                             static_cast<double>(stats.lr_tiles)
                       : 0.0;
  stats.dense_tiles = nt * (nt + 1) / 2 - stats.lr_tiles;
  stats.bytes_after = a.footprint_bytes();
  return stats;
}

}  // namespace gsx::cholesky
