// Precision-aware tile decisions (paper Section VI-C and Fig. 2).
//
// Two rules decide each tile's storage precision before factorization:
//  * Band rule (Fig. 2c): precision by distance from the diagonal — the
//    "fast path" previously studied on Shaheen-II/HAWK/Summit.
//  * Adaptive Frobenius rule (Fig. 2d): tile A_ij may be stored at unit
//    roundoff u_low iff ||A_ij||_F < eps * ||A||_F / (NT * u_low); the
//    perturbed matrix then satisfies ||A^ - A||_F <= eps * ||A||_F.
//    The paper instantiates eps = u_high (the high precision's epsilon); we
//    expose eps as the application accuracy target.
#pragma once

#include <cstddef>

#include "common/precision.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::cholesky {

enum class PrecisionRule : unsigned char {
  AllFP64,            ///< reference dense FP64
  Band,               ///< Fig. 2(c): banded FP64/FP32/FP16
  AdaptiveFrobenius,  ///< Fig. 2(d): norm-thresholded per tile
};

[[nodiscard]] constexpr const char* precision_rule_name(PrecisionRule r) noexcept {
  switch (r) {
    case PrecisionRule::AllFP64: return "all-fp64";
    case PrecisionRule::Band: return "band";
    case PrecisionRule::AdaptiveFrobenius: return "adaptive-frobenius";
  }
  return "?";
}

struct BandConfig {
  std::size_t fp64_band = 1;  ///< |i-j| <  fp64_band -> FP64 (diag always)
  std::size_t fp32_band = 3;  ///< |i-j| <  fp32_band -> FP32; beyond -> FP16
};

struct PrecisionPolicy {
  PrecisionRule rule = PrecisionRule::AllFP64;
  BandConfig band;
  /// Accuracy target eps of the Frobenius rule (paper: u_high of FP64).
  double eps_target = 1.0e-8;
  /// Permit FP16 storage (the paper disables FP16 when the accumulation
  /// hardware is missing; we always accumulate in FP32).
  bool allow_fp16 = true;
  /// Permit BF16 storage (the paper's BF16/TF32 outlook, Section VII-A).
  /// Band rule: BF16 is the 16-bit tier when FP16 is disallowed. Adaptive
  /// rule: BF16 catches tiles FP16 loses to *underflow* rather than
  /// roundoff.
  bool allow_bf16 = false;
};

/// Decide the storage precision of tile (i, j) under the band rule. Beyond
/// `fp32_band` the tile takes the narrowest permitted 16-bit format (FP16
/// preferred over BF16 for its smaller roundoff), else stays FP32.
[[nodiscard]] Precision band_precision(std::size_t i, std::size_t j, const BandConfig& cfg,
                                       bool allow_fp16, bool allow_bf16 = false) noexcept;

/// Decide the storage precision of one tile under the Frobenius rule.
/// `tile_norm` is ||A_ij||_F, `global_norm` is ||A||_F, `nt` the tile count
/// per dimension, `tile_elems` the tile's element count.
///
/// The storage error of precision p is bounded by
///   u_p * ||A_ij||_F + sqrt(elems) * subnormal_ulp(p) / 2,
/// the second term covering gradual underflow (FP16 subnormals round with an
/// *absolute* floor of 2^-25, which the naive relative bound misses — without
/// it the paper's global guarantee ||A^ - A||_F <= eps ||A||_F fails for
/// tiles whose entries land in the subnormal range).
[[nodiscard]] Precision frobenius_precision(double tile_norm, double global_norm,
                                            std::size_t nt, double eps_target,
                                            bool allow_fp16, std::size_t tile_elems = 0,
                                            bool allow_bf16 = false) noexcept;

/// Statistics of a policy application.
struct PolicyStats {
  std::size_t fp64_tiles = 0;
  std::size_t fp32_tiles = 0;
  std::size_t fp16_tiles = 0;
  std::size_t bf16_tiles = 0;
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
};

/// Demote dense-tile storage across the matrix per the policy. Diagonal
/// tiles always stay FP64 (POTRF stability). Returns what was decided.
PolicyStats apply_precision_policy(tile::SymTileMatrix& a, const PrecisionPolicy& policy);

}  // namespace gsx::cholesky
