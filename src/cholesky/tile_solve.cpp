#include "cholesky/tile_solve.hpp"

#include <cmath>
#include <deque>
#include <functional>

#include "runtime/task_graph.hpp"

#include "cholesky/tile_kernels.hpp"
#include "common/error.hpp"
#include "geostat/assemble.hpp"
#include "la/blas.hpp"
#include "obs/flight.hpp"
#include "obs/flops.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace gsx::cholesky {

using tile::SymTileMatrix;
using tile::Tile;
using tile::TileFormat;

double tile_logdet(const SymTileMatrix& l) {
  double s = 0.0;
  for (std::size_t k = 0; k < l.nt(); ++k) {
    const Tile& d = l.at(k, k);
    GSX_REQUIRE(d.format() == TileFormat::Dense && d.precision() == Precision::FP64,
                "tile_logdet: diagonal tiles must be dense FP64");
    const auto& m = d.d64();
    for (std::size_t i = 0; i < m.rows(); ++i) {
      GSX_REQUIRE(m(i, i) > 0.0, "tile_logdet: factor has non-positive diagonal");
      s += std::log(m(i, i));
    }
  }
  const double result = 2.0 * s;
  if (!std::isfinite(result)) {
    if (obs::health_enabled()) obs::record_nonfinite("solve", -1, -1, 1);
    obs::log_warn("cholesky", "non-finite log-determinant", {obs::lf("logdet", result)});
  }
  return result;
}

namespace {

/// Apply z_i -= A_ik * z_k for an off-diagonal tile of the factor.
void apply_offdiag(const Tile& t, const double* zk, double* zi) {
  if (t.format() == TileFormat::LowRank) {
    const LrOperand a(t);
    tlr::lr_gemv(-1.0, a.view(), zk, zi);
  } else {
    const F64Operand a(t);
    la::gemv<double>(la::Trans::NoTrans, -1.0, a.view(), zk, 1.0, zi);
  }
}

/// Apply z_k -= A_ik^T * z_i.
void apply_offdiag_trans(const Tile& t, const double* zi, double* zk) {
  if (t.format() == TileFormat::LowRank) {
    const LrOperand a(t);
    tlr::lr_gemv_trans(-1.0, a.view(), zi, zk);
  } else {
    const F64Operand a(t);
    la::gemv<double>(la::Trans::Trans, -1.0, a.view(), zi, 1.0, zk);
  }
}

}  // namespace

void tile_forward_solve(const SymTileMatrix& l, std::span<double> z) {
  GSX_REQUIRE(z.size() == l.n(), "tile_forward_solve: vector size mismatch");
  const std::size_t nt = l.nt();
  for (std::size_t k = 0; k < nt; ++k) {
    double* zk = z.data() + l.tile_offset(k);
    // z_k := L_kk^{-1} z_k.
    const auto& d = l.at(k, k).d64();
    const std::size_t nk = l.tile_dim(k);
    for (std::size_t j = 0; j < nk; ++j) {
      zk[j] /= d(j, j);
      const double zj = zk[j];
      if (zj == 0.0) continue;
      for (std::size_t i = j + 1; i < nk; ++i) zk[i] -= d(i, j) * zj;
    }
    for (std::size_t i = k + 1; i < nt; ++i)
      apply_offdiag(l.at(i, k), zk, z.data() + l.tile_offset(i));
  }
}

void tile_backward_solve(const SymTileMatrix& l, std::span<double> z) {
  GSX_REQUIRE(z.size() == l.n(), "tile_backward_solve: vector size mismatch");
  const std::size_t nt = l.nt();
  for (std::size_t k = nt; k-- > 0;) {
    double* zk = z.data() + l.tile_offset(k);
    for (std::size_t i = k + 1; i < nt; ++i)
      apply_offdiag_trans(l.at(i, k), z.data() + l.tile_offset(i), zk);
    // z_k := L_kk^{-T} z_k.
    const auto& d = l.at(k, k).d64();
    const std::size_t nk = l.tile_dim(k);
    for (std::size_t jj = nk; jj-- > 0;) {
      double s = zk[jj];
      for (std::size_t i = jj + 1; i < nk; ++i) s -= d(i, jj) * zk[i];
      zk[jj] = s / d(jj, jj);
    }
  }
}

geostat::LoglikValue tile_loglik(const SymTileMatrix& l, std::span<const double> z) {
  GSX_REQUIRE(z.size() == l.n(), "tile_loglik: vector size mismatch");
  const obs::ScopedPhase phase("solve");
  obs::add_flops(obs::KernelOp::Solve, Precision::FP64, obs::trsm_flops(1, l.n()));
  geostat::LoglikValue out;
  out.logdet = tile_logdet(l);
  std::vector<double> y(z.begin(), z.end());
  {
    const obs::KernelTimer timer(obs::KernelOp::Solve, Precision::FP64);
    tile_forward_solve(l, y);
  }
  out.quadratic = 0.0;
  for (double v : y) out.quadratic += v * v;
  constexpr double kLog2Pi = 1.8378770664093454835606594728112;
  out.loglik =
      -0.5 * (static_cast<double>(l.n()) * kLog2Pi + out.logdet + out.quadratic);
  out.ok = true;
  return out;
}

namespace {

/// B_i -= A_ik * B_k for an off-diagonal tile against RHS block rows.
void apply_offdiag_multi(const Tile& t, Span2D<const double> bk, Span2D<double> bi) {
  if (t.format() == TileFormat::LowRank) {
    const LrOperand a(t);
    const tlr::LrView& lr = a.view();
    const std::size_t k = lr.rank();
    if (k == 0) return;
    la::Matrix<double> w(k, bk.cols());
    la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, 1.0, lr.v, bk, 0.0, w.view());
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, -1.0, lr.u, w.cview(), 1.0,
                     bi);
  } else {
    const F64Operand a(t);
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, -1.0, a.view(), bk, 1.0, bi);
  }
}

/// Forward-solve panel update: B_i -= A_ik * B_k for every i in the group,
/// all sharing the solved block row B_k. Dense tiles of equal row count go
/// through one gemm_batch call (the packed B_k panel is re-used across the
/// group); low-rank or ragged tiles fall back to apply_offdiag_multi. Every
/// B_i is written exactly once, so the result is bit-identical to looping.
void apply_offdiag_multi_batch(const SymTileMatrix& l, std::size_t k,
                               Span2D<const double> bk, Span2D<double> cols) {
  const std::size_t nt = l.nt();
  std::deque<F64Operand> ops;
  std::vector<la::GemmBatchItem<double>> items;
  for (std::size_t i = k + 1; i < nt; ++i) {
    auto bi = cols.sub(l.tile_offset(i), 0, l.tile_dim(i), cols.cols());
    const Tile& t = l.at(i, k);
    if (t.format() == TileFormat::LowRank ||
        (!items.empty() && bi.rows() != items.front().c.rows())) {
      apply_offdiag_multi(t, bk, bi);
      continue;
    }
    ops.emplace_back(t);
    items.push_back({ops.back().view(), bk, bi});
  }
  if (items.empty()) return;
  la::gemm_batch<double>(la::Trans::NoTrans, la::Trans::NoTrans, -1.0, items.data(),
                         items.size(), 1.0);
}

/// B_k -= A_ik^T * B_i.
void apply_offdiag_trans_multi(const Tile& t, Span2D<const double> bi, Span2D<double> bk) {
  if (t.format() == TileFormat::LowRank) {
    const LrOperand a(t);
    const tlr::LrView& lr = a.view();
    const std::size_t k = lr.rank();
    if (k == 0) return;
    la::Matrix<double> w(k, bi.cols());
    la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, 1.0, lr.u, bi, 0.0, w.view());
    la::gemm<double>(la::Trans::NoTrans, la::Trans::NoTrans, -1.0, lr.v, w.cview(), 1.0,
                     bk);
  } else {
    const F64Operand a(t);
    la::gemm<double>(la::Trans::Trans, la::Trans::NoTrans, -1.0, a.view(), bi, 1.0, bk);
  }
}

}  // namespace

namespace {

/// Partition the m RHS columns into per-worker blocks and run `solve` on
/// each concurrently. Columns of a triangular solve never interact, so the
/// parallel result is bitwise identical to the sequential one.
void solve_columns_parallel(Span2D<double> b, std::size_t workers,
                            const std::function<void(Span2D<double>)>& solve) {
  const std::size_t m = b.cols();
  if (workers <= 1 || m <= 1) {
    solve(b);
    return;
  }
  const std::size_t blocks = std::min(workers * 4, m);
  const std::size_t per = (m + blocks - 1) / blocks;
  rt::parallel_for(0, blocks, workers, [&](std::size_t blk) {
    const std::size_t c0 = blk * per;
    if (c0 >= m) return;
    const std::size_t nc = std::min(per, m - c0);
    solve(b.sub(0, c0, b.rows(), nc));
  });
}

}  // namespace

void tile_forward_solve_multi(const SymTileMatrix& l, Span2D<double> b,
                              std::size_t workers) {
  GSX_REQUIRE(b.rows() == l.n(), "tile_forward_solve_multi: RHS rows mismatch");
  solve_columns_parallel(b, workers, [&](Span2D<double> cols) {
    const std::size_t nt = l.nt();
    for (std::size_t k = 0; k < nt; ++k) {
      const F64Operand lkk(l.at(k, k));
      auto bk = cols.sub(l.tile_offset(k), 0, l.tile_dim(k), cols.cols());
      la::trsm<double>(la::Side::Left, la::Uplo::Lower, la::Trans::NoTrans,
                       la::Diag::NonUnit, 1.0, lkk.view(), bk);
      apply_offdiag_multi_batch(l, k, bk, cols);
    }
  });
}

void tile_backward_solve_multi(const SymTileMatrix& l, Span2D<double> b,
                               std::size_t workers) {
  GSX_REQUIRE(b.rows() == l.n(), "tile_backward_solve_multi: RHS rows mismatch");
  solve_columns_parallel(b, workers, [&](Span2D<double> cols) {
    const std::size_t nt = l.nt();
    for (std::size_t k = nt; k-- > 0;) {
      auto bk = cols.sub(l.tile_offset(k), 0, l.tile_dim(k), cols.cols());
      for (std::size_t i = k + 1; i < nt; ++i) {
        auto bi = cols.sub(l.tile_offset(i), 0, l.tile_dim(i), cols.cols());
        apply_offdiag_trans_multi(l.at(i, k), bi, bk);
      }
      const F64Operand lkk(l.at(k, k));
      la::trsm<double>(la::Side::Left, la::Uplo::Lower, la::Trans::Trans,
                       la::Diag::NonUnit, 1.0, lkk.view(), bk);
    }
  });
}

geostat::KrigingResult tile_krige_solved(const geostat::CovarianceModel& model,
                                         const SymTileMatrix& factored,
                                         std::span<const double> y_solved,
                                         std::span<const geostat::Location> train_locs,
                                         std::span<const geostat::Location> test_locs,
                                         bool with_variance, std::size_t workers,
                                         SolveTelemetry* telemetry) {
  const std::size_t n = train_locs.size();
  const std::size_t m = test_locs.size();
  GSX_REQUIRE(factored.n() == n && y_solved.size() == n,
              "tile_krige_solved: size mismatch");
  GSX_REQUIRE(m > 0, "tile_krige_solved: no test locations");
  const std::uint64_t req = telemetry != nullptr ? telemetry->ctx.request_id : 0;
  GSX_FLIGHT(obs::EventKind::SolveBegin, req, n, m, 0.0);

  // W = L^{-1} Sigma_nm through the tile factor. Assembly parallelizes over
  // test columns; the solve parallelizes over independent column blocks.
  const double t_assemble0 = obs::now_seconds();
  la::Matrix<double> w(n, m);
  rt::parallel_for(0, m, workers, [&](std::size_t j) {
    for (std::size_t i = 0; i < n; ++i) w(i, j) = model(train_locs[i], test_locs[j]);
  });
  const double t_solve0 = obs::now_seconds();
  if (telemetry != nullptr) telemetry->assemble_seconds = t_solve0 - t_assemble0;
  const obs::ScopedPhase phase("krige");
  obs::add_flops(obs::KernelOp::Krige, Precision::FP64,
                 obs::trsm_flops(m, n) + obs::gemm_flops(m, 1, n));
  geostat::KrigingResult out;
  out.mean.assign(m, 0.0);
  {
    const obs::KernelTimer timer(obs::KernelOp::Krige, Precision::FP64);
    tile_forward_solve_multi(factored, w.view(), workers);
    la::gemv<double>(la::Trans::Trans, 1.0, w.cview(), y_solved.data(), 0.0,
                     out.mean.data());
  }

  if (with_variance) {
    out.variance.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      const double smm = model(test_locs[j], test_locs[j]);
      double wnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) wnorm += w(i, j) * w(i, j);
      out.variance[j] = smm - wnorm;
    }
  }
  const double t_end = obs::now_seconds();
  if (telemetry != nullptr) telemetry->solve_seconds = t_end - t_solve0;
  GSX_FLIGHT(obs::EventKind::SolveEnd, req, n, m, t_end - t_solve0);

  // A factor corrupted on disk or a demotion-overflowed tile turns the solve
  // into Inf/NaN without any BLAS call failing; catch it here so serving
  // fails loudly (and with forensics) instead of shipping garbage.
  std::size_t bad = 0;
  for (const double v : out.mean)
    if (!std::isfinite(v)) ++bad;
  if (bad > 0) {
    if (obs::health_enabled()) obs::record_nonfinite("krige", -1, -1, bad);
    GSX_FLIGHT(obs::EventKind::NumericalSentinel, req, bad, 0, 0.0);
    NumericalContext ctx;
    ctx.rule = "krige_solve";
    throw NumericalError("tile_krige_solved: " + std::to_string(bad) +
                             " non-finite prediction mean(s)" +
                             (req != 0 ? " (request r-" + std::to_string(req) + ")"
                                       : std::string{}),
                         ctx);
  }
  return out;
}

geostat::KrigingResult tile_krige(const geostat::CovarianceModel& model,
                                  const SymTileMatrix& factored,
                                  std::span<const geostat::Location> train_locs,
                                  std::span<const double> z_train,
                                  std::span<const geostat::Location> test_locs,
                                  bool with_variance, std::size_t workers) {
  GSX_REQUIRE(z_train.size() == train_locs.size(), "tile_krige: size mismatch");
  obs::add_flops(obs::KernelOp::Krige, Precision::FP64, obs::trsm_flops(1, factored.n()));
  std::vector<double> y(z_train.begin(), z_train.end());
  {
    const obs::KernelTimer timer(obs::KernelOp::Krige, Precision::FP64);
    tile_forward_solve(factored, y);
  }
  return tile_krige_solved(model, factored, y, train_locs, test_locs, with_variance,
                           workers);
}

la::Matrix<double> reconstruct_lower(const SymTileMatrix& l) {
  const std::size_t n = l.n();
  la::Matrix<double> full(n, n);
  for (std::size_t j = 0; j < l.nt(); ++j) {
    for (std::size_t i = j; i < l.nt(); ++i) {
      const la::Matrix<double> block = l.at(i, j).to_dense64();
      const std::size_t gi0 = l.tile_offset(i);
      const std::size_t gj0 = l.tile_offset(j);
      if (i == j) {
        // Diagonal tiles carry the factor only in their lower triangle.
        for (std::size_t jj = 0; jj < block.cols(); ++jj)
          for (std::size_t ii = jj; ii < block.rows(); ++ii)
            full(gi0 + ii, gj0 + jj) = block(ii, jj);
      } else {
        for (std::size_t jj = 0; jj < block.cols(); ++jj)
          for (std::size_t ii = 0; ii < block.rows(); ++ii)
            full(gi0 + ii, gj0 + jj) = block(ii, jj);
      }
    }
  }
  return full;
}

}  // namespace gsx::cholesky
