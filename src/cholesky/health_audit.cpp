#include "cholesky/health_audit.hpp"

#include <cmath>
#include <vector>

#include "cholesky/tile_solve.hpp"
#include "common/rng.hpp"

namespace gsx::cholesky {

namespace {

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

void random_unit(std::vector<double>& v, std::uint64_t seed) {
  Rng rng(seed);
  for (double& x : v) x = rng.normal();
  const double n = norm2(v);
  if (n > 0.0)
    for (double& x : v) x /= n;
}

}  // namespace

double estimate_lambda_max(const tile::SymTileMatrix& a, std::size_t iters,
                           std::uint64_t seed) {
  const std::size_t n = a.n();
  std::vector<double> v(n), w(n);
  random_unit(v, seed);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iters; ++it) {
    a.symv(v, w);
    lambda = norm2(w);  // v is unit, so ||A v|| -> lambda_max
    if (!(lambda > 0.0) || !std::isfinite(lambda)) return lambda;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / lambda;
  }
  return lambda;
}

double estimate_lambda_min(const tile::SymTileMatrix& factor, std::size_t iters,
                           std::uint64_t seed) {
  const std::size_t n = factor.n();
  std::vector<double> v(n);
  random_unit(v, seed);
  double mu = 0.0;  // dominant eigenvalue of A^{-1} = 1 / lambda_min(A)
  for (std::size_t it = 0; it < iters; ++it) {
    tile_forward_solve(factor, v);
    tile_backward_solve(factor, v);
    mu = norm2(v);
    if (!(mu > 0.0) || !std::isfinite(mu)) return 0.0;
    for (double& x : v) x /= mu;
  }
  return 1.0 / mu;
}

obs::ConditionEstimate audit_condition(double lambda_max,
                                       const tile::SymTileMatrix& factor,
                                       std::size_t iters) {
  obs::ConditionEstimate c;
  c.lambda_max = lambda_max;
  c.lambda_min = estimate_lambda_min(factor, iters);
  c.n = factor.n();
  c.iterations = iters;
  c.method = "power-iteration";
  obs::record_condition(c);
  return c;
}

}  // namespace gsx::cholesky
