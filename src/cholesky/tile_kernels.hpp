// Precision-dispatched tile kernels: the task bodies of the MP Cholesky
// (Algorithm 1). The written tile is the precision lead ('+' operand in the
// paper's notation); read operands are converted on demand to the kernel
// precision ('*' operands), mirroring PaRSEC's in-flight casting.
#pragma once

#include "common/precision.hpp"
#include "la/matrix.hpp"
#include "tile/tile.hpp"
#include "tlr/lr_kernels.hpp"

namespace gsx::cholesky {

/// Operand view of a tile at FP64: zero-copy if the tile is stored FP64
/// dense, otherwise a converted scratch copy (the on-demand cast).
class F64Operand {
 public:
  explicit F64Operand(const tile::Tile& t);
  [[nodiscard]] Span2D<const double> view() const noexcept { return view_; }

 private:
  la::Matrix<double> scratch_;
  Span2D<const double> view_;
};

/// Operand view of a tile at FP32 (converted scratch unless stored FP32).
class F32Operand {
 public:
  explicit F32Operand(const tile::Tile& t);
  [[nodiscard]] Span2D<const float> view() const noexcept { return view_; }

 private:
  la::Matrix<float> scratch_;
  Span2D<const float> view_;
};

/// Operand trimmed to FP16 storage (for the SHGEMM path).
class F16Operand {
 public:
  explicit F16Operand(const tile::Tile& t);
  [[nodiscard]] Span2D<const half> view() const noexcept { return view_; }

 private:
  la::Matrix<half> scratch_;
  Span2D<const half> view_;
};

/// Operand trimmed to BF16 storage (for the SBGEMM path).
class Bf16Operand {
 public:
  explicit Bf16Operand(const tile::Tile& t);
  [[nodiscard]] Span2D<const bfloat16> view() const noexcept { return view_; }

 private:
  la::Matrix<bfloat16> scratch_;
  Span2D<const bfloat16> view_;
};

/// Low-rank view of an LR tile promoted to FP64 compute precision.
class LrOperand {
 public:
  explicit LrOperand(const tile::Tile& t);
  [[nodiscard]] const tlr::LrView& view() const noexcept { return view_; }

 private:
  la::Matrix<double> u_scratch_;
  la::Matrix<double> v_scratch_;
  tlr::LrView view_;
};

/// POTRF on a dense FP64 diagonal tile, in place (lower).
/// Returns LAPACK-style info (0 = success).
int potrf_tile(tile::Tile& akk);

/// TRSM: A_mk := A_mk * L_kk^{-T}; kernel precision = storage of A_mk.
void trsm_tile(const tile::Tile& lkk, tile::Tile& amk);

/// SYRK: A_mm := A_mm - A_mk A_mk^T; diagonal tiles compute in FP64.
void syrk_tile(const tile::Tile& amk, tile::Tile& amm);

/// GEMM: A_mn := A_mn - A_mk A_nk^T; kernel precision = storage of A_mn,
/// all tiles dense.
void gemm_tile(const tile::Tile& amk, const tile::Tile& ank, tile::Tile& amn);

/// TRSM on a low-rank tile: only V is touched (V := L_kk^{-1} V).
void trsm_lr_tile(const tile::Tile& lkk, tile::Tile& amk);

/// SYRK where the panel tile A_mk is low-rank; A_mm dense FP64.
void syrk_lr_tile(const tile::Tile& amk, tile::Tile& amm);

/// GEMM with any dense/LR mix. `abs_tol` bounds the rounding of low-rank
/// accumulation when A_mn is low-rank; `rounding` selects QR+SVD or RRQR.
void gemm_mixed_tile(const tile::Tile& amk, const tile::Tile& ank, tile::Tile& amn,
                     double abs_tol,
                     tlr::RoundingMethod rounding = tlr::RoundingMethod::QrSvd);

}  // namespace gsx::cholesky
