// Discrete-event simulation of the distributed tile Cholesky.
//
// The paper's headline numbers come from up to 48,384 Fugaku nodes — a scale
// no single machine reproduces. Per DESIGN.md's substitution policy, this
// module *simulates* the distributed execution: the exact task DAG of the
// tile Cholesky (Algorithm 1 + TLR variants), a 2D block-cyclic tile
// distribution (the layout PaRSEC/DPLASMA use), a node model calibrated on
// the real kernel timings (perfmodel::KernelModel), and a latency/bandwidth
// link model standing in for TofuD. The simulator replays the DAG in
// dependency order, charging compute time on the owner node's cores and
// transfer time for every remote operand — producing makespans whose shape
// across node counts mirrors the paper's strong-scaling figures, including
// the flattening when the DAG runs out of concurrency (Fig. 11).
#pragma once

#include <cstddef>
#include <vector>

#include "dist/placement.hpp"
#include "perfmodel/kernel_model.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::distsim {

/// 2D block-cyclic process grid, shared verbatim with the real multi-process
/// backend (src/dist): a simulated placement and a real run of the same
/// problem put every tile on the same rank.
using ProcessGrid = dist::ProcessGrid;

/// Compute capability of one node.
struct NodeModel {
  std::size_t cores = 48;              ///< A64FX: 48 compute cores
  /// Per-core kernel model (tile-size specific), shared by all nodes.
  const perfmodel::KernelModel* kernels = nullptr;
};

/// Interconnect model: transfer time = latency + bytes / bandwidth.
struct LinkModel {
  double latency_seconds = 2.0e-6;       ///< TofuD-like put latency
  double bandwidth_bytes_per_s = 6.8e9;  ///< per-link injection bandwidth

  [[nodiscard]] double transfer_seconds(std::size_t bytes) const noexcept {
    return latency_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

struct SimResult {
  double makespan_seconds = 0.0;
  double total_compute_seconds = 0.0;   ///< sum of task costs
  double total_comm_seconds = 0.0;      ///< sum of charged transfer times
  std::size_t num_tasks = 0;
  std::size_t remote_transfers = 0;
  std::size_t comm_bytes = 0;
  /// Aggregate efficiency: compute / (makespan * nodes * cores).
  [[nodiscard]] double efficiency(const ProcessGrid& grid, const NodeModel& node) const {
    const double cap = makespan_seconds * static_cast<double>(grid.nodes() * node.cores);
    return cap > 0.0 ? total_compute_seconds / cap : 0.0;
  }
};

/// Per-tile structural description the simulator consumes (no payloads).
struct TileInfo {
  bool lowrank = false;
  std::size_t rank = 0;       ///< meaningful when lowrank
  Precision precision = Precision::FP64;
};

/// Structural matrix: NT x NT lower-triangular tile metadata.
class TileStructure {
 public:
  TileStructure(std::size_t nt, std::size_t tile_size);

  /// Capture the structure of a real decided matrix (after the policy /
  /// compression passes) — small problems.
  static TileStructure from_matrix(const tile::SymTileMatrix& a);

  /// Synthesize the structure of a large problem from a rank profile:
  /// rank(sub-diagonal d) = max(min_rank, full * exp(-decay * d)), tiles
  /// within `band` of the diagonal dense; precision by the band rule.
  /// This extrapolates the measured small-problem structure to the paper's
  /// 1M-10M scales.
  static TileStructure synthetic(std::size_t nt, std::size_t tile_size, std::size_t band,
                                 double rank_decay, std::size_t min_rank,
                                 bool mixed_precision);

  [[nodiscard]] std::size_t nt() const noexcept { return nt_; }
  [[nodiscard]] std::size_t tile_size() const noexcept { return ts_; }
  [[nodiscard]] TileInfo& at(std::size_t i, std::size_t j);
  [[nodiscard]] const TileInfo& at(std::size_t i, std::size_t j) const;

  /// Bytes of one tile's payload under its current format/precision.
  [[nodiscard]] std::size_t tile_bytes(std::size_t i, std::size_t j) const;

 private:
  std::size_t nt_;
  std::size_t ts_;
  std::vector<TileInfo> tiles_;  // packed lower triangle
};

/// Simulate the distributed tile Cholesky over the structure. The DAG is
/// identical to tile_cholesky_dense/tlr; kernel costs come from the node
/// model, transfers from the link model whenever an operand tile's owner
/// differs from the task's owner (the output tile's node).
SimResult simulate_cholesky(const TileStructure& a, const ProcessGrid& grid,
                            const NodeModel& node, const LinkModel& link);

}  // namespace gsx::distsim
