#include "distsim/distsim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace gsx::distsim {

TileStructure::TileStructure(std::size_t nt, std::size_t tile_size)
    : nt_(nt), ts_(tile_size), tiles_(nt * (nt + 1) / 2) {
  GSX_REQUIRE(nt >= 1 && tile_size >= 1, "TileStructure: empty structure");
}

TileInfo& TileStructure::at(std::size_t i, std::size_t j) {
  GSX_REQUIRE(i < nt_ && j <= i, "TileStructure: need i >= j");
  return tiles_[j * nt_ - j * (j - 1) / 2 + (i - j)];
}

const TileInfo& TileStructure::at(std::size_t i, std::size_t j) const {
  GSX_REQUIRE(i < nt_ && j <= i, "TileStructure: need i >= j");
  return tiles_[j * nt_ - j * (j - 1) / 2 + (i - j)];
}

std::size_t TileStructure::tile_bytes(std::size_t i, std::size_t j) const {
  const TileInfo& t = at(i, j);
  const std::size_t elem = bytes_of(t.precision);
  if (t.lowrank) return 2 * ts_ * t.rank * elem;
  return ts_ * ts_ * elem;
}

TileStructure TileStructure::from_matrix(const tile::SymTileMatrix& a) {
  TileStructure s(a.nt(), a.tile_size());
  for (std::size_t j = 0; j < a.nt(); ++j) {
    for (std::size_t i = j; i < a.nt(); ++i) {
      const tile::Tile& t = a.at(i, j);
      TileInfo& info = s.at(i, j);
      info.lowrank = (t.format() == tile::TileFormat::LowRank);
      info.rank = info.lowrank ? t.rank() : a.tile_size();
      info.precision = t.precision();
    }
  }
  return s;
}

TileStructure TileStructure::synthetic(std::size_t nt, std::size_t tile_size,
                                       std::size_t band, double rank_decay,
                                       std::size_t min_rank, bool mixed_precision) {
  GSX_REQUIRE(band >= 1, "TileStructure::synthetic: band must include the diagonal");
  TileStructure s(nt, tile_size);
  for (std::size_t j = 0; j < nt; ++j) {
    for (std::size_t i = j; i < nt; ++i) {
      const std::size_t d = i - j;
      TileInfo& info = s.at(i, j);
      if (d < band) {
        info.lowrank = false;
        info.rank = tile_size;
        if (!mixed_precision || d == 0) {
          info.precision = Precision::FP64;
        } else {
          info.precision = Precision::FP32;
        }
      } else {
        info.lowrank = true;
        const double r = static_cast<double>(tile_size) *
                         std::exp(-rank_decay * static_cast<double>(d));
        info.rank = std::max<std::size_t>(min_rank, static_cast<std::size_t>(r));
        info.rank = std::min(info.rank, tile_size / 2);
        info.precision =
            (mixed_precision && d >= 2 * band) ? Precision::FP32 : Precision::FP64;
      }
    }
  }
  return s;
}

namespace {

/// Per-tile dependency clock plus remote-availability cache (a PaRSEC-like
/// runtime keeps a received copy until the next write invalidates it).
struct TileClock {
  double last_write_end = 0.0;
  double max_read_end = 0.0;
  std::unordered_map<std::size_t, double> cached_at;  // node -> availability
};

/// One node's cores as a min-heap of next-free times.
class NodeCores {
 public:
  explicit NodeCores(std::size_t cores) {
    for (std::size_t c = 0; c < cores; ++c) free_.push(0.0);
  }

  /// Run a task that becomes ready at `ready` and costs `cost`; returns its
  /// completion time.
  double run(double ready, double cost) {
    const double core_free = free_.top();
    free_.pop();
    const double start = std::max(ready, core_free);
    const double end = start + cost;
    free_.push(end);
    return end;
  }

 private:
  std::priority_queue<double, std::vector<double>, std::greater<>> free_;
};

/// Kernel cost model derived from the calibrated per-core GEMM timings by
/// flop ratios (GEMM = 2 ts^3 flops is the unit).
struct Costs {
  const perfmodel::KernelModel* k = nullptr;
  std::size_t ts = 0;

  [[nodiscard]] double dense_gemm(Precision p) const { return k->dense_gemm_seconds(p); }
  [[nodiscard]] double potrf() const {
    return dense_gemm(Precision::FP64) / 6.0;  // ts^3/3 over 2 ts^3
  }
  [[nodiscard]] double dense_trsm(Precision p) const { return dense_gemm(p) / 2.0; }
  [[nodiscard]] double dense_syrk() const { return dense_gemm(Precision::FP64) / 2.0; }
  [[nodiscard]] double lr_trsm(std::size_t rank) const {
    // V := L^{-1} V: ts^2 * rank flops.
    return dense_gemm(Precision::FP64) * static_cast<double>(rank) /
           (2.0 * static_cast<double>(ts));
  }
  [[nodiscard]] double lr_syrk(std::size_t rank) const {
    // ~4 ts k^2 + 2 ts^2 k flops over 2 ts^3.
    const double kk = static_cast<double>(rank);
    const double t = static_cast<double>(ts);
    return dense_gemm(Precision::FP64) * (4.0 * t * kk * kk + 2.0 * t * t * kk) /
           (2.0 * t * t * t);
  }
  [[nodiscard]] double lr_gemm(std::size_t rank) const { return k->tlr_gemm_seconds(rank); }
  [[nodiscard]] double mixed_gemm_dense_out(std::size_t rank, Precision p) const {
    // C(dense) -= LR product: ~2 ts^2 k flops.
    return dense_gemm(p) * static_cast<double>(rank) / static_cast<double>(ts);
  }
};

}  // namespace

SimResult simulate_cholesky(const TileStructure& a, const ProcessGrid& grid,
                            const NodeModel& node, const LinkModel& link) {
  GSX_REQUIRE(node.kernels != nullptr, "simulate_cholesky: node model needs kernels");
  GSX_REQUIRE(node.kernels->tile_size() == a.tile_size(),
              "simulate_cholesky: kernel model tile size mismatch");
  const std::size_t nt = a.nt();
  const Costs costs{node.kernels, a.tile_size()};

  std::vector<TileClock> clocks(nt * (nt + 1) / 2);
  auto clock = [&](std::size_t i, std::size_t j) -> TileClock& {
    return clocks[j * nt - j * (j - 1) / 2 + (i - j)];
  };
  std::vector<NodeCores> cores(grid.nodes(), NodeCores(node.cores));

  SimResult result;

  // Read an operand from `exec_node`; returns availability time, charging a
  // transfer when the tile lives elsewhere (cached per destination until the
  // next write).
  auto read_operand = [&](std::size_t i, std::size_t j, std::size_t exec_node) {
    TileClock& c = clock(i, j);
    const std::size_t owner = grid.owner(i, j);
    if (owner == exec_node) return c.last_write_end;
    auto [it, inserted] = c.cached_at.try_emplace(exec_node, 0.0);
    if (inserted) {
      const double xfer = link.transfer_seconds(a.tile_bytes(i, j));
      it->second = c.last_write_end + xfer;
      ++result.remote_transfers;
      result.comm_bytes += a.tile_bytes(i, j);
      result.total_comm_seconds += xfer;
    }
    return it->second;
  };

  auto execute = [&](std::size_t out_i, std::size_t out_j, double deps_ready,
                     double cost) {
    TileClock& out = clock(out_i, out_j);
    const std::size_t exec_node = grid.owner(out_i, out_j);
    const double ready = std::max({deps_ready, out.last_write_end, out.max_read_end});
    const double end = cores[exec_node].run(ready, cost);
    out.last_write_end = end;
    out.max_read_end = 0.0;
    out.cached_at.clear();
    result.total_compute_seconds += cost;
    ++result.num_tasks;
    return end;
  };

  auto note_read = [&](std::size_t i, std::size_t j, double end) {
    TileClock& c = clock(i, j);
    c.max_read_end = std::max(c.max_read_end, end);
  };

  for (std::size_t k = 0; k < nt; ++k) {
    execute(k, k, clock(k, k).last_write_end, costs.potrf());

    for (std::size_t m = k + 1; m < nt; ++m) {
      const std::size_t exec_node = grid.owner(m, k);
      const double lkk_ready = read_operand(k, k, exec_node);
      const TileInfo& t = a.at(m, k);
      const double cost = t.lowrank ? costs.lr_trsm(t.rank) : costs.dense_trsm(t.precision);
      const double end = execute(m, k, lkk_ready, cost);
      note_read(k, k, end);
    }

    for (std::size_t m = k + 1; m < nt; ++m) {
      const TileInfo& panel_m = a.at(m, k);
      {
        const std::size_t exec_node = grid.owner(m, m);
        const double ready = read_operand(m, k, exec_node);
        const double cost =
            panel_m.lowrank ? costs.lr_syrk(panel_m.rank) : costs.dense_syrk();
        const double end = execute(m, m, ready, cost);
        note_read(m, k, end);
      }
      for (std::size_t n = k + 1; n < m; ++n) {
        const TileInfo& panel_n = a.at(n, k);
        const TileInfo& out = a.at(m, n);
        const std::size_t exec_node = grid.owner(m, n);
        const double ready =
            std::max(read_operand(m, k, exec_node), read_operand(n, k, exec_node));
        double cost;
        if (out.lowrank) {
          const std::size_t r =
              std::max({out.rank, panel_m.lowrank ? panel_m.rank : out.rank,
                        panel_n.lowrank ? panel_n.rank : out.rank});
          cost = costs.lr_gemm(r);
        } else if (panel_m.lowrank || panel_n.lowrank) {
          const std::size_t r = std::min(panel_m.lowrank ? panel_m.rank : a.tile_size(),
                                         panel_n.lowrank ? panel_n.rank : a.tile_size());
          cost = costs.mixed_gemm_dense_out(r, out.precision);
        } else {
          cost = costs.dense_gemm(out.precision);
        }
        const double end = execute(m, n, ready, cost);
        note_read(m, k, end);
        note_read(n, k, end);
      }
    }
  }

  double makespan = 0.0;
  for (auto& c : clocks) makespan = std::max(makespan, c.last_write_end);
  result.makespan_seconds = makespan;
  return result;
}

}  // namespace gsx::distsim
