// Out-of-core tile residency: a byte-bounded pool behind the same ownership
// abstraction the factorization uses for in-memory tiles.
//
// The paper's extreme-scale runs hold the tile matrix out of core when the
// per-node footprint exceeds memory; here the same idea is a TileStore
// interface with two implementations:
//   - DirectTileStore: thin view over a SymTileMatrix (everything resident);
//   - PooledTileStore: keeps at most `max_bytes` of unpinned tile payload in
//     memory, spilling the least-recently-used cold tiles to CRC-framed
//     files and reloading (with verification) on next pin.
// Kernels pin the tiles they touch for the duration of one task body, so a
// pinned tile is never evicted mid-kernel; if every resident tile is pinned
// the pool overshoots its bound rather than deadlocking (counted in
// PoolStats.overcommit — the tuning signal that max_bytes is too small for
// the tile working set; see docs/distributed.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "tile/sym_tile_matrix.hpp"
#include "tile/tile.hpp"

namespace gsx::dist {

/// Residency counters. Kept unconditionally (like WireStats) so tests and
/// the gsx_dist summary see spill activity with telemetry off.
struct PoolStats {
  std::atomic<std::uint64_t> spill_out{0};   ///< tiles written to disk
  std::atomic<std::uint64_t> spill_in{0};    ///< tiles read back (CRC-checked)
  std::atomic<std::uint64_t> overcommit{0};  ///< pins that overshot max_bytes
};

/// Access interface the factorization kernels use for owned tiles. pin()
/// returns a reference valid until the matching unpin(); implementations
/// guarantee the tile stays in memory in between.
class TileStore {
 public:
  virtual ~TileStore() = default;
  virtual tile::Tile& pin(std::size_t i, std::size_t j) = 0;
  virtual void unpin(std::size_t i, std::size_t j) = 0;
};

/// Everything resident: pin/unpin are bookkeeping-free passthroughs to the
/// backing SymTileMatrix.
class DirectTileStore final : public TileStore {
 public:
  explicit DirectTileStore(tile::SymTileMatrix& m) : m_(m) {}
  tile::Tile& pin(std::size_t i, std::size_t j) override { return m_.at(i, j); }
  void unpin(std::size_t, std::size_t) override {}

 private:
  tile::SymTileMatrix& m_;
};

/// Byte-bounded pool over the locally-owned tiles of one rank. Tiles enter
/// via put() (generation/receive time); pin() faults spilled tiles back in.
/// Thread-safe: the task graph pins from multiple workers concurrently.
class PooledTileStore final : public TileStore {
 public:
  /// `max_bytes` bounds the *unpinned + pinned resident* payload total;
  /// `spill_dir` must exist and be writable.
  PooledTileStore(std::size_t max_bytes, std::string spill_dir);
  ~PooledTileStore() override;

  /// Insert/replace a tile (it starts resident and unpinned; may trigger
  /// eviction of colder tiles).
  void put(std::size_t i, std::size_t j, tile::Tile t);

  tile::Tile& pin(std::size_t i, std::size_t j) override;
  void unpin(std::size_t i, std::size_t j) override;

  /// Move every tile out (faulting in spilled ones) — the end-of-run gather.
  tile::Tile take(std::size_t i, std::size_t j);

  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    tile::Tile t;
    bool resident = false;
    int pins = 0;
    std::uint64_t last_use = 0;
    std::size_t bytes = 0;  ///< payload bytes while resident
  };

  std::string spill_path(std::size_t i, std::size_t j) const;
  void evict_until_fits_locked(std::size_t incoming_bytes);
  void fault_in_locked(std::size_t i, std::size_t j, Entry& e);

  const std::size_t max_bytes_;
  const std::string spill_dir_;
  PoolStats stats_;
  std::atomic<std::size_t> resident_bytes_{0};

  std::mutex mu_;
  std::map<std::pair<std::size_t, std::size_t>, Entry> entries_;
  std::uint64_t tick_ = 0;
};

/// RAII pin for one kernel operand.
class TileLease {
 public:
  TileLease(TileStore& store, std::size_t i, std::size_t j)
      : store_(store), i_(i), j_(j), t_(&store.pin(i, j)) {}
  TileLease(TileLease&& o) noexcept
      : store_(o.store_), i_(o.i_), j_(o.j_), t_(o.t_) {
    o.t_ = nullptr;
  }
  ~TileLease() {
    if (t_ != nullptr) store_.unpin(i_, j_);
  }
  TileLease(const TileLease&) = delete;
  TileLease& operator=(const TileLease&) = delete;
  TileLease& operator=(TileLease&&) = delete;

  [[nodiscard]] tile::Tile& get() const noexcept { return *t_; }

 private:
  TileStore& store_;
  std::size_t i_, j_;
  tile::Tile* t_;
};

}  // namespace gsx::dist
