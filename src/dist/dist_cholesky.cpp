#include "dist/dist_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "cholesky/factorize.hpp"
#include "cholesky/precision_policy.hpp"
#include "cholesky/tile_kernels.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dist/tile_pool.hpp"
#include "dist/transport.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/convert.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"
#include "runtime/task_graph.hpp"
#include "tile/tile_codec.hpp"
#include "tlr/compression.hpp"

namespace gsx::dist {

namespace {

// Barrier/allreduce epochs of one run, globally agreed across ranks.
constexpr std::uint64_t kEpochNorm = 1;        // allreduce of ||Sigma||_F^2
constexpr std::uint64_t kEpochPreRun = 2;      // all graphs built, deliveries set
constexpr std::uint64_t kEpochPostGather = 3;  // rank 0 holds the full factor

std::uint64_t tile_tag(std::size_t i, std::size_t j) {
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}

/// The deterministic Matérn problem: same seed -> same locations -> same
/// Sigma on every rank and in the oracle. Mirrors bench make_space_problem.
std::vector<geostat::Location> problem_locations(const DistProblemConfig& prob) {
  Rng rng(prob.seed);
  std::vector<geostat::Location> locs = geostat::perturbed_grid_locations(prob.n, rng);
  geostat::sort_morton(locs);
  return locs;
}

/// One rank's slice of the factorization: owned tiles, remote staging,
/// the task graph, and the in-body sends.
class RankEngine {
 public:
  RankEngine(const DistProblemConfig& prob, const DistRunConfig& cfg,
             TileTransport& transport)
      : prob_(prob),
        cfg_(cfg),
        transport_(transport),
        grid_(ProcessGrid::near_square(static_cast<std::size_t>(cfg.nprocs))),
        a_(prob.n, prob.tile_size),
        nt_(a_.nt()),
        owned_(owned_tiles(grid_, rank(), nt_)) {
    if (cfg_.ooc_bytes > 0) {
      GSX_REQUIRE(!cfg_.spill_dir.empty(), "dist: ooc_bytes > 0 needs spill_dir");
      pool_ = std::make_unique<PooledTileStore>(cfg_.ooc_bytes, cfg_.spill_dir);
      store_ = pool_.get();
    } else {
      direct_ = std::make_unique<DirectTileStore>(a_);
      store_ = direct_.get();
    }
  }

  [[nodiscard]] std::size_t rank() const noexcept {
    return static_cast<std::size_t>(cfg_.rank);
  }

  /// Materialize only the owned tiles, with the exact inner loop
  /// SymTileMatrix::generate uses so values are bit-identical to the oracle.
  void generate() {
    const std::vector<geostat::Location> locs = problem_locations(prob_);
    const geostat::MaternCovariance model(1.0, prob_.range, prob_.smoothness,
                                          prob_.nugget);
    for (const auto& [i, j] : owned_) {
      const std::size_t rows = a_.tile_dim(i);
      const std::size_t cols = a_.tile_dim(j);
      const std::size_t gi0 = a_.tile_offset(i);
      const std::size_t gj0 = a_.tile_offset(j);
      la::Matrix<double> block(rows, cols);
      for (std::size_t jj = 0; jj < cols; ++jj)
        for (std::size_t ii = 0; ii < rows; ++ii)
          block(ii, jj) = model(locs[gi0 + ii], locs[gj0 + jj]);
      a_.at(i, j) = tile::Tile::dense64(std::move(block));
    }
  }

  [[nodiscard]] double local_sumsq() const { return weighted_sumsq(a_, owned_); }

  void apply_policy(double global_norm) {
    for (const auto& [i, j] : owned_)
      apply_dist_tile_policy(a_.at(i, j), i, j, nt_, global_norm, cfg_.policy);
  }

  /// In OOC mode move the (policy-shaped) owned tiles into the byte-bounded
  /// pool; the matrix keeps only empty husks from here on.
  void seal_storage() {
    if (pool_ == nullptr) return;
    for (const auto& [i, j] : owned_) pool_->put(i, j, std::move(a_.at(i, j)));
  }

  /// Unroll the global Algorithm 1 loop, submitting only tasks whose output
  /// tile this rank owns. Same loop order and priorities as the
  /// single-process factorization — the dependency chains fix the kernel
  /// order, which is what makes the factor bit-identical to the oracle.
  void build_graph() {
    graph_.set_policy(rt::SchedPolicy::Priority);
    for (std::size_t k = 0; k < nt_; ++k) {
      const int base = static_cast<int>(3 * (nt_ - k));
      if (grid_.owner(k, k) == rank()) submit_potrf(k, base + 2);
      for (std::size_t m = k + 1; m < nt_; ++m)
        if (grid_.owner(m, k) == rank()) submit_trsm(m, k, base + 1);
      for (std::size_t m = k + 1; m < nt_; ++m) {
        if (grid_.owner(m, m) == rank()) submit_syrk(m, k, base);
        for (std::size_t n = k + 1; n < m; ++n)
          if (grid_.owner(m, n) == rank()) submit_gemm(m, n, k, base);
      }
    }
  }

  /// Transport delivery for kMsgPanel: stage the tile, release consumers.
  /// Runs on receiver threads; every staging slot and recv task exists
  /// before the pre-run barrier, so the maps are structurally frozen.
  [[nodiscard]] TileTransport::Delivery delivery() {
    return [this](int /*src*/, std::uint64_t tag, tile::Tile t) {
      staging_.at(tag) = std::move(t);
      graph_.notify(recv_task_.at(tag));
    };
  }

  void run(std::size_t workers) { graph_.run(workers); }

  /// Move one owned tile out of its store (gather path).
  [[nodiscard]] tile::Tile take_tile(std::size_t i, std::size_t j) {
    if (pool_ != nullptr) return pool_->take(i, j);
    return std::move(a_.at(i, j));
  }

  /// Rank 0: assemble own + received tiles into the full factor.
  /// Other ranks: ship every owned tile to rank 0.
  [[nodiscard]] std::unique_ptr<tile::SymTileMatrix> gather() {
    if (rank() != 0) {
      for (const auto& [i, j] : owned_)
        transport_.send_tile(0, kMsgGather, tile_tag(i, j), take_tile(i, j));
      return nullptr;
    }
    auto factor = std::make_unique<tile::SymTileMatrix>(prob_.n, prob_.tile_size);
    for (std::size_t j = 0; j < nt_; ++j)
      for (std::size_t i = j; i < nt_; ++i)
        factor->at(i, j) = grid_.owner(i, j) == 0
                               ? take_tile(i, j)
                               : transport_.recv_tile(kMsgGather, tile_tag(i, j));
    return factor;
  }

  [[nodiscard]] const PooledTileStore* pool() const noexcept { return pool_.get(); }

 private:
  [[nodiscard]] rt::DatumId owned_datum(std::size_t i, std::size_t j) const {
    return rt::DatumId::from_index(i * nt_ + j);
  }
  [[nodiscard]] rt::DatumId staging_datum(std::size_t i, std::size_t j) const {
    return rt::DatumId::from_index(nt_ * nt_ + i * nt_ + j);
  }

  /// Dependency on tile (i, j) as a read operand. Remote tiles lazily create
  /// their externally-completed recv task + staging slot on first use.
  [[nodiscard]] rt::Dep read_dep(std::size_t i, std::size_t j) {
    if (grid_.owner(i, j) == rank()) return {owned_datum(i, j), rt::Access::Read};
    const std::uint64_t tag = tile_tag(i, j);
    if (recv_task_.find(tag) == recv_task_.end()) {
      staging_[tag];  // default slot, overwritten by the delivery callback
      recv_task_[tag] = graph_.submit_external(
          "recv(" + std::to_string(i) + "," + std::to_string(j) + ")",
          {{staging_datum(i, j), rt::Access::Write}});
    }
    return {staging_datum(i, j), rt::Access::Read};
  }

  /// Read access to tile (i, j) inside a task body: a pinned lease for owned
  /// tiles, the staged copy for remote ones.
  struct Operand {
    std::optional<TileLease> lease;
    const tile::Tile* t = nullptr;
  };
  [[nodiscard]] Operand read_operand(std::size_t i, std::size_t j) {
    Operand op;
    if (grid_.owner(i, j) == rank()) {
      op.lease.emplace(*store_, i, j);
      op.t = &op.lease->get();
    } else {
      op.t = &staging_.at(tile_tag(i, j));
    }
    return op;
  }

  /// Ship a finished tile to every rank in `dests` (self excluded, dup-free).
  void broadcast(const std::set<std::size_t>& dests, std::size_t i, std::size_t j,
                 const tile::Tile& t) {
    for (const std::size_t d : dests)
      if (d != rank())
        transport_.send_tile(static_cast<int>(d), kMsgPanel, tile_tag(i, j), t);
  }

  void submit_potrf(std::size_t k, int priority) {
    graph_.submit(
        "potrf(" + std::to_string(k) + ")", {{owned_datum(k, k), rt::Access::ReadWrite}},
        [this, k] {
          TileLease d(*store_, k, k);
          const int info = cholesky::potrf_tile(d.get());
          if (info != 0) {
            NumericalContext ctx;
            ctx.tile_i = static_cast<long>(k);
            ctx.tile_j = static_cast<long>(k);
            ctx.pivot = static_cast<int>(k * prob_.tile_size) + info;
            ctx.precision = d.get().precision();
            throw NumericalError("dist potrf: matrix not positive definite", ctx);
          }
          // The factored diagonal feeds every trsm of the panel below it.
          std::set<std::size_t> dests;
          for (std::size_t m = k + 1; m < nt_; ++m) dests.insert(grid_.owner(m, k));
          broadcast(dests, k, k, d.get());
        },
        priority);
  }

  void submit_trsm(std::size_t m, std::size_t k, int priority) {
    graph_.submit(
        "trsm(" + std::to_string(m) + "," + std::to_string(k) + ")",
        {read_dep(k, k), {owned_datum(m, k), rt::Access::ReadWrite}},
        [this, m, k] {
          Operand l = read_operand(k, k);
          TileLease b(*store_, m, k);
          if (b.get().format() == tile::TileFormat::LowRank)
            cholesky::trsm_lr_tile(*l.t, b.get());
          else
            cholesky::trsm_tile(*l.t, b.get());
          // Consumers of the finished panel tile (m, k): syrk at (m, m),
          // gemm outputs (m, n) for k < n < m and (i, m) for i > m.
          std::set<std::size_t> dests;
          dests.insert(grid_.owner(m, m));
          for (std::size_t n = k + 1; n < m; ++n) dests.insert(grid_.owner(m, n));
          for (std::size_t i = m + 1; i < nt_; ++i) dests.insert(grid_.owner(i, m));
          broadcast(dests, m, k, b.get());
        },
        priority);
  }

  void submit_syrk(std::size_t m, std::size_t k, int priority) {
    graph_.submit(
        "syrk(" + std::to_string(m) + "," + std::to_string(k) + ")",
        {read_dep(m, k), {owned_datum(m, m), rt::Access::ReadWrite}},
        [this, m, k] {
          Operand p = read_operand(m, k);
          TileLease d(*store_, m, m);
          if (p.t->format() == tile::TileFormat::LowRank)
            cholesky::syrk_lr_tile(*p.t, d.get());
          else
            cholesky::syrk_tile(*p.t, d.get());
        },
        priority);
  }

  void submit_gemm(std::size_t m, std::size_t n, std::size_t k, int priority) {
    graph_.submit(
        "gemm(" + std::to_string(m) + "," + std::to_string(n) + "," +
            std::to_string(k) + ")",
        {read_dep(m, k), read_dep(n, k), {owned_datum(m, n), rt::Access::ReadWrite}},
        [this, m, n, k] {
          Operand x = read_operand(m, k);
          Operand y = read_operand(n, k);
          TileLease c(*store_, m, n);
          if (cfg_.policy.policy == DistPolicy::Tlr)
            cholesky::gemm_mixed_tile(*x.t, *y.t, c.get(), cfg_.policy.tlr_tol);
          else
            cholesky::gemm_tile(*x.t, *y.t, c.get());
        },
        priority);
  }

  const DistProblemConfig& prob_;
  const DistRunConfig& cfg_;
  TileTransport& transport_;
  const ProcessGrid grid_;
  tile::SymTileMatrix a_;  ///< owned tiles only (empty husks in OOC mode)
  const std::size_t nt_;
  const std::vector<std::pair<std::size_t, std::size_t>> owned_;

  std::unique_ptr<PooledTileStore> pool_;
  std::unique_ptr<DirectTileStore> direct_;
  TileStore* store_ = nullptr;

  rt::TaskGraph graph_;
  // node-based maps: delivery threads write distinct slots concurrently with
  // worker-thread reads of other slots; no structural changes during run.
  std::map<std::uint64_t, tile::Tile> staging_;
  std::map<std::uint64_t, std::size_t> recv_task_;
};

}  // namespace

DistPolicy parse_dist_policy(const std::string& name) {
  if (name == "dense") return DistPolicy::Dense;
  if (name == "mp") return DistPolicy::MixedPrecision;
  if (name == "tlr") return DistPolicy::Tlr;
  GSX_REQUIRE(false, "unknown dist policy (want dense|mp|tlr): " + name);
  return DistPolicy::Dense;
}

double weighted_sumsq(const tile::SymTileMatrix& a,
                      const std::vector<std::pair<std::size_t, std::size_t>>& coords) {
  double sum = 0.0;
  for (const auto& [i, j] : coords) {
    const double f = a.at(i, j).frobenius();
    sum += (i == j ? 1.0 : 2.0) * f * f;
  }
  return sum;
}

void apply_dist_tile_policy(tile::Tile& t, std::size_t i, std::size_t j,
                            std::size_t nt, double global_norm,
                            const DistPolicyOptions& opts) {
  if (i == j) return;  // diagonal stays dense FP64 under every policy
  switch (opts.policy) {
    case DistPolicy::Dense:
      return;
    case DistPolicy::MixedPrecision: {
      const Precision p = cholesky::frobenius_precision(
          t.frobenius(), global_norm, nt, opts.eps_target, opts.allow_fp16,
          t.rows() * t.cols());
      t.convert_dense(p);
      return;
    }
    case DistPolicy::Tlr: {
      // Mirrors compress_offband's per-tile decisions (same rng stream, same
      // tolerance mode, same rank cap and fp32 rule) so the distributed TLR
      // matrix matches a single-process compress_offband bit-for-bit.
      if (i - j < opts.band) return;
      const std::size_t rank_cap =
          opts.max_rank > 0 ? opts.max_rank : std::max<std::size_t>(1, t.rows() / 2);
      const double tile_norm = t.frobenius();
      const la::Matrix<double> full = t.to_dense64();
      Rng rng(opts.compress_seed + 1315423911ull * (i * nt + j));
      tlr::Compressed comp = tlr::compress(tlr::CompressionMethod::SVD, full.cview(),
                                           opts.tlr_tol, rng, tlr::TolMode::Absolute);
      if (comp.rank() > rank_cap) return;  // rank too high: stays dense
      const bool use_fp32 =
          cholesky::frobenius_precision(tile_norm, global_norm, nt, opts.eps_target,
                                        /*allow_fp16=*/false, t.rows() * t.cols()) !=
          Precision::FP64;
      if (use_fp32) {
        la::Matrix<float> u32(comp.u.rows(), comp.rank());
        la::Matrix<float> v32(comp.v.rows(), comp.rank());
        la::convert(comp.u.cview(), u32.view());
        la::convert(comp.v.cview(), v32.view());
        t = tile::Tile::lowrank32(std::move(u32), std::move(v32));
      } else {
        t = tile::Tile::lowrank64(std::move(comp.u), std::move(comp.v));
      }
      return;
    }
  }
}

DistResult run_dist_rank(const DistProblemConfig& prob, const DistRunConfig& run) {
  GSX_REQUIRE(run.nprocs >= 1 && run.rank >= 0 && run.rank < run.nprocs,
              "run_dist_rank: bad rank/nprocs");

  CoordClient client(run.coord_port, run.rank);
  TileTransport transport(run.rank);
  const std::uint16_t data_port = transport.listen();
  const int nprocs = client.register_rank(data_port);
  GSX_REQUIRE(nprocs == run.nprocs, "run_dist_rank: coordinator nprocs mismatch");
  // Clock-alignment beats for gsx_obs --offsets; globally unique sequence
  // numbers (rank * 1000 + n) pair Send/Ack with the coordinator's Recv.
  for (std::size_t h = 1; h <= run.heartbeats; ++h)
    client.heartbeat(static_cast<std::uint64_t>(run.rank) * 1000 + h);
  transport.set_peers(client.wait_peers());

  RankEngine engine(prob, run, transport);
  engine.generate();

  DistResult res;
  res.global_norm = std::sqrt(client.allreduce_sum(kEpochNorm, engine.local_sumsq()));
  engine.apply_policy(res.global_norm);
  engine.seal_storage();
  engine.build_graph();
  transport.set_delivery(kMsgPanel, engine.delivery());

  // Nobody sends until every rank has built its graph and staging slots.
  client.barrier(kEpochPreRun);

  // Load-carrying heartbeats while the factorization runs: a side thread
  // with its own CoordClient (the main client is not thread-safe) samples
  // this rank's scheduler gauges and ships them so the coordinator can
  // publish per-rank dist.hb.* load. Sequence numbers live in their own
  // high-bit namespace (1<<63 | rank<<32 | n): still globally unique for
  // gsx_obs merge --offsets, and a run of any length can never walk into
  // another rank's rendezvous series (rank*1000 + n).
  std::atomic<bool> run_active{true};
  std::thread beat_thread([&run_active, &run] {
    try {
      CoordClient beats(run.coord_port, run.rank);
      obs::Registry& reg = obs::Registry::instance();
      const std::uint64_t seq_base =
          (std::uint64_t{1} << 63) | (static_cast<std::uint64_t>(run.rank) << 32);
      std::uint64_t n = 0;
      while (run_active.load(std::memory_order_relaxed)) {
        beats.heartbeat(seq_base | ++n, reg.gauge("taskgraph.queue_depth").value(),
                        reg.gauge("taskgraph.inflight").value());
        for (int i = 0; i < 20 && run_active.load(std::memory_order_relaxed); ++i)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    } catch (...) {
      // Best-effort telemetry: a lost beat connection must not fail the run.
    }
  });
  // engine.run rethrows the first task error (TaskGraph::run); the beat
  // thread must be stopped and joined on that path too, or its destructor
  // calls std::terminate and the coordinator never hears done(false).
  struct BeatGuard {
    std::atomic<bool>& active;
    std::thread& t;
    ~BeatGuard() {
      active.store(false, std::memory_order_relaxed);
      if (t.joinable()) t.join();
    }
  } beat_guard{run_active, beat_thread};

  Timer timer;
  engine.run(run.workers);
  res.factor_seconds = timer.seconds();
  run_active.store(false, std::memory_order_relaxed);
  beat_thread.join();

  res.factor = engine.gather();
  // Rank 0 passes this barrier only after receiving every tile, so peers
  // keep their transports alive until the gather is complete.
  client.barrier(kEpochPostGather);

  const WireStats& w = transport.stats();
  res.stats.tiles_sent = w.tiles_sent.load();
  res.stats.bytes_sent = w.bytes_sent.load();
  res.stats.tiles_recv = w.tiles_recv.load();
  res.stats.bytes_recv = w.bytes_recv.load();
  res.stats.recv_corrupt = w.recv_corrupt.load();
  if (engine.pool() != nullptr) {
    res.stats.spill_out = engine.pool()->stats().spill_out.load();
    res.stats.spill_in = engine.pool()->stats().spill_in.load();
  }
  client.report_stats(res.stats);
  client.done(true, "");
  transport.shutdown();
  return res;
}

std::unique_ptr<tile::SymTileMatrix> oracle_factor(const DistProblemConfig& prob,
                                                   const DistPolicyOptions& opts,
                                                   double global_norm,
                                                   std::size_t workers) {
  auto a = std::make_unique<tile::SymTileMatrix>(prob.n, prob.tile_size);
  {
    const std::vector<geostat::Location> locs = problem_locations(prob);
    const geostat::MaternCovariance model(1.0, prob.range, prob.smoothness,
                                          prob.nugget);
    a->generate(
        [&](std::size_t gi, std::size_t gj) { return model(locs[gi], locs[gj]); },
        workers);
  }
  const std::size_t nt = a->nt();
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i)
      apply_dist_tile_policy(a->at(i, j), i, j, nt, global_norm, opts);

  cholesky::FactorOptions fopt;
  fopt.workers = workers;
  const cholesky::FactorReport report =
      opts.policy == DistPolicy::Tlr
          ? cholesky::tile_cholesky_tlr(*a, opts.tlr_tol, fopt)
          : cholesky::tile_cholesky_dense(*a, fopt);
  GSX_REQUIRE(report.info == 0, "oracle_factor: matrix not positive definite");
  return a;
}

FactorComparison compare_factors(const tile::SymTileMatrix& a,
                                 const tile::SymTileMatrix& b) {
  GSX_REQUIRE(a.n() == b.n() && a.tile_size() == b.tile_size(),
              "compare_factors: shape mismatch");
  FactorComparison cmp;
  const std::size_t nt = a.nt();
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i) {
      ++cmp.tiles_compared;
      std::vector<std::uint8_t> ba, bb;
      tile::encode_tile(a.at(i, j), ba);
      tile::encode_tile(b.at(i, j), bb);
      if (ba != bb) ++cmp.mismatched_tiles;
      const la::Matrix<double> da = a.at(i, j).to_dense64();
      const la::Matrix<double> db = b.at(i, j).to_dense64();
      for (std::size_t jj = 0; jj < da.cols(); ++jj)
        for (std::size_t ii = 0; ii < da.rows(); ++ii)
          cmp.max_abs_diff =
              std::max(cmp.max_abs_diff, std::abs(da(ii, jj) - db(ii, jj)));
    }
  cmp.identical = cmp.mismatched_tiles == 0;
  return cmp;
}

}  // namespace gsx::dist
