// Control plane for the distributed backend: rank rendezvous, barriers,
// scalar allreduce, heartbeats and run summary, spoken as NDJSON over the
// serve LineListener — the same framing, connection handling and metrics
// plumbing as gsx_serve/gsx_router, so the fleet tooling (gsx_obs merges,
// Prometheus scrapes) works on a distributed factorization out of the box.
//
// The launcher (gsx_dist run) owns the Coordinator; each worker process
// holds one CoordClient connection for the whole run. Verbs (kDistVerbs in
// coordinator.cpp, extracted by tools/check_docs.sh — every verb must have
// an "op" example in docs/distributed.md):
//   dist_register  rank -> data-plane port announcement
//   dist_peers     poll for the complete rank -> port map
//   dist_barrier   epoch-tagged full barrier (handler thread blocks)
//   dist_reduce    epoch-tagged allreduce: sum of one double per rank
//   dist_heartbeat clock-alignment beat (HeartbeatSend/Ack/Recv flight
//                  events, the datum for gsx_obs --offsets)
//   dist_stats     end-of-run wire/pool counters for the summary
//   dist_done      terminal per-rank verdict
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/listener.hpp"
#include "serve/wire.hpp"

namespace gsx::dist {

/// The control-plane vocabulary (one string per verb; see kDistVerbs).
[[nodiscard]] const std::vector<std::string>& dist_verbs();

/// Per-rank counters reported via dist_stats, summed for the run summary.
struct RankStats {
  std::uint64_t tiles_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t tiles_recv = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t recv_corrupt = 0;
  std::uint64_t spill_out = 0;
  std::uint64_t spill_in = 0;
};

/// Launcher-side rendezvous server for one distributed run of `nprocs`
/// ranks. start() binds an ephemeral loopback port that is passed to the
/// workers (gsx_dist does it via argv).
class Coordinator {
 public:
  explicit Coordinator(int nprocs);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind + start serving on a background thread; returns the control port.
  std::uint16_t start();

  /// Stop the listener (drains in-flight handlers).
  void stop();

  /// True once every rank sent dist_done with ok. `failed` (optional)
  /// receives the first failure message.
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] std::vector<std::string> failures() const;

  /// Sum of every rank's reported counters (valid after the ranks reported).
  [[nodiscard]] RankStats total_stats() const;

 private:
  std::string handle(const std::string& line);

  const int nprocs_;
  std::unique_ptr<serve::LineListener> listener_;
  std::thread serve_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::uint16_t> data_ports_;       ///< rank -> data port
  std::map<std::uint64_t, int> barrier_count_;    ///< epoch -> arrivals
  std::map<std::uint64_t, double> reduce_sum_;    ///< epoch -> partial sum
  std::map<std::uint64_t, int> reduce_count_;
  std::map<int, RankStats> stats_;
  int done_count_ = 0;
  std::vector<std::string> failures_;
};

/// Worker-side client: one connection, blocking request/response. Not
/// thread-safe (the factorization drives it from one thread).
class CoordClient {
 public:
  /// Connect to the launcher's control port; throws on failure.
  explicit CoordClient(std::uint16_t port, int rank);

  /// Announce this rank's data-plane port; returns nprocs.
  int register_rank(std::uint16_t data_port);

  /// Poll dist_peers until every rank has registered; returns the full
  /// rank -> data port map.
  std::map<int, std::uint16_t> wait_peers();

  /// Full barrier across all ranks. Epochs must be globally agreed and each
  /// used once (the dist backend numbers them sequentially).
  void barrier(std::uint64_t epoch);

  /// Allreduce: every rank contributes `value`, all receive the sum. Same
  /// epoch discipline as barrier(). The summation order over ranks is fixed
  /// by arrival only within one epoch — the backend uses the *result* on
  /// every rank, so all ranks see bit-identical sums.
  double allreduce_sum(std::uint64_t epoch, double value);

  /// Clock-alignment beat: emits HeartbeatSend/HeartbeatAck flight events
  /// around the round trip (the coordinator records HeartbeatRecv), which is
  /// what `gsx_obs merge --offsets` uses to estimate per-worker clock skew.
  /// `seq` must be globally unique across ranks (the backend uses
  /// rank * 1000 + n for rendezvous beats and 1<<63 | rank<<32 | n for the
  /// load-beat thread). Beats also carry this rank's scheduler load —
  /// queue_depth / inflight task counts — which the coordinator publishes as
  /// per-rank `dist.hb.*` gauges for its Prometheus exposition.
  void heartbeat(std::uint64_t seq, double queue_depth = 0.0,
                 double inflight = 0.0);

  /// Report end-of-run counters / terminal verdict.
  void report_stats(const RankStats& s);
  void done(bool ok, const std::string& message);

 private:
  serve::JsonValue request(const std::string& line);

  serve::WireClient client_;
  int rank_;
};

}  // namespace gsx::dist
