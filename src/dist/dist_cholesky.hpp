// Distributed tile Cholesky: one rank's slice of Algorithm 1 under 2D
// block-cyclic ownership (dist/placement.hpp), with remote operand tiles
// arriving over the TileTransport data plane.
//
// Execution model (the PaRSEC idea, on this repo's runtime):
//   - every rank unrolls the SAME global task loop but submits only the
//     tasks whose output tile it owns;
//   - a remote operand becomes an externally-completed "recv" task in the
//     TaskGraph plus a staging slot; the transport's delivery callback
//     stages the tile and notify()s the task, releasing local consumers
//     without parking a worker thread in a blocking receive;
//   - a task whose output other ranks consume ships the finished tile from
//     inside its own body (potrf broadcasts down the panel, trsm to the
//     trailing update owners) — at the tile's *stored* precision.
//
// Precision parity with the single-process oracle: every per-tile decision
// (mixed-precision demotion, TLR compression, FP32 low-rank storage) is a
// pure function of (i, j, tile values, global Frobenius norm). The global
// norm is allreduced through the coordinator, and the oracle is handed that
// same number — so a distributed run and the oracle make bit-identical
// decisions and, with the kernel order fixed by the DAG's dependency chains,
// produce bit-identical factors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/placement.hpp"
#include "tile/sym_tile_matrix.hpp"
#include "tile/tile.hpp"

namespace gsx::dist {

/// Which per-tile storage policy shapes the matrix before factorization.
enum class DistPolicy : unsigned char {
  Dense,           ///< all tiles dense FP64 (reference)
  MixedPrecision,  ///< adaptive-Frobenius dense demotion (FP64/32/16)
  Tlr,             ///< dense band + low-rank off-band tiles
};

[[nodiscard]] constexpr const char* dist_policy_name(DistPolicy p) noexcept {
  switch (p) {
    case DistPolicy::Dense: return "dense";
    case DistPolicy::MixedPrecision: return "mp";
    case DistPolicy::Tlr: return "tlr";
  }
  return "?";
}

/// Parse "dense" / "mp" / "tlr"; throws InvalidArgument otherwise.
[[nodiscard]] DistPolicy parse_dist_policy(const std::string& name);

/// The synthetic Matérn problem every rank regenerates locally (only the
/// owned tiles are materialized). Deterministic in `seed`: all ranks and the
/// oracle see the same Sigma.
struct DistProblemConfig {
  std::size_t n = 512;
  std::size_t tile_size = 64;
  std::uint64_t seed = 7;
  double range = 0.1;
  double smoothness = 0.5;
  double nugget = 1e-6;
};

/// Per-tile policy parameters shared by the distributed ranks and the
/// oracle.
struct DistPolicyOptions {
  DistPolicy policy = DistPolicy::Dense;
  double eps_target = 1.0e-8;  ///< adaptive-Frobenius accuracy target
  bool allow_fp16 = true;
  double tlr_tol = 1.0e-7;     ///< absolute compression tolerance
  std::size_t band = 2;        ///< |i-j| < band stays dense (TLR policy)
  std::size_t max_rank = 0;    ///< 0 = tile_size / 2 cap
  std::uint64_t compress_seed = 42;
};

/// One rank's run parameters.
struct DistRunConfig {
  int rank = 0;
  int nprocs = 1;
  std::uint16_t coord_port = 0;  ///< launcher's control-plane port
  std::size_t workers = 2;       ///< task-graph worker threads
  DistPolicyOptions policy;
  std::size_t ooc_bytes = 0;     ///< >0: out-of-core pool byte bound
  std::string spill_dir;         ///< required when ooc_bytes > 0
  std::size_t heartbeats = 3;    ///< clock-alignment beats to emit
};

/// What one rank reports back.
struct DistResult {
  double global_norm = 0.0;      ///< allreduced ||Sigma||_F
  double factor_seconds = 0.0;
  RankStats stats;               ///< wire + spill counters of this rank
  /// Rank 0 only: the gathered factor (every stored tile, own + received).
  std::unique_ptr<tile::SymTileMatrix> factor;
};

/// Apply the per-tile storage policy to one generated (dense FP64) tile.
/// Pure in (tile values, i, j, nt, global_norm, opts) — the parity contract
/// between ranks and oracle. Diagonal tiles always stay dense FP64.
void apply_dist_tile_policy(tile::Tile& t, std::size_t i, std::size_t j,
                            std::size_t nt, double global_norm,
                            const DistPolicyOptions& opts);

/// Partial weighted sum of squares (off-diagonal tiles count twice) over
/// `coords` — the local contribution to ||Sigma||_F^2 before the allreduce.
[[nodiscard]] double weighted_sumsq(
    const tile::SymTileMatrix& a,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords);

/// Execute one rank end-to-end: rendezvous, generate owned tiles, policy,
/// factorize with remote-dependency tasks, gather to rank 0, report stats.
/// Throws on any failure (the caller reports dist_done ok=false).
DistResult run_dist_rank(const DistProblemConfig& prob, const DistRunConfig& run);

/// Single-process reference factorization using the SAME policy decisions as
/// the distributed run (pass the allreduced global_norm from DistResult so
/// precision choices match bit-for-bit).
[[nodiscard]] std::unique_ptr<tile::SymTileMatrix> oracle_factor(
    const DistProblemConfig& prob, const DistPolicyOptions& opts,
    double global_norm, std::size_t workers);

/// Element-wise comparison of two factors at stored precision.
struct FactorComparison {
  bool identical = false;       ///< every stored tile byte-identical
  std::size_t tiles_compared = 0;
  std::size_t mismatched_tiles = 0;
  double max_abs_diff = 0.0;    ///< over FP64-materialized tiles (diagnostic)
};
[[nodiscard]] FactorComparison compare_factors(const tile::SymTileMatrix& a,
                                               const tile::SymTileMatrix& b);

}  // namespace gsx::dist
