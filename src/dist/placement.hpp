// Tile ownership for distributed execution: 2D block-cyclic placement.
//
// This header is the single source of truth for "which process owns tile
// (i, j)" — the simulator (src/distsim) and the real multi-process backend
// (src/dist) both consume it, so a simulated placement and a real run of the
// same problem put every tile on the same rank. Header-only: distsim must
// not link the transport layer to share the placement math.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gsx::dist {

/// 2D block-cyclic process grid: tile (i, j) lives on rank
/// (i mod p) * q + (j mod q) — the layout PaRSEC/DPLASMA/ScaLAPACK use.
struct ProcessGrid {
  std::size_t p = 1;
  std::size_t q = 1;

  [[nodiscard]] std::size_t nodes() const noexcept { return p * q; }
  [[nodiscard]] std::size_t owner(std::size_t i, std::size_t j) const noexcept {
    return (i % p) * q + (j % q);
  }

  /// Near-square grid for a node count (the usual choice).
  static ProcessGrid near_square(std::size_t nodes) {
    GSX_REQUIRE(nodes >= 1, "ProcessGrid: need at least one node");
    std::size_t p = static_cast<std::size_t>(std::sqrt(static_cast<double>(nodes)));
    while (p > 1 && nodes % p != 0) --p;
    return ProcessGrid{p, nodes / p};
  }
};

/// Stored-triangle coordinates (i >= j) owned by `rank`, in the column-major
/// traversal order the tile algorithms use. Deterministic: every process
/// computes the same partition without communication.
inline std::vector<std::pair<std::size_t, std::size_t>> owned_tiles(
    const ProcessGrid& grid, std::size_t rank, std::size_t nt) {
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i)
      if (grid.owner(i, j) == rank) coords.emplace_back(i, j);
  return coords;
}

/// Stored-tile count per rank (load-balance diagnostics and tests).
inline std::vector<std::size_t> tile_counts(const ProcessGrid& grid, std::size_t nt) {
  std::vector<std::size_t> counts(grid.nodes(), 0);
  for (std::size_t j = 0; j < nt; ++j)
    for (std::size_t i = j; i < nt; ++i) ++counts[grid.owner(i, j)];
  return counts;
}

}  // namespace gsx::dist
