#include "dist/tile_pool.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "tile/tile_codec.hpp"

namespace gsx::dist {

namespace {

std::uint64_t tile_tag(std::size_t i, std::size_t j) {
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}

}  // namespace

PooledTileStore::PooledTileStore(std::size_t max_bytes, std::string spill_dir)
    : max_bytes_(max_bytes), spill_dir_(std::move(spill_dir)) {
  GSX_REQUIRE(!spill_dir_.empty(), "PooledTileStore: spill_dir required");
}

PooledTileStore::~PooledTileStore() {
  // Best-effort cleanup of spill files for tiles still on disk.
  for (const auto& [key, e] : entries_)
    if (!e.resident) std::remove(spill_path(key.first, key.second).c_str());
}

std::string PooledTileStore::spill_path(std::size_t i, std::size_t j) const {
  return spill_dir_ + "/t" + std::to_string(i) + "_" + std::to_string(j) + ".bin";
}

void PooledTileStore::put(std::size_t i, std::size_t j, tile::Tile t) {
  const std::size_t bytes = t.bytes();
  std::lock_guard lk(mu_);
  evict_until_fits_locked(bytes);
  Entry& e = entries_[{i, j}];
  if (e.resident) resident_bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
  e.t = std::move(t);
  e.resident = true;
  e.bytes = bytes;
  e.last_use = ++tick_;
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  obs::Registry::instance().gauge("dist.pool.resident_bytes")
      .set(static_cast<double>(resident_bytes_.load(std::memory_order_relaxed)));
}

void PooledTileStore::evict_until_fits_locked(std::size_t incoming_bytes) {
  while (resident_bytes_.load(std::memory_order_relaxed) + incoming_bytes >
         max_bytes_) {
    // Coldest unpinned resident tile.
    auto victim = entries_.end();
    std::uint64_t coldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = it->second;
      if (e.resident && e.pins == 0 && e.last_use < coldest) {
        coldest = e.last_use;
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      // Everything resident is pinned: overshoot rather than deadlock the
      // worker pool. This is the signal that max_bytes is below the
      // concurrent working set (docs/distributed.md, OOC tuning).
      stats_.overcommit.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("dist.pool.overcommit").add(1);
      return;
    }
    Entry& e = victim->second;
    const auto [i, j] = victim->first;
    std::vector<std::uint8_t> buf;
    buf.reserve(tile::kTileFrameHeader + tile::encoded_tile_bytes(e.t));
    tile::encode_tile_framed(e.t, buf);
    {
      std::ofstream out(spill_path(i, j), std::ios::binary | std::ios::trunc);
      GSX_REQUIRE(out.good(), "tile pool: cannot open spill file for write");
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
      GSX_REQUIRE(out.good(), "tile pool: spill write failed (disk full?)");
    }
    GSX_FLIGHT(obs::EventKind::SpillOut, 0, tile_tag(i, j), e.bytes,
               static_cast<double>(static_cast<int>(e.t.precision())));
    stats_.spill_out.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("dist.pool.spill_out").add(1);
    e.t = tile::Tile();  // drop the payload
    e.resident = false;
    resident_bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
  }
}

void PooledTileStore::fault_in_locked(std::size_t i, std::size_t j, Entry& e) {
  std::vector<std::uint8_t> buf;
  {
    std::ifstream in(spill_path(i, j), std::ios::binary | std::ios::ate);
    GSX_REQUIRE(in.good(), "tile pool: missing spill file on fault-in");
    const std::streamsize n = in.tellg();
    in.seekg(0);
    buf.resize(static_cast<std::size_t>(n));
    in.read(reinterpret_cast<char*>(buf.data()), n);
    GSX_REQUIRE(in.good(), "tile pool: spill read failed");
  }
  std::size_t off = 0;
  // decode_tile_framed CRC-checks every byte: silent disk corruption turns
  // into a loud InvalidArgument instead of a wrong factorization.
  e.t = tile::decode_tile_framed(buf, off);
  e.bytes = e.t.bytes();
  e.resident = true;
  resident_bytes_.fetch_add(e.bytes, std::memory_order_relaxed);
  std::remove(spill_path(i, j).c_str());
  GSX_FLIGHT(obs::EventKind::SpillIn, 0, tile_tag(i, j), e.bytes,
             static_cast<double>(static_cast<int>(e.t.precision())));
  stats_.spill_in.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("dist.pool.spill_in").add(1);
}

tile::Tile& PooledTileStore::pin(std::size_t i, std::size_t j) {
  std::lock_guard lk(mu_);
  auto it = entries_.find({i, j});
  GSX_REQUIRE(it != entries_.end(), "tile pool: pin of unknown tile");
  Entry& e = it->second;
  if (!e.resident) {
    fault_in_locked(i, j, e);
    ++e.pins;  // pin before rebalancing so the faulted tile is not a victim
    evict_until_fits_locked(0);
  } else {
    ++e.pins;
  }
  e.last_use = ++tick_;
  obs::Registry::instance().gauge("dist.pool.resident_bytes")
      .set(static_cast<double>(resident_bytes_.load(std::memory_order_relaxed)));
  return e.t;
}

void PooledTileStore::unpin(std::size_t i, std::size_t j) {
  std::lock_guard lk(mu_);
  auto it = entries_.find({i, j});
  GSX_REQUIRE(it != entries_.end() && it->second.pins > 0,
              "tile pool: unpin without matching pin");
  --it->second.pins;
}

tile::Tile PooledTileStore::take(std::size_t i, std::size_t j) {
  std::lock_guard lk(mu_);
  auto it = entries_.find({i, j});
  GSX_REQUIRE(it != entries_.end(), "tile pool: take of unknown tile");
  Entry& e = it->second;
  GSX_REQUIRE(e.pins == 0, "tile pool: take of pinned tile");
  if (!e.resident) fault_in_locked(i, j, e);
  resident_bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
  tile::Tile out = std::move(e.t);
  entries_.erase(it);
  return out;
}

}  // namespace gsx::dist
