#include "dist/coordinator.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"

namespace gsx::dist {

namespace {

// The complete control-plane vocabulary. tools/check_docs.sh extracts this
// table and requires an "op" example for each verb in docs/distributed.md.
const std::vector<std::string> kDistVerbs = {
    "dist_register", "dist_peers",  "dist_barrier", "dist_reduce",
    "dist_heartbeat", "dist_stats", "dist_done",
};

double num_field(const serve::JsonValue& req, const char* key) {
  const serve::JsonValue* v = req.find(key);
  GSX_REQUIRE(v != nullptr && v->is_number(), "dist wire: missing numeric field");
  return v->as_number();
}

std::uint64_t u64_field(const serve::JsonValue& req, const char* key) {
  return static_cast<std::uint64_t>(num_field(req, key));
}

}  // namespace

const std::vector<std::string>& dist_verbs() { return kDistVerbs; }

Coordinator::Coordinator(int nprocs) : nprocs_(nprocs) {
  GSX_REQUIRE(nprocs >= 1, "Coordinator: need at least one rank");
}

Coordinator::~Coordinator() { stop(); }

std::uint16_t Coordinator::start() {
  serve::LineListener::Config cfg;
  cfg.tcp_port = 0;  // ephemeral loopback; workers get it via argv
  cfg.log_tag = "dist";
  listener_ = std::make_unique<serve::LineListener>(
      std::move(cfg), [this](const std::string& line) { return handle(line); });
  const std::uint16_t port = listener_->listen();
  serve_thread_ = std::thread([this] { listener_->serve_forever(); });
  return port;
}

void Coordinator::stop() {
  if (listener_) listener_->shutdown();
  if (serve_thread_.joinable()) serve_thread_.join();
}

std::string Coordinator::handle(const std::string& line) {
  try {
    const serve::JsonValue req = serve::JsonValue::parse(line);
    const serve::JsonValue* opv = req.find("op");
    GSX_REQUIRE(opv != nullptr && opv->is_string(), "dist wire: missing op");
    const std::string& op = opv->as_string();
    serve::JsonValue::Object resp;
    resp["ok"] = true;

    if (op == "dist_register") {
      const int rank = static_cast<int>(num_field(req, "rank"));
      GSX_REQUIRE(rank >= 0 && rank < nprocs_, "dist_register: rank out of range");
      std::lock_guard lk(mu_);
      data_ports_[rank] = static_cast<std::uint16_t>(num_field(req, "data_port"));
      resp["nprocs"] = nprocs_;
      cv_.notify_all();
    } else if (op == "dist_peers") {
      std::lock_guard lk(mu_);
      const bool ready = static_cast<int>(data_ports_.size()) == nprocs_;
      resp["ready"] = ready;
      if (ready) {
        serve::JsonValue::Object peers;
        for (const auto& [rank, port] : data_ports_)
          peers[std::to_string(rank)] = static_cast<std::size_t>(port);
        resp["peers"] = std::move(peers);
      }
    } else if (op == "dist_barrier") {
      const std::uint64_t epoch = u64_field(req, "epoch");
      std::unique_lock lk(mu_);
      const int arrivals = ++barrier_count_[epoch];
      GSX_REQUIRE(arrivals <= nprocs_, "dist_barrier: epoch reused");
      if (arrivals == nprocs_) {
        cv_.notify_all();
      } else {
        // Blocking the handler thread is the LineListener contract working
        // for us: each rank holds its own connection (and thread).
        cv_.wait(lk, [&] { return barrier_count_[epoch] == nprocs_; });
      }
    } else if (op == "dist_reduce") {
      const std::uint64_t epoch = u64_field(req, "epoch");
      const double value = num_field(req, "value");
      std::unique_lock lk(mu_);
      reduce_sum_[epoch] += value;
      const int arrivals = ++reduce_count_[epoch];
      GSX_REQUIRE(arrivals <= nprocs_, "dist_reduce: epoch reused");
      if (arrivals == nprocs_) {
        cv_.notify_all();
      } else {
        cv_.wait(lk, [&] { return reduce_count_[epoch] == nprocs_; });
      }
      // All ranks read the identical finished sum: the precision decisions
      // derived from it (global Frobenius norm) match bit-for-bit everywhere.
      resp["sum"] = reduce_sum_[epoch];
    } else if (op == "dist_heartbeat") {
      const std::uint64_t seq = u64_field(req, "seq");
      GSX_FLIGHT(obs::EventKind::HeartbeatRecv, 0, seq, 0, 0.0);
      resp["seq"] = static_cast<std::size_t>(seq);
      // Beats optionally carry the rank's scheduler load; republish as
      // per-rank gauges so the launcher's metrics exposition shows fleet
      // load without another wire protocol.
      const serve::JsonValue* qd = req.find("queue_depth");
      const serve::JsonValue* inf = req.find("inflight");
      if (qd != nullptr && qd->is_number() && inf != nullptr && inf->is_number()) {
        const std::string rank = std::to_string(static_cast<int>(num_field(req, "rank")));
        obs::Registry::instance().gauge("dist.hb.queue_depth." + rank).set(qd->as_number());
        obs::Registry::instance().gauge("dist.hb.inflight." + rank).set(inf->as_number());
      }
    } else if (op == "dist_stats") {
      const int rank = static_cast<int>(num_field(req, "rank"));
      RankStats s;
      s.tiles_sent = u64_field(req, "tiles_sent");
      s.bytes_sent = u64_field(req, "bytes_sent");
      s.tiles_recv = u64_field(req, "tiles_recv");
      s.bytes_recv = u64_field(req, "bytes_recv");
      s.recv_corrupt = u64_field(req, "recv_corrupt");
      s.spill_out = u64_field(req, "spill_out");
      s.spill_in = u64_field(req, "spill_in");
      std::lock_guard lk(mu_);
      stats_[rank] = s;
    } else if (op == "dist_done") {
      const int rank = static_cast<int>(num_field(req, "rank"));
      const serve::JsonValue* okv = req.find("worker_ok");
      const bool ok = okv != nullptr && okv->is_bool() && okv->as_bool();
      std::lock_guard lk(mu_);
      ++done_count_;
      if (!ok) {
        const serve::JsonValue* msg = req.find("message");
        failures_.push_back("rank " + std::to_string(rank) + ": " +
                            (msg != nullptr && msg->is_string() ? msg->as_string()
                                                                : "unknown error"));
      }
      cv_.notify_all();
    } else {
      return serve::wire_error("unknown op: " + op);
    }
    return serve::JsonValue(std::move(resp)).dump();
  } catch (const std::exception& e) {
    return serve::wire_error(e.what());
  }
}

bool Coordinator::all_done() const {
  std::lock_guard lk(mu_);
  return done_count_ == nprocs_;
}

bool Coordinator::all_ok() const {
  std::lock_guard lk(mu_);
  return done_count_ == nprocs_ && failures_.empty();
}

std::vector<std::string> Coordinator::failures() const {
  std::lock_guard lk(mu_);
  return failures_;
}

RankStats Coordinator::total_stats() const {
  std::lock_guard lk(mu_);
  RankStats total;
  for (const auto& [rank, s] : stats_) {
    total.tiles_sent += s.tiles_sent;
    total.bytes_sent += s.bytes_sent;
    total.tiles_recv += s.tiles_recv;
    total.bytes_recv += s.bytes_recv;
    total.recv_corrupt += s.recv_corrupt;
    total.spill_out += s.spill_out;
    total.spill_in += s.spill_in;
  }
  return total;
}

CoordClient::CoordClient(std::uint16_t port, int rank) : rank_(rank) {
  GSX_REQUIRE(client_.dial_tcp("127.0.0.1", port),
              "CoordClient: cannot reach the coordinator");
}

serve::JsonValue CoordClient::request(const std::string& line) {
  std::string response;
  GSX_REQUIRE(client_.request(line, &response),
              "CoordClient: coordinator connection lost");
  serve::JsonValue v = serve::JsonValue::parse(response);
  const serve::JsonValue* ok = v.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    const serve::JsonValue* err = v.find("error");
    GSX_REQUIRE(false, "CoordClient: coordinator error: " +
                           (err != nullptr && err->is_string() ? err->as_string()
                                                               : response));
  }
  return v;
}

int CoordClient::register_rank(std::uint16_t data_port) {
  serve::JsonValue::Object o;
  o["op"] = "dist_register";
  o["rank"] = rank_;
  o["data_port"] = static_cast<std::size_t>(data_port);
  const serve::JsonValue v = request(serve::JsonValue(std::move(o)).dump());
  const serve::JsonValue* n = v.find("nprocs");
  GSX_REQUIRE(n != nullptr && n->is_number(), "dist_register: bad response");
  return static_cast<int>(n->as_number());
}

std::map<int, std::uint16_t> CoordClient::wait_peers() {
  for (;;) {
    serve::JsonValue::Object o;
    o["op"] = "dist_peers";
    const serve::JsonValue v = request(serve::JsonValue(std::move(o)).dump());
    const serve::JsonValue* ready = v.find("ready");
    if (ready != nullptr && ready->is_bool() && ready->as_bool()) {
      const serve::JsonValue* peers = v.find("peers");
      GSX_REQUIRE(peers != nullptr && peers->is_object(), "dist_peers: bad response");
      std::map<int, std::uint16_t> out;
      for (const auto& [rank, port] : peers->as_object())
        out[std::stoi(rank)] = static_cast<std::uint16_t>(port.as_number());
      return out;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void CoordClient::barrier(std::uint64_t epoch) {
  serve::JsonValue::Object o;
  o["op"] = "dist_barrier";
  o["rank"] = rank_;
  o["epoch"] = static_cast<std::size_t>(epoch);
  request(serve::JsonValue(std::move(o)).dump());
}

double CoordClient::allreduce_sum(std::uint64_t epoch, double value) {
  serve::JsonValue::Object o;
  o["op"] = "dist_reduce";
  o["rank"] = rank_;
  o["epoch"] = static_cast<std::size_t>(epoch);
  o["value"] = value;
  const serve::JsonValue v = request(serve::JsonValue(std::move(o)).dump());
  const serve::JsonValue* sum = v.find("sum");
  GSX_REQUIRE(sum != nullptr && sum->is_number(), "dist_reduce: bad response");
  return sum->as_number();
}

void CoordClient::heartbeat(std::uint64_t seq, double queue_depth, double inflight) {
  serve::JsonValue::Object o;
  o["op"] = "dist_heartbeat";
  o["rank"] = rank_;
  o["seq"] = static_cast<std::size_t>(seq);
  o["queue_depth"] = queue_depth;
  o["inflight"] = inflight;
  const std::string line = serve::JsonValue(std::move(o)).dump();
  const double t0 = obs::now_seconds();
  GSX_FLIGHT(obs::EventKind::HeartbeatSend, 0, seq, 0, 0.0);
  request(line);
  GSX_FLIGHT(obs::EventKind::HeartbeatAck, 0, seq, 0, obs::now_seconds() - t0);
}

void CoordClient::report_stats(const RankStats& s) {
  serve::JsonValue::Object o;
  o["op"] = "dist_stats";
  o["rank"] = rank_;
  o["tiles_sent"] = static_cast<std::size_t>(s.tiles_sent);
  o["bytes_sent"] = static_cast<std::size_t>(s.bytes_sent);
  o["tiles_recv"] = static_cast<std::size_t>(s.tiles_recv);
  o["bytes_recv"] = static_cast<std::size_t>(s.bytes_recv);
  o["recv_corrupt"] = static_cast<std::size_t>(s.recv_corrupt);
  o["spill_out"] = static_cast<std::size_t>(s.spill_out);
  o["spill_in"] = static_cast<std::size_t>(s.spill_in);
  request(serve::JsonValue(std::move(o)).dump());
}

void CoordClient::done(bool ok, const std::string& message) {
  serve::JsonValue::Object o;
  o["op"] = "dist_done";
  o["rank"] = rank_;
  o["worker_ok"] = ok;
  o["message"] = message;
  request(serve::JsonValue(std::move(o)).dump());
}

}  // namespace gsx::dist
