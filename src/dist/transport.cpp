#include "dist/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/listener.hpp"
#include "tile/tile_codec.hpp"

namespace gsx::dist {

namespace {

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_le(std::span<const std::uint8_t> in, std::size_t offset,
                      std::size_t nbytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nbytes; ++i)
    v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  return v;
}

/// read() exactly `n` bytes, tolerating short reads and EINTR.
/// Returns false on EOF or error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
    } else if (r == 0) {
      return false;  // peer closed
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

int dial_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

void encode_wire_message(std::uint16_t kind, std::uint16_t src,
                         std::uint64_t tag, const tile::Tile& t,
                         std::vector<std::uint8_t>& out) {
  append_u32(out, kWireMagic);
  append_u16(out, kind);
  append_u16(out, src);
  append_u64(out, tag);
  tile::encode_tile_framed(t, out);
}

WireMessage decode_wire_message(std::span<const std::uint8_t> in,
                                std::size_t& offset) {
  GSX_REQUIRE(offset + kWireHeader <= in.size(),
              "dist wire: truncated message header");
  const auto magic = static_cast<std::uint32_t>(read_le(in, offset, 4));
  GSX_REQUIRE(magic == kWireMagic, "dist wire: bad message magic");
  WireMessage msg;
  msg.kind = static_cast<std::uint16_t>(read_le(in, offset + 4, 2));
  msg.src = static_cast<std::uint16_t>(read_le(in, offset + 6, 2));
  msg.tag = read_le(in, offset + 8, 8);
  offset += kWireHeader;
  msg.tile = tile::decode_tile_framed(in, offset);
  return msg;
}

TileTransport::TileTransport(int rank) : rank_(rank) {}

TileTransport::~TileTransport() { shutdown(); }

std::uint16_t TileTransport::listen() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GSX_REQUIRE(fd >= 0, "dist transport: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral: the coordinator spreads the bound port
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    GSX_REQUIRE(false, "dist transport: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ntohs(addr.sin_port);
}

void TileTransport::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lk(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TileTransport::reader_loop(int fd) {
  // Frame reassembly: wire header, then the codec frame header (which caps
  // the record length), then the record — each read_exact'd off the stream.
  std::vector<std::uint8_t> buf;
  for (;;) {
    buf.resize(kWireHeader + tile::kTileFrameHeader);
    if (!read_exact(fd, buf.data(), buf.size())) return;
    const std::uint64_t record_len =
        read_le(buf, kWireHeader + 8, 8);  // codec frame: magic, crc, u64 len
    // An implausible length means the stream is garbage (or not our
    // protocol); treat exactly like a CRC failure below.
    constexpr std::uint64_t kMaxRecord = std::uint64_t{1} << 34;  // 16 GiB
    if (record_len > kMaxRecord) {
      stats_.recv_corrupt.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("dist.recv_corrupt").add(1);
      obs::log(obs::LogLevel::Warn, "dist",
               "corrupt tile frame (implausible length), closing connection");
      return;
    }
    buf.resize(kWireHeader + tile::kTileFrameHeader + record_len);
    if (!read_exact(fd, buf.data() + kWireHeader + tile::kTileFrameHeader,
                    record_len))
      return;
    WireMessage msg;
    try {
      std::size_t off = 0;
      msg = decode_wire_message(buf, off);
    } catch (const std::exception& e) {
      stats_.recv_corrupt.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("dist.recv_corrupt").add(1);
      obs::log(obs::LogLevel::Warn, "dist",
               std::string("corrupt tile frame, closing connection: ") + e.what());
      return;  // no resync on a byte stream — drop the connection
    }
    const std::uint64_t payload = msg.tile.bytes();
    stats_.tiles_recv.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_recv.fetch_add(buf.size(), std::memory_order_relaxed);
    auto& reg = obs::Registry::instance();
    reg.counter("dist.tiles_recv").add(1);
    reg.counter("dist.bytes_recv").add(buf.size());
    GSX_FLIGHT(obs::EventKind::TileRecv, 0, msg.tag, payload,
               static_cast<double>(static_cast<int>(msg.tile.precision())));
    deliver(std::move(msg));
  }
}

void TileTransport::deliver(WireMessage msg) {
  Delivery fn;
  {
    std::lock_guard lk(mail_mu_);
    auto it = delivery_.find(msg.kind);
    if (it == delivery_.end()) {
      mailbox_[{msg.kind, msg.tag}].push_back(std::move(msg.tile));
      mail_cv_.notify_all();
      return;
    }
    fn = it->second;
  }
  // Callback outside the mailbox lock: it typically stages the tile and
  // notifies the task graph, which takes the scheduler mutex.
  fn(msg.src, msg.tag, std::move(msg.tile));
}

void TileTransport::set_peers(std::map<int, std::uint16_t> rank_to_port) {
  std::lock_guard lk(send_mu_);
  peers_ = std::move(rank_to_port);
}

void TileTransport::set_delivery(std::uint16_t kind, Delivery fn) {
  std::lock_guard lk(mail_mu_);
  delivery_[kind] = std::move(fn);
}

void TileTransport::send_tile(int dest_rank, std::uint16_t kind,
                              std::uint64_t tag, const tile::Tile& t) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kWireHeader + tile::kTileFrameHeader + tile::encoded_tile_bytes(t));
  encode_wire_message(kind, static_cast<std::uint16_t>(rank_), tag, t, buf);

  // One connection per destination, dialed lazily. The lock serializes
  // writes to a destination so frames never interleave.
  std::lock_guard lk(send_mu_);
  auto it = send_fds_.find(dest_rank);
  if (it == send_fds_.end()) {
    const auto peer = peers_.find(dest_rank);
    GSX_REQUIRE(peer != peers_.end(), "dist transport: unknown destination rank");
    const int fd = dial_loopback(peer->second);
    GSX_REQUIRE(fd >= 0, "dist transport: failed to connect to peer");
    it = send_fds_.emplace(dest_rank, fd).first;
  }
  GSX_REQUIRE(serve::write_all(it->second,
                               reinterpret_cast<const char*>(buf.data()),
                               buf.size()),
              "dist transport: short write to peer (peer died?)");
  stats_.tiles_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(buf.size(), std::memory_order_relaxed);
  auto& reg = obs::Registry::instance();
  reg.counter("dist.tiles_sent").add(1);
  reg.counter("dist.bytes_sent").add(buf.size());
  GSX_FLIGHT(obs::EventKind::TileSend, 0, tag, t.bytes(),
             static_cast<double>(static_cast<int>(t.precision())));
}

tile::Tile TileTransport::recv_tile(std::uint16_t kind, std::uint64_t tag) {
  std::unique_lock lk(mail_mu_);
  const auto key = std::make_pair(kind, tag);
  mail_cv_.wait(lk, [&] {
    auto it = mailbox_.find(key);
    return (it != mailbox_.end() && !it->second.empty()) ||
           stopping_.load(std::memory_order_acquire);
  });
  auto it = mailbox_.find(key);
  GSX_REQUIRE(it != mailbox_.end() && !it->second.empty(),
              "dist transport: shut down while waiting for a tile");
  tile::Tile t = std::move(it->second.back());
  it->second.pop_back();
  return t;
}

void TileTransport::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lk(conn_mu_);
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Join outside conn_mu_: reader threads take it only at registration, but
  // keep the order simple and deadlock-free anyway.
  std::vector<std::thread> readers;
  {
    std::lock_guard lk(conn_mu_);
    readers.swap(reader_threads_);
  }
  for (auto& th : readers)
    if (th.joinable()) th.join();
  {
    std::lock_guard lk(conn_mu_);
    for (int fd : reader_fds_) ::close(fd);
    reader_fds_.clear();
  }
  {
    std::lock_guard lk(send_mu_);
    for (auto& [rank, fd] : send_fds_) ::close(fd);
    send_fds_.clear();
  }
  mail_cv_.notify_all();
}

}  // namespace gsx::dist
