// Tile data plane for the distributed backend: point-to-point exchange of
// precision-aware tile payloads between worker processes over loopback TCP.
//
// The control plane (rank rendezvous, barriers, allreduce, shutdown) rides
// the serve NDJSON protocol (src/dist/coordinator); this file is the bulk
// channel. One message = a fixed wire header (magic, kind, source rank, tag)
// followed by a framed tile record from tile_codec — so an FP16 tile costs 2
// bytes/element on the wire and a TLR tile ships only its U/V factors, which
// is how the paper's mixed-precision memory win becomes a bandwidth win.
//
// Delivery has two modes per message kind:
//   - a registered callback (set_delivery), invoked on the receiver thread —
//     the factorization path uses this to stage the tile and notify() the
//     matching external task in the TaskGraph;
//   - a blocking mailbox (recv_tile), used by the rank-0 factor gather.
//
// Every received frame is CRC-verified by the codec; a corrupt or malformed
// frame increments dist.recv_corrupt and closes that connection rather than
// guessing at resynchronization.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "tile/tile.hpp"

namespace gsx::dist {

/// Message kinds multiplexed on one socket pair.
inline constexpr std::uint16_t kMsgPanel = 1;   ///< factorization operand tile
inline constexpr std::uint16_t kMsgGather = 2;  ///< final factor collection

/// "GSXW" little-endian: distinguishes the tile wire from a stray NDJSON
/// client dialing the wrong port.
inline constexpr std::uint32_t kWireMagic = 0x57585347u;
/// Wire header bytes: u32 magic, u16 kind, u16 src rank, u64 tag.
inline constexpr std::size_t kWireHeader = 16;

/// One decoded data-plane message. `tag` identifies the tile: the dist
/// backend packs (i << 32) | j.
struct WireMessage {
  std::uint16_t kind = 0;
  std::uint16_t src = 0;
  std::uint64_t tag = 0;
  tile::Tile tile;
};

/// Append one complete wire message (header + framed tile) to `out`.
void encode_wire_message(std::uint16_t kind, std::uint16_t src,
                         std::uint64_t tag, const tile::Tile& t,
                         std::vector<std::uint8_t>& out);

/// Parse one wire message at `offset`, advancing past it. Throws
/// InvalidArgument on bad magic, truncation or CRC mismatch — any flipped
/// byte in header or payload is rejected, never silently accepted.
WireMessage decode_wire_message(std::span<const std::uint8_t> in,
                                std::size_t& offset);

/// Live transfer counters, kept unconditionally (independent of the obs
/// registry gate) so benchmarks can report bytes-on-wire with telemetry off.
struct WireStats {
  std::atomic<std::uint64_t> tiles_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> tiles_recv{0};
  std::atomic<std::uint64_t> bytes_recv{0};
  std::atomic<std::uint64_t> recv_corrupt{0};
};

/// Point-to-point tile exchange endpoint for one rank. Lifecycle:
///   listen() -> exchange ports via the coordinator -> set_peers() ->
///   send_tile()/recv_tile()/delivery callbacks -> shutdown().
/// send_tile is thread-safe (per-destination serialization); recv_tile may
/// be called from any thread.
class TileTransport {
 public:
  explicit TileTransport(int rank);
  ~TileTransport();

  TileTransport(const TileTransport&) = delete;
  TileTransport& operator=(const TileTransport&) = delete;

  /// Bind an ephemeral loopback port and start accepting peer connections.
  /// Returns the bound port (advertised through the coordinator).
  std::uint16_t listen();

  /// Install the rank -> data port map (from the coordinator's peer
  /// exchange). Connections are dialed lazily on first send to each rank.
  void set_peers(std::map<int, std::uint16_t> rank_to_port);

  /// Receiver-thread callback for one message kind; replaces the mailbox for
  /// that kind. Must be installed before traffic of that kind arrives and be
  /// thread-safe. The factorization path stages the tile and notifies the
  /// task graph from here.
  using Delivery = std::function<void(int src, std::uint64_t tag, tile::Tile t)>;
  void set_delivery(std::uint16_t kind, Delivery fn);

  /// Encode and ship one tile. Throws on connection failure or short write
  /// (the distributed run is not salvageable once a peer is unreachable —
  /// see docs/distributed.md runbook).
  void send_tile(int dest_rank, std::uint16_t kind, std::uint64_t tag,
                 const tile::Tile& t);

  /// Block until a message of (kind, tag) arrives in the mailbox (kinds
  /// without a delivery callback). Throws if the transport shuts down while
  /// waiting.
  tile::Tile recv_tile(std::uint16_t kind, std::uint64_t tag);

  [[nodiscard]] const WireStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Stop accepting, close every connection, join receiver threads, wake
  /// mailbox waiters. Idempotent.
  void shutdown();

 private:
  void accept_loop();
  void reader_loop(int fd);
  void deliver(WireMessage msg);

  const int rank_;
  WireStats stats_;

  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;  ///< guards reader_threads_/reader_fds_
  std::vector<std::thread> reader_threads_;
  std::vector<int> reader_fds_;

  std::mutex send_mu_;  ///< guards peers_/send_fds_; held across one write
  std::map<int, std::uint16_t> peers_;
  std::map<int, int> send_fds_;

  std::mutex mail_mu_;
  std::condition_variable mail_cv_;
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::vector<tile::Tile>>
      mailbox_;
  std::map<std::uint16_t, Delivery> delivery_;  ///< set before traffic
};

}  // namespace gsx::dist
