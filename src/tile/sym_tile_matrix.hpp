// Symmetric tiled matrix, lower-triangular tile storage.
//
// The covariance matrix Sigma(theta) is symmetric positive definite; only
// tiles (i, j) with i >= j are stored. Each tile independently carries its
// (format, precision) decision, the core data structure of the paper's
// adaptive approach.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tile/tile.hpp"

namespace gsx::tile {

class SymTileMatrix {
 public:
  /// n x n symmetric matrix in tiles of side `tile_size` (last tile ragged).
  SymTileMatrix(std::size_t n, std::size_t tile_size);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t tile_size() const noexcept { return ts_; }
  /// Number of tiles per dimension (NT in the paper's formulas).
  [[nodiscard]] std::size_t nt() const noexcept { return nt_; }

  /// Row/column extent of tile index i (handles the ragged last tile).
  [[nodiscard]] std::size_t tile_dim(std::size_t i) const;
  /// Global index of the first row/column covered by tile index i.
  [[nodiscard]] std::size_t tile_offset(std::size_t i) const noexcept { return i * ts_; }

  /// Tile (i, j) with i >= j.
  [[nodiscard]] Tile& at(std::size_t i, std::size_t j);
  [[nodiscard]] const Tile& at(std::size_t i, std::size_t j) const;

  /// Generate all stored tiles dense FP64 from an element functor
  /// sigma(gi, gj), optionally in parallel over tiles.
  void generate(const std::function<double(std::size_t, std::size_t)>& sigma,
                std::size_t num_workers = 1);

  /// Frobenius norm of the full symmetric matrix, accumulated tile-by-tile
  /// during/after generation (the paper stores no global copy).
  [[nodiscard]] double frobenius_norm() const;

  /// Total payload bytes across stored tiles (the "memory footprint" of
  /// Fig. 9, counting the stored triangle).
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Footprint if every stored tile were dense FP64 (the baseline MF).
  [[nodiscard]] std::size_t dense_fp64_bytes() const;

  /// Materialize the full symmetric matrix (testing / small problems only).
  [[nodiscard]] la::Matrix<double> to_full() const;

  /// y = A x over the full symmetric operator, tile by tile (each tile is
  /// materialized to FP64 per call). Diagnostic path — powers the health
  /// layer's condition estimate; not a performance kernel.
  void symv(const std::vector<double>& x, std::vector<double>& y) const;

  /// ASCII decision heat map, one row per tile row; '.' above the diagonal.
  [[nodiscard]] std::vector<std::string> decision_map() const;

  /// Histogram of per-tile decision codes.
  [[nodiscard]] std::map<char, std::size_t> decision_counts() const;

 private:
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::size_t ts_;
  std::size_t nt_;
  std::vector<Tile> tiles_;  // packed lower triangle, column-major by tile
};

}  // namespace gsx::tile
