#include "tile/sym_tile_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "runtime/task_graph.hpp"

namespace gsx::tile {

SymTileMatrix::SymTileMatrix(std::size_t n, std::size_t tile_size)
    : n_(n), ts_(tile_size), nt_((n + tile_size - 1) / tile_size) {
  GSX_REQUIRE(n >= 1 && tile_size >= 1, "SymTileMatrix: empty matrix or tile");
  tiles_.resize(nt_ * (nt_ + 1) / 2);
}

std::size_t SymTileMatrix::tile_dim(std::size_t i) const {
  GSX_REQUIRE(i < nt_, "tile_dim: tile index out of range");
  return (i + 1 == nt_) ? n_ - i * ts_ : ts_;
}

std::size_t SymTileMatrix::index(std::size_t i, std::size_t j) const {
  GSX_REQUIRE(i < nt_ && j <= i, "SymTileMatrix: need i >= j in stored triangle");
  // Packed lower triangle, column-major: column j holds nt-j tiles.
  return j * nt_ - j * (j - 1) / 2 + (i - j);
}

Tile& SymTileMatrix::at(std::size_t i, std::size_t j) { return tiles_[index(i, j)]; }
const Tile& SymTileMatrix::at(std::size_t i, std::size_t j) const {
  return tiles_[index(i, j)];
}

void SymTileMatrix::generate(const std::function<double(std::size_t, std::size_t)>& sigma,
                             std::size_t num_workers) {
  // Flatten stored-tile coordinates for a balanced parallel loop.
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  coords.reserve(tiles_.size());
  for (std::size_t j = 0; j < nt_; ++j)
    for (std::size_t i = j; i < nt_; ++i) coords.emplace_back(i, j);

  rt::parallel_for(0, coords.size(), num_workers, [&](std::size_t c) {
    const auto [i, j] = coords[c];
    const std::size_t r = tile_dim(i);
    const std::size_t cdim = tile_dim(j);
    const std::size_t gi0 = tile_offset(i);
    const std::size_t gj0 = tile_offset(j);
    la::Matrix<double> block(r, cdim);
    for (std::size_t jj = 0; jj < cdim; ++jj)
      for (std::size_t ii = 0; ii < r; ++ii)
        block(ii, jj) = sigma(gi0 + ii, gj0 + jj);
    at(i, j) = Tile::dense64(std::move(block));
  });
}

double SymTileMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (std::size_t j = 0; j < nt_; ++j) {
    for (std::size_t i = j; i < nt_; ++i) {
      const double f = at(i, j).frobenius();
      sum += (i == j) ? f * f : 2.0 * f * f;
    }
  }
  return std::sqrt(sum);
}

std::size_t SymTileMatrix::footprint_bytes() const {
  std::size_t b = 0;
  for (const Tile& t : tiles_) b += t.bytes();
  return b;
}

std::size_t SymTileMatrix::dense_fp64_bytes() const {
  std::size_t b = 0;
  for (std::size_t j = 0; j < nt_; ++j)
    for (std::size_t i = j; i < nt_; ++i) b += tile_dim(i) * tile_dim(j) * 8;
  return b;
}

la::Matrix<double> SymTileMatrix::to_full() const {
  la::Matrix<double> full(n_, n_);
  for (std::size_t j = 0; j < nt_; ++j) {
    for (std::size_t i = j; i < nt_; ++i) {
      const la::Matrix<double> block = at(i, j).to_dense64();
      const std::size_t gi0 = tile_offset(i);
      const std::size_t gj0 = tile_offset(j);
      for (std::size_t jj = 0; jj < block.cols(); ++jj)
        for (std::size_t ii = 0; ii < block.rows(); ++ii) {
          full(gi0 + ii, gj0 + jj) = block(ii, jj);
          if (i != j) full(gj0 + jj, gi0 + ii) = block(ii, jj);
        }
    }
  }
  return full;
}

void SymTileMatrix::symv(const std::vector<double>& x, std::vector<double>& y) const {
  GSX_REQUIRE(x.size() == n_ && y.size() == n_, "symv: vector length mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t j = 0; j < nt_; ++j) {
    for (std::size_t i = j; i < nt_; ++i) {
      const la::Matrix<double> block = at(i, j).to_dense64();
      const std::size_t gi0 = tile_offset(i);
      const std::size_t gj0 = tile_offset(j);
      for (std::size_t jj = 0; jj < block.cols(); ++jj)
        for (std::size_t ii = 0; ii < block.rows(); ++ii) {
          y[gi0 + ii] += block(ii, jj) * x[gj0 + jj];
          // Diagonal tiles hold the full symmetric block; only off-diagonal
          // tiles need their transpose mirrored in.
          if (i != j) y[gj0 + jj] += block(ii, jj) * x[gi0 + ii];
        }
    }
  }
}

std::vector<std::string> SymTileMatrix::decision_map() const {
  std::vector<std::string> rows(nt_, std::string(nt_, '.'));
  for (std::size_t j = 0; j < nt_; ++j)
    for (std::size_t i = j; i < nt_; ++i) rows[i][j] = at(i, j).decision_code();
  return rows;
}

std::map<char, std::size_t> SymTileMatrix::decision_counts() const {
  std::map<char, std::size_t> counts;
  for (std::size_t j = 0; j < nt_; ++j)
    for (std::size_t i = j; i < nt_; ++i) ++counts[at(i, j).decision_code()];
  return counts;
}

}  // namespace gsx::tile
