// Shared per-tile binary codec: one record format for every place a tile
// crosses a process boundary — checkpoint files (gsx-ckpt-v1 FACT sections)
// and the distributed tile wire (src/dist transport, out-of-core spill
// files).
//
// Record layout (little-endian, exactly what Tile::serialize historically
// wrote, so existing checkpoints stay readable):
//   u8  format (0 dense, 1 low-rank)
//   u8  precision (Precision enum value)
//   u16 reserved (0)
//   u64 rows, u64 cols, u64 rank
//   payload: dense -> the storage matrix verbatim at its stored width;
//            low-rank -> U (rows x rank) then V (cols x rank), stored width.
// A tile therefore ships at its *stored* precision — FP16 tiles cost 2
// bytes/element on the wire and TLR tiles cost (rows+cols)*rank elements,
// which is how the paper's mixed-precision footprint win becomes a
// bandwidth win.
//
// The framed variant wraps the record for unreliable media (sockets, spill
// files): u32 magic "GSXT", u32 CRC32 of the record, u64 record bytes,
// record. decode_tile_framed verifies magic, bounds and CRC and throws
// InvalidArgument on any mismatch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tile/tile.hpp"

namespace gsx::tile {

/// CRC32 (IEEE 802.3 reflected polynomial 0xEDB88320) — the checksum used by
/// checkpoints, the dist wire and spill files alike.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Append one bare tile record to `out` (no framing, no CRC — the caller
/// provides integrity, e.g. the checkpoint's per-section CRC).
void encode_tile(const Tile& t, std::vector<std::uint8_t>& out);

/// Parse one bare record from `in` at `offset`, advancing it past the
/// record. Throws InvalidArgument on truncated or malformed input.
Tile decode_tile(std::span<const std::uint8_t> in, std::size_t& offset);

/// "GSXT" little-endian.
inline constexpr std::uint32_t kTileFrameMagic = 0x54585347u;
/// Framed header bytes: magic + crc + u64 length.
inline constexpr std::size_t kTileFrameHeader = 16;

/// Append magic + CRC32 + length + record.
void encode_tile_framed(const Tile& t, std::vector<std::uint8_t>& out);

/// Parse one framed record, verifying magic, bounds and CRC. Throws
/// InvalidArgument on corruption of any byte of header or payload.
Tile decode_tile_framed(std::span<const std::uint8_t> in, std::size_t& offset);

/// Bytes encode_tile would produce for this tile (header + stored payload),
/// without materializing the buffer — the wire-cost estimate.
std::size_t encoded_tile_bytes(const Tile& t);

}  // namespace gsx::tile
