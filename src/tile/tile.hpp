// A tile: one block of the covariance matrix, stored dense in one of three
// precisions or compressed low-rank (U V^T) in FP64 or FP32.
//
// The per-tile (format, precision) pair is exactly the runtime decision the
// paper embeds in PaRSEC: structure-aware (dense vs TLR, Algorithm 2) and
// precision-aware (Frobenius rule, Section VI.C).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/precision.hpp"
#include "la/matrix.hpp"

namespace gsx::tile {

enum class TileFormat : unsigned char { Dense, LowRank };

/// Low-rank factorization payload: block = U * V^T, U: rows x k, V: cols x k.
template <typename T>
struct LowRankStorage {
  la::Matrix<T> u;
  la::Matrix<T> v;

  [[nodiscard]] std::size_t rank() const noexcept { return u.cols(); }
};

/// Tagged storage for one tile.
class Tile {
 public:
  Tile() = default;

  /// Dense tiles.
  static Tile dense64(la::Matrix<double> m);
  static Tile dense32(la::Matrix<float> m);
  static Tile dense16(la::Matrix<half> m);
  static Tile dense_bf16(la::Matrix<bfloat16> m);

  /// Low-rank tiles (FP64/FP32 only; the paper never stores LR in FP16).
  static Tile lowrank64(la::Matrix<double> u, la::Matrix<double> v);
  static Tile lowrank32(la::Matrix<float> u, la::Matrix<float> v);

  [[nodiscard]] TileFormat format() const noexcept { return format_; }
  [[nodiscard]] Precision precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Rank of a low-rank tile; for dense tiles returns min(rows, cols).
  [[nodiscard]] std::size_t rank() const;

  /// Storage footprint in bytes (payload only).
  [[nodiscard]] std::size_t bytes() const;

  /// Frobenius norm of the represented block.
  [[nodiscard]] double frobenius() const;

  /// Typed access; throws unless format/precision match.
  [[nodiscard]] la::Matrix<double>& d64();
  [[nodiscard]] const la::Matrix<double>& d64() const;
  [[nodiscard]] la::Matrix<float>& d32();
  [[nodiscard]] const la::Matrix<float>& d32() const;
  [[nodiscard]] la::Matrix<half>& d16();
  [[nodiscard]] const la::Matrix<half>& d16() const;
  [[nodiscard]] la::Matrix<bfloat16>& dbf16();
  [[nodiscard]] const la::Matrix<bfloat16>& dbf16() const;
  [[nodiscard]] LowRankStorage<double>& lr64();
  [[nodiscard]] const LowRankStorage<double>& lr64() const;
  [[nodiscard]] LowRankStorage<float>& lr32();
  [[nodiscard]] const LowRankStorage<float>& lr32() const;

  /// Convert a dense tile's storage precision in place (rounds on demotion).
  /// No-op if already at `p`. Throws for low-rank tiles.
  void convert_dense(Precision p);

  /// Materialize the represented block as dense FP64 (works for any state).
  [[nodiscard]] la::Matrix<double> to_dense64() const;

  /// Replace the payload with dense FP64 content (decompression).
  void assign_dense64(la::Matrix<double> m);

  /// One-letter code for decision heat maps: 'D' dense FP64, 'S' dense FP32,
  /// 'H' dense FP16, 'B' dense BF16, 'L' LR FP64, 'l' LR FP32.
  [[nodiscard]] char decision_code() const noexcept;

  /// Count NaN/Inf entries in the stored payload (low-rank tiles scan the
  /// U/V factors, not the product). Health-sentinel path, O(payload).
  [[nodiscard]] std::size_t nonfinite_count() const;

  /// Append this tile as a self-describing binary record to `out`:
  /// fixed little-endian header (format, precision, rows, cols, rank)
  /// followed by the storage buffer verbatim, so a round trip is
  /// bit-identical for every (format, precision) pair. Checkpoint layer
  /// (gsx-ckpt-v1); little-endian hosts only.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parse one record written by serialize() from `in` at `offset`,
  /// advancing `offset` past it. Throws InvalidArgument on truncated or
  /// malformed input (never reads past `in`).
  static Tile deserialize(std::span<const std::uint8_t> in, std::size_t& offset);

 private:
  using Payload = std::variant<std::monostate, la::Matrix<double>, la::Matrix<float>,
                               la::Matrix<half>, la::Matrix<bfloat16>,
                               LowRankStorage<double>, LowRankStorage<float>>;

  TileFormat format_ = TileFormat::Dense;
  Precision precision_ = Precision::FP64;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Payload payload_;
};

}  // namespace gsx::tile
