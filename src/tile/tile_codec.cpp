#include "tile/tile_codec.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace gsx::tile {

namespace {

static_assert(std::endian::native == std::endian::little,
              "tile codec assumes a little-endian host");

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto base = out.size();
  out.resize(base + sizeof(v));
  std::memcpy(out.data() + base, &v, sizeof(v));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto base = out.size();
  out.resize(base + sizeof(v));
  std::memcpy(out.data() + base, &v, sizeof(v));
}

std::uint64_t read_u64(std::span<const std::uint8_t> in, std::size_t& offset) {
  GSX_REQUIRE(offset + sizeof(std::uint64_t) <= in.size(),
              "tile codec: truncated record");
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t& offset) {
  GSX_REQUIRE(offset + sizeof(std::uint32_t) <= in.size(),
              "tile codec: truncated frame header");
  std::uint32_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

template <typename T>
void append_matrix(std::vector<std::uint8_t>& out, const la::Matrix<T>& m) {
  const std::size_t nbytes = m.size() * sizeof(T);
  const auto base = out.size();
  out.resize(base + nbytes);
  if (nbytes > 0) std::memcpy(out.data() + base, m.data(), nbytes);
}

template <typename T>
la::Matrix<T> read_matrix(std::span<const std::uint8_t> in, std::size_t& offset,
                          std::size_t rows, std::size_t cols) {
  la::Matrix<T> m(rows, cols);
  const std::size_t nbytes = m.size() * sizeof(T);
  GSX_REQUIRE(offset + nbytes <= in.size(), "tile codec: truncated payload");
  if (nbytes > 0) std::memcpy(m.data(), in.data() + offset, nbytes);
  offset += nbytes;
  return m;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_tile(const Tile& t, std::vector<std::uint8_t>& out) {
  GSX_REQUIRE(t.rows() > 0 && t.cols() > 0, "tile codec: empty tile");
  out.push_back(static_cast<std::uint8_t>(t.format()));
  out.push_back(static_cast<std::uint8_t>(t.precision()));
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  append_u64(out, t.rows());
  append_u64(out, t.cols());
  append_u64(out, t.rank());
  if (t.format() == TileFormat::Dense) {
    switch (t.precision()) {
      case Precision::FP64: append_matrix(out, t.d64()); break;
      case Precision::FP32: append_matrix(out, t.d32()); break;
      case Precision::FP16: append_matrix(out, t.d16()); break;
      case Precision::BF16: append_matrix(out, t.dbf16()); break;
    }
    return;
  }
  if (t.precision() == Precision::FP64) {
    append_matrix(out, t.lr64().u);
    append_matrix(out, t.lr64().v);
  } else {
    append_matrix(out, t.lr32().u);
    append_matrix(out, t.lr32().v);
  }
}

Tile decode_tile(std::span<const std::uint8_t> in, std::size_t& offset) {
  GSX_REQUIRE(offset + 4 <= in.size(), "tile codec: truncated header");
  const auto format = static_cast<TileFormat>(in[offset]);
  const auto precision = static_cast<Precision>(in[offset + 1]);
  GSX_REQUIRE(in[offset] <= static_cast<std::uint8_t>(TileFormat::LowRank) &&
                  in[offset + 1] < kNumPrecisions,
              "tile codec: unknown format/precision tag");
  offset += 4;
  const std::uint64_t rows = read_u64(in, offset);
  const std::uint64_t cols = read_u64(in, offset);
  const std::uint64_t rank = read_u64(in, offset);
  // Reject absurd extents before sizing buffers from untrusted input.
  constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
  GSX_REQUIRE(rows > 0 && cols > 0 && rows < kMaxDim && cols < kMaxDim &&
                  rank <= std::min(rows, cols),
              "tile codec: implausible tile extents");
  if (format == TileFormat::Dense) {
    switch (precision) {
      case Precision::FP64: return Tile::dense64(read_matrix<double>(in, offset, rows, cols));
      case Precision::FP32: return Tile::dense32(read_matrix<float>(in, offset, rows, cols));
      case Precision::FP16: return Tile::dense16(read_matrix<half>(in, offset, rows, cols));
      case Precision::BF16:
        return Tile::dense_bf16(read_matrix<bfloat16>(in, offset, rows, cols));
    }
  }
  GSX_REQUIRE(precision == Precision::FP64 || precision == Precision::FP32,
              "tile codec: low-rank tiles are FP64/FP32 only");
  if (precision == Precision::FP64) {
    la::Matrix<double> u = read_matrix<double>(in, offset, rows, rank);
    la::Matrix<double> v = read_matrix<double>(in, offset, cols, rank);
    return Tile::lowrank64(std::move(u), std::move(v));
  }
  la::Matrix<float> u = read_matrix<float>(in, offset, rows, rank);
  la::Matrix<float> v = read_matrix<float>(in, offset, cols, rank);
  return Tile::lowrank32(std::move(u), std::move(v));
}

void encode_tile_framed(const Tile& t, std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> record;
  record.reserve(kTileFrameHeader + encoded_tile_bytes(t));
  encode_tile(t, record);
  append_u32(out, kTileFrameMagic);
  append_u32(out, crc32(record.data(), record.size()));
  append_u64(out, record.size());
  out.insert(out.end(), record.begin(), record.end());
}

Tile decode_tile_framed(std::span<const std::uint8_t> in, std::size_t& offset) {
  const std::uint32_t magic = read_u32(in, offset);
  GSX_REQUIRE(magic == kTileFrameMagic, "tile codec: bad frame magic");
  const std::uint32_t expected = read_u32(in, offset);
  const std::uint64_t len = read_u64(in, offset);
  GSX_REQUIRE(len >= 28 && offset + len <= in.size(),
              "tile codec: truncated framed record");
  const std::uint32_t actual = crc32(in.data() + offset, len);
  GSX_REQUIRE(actual == expected, "tile codec: CRC mismatch (corrupt tile record)");
  std::size_t record_off = offset;
  Tile t = decode_tile(in, record_off);
  GSX_REQUIRE(record_off == offset + len,
              "tile codec: framed length disagrees with record");
  offset += len;
  return t;
}

std::size_t encoded_tile_bytes(const Tile& t) {
  return 28 + t.bytes();  // 4 tag bytes + 3 u64 extents + stored payload
}

}  // namespace gsx::tile
