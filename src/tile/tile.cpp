#include "tile/tile.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/lapack.hpp"

namespace gsx::tile {

Tile Tile::dense64(la::Matrix<double> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP64;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense32(la::Matrix<float> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP32;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense16(la::Matrix<half> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP16;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense_bf16(la::Matrix<bfloat16> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::BF16;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::lowrank64(la::Matrix<double> u, la::Matrix<double> v) {
  GSX_REQUIRE(u.cols() == v.cols(), "lowrank64: U and V rank mismatch");
  Tile t;
  t.format_ = TileFormat::LowRank;
  t.precision_ = Precision::FP64;
  t.rows_ = u.rows();
  t.cols_ = v.rows();
  t.payload_ = LowRankStorage<double>{std::move(u), std::move(v)};
  return t;
}

Tile Tile::lowrank32(la::Matrix<float> u, la::Matrix<float> v) {
  GSX_REQUIRE(u.cols() == v.cols(), "lowrank32: U and V rank mismatch");
  Tile t;
  t.format_ = TileFormat::LowRank;
  t.precision_ = Precision::FP32;
  t.rows_ = u.rows();
  t.cols_ = v.rows();
  t.payload_ = LowRankStorage<float>{std::move(u), std::move(v)};
  return t;
}

std::size_t Tile::rank() const {
  if (format_ == TileFormat::Dense) return std::min(rows_, cols_);
  if (precision_ == Precision::FP64) return std::get<LowRankStorage<double>>(payload_).rank();
  return std::get<LowRankStorage<float>>(payload_).rank();
}

std::size_t Tile::bytes() const {
  const std::size_t elem = bytes_of(precision_);
  if (format_ == TileFormat::Dense) return rows_ * cols_ * elem;
  return (rows_ + cols_) * rank() * elem;
}

double Tile::frobenius() const {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return la::norm_frobenius<double>(d64().cview());
      case Precision::FP32: return la::norm_frobenius<float>(d32().cview());
      case Precision::FP16: {
        double s = 0.0;
        const auto& m = d16();
        for (std::size_t j = 0; j < m.cols(); ++j)
          for (std::size_t i = 0; i < m.rows(); ++i) {
            const double v = static_cast<double>(m(i, j));
            s += v * v;
          }
        return std::sqrt(s);
      }
      case Precision::BF16: {
        double s = 0.0;
        const auto& m = dbf16();
        for (std::size_t j = 0; j < m.cols(); ++j)
          for (std::size_t i = 0; i < m.rows(); ++i) {
            const double v = static_cast<double>(m(i, j));
            s += v * v;
          }
        return std::sqrt(s);
      }
    }
  }
  // ||U V^T||_F = ||R_u R_v^T||_F for QR factors; computing via the small
  // k x k Gram products avoids materializing the block.
  const la::Matrix<double> full = to_dense64();
  return la::norm_frobenius<double>(full.cview());
}

la::Matrix<double>& Tile::d64() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP64, "tile: not dense FP64");
  return std::get<la::Matrix<double>>(payload_);
}
const la::Matrix<double>& Tile::d64() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP64, "tile: not dense FP64");
  return std::get<la::Matrix<double>>(payload_);
}
la::Matrix<float>& Tile::d32() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP32, "tile: not dense FP32");
  return std::get<la::Matrix<float>>(payload_);
}
const la::Matrix<float>& Tile::d32() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP32, "tile: not dense FP32");
  return std::get<la::Matrix<float>>(payload_);
}
la::Matrix<half>& Tile::d16() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP16, "tile: not dense FP16");
  return std::get<la::Matrix<half>>(payload_);
}
const la::Matrix<half>& Tile::d16() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP16, "tile: not dense FP16");
  return std::get<la::Matrix<half>>(payload_);
}
la::Matrix<bfloat16>& Tile::dbf16() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::BF16, "tile: not dense BF16");
  return std::get<la::Matrix<bfloat16>>(payload_);
}
const la::Matrix<bfloat16>& Tile::dbf16() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::BF16, "tile: not dense BF16");
  return std::get<la::Matrix<bfloat16>>(payload_);
}
LowRankStorage<double>& Tile::lr64() {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP64, "tile: not LR FP64");
  return std::get<LowRankStorage<double>>(payload_);
}
const LowRankStorage<double>& Tile::lr64() const {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP64, "tile: not LR FP64");
  return std::get<LowRankStorage<double>>(payload_);
}
LowRankStorage<float>& Tile::lr32() {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP32, "tile: not LR FP32");
  return std::get<LowRankStorage<float>>(payload_);
}
const LowRankStorage<float>& Tile::lr32() const {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP32, "tile: not LR FP32");
  return std::get<LowRankStorage<float>>(payload_);
}

void Tile::convert_dense(Precision p) {
  GSX_REQUIRE(format_ == TileFormat::Dense, "convert_dense: tile is low-rank");
  if (p == precision_) return;
  const la::Matrix<double> full = to_dense64();
  switch (p) {
    case Precision::FP64:
      payload_ = full;
      break;
    case Precision::FP32: {
      la::Matrix<float> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
    case Precision::FP16: {
      la::Matrix<half> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
    case Precision::BF16: {
      la::Matrix<bfloat16> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
  }
  precision_ = p;
}

la::Matrix<double> Tile::to_dense64() const {
  la::Matrix<double> out(rows_, cols_);
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return std::get<la::Matrix<double>>(payload_);
      case Precision::FP32:
        la::convert(std::get<la::Matrix<float>>(payload_).cview(), out.view());
        return out;
      case Precision::FP16:
        la::convert(std::get<la::Matrix<half>>(payload_).cview(), out.view());
        return out;
      case Precision::BF16:
        la::convert(std::get<la::Matrix<bfloat16>>(payload_).cview(), out.view());
        return out;
    }
  }
  if (precision_ == Precision::FP64) {
    const auto& lr = std::get<LowRankStorage<double>>(payload_);
    if (lr.rank() > 0)
      la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, lr.u.cview(),
                       lr.v.cview(), 0.0, out.view());
    return out;
  }
  const auto& lr = std::get<LowRankStorage<float>>(payload_);
  if (lr.rank() > 0) {
    la::Matrix<float> tmp(rows_, cols_);
    la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, 1.0f, lr.u.cview(),
                    lr.v.cview(), 0.0f, tmp.view());
    la::convert(tmp.cview(), out.view());
  }
  return out;
}

void Tile::assign_dense64(la::Matrix<double> m) {
  rows_ = m.rows();
  cols_ = m.cols();
  format_ = TileFormat::Dense;
  precision_ = Precision::FP64;
  payload_ = std::move(m);
}

namespace {

template <typename T>
std::size_t count_nonfinite(const la::Matrix<T>& m) {
  std::size_t n = 0;
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(static_cast<double>(m(i, j)))) ++n;
  return n;
}

}  // namespace

std::size_t Tile::nonfinite_count() const {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return count_nonfinite(std::get<la::Matrix<double>>(payload_));
      case Precision::FP32: return count_nonfinite(std::get<la::Matrix<float>>(payload_));
      case Precision::FP16: return count_nonfinite(std::get<la::Matrix<half>>(payload_));
      case Precision::BF16:
        return count_nonfinite(std::get<la::Matrix<bfloat16>>(payload_));
    }
  }
  if (precision_ == Precision::FP64) {
    const auto& lr = std::get<LowRankStorage<double>>(payload_);
    return count_nonfinite(lr.u) + count_nonfinite(lr.v);
  }
  const auto& lr = std::get<LowRankStorage<float>>(payload_);
  return count_nonfinite(lr.u) + count_nonfinite(lr.v);
}

namespace {

static_assert(std::endian::native == std::endian::little,
              "tile serialization assumes a little-endian host");

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto base = out.size();
  out.resize(base + sizeof(v));
  std::memcpy(out.data() + base, &v, sizeof(v));
}

std::uint64_t read_u64(std::span<const std::uint8_t> in, std::size_t& offset) {
  GSX_REQUIRE(offset + sizeof(std::uint64_t) <= in.size(),
              "Tile::deserialize: truncated record");
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

template <typename T>
void append_matrix(std::vector<std::uint8_t>& out, const la::Matrix<T>& m) {
  const std::size_t nbytes = m.size() * sizeof(T);
  const auto base = out.size();
  out.resize(base + nbytes);
  if (nbytes > 0) std::memcpy(out.data() + base, m.data(), nbytes);
}

template <typename T>
la::Matrix<T> read_matrix(std::span<const std::uint8_t> in, std::size_t& offset,
                          std::size_t rows, std::size_t cols) {
  la::Matrix<T> m(rows, cols);
  const std::size_t nbytes = m.size() * sizeof(T);
  GSX_REQUIRE(offset + nbytes <= in.size(), "Tile::deserialize: truncated payload");
  if (nbytes > 0) std::memcpy(m.data(), in.data() + offset, nbytes);
  offset += nbytes;
  return m;
}

}  // namespace

void Tile::serialize(std::vector<std::uint8_t>& out) const {
  GSX_REQUIRE(!std::holds_alternative<std::monostate>(payload_),
              "Tile::serialize: empty tile");
  out.push_back(static_cast<std::uint8_t>(format_));
  out.push_back(static_cast<std::uint8_t>(precision_));
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  append_u64(out, rows_);
  append_u64(out, cols_);
  append_u64(out, rank());
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: append_matrix(out, std::get<la::Matrix<double>>(payload_)); break;
      case Precision::FP32: append_matrix(out, std::get<la::Matrix<float>>(payload_)); break;
      case Precision::FP16: append_matrix(out, std::get<la::Matrix<half>>(payload_)); break;
      case Precision::BF16: append_matrix(out, std::get<la::Matrix<bfloat16>>(payload_)); break;
    }
    return;
  }
  if (precision_ == Precision::FP64) {
    const auto& lr = std::get<LowRankStorage<double>>(payload_);
    append_matrix(out, lr.u);
    append_matrix(out, lr.v);
  } else {
    const auto& lr = std::get<LowRankStorage<float>>(payload_);
    append_matrix(out, lr.u);
    append_matrix(out, lr.v);
  }
}

Tile Tile::deserialize(std::span<const std::uint8_t> in, std::size_t& offset) {
  GSX_REQUIRE(offset + 4 <= in.size(), "Tile::deserialize: truncated header");
  const auto format = static_cast<TileFormat>(in[offset]);
  const auto precision = static_cast<Precision>(in[offset + 1]);
  GSX_REQUIRE(in[offset] <= static_cast<std::uint8_t>(TileFormat::LowRank) &&
                  in[offset + 1] < kNumPrecisions,
              "Tile::deserialize: unknown format/precision tag");
  offset += 4;
  const std::uint64_t rows = read_u64(in, offset);
  const std::uint64_t cols = read_u64(in, offset);
  const std::uint64_t rank = read_u64(in, offset);
  // Reject absurd extents before sizing buffers from untrusted input.
  constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
  GSX_REQUIRE(rows > 0 && cols > 0 && rows < kMaxDim && cols < kMaxDim &&
                  rank <= std::min(rows, cols),
              "Tile::deserialize: implausible tile extents");
  if (format == TileFormat::Dense) {
    switch (precision) {
      case Precision::FP64: return dense64(read_matrix<double>(in, offset, rows, cols));
      case Precision::FP32: return dense32(read_matrix<float>(in, offset, rows, cols));
      case Precision::FP16: return dense16(read_matrix<half>(in, offset, rows, cols));
      case Precision::BF16: return dense_bf16(read_matrix<bfloat16>(in, offset, rows, cols));
    }
  }
  GSX_REQUIRE(precision == Precision::FP64 || precision == Precision::FP32,
              "Tile::deserialize: low-rank tiles are FP64/FP32 only");
  if (precision == Precision::FP64) {
    la::Matrix<double> u = read_matrix<double>(in, offset, rows, rank);
    la::Matrix<double> v = read_matrix<double>(in, offset, cols, rank);
    return lowrank64(std::move(u), std::move(v));
  }
  la::Matrix<float> u = read_matrix<float>(in, offset, rows, rank);
  la::Matrix<float> v = read_matrix<float>(in, offset, cols, rank);
  return lowrank32(std::move(u), std::move(v));
}

char Tile::decision_code() const noexcept {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return 'D';
      case Precision::FP32: return 'S';
      case Precision::FP16: return 'H';
      case Precision::BF16: return 'B';
    }
  }
  return precision_ == Precision::FP64 ? 'L' : 'l';
}

}  // namespace gsx::tile
