#include "tile/tile.hpp"

#include "tile/tile_codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/lapack.hpp"

namespace gsx::tile {

Tile Tile::dense64(la::Matrix<double> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP64;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense32(la::Matrix<float> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP32;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense16(la::Matrix<half> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::FP16;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::dense_bf16(la::Matrix<bfloat16> m) {
  Tile t;
  t.format_ = TileFormat::Dense;
  t.precision_ = Precision::BF16;
  t.rows_ = m.rows();
  t.cols_ = m.cols();
  t.payload_ = std::move(m);
  return t;
}

Tile Tile::lowrank64(la::Matrix<double> u, la::Matrix<double> v) {
  GSX_REQUIRE(u.cols() == v.cols(), "lowrank64: U and V rank mismatch");
  Tile t;
  t.format_ = TileFormat::LowRank;
  t.precision_ = Precision::FP64;
  t.rows_ = u.rows();
  t.cols_ = v.rows();
  t.payload_ = LowRankStorage<double>{std::move(u), std::move(v)};
  return t;
}

Tile Tile::lowrank32(la::Matrix<float> u, la::Matrix<float> v) {
  GSX_REQUIRE(u.cols() == v.cols(), "lowrank32: U and V rank mismatch");
  Tile t;
  t.format_ = TileFormat::LowRank;
  t.precision_ = Precision::FP32;
  t.rows_ = u.rows();
  t.cols_ = v.rows();
  t.payload_ = LowRankStorage<float>{std::move(u), std::move(v)};
  return t;
}

std::size_t Tile::rank() const {
  if (format_ == TileFormat::Dense) return std::min(rows_, cols_);
  if (precision_ == Precision::FP64) return std::get<LowRankStorage<double>>(payload_).rank();
  return std::get<LowRankStorage<float>>(payload_).rank();
}

std::size_t Tile::bytes() const {
  const std::size_t elem = bytes_of(precision_);
  if (format_ == TileFormat::Dense) return rows_ * cols_ * elem;
  return (rows_ + cols_) * rank() * elem;
}

double Tile::frobenius() const {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return la::norm_frobenius<double>(d64().cview());
      case Precision::FP32: return la::norm_frobenius<float>(d32().cview());
      case Precision::FP16: {
        double s = 0.0;
        const auto& m = d16();
        for (std::size_t j = 0; j < m.cols(); ++j)
          for (std::size_t i = 0; i < m.rows(); ++i) {
            const double v = static_cast<double>(m(i, j));
            s += v * v;
          }
        return std::sqrt(s);
      }
      case Precision::BF16: {
        double s = 0.0;
        const auto& m = dbf16();
        for (std::size_t j = 0; j < m.cols(); ++j)
          for (std::size_t i = 0; i < m.rows(); ++i) {
            const double v = static_cast<double>(m(i, j));
            s += v * v;
          }
        return std::sqrt(s);
      }
    }
  }
  // ||U V^T||_F = ||R_u R_v^T||_F for QR factors; computing via the small
  // k x k Gram products avoids materializing the block.
  const la::Matrix<double> full = to_dense64();
  return la::norm_frobenius<double>(full.cview());
}

la::Matrix<double>& Tile::d64() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP64, "tile: not dense FP64");
  return std::get<la::Matrix<double>>(payload_);
}
const la::Matrix<double>& Tile::d64() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP64, "tile: not dense FP64");
  return std::get<la::Matrix<double>>(payload_);
}
la::Matrix<float>& Tile::d32() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP32, "tile: not dense FP32");
  return std::get<la::Matrix<float>>(payload_);
}
const la::Matrix<float>& Tile::d32() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP32, "tile: not dense FP32");
  return std::get<la::Matrix<float>>(payload_);
}
la::Matrix<half>& Tile::d16() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP16, "tile: not dense FP16");
  return std::get<la::Matrix<half>>(payload_);
}
const la::Matrix<half>& Tile::d16() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::FP16, "tile: not dense FP16");
  return std::get<la::Matrix<half>>(payload_);
}
la::Matrix<bfloat16>& Tile::dbf16() {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::BF16, "tile: not dense BF16");
  return std::get<la::Matrix<bfloat16>>(payload_);
}
const la::Matrix<bfloat16>& Tile::dbf16() const {
  GSX_REQUIRE(format_ == TileFormat::Dense && precision_ == Precision::BF16, "tile: not dense BF16");
  return std::get<la::Matrix<bfloat16>>(payload_);
}
LowRankStorage<double>& Tile::lr64() {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP64, "tile: not LR FP64");
  return std::get<LowRankStorage<double>>(payload_);
}
const LowRankStorage<double>& Tile::lr64() const {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP64, "tile: not LR FP64");
  return std::get<LowRankStorage<double>>(payload_);
}
LowRankStorage<float>& Tile::lr32() {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP32, "tile: not LR FP32");
  return std::get<LowRankStorage<float>>(payload_);
}
const LowRankStorage<float>& Tile::lr32() const {
  GSX_REQUIRE(format_ == TileFormat::LowRank && precision_ == Precision::FP32, "tile: not LR FP32");
  return std::get<LowRankStorage<float>>(payload_);
}

void Tile::convert_dense(Precision p) {
  GSX_REQUIRE(format_ == TileFormat::Dense, "convert_dense: tile is low-rank");
  if (p == precision_) return;
  const la::Matrix<double> full = to_dense64();
  switch (p) {
    case Precision::FP64:
      payload_ = full;
      break;
    case Precision::FP32: {
      la::Matrix<float> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
    case Precision::FP16: {
      la::Matrix<half> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
    case Precision::BF16: {
      la::Matrix<bfloat16> m(rows_, cols_);
      la::convert(full.cview(), m.view());
      payload_ = std::move(m);
      break;
    }
  }
  precision_ = p;
}

la::Matrix<double> Tile::to_dense64() const {
  la::Matrix<double> out(rows_, cols_);
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return std::get<la::Matrix<double>>(payload_);
      case Precision::FP32:
        la::convert(std::get<la::Matrix<float>>(payload_).cview(), out.view());
        return out;
      case Precision::FP16:
        la::convert(std::get<la::Matrix<half>>(payload_).cview(), out.view());
        return out;
      case Precision::BF16:
        la::convert(std::get<la::Matrix<bfloat16>>(payload_).cview(), out.view());
        return out;
    }
  }
  if (precision_ == Precision::FP64) {
    const auto& lr = std::get<LowRankStorage<double>>(payload_);
    if (lr.rank() > 0)
      la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, 1.0, lr.u.cview(),
                       lr.v.cview(), 0.0, out.view());
    return out;
  }
  const auto& lr = std::get<LowRankStorage<float>>(payload_);
  if (lr.rank() > 0) {
    la::Matrix<float> tmp(rows_, cols_);
    la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, 1.0f, lr.u.cview(),
                    lr.v.cview(), 0.0f, tmp.view());
    la::convert(tmp.cview(), out.view());
  }
  return out;
}

void Tile::assign_dense64(la::Matrix<double> m) {
  rows_ = m.rows();
  cols_ = m.cols();
  format_ = TileFormat::Dense;
  precision_ = Precision::FP64;
  payload_ = std::move(m);
}

namespace {

template <typename T>
std::size_t count_nonfinite(const la::Matrix<T>& m) {
  std::size_t n = 0;
  for (std::size_t j = 0; j < m.cols(); ++j)
    for (std::size_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(static_cast<double>(m(i, j)))) ++n;
  return n;
}

}  // namespace

std::size_t Tile::nonfinite_count() const {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return count_nonfinite(std::get<la::Matrix<double>>(payload_));
      case Precision::FP32: return count_nonfinite(std::get<la::Matrix<float>>(payload_));
      case Precision::FP16: return count_nonfinite(std::get<la::Matrix<half>>(payload_));
      case Precision::BF16:
        return count_nonfinite(std::get<la::Matrix<bfloat16>>(payload_));
    }
  }
  if (precision_ == Precision::FP64) {
    const auto& lr = std::get<LowRankStorage<double>>(payload_);
    return count_nonfinite(lr.u) + count_nonfinite(lr.v);
  }
  const auto& lr = std::get<LowRankStorage<float>>(payload_);
  return count_nonfinite(lr.u) + count_nonfinite(lr.v);
}

void Tile::serialize(std::vector<std::uint8_t>& out) const {
  GSX_REQUIRE(!std::holds_alternative<std::monostate>(payload_),
              "Tile::serialize: empty tile");
  encode_tile(*this, out);
}

Tile Tile::deserialize(std::span<const std::uint8_t> in, std::size_t& offset) {
  return decode_tile(in, offset);
}

char Tile::decision_code() const noexcept {
  if (format_ == TileFormat::Dense) {
    switch (precision_) {
      case Precision::FP64: return 'D';
      case Precision::FP32: return 'S';
      case Precision::FP16: return 'H';
      case Precision::BF16: return 'B';
    }
  }
  return precision_ == Precision::FP64 ? 'L' : 'l';
}

}  // namespace gsx::tile
