#include "runtime/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace gsx::rt {

void write_trace_json(const TaskGraph& graph, const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_trace_json: cannot open " + path);
  os << "[\n";
  bool first = true;
  for (const TraceEvent& ev : graph.trace()) {
    if (!first) os << ",\n";
    first = false;
    // Timestamps in microseconds, as the format expects.
    os << R"(  {"name": ")" << ev.name << R"(", "cat": "task", "ph": "X", "ts": )"
       << std::fixed << std::setprecision(3) << ev.start_seconds * 1e6 << R"(, "dur": )"
       << (ev.end_seconds - ev.start_seconds) * 1e6 << R"(, "pid": 1, "tid": )"
       << ev.worker << "}";
  }
  os << "\n]\n";
  GSX_REQUIRE(os.good(), "write_trace_json: write failed for " + path);
}

std::string utilization_summary(const TaskGraph& graph, std::size_t num_workers) {
  std::vector<double> busy(num_workers, 0.0);
  std::vector<std::size_t> count(num_workers, 0);
  double horizon = 0.0;
  for (const TraceEvent& ev : graph.trace()) {
    if (ev.worker < num_workers) {
      busy[ev.worker] += ev.end_seconds - ev.start_seconds;
      ++count[ev.worker];
    }
    horizon = std::max(horizon, ev.end_seconds);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t w = 0; w < num_workers; ++w) {
    const double pct = horizon > 0.0 ? 100.0 * busy[w] / horizon : 0.0;
    os << "worker " << w << ": " << count[w] << " tasks, " << pct << "% busy\n";
  }
  return os.str();
}

}  // namespace gsx::rt
