#include "runtime/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gsx::rt {

namespace {

void write_event(std::ostream& os, const std::string& name, const std::string& cat,
                 std::size_t tid, double start_seconds, double end_seconds,
                 const std::string& args) {
  // Timestamps in microseconds, as the format expects.
  os << R"(  {"name": ")" << name << R"(", "cat": ")" << cat << R"(", "ph": "X", "ts": )"
     << std::fixed << std::setprecision(3) << start_seconds * 1e6 << R"(, "dur": )"
     << (end_seconds - start_seconds) * 1e6 << R"(, "pid": 1, "tid": )" << tid;
  if (!args.empty()) os << R"(, "args": {)" << args << "}";
  os << "}";
}

}  // namespace

void write_trace_json(const TaskGraph& graph, const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_trace_json: cannot open " + path);
  os << "[\n";
  bool first = true;
  for (const TraceEvent& ev : graph.trace()) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, ev.name, "task", ev.worker, ev.start_seconds, ev.end_seconds, ev.args);
  }
  os << "\n]\n";
  GSX_REQUIRE(os.good(), "write_trace_json: write failed for " + path);
}

void write_profile_trace_json(const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_profile_trace_json: cannot open " + path);
  const std::vector<obs::Span> spans = obs::trace_spans();
  os << "[\n";
  // Name the pipeline-phase row so Perfetto labels it.
  os << R"(  {"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << obs::kPipelineTid
     << R"(, "args": {"name": "pipeline"}})";
  for (const obs::Span& s : spans) {
    os << ",\n";
    write_event(os, s.name, s.category, s.tid, s.start_seconds, s.end_seconds, s.args);
  }
  os << "\n]\n";
  GSX_REQUIRE(os.good(), "write_profile_trace_json: write failed for " + path);
}

std::string utilization_summary(const TaskGraph& graph, std::size_t num_workers) {
  std::vector<double> busy(num_workers, 0.0);
  std::vector<std::size_t> count(num_workers, 0);
  double horizon = 0.0;
  for (const TraceEvent& ev : graph.trace()) {
    if (ev.worker < num_workers) {
      busy[ev.worker] += ev.end_seconds - ev.start_seconds;
      ++count[ev.worker];
    }
    horizon = std::max(horizon, ev.end_seconds);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t w = 0; w < num_workers; ++w) {
    const double pct = horizon > 0.0 ? 100.0 * busy[w] / horizon : 0.0;
    os << "worker " << w << ": " << count[w] << " tasks, " << pct << "% busy\n";
  }
  return os.str();
}

}  // namespace gsx::rt
