// Execution-trace export in the Chrome tracing ("catapult") JSON format.
//
// Load the produced files in chrome://tracing or Perfetto. Two exports:
//  * write_trace_json — one TaskGraph run: the per-worker task timeline of a
//    factorization (the load-imbalance view the paper uses to motivate the
//    dynamic runtime), with per-task kernel metadata (precision, rank,
//    flops) when obs is enabled.
//  * write_profile_trace_json — the whole recorded pipeline from the obs
//    span store: phase spans (assembly -> policy -> compress -> factorize ->
//    solve -> krige) on a dedicated "pipeline" row plus every traced kernel
//    task, all on one clock across MLE iterations.
#pragma once

#include <string>

#include "runtime/task_graph.hpp"

namespace gsx::rt {

/// Write the recorded trace (set_tracing(true) before run()) to `path`.
/// Each task becomes a complete ("X") event on its worker's row.
void write_trace_json(const TaskGraph& graph, const std::string& path);

/// Write every span recorded in the obs trace store (phases + task events
/// from all profiled TaskGraph runs) to `path` as one Chrome trace.
void write_profile_trace_json(const std::string& path);

/// Render a compact per-worker utilization summary from the trace.
std::string utilization_summary(const TaskGraph& graph, std::size_t num_workers);

}  // namespace gsx::rt
