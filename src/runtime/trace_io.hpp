// Execution-trace export in the Chrome tracing ("catapult") JSON format.
//
// Load the produced file in chrome://tracing or Perfetto to inspect the
// per-worker task timeline of a factorization — the load-imbalance view the
// paper uses to motivate the dynamic runtime.
#pragma once

#include <string>

#include "runtime/task_graph.hpp"

namespace gsx::rt {

/// Write the recorded trace (set_tracing(true) before run()) to `path`.
/// Each task becomes a complete ("X") event on its worker's row.
void write_trace_json(const TaskGraph& graph, const std::string& path);

/// Render a compact per-worker utilization summary from the trace.
std::string utilization_summary(const TaskGraph& graph, std::size_t num_workers);

}  // namespace gsx::rt
