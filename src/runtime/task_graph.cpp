#include "runtime/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/analytics.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsx::rt {

std::size_t TaskGraph::submit(std::string name, const std::vector<Dep>& deps,
                              std::function<void()> body, int priority) {
  GSX_REQUIRE(body != nullptr, "submit: task body must be callable");
  return submit_impl(std::move(name), deps, std::move(body), priority,
                     /*external=*/false);
}

std::size_t TaskGraph::submit_external(std::string name,
                                       const std::vector<Dep>& deps) {
  return submit_impl(std::move(name), deps, nullptr, /*priority=*/0,
                     /*external=*/true);
}

std::size_t TaskGraph::submit_impl(std::string name, const std::vector<Dep>& deps,
                                   std::function<void()> body, int priority,
                                   bool external) {
  const std::size_t id = tasks_.size();
  Task t;
  t.name = std::move(name);
  t.body = std::move(body);
  t.priority = priority;
  t.external = external;
  tasks_.push_back(std::move(t));
  last_edge_target_.push_back(-1);

  for (const Dep& d : deps) {
    DatumState& st = data_[d.datum.key];
    switch (d.mode) {
      case Access::Read:
        if (st.last_writer >= 0) add_edge(static_cast<std::size_t>(st.last_writer), id);
        st.readers_since_write.push_back(id);
        break;
      case Access::Write:
      case Access::ReadWrite:
        if (st.readers_since_write.empty()) {
          if (st.last_writer >= 0) add_edge(static_cast<std::size_t>(st.last_writer), id);
        } else {
          for (std::size_t r : st.readers_since_write)
            if (r != id) add_edge(r, id);
          // Readers already depend on last_writer, so the WAW edge through
          // them is transitively implied, but keep the direct edge when the
          // writer itself also read (ReadWrite chains).
          if (st.last_writer >= 0 &&
              std::find(st.readers_since_write.begin(), st.readers_since_write.end(),
                        static_cast<std::size_t>(st.last_writer)) ==
                  st.readers_since_write.end()) {
            add_edge(static_cast<std::size_t>(st.last_writer), id);
          }
        }
        st.last_writer = static_cast<std::ptrdiff_t>(id);
        st.readers_since_write.clear();
        if (d.mode == Access::ReadWrite) {
          // A ReadWrite also counts as a reader of its own write for
          // subsequent writers; not needed — successor writers depend on the
          // last_writer directly.
        }
        break;
    }
  }
  return id;
}

void TaskGraph::add_edge(std::size_t from, std::size_t to) {
  if (from == to) return;
  // Cheap de-duplication: tile algorithms generate runs of identical edges.
  if (last_edge_target_[from] == static_cast<std::ptrdiff_t>(to)) return;
  tasks_[from].successors.push_back(to);
  last_edge_target_[from] = static_cast<std::ptrdiff_t>(to);
  ++tasks_[to].num_predecessors;
  ++stats_.num_edges;
}

namespace {

/// Min-heap comparator selecting the highest-priority, earliest-submitted task.
struct ReadyCompare {
  const std::vector<int>* priorities;
  bool operator()(std::size_t a, std::size_t b) const {
    const int pa = (*priorities)[a];
    const int pb = (*priorities)[b];
    if (pa != pb) return pa < pb;  // higher priority first
    return a > b;                  // earlier submission first
  }
};

}  // namespace

// Live scheduler state for one run(). Hoisted out of run()'s stack frame so
// notify() — called from threads the graph does not own, e.g. the transport
// receiver — can complete external tasks and wake workers through the same
// mutex/cv discipline the worker pool uses. All methods require ctx->mtx held.
struct TaskGraph::RunCtx {
  TaskGraph& g;
  std::size_t num_workers;

  std::mutex mtx;
  std::condition_variable cv;
  std::vector<std::size_t> remaining;
  std::vector<int> priorities;
  std::vector<char> notified;       // external: notify() seen
  std::vector<char> done_external;  // external: counted into `completed`
  std::deque<std::size_t> fifo;
  std::priority_queue<std::size_t, std::vector<std::size_t>, ReadyCompare> prio;
  // WorkStealing: one deque per worker; owner works LIFO on the back, idle
  // workers steal FIFO from the front of the fullest deque.
  std::vector<std::deque<std::size_t>> deques;
  std::size_t ready_count = 0;
  std::size_t steal_count = 0;
  std::size_t completed = 0;
  std::exception_ptr first_error;
  std::atomic<bool> aborting{false};
  std::atomic<std::size_t> inflight{0};
  obs::Gauge& queue_depth_gauge;
  /// Process-wide run() generation, folded into TaskStart/TaskEnd/TaskDepEdge
  /// identities so concurrent graphs (in-process dist ranks, serving solves)
  /// replay as separate DAGs. 16 bits: wraps harmlessly — generations only
  /// need to be distinct among graphs alive in one flight-ring window.
  std::uint64_t generation = 0;
  /// False when this run exceeds the packed TaskStart/TaskEnd/TaskDepEdge
  /// field widths (8-bit worker lanes, 24-bit edge endpoints): the DAG
  /// history events are skipped rather than emitted with aliased identities.
  bool dag_events = true;

  RunCtx(TaskGraph& graph, std::size_t workers, obs::Gauge& gauge)
      : g(graph),
        num_workers(workers),
        remaining(graph.tasks_.size()),
        priorities(graph.tasks_.size()),
        notified(graph.tasks_.size(), 0),
        done_external(graph.tasks_.size(), 0),
        prio(ReadyCompare{&priorities}),
        deques(workers),
        queue_depth_gauge(gauge) {
    for (std::size_t i = 0; i < graph.tasks_.size(); ++i) {
      remaining[i] = graph.tasks_[i].num_predecessors;
      priorities[i] = graph.tasks_[i].priority;
    }
  }

  bool have_ready() const { return ready_count > 0; }

  void push_ready(std::size_t id, std::size_t worker_hint) {
    switch (g.policy_) {
      case SchedPolicy::Priority: prio.push(id); break;
      case SchedPolicy::Lifo: fifo.push_front(id); break;
      case SchedPolicy::Fifo: fifo.push_back(id); break;
      case SchedPolicy::WorkStealing:
        deques[worker_hint % num_workers].push_back(id);
        break;
    }
    ++ready_count;
    queue_depth_gauge.set(static_cast<double>(ready_count));
    GSX_FLIGHT(obs::EventKind::TaskReady, 0, id, ready_count, 0.0);
  }

  std::size_t pop_ready(std::size_t worker) {
    std::size_t id = 0;
    switch (g.policy_) {
      case SchedPolicy::Priority:
        id = prio.top();
        prio.pop();
        break;
      case SchedPolicy::Lifo:
      case SchedPolicy::Fifo:
        id = fifo.front();
        fifo.pop_front();
        break;
      case SchedPolicy::WorkStealing: {
        auto& own = deques[worker % num_workers];
        if (!own.empty()) {
          id = own.back();
          own.pop_back();
        } else {
          // Steal from the fullest victim's front.
          std::size_t victim = num_workers;
          std::size_t best = 0;
          for (std::size_t w = 0; w < num_workers; ++w) {
            if (deques[w].size() > best) {
              best = deques[w].size();
              victim = w;
            }
          }
          id = deques[victim].front();
          deques[victim].pop_front();
          ++steal_count;
        }
        break;
      }
    }
    --ready_count;
    queue_depth_gauge.set(static_cast<double>(ready_count));
    return id;
  }

  // Release `id`'s successors after it completed: non-external successors
  // whose counter hits zero become ready; external successors complete in
  // place if already notified (their "execution" is the notification).
  // Returns the number of tasks pushed ready (== cv.notify_one budget).
  std::size_t propagate(std::size_t id, std::size_t worker_hint) {
    std::size_t newly = 0;
    for (std::size_t s : g.tasks_[id].successors) {
      GSX_REQUIRE(remaining[s] > 0, "runtime: dependency counter underflow");
      if (--remaining[s] == 0) {
        if (g.tasks_[s].external) {
          if (notified[s]) newly += complete_external(s, worker_hint);
        } else {
          push_ready(s, worker_hint);
          ++newly;
        }
      }
    }
    return newly;
  }

  // Complete one external task (preds done AND notified) and cascade through
  // any external-only chains hanging off it. Recursion depth is bounded by
  // the longest external chain in the DAG (one, for the dist backend's
  // recv tasks).
  std::size_t complete_external(std::size_t id, std::size_t worker_hint) {
    if (done_external[id]) return 0;
    done_external[id] = 1;
    ++completed;
    g.exec_order_.push_back(id);
    GSX_FLIGHT(obs::EventKind::TaskDone, 0, id, /*worker=*/num_workers, 0.0);
    // Externals have no body: the notify() instant is both start and end
    // (TaskEnd only, duration 0 — analytics reconstructs a point task).
    if (dag_events)
      GSX_FLIGHT(obs::EventKind::TaskEnd, 0,
                 obs::task_ident(generation, obs::kExternalWorker, id),
                 obs::pack_op_name(g.tasks_[id].name), 0.0);
    return propagate(id, worker_hint);
  }

  // notify() body once the context is published. Takes the lock itself.
  void handle_notify(std::size_t id) {
    std::size_t newly = 0;
    bool quiesced = false;
    {
      std::lock_guard lk(mtx);
      if (notified[id]) return;  // idempotent
      notified[id] = 1;
      if (remaining[id] == 0) newly = complete_external(id, 0);
      quiesced = completed == g.tasks_.size();
    }
    if (quiesced) {
      cv.notify_all();
    } else {
      for (std::size_t i = 0; i < newly; ++i) cv.notify_one();
    }
  }
};

void TaskGraph::notify(std::size_t task_id) {
  GSX_REQUIRE(task_id < tasks_.size() && tasks_[task_id].external,
              "notify: not an external task id");
  // Announce before loading the context (both seq_cst): run()'s teardown
  // stores nullptr and then waits for this counter to drain, so either this
  // load sees the unpublish (and parks below) or the teardown sees the
  // increment and keeps the context alive until handle_notify returns.
  notify_inflight_.fetch_add(1, std::memory_order_seq_cst);
  RunCtx* ctx = run_ctx_.load(std::memory_order_seq_cst);
  if (ctx != nullptr) {
    ctx->handle_notify(task_id);
    notify_inflight_.fetch_sub(1, std::memory_order_release);
    return;
  }
  notify_inflight_.fetch_sub(1, std::memory_order_release);
  std::lock_guard lk(prenotify_mtx_);
  // Re-check under the same lock run() takes when publishing the context
  // and folding prenotifications, so this notification is seen exactly once.
  // Holding the lock here also excludes run()'s unpublish, which keeps the
  // context alive for the duration of the call.
  ctx = run_ctx_.load(std::memory_order_acquire);
  if (ctx == nullptr) {
    prenotified_.push_back(task_id);
    return;
  }
  ctx->handle_notify(task_id);
}

void TaskGraph::run(std::size_t num_workers) {
  GSX_REQUIRE(num_workers >= 1, "run: need at least one worker");
  stats_.num_tasks = tasks_.size();
  exec_order_.clear();
  trace_.clear();
  if (tasks_.empty()) return;

  // The registry lookup takes a mutex; this path runs once per task, so
  // resolve the gauge once (references stay valid across Registry::reset()).
  static obs::Gauge& queue_depth_gauge =
      obs::Registry::instance().gauge("taskgraph.queue_depth");
  static obs::Gauge& inflight_gauge =
      obs::Registry::instance().gauge("taskgraph.inflight");

  RunCtx ctx(*this, num_workers, queue_depth_gauge);

  // Stamp this run's DAG identity and ship the dependency edges to the
  // flight ring up front, so the dump carries a replayable execution history
  // (obs/analytics.hpp). One event per edge on the caller's ring; graphs
  // past the ring capacity lose their oldest edges, which analytics
  // tolerates (it degrades to interval-only reporting).
  {
    static std::atomic<std::uint64_t> run_generation{0};
    ctx.generation = run_generation.fetch_add(1, std::memory_order_relaxed) & 0xFFFF;
  }
  // The packed identities carry 8-bit worker lanes (0xFF reserved for
  // externals) and 24-bit TaskDepEdge endpoints (analytics.hpp); a run past
  // either width would alias worker 255 with externals or orphan edges from
  // their tasks. Degrade explicitly: warn once, skip the DAG events, and let
  // analytics fall back to the interval-only TaskRun/TaskDone vocabulary.
  ctx.dag_events =
      num_workers <= obs::kExternalWorker && tasks_.size() <= 0xFFFFFFu;
  if (!ctx.dag_events) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed))
      std::fprintf(stderr,
                   "gsx: DAG flight events disabled for this run: %zu workers / "
                   "%zu tasks exceed the packed event fields\n",
                   num_workers, tasks_.size());
  }
#ifndef GSX_TELEMETRY_DISABLED
  if (ctx.dag_events) {
    for (std::size_t from = 0; from < tasks_.size(); ++from) {
      for (const std::size_t to : tasks_[from].successors) {
        GSX_FLIGHT(obs::EventKind::TaskDepEdge, 0,
                   obs::dep_ident(ctx.generation, to, from),
                   obs::pack_op_name(tasks_[to].name), 0.0);
      }
    }
  }
#endif

  // Seed tasks with no predecessors. Externals never enter the ready queues:
  // a zero-predecessor external simply waits for its notify().
  {
    std::lock_guard lk(ctx.mtx);
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      if (ctx.remaining[i] == 0 && !tasks_[i].external) ctx.push_ready(i, i);
  }

  // Publish the context, then replay notifications that arrived before run().
  // Both under prenotify_mtx_ so a concurrent notify() either parks in
  // prenotified_ (and is replayed here) or sees the context (and goes through
  // handle_notify directly) — never both, never neither.
  std::vector<std::size_t> pre;
  {
    std::lock_guard lk(prenotify_mtx_);
    run_ctx_.store(&ctx, std::memory_order_release);
    pre = std::move(prenotified_);
    prenotified_.clear();
  }
  for (std::size_t id : pre) ctx.handle_notify(id);

  Timer wall;
  auto worker_loop = [&](std::size_t worker_id) {
    for (;;) {
      std::size_t id;
      {
        std::unique_lock lk(ctx.mtx);
        ctx.cv.wait(lk, [&] {
          return ctx.have_ready() || ctx.completed == tasks_.size() ||
                 ctx.aborting.load();
        });
        if (ctx.completed == tasks_.size() ||
            (ctx.aborting.load() && !ctx.have_ready()))
          return;
        if (!ctx.have_ready()) continue;
        id = ctx.pop_ready(worker_id);
        exec_order_.push_back(id);
      }

      Task& t = tasks_[id];
      GSX_FLIGHT(obs::EventKind::TaskRun, 0, id, worker_id, 0.0);
      if (ctx.dag_events)
        GSX_FLIGHT(obs::EventKind::TaskStart, 0,
                   obs::task_ident(ctx.generation, worker_id, id),
                   obs::pack_op_name(t.name),
                   static_cast<double>(t.num_predecessors));
      inflight_gauge.set(static_cast<double>(
          ctx.inflight.fetch_add(1, std::memory_order_relaxed) + 1));
      const double t0 = wall.seconds();
      if (!ctx.aborting.load(std::memory_order_acquire)) {
        try {
          t.body();
        } catch (...) {
          {
            std::lock_guard lk(ctx.mtx);
            if (!ctx.first_error) ctx.first_error = std::current_exception();
            ctx.aborting.store(true, std::memory_order_release);
          }
          // Everyone must observe the abort, including sleepers with no
          // ready work: this is one of the two broadcast points.
          ctx.cv.notify_all();
        }
      }
      const double t1 = wall.seconds();
      t.duration_seconds = t1 - t0;
      inflight_gauge.set(static_cast<double>(
          ctx.inflight.fetch_sub(1, std::memory_order_relaxed) - 1));
      GSX_FLIGHT(obs::EventKind::TaskDone, 0, id, worker_id, t.duration_seconds);
      if (ctx.dag_events)
        GSX_FLIGHT(obs::EventKind::TaskEnd, 0,
                   obs::task_ident(ctx.generation, worker_id, id),
                   obs::pack_op_name(t.name), t.duration_seconds);

      // Kernel-attached metadata (precision, rank, flops) for the trace.
      // Always drained so a stale annotation never leaks onto a later task.
      const auto ann = obs::take_task_annotation();
      std::string args;
      if (tracing_ && ann) args = obs::annotation_args(*ann);

      std::size_t newly_ready = 0;
      bool quiesced = false;
      {
        std::lock_guard lk(ctx.mtx);
        if (tracing_)
          trace_.push_back(TraceEvent{t.name, worker_id, t0, t1, std::move(args)});
        ++ctx.completed;
        newly_ready = ctx.propagate(id, worker_id);
        quiesced = ctx.completed == tasks_.size();
      }
      // Wake one sleeper per newly-ready task — a broadcast here stampedes
      // every idle worker onto one mutex per completed task. Notifies that
      // land on busy workers are harmless: cv.wait re-checks have_ready()
      // before sleeping. Broadcast only at quiesce (and at abort, above),
      // where *all* waiters must observe the terminal state.
      if (quiesced) {
        ctx.cv.notify_all();
      } else {
        for (std::size_t i = 0; i < newly_ready; ++i) ctx.cv.notify_one();
      }
    }
  };

  if (num_workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w)
      pool.emplace_back(worker_loop, w);
    // jthread joins on destruction (CP.25): scope end is the barrier.
  }

  // Unpublish before ctx leaves scope. Late notifications (e.g. a transport
  // message after an abort tore the run down) park harmlessly in prenotified_.
  {
    std::lock_guard lk(prenotify_mtx_);
    run_ctx_.store(nullptr, std::memory_order_seq_cst);
  }
  // Drain notifiers that loaded the context before the unpublish: ctx (its
  // mutex and cv) must outlive their handle_notify calls, or a late
  // transport delivery signals a destroyed condition variable.
  while (notify_inflight_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();

  stats_.makespan_seconds = wall.seconds();
  stats_.steals = ctx.steal_count;
  stats_.total_task_seconds = 0.0;
  for (const Task& t : tasks_) stats_.total_task_seconds += t.duration_seconds;
  compute_critical_path();

  auto& reg = obs::Registry::instance();
  reg.gauge("taskgraph.workers").set(static_cast<double>(num_workers));
  if (stats_.makespan_seconds > 0.0) {
    reg.gauge("taskgraph.worker_utilization")
        .set(stats_.total_task_seconds /
             (stats_.makespan_seconds * static_cast<double>(num_workers)));
  }

  if (ctx.first_error) std::rethrow_exception(ctx.first_error);
  GSX_REQUIRE(ctx.completed == tasks_.size(), "runtime: DAG did not quiesce (cycle?)");
}

void TaskGraph::compute_critical_path() {
  // Longest path by task count and by measured duration, via reverse
  // topological order (tasks_ indices are already topologically consistent:
  // every edge goes from a lower to a higher submission index).
  const std::size_t n = tasks_.size();
  std::vector<std::size_t> depth(n, 1);
  std::vector<double> wdepth(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) wdepth[i] = tasks_[i].duration_seconds;
  std::size_t best = 0;
  double wbest = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t s : tasks_[i].successors) {
      depth[i] = std::max(depth[i], 1 + depth[s]);
      wdepth[i] = std::max(wdepth[i], tasks_[i].duration_seconds + wdepth[s]);
    }
    best = std::max(best, depth[i]);
    wbest = std::max(wbest, wdepth[i]);
  }
  stats_.critical_path_tasks = best;
  stats_.critical_path_seconds = wbest;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t num_workers,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  num_workers = std::max<std::size_t>(1, std::min(num_workers, n));
  if (num_workers == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex err_mtx;
  {
    std::vector<std::jthread> pool;
    pool.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      pool.emplace_back([&] {
        // The abort check in the claim loop makes the pool quiesce promptly
        // after a sibling's exception instead of grinding through the
        // remaining iterations whose results would be discarded anyway.
        while (!abort.load(std::memory_order_acquire)) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          try {
            body(i);
          } catch (...) {
            {
              std::lock_guard lk(err_mtx);
              if (!first_error) first_error = std::current_exception();
            }
            abort.store(true, std::memory_order_release);
            return;
          }
        }
      });
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gsx::rt
