// Dataflow task graph: the dynamic-runtime substrate standing in for PaRSEC.
//
// Tasks are submitted with declared data accesses (sequential task flow, as
// in StarPU/PaRSEC's DTD interface); the graph derives
// read-after-write, write-after-read and write-after-write dependencies and
// executes the DAG asynchronously on a worker pool. The tile Cholesky
// variants submit one task per kernel (POTRF/TRSM/SYRK/GEMM) plus on-demand
// precision-conversion tasks, exactly the structure the paper builds inside
// PaRSEC. Priorities let the panel chain (the critical path of Cholesky)
// overtake trailing updates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gsx::rt {

/// Access mode of one task on one datum.
enum class Access : unsigned char { Read, Write, ReadWrite };

/// Opaque datum identity. Any stable pointer works (e.g. a tile's address);
/// purely logical data may use small integers cast through `from_index`.
struct DatumId {
  std::uintptr_t key = 0;

  /// Tag bit separating logical-index keys from pointer-derived keys. User
  /// pointers on every supported 64-bit ABI (x86-64 canonical addresses,
  /// AArch64 with or without TBI ignored in userspace mappings) have the top
  /// bit clear, so `from_pointer` and `from_index` can never collide. A
  /// 32-bit or exotic target where that assumption breaks fails to compile
  /// here instead of silently merging dependence chains.
  static constexpr std::uintptr_t kIndexTag =
      std::uintptr_t{1} << (std::numeric_limits<std::uintptr_t>::digits - 1);
  static_assert(std::numeric_limits<std::uintptr_t>::digits >= 64,
                "DatumId tags logical indices in the top pointer bit; a"
                " 64-bit uintptr_t is required so user-space addresses"
                " cannot reach the tag");

  static DatumId from_pointer(const void* p) noexcept {
    return DatumId{reinterpret_cast<std::uintptr_t>(p)};
  }
  static DatumId from_index(std::size_t i) noexcept {
    return DatumId{kIndexTag | i};
  }
  friend bool operator==(DatumId a, DatumId b) noexcept { return a.key == b.key; }
};

/// One declared access.
struct Dep {
  DatumId datum;
  Access mode = Access::Read;
};

/// Ready-task selection policy.
enum class SchedPolicy : unsigned char {
  Fifo,          ///< submission order among ready tasks
  Lifo,          ///< depth-first: favours locality down the DAG
  Priority,      ///< highest user priority first, FIFO tie-break
  WorkStealing,  ///< per-worker deques; successors stay with the finishing
                 ///< worker (locality), idle workers steal from the fullest
};

/// Post-execution DAG statistics.
struct GraphStats {
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  std::size_t critical_path_tasks = 0;   ///< longest chain, in tasks
  double critical_path_seconds = 0.0;    ///< longest chain, measured durations
  double total_task_seconds = 0.0;       ///< sum of task durations
  double makespan_seconds = 0.0;         ///< wall time of run()
  std::size_t steals = 0;                ///< WorkStealing: tasks taken remotely
  double parallel_efficiency(std::size_t workers) const {
    return (makespan_seconds > 0.0 && workers > 0)
               ? total_task_seconds / (makespan_seconds * static_cast<double>(workers))
               : 0.0;
  }
};

/// One trace record (enabled via set_tracing).
struct TraceEvent {
  std::string name;
  std::size_t worker = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// Pre-rendered Chrome-trace "args" fields the executing kernel attached
  /// via obs::annotate_task (precision, rank, flops); empty if none.
  std::string args;
};

/// A statically-unrolled task DAG executed by run().
///
/// Usage:
///   TaskGraph g;
///   g.submit("potrf(0)", {{id, Access::ReadWrite}}, [&]{ ... }, /*priority=*/10);
///   ...
///   g.run(4);
///
/// Thread-safety: submit() is not thread-safe (tasks are inserted by the
/// algorithm author in sequential program order — that order defines the
/// dependencies); run() executes bodies concurrently. Bodies must touch only
/// data they declared (CP.2/CP.3: the graph is the sharing discipline).
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a task. Returns its index (usable for testing/tracing).
  std::size_t submit(std::string name, const std::vector<Dep>& deps,
                     std::function<void()> body, int priority = 0);

  /// Add an externally-completed task: it has no body and is never handed to
  /// a worker thread. It completes when BOTH (a) its declared predecessors
  /// have finished and (b) notify() has been called for it — in either
  /// order. The distributed backend submits one per remote operand tile
  /// (declaring Write on the staging datum); the transport receiver thread
  /// notifies it when the tile arrives, which releases every local consumer
  /// without parking a worker in a blocking recv.
  std::size_t submit_external(std::string name, const std::vector<Dep>& deps);

  /// Mark an external task's out-of-band condition satisfied. Thread-safe;
  /// callable from any thread before or during run(). Calling it for a
  /// non-external task throws. Idempotent per task.
  void notify(std::size_t task_id);

  /// Execute the whole DAG on `num_workers` threads; blocks until complete.
  /// Rethrows the first task exception after quiescing the pool.
  void run(std::size_t num_workers);

  void set_policy(SchedPolicy p) noexcept { policy_ = p; }
  void set_tracing(bool on) noexcept { tracing_ = on; }

  [[nodiscard]] const GraphStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<TraceEvent>& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  /// Execution order observed during run() (task indices). With one worker
  /// this is a deterministic topological order — used by correctness tests.
  [[nodiscard]] const std::vector<std::size_t>& execution_order() const noexcept {
    return exec_order_;
  }

 private:
  struct Task {
    std::string name;
    std::function<void()> body;
    int priority = 0;
    bool external = false;  ///< completed via notify(), not a worker
    std::vector<std::size_t> successors;
    std::size_t num_predecessors = 0;
    double duration_seconds = 0.0;
  };

  struct DatumState {
    // Last task that wrote the datum, and readers since that write.
    std::ptrdiff_t last_writer = -1;
    std::vector<std::size_t> readers_since_write;
  };

  struct RunCtx;  // live scheduler state, defined in task_graph.cpp

  std::size_t submit_impl(std::string name, const std::vector<Dep>& deps,
                          std::function<void()> body, int priority, bool external);
  void add_edge(std::size_t from, std::size_t to);
  void compute_critical_path();

  // Published while run() is active so notify() can reach the scheduler;
  // notifications arriving outside run() are parked in prenotified_ and
  // folded in when run() starts.
  std::atomic<RunCtx*> run_ctx_{nullptr};
  std::mutex prenotify_mtx_;
  std::vector<std::size_t> prenotified_;
  // Notifiers announce themselves here *before* loading run_ctx_; run()'s
  // teardown unpublishes the context and then drains this counter, so a
  // notifier that saw a live context always finishes before the context
  // (its mutex and cv) is destroyed.
  std::atomic<std::size_t> notify_inflight_{0};

  std::vector<Task> tasks_;
  std::unordered_map<std::uintptr_t, DatumState> data_;
  // De-duplication of edges during construction (cheap bloom via last edge).
  std::vector<std::ptrdiff_t> last_edge_target_;
  SchedPolicy policy_ = SchedPolicy::Priority;
  bool tracing_ = false;
  GraphStats stats_;
  std::vector<TraceEvent> trace_;
  std::vector<std::size_t> exec_order_;
};

/// Parallel loop over [begin, end) with static chunking on a transient pool.
/// Used by covariance-matrix generation (one task per tile row block).
void parallel_for(std::size_t begin, std::size_t end, std::size_t num_workers,
                  const std::function<void(std::size_t)>& body);

}  // namespace gsx::rt
