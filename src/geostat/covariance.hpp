// Parametric covariance models: the statistical heart of the MLE.
//
// Space:      Matérn family (paper Section IV-A.3) and powered exponential.
// Space-time: the non-separable Gneiting model of Eq. (6):
//   C(h, u) = sigma^2 / psi(u) * M_nu( ||h|| / (a_s * psi(u)^{beta/2}) ),
//   psi(u)  = a_t * |u|^{2*alpha} + 1,
// where M_nu is the Matérn correlation, a_s/a_t space/time ranges,
// nu spatial smoothness, alpha in (0, 1] temporal smoothness, and
// beta in [0, 1] the space-time interaction (beta = 0 <=> separable).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geostat/locations.hpp"

namespace gsx::geostat {

/// Matérn correlation M_nu(d): 2^{1-nu}/Gamma(nu) * d^nu * K_nu(d), with
/// M_nu(0) = 1. Fast closed forms for nu = 0.5, 1.5, 2.5.
double matern_correlation(double nu, double d);

/// A parametric covariance function over locations, exposing its parameter
/// vector for the optimizer. Implementations are cheap value types behind
/// clone(); the MLE perturbs parameters via set_params() between likelihood
/// evaluations.
class CovarianceModel {
 public:
  virtual ~CovarianceModel() = default;

  /// Covariance between two locations (including nugget when a == b is
  /// indicated by zero distance in space and time).
  [[nodiscard]] virtual double operator()(const Location& a, const Location& b) const = 0;

  [[nodiscard]] virtual std::size_t num_params() const = 0;
  [[nodiscard]] virtual std::vector<double> params() const = 0;
  virtual void set_params(std::span<const double> theta) = 0;
  [[nodiscard]] virtual std::vector<double> lower_bounds() const = 0;
  [[nodiscard]] virtual std::vector<double> upper_bounds() const = 0;
  [[nodiscard]] virtual std::vector<std::string> param_names() const = 0;
  [[nodiscard]] virtual std::unique_ptr<CovarianceModel> clone() const = 0;
};

/// Isotropic Matérn in the plane: theta = (variance, range, smoothness),
/// matching Table I's (theta_0, theta_1, theta_2). Optional fixed nugget
/// (measurement-error variance) is not estimated.
class MaternCovariance final : public CovarianceModel {
 public:
  MaternCovariance(double variance, double range, double smoothness, double nugget = 0.0);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 3; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

  [[nodiscard]] double nugget() const noexcept { return nugget_; }

 private:
  double variance_;
  double range_;
  double smoothness_;
  double nugget_;
};

/// Powered exponential: C(d) = variance * exp(-(d/range)^power), power in
/// (0, 2]. A cheaper spatial alternative exercised by tests and ablations.
class PoweredExponentialCovariance final : public CovarianceModel {
 public:
  PoweredExponentialCovariance(double variance, double range, double power,
                               double nugget = 0.0);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 3; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

 private:
  double variance_;
  double range_;
  double power_;
  double nugget_;
};

/// Non-separable Gneiting space-time model (Eq. 6). theta = (variance,
/// range_space, smooth_space, range_time, smooth_time, beta), matching
/// Table II's (theta_0 .. theta_5).
class GneitingCovariance final : public CovarianceModel {
 public:
  GneitingCovariance(double variance, double range_s, double smooth_s, double range_t,
                     double smooth_t, double beta, double nugget = 0.0);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 6; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

 private:
  double variance_;
  double range_s_;
  double smooth_s_;
  double range_t_;
  double smooth_t_;  ///< alpha in (0, 1]
  double beta_;      ///< space-time interaction in [0, 1]
  double nugget_;
};

}  // namespace gsx::geostat
