#include "geostat/locations.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gsx::geostat {

std::vector<Location> uniform_random_locations(std::size_t n, double lx, double ly,
                                               Rng& rng) {
  GSX_REQUIRE(n > 0 && lx > 0 && ly > 0, "uniform_random_locations: bad arguments");
  std::vector<Location> locs(n);
  for (auto& l : locs) {
    l.x = rng.uniform(0.0, lx);
    l.y = rng.uniform(0.0, ly);
  }
  return locs;
}

std::vector<Location> perturbed_grid_locations(std::size_t n, Rng& rng) {
  GSX_REQUIRE(n > 0, "perturbed_grid_locations: n must be positive");
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double step = 1.0 / static_cast<double>(side);
  const double jitter = step / 3.0;
  std::vector<Location> locs;
  locs.reserve(side * side);
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      Location l;
      l.x = (static_cast<double>(i) + 0.5) * step + rng.uniform(-jitter, jitter);
      l.y = (static_cast<double>(j) + 0.5) * step + rng.uniform(-jitter, jitter);
      locs.push_back(l);
    }
  }
  // Drop surplus points at random so every grid region keeps coverage.
  while (locs.size() > n) {
    const std::size_t idx = rng.uniform_index(locs.size());
    locs[idx] = locs.back();
    locs.pop_back();
  }
  return locs;
}

std::vector<Location> replicate_in_time(std::span<const Location> spatial,
                                        std::size_t slots, double dt) {
  GSX_REQUIRE(slots > 0, "replicate_in_time: need at least one slot");
  std::vector<Location> out;
  out.reserve(spatial.size() * slots);
  for (std::size_t s = 0; s < slots; ++s) {
    for (const Location& l : spatial) {
      Location st = l;
      st.t = static_cast<double>(s) * dt;
      out.push_back(st);
    }
  }
  return out;
}

namespace {

/// Spread the low 21 bits of x so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t x) {
  x &= 0x1fffffull;
  x = (x | (x << 32)) & 0x1f00000000ffffull;
  x = (x | (x << 16)) & 0x1f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

/// Spread the low 32 bits so consecutive bits land 2 apart.
std::uint64_t spread2(std::uint64_t x) {
  x &= 0xffffffffull;
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

std::uint64_t quantize(double v, double lo, double hi, unsigned bits) {
  const double span = hi - lo;
  if (span <= 0.0) return 0;
  const double unit = (v - lo) / span;
  const auto maxq = (std::uint64_t{1} << bits) - 1;
  const double q = std::clamp(unit, 0.0, 1.0) * static_cast<double>(maxq);
  return static_cast<std::uint64_t>(q);
}

}  // namespace

std::uint64_t morton_key(const Location& loc, const Location& lo, const Location& hi,
                         bool use_time) {
  if (!use_time) {
    const std::uint64_t qx = quantize(loc.x, lo.x, hi.x, 32);
    const std::uint64_t qy = quantize(loc.y, lo.y, hi.y, 32);
    return spread2(qx) | (spread2(qy) << 1);
  }
  const std::uint64_t qx = quantize(loc.x, lo.x, hi.x, 21);
  const std::uint64_t qy = quantize(loc.y, lo.y, hi.y, 21);
  const std::uint64_t qt = quantize(loc.t, lo.t, hi.t, 21);
  return spread3(qx) | (spread3(qy) << 1) | (spread3(qt) << 2);
}

void sort_morton(std::vector<Location>& locations, bool use_time) {
  if (locations.size() < 2) return;
  Location lo = locations.front();
  Location hi = locations.front();
  for (const Location& l : locations) {
    lo.x = std::min(lo.x, l.x);
    lo.y = std::min(lo.y, l.y);
    lo.t = std::min(lo.t, l.t);
    hi.x = std::max(hi.x, l.x);
    hi.y = std::max(hi.y, l.y);
    hi.t = std::max(hi.t, l.t);
  }
  std::stable_sort(locations.begin(), locations.end(),
                   [&](const Location& a, const Location& b) {
                     return morton_key(a, lo, hi, use_time) < morton_key(b, lo, hi, use_time);
                   });
}

}  // namespace gsx::geostat
