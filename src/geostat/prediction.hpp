// Kriging prediction at unobserved locations, Eqs. (4)-(5):
//   Z_m = Sigma_mn Sigma_nn^{-1} Z_n,
//   U_m = diag[Sigma_mm - Sigma_mn Sigma_nn^{-1} Sigma_nm].
#pragma once

#include <span>
#include <vector>

#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/matrix.hpp"

namespace gsx::geostat {

struct KrigingResult {
  std::vector<double> mean;      ///< predicted Z_m
  std::vector<double> variance;  ///< prediction uncertainty U_m (if requested)
};

/// Dense kriging reference: assemble Sigma_nn, factor it with LAPACK, predict
/// all test locations. Throws NumericalError if Sigma_nn is not positive
/// definite. This is the TEST ORACLE for the tile-native prediction path
/// (cholesky::tile_krige / tile_krige_solved), which production code — both
/// GsxModel::predict and the serving engine — uses instead; it re-does the
/// O(n^3) factorization on every call and materializes the full dense matrix.
KrigingResult krige(const CovarianceModel& model, std::span<const Location> train_locs,
                    std::span<const double> z_train, std::span<const Location> test_locs,
                    bool with_variance = true);

/// Kriging from a precomputed dense lower Cholesky factor of Sigma_nn.
/// Test oracle only (see krige above): the tile variants predict through the
/// tile factor directly and never reconstruct a dense L.
KrigingResult krige_with_cholesky(const CovarianceModel& model,
                                  const la::Matrix<double>& chol,
                                  std::span<const Location> train_locs,
                                  std::span<const double> z_train,
                                  std::span<const Location> test_locs,
                                  bool with_variance = true);

}  // namespace gsx::geostat
