// Kriging prediction at unobserved locations, Eqs. (4)-(5):
//   Z_m = Sigma_mn Sigma_nn^{-1} Z_n,
//   U_m = diag[Sigma_mm - Sigma_mn Sigma_nn^{-1} Sigma_nm].
#pragma once

#include <span>
#include <vector>

#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/matrix.hpp"

namespace gsx::geostat {

struct KrigingResult {
  std::vector<double> mean;      ///< predicted Z_m
  std::vector<double> variance;  ///< prediction uncertainty U_m (if requested)
};

/// Dense kriging: factor Sigma_nn once, predict all test locations.
/// Throws NumericalError if Sigma_nn is not positive definite.
KrigingResult krige(const CovarianceModel& model, std::span<const Location> train_locs,
                    std::span<const double> z_train, std::span<const Location> test_locs,
                    bool with_variance = true);

/// Kriging from a precomputed lower Cholesky factor of Sigma_nn (the tile
/// variants reconstruct L and reuse this path).
KrigingResult krige_with_cholesky(const CovarianceModel& model,
                                  const la::Matrix<double>& chol,
                                  std::span<const Location> train_locs,
                                  std::span<const double> z_train,
                                  std::span<const Location> test_locs,
                                  bool with_variance = true);

}  // namespace gsx::geostat
