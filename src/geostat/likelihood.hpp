// Gaussian log-likelihood, Eq. (1):
//   l(theta) = -n/2 log(2 pi) - 1/2 log|Sigma(theta)| - 1/2 Z^T Sigma^{-1} Z.
#pragma once

#include <span>

#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/matrix.hpp"

namespace gsx::geostat {

struct LoglikValue {
  double loglik = 0.0;
  double logdet = 0.0;      ///< log|Sigma|
  double quadratic = 0.0;   ///< Z^T Sigma^{-1} Z
  bool ok = false;          ///< false if Sigma was not positive definite
};

/// Dense FP64 reference evaluation: assemble Sigma, factor, solve.
LoglikValue dense_loglik(const CovarianceModel& model, std::span<const Location> locs,
                         std::span<const double> z);

/// Log-likelihood from a precomputed Cholesky factor L (lower triangle of
/// `chol`) and observation vector z: used by the tile variants, which
/// produce L by other means.
LoglikValue loglik_from_cholesky(const la::Matrix<double>& chol, std::span<const double> z);

}  // namespace gsx::geostat
