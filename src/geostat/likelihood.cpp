#include "geostat/likelihood.hpp"

#include <cmath>

#include "common/error.hpp"
#include "geostat/assemble.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "obs/flops.hpp"
#include "obs/trace.hpp"

namespace gsx::geostat {

namespace {
constexpr double kLog2Pi = 1.8378770664093454835606594728112;
}

LoglikValue loglik_from_cholesky(const la::Matrix<double>& chol, std::span<const double> z) {
  const std::size_t n = chol.rows();
  GSX_REQUIRE(chol.cols() == n && z.size() == n, "loglik_from_cholesky: size mismatch");
  const obs::ScopedPhase phase("solve");
  obs::add_flops(obs::KernelOp::Solve, Precision::FP64, obs::trsm_flops(1, n));
  LoglikValue out;
  out.logdet = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lii = chol(i, i);
    if (!(lii > 0.0)) return out;  // ok = false
    out.logdet += std::log(lii);
  }
  out.logdet *= 2.0;

  // Solve L y = z, quadratic = ||y||^2.
  std::vector<double> y(z.begin(), z.end());
  for (std::size_t j = 0; j < n; ++j) {
    y[j] /= chol(j, j);
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t i = j + 1; i < n; ++i) y[i] -= chol(i, j) * yj;
  }
  out.quadratic = 0.0;
  for (double v : y) out.quadratic += v * v;
  out.loglik = -0.5 * (static_cast<double>(n) * kLog2Pi + out.logdet + out.quadratic);
  out.ok = true;
  return out;
}

LoglikValue dense_loglik(const CovarianceModel& model, std::span<const Location> locs,
                         std::span<const double> z) {
  GSX_REQUIRE(locs.size() == z.size(), "dense_loglik: size mismatch");
  la::Matrix<double> sigma = covariance_matrix(model, locs);
  obs::add_flops(obs::KernelOp::Potrf, Precision::FP64, obs::potrf_flops(sigma.rows()));
  const int info = [&] {
    const obs::ScopedPhase phase("factorize");
    return la::potrf<double>(la::Uplo::Lower, sigma.view());
  }();
  if (info != 0) return LoglikValue{};  // non-SPD: ok = false
  return loglik_from_cholesky(sigma, z);
}

}  // namespace gsx::geostat
