#include "geostat/covariance.hpp"

#include <cmath>

#include "common/error.hpp"
#include "mathx/bessel.hpp"
#include "mathx/distance.hpp"

namespace gsx::geostat {

double matern_correlation(double nu, double d) {
  GSX_REQUIRE(nu > 0.0, "matern_correlation: smoothness must be positive");
  GSX_REQUIRE(d >= 0.0, "matern_correlation: distance must be non-negative");
  if (d == 0.0) return 1.0;
  // Closed forms for half-integer smoothness (the common special cases).
  if (nu == 0.5) return std::exp(-d);
  if (nu == 1.5) return (1.0 + d) * std::exp(-d);
  if (nu == 2.5) return (1.0 + d + d * d / 3.0) * std::exp(-d);
  // General case; for large d the product underflows to 0, which is the
  // correct limit, so compute through the scaled Bessel to avoid premature
  // underflow: K_nu(d) = e^{-d} * K_scaled.
  if (d > 700.0) return 0.0;
  const double log_pref = (1.0 - nu) * std::log(2.0) - std::lgamma(nu) + nu * std::log(d);
  const double k_scaled = mathx::bessel_k_scaled(nu, d);
  const double val = std::exp(log_pref - d) * k_scaled;
  return std::min(val, 1.0);  // guard tiny numerical overshoot near d -> 0
}

// ---------------------------------------------------------------- Matérn

MaternCovariance::MaternCovariance(double variance, double range, double smoothness,
                                   double nugget)
    : variance_(variance), range_(range), smoothness_(smoothness), nugget_(nugget) {
  GSX_REQUIRE(variance > 0 && range > 0 && smoothness > 0 && nugget >= 0,
              "MaternCovariance: parameters must be positive (nugget >= 0)");
}

double MaternCovariance::operator()(const Location& a, const Location& b) const {
  const double d = mathx::euclidean2d(a.x, a.y, b.x, b.y);
  const double c = variance_ * matern_correlation(smoothness_, d / range_);
  return (d == 0.0) ? c + nugget_ : c;
}

std::vector<double> MaternCovariance::params() const {
  return {variance_, range_, smoothness_};
}

void MaternCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 3, "MaternCovariance: expects 3 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0,
              "MaternCovariance: parameters must be positive");
  variance_ = theta[0];
  range_ = theta[1];
  smoothness_ = theta[2];
}

std::vector<double> MaternCovariance::lower_bounds() const { return {0.01, 0.005, 0.05}; }
std::vector<double> MaternCovariance::upper_bounds() const { return {10.0, 5.0, 5.0}; }
std::vector<std::string> MaternCovariance::param_names() const {
  return {"variance", "range", "smoothness"};
}
std::unique_ptr<CovarianceModel> MaternCovariance::clone() const {
  return std::make_unique<MaternCovariance>(*this);
}

// ---------------------------------------------- Powered exponential

PoweredExponentialCovariance::PoweredExponentialCovariance(double variance, double range,
                                                           double power, double nugget)
    : variance_(variance), range_(range), power_(power), nugget_(nugget) {
  GSX_REQUIRE(variance > 0 && range > 0 && power > 0 && power <= 2.0 && nugget >= 0,
              "PoweredExponentialCovariance: invalid parameters");
}

double PoweredExponentialCovariance::operator()(const Location& a, const Location& b) const {
  const double d = mathx::euclidean2d(a.x, a.y, b.x, b.y);
  const double c = variance_ * std::exp(-std::pow(d / range_, power_));
  return (d == 0.0) ? c + nugget_ : c;
}

std::vector<double> PoweredExponentialCovariance::params() const {
  return {variance_, range_, power_};
}

void PoweredExponentialCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 3, "PoweredExponentialCovariance: expects 3 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0 && theta[2] <= 2.0,
              "PoweredExponentialCovariance: invalid parameters");
  variance_ = theta[0];
  range_ = theta[1];
  power_ = theta[2];
}

std::vector<double> PoweredExponentialCovariance::lower_bounds() const {
  return {0.01, 0.005, 0.05};
}
std::vector<double> PoweredExponentialCovariance::upper_bounds() const {
  return {10.0, 5.0, 2.0};
}
std::vector<std::string> PoweredExponentialCovariance::param_names() const {
  return {"variance", "range", "power"};
}
std::unique_ptr<CovarianceModel> PoweredExponentialCovariance::clone() const {
  return std::make_unique<PoweredExponentialCovariance>(*this);
}

// ------------------------------------------------------ Gneiting

GneitingCovariance::GneitingCovariance(double variance, double range_s, double smooth_s,
                                       double range_t, double smooth_t, double beta,
                                       double nugget)
    : variance_(variance),
      range_s_(range_s),
      smooth_s_(smooth_s),
      range_t_(range_t),
      smooth_t_(smooth_t),
      beta_(beta),
      nugget_(nugget) {
  GSX_REQUIRE(variance > 0 && range_s > 0 && smooth_s > 0 && range_t > 0,
              "GneitingCovariance: scale parameters must be positive");
  GSX_REQUIRE(smooth_t > 0 && smooth_t <= 1.0, "GneitingCovariance: alpha in (0, 1]");
  GSX_REQUIRE(beta >= 0 && beta <= 1.0, "GneitingCovariance: beta in [0, 1]");
  GSX_REQUIRE(nugget >= 0, "GneitingCovariance: nugget must be non-negative");
}

double GneitingCovariance::operator()(const Location& a, const Location& b) const {
  const double h = mathx::euclidean2d(a.x, a.y, b.x, b.y);
  const double u = std::fabs(a.t - b.t);
  const double psi = range_t_ * std::pow(u, 2.0 * smooth_t_) + 1.0;
  const double arg = h / (range_s_ * std::pow(psi, beta_ / 2.0));
  const double c = variance_ / psi * matern_correlation(smooth_s_, arg);
  return (h == 0.0 && u == 0.0) ? c + nugget_ : c;
}

std::vector<double> GneitingCovariance::params() const {
  return {variance_, range_s_, smooth_s_, range_t_, smooth_t_, beta_};
}

void GneitingCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 6, "GneitingCovariance: expects 6 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0 && theta[3] > 0,
              "GneitingCovariance: scale parameters must be positive");
  GSX_REQUIRE(theta[4] > 0 && theta[4] <= 1.0, "GneitingCovariance: alpha in (0, 1]");
  GSX_REQUIRE(theta[5] >= 0 && theta[5] <= 1.0, "GneitingCovariance: beta in [0, 1]");
  variance_ = theta[0];
  range_s_ = theta[1];
  smooth_s_ = theta[2];
  range_t_ = theta[3];
  smooth_t_ = theta[4];
  beta_ = theta[5];
}

std::vector<double> GneitingCovariance::lower_bounds() const {
  return {0.01, 0.005, 0.05, 0.001, 0.01, 0.0};
}
std::vector<double> GneitingCovariance::upper_bounds() const {
  return {10.0, 10.0, 5.0, 10.0, 1.0, 1.0};
}
std::vector<std::string> GneitingCovariance::param_names() const {
  return {"variance", "range-space", "smooth-space", "range-time", "smooth-time", "beta"};
}
std::unique_ptr<CovarianceModel> GneitingCovariance::clone() const {
  return std::make_unique<GneitingCovariance>(*this);
}

}  // namespace gsx::geostat
