// Name-indexed covariance kernel factory.
//
// Checkpoints, the serving daemon and the CLI all need to rebuild a
// CovarianceModel from a stable string name ("matern", "gneiting", ...);
// this registry is the single source of truth for that mapping.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geostat/covariance.hpp"

namespace gsx::geostat {

/// Construct a kernel by registry name. With an empty `theta` the kernel
/// starts from its documented default parameters; otherwise `theta` must
/// have exactly num_params() entries. Throws InvalidArgument for an unknown
/// name or a wrong-sized parameter vector.
std::unique_ptr<CovarianceModel> make_kernel(const std::string& name,
                                             std::span<const double> theta = {});

/// Registry name of a model instance (inverse of make_kernel). Throws
/// InvalidArgument for a type the registry does not know.
std::string kernel_name(const CovarianceModel& model);

/// All registered kernel names, in a stable order (for usage strings).
std::vector<std::string> kernel_names();

}  // namespace gsx::geostat
