#include "geostat/assemble.hpp"

#include "common/error.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsx::geostat {

namespace {

/// Covariance-evaluation counter shared by every assembly path: the
/// generation phase is measured in kernel evaluations, not flops (a Matérn
/// evaluation's Bessel cost has no meaningful flop count).
void count_cov_evals(std::size_t n) {
  if (!obs::enabled()) return;
  obs::Registry::instance().counter("assemble.cov_evals").add(n);
}

}  // namespace

la::Matrix<double> covariance_matrix(const CovarianceModel& model,
                                     std::span<const Location> locs) {
  const std::size_t n = locs.size();
  GSX_REQUIRE(n > 0, "covariance_matrix: empty location set");
  const obs::ScopedTimer timer("assemble.seconds");
  count_cov_evals(n * (n + 1) / 2);
  la::Matrix<double> sigma(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j; i < n; ++i) {
      const double c = model(locs[i], locs[j]);
      sigma(i, j) = c;
      sigma(j, i) = c;
    }
  }
  return sigma;
}

la::Matrix<double> cross_covariance(const CovarianceModel& model,
                                    std::span<const Location> a,
                                    std::span<const Location> b) {
  GSX_REQUIRE(!a.empty() && !b.empty(), "cross_covariance: empty location set");
  const obs::ScopedTimer timer("assemble.seconds");
  count_cov_evals(a.size() * b.size());
  la::Matrix<double> sigma(a.size(), b.size());
  for (std::size_t j = 0; j < b.size(); ++j)
    for (std::size_t i = 0; i < a.size(); ++i) sigma(i, j) = model(a[i], b[j]);
  return sigma;
}

void fill_covariance_tiles(tile::SymTileMatrix& tiles, const CovarianceModel& model,
                           std::span<const Location> locs, std::size_t num_workers) {
  GSX_REQUIRE(locs.size() == tiles.n(), "fill_covariance_tiles: size mismatch");
  const obs::ScopedTimer timer("assemble.seconds");
  const obs::ScopedPhase phase("assemble");
  tiles.generate(
      [&](std::size_t gi, std::size_t gj) { return model(locs[gi], locs[gj]); },
      num_workers);
  if (obs::enabled()) {
    std::size_t elems = 0;
    for (std::size_t j = 0; j < tiles.nt(); ++j)
      for (std::size_t i = j; i < tiles.nt(); ++i)
        elems += tiles.at(i, j).rows() * tiles.at(i, j).cols();
    count_cov_evals(elems);
  }
  if (obs::health_enabled()) {
    // A kernel evaluated at a degenerate parameter point (zero range,
    // negative smoothness) emits NaN here and surfaces many layers later as
    // a mysterious non-SPD pivot; the sentinel names the first bad tile.
    for (std::size_t j = 0; j < tiles.nt(); ++j) {
      for (std::size_t i = j; i < tiles.nt(); ++i) {
        const std::size_t bad = tiles.at(i, j).nonfinite_count();
        if (bad > 0) {
          obs::record_nonfinite("assemble", static_cast<long>(i),
                                static_cast<long>(j), bad);
          obs::log_warn("assemble", "non-finite covariance entries",
                        {obs::lf("tile_i", static_cast<std::uint64_t>(i)),
                         obs::lf("tile_j", static_cast<std::uint64_t>(j)),
                         obs::lf("count", static_cast<std::uint64_t>(bad))});
        }
      }
    }
  }
}

}  // namespace gsx::geostat
