#include "geostat/bivariate.hpp"

#include <cmath>

#include "common/error.hpp"
#include "mathx/distance.hpp"

namespace gsx::geostat {

std::vector<Location> make_bivariate_locations(std::span<const Location> spatial) {
  std::vector<Location> out;
  out.reserve(2 * spatial.size());
  for (int comp = 0; comp < 2; ++comp) {
    for (const Location& l : spatial) {
      Location tagged = l;
      tagged.t = static_cast<double>(comp);
      out.push_back(tagged);
    }
  }
  return out;
}

double BivariateMaternCovariance::max_rho(double smooth1, double smooth2) {
  // d = 2: rho_max = [Gamma(nu1+1) Gamma(nu2+1)]^{1/2} / Gamma(nu12+1)
  //                  * Gamma(nu12) / [Gamma(nu1) Gamma(nu2)]^{1/2},
  // nu12 = (nu1+nu2)/2 (Gneiting-Kleiber-Schlather, parsimonious case).
  const double nu12 = 0.5 * (smooth1 + smooth2);
  const double lg = 0.5 * (std::lgamma(smooth1 + 1.0) + std::lgamma(smooth2 + 1.0)) -
                    std::lgamma(nu12 + 1.0) + std::lgamma(nu12) -
                    0.5 * (std::lgamma(smooth1) + std::lgamma(smooth2));
  return std::exp(lg);
}

BivariateMaternCovariance::BivariateMaternCovariance(double var1, double var2,
                                                     double range, double smooth1,
                                                     double smooth2, double rho,
                                                     double nugget)
    : var1_(var1),
      var2_(var2),
      range_(range),
      smooth1_(smooth1),
      smooth2_(smooth2),
      rho_(rho),
      nugget_(nugget) {
  GSX_REQUIRE(var1 > 0 && var2 > 0 && range > 0 && smooth1 > 0 && smooth2 > 0 &&
                  nugget >= 0,
              "BivariateMaternCovariance: invalid scale parameters");
  GSX_REQUIRE(std::fabs(rho) <= max_rho(smooth1, smooth2),
              "BivariateMaternCovariance: |rho| exceeds the validity bound");
}

double BivariateMaternCovariance::operator()(const Location& a, const Location& b) const {
  const double h = mathx::euclidean2d(a.x, a.y, b.x, b.y);
  const int ca = static_cast<int>(a.t);
  const int cb = static_cast<int>(b.t);
  GSX_REQUIRE((ca == 0 || ca == 1) && (cb == 0 || cb == 1),
              "BivariateMaternCovariance: component tag (Location::t) must be 0 or 1");
  double c;
  if (ca == cb) {
    const double var = (ca == 0) ? var1_ : var2_;
    const double nu = (ca == 0) ? smooth1_ : smooth2_;
    c = var * matern_correlation(nu, h / range_);
    if (h == 0.0) c += nugget_;
  } else {
    const double nu12 = 0.5 * (smooth1_ + smooth2_);
    c = rho_ * std::sqrt(var1_ * var2_) * matern_correlation(nu12, h / range_);
  }
  return c;
}

std::vector<double> BivariateMaternCovariance::params() const {
  return {var1_, var2_, range_, smooth1_, smooth2_, rho_};
}

void BivariateMaternCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 6, "BivariateMaternCovariance: expects 6 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0 && theta[3] > 0 && theta[4] > 0,
              "BivariateMaternCovariance: invalid scale parameters");
  GSX_REQUIRE(std::fabs(theta[5]) <= max_rho(theta[3], theta[4]),
              "BivariateMaternCovariance: |rho| exceeds the validity bound");
  var1_ = theta[0];
  var2_ = theta[1];
  range_ = theta[2];
  smooth1_ = theta[3];
  smooth2_ = theta[4];
  rho_ = theta[5];
}

std::vector<double> BivariateMaternCovariance::lower_bounds() const {
  return {0.01, 0.01, 0.005, 0.05, 0.05, -0.9};
}
std::vector<double> BivariateMaternCovariance::upper_bounds() const {
  return {10.0, 10.0, 5.0, 3.0, 3.0, 0.9};
}
std::vector<std::string> BivariateMaternCovariance::param_names() const {
  return {"variance-1", "variance-2", "range", "smooth-1", "smooth-2", "rho"};
}
std::unique_ptr<CovarianceModel> BivariateMaternCovariance::clone() const {
  return std::make_unique<BivariateMaternCovariance>(*this);
}

}  // namespace gsx::geostat
