#include "geostat/field.hpp"

#include "common/error.hpp"
#include "geostat/assemble.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"

namespace gsx::geostat {

namespace {

std::vector<double> draw_from_factor(const la::Matrix<double>& chol, Rng& rng) {
  const std::size_t n = chol.rows();
  std::vector<double> w(n), z(n, 0.0);
  for (auto& wi : w) wi = rng.normal();
  // z = L w over the lower triangle.
  for (std::size_t j = 0; j < n; ++j) {
    const double wj = w[j];
    if (wj == 0.0) continue;
    for (std::size_t i = j; i < n; ++i) z[i] += chol(i, j) * wj;
  }
  return z;
}

la::Matrix<double> factor_covariance(const CovarianceModel& model,
                                     std::span<const Location> locs) {
  la::Matrix<double> sigma = covariance_matrix(model, locs);
  const int info = la::potrf<double>(la::Uplo::Lower, sigma.view());
  if (info != 0)
    throw NumericalError("simulate_grf: covariance matrix not positive definite at pivot " +
                         std::to_string(info));
  return sigma;
}

}  // namespace

std::vector<double> simulate_grf(const CovarianceModel& model,
                                 std::span<const Location> locs, Rng& rng) {
  const la::Matrix<double> chol = factor_covariance(model, locs);
  return draw_from_factor(chol, rng);
}

std::vector<std::vector<double>> simulate_grf_many(const CovarianceModel& model,
                                                   std::span<const Location> locs, Rng& rng,
                                                   std::size_t count) {
  const la::Matrix<double> chol = factor_covariance(model, locs);
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(draw_from_factor(chol, rng));
  return out;
}

}  // namespace gsx::geostat
