// Observation locations in space or space-time, and their generators.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace gsx::geostat {

/// A measurement location: planar coordinates plus (optional) time.
struct Location {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;
};

/// n locations uniformly random in [0, lx] x [0, ly].
std::vector<Location> uniform_random_locations(std::size_t n, double lx, double ly,
                                               Rng& rng);

/// n locations on a jittered sqrt(n) x sqrt(n) grid in the unit square
/// (the irregular-but-space-filling layout ExaGeoStat uses for synthetic
/// datasets; jitter keeps the covariance matrix non-singular).
std::vector<Location> perturbed_grid_locations(std::size_t n, Rng& rng);

/// Replicate a spatial set across `slots` time points t = 0, dt, 2*dt, ...
/// (the monthly structure of the evapotranspiration dataset).
std::vector<Location> replicate_in_time(std::span<const Location> spatial,
                                        std::size_t slots, double dt = 1.0);

/// Morton (Z-order) sort of the locations in place: interleaved-bit order of
/// quantized coordinates. This is the "proper ordering" the paper relies on
/// to cluster covariance mass near the diagonal, creating the low-rank
/// structure TLR exploits. With `use_time`, the time coordinate joins the
/// bit interleave (3-D Z-order for space-time datasets).
void sort_morton(std::vector<Location>& locations, bool use_time = false);

/// Morton key of one location given the bounding box (exposed for tests).
std::uint64_t morton_key(const Location& loc, const Location& lo, const Location& hi,
                         bool use_time);

}  // namespace gsx::geostat
