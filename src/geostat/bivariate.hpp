// Parsimonious bivariate Matérn (Gneiting, Kleiber & Schlather, 2010).
//
// The paper's covariance dimension is "the product of the number of
// observation locations and the number of variables observed at each"
// (Section III); ExaGeoStat ships this bivariate kernel. Two co-located
// variables share a range; cross-covariance uses the mean smoothness and a
// co-located correlation coefficient bounded for validity:
//   C_ii(h)  = sigma_i^2           M_{nu_i}((h)/a)
//   C_12(h)  = rho sigma_1 sigma_2 M_{(nu_1+nu_2)/2}(h/a)
// The component index rides in Location::t (0 or 1) so bivariate fields
// reuse the whole scalar pipeline (tiling, Cholesky, MLE, kriging).
#pragma once

#include "geostat/covariance.hpp"

namespace gsx::geostat {

/// Duplicate a spatial location set into component-tagged observations:
/// first all component-0 entries, then component-1 (t = 0 / 1).
std::vector<Location> make_bivariate_locations(std::span<const Location> spatial);

/// theta = (sigma1^2, sigma2^2, range, nu1, nu2, rho).
class BivariateMaternCovariance final : public CovarianceModel {
 public:
  BivariateMaternCovariance(double var1, double var2, double range, double smooth1,
                            double smooth2, double rho, double nugget = 0.0);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 6; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

  /// Upper bound on |rho| for positive definiteness of the parsimonious
  /// model in d = 2 (Gneiting et al., Theorem 3 with common range).
  static double max_rho(double smooth1, double smooth2);

 private:
  double var1_;
  double var2_;
  double range_;
  double smooth1_;
  double smooth2_;
  double rho_;
  double nugget_;
};

}  // namespace gsx::geostat
