#include "geostat/variogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "mathx/distance.hpp"

namespace gsx::geostat {

std::vector<VariogramBin> empirical_variogram(std::span<const Location> locs,
                                              std::span<const double> z,
                                              const VariogramOptions& opts) {
  const std::size_t n = locs.size();
  GSX_REQUIRE(n >= 2 && z.size() == n, "empirical_variogram: need paired data");
  GSX_REQUIRE(opts.num_bins >= 1, "empirical_variogram: need at least one bin");

  double max_d = opts.max_distance;
  if (max_d <= 0.0) {
    double dmax = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        dmax = std::max(dmax, mathx::euclidean2d(locs[i].x, locs[i].y, locs[j].x,
                                                 locs[j].y));
    max_d = 0.5 * dmax;
  }
  GSX_REQUIRE(max_d > 0.0, "empirical_variogram: degenerate location set");

  std::vector<double> sums(opts.num_bins, 0.0);
  std::vector<std::size_t> counts(opts.num_bins, 0);
  const double width = max_d / static_cast<double>(opts.num_bins);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = mathx::euclidean2d(locs[i].x, locs[i].y, locs[j].x, locs[j].y);
      if (d >= max_d || d == 0.0) continue;
      const auto bin = static_cast<std::size_t>(d / width);
      const double diff = z[i] - z[j];
      sums[bin] += 0.5 * diff * diff;
      ++counts[bin];
    }
  }

  std::vector<VariogramBin> out;
  for (std::size_t b = 0; b < opts.num_bins; ++b) {
    if (counts[b] == 0) continue;
    VariogramBin vb;
    vb.distance = (static_cast<double>(b) + 0.5) * width;
    vb.gamma = sums[b] / static_cast<double>(counts[b]);
    vb.pairs = counts[b];
    out.push_back(vb);
  }
  return out;
}

double model_semivariogram(const CovarianceModel& model, double h) {
  GSX_REQUIRE(h >= 0.0, "model_semivariogram: negative lag");
  const Location origin{0.0, 0.0, 0.0};
  const Location at{h, 0.0, 0.0};
  return model(origin, origin) - model(origin, at);
}

double variogram_wls(std::span<const VariogramBin> empirical,
                     const CovarianceModel& model) {
  GSX_REQUIRE(!empirical.empty(), "variogram_wls: empty variogram");
  double score = 0.0;
  for (const VariogramBin& b : empirical) {
    const double g = model_semivariogram(model, b.distance);
    if (g <= 0.0) continue;
    const double r = b.gamma / g - 1.0;
    score += static_cast<double>(b.pairs) * r * r;
  }
  return score;
}

}  // namespace gsx::geostat
