#include "geostat/covariance_ext.hpp"

#include <cmath>

#include "common/error.hpp"
#include "mathx/distance.hpp"

namespace gsx::geostat {

// ------------------------------------------------- Matérn + nugget

MaternNuggetCovariance::MaternNuggetCovariance(double variance, double range,
                                               double smoothness, double nugget)
    : variance_(variance), range_(range), smoothness_(smoothness), nugget_(nugget) {
  GSX_REQUIRE(variance > 0 && range > 0 && smoothness > 0 && nugget >= 0,
              "MaternNuggetCovariance: invalid parameters");
}

double MaternNuggetCovariance::operator()(const Location& a, const Location& b) const {
  const double d = mathx::euclidean2d(a.x, a.y, b.x, b.y);
  const double c = variance_ * matern_correlation(smoothness_, d / range_);
  return (d == 0.0) ? c + nugget_ : c;
}

std::vector<double> MaternNuggetCovariance::params() const {
  return {variance_, range_, smoothness_, nugget_};
}

void MaternNuggetCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 4, "MaternNuggetCovariance: expects 4 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0 && theta[3] >= 0,
              "MaternNuggetCovariance: invalid parameters");
  variance_ = theta[0];
  range_ = theta[1];
  smoothness_ = theta[2];
  nugget_ = theta[3];
}

std::vector<double> MaternNuggetCovariance::lower_bounds() const {
  return {0.01, 0.005, 0.05, 1e-8};
}
std::vector<double> MaternNuggetCovariance::upper_bounds() const {
  return {10.0, 5.0, 5.0, 2.0};
}
std::vector<std::string> MaternNuggetCovariance::param_names() const {
  return {"variance", "range", "smoothness", "nugget"};
}
std::unique_ptr<CovarianceModel> MaternNuggetCovariance::clone() const {
  return std::make_unique<MaternNuggetCovariance>(*this);
}

// ------------------------------------------------- anisotropic Matérn

AnisotropicMaternCovariance::AnisotropicMaternCovariance(double variance,
                                                         double range_major,
                                                         double range_minor, double angle,
                                                         double smoothness, double nugget)
    : variance_(variance),
      range_major_(range_major),
      range_minor_(range_minor),
      angle_(angle),
      smoothness_(smoothness),
      nugget_(nugget) {
  GSX_REQUIRE(variance > 0 && range_major > 0 && range_minor > 0 && smoothness > 0 &&
                  nugget >= 0,
              "AnisotropicMaternCovariance: invalid parameters");
}

double AnisotropicMaternCovariance::scaled_distance(const Location& a,
                                                    const Location& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double c = std::cos(angle_);
  const double s = std::sin(angle_);
  // Rotate into the anisotropy frame, then scale each axis by its range.
  const double u = (c * dx + s * dy) / range_major_;
  const double v = (-s * dx + c * dy) / range_minor_;
  return std::hypot(u, v);
}

double AnisotropicMaternCovariance::operator()(const Location& a, const Location& b) const {
  const double d = scaled_distance(a, b);
  const double cval = variance_ * matern_correlation(smoothness_, d);
  return (d == 0.0) ? cval + nugget_ : cval;
}

std::vector<double> AnisotropicMaternCovariance::params() const {
  return {variance_, range_major_, range_minor_, angle_, smoothness_};
}

void AnisotropicMaternCovariance::set_params(std::span<const double> theta) {
  GSX_REQUIRE(theta.size() == 5, "AnisotropicMaternCovariance: expects 5 parameters");
  GSX_REQUIRE(theta[0] > 0 && theta[1] > 0 && theta[2] > 0 && theta[4] > 0,
              "AnisotropicMaternCovariance: invalid parameters");
  variance_ = theta[0];
  range_major_ = theta[1];
  range_minor_ = theta[2];
  angle_ = theta[3];
  smoothness_ = theta[4];
}

std::vector<double> AnisotropicMaternCovariance::lower_bounds() const {
  return {0.01, 0.005, 0.005, 0.0, 0.05};
}
std::vector<double> AnisotropicMaternCovariance::upper_bounds() const {
  return {10.0, 5.0, 5.0, 3.141592653589793, 5.0};
}
std::vector<std::string> AnisotropicMaternCovariance::param_names() const {
  return {"variance", "range-major", "range-minor", "angle", "smoothness"};
}
std::unique_ptr<CovarianceModel> AnisotropicMaternCovariance::clone() const {
  return std::make_unique<AnisotropicMaternCovariance>(*this);
}

}  // namespace gsx::geostat
