// Gaussian random field simulation: draw Z ~ N(0, Sigma(theta)).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"

namespace gsx::geostat {

/// Exact simulation via the Cholesky factor: Z = L w, w ~ N(0, I). O(n^3);
/// intended for synthetic-data generation at the sizes of the accuracy
/// experiments. Throws NumericalError if Sigma is not positive definite.
std::vector<double> simulate_grf(const CovarianceModel& model,
                                 std::span<const Location> locs, Rng& rng);

/// `count` independent realizations reusing a single Cholesky factorization
/// (used to synthesize the 21 "years" of the evapotranspiration pipeline).
std::vector<std::vector<double>> simulate_grf_many(const CovarianceModel& model,
                                                   std::span<const Location> locs, Rng& rng,
                                                   std::size_t count);

}  // namespace gsx::geostat
