// Empirical semivariogram estimation and model comparison.
//
// The classical exploratory tool of geostatistics: gamma(h) =
// 0.5 * E[(Z(s) - Z(s+h))^2], estimated by binning location pairs by
// distance. Used to sanity-check fitted covariance models against data
// (a fitted Matérn implies gamma(h) = sigma^2 + tau^2 - C(h)).
#pragma once

#include <span>
#include <vector>

#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"

namespace gsx::geostat {

struct VariogramBin {
  double distance = 0.0;     ///< bin-center lag
  double gamma = 0.0;        ///< Matheron estimate 0.5 * mean squared diff
  std::size_t pairs = 0;     ///< pair count contributing to the bin
};

struct VariogramOptions {
  std::size_t num_bins = 15;
  /// Largest lag to consider; 0 = half the maximum pairwise distance (the
  /// standard heuristic: longer lags have too few independent pairs).
  double max_distance = 0.0;
};

/// Matheron's classical estimator over all location pairs (O(n^2); intended
/// for exploratory sizes). Empty bins are dropped.
std::vector<VariogramBin> empirical_variogram(std::span<const Location> locs,
                                              std::span<const double> z,
                                              const VariogramOptions& opts = {});

/// Theoretical semivariogram of a fitted model at lag h (isotropic):
/// gamma(h) = C(0) - C(h), evaluated along the x-axis.
double model_semivariogram(const CovarianceModel& model, double h);

/// Weighted least-squares discrepancy between an empirical variogram and a
/// model (Cressie's n_j / h_j^2 weights): the usual goodness-of-fit score.
double variogram_wls(std::span<const VariogramBin> empirical,
                     const CovarianceModel& model);

}  // namespace gsx::geostat
