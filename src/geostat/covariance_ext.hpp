// Extended covariance families from the ExaGeoStat kernel catalogue.
//
// The paper's experiments use the stationary isotropic Matérn and the
// Gneiting space-time model; production geostatistics additionally needs a
// jointly-estimated nugget (measurement error) and geometric anisotropy.
#pragma once

#include "geostat/covariance.hpp"

namespace gsx::geostat {

/// Matérn with jointly estimated nugget: theta = (variance, range,
/// smoothness, nugget). The nugget enters only on exact location
/// coincidence, regularizing Sigma and absorbing measurement error.
class MaternNuggetCovariance final : public CovarianceModel {
 public:
  MaternNuggetCovariance(double variance, double range, double smoothness, double nugget);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 4; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

 private:
  double variance_;
  double range_;
  double smoothness_;
  double nugget_;
};

/// Geometrically anisotropic Matérn: theta = (variance, range_major,
/// range_minor, angle, smoothness). Distances are measured in a rotated,
/// axis-scaled frame; range_major >= range_minor aligns with `angle`
/// (radians, counter-clockwise from the x-axis).
class AnisotropicMaternCovariance final : public CovarianceModel {
 public:
  AnisotropicMaternCovariance(double variance, double range_major, double range_minor,
                              double angle, double smoothness, double nugget = 0.0);

  double operator()(const Location& a, const Location& b) const override;
  std::size_t num_params() const override { return 5; }
  std::vector<double> params() const override;
  void set_params(std::span<const double> theta) override;
  std::vector<double> lower_bounds() const override;
  std::vector<double> upper_bounds() const override;
  std::vector<std::string> param_names() const override;
  std::unique_ptr<CovarianceModel> clone() const override;

  /// Effective elliptical distance (exposed for tests).
  [[nodiscard]] double scaled_distance(const Location& a, const Location& b) const;

 private:
  double variance_;
  double range_major_;
  double range_minor_;
  double angle_;
  double smoothness_;
  double nugget_;
};

}  // namespace gsx::geostat
