#include "geostat/prediction.hpp"

#include <string>

#include "common/error.hpp"
#include "geostat/assemble.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "obs/flops.hpp"
#include "obs/trace.hpp"

namespace gsx::geostat {

KrigingResult krige_with_cholesky(const CovarianceModel& model,
                                  const la::Matrix<double>& chol,
                                  std::span<const Location> train_locs,
                                  std::span<const double> z_train,
                                  std::span<const Location> test_locs,
                                  bool with_variance) {
  const std::size_t n = train_locs.size();
  const std::size_t m = test_locs.size();
  GSX_REQUIRE(z_train.size() == n, "krige: training data size mismatch");
  GSX_REQUIRE(chol.rows() == n && chol.cols() == n, "krige: Cholesky factor size mismatch");
  GSX_REQUIRE(m > 0, "krige: no test locations");

  // W = L^{-1} Sigma_nm  (n x m), y = L^{-1} Z_n.
  la::Matrix<double> w = cross_covariance(model, train_locs, test_locs);
  const obs::ScopedPhase phase("krige");
  obs::add_flops(obs::KernelOp::Krige, Precision::FP64,
                 obs::trsm_flops(m, n) + obs::trsm_flops(1, n) +
                     obs::gemm_flops(m, 1, n));
  auto wv = w.view();
  la::trsm<double>(la::Side::Left, la::Uplo::Lower, la::Trans::NoTrans, la::Diag::NonUnit,
                   1.0, chol.cview(), wv);
  std::vector<double> y(z_train.begin(), z_train.end());
  for (std::size_t j = 0; j < n; ++j) {
    y[j] /= chol(j, j);
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t i = j + 1; i < n; ++i) y[i] -= chol(i, j) * yj;
  }

  KrigingResult out;
  out.mean.assign(m, 0.0);
  // Z_m = Sigma_mn Sigma_nn^{-1} Z_n = W^T y.
  la::gemv<double>(la::Trans::Trans, 1.0, w.cview(), y.data(), 0.0, out.mean.data());

  if (with_variance) {
    out.variance.assign(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      const double smm = model(test_locs[j], test_locs[j]);
      double wnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) wnorm += w(i, j) * w(i, j);
      out.variance[j] = smm - wnorm;
    }
  }
  return out;
}

KrigingResult krige(const CovarianceModel& model, std::span<const Location> train_locs,
                    std::span<const double> z_train, std::span<const Location> test_locs,
                    bool with_variance) {
  la::Matrix<double> sigma = covariance_matrix(model, train_locs);
  obs::add_flops(obs::KernelOp::Potrf, Precision::FP64, obs::potrf_flops(sigma.rows()));
  const int info = [&] {
    const obs::ScopedPhase phase("factorize");
    return la::potrf<double>(la::Uplo::Lower, sigma.view());
  }();
  if (info != 0)
    throw NumericalError("krige: Sigma_nn not positive definite at pivot " +
                         std::to_string(info));
  return krige_with_cholesky(model, sigma, train_locs, z_train, test_locs, with_variance);
}

}  // namespace gsx::geostat
