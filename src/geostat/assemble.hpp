// Covariance matrix assembly from a model and location sets.
#pragma once

#include <span>

#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "la/matrix.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::geostat {

/// Full symmetric n x n covariance matrix Sigma(theta) (small problems and
/// reference paths).
la::Matrix<double> covariance_matrix(const CovarianceModel& model,
                                     std::span<const Location> locs);

/// Cross-covariance Sigma_ab (|a| x |b|) between two location sets — the
/// Sigma_mn block of the prediction equations (4)-(5).
la::Matrix<double> cross_covariance(const CovarianceModel& model,
                                    std::span<const Location> a,
                                    std::span<const Location> b);

/// Generate the tiled covariance matrix (dense FP64 tiles) in parallel; the
/// adaptive Cholesky variants then demote/compress tiles per their policies.
void fill_covariance_tiles(tile::SymTileMatrix& tiles, const CovarianceModel& model,
                           std::span<const Location> locs, std::size_t num_workers = 1);

}  // namespace gsx::geostat
