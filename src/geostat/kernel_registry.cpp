#include "geostat/kernel_registry.hpp"

#include "common/error.hpp"
#include "geostat/covariance_ext.hpp"

namespace gsx::geostat {

namespace {

/// Parameter picker: theta entry when provided, documented default otherwise.
struct Pick {
  std::span<const double> theta;
  double operator()(std::size_t i, double dflt) const {
    return (i < theta.size()) ? theta[i] : dflt;
  }
};

}  // namespace

std::unique_ptr<CovarianceModel> make_kernel(const std::string& name,
                                             std::span<const double> theta) {
  const Pick pick{theta};
  std::unique_ptr<CovarianceModel> m;
  if (name == "matern") {
    m = std::make_unique<MaternCovariance>(pick(0, 1.0), pick(1, 0.1), pick(2, 0.5), 1e-6);
  } else if (name == "matern-nugget") {
    m = std::make_unique<MaternNuggetCovariance>(pick(0, 1.0), pick(1, 0.1), pick(2, 0.5),
                                                 pick(3, 0.01));
  } else if (name == "powexp") {
    m = std::make_unique<PoweredExponentialCovariance>(pick(0, 1.0), pick(1, 0.1),
                                                       pick(2, 1.0), 1e-6);
  } else if (name == "aniso-matern") {
    m = std::make_unique<AnisotropicMaternCovariance>(pick(0, 1.0), pick(1, 0.2),
                                                      pick(2, 0.05), pick(3, 0.0),
                                                      pick(4, 0.5), 1e-6);
  } else if (name == "gneiting") {
    m = std::make_unique<GneitingCovariance>(pick(0, 1.0), pick(1, 0.2), pick(2, 0.5),
                                             pick(3, 0.5), pick(4, 0.9), pick(5, 0.3),
                                             1e-6);
  } else {
    throw InvalidArgument("make_kernel: unknown kernel name: " + name);
  }
  GSX_REQUIRE(theta.empty() || theta.size() == m->num_params(),
              "make_kernel: kernel " + name + " expects " +
                  std::to_string(m->num_params()) + " parameters");
  return m;
}

std::string kernel_name(const CovarianceModel& model) {
  // Order matters only for readability; all registered types are final.
  if (dynamic_cast<const MaternNuggetCovariance*>(&model) != nullptr)
    return "matern-nugget";
  if (dynamic_cast<const AnisotropicMaternCovariance*>(&model) != nullptr)
    return "aniso-matern";
  if (dynamic_cast<const MaternCovariance*>(&model) != nullptr) return "matern";
  if (dynamic_cast<const PoweredExponentialCovariance*>(&model) != nullptr)
    return "powexp";
  if (dynamic_cast<const GneitingCovariance*>(&model) != nullptr) return "gneiting";
  throw InvalidArgument("kernel_name: covariance type is not registered");
}

std::vector<std::string> kernel_names() {
  return {"matern", "matern-nugget", "powexp", "aniso-matern", "gneiting"};
}

}  // namespace gsx::geostat
