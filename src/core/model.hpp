// GsxModel: the paper's contribution as a single public API.
//
// Configure a covariance family and a compute variant
// (DenseFP64 / MPDense / MPDenseTLR), then:
//   evaluate()  — one log-likelihood evaluation through the adaptive tile
//                 Cholesky (the proxy the paper benchmarks at scale),
//   fit()       — full MLE with Nelder-Mead or parallel PSO,
//   predict()   — kriging with uncertainty through the same variant.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "cholesky/factorize.hpp"
#include "cholesky/precision_policy.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/covariance.hpp"
#include "geostat/likelihood.hpp"
#include "geostat/prediction.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/pso.hpp"
#include "perfmodel/band_tuner.hpp"

namespace gsx::core {

enum class ComputeVariant : unsigned char {
  DenseFP64,   ///< reference: all tiles dense FP64
  MPDense,     ///< mixed-precision dense tiles (band or adaptive rule)
  MPDenseTLR,  ///< mixed precision + tile low-rank with dense band
};

[[nodiscard]] constexpr const char* variant_name(ComputeVariant v) noexcept {
  switch (v) {
    case ComputeVariant::DenseFP64: return "Dense FP64";
    case ComputeVariant::MPDense: return "MP+dense";
    case ComputeVariant::MPDenseTLR: return "MP+dense/TLR";
  }
  return "?";
}

enum class OptimizerKind : unsigned char { NelderMead, ParticleSwarm };

struct ModelConfig {
  ComputeVariant variant = ComputeVariant::DenseFP64;
  std::size_t tile_size = 80;
  std::size_t workers = 1;
  rt::SchedPolicy sched = rt::SchedPolicy::Priority;

  // Mixed-precision policy (MPDense and the dense band of MPDenseTLR).
  cholesky::PrecisionRule mp_rule = cholesky::PrecisionRule::AdaptiveFrobenius;
  cholesky::BandConfig band;
  double eps_target = 1.0e-8;
  bool allow_fp16 = true;
  bool allow_bf16 = false;  ///< BF16 fallback for FP16-underflowing tiles

  // TLR configuration (MPDenseTLR).
  double tlr_tol = 1.0e-8;
  tlr::CompressionMethod compression = tlr::CompressionMethod::SVD;
  tlr::RoundingMethod rounding = tlr::RoundingMethod::Rrqr;
  bool auto_band = true;       ///< Algorithm 2 band auto-tuning
  std::size_t band_size = 2;   ///< used when auto_band is off
  double fluctuation = 1.0;    ///< Algorithm 2 hysteresis factor
  bool lr_fp32 = true;
  /// Performance model for the structure-aware decision: calibrated once on
  /// this machine (default, as the paper measures Fig. 5 on an A64FX core)
  /// or the deterministic flop model (reproducible tests).
  bool calibrate_perf_model = true;

  // Optimizer.
  OptimizerKind optimizer = OptimizerKind::NelderMead;
  optim::NelderMeadOptions nm;
  optim::PsoOptions pso;
};

/// What one evaluation did (per-variant diagnostics for the benches).
struct EvalBreakdown {
  cholesky::PolicyStats policy;
  cholesky::CompressStats compress;       ///< zeros unless MPDenseTLR
  std::size_t band_size_dense = 1;        ///< Algorithm 2 outcome
  cholesky::FactorReport factor;
  double generation_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t footprint_bytes = 0;        ///< matrix bytes entering POTRF
  std::size_t dense_fp64_bytes = 0;       ///< baseline MF for the same matrix
};

struct FitResult {
  std::vector<double> theta;
  double loglik = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;
  double seconds = 0.0;
};

class GsxModel {
 public:
  GsxModel(std::unique_ptr<geostat::CovarianceModel> prototype, ModelConfig config);

  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geostat::CovarianceModel& prototype() const noexcept {
    return *prototype_;
  }

  /// One log-likelihood evaluation at `theta` through the configured
  /// variant. Thread-compatible: concurrent calls on the same GsxModel are
  /// safe (each builds its own matrix).
  geostat::LoglikValue evaluate(std::span<const double> theta,
                                std::span<const geostat::Location> locs,
                                std::span<const double> z,
                                EvalBreakdown* breakdown = nullptr) const;

  /// Progress callback invoked (serialized, under an internal mutex) each
  /// time the MLE finds a new best point — the checkpoint/restart hook for
  /// long-running fits.
  struct FitProgress {
    std::span<const double> theta_best;
    double loglik_best = 0.0;
    std::size_t evaluations = 0;
  };
  using FitCallback = std::function<void(const FitProgress&)>;

  /// Maximum likelihood fit. Starting point: prototype parameters.
  /// `on_improve`, when set, fires on every new incumbent best.
  FitResult fit(std::span<const geostat::Location> locs, std::span<const double> z,
                const FitCallback& on_improve = {}) const;

  /// Kriging prediction using the configured variant's Cholesky factor at
  /// `theta` (so MSPE reflects the variant's accuracy, as in Tables I/II).
  geostat::KrigingResult predict(std::span<const double> theta,
                                 std::span<const geostat::Location> train_locs,
                                 std::span<const double> z_train,
                                 std::span<const geostat::Location> test_locs,
                                 bool with_variance = true) const;

  /// Assemble and factor Sigma_nn at `theta` through the configured variant,
  /// returning the tile Cholesky factor (the object a serving checkpoint
  /// persists: fit once, factor once, predict many). Throws NumericalError
  /// with forensic context if the covariance is not SPD at `theta`.
  tile::SymTileMatrix factor_at(std::span<const double> theta,
                                std::span<const geostat::Location> locs,
                                EvalBreakdown* breakdown = nullptr) const;

  /// Build the decision-annotated tile matrix at `theta` (policy applied,
  /// TLR compression done, no factorization): feeds the Fig. 9 heat maps.
  tile::SymTileMatrix build_decision_matrix(std::span<const double> theta,
                                            std::span<const geostat::Location> locs,
                                            EvalBreakdown* breakdown = nullptr) const;

 private:
  /// Generation + policy + (optional) compression + factorization.
  /// Returns false if the covariance was not SPD at `theta`.
  bool prepare_and_factor(std::span<const double> theta,
                          std::span<const geostat::Location> locs,
                          tile::SymTileMatrix& out, EvalBreakdown* breakdown) const;

  void prepare(std::span<const double> theta, std::span<const geostat::Location> locs,
               tile::SymTileMatrix& out, EvalBreakdown* breakdown) const;

  [[nodiscard]] const perfmodel::KernelModel& perf_model(std::size_t ts) const;

  std::unique_ptr<geostat::CovarianceModel> prototype_;
  ModelConfig config_;
  mutable std::optional<perfmodel::KernelModel> perf_model_;
  mutable std::mutex perf_mutex_;
};

}  // namespace gsx::core
