#include "core/model.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "cholesky/health_audit.hpp"
#include "geostat/assemble.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace gsx::core {

using geostat::Location;
using tile::SymTileMatrix;

namespace {

/// Fig. 8 / Fig. 9 inputs: precision mix of the decision-annotated matrix
/// and the ranks of its low-rank tiles.
void profile_tiles(const SymTileMatrix& a) {
  if (!obs::enabled()) return;
  obs::TileMix mix;
  std::vector<std::size_t> ranks;
  for (std::size_t j = 0; j < a.nt(); ++j) {
    for (std::size_t i = j; i < a.nt(); ++i) {
      const tile::Tile& t = a.at(i, j);
      if (t.format() == tile::TileFormat::LowRank) {
        (t.precision() == Precision::FP32 ? mix.lr32 : mix.lr64) += 1;
        ranks.push_back(t.rank());
      } else {
        mix.dense[static_cast<std::size_t>(t.precision())] += 1;
      }
    }
  }
  obs::record_iteration_tiles(mix, ranks);
}

}  // namespace

GsxModel::GsxModel(std::unique_ptr<geostat::CovarianceModel> prototype, ModelConfig config)
    : prototype_(std::move(prototype)), config_(config) {
  GSX_REQUIRE(prototype_ != nullptr, "GsxModel: covariance prototype required");
  GSX_REQUIRE(config_.tile_size >= 8, "GsxModel: tile size too small");
  GSX_REQUIRE(config_.workers >= 1, "GsxModel: need at least one worker");
}

const perfmodel::KernelModel& GsxModel::perf_model(std::size_t ts) const {
  std::lock_guard lk(perf_mutex_);
  if (!perf_model_ || perf_model_->tile_size() != ts) {
    if (config_.calibrate_perf_model) {
      const std::array<std::size_t, 4> ranks = {std::max<std::size_t>(1, ts / 16),
                                                std::max<std::size_t>(2, ts / 8),
                                                std::max<std::size_t>(4, ts / 4),
                                                std::max<std::size_t>(8, ts / 2)};
      perf_model_ = perfmodel::KernelModel::calibrate(ts, ranks, 7, config_.rounding);
    } else {
      perf_model_ = perfmodel::KernelModel::theoretical(ts);
    }
  }
  return *perf_model_;
}

void GsxModel::prepare(std::span<const double> theta, std::span<const Location> locs,
                       SymTileMatrix& out, EvalBreakdown* breakdown) const {
  const std::unique_ptr<geostat::CovarianceModel> model = prototype_->clone();
  model->set_params(theta);

  Timer gen_timer;
  geostat::fill_covariance_tiles(out, *model, locs, config_.workers);
  if (breakdown) breakdown->generation_seconds = gen_timer.seconds();
  if (breakdown) breakdown->dense_fp64_bytes = out.dense_fp64_bytes();

  // Structure-aware decision first (Algorithm 2, on full-precision data):
  // compress off-band tiles, auto-tuning the dense band from the rank
  // distribution when requested.
  if (config_.variant == ComputeVariant::MPDenseTLR) {
    std::size_t band = config_.band_size;
    cholesky::TlrCompressOptions copt;
    copt.tol = config_.tlr_tol;
    copt.method = config_.compression;
    copt.lr_fp32 = config_.lr_fp32;
    copt.eps_target = config_.eps_target;
    if (config_.auto_band) {
      // Compress everything off-diagonal, tune, then revert in-band tiles
      // to dense (they rejoin the band, cf. Fig. 3(a)->(b)).
      copt.band_size = 1;
      const cholesky::CompressStats cs0 = cholesky::compress_offband(out, copt,
                                                                     config_.workers);
      const perfmodel::BandDecision bd =
          perfmodel::tune_band_size(out, perf_model(out.tile_size()), config_.fluctuation);
      band = std::max<std::size_t>(1, bd.band_size_dense);
      for (std::size_t j = 0; j < out.nt(); ++j) {
        for (std::size_t i = j; i < out.nt(); ++i) {
          if (i - j >= 1 && i - j < band &&
              out.at(i, j).format() == tile::TileFormat::LowRank) {
            la::Matrix<double> full = out.at(i, j).to_dense64();
            out.at(i, j).assign_dense64(std::move(full));
          }
        }
      }
      if (breakdown) {
        breakdown->compress = cs0;
        breakdown->band_size_dense = band;
        breakdown->compress.bytes_after = out.footprint_bytes();
      }
    } else {
      copt.band_size = std::max<std::size_t>(1, band);
      const cholesky::CompressStats cs = cholesky::compress_offband(out, copt,
                                                                    config_.workers);
      if (breakdown) {
        breakdown->compress = cs;
        breakdown->band_size_dense = band;
      }
    }
  }

  // Precision-aware decision (Fig. 2) on the tiles that remained dense.
  cholesky::PrecisionPolicy policy;
  policy.band = config_.band;
  policy.eps_target = config_.eps_target;
  policy.allow_fp16 = config_.allow_fp16;
  policy.allow_bf16 = config_.allow_bf16;
  switch (config_.variant) {
    case ComputeVariant::DenseFP64:
      policy.rule = cholesky::PrecisionRule::AllFP64;
      break;
    case ComputeVariant::MPDense:
    case ComputeVariant::MPDenseTLR:
      policy.rule = config_.mp_rule;
      break;
  }
  const cholesky::PolicyStats pstats = [&] {
    const obs::ScopedPhase phase("precision_policy");
    return cholesky::apply_precision_policy(out, policy);
  }();
  if (breakdown) breakdown->policy = pstats;
  if (breakdown) breakdown->footprint_bytes = out.footprint_bytes();
}

bool GsxModel::prepare_and_factor(std::span<const double> theta,
                                  std::span<const Location> locs, SymTileMatrix& out,
                                  EvalBreakdown* breakdown) const {
  Timer total;
  prepare(theta, locs, out, breakdown);
  // Capture the decision mix before the factorization overwrites the tiles.
  profile_tiles(out);

  cholesky::FactorOptions fopt;
  fopt.workers = config_.workers;
  fopt.sched = config_.sched;
  fopt.rounding = config_.rounding;
  fopt.rule = (config_.variant == ComputeVariant::DenseFP64)
                  ? cholesky::PrecisionRule::AllFP64
                  : config_.mp_rule;
  // Health audit: lambda_max must be sampled before the factorization
  // overwrites the tiles; lambda_min comes from the factor afterwards.
  const bool audit = obs::health_enabled();
  const double lambda_max = audit ? cholesky::estimate_lambda_max(out) : 0.0;
  const cholesky::FactorReport report =
      (config_.variant == ComputeVariant::MPDenseTLR)
          ? cholesky::tile_cholesky_tlr(out, config_.tlr_tol, fopt)
          : cholesky::tile_cholesky_dense(out, fopt);
  if (audit && report.info == 0) cholesky::audit_condition(lambda_max, out);
  if (breakdown) {
    breakdown->factor = report;
    breakdown->total_seconds = total.seconds();
  }
  return report.info == 0;
}

geostat::LoglikValue GsxModel::evaluate(std::span<const double> theta,
                                        std::span<const Location> locs,
                                        std::span<const double> z,
                                        EvalBreakdown* breakdown) const {
  GSX_REQUIRE(locs.size() == z.size(), "GsxModel::evaluate: data size mismatch");
  SymTileMatrix a(locs.size(), config_.tile_size);
  obs::begin_iteration("evaluate");
  if (!prepare_and_factor(theta, locs, a, breakdown)) {
    obs::end_iteration();
    return geostat::LoglikValue{};
  }
  const geostat::LoglikValue v = cholesky::tile_loglik(a, z);
  obs::end_iteration();
  return v;
}

FitResult GsxModel::fit(std::span<const Location> locs, std::span<const double> z,
                        const FitCallback& on_improve) const {
  const std::vector<double> lo = prototype_->lower_bounds();
  const std::vector<double> hi = prototype_->upper_bounds();
  const std::vector<double> start = prototype_->params();

  // Incumbent-best tracking for the checkpoint hook. PSO evaluates the
  // objective concurrently, so the update is mutex-guarded.
  std::mutex best_mutex;
  double best_fval = std::numeric_limits<double>::infinity();
  std::size_t evals_seen = 0;

  const optim::Objective objective = [&](std::span<const double> theta) {
    // Jointly-constrained parameterizations (e.g. the bivariate rho bound)
    // can reject box-feasible points; treat them as infeasible.
    double fval = std::numeric_limits<double>::infinity();
    try {
      const geostat::LoglikValue v = evaluate(theta, locs, z);
      fval = v.ok ? -v.loglik : std::numeric_limits<double>::infinity();
    } catch (const InvalidArgument&) {
      fval = std::numeric_limits<double>::infinity();
    }
    if (on_improve) {
      std::lock_guard lk(best_mutex);
      ++evals_seen;
      if (fval < best_fval) {
        best_fval = fval;
        on_improve(FitProgress{theta, -fval, evals_seen});
      }
    }
    return fval;
  };

  Timer t;
  obs::log_info("model", "fit starting",
                {obs::lf("optimizer", config_.optimizer == OptimizerKind::NelderMead
                                          ? "nelder-mead"
                                          : "pso"),
                 obs::lf("n", static_cast<std::uint64_t>(locs.size())),
                 obs::lf("variant", variant_name(config_.variant))});
  optim::OptimResult r;
  if (config_.optimizer == OptimizerKind::NelderMead) {
    r = optim::nelder_mead(objective, start, lo, hi, config_.nm);
  } else {
    r = optim::particle_swarm(objective, lo, hi, config_.pso);
  }
  obs::log_info("model", "fit complete",
                {obs::lf("loglik", -r.fval),
                 obs::lf("evaluations", static_cast<std::uint64_t>(r.evals)),
                 obs::lf("converged", r.converged),
                 obs::lf("seconds", t.seconds())});
  FitResult out;
  out.theta = r.x;
  out.loglik = -r.fval;
  out.evaluations = r.evals;
  out.converged = r.converged;
  out.seconds = t.seconds();
  return out;
}

tile::SymTileMatrix GsxModel::factor_at(std::span<const double> theta,
                                        std::span<const Location> locs,
                                        EvalBreakdown* breakdown) const {
  SymTileMatrix a(locs.size(), config_.tile_size);
  EvalBreakdown local;
  EvalBreakdown* bd = breakdown != nullptr ? breakdown : &local;
  if (!prepare_and_factor(theta, locs, a, bd)) {
    NumericalContext ctx;
    ctx.tile_i = ctx.tile_j = bd->factor.failed_tile;
    ctx.pivot = bd->factor.info;
    ctx.rule = cholesky::precision_rule_name(
        (config_.variant == ComputeVariant::DenseFP64) ? cholesky::PrecisionRule::AllFP64
                                                       : config_.mp_rule);
    throw NumericalError("GsxModel::factor_at: covariance not SPD at theta",
                         std::move(ctx));
  }
  return a;
}

geostat::KrigingResult GsxModel::predict(std::span<const double> theta,
                                         std::span<const Location> train_locs,
                                         std::span<const double> z_train,
                                         std::span<const Location> test_locs,
                                         bool with_variance) const {
  obs::begin_iteration("predict");
  SymTileMatrix a = [&] {
    try {
      return factor_at(theta, train_locs);
    } catch (...) {
      obs::end_iteration();
      throw;
    }
  }();

  // Predict through the tile factor itself: the TLR variant never
  // materializes a dense L, preserving its memory-footprint advantage in
  // the prediction phase too.
  const std::unique_ptr<geostat::CovarianceModel> model = prototype_->clone();
  model->set_params(theta);
  geostat::KrigingResult out = cholesky::tile_krige(*model, a, train_locs, z_train,
                                                    test_locs, with_variance,
                                                    config_.workers);
  obs::end_iteration();
  return out;
}

tile::SymTileMatrix GsxModel::build_decision_matrix(std::span<const double> theta,
                                                    std::span<const Location> locs,
                                                    EvalBreakdown* breakdown) const {
  SymTileMatrix a(locs.size(), config_.tile_size);
  prepare(theta, locs, a, breakdown);
  return a;
}

}  // namespace gsx::core
