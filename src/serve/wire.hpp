// Minimal JSON value type for the newline-delimited wire protocol.
//
// Self-contained (no third-party deps, per the serving layer's POSIX-only
// constraint): parses objects/arrays/strings/numbers/bools/null from one
// request line and serializes responses. Numbers are doubles (the protocol
// carries coordinates, means and variances); strings support the standard
// escapes including \uXXXX with surrogate pairs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gsx::serve {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(std::size_t u) : v_(static_cast<double>(u)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw InvalidArgument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Parse exactly one JSON value (trailing garbage rejected). Throws
  /// InvalidArgument with a position on malformed input.
  static JsonValue parse(std::string_view text);

  /// Compact single-line serialization (newline-free: wire framing relies
  /// on one response per line).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// {"ok":false,"error":why} — the uniform wire error shape.
std::string wire_error(const std::string& why);

/// Mint a process-unique request id (monotone from 1). The wire layer stamps
/// one on every predict before it enters the engine; the same id threads
/// through batching, the solver's flight-recorder events, spans and the
/// response, so one grep correlates a request across every artifact.
[[nodiscard]] std::uint64_t mint_request_id() noexcept;

/// Wire/trace spelling of a request id: "r-<n>".
[[nodiscard]] std::string request_id_string(std::uint64_t id);

/// Parse "r-<n>" (or a bare integer string) back to the numeric id;
/// 0 when the spelling is unrecognized.
[[nodiscard]] std::uint64_t parse_request_id(const std::string& s) noexcept;

/// Mint a fleet-unique distributed trace id. Unlike request ids (monotone,
/// per-process), a trace id must not collide across router restarts or
/// between processes, so the pid and a startup-time nonce are mixed in.
[[nodiscard]] std::uint64_t mint_trace_id() noexcept;

/// Wire spelling of a trace id: "t-<16 hex digits>". This is the
/// "trace_id" field on forwarded predicts and their responses.
[[nodiscard]] std::string trace_id_string(std::uint64_t id);

/// Wire spelling of a span id: "s-<16 hex digits>" (the "parent_span_id"
/// field on a forwarded predict). Span ids are minted by obs::mint_span_id.
[[nodiscard]] std::string span_id_string(std::uint64_t id);

/// Parse "t-<hex>" / "s-<hex>" (or a bare hex string) back to the numeric
/// id; 0 when unrecognized.
[[nodiscard]] std::uint64_t parse_trace_id(const std::string& s) noexcept;

/// The complete wire vocabulary, one table per daemon. The dispatchers in
/// server.cpp / router.cpp validate against these, and tools/check_docs.sh
/// extracts them to enforce that every verb is documented — add a verb here
/// and the docs check fails until docs/serving.md / docs/fleet.md cover it.
[[nodiscard]] const std::vector<std::string>& server_verbs();
[[nodiscard]] const std::vector<std::string>& router_verbs();

}  // namespace gsx::serve
