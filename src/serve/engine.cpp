#include "serve/engine.hpp"

#include "cholesky/tile_solve.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {

namespace {

double seconds_between(KrigingEngine::Clock::time_point a,
                       KrigingEngine::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

PredictOutcome fail(std::string why) {
  PredictOutcome o;
  o.ok = false;
  o.error = std::move(why);
  return o;
}

// RequestReject flight-event reason codes (the `a` field).
constexpr std::uint64_t kRejectQueueFull = 1;
constexpr std::uint64_t kRejectDeadline = 2;
constexpr std::uint64_t kRejectDraining = 3;

/// Chrome-trace spans for one request ("request" category, named
/// "r-<id>/queue|assemble|solve"), anchored on the observability clock via
/// the batch-end instant so they align with pipeline/task rows.
void record_request_spans(std::uint64_t request_id, double end_obs, double total_s,
                          double queue_s, double pass_s,
                          const cholesky::SolveTelemetry& t) {
  if (!obs::enabled()) return;
  const std::string prefix = request_id_string(request_id) + "/";
  obs::Span queue;
  queue.name = prefix + "queue";
  queue.category = "request";
  queue.start_seconds = end_obs - total_s;
  queue.end_seconds = queue.start_seconds + queue_s;
  obs::record_span(std::move(queue));
  obs::Span assemble;
  assemble.name = prefix + "assemble";
  assemble.category = "request";
  assemble.start_seconds = end_obs - pass_s;
  assemble.end_seconds = assemble.start_seconds + t.assemble_seconds;
  obs::record_span(assemble);
  obs::Span solve;
  solve.name = prefix + "solve";
  solve.category = "request";
  solve.start_seconds = assemble.end_seconds;
  solve.end_seconds = solve.start_seconds + t.solve_seconds;
  obs::record_span(std::move(solve));
}

}  // namespace

KrigingEngine::KrigingEngine(EngineConfig cfg, bool auto_start) : cfg_(cfg) {
  GSX_REQUIRE(cfg_.workers >= 1 && cfg_.queue_capacity >= 1 &&
                  cfg_.max_batch_points >= 1,
              "KrigingEngine: degenerate configuration");
  if (auto_start) start();
}

void KrigingEngine::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

KrigingEngine::~KrigingEngine() { drain(); }

std::future<PredictOutcome> KrigingEngine::submit(
    std::shared_ptr<const LoadedModel> model, std::vector<geostat::Location> points,
    bool with_variance, Clock::time_point deadline, std::uint64_t request_id,
    std::uint64_t trace_id, std::uint64_t parent_span) {
  std::promise<PredictOutcome> promise;
  std::future<PredictOutcome> future = promise.get_future();
  if (request_id == 0) request_id = mint_request_id();
  // Rejections below record under the request's trace so a client-visible
  // fast-fail still shows up in the fleet timeline.
  obs::FlightTraceScope trace_scope(trace_id);
  if (model == nullptr || points.empty()) {
    promise.set_value(fail(model == nullptr ? "no such model" : "no points"));
    return future;
  }

  const auto now = Clock::now();
  std::size_t depth = 0;
  {
    std::lock_guard lk(mu_);
    if (stopping_) {
      GSX_FLIGHT(obs::EventKind::RequestReject, request_id, kRejectDraining, 0, 0.0);
      promise.set_value(fail("engine draining"));
      return future;
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      // Fast-fail admission control: shed load instead of convoying.
      ++stats_.rejected_queue_full;
      obs::Registry::instance().counter("serve.rejected.queue_full").add();
      GSX_FLIGHT(obs::EventKind::RequestReject, request_id, kRejectQueueFull, 0, 0.0);
      promise.set_value(fail("queue full"));
      return future;
    }
    Pending p;
    p.model = std::move(model);
    p.points = std::move(points);
    p.with_variance = with_variance;
    p.request_id = request_id;
    p.trace_id = trace_id;
    p.parent_span = parent_span;
    p.deadline = deadline;
    p.enqueued = now;
    p.promise = std::move(promise);
    queue_.push_back(std::move(p));
    ++stats_.accepted;
    depth = queue_.size();
    stats_.queue_depth = depth;
    obs::Registry::instance().gauge("serve.queue.depth")
        .set(static_cast<double>(depth));
  }
  GSX_FLIGHT(obs::EventKind::RequestAdmit, request_id, depth, 0, 0.0);
  cv_.notify_one();
  return future;
}

void KrigingEngine::drain() {
  // drain_mu_ serializes concurrent drainers: two threads racing past the
  // joinable() check would otherwise both join the dispatcher — UB that in
  // practice parks the loser on a futex forever (seen when a wire-initiated
  // drain and the daemon's post-accept-loop shutdown overlap).
  std::lock_guard drain_lk(drain_mu_);
  {
    std::lock_guard lk(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Never started: fail whatever was queued so futures don't hang.
  std::deque<Pending> leftovers;
  {
    std::lock_guard lk(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) p.promise.set_value(fail("engine draining"));
}

EngineStats KrigingEngine::stats() const {
  std::lock_guard lk(mu_);
  EngineStats s = stats_;
  s.queue_depth = queue_.size();
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  return s;
}

void KrigingEngine::dispatch_loop() {
  std::unique_lock lk(mu_);
  while (true) {
    cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Micro-batch: the oldest request plus every queued request against the
    // same model, up to the point cap. Requests for other models stay
    // queued and form the next batch.
    std::vector<Pending> batch;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    const LoadedModel* model = batch.front().model.get();
    std::size_t points = batch.front().points.size();
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->model.get() == model && points + it->points.size() <= cfg_.max_batch_points) {
        points += it->points.size();
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.queue_depth = queue_.size();
    ++stats_.batches;
    stats_.batched_points += points;
    obs::Registry::instance().gauge("serve.queue.depth")
        .set(static_cast<double>(queue_.size()));
    lk.unlock();
    for (const Pending& p : batch)
      GSX_FLIGHT(obs::EventKind::RequestDispatch, p.request_id, batch.size(), points,
                 0.0);
    obs::Registry::instance().histogram("serve.batch.points")
        .observe(static_cast<double>(points));
    process_batch(std::move(batch));
    lk.lock();
  }
}

void KrigingEngine::process_batch(std::vector<Pending> batch) {
  const auto start = Clock::now();
  const LoadedModel& model = *batch.front().model;

  // Deadline check happens once per batch, before the expensive pass; a
  // request that expired while queued is failed without touching the solver.
  std::vector<Pending> live;
  live.reserve(batch.size());
  bool any_variance = false;
  std::vector<geostat::Location> points;
  for (Pending& p : batch) {
    if (p.deadline < start) {
      {
        std::lock_guard lk(mu_);
        ++stats_.rejected_deadline;
      }
      obs::Registry::instance().counter("serve.rejected.deadline").add();
      GSX_FLIGHT(obs::EventKind::RequestReject, p.request_id, kRejectDeadline, 0, 0.0);
      p.promise.set_value(fail("deadline exceeded while queued"));
      continue;
    }
    any_variance = any_variance || p.with_variance;
    points.insert(points.end(), p.points.begin(), p.points.end());
    live.push_back(std::move(p));
  }
  if (live.empty()) return;

  // The whole micro-batch shares one solver pass, so the trace context
  // carries the oldest request's id (its deadline admitted the batch). The
  // ambient trace scope follows the same rule: SolveBegin/SolveEnd and the
  // numerical sentinels recorded inside the pass stamp the oldest request's
  // distributed trace id.
  cholesky::SolveTelemetry telemetry;
  telemetry.ctx.request_id = live.front().request_id;
  obs::FlightTraceScope batch_trace(live.front().trace_id);

  in_flight_.fetch_add(live.size(), std::memory_order_relaxed);
  obs::Registry::instance().gauge("serve.inflight")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));

  PredictOutcome failure;
  geostat::KrigingResult result;
  bool ok = true;
  try {
    // One tiled Sigma_mn assembly + solve pass for the whole micro-batch.
    result = cholesky::tile_krige_solved(*model.kernel, model.factor, model.y_solved,
                                         model.train_locs, points, any_variance,
                                         cfg_.workers, &telemetry);
  } catch (const std::exception& e) {
    ok = false;
    failure = fail(std::string("prediction failed: ") + e.what());
    // A numerical failure is exactly what the flight recorder exists for:
    // persist the in-memory rings next to the error before anything else
    // overwrites them, and hand the dump path back on the wire.
    failure.flight_dump = obs::FlightRecorder::instance().dump_on_failure();
    obs::log_warn("serve", "batch prediction failed", {obs::lf("error", e.what())});
  }

  const auto end = Clock::now();
  // Anchor wall-clock offsets onto the observability clock so per-request
  // spans land on the same axis as pipeline phases and task events.
  const double end_obs = obs::now_seconds();
  auto& latency = obs::Registry::instance().histogram(
      "serve.predict.seconds", obs::Histogram::duration_bounds());
  auto& queue_wait = obs::Registry::instance().histogram(
      "serve.queue.seconds", obs::Histogram::duration_bounds());

  // Count completions before fulfilling any promise: a client that has its
  // response in hand must see these requests in a subsequent stats read.
  if (ok) {
    std::lock_guard lk(mu_);
    stats_.completed += live.size();
  }

  std::size_t offset = 0;
  for (Pending& p : live) {
    const std::size_t m = p.points.size();
    const double queue_s = seconds_between(p.enqueued, start);
    const double total_s = seconds_between(p.enqueued, end);
    record_request_spans(p.request_id, end_obs, total_s, queue_s,
                         seconds_between(start, end), telemetry);
    // Replica-side distributed-trace spans: queue/assemble/solve siblings
    // under the router's forward span. Recorded even on failure — a span
    // tree that stops at the router is exactly the blind spot this exists
    // to remove.
    if (p.trace_id != 0) {
      obs::FlightTraceScope req_trace(p.trace_id);
      GSX_FLIGHT(obs::EventKind::SpanReplicaQueue, p.request_id,
                 obs::mint_span_id(), p.parent_span, queue_s);
      GSX_FLIGHT(obs::EventKind::SpanReplicaAssemble, p.request_id,
                 obs::mint_span_id(), p.parent_span, telemetry.assemble_seconds);
      GSX_FLIGHT(obs::EventKind::SpanReplicaSolve, p.request_id,
                 obs::mint_span_id(), p.parent_span, telemetry.solve_seconds);
    }
    if (!ok) {
      PredictOutcome o = failure;
      o.request_id = p.request_id;
      GSX_FLIGHT(obs::EventKind::RequestComplete, p.request_id, 0, 0, total_s);
      p.promise.set_value(std::move(o));
      continue;
    }
    PredictOutcome o;
    o.ok = true;
    o.batched_with = live.size();
    o.request_id = p.request_id;
    o.queue_seconds = queue_s;
    o.assemble_seconds = telemetry.assemble_seconds;
    o.solve_seconds = telemetry.solve_seconds;
    o.total_seconds = total_s;
    o.mean.assign(result.mean.begin() + static_cast<std::ptrdiff_t>(offset),
                  result.mean.begin() + static_cast<std::ptrdiff_t>(offset + m));
    if (p.with_variance) {
      o.variance.assign(result.variance.begin() + static_cast<std::ptrdiff_t>(offset),
                        result.variance.begin() + static_cast<std::ptrdiff_t>(offset + m));
    }
    latency.observe(o.total_seconds);
    queue_wait.observe(o.queue_seconds);
    GSX_FLIGHT(obs::EventKind::RequestComplete, p.request_id, 1, 0, total_s);
    p.promise.set_value(std::move(o));
    offset += m;
  }
  in_flight_.fetch_sub(live.size(), std::memory_order_relaxed);
  obs::Registry::instance().gauge("serve.inflight")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
}

}  // namespace gsx::serve
