#include "serve/server.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "geostat/kernel_registry.hpp"
#include "obs/export_prom.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/checkpoint.hpp"

namespace gsx::serve {

namespace {

JsonValue stats_to_json(const RegistryStats& r, const EngineStats& e) {
  JsonValue::Object reg;
  reg["models"] = JsonValue(r.models);
  reg["resident_bytes"] = JsonValue(r.resident_bytes);
  reg["capacity_bytes"] = JsonValue(r.capacity_bytes);
  reg["hits"] = JsonValue(static_cast<std::size_t>(r.hits));
  reg["misses"] = JsonValue(static_cast<std::size_t>(r.misses));
  reg["loads"] = JsonValue(static_cast<std::size_t>(r.loads));
  reg["evictions"] = JsonValue(static_cast<std::size_t>(r.evictions));

  JsonValue::Object eng;
  eng["accepted"] = JsonValue(static_cast<std::size_t>(e.accepted));
  eng["completed"] = JsonValue(static_cast<std::size_t>(e.completed));
  eng["rejected_queue_full"] = JsonValue(static_cast<std::size_t>(e.rejected_queue_full));
  eng["rejected_deadline"] = JsonValue(static_cast<std::size_t>(e.rejected_deadline));
  eng["batches"] = JsonValue(static_cast<std::size_t>(e.batches));
  eng["batched_points"] = JsonValue(static_cast<std::size_t>(e.batched_points));
  eng["queue_depth"] = JsonValue(e.queue_depth);
  eng["in_flight"] = JsonValue(e.in_flight);

  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["registry"] = JsonValue(std::move(reg));
  o["engine"] = JsonValue(std::move(eng));
  return JsonValue(std::move(o));
}

const std::string& require_string(const JsonValue& req, const std::string& key) {
  const JsonValue* v = req.find(key);
  GSX_REQUIRE(v != nullptr && v->is_string(),
              "request needs a string \"" + key + "\" field");
  return v->as_string();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      registry_(cfg.cache_bytes),
      engine_(EngineConfig{cfg.workers, cfg.queue_capacity, cfg.max_batch_points}),
      listener_(
          LineListener::Config{cfg.unix_path, cfg.tcp_port, cfg.metrics_port,
                               "serve"},
          [this](const std::string& line) { return handle_line(line); }) {
  // Pre-register the serving metrics so a scrape sees the full schema (zeroed
  // series included) before the first request, not a shape that grows as
  // traffic happens to exercise code paths.
  auto& reg = obs::Registry::instance();
  reg.gauge("serve.queue.depth");
  reg.gauge("serve.inflight");
  reg.gauge("serve.cache.bytes");
  reg.gauge("serve.cache.models");
  reg.gauge("taskgraph.queue_depth");
  reg.counter("serve.cache.hits");
  reg.counter("serve.cache.misses");
  reg.counter("serve.cache.evictions");
  reg.counter("serve.rejected.queue_full");
  reg.counter("serve.rejected.deadline");
  reg.counter("serve.drains");
  reg.histogram("serve.predict.seconds", obs::Histogram::duration_bounds());
  reg.histogram("serve.queue.seconds", obs::Histogram::duration_bounds());
  reg.histogram("serve.batch.points");
}

Server::~Server() {
  shutdown();
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::string Server::handle_line(const std::string& line) {
  try {
    const JsonValue req = JsonValue::parse(line);
    GSX_REQUIRE(req.is_object(), "request must be a JSON object");
    return handle_request(req);
  } catch (const std::exception& e) {
    return wire_error(e.what());
  }
}

std::string Server::handle_request(const JsonValue& req) {
  const std::string& op = require_string(req, "op");
  if (op == "load") return do_load(req);
  if (op == "unload") return do_unload(req);
  if (op == "predict") return do_predict(req);
  if (op == "stats") return do_stats();
  if (op == "health") return do_health();
  if (op == "metrics") return do_metrics();
  if (op == "drain") return do_drain();
  if (op == "flight") return do_flight();
  return wire_error("unknown op \"" + op + "\"");
}

std::string Server::do_load(const JsonValue& req) {
  const std::string& name = require_string(req, "name");
  std::string path;
  if (const JsonValue* p = req.find("path")) {
    GSX_REQUIRE(p->is_string(), "\"path\" must be a string");
    path = p->as_string();
    // A relative path names a file inside the shared store, so routers can
    // ship one load spec to any replica regardless of its working directory.
    if (!cfg_.store_dir.empty() && !path.empty() && path.front() != '/')
      path = cfg_.store_dir + "/" + path;
  } else {
    if (cfg_.store_dir.empty())
      return wire_error("load without \"path\" needs a checkpoint store "
                        "(--store) to resolve \"" + name + "\"");
    path = resolve_store_checkpoint(cfg_.store_dir, name);
  }
  const std::shared_ptr<const LoadedModel> model = registry_.load(name, path);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["name"] = JsonValue(model->name);
  o["path"] = JsonValue(path);
  o["kernel"] = JsonValue(geostat::kernel_name(*model->kernel));
  o["n_train"] = JsonValue(model->train_locs.size());
  o["resident_bytes"] = JsonValue(model->resident_bytes);
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_unload(const JsonValue& req) {
  const std::string& name = require_string(req, "name");
  const bool removed = registry_.unload(name);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["unloaded"] = JsonValue(removed);
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_predict(const JsonValue& req) {
  const std::string& name = require_string(req, "model");
  std::shared_ptr<const LoadedModel> model = registry_.get(name);
  if (model == nullptr) return wire_error("no such model \"" + name + "\"");

  const JsonValue* pts = req.find("points");
  GSX_REQUIRE(pts != nullptr && pts->is_array() && !pts->as_array().empty(),
              "request needs a non-empty \"points\" array");
  std::vector<geostat::Location> points;
  points.reserve(pts->as_array().size());
  for (const JsonValue& p : pts->as_array()) {
    GSX_REQUIRE(p.is_array() && (p.as_array().size() == 2 || p.as_array().size() == 3),
                "each point must be [x,y] or [x,y,t]");
    geostat::Location loc;
    loc.x = p.as_array()[0].as_number();
    loc.y = p.as_array()[1].as_number();
    if (p.as_array().size() == 3) loc.t = p.as_array()[2].as_number();
    points.push_back(loc);
  }

  bool with_variance = true;
  if (const JsonValue* v = req.find("variance")) with_variance = v->as_bool();

  double deadline_seconds = cfg_.default_deadline_seconds;
  if (const JsonValue* d = req.find("deadline_ms")) {
    GSX_REQUIRE(d->is_number() && d->as_number() > 0, "\"deadline_ms\" must be > 0");
    deadline_seconds = d->as_number() / 1000.0;
  }
  const auto deadline =
      KrigingEngine::Clock::now() +
      std::chrono::duration_cast<KrigingEngine::Clock::duration>(
          std::chrono::duration<double>(deadline_seconds));

  // The request id is minted here at the wire boundary — unless an upstream
  // router already minted one and forwarded it, in which case both hops'
  // flight events and spans trace under the router's id. The distributed
  // trace context (trace_id + parent_span_id) is only ever adopted, never
  // minted: a replica reached directly has no router hop to nest under.
  std::uint64_t request_id = 0;
  if (const JsonValue* rid = req.find("request_id"))
    if (rid->is_string()) request_id = parse_request_id(rid->as_string());
  if (request_id == 0) request_id = mint_request_id();
  std::uint64_t trace_id = 0;
  if (const JsonValue* tid = req.find("trace_id"))
    if (tid->is_string()) trace_id = parse_trace_id(tid->as_string());
  std::uint64_t parent_span = 0;
  if (const JsonValue* ps = req.find("parent_span_id"))
    if (ps->is_string()) parent_span = parse_trace_id(ps->as_string());
  PredictOutcome out = engine_
                           .submit(std::move(model), std::move(points), with_variance,
                                   deadline, request_id, trace_id, parent_span)
                           .get();
  if (!out.ok) {
    JsonValue::Object o;
    o["ok"] = JsonValue(false);
    o["error"] = JsonValue(out.error);
    o["request_id"] = JsonValue(request_id_string(request_id));
    if (trace_id != 0) o["trace_id"] = JsonValue(trace_id_string(trace_id));
    if (!out.flight_dump.empty()) o["flight_dump"] = JsonValue(out.flight_dump);
    return JsonValue(std::move(o)).dump();
  }

  JsonValue::Array mean;
  mean.reserve(out.mean.size());
  for (const double m : out.mean) mean.emplace_back(m);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["request_id"] = JsonValue(request_id_string(request_id));
  if (trace_id != 0) o["trace_id"] = JsonValue(trace_id_string(trace_id));
  o["mean"] = JsonValue(std::move(mean));
  if (with_variance) {
    JsonValue::Array variance;
    variance.reserve(out.variance.size());
    for (const double v : out.variance) variance.emplace_back(v);
    o["variance"] = JsonValue(std::move(variance));
  }
  o["batched_with"] = JsonValue(out.batched_with);
  o["queue_seconds"] = JsonValue(out.queue_seconds);
  o["total_seconds"] = JsonValue(out.total_seconds);
  JsonValue::Object timing;
  timing["queue_seconds"] = JsonValue(out.queue_seconds);
  timing["assemble_seconds"] = JsonValue(out.assemble_seconds);
  timing["solve_seconds"] = JsonValue(out.solve_seconds);
  timing["total_seconds"] = JsonValue(out.total_seconds);
  o["timing"] = JsonValue(std::move(timing));
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_stats() {
  return stats_to_json(registry_.stats(), engine_.stats()).dump();
}

std::string Server::do_metrics() {
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["content_type"] = JsonValue(obs::kPrometheusContentType);
  o["prometheus"] = JsonValue(obs::render_prometheus());
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_flight() {
  // On-demand flight dump over the wire: the router's flight_collect verb
  // gathers one of these per replica and gsx_obs merges them. The JSONL
  // already opens with the dump header (wall anchor, process, pid), so the
  // response needs no extra alignment fields.
  auto& fr = obs::FlightRecorder::instance();
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["process"] = JsonValue(fr.process_name());
  o["jsonl"] = JsonValue(fr.snapshot_jsonl());
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_health() {
  const RegistryStats r = registry_.stats();
  const EngineStats e = engine_.stats();
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["status"] =
      JsonValue(draining_.load(std::memory_order_acquire) ? "draining" : "serving");
  o["models"] = JsonValue(r.models);
  o["queue_depth"] = JsonValue(e.queue_depth);
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_drain() {
  draining_.store(true, std::memory_order_release);
  // One-shot: the first drain spawns the background exit; repeats just
  // re-acknowledge. The response is written before the listener tears the
  // connection down because shutdown() half-closes with SHUT_RD — a reply
  // in flight always reaches the client.
  if (!drain_started_.exchange(true, std::memory_order_acq_rel)) {
    obs::Registry::instance().counter("serve.drains").add();
    obs::log_info("serve", "drain requested over the wire", {});
    drain_thread_ = std::thread([this] {
      if (on_drain_) on_drain_();
      else shutdown();
    });
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["status"] = JsonValue("draining");
  return JsonValue(std::move(o)).dump();
}

std::uint16_t Server::listen() { return listener_.listen(); }

void Server::serve_forever() { listener_.serve_forever(); }

void Server::shutdown() {
  draining_.store(true, std::memory_order_release);
  listener_.shutdown();
  engine_.drain();
}

}  // namespace gsx::serve
